(** Structural matchers: declaratively describe the control-flow shape of
    the IR (§III-C, Listing 5). A matcher replicates the loop structure it
    expects, with optional filtering callbacks for non-structural
    properties; matching starts at a relative root and recursively walks
    the descendants, failing fast on the first mismatch. *)

open Ir

type t

(** [for_ child] matches an [affine.for] whose body consists of exactly
    the ops matched by [child] (ignoring the terminator). *)
val for_ : ?filter:(Core.op -> bool) -> t -> t

(** [stmts children] matches a body made of exactly these children,
    in order. *)
val stmts : t list -> t

(** [body f] matches any loop-free body for which the callback holds —
    the paper's [isMAC]-style filtering function. *)
val body : (Core.block -> bool) -> t

(** [any] matches anything. *)
val any : t

(** [perfect ~depth ~body_pred] is [for_ (for_ (... (body body_pred)))]:
    a perfectly nested loop of the given depth. *)
val perfect : depth:int -> (Core.block -> bool) -> t

(** [matches t op] — [op] is the relative root. *)
val matches : t -> Core.op -> bool

(** [matched_nest ~depth op] returns the loops of a perfect nest of
    exactly [depth] rooted at [op] (innermost body may contain anything
    but loops), or [None]. *)
val matched_nest : depth:int -> Core.op -> Core.op list option

(** {2 Rejection explanation}

    The explain variants mirror {!matches}/{!matched_nest} but name the
    first failing structural constraint — the "control-flow shape" stage
    of the near-miss remarks ([--remarks=missed]). *)

(** [explain t op] is [Ok ()] exactly when [matches t op]; otherwise a
    description of the first structural mismatch. *)
val explain : t -> Core.op -> (unit, string) result

(** [explain_nest ~depth op] is the explained {!matched_nest}. *)
val explain_nest : depth:int -> Core.op -> (Core.op list, string) result
