open Ir
module A = Affine.Affine_ops

type placeholder = int
type array_placeholder = int

type reject = Shape | Unify

let reject_stage = function
  | Shape -> "op-chain"
  | Unify -> "access-unification"

type ctx = {
  mutable next_ph : int;
  mutable next_aph : int;
  (* Solution state. *)
  ph_assign : (int, Core.value) Hashtbl.t;  (** placeholder -> iv *)
  aph_assign : (int, Core.value) Hashtbl.t;  (** array ph -> memref *)
  mutable matched_const : float option;
  mutable used : bool;  (* consumed by a match_block call *)
  mutable last_reject : reject option;
      (* which stage rejected the last failed match_block *)
}

let create_ctx () =
  {
    next_ph = 0;
    next_aph = 0;
    ph_assign = Hashtbl.create 8;
    aph_assign = Hashtbl.create 8;
    matched_const = None;
    used = false;
    last_reject = None;
  }

let reset ctx =
  Hashtbl.reset ctx.ph_assign;
  Hashtbl.reset ctx.aph_assign;
  ctx.matched_const <- None

let reset_ctx ctx =
  reset ctx;
  ctx.used <- false

let placeholder ctx =
  let id = ctx.next_ph in
  ctx.next_ph <- id + 1;
  id

let array_placeholder ctx =
  let id = ctx.next_aph in
  ctx.next_aph <- id + 1;
  id

(* A pattern index expression in linear form: placeholder terms plus a
   constant. *)
type pexpr = { terms : (placeholder * int) list; shift : int }

let p ph = { terms = [ (ph, 1) ]; shift = 0 }
let pconst c = { terms = []; shift = c }

let term ?(coeff = 1) ?(shift = 0) ph =
  if coeff = 0 then { terms = []; shift }
  else { terms = [ (ph, coeff) ]; shift }

let padd a b =
  let merged =
    List.fold_left
      (fun acc (ph, k) ->
        match List.assoc_opt ph acc with
        | Some k' -> (ph, k + k') :: List.remove_assoc ph acc
        | None -> (ph, k) :: acc)
      a.terms b.terms
    |> List.filter (fun (_, k) -> k <> 0)
  in
  { terms = merged; shift = a.shift + b.shift }

type access = array_placeholder * pexpr list

let access aph idxs = (aph, idxs)

type stmt_pattern =
  | Contraction of { out : access; in1 : access; in2 : access }
  | Init_const of { out : access }
  | Copy of { out : access; src : access }

(* ---- Concrete access extraction ---------------------------------- *)

(* A concrete subscript: induction-variable terms plus a constant. *)
type csub = { civs : (Core.value * int) list; cshift : int }

(* Convert one result expression of an access map (over the op's index
   operands) into iv terms. Fails (None) on floordiv/mod subscripts. *)
let concrete_sub (operands : Core.value array) e =
  match Affine_expr.linearize e with
  | None -> None
  | Some lin ->
      if lin.Affine_expr.sym_coeffs <> [] then None
      else
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun (d, k) ->
            let iv = operands.(d) in
            let prev =
              match Hashtbl.find_opt tbl iv.Core.v_id with
              | Some (_, k') -> k'
              | None -> 0
            in
            Hashtbl.replace tbl iv.Core.v_id (iv, prev + k))
          lin.dim_coeffs;
        let civs =
          Hashtbl.fold (fun _ (iv, k) acc ->
              if k = 0 then acc else (iv, k) :: acc)
            tbl []
          |> List.sort (fun ((a : Core.value), _) (b, _) ->
                 compare a.Core.v_id b.Core.v_id)
        in
        Some { civs; cshift = lin.constant }

let concrete_access op =
  let memref = A.access_memref op in
  let map = A.access_map op in
  let operands = Array.of_list (A.access_indices op) in
  let subs =
    List.map (concrete_sub operands) map.Affine_map.exprs
  in
  if List.exists Option.is_none subs then None
  else Some (memref, List.map Option.get subs)

(* ---- Backtracking unification ------------------------------------- *)

(* The assignment trail lets us undo bindings on backtrack. *)
type trail = { mutable entries : [ `Ph of int | `Aph of int ] list }

let bind_ph ctx trail ph iv =
  match Hashtbl.find_opt ctx.ph_assign ph with
  | Some iv' -> Core.value_equal iv iv'
  | None ->
      (* Distinctness: no other placeholder may hold this candidate. *)
      let taken =
        Hashtbl.fold
          (fun _ v acc -> acc || Core.value_equal v iv)
          ctx.ph_assign false
      in
      if taken then false
      else begin
        Hashtbl.replace ctx.ph_assign ph iv;
        trail.entries <- `Ph ph :: trail.entries;
        true
      end

let bind_aph ctx trail aph memref =
  match Hashtbl.find_opt ctx.aph_assign aph with
  | Some m -> Core.value_equal m memref
  | None ->
      let taken =
        Hashtbl.fold
          (fun _ v acc -> acc || Core.value_equal v memref)
          ctx.aph_assign false
      in
      if taken then false
      else begin
        Hashtbl.replace ctx.aph_assign aph memref;
        trail.entries <- `Aph aph :: trail.entries;
        true
      end

let undo_to ctx trail mark =
  while trail.entries != mark do
    (match trail.entries with
    | [] -> assert false
    | `Ph ph :: rest ->
        Hashtbl.remove ctx.ph_assign ph;
        trail.entries <- rest
    | `Aph aph :: rest ->
        Hashtbl.remove ctx.aph_assign aph;
        trail.entries <- rest)
  done

(* Unify one pattern subscript with one concrete subscript under the
   current assignment; [k] continues the search. *)
let rec unify_sub ctx trail (pe : pexpr) (cs : csub) k =
  if pe.shift <> cs.cshift then false
  else
    match pe.terms with
    | [] -> cs.civs = [] && k ()
    | (ph, coeff) :: rest -> (
        match Hashtbl.find_opt ctx.ph_assign ph with
        | Some iv -> (
            (* Must consume the matching concrete term. *)
            match
              List.partition
                (fun ((civ : Core.value), ck) ->
                  Core.value_equal civ iv && ck = coeff)
                cs.civs
            with
            | [ _ ], remaining ->
                unify_sub ctx trail { terms = rest; shift = 0 }
                  { civs = remaining; cshift = 0 }
                  k
            | _ -> false)
        | None ->
            (* Try every concrete term with the right coefficient. *)
            List.exists
              (fun ((civ : Core.value), ck) ->
                ck = coeff
                &&
                let mark = trail.entries in
                if bind_ph ctx trail ph civ then
                  let remaining =
                    List.filter
                      (fun ((c : Core.value), _) ->
                        not (Core.value_equal c civ))
                      cs.civs
                  in
                  if
                    unify_sub ctx trail { terms = rest; shift = 0 }
                      { civs = remaining; cshift = 0 }
                      k
                  then true
                  else (
                    undo_to ctx trail mark;
                    false)
                else (
                  undo_to ctx trail mark;
                  false))
              cs.civs)

let unify_access ctx trail ((aph, pidx) : access)
    ((memref, csubs) : Core.value * csub list) k =
  let mark = trail.entries in
  let ok =
    bind_aph ctx trail aph memref
    && List.length pidx = List.length csubs
    &&
    let rec go = function
      | [], [] -> k ()
      | pe :: ps, cs :: css ->
          unify_sub ctx trail pe cs (fun () -> go (ps, css))
      | _ -> false
    in
    go (pidx, csubs)
  in
  if not ok then undo_to ctx trail mark;
  ok

(* ---- Statement-level matching ------------------------------------- *)

let block_ops (b : Core.block) =
  List.filter (fun o -> not (Dialect.is_terminator o)) (Core.ops_of_block b)

let defining (v : Core.value) = Core.defining_op v

let match_contraction ctx ~out ~in1 ~in2 (b : Core.block) =
  let ops = block_ops b in
  let stores = List.filter A.is_store ops in
  let loads = List.filter A.is_load ops in
  match (stores, List.length ops) with
  | [ store ], 6 when List.length loads = 3 -> (
      (* The store must be the last operation of the block. *)
      (match List.rev ops with
      | last :: _ when Core.op_equal last store -> ()
      | _ -> raise Exit);
      (* Walk backwards from the stored value: add(load_out, mul(a, b)),
         commutatively. *)
      let stored = A.stored_value store in
      match defining stored with
      | Some add when String.equal add.Core.o_name "arith.addf" ->
          let try_operands (x : Core.value) (y : Core.value) =
            (* x: accumulator load; y: multiplication. *)
            match (defining x, defining y) with
            | Some ld_out, Some mul
              when A.is_load ld_out
                   && String.equal mul.Core.o_name "arith.mulf" ->
                let mul_loads =
                  Array.to_list mul.o_operands
                  |> List.map (fun v ->
                         match defining v with
                         | Some ld when A.is_load ld -> Some ld
                         | _ -> None)
                in
                (match mul_loads with
                | [ Some la; Some lb ] ->
                    (* Every load in the block must be one of the three. *)
                    let used = [ ld_out; la; lb ] in
                    List.for_all
                      (fun l -> List.exists (Core.op_equal l) used)
                      loads
                    && List.length (List.sort_uniq compare
                                      (List.map (fun (o : Core.op) -> o.o_id) used))
                       = 3
                    &&
                    let try_inputs la lb =
                      (* The op chain matched; any failure past this
                         point is the unification stage's. *)
                      ctx.last_reject <- Some Unify;
                      let trail = { entries = [] } in
                      let solve () =
                        match
                          ( concrete_access store,
                            concrete_access ld_out,
                            concrete_access la,
                            concrete_access lb )
                        with
                        | Some st, Some co, Some ca, Some cb ->
                            unify_access ctx trail out st (fun () ->
                                unify_access ctx trail out co (fun () ->
                                    unify_access ctx trail in1 ca (fun () ->
                                        unify_access ctx trail in2 cb
                                          (fun () -> true))))
                        | _ -> false
                      in
                      if solve () then true
                      else (
                        undo_to ctx trail [];
                        reset ctx;
                        false)
                    in
                    (* mul commutativity: in1*in2 or in2*in1. *)
                    try_inputs la lb || try_inputs lb la
                | _ -> false)
            | _ -> false
          in
          let x = Core.operand add 0 and y = Core.operand add 1 in
          (* add commutativity. *)
          try_operands x y || try_operands y x
      | _ -> false)
  | _ -> false

let match_init_const ctx ~out (b : Core.block) =
  let ops = block_ops b in
  match ops with
  | [ cst; store ]
    when Std_dialect.Arith.is_constant cst && A.is_store store -> (
      match
        ( Std_dialect.Arith.constant_float_value cst,
          Core.defining_op (A.stored_value store) )
      with
      | Some f, Some d when Core.op_equal d cst -> (
          ctx.last_reject <- Some Unify;
          match concrete_access store with
          | Some st ->
              let trail = { entries = [] } in
              if unify_access ctx trail out st (fun () -> true) then (
                ctx.matched_const <- Some f;
                true)
              else (
                reset ctx;
                false)
          | None -> false)
      | _ -> false)
  | _ -> false

let match_copy ctx ~out ~src (b : Core.block) =
  let ops = block_ops b in
  match ops with
  | [ load; store ]
    when A.is_load load && A.is_store store
         && (match Core.defining_op (A.stored_value store) with
            | Some d -> Core.op_equal d load
            | None -> false) -> (
      ctx.last_reject <- Some Unify;
      match (concrete_access store, concrete_access load) with
      | Some st, Some ld ->
          let trail = { entries = [] } in
          if
            unify_access ctx trail out st (fun () ->
                unify_access ctx trail src ld (fun () -> true))
          then true
          else (
            reset ctx;
            false)
      | _ -> false)
  | _ -> false

let match_block ctx pat b =
  if ctx.used then
    Support.Diag.errorf
      "Access.match_block: ctx already consumed by an earlier match — \
       solution bindings would be silently clobbered; create a fresh ctx \
       or call reset_ctx first";
  ctx.used <- true;
  reset ctx;
  (* Pessimistically an op-chain rejection; the matchers upgrade it to
     [Unify] once the statement's op chain has matched and only the
     access subscripts remain to be unified. *)
  ctx.last_reject <- Some Shape;
  let ok =
    try
      match pat with
      | Contraction { out; in1; in2 } -> match_contraction ctx ~out ~in1 ~in2 b
      | Init_const { out } -> match_init_const ctx ~out b
      | Copy { out; src } -> match_copy ctx ~out ~src b
    with Exit -> false
  in
  if not ok then reset ctx else ctx.last_reject <- None;
  ok

let last_reject ctx = ctx.last_reject

let iv_of ctx ph =
  match Hashtbl.find_opt ctx.ph_assign ph with
  | Some iv -> iv
  | None -> invalid_arg "Access.iv_of: placeholder has no assignment"

let array_of ctx aph =
  match Hashtbl.find_opt ctx.aph_assign aph with
  | Some v -> v
  | None -> invalid_arg "Access.array_of: array placeholder has no assignment"

let const_of ctx =
  match ctx.matched_const with
  | Some f -> f
  | None -> invalid_arg "Access.const_of: no constant was matched"

let solution_extent ctx ph =
  let iv = iv_of ctx ph in
  match iv.Core.v_def with
  | Core.Def_block_arg (block, 0) -> (
      match Core.block_parent_op block with
      | Some for_op when A.is_for for_op -> A.for_trip_count for_op
      | _ -> None)
  | _ -> None
