(** Access-pattern matchers (§III-C): placeholders, array placeholders and
    matching contexts.

    A placeholder ([m_Placeholder]) matches affine subscript terms of the
    form [k*ι + c] where [ι] is a candidate induction variable; sums of
    such terms are also expressible (needed for convolution windows like
    [oh + kh]). An array placeholder ([m_ArrayPlaceholder]) matches a
    memref value. Candidates assigned to different placeholders must be
    distinct, while repeated references to the same placeholder must
    resolve to the same candidate; the matcher backtracks over candidate
    assignments until the whole statement pattern is satisfied.

    Matching starts from the last store of a block and walks backwards
    along use-def chains, verifying that the block contains exactly the
    operations of the pattern (Listing 7). *)

open Ir

type ctx
type placeholder
type array_placeholder

val create_ctx : unit -> ctx

(** [m_Placeholder] *)
val placeholder : ctx -> placeholder

(** [m_ArrayPlaceholder] *)
val array_placeholder : ctx -> array_placeholder

(** {2 Pattern index expressions} *)

type pexpr

(** A bare placeholder. *)
val p : placeholder -> pexpr

(** [term ~coeff ~shift ph] is [coeff * ph + shift]. *)
val term : ?coeff:int -> ?shift:int -> placeholder -> pexpr

(** A constant subscript (no placeholder terms). *)
val pconst : int -> pexpr

(** Sum of placeholder terms (e.g. a convolution window [x + r]). *)
val padd : pexpr -> pexpr -> pexpr

(** {2 Statement patterns} *)

type access

(** [access arr idxs] — the paper's [_A({_i, _j})]. *)
val access : array_placeholder -> pexpr list -> access

type stmt_pattern =
  | Contraction of { out : access; in1 : access; in2 : access }
      (** [out += in1 * in2] — loads/stores plus one mul and one add,
          matched commutatively *)
  | Init_const of { out : access }  (** [out = <float literal>] *)
  | Copy of { out : access; src : access }  (** [out = src] *)

(** [match_block ctx pat block] — on success the context holds the
    solution; on failure the context is reset. A ctx is single-use:
    matching again with the same ctx raises (via [Support.Diag]) instead
    of silently clobbering the previous solution's bindings — call
    {!reset_ctx} (or create a fresh ctx) to match again. *)
val match_block : ctx -> stmt_pattern -> Core.block -> bool

(** Clear the solution state and the consumed flag so the ctx (and its
    placeholders) can be used for another [match_block]. *)
val reset_ctx : ctx -> unit

(** {2 Rejection reporting} *)

(** Which stage rejected a failed {!match_block}: [Shape] — the block's
    op chain does not have the pattern's form (op counts, load/store
    structure, arithmetic ops); [Unify] — the op chain matched, but the
    array subscripts could not be unified with the pattern accesses. *)
type reject = Shape | Unify

(** Stage name for remarks: ["op-chain"] / ["access-unification"]. *)
val reject_stage : reject -> string

(** After a failed [match_block]: the rejecting stage ([None] after a
    success or before any match). Survives {!reset_ctx}-free re-reads;
    overwritten by the next [match_block] on this ctx. *)
val last_reject : ctx -> reject option

(** {2 Reading the solution} (valid only after a successful match) *)

val iv_of : ctx -> placeholder -> Core.value
val array_of : ctx -> array_placeholder -> Core.value

(** Constant matched by [Init_const]. *)
val const_of : ctx -> float

(** [solution_extent ctx ph]: trip count of the loop binding the matched
    induction variable, when its bounds are constant. *)
val solution_extent : ctx -> placeholder -> int option
