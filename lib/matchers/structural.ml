open Ir
module A = Affine.Affine_ops

type t =
  | For of (Core.op -> bool) option * t
  | Stmts of t list
  | Body of (Core.block -> bool)
  | Any

let for_ ?filter child = For (filter, child)
let stmts children = Stmts children
let body f = Body f
let any = Any

let rec perfect ~depth ~body_pred =
  if depth <= 0 then Body body_pred
  else For (None, perfect ~depth:(depth - 1) ~body_pred)

let perfect ~depth body_pred = perfect ~depth ~body_pred

let block_of_op op =
  (* The single body block of a region-carrying op. *)
  Core.single_block op 0

let non_terminator_ops (b : Core.block) =
  List.filter (fun o -> not (Dialect.is_terminator o)) (Core.ops_of_block b)

let rec matches t (op : Core.op) =
  match t with
  | Any -> true
  | For (filter, child) ->
      A.is_for op
      && (match filter with Some f -> f op | None -> true)
      && matches_in_block child (block_of_op op)
  | Stmts _ | Body _ ->
      (* These describe block contents, not a single op. *)
      false

and matches_in_block t (b : Core.block) =
  match t with
  | Any -> true
  | Body f ->
      (* Loop-free body required. *)
      List.for_all (fun o -> not (A.is_for o)) (non_terminator_ops b) && f b
  | For _ -> (
      match non_terminator_ops b with
      | [ only ] -> matches t only
      | _ -> false)
  | Stmts children ->
      let ops = non_terminator_ops b in
      List.length ops = List.length children
      && List.for_all2 matches children ops

(* [explain] mirrors [matches] but names the first failing structural
   constraint — the "control-flow shape" stage of near-miss remarks. *)
let rec explain t (op : Core.op) =
  match t with
  | Any -> Ok ()
  | For (filter, child) ->
      if not (A.is_for op) then
        Error (Printf.sprintf "expected affine.for, found %s" op.Core.o_name)
      else if not (match filter with Some f -> f op | None -> true) then
        Error "loop filter rejected the affine.for"
      else explain_in_block child (block_of_op op)
  | Stmts _ | Body _ ->
      Error
        (Printf.sprintf "matcher describes block contents, but %s is an op"
           op.Core.o_name)

and explain_in_block t (b : Core.block) =
  match t with
  | Any -> Ok ()
  | Body f ->
      if List.exists A.is_for (non_terminator_ops b) then
        Error "body is not loop-free"
      else if not (f b) then Error "body predicate rejected the block"
      else Ok ()
  | For _ -> (
      match non_terminator_ops b with
      | [ only ] -> explain t only
      | ops ->
          Error
            (Printf.sprintf "expected a single nested loop, found %d \
                             statements"
               (List.length ops)))
  | Stmts children -> (
      let ops = non_terminator_ops b in
      if List.length ops <> List.length children then
        Error
          (Printf.sprintf "expected %d statements, found %d"
             (List.length children) (List.length ops))
      else
        match
          List.find_opt
            (fun (c, o) -> Result.is_error (explain c o))
            (List.combine children ops)
        with
        | Some (c, o) -> explain c o
        | None -> Ok ())

let matched_nest ~depth op =
  if not (A.is_for op) then None
  else
    let nest = Affine.Loops.perfect_nest op in
    if List.length nest = depth then Some nest else None

let explain_nest ~depth op =
  if not (A.is_for op) then
    Error (Printf.sprintf "expected affine.for, found %s" op.Core.o_name)
  else
    let nest = Affine.Loops.perfect_nest op in
    let found = List.length nest in
    if found = depth then Ok nest
    else
      Error
        (Printf.sprintf "expected a perfect loop nest of depth %d, found \
                         depth %d"
           depth found)
