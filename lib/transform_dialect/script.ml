open Ir
module T = Transforms
module D = Support.Diag

type step =
  | Tile of int list
  | Interchange
  | Fuse of T.Loop_fuse.heuristic
  | Unroll of int
  | Lower_affine
  | Lower_linalg of int option
  | Blis_schedule of T.Blis_schedule.blocking
  | Raise of string
  | Canonicalize of bool
  | Dce
  | Reorder_chains
  | To_blas

let equal_step (a : step) (b : step) = a = b

let step_name = function
  | Tile sizes ->
      Printf.sprintf "transform.tile[%s]"
        (String.concat "," (List.map string_of_int sizes))
  | Interchange -> "transform.interchange"
  | Fuse h ->
      Printf.sprintf "transform.fuse[%s]" (T.Loop_fuse.heuristic_to_string h)
  | Unroll f -> Printf.sprintf "transform.unroll[%d]" f
  | Lower_affine -> "transform.lower_affine"
  | Lower_linalg None -> "transform.lower_linalg"
  | Lower_linalg (Some s) -> Printf.sprintf "transform.lower_linalg[%d]" s
  | Blis_schedule { T.Blis_schedule.mc; nc; kc } ->
      Printf.sprintf "transform.blis_schedule[mc=%d,nc=%d,kc=%d]" mc nc kc
  | Raise set -> Printf.sprintf "transform.raise[%s]" set
  | Canonicalize false -> "transform.canonicalize"
  | Canonicalize true -> "transform.canonicalize[fast-math]"
  | Dce -> "transform.dce"
  | Reorder_chains -> "transform.reorder_chains"
  | To_blas -> "transform.to_blas"

let of_pluto (c : T.Pluto.config) =
  (Fuse c.T.Pluto.fusion :: (if c.T.Pluto.vectorize then [ Interchange ] else []))
  @ (if c.T.Pluto.tile > 1 then [ Tile [ c.T.Pluto.tile ] ] else [])

(* ---- step <-> op --------------------------------------------------------- *)

let op_fields = function
  | Tile sizes -> ("transform.tile", [ ("sizes", Attr.Ints sizes) ])
  | Interchange -> ("transform.interchange", [])
  | Fuse h ->
      ( "transform.fuse",
        [ ("heuristic", Attr.Str (T.Loop_fuse.heuristic_to_string h)) ] )
  | Unroll f -> ("transform.unroll", [ ("factor", Attr.Int f) ])
  | Lower_affine -> ("transform.lower_affine", [])
  | Lower_linalg None -> ("transform.lower_linalg", [])
  | Lower_linalg (Some s) ->
      ("transform.lower_linalg", [ ("tile_size", Attr.Int s) ])
  | Blis_schedule { T.Blis_schedule.mc; nc; kc } ->
      ( "transform.blis_schedule",
        [ ("kc", Attr.Int kc); ("mc", Attr.Int mc); ("nc", Attr.Int nc) ] )
  | Raise set -> ("transform.raise", [ ("set", Attr.Str set) ])
  | Canonicalize false -> ("transform.canonicalize", [])
  | Canonicalize true ->
      ("transform.canonicalize", [ ("fast_math", Attr.Int 1) ])
  | Dce -> ("transform.dce", [])
  | Reorder_chains -> ("transform.reorder_chains", [])
  | To_blas -> ("transform.to_blas", [])

let heuristic_of_string op = function
  | "nofuse" -> T.Loop_fuse.No_fuse
  | "smartfuse" -> T.Loop_fuse.Smart_fuse
  | "maxfuse" -> T.Loop_fuse.Max_fuse
  | other ->
      D.errorf ~loc:op.Core.o_loc "transform.fuse: unknown heuristic %S" other

let step_of_op (op : Core.op) =
  (* The dialect verifier already vetted attribute shapes whenever the
     script went through [of_steps]/[parse]; re-check lazily here so
     destructuring a hand-built module still fails cleanly. *)
  (match Dialect.lookup op.Core.o_name with
  | Some d -> d.Dialect.od_verify op
  | None ->
      D.errorf ~loc:op.Core.o_loc
        "%s is not a transform operation (a script may contain only \
         transform.* ops)"
        op.Core.o_name);
  match op.Core.o_name with
  | "transform.tile" -> Tile (Attr.get_ints (Core.attr op "sizes"))
  | "transform.interchange" -> Interchange
  | "transform.fuse" ->
      Fuse (heuristic_of_string op (Attr.get_str (Core.attr op "heuristic")))
  | "transform.unroll" -> Unroll (Attr.get_int (Core.attr op "factor"))
  | "transform.lower_affine" -> Lower_affine
  | "transform.lower_linalg" ->
      Lower_linalg
        (Option.map Attr.get_int (Core.find_attr op "tile_size"))
  | "transform.blis_schedule" ->
      Blis_schedule
        {
          T.Blis_schedule.mc = Attr.get_int (Core.attr op "mc");
          nc = Attr.get_int (Core.attr op "nc");
          kc = Attr.get_int (Core.attr op "kc");
        }
  | "transform.raise" -> Raise (Attr.get_str (Core.attr op "set"))
  | "transform.canonicalize" ->
      Canonicalize (Core.find_attr op "fast_math" = Some (Attr.Int 1))
  | "transform.dce" -> Dce
  | "transform.reorder_chains" -> Reorder_chains
  | "transform.to_blas" -> To_blas
  | other ->
      D.errorf ~loc:op.Core.o_loc "unknown transform operation %S" other

(* ---- module <-> steps ---------------------------------------------------- *)

let of_steps steps =
  Ops.register ();
  let m = Core.create_module () in
  let b = Builder.at_end (Core.module_block m) in
  List.iter
    (fun step ->
      let name, attrs = op_fields step in
      ignore (Builder.build b ~attrs name))
    steps;
  Verifier.verify m;
  m

let steps_of (m : Core.op) =
  Ops.register ();
  if m.Core.o_name <> "builtin.module" then
    D.errorf ~loc:m.Core.o_loc
      "a transform script must be a builtin.module (found %s)" m.Core.o_name;
  List.map step_of_op (Core.ops_of_block (Core.module_block m))

let print m = Printer.op_to_string m ^ "\n"

let parse ?file src =
  Ops.register ();
  let m = Parser.parse_module ?file src in
  (* Reject payload IR handed in by mistake: every op must be a
     transform op (steps_of also verifies each). *)
  ignore (steps_of m);
  m

let parse_steps ?file src = steps_of (parse ?file src)
