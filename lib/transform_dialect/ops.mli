(** The [transform] dialect: transformations as first-class IR.

    Every operation is a zero-operand, zero-result, region-free op whose
    parameters are plain attributes, so a transform script is ordinary IR
    that prints and parses through the generic op form
    ([{v "transform.tile"() {sizes = [32]} : () -> () v}]) with no
    parser extensions. A script is a [builtin.module] whose block holds
    transform ops in application order (sequence semantics); see
    {!Script} for construction and {!Interp} for application against a
    payload module.

    Attribute discipline: only [Int], [Ints] and [Str] attribute kinds
    are allowed (the generic attribute grammar round-trips exactly
    those); boolean parameters are spelled [Int 0/1]. The per-op
    verifiers below enforce shape and ranges, so a malformed script is
    rejected at parse/verify time, before interpretation. *)

(** Fully qualified names of every transform op, sorted. *)
val op_names : string list

(** True iff [name] starts with ["transform."]. *)
val is_transform_op_name : string -> bool

(** Registers the op definitions ({!Ir.Dialect.register_once});
    idempotent, write-once-before-parallelism like every dialect. *)
val register : unit -> unit
