(** The transform-script interpreter: applies a script's ops, in order,
    to a payload module (sequence semantics).

    Each step resolves through a registry keyed by op name, so higher
    layers can contribute implementations the core library cannot see
    (the [mlt] library registers [transform.raise]'s tactic sets,
    [transform.reorder_chains] and [transform.to_blas] from
    [Mlt.Pipeline.register_dialects]). The registry is
    write-once-before-parallelism like {!Ir.Dialect}: populate it on the
    spawning domain before worker domains interpret scripts.

    Observability: every step runs inside an {!Ir.Trace} span (category
    ["transform"]) and emits an [Analysis] remark when it applied to
    nothing — the per-op inapplicability note that makes a silently
    useless schedule debuggable. *)

open Ir

(** [register_step name impl] installs (or replaces) the implementation
    of op [name]. [impl t_op] runs once per script compilation and may
    precompute from [t_op]'s attributes (e.g. freeze a pattern set); the
    returned closure applies the step to a payload root and returns how
    many times it applied (0 = inapplicable). *)
val register_step : string -> (Core.op -> Core.op -> int) -> unit

(** Registered step names, sorted (built-ins register on first use). *)
val registered_steps : unit -> string list

(** A resolved step: label, source location (for remarks), and the
    applier. *)
type compiled = {
  c_name : string;
  c_loc : Support.Loc.t;
  c_apply : Core.op -> int;
}

(** [compile script] resolves every op of a script module; raises
    {!Support.Diag.Error} on a malformed script or an op with no
    registered implementation. Compilation is the moment to do it on a
    spawning domain: the returned closures are safe to share read-only
    with workers (frozen pattern sets included). *)
val compile : Core.op -> compiled list

val compile_steps : Script.step list -> compiled list

(** [apply_step c payload] — one step, with its trace span and
    inapplicability remark; returns the application count. *)
val apply_step : compiled -> Core.op -> int

(** One {!Ir.Pass} per script op (named {!Script.step_name}), for
    running a script under an instrumented pass manager. *)
val passes_of_script : Core.op -> Pass.t list

val passes_of_steps : Script.step list -> Pass.t list

(** [run script payload] — compile and apply every step to [payload]
    (typically a function). The caller verifies the payload afterwards,
    as pipelines do. *)
val run : Core.op -> Core.op -> unit
