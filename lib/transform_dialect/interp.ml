open Ir
module T = Transforms
module A = Affine.Affine_ops
module D = Support.Diag

(* ---- the step registry --------------------------------------------------- *)

type impl = Core.op -> Core.op -> int

let registry : (string, impl) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let register_step name impl =
  Mutex.protect registry_mutex (fun () -> Hashtbl.replace registry name impl)

let lookup_step name =
  Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry name)

(* ---- payload measurements (application counts) --------------------------- *)

(* The same maximal-perfect-nest discovery [Loop_tile.tile_all] performs,
   as a read-only collection — used both to count tileable nests and to
   drive the per-dimension [sizes] variant. *)
let rec collect_nests acc (op : Core.op) =
  if A.is_for op then begin
    let loops = Affine.Loops.perfect_nest op in
    if List.length loops > 1 && Affine.Loops.nest_trip_counts loops <> None
    then loops :: acc
    else if List.length loops = 1 then
      List.fold_left collect_nests acc (Affine.Loops.body_ops op)
    else acc
  end
  else
    Array.fold_left
      (fun acc (r : Core.region) ->
        List.fold_left
          (fun acc (blk : Core.block) ->
            List.fold_left collect_nests acc (Core.ops_of_block blk))
          acc r.r_blocks)
      acc op.Core.o_regions

let tileable_nests root = List.rev (collect_nests [] root)

let count_ops_named root name =
  let n = ref 0 in
  Core.walk root (fun op -> if String.equal op.Core.o_name name then incr n);
  !n

let count_linalg_ops root =
  let n = ref 0 in
  Core.walk root (fun op ->
      if String.starts_with ~prefix:"linalg." op.Core.o_name then incr n);
  !n

(* ---- built-in step implementations --------------------------------------- *)

(* [Tile [s]] must stay byte-identical to [Loop_tile.tile_all ~size:s]
   (the Pluto elaboration depends on it), so the uniform case delegates
   to it; per-dimension sizes tile each discovered nest with the sizes
   truncated/padded (with 1 = untiled) to the nest's depth. *)
let tile_impl t_op =
  let sizes = Attr.get_ints (Core.attr t_op "sizes") in
  match sizes with
  | [ size ] ->
      fun payload ->
        let n = List.length (tileable_nests payload) in
        T.Loop_tile.tile_all payload ~size;
        n
  | sizes ->
      fun payload ->
        let nests = tileable_nests payload in
        List.iter
          (fun loops ->
            let depth = List.length loops in
            let rec fit i = function
              | s :: rest when i < depth -> s :: fit (i + 1) rest
              | _ when i < depth -> List.init (depth - i) (fun _ -> 1)
              | _ -> []
            in
            T.Loop_tile.tile_nest loops ~sizes:(fit 0 sizes))
          nests;
        List.length nests

let interchange_impl _t_op payload =
  let n = T.Interchange.vectorize_func payload in
  (* Interchange of reduction loops assumes reassociation: mark the code
     fast-math so the machine model may vectorize reductions, exactly as
     [Pluto.apply]'s vectorize step does. *)
  Core.walk payload (fun op ->
      if Core.is_func op then Core.set_attr op "fast_math" (Attr.Bool true));
  n

let fuse_impl t_op =
  let h =
    match Attr.get_str (Core.attr t_op "heuristic") with
    | "nofuse" -> T.Loop_fuse.No_fuse
    | "smartfuse" -> T.Loop_fuse.Smart_fuse
    | "maxfuse" -> T.Loop_fuse.Max_fuse
    | other ->
        D.errorf ~loc:t_op.Core.o_loc
          "transform.fuse: unknown heuristic %S" other
  in
  fun payload -> T.Loop_fuse.run h payload

let unroll_impl t_op =
  let factor = Attr.get_int (Core.attr t_op "factor") in
  fun payload -> T.Loop_unroll.unroll_innermost payload ~factor

let lower_affine_impl _t_op payload =
  let n = List.length (Affine.Loops.all_loops payload) in
  T.Lower_affine.run payload;
  n

let lower_linalg_impl t_op =
  let tile_size = Option.map Attr.get_int (Core.find_attr t_op "tile_size") in
  fun payload ->
    let n = count_linalg_ops payload in
    (match tile_size with
    | Some size -> T.Lower_linalg.run_tiled ~size payload
    | None -> T.Lower_linalg.run payload);
    n

let blis_impl t_op =
  let blocking =
    {
      T.Blis_schedule.mc = Attr.get_int (Core.attr t_op "mc");
      nc = Attr.get_int (Core.attr t_op "nc");
      kc = Attr.get_int (Core.attr t_op "kc");
    }
  in
  fun payload ->
    let n = count_ops_named payload "affine.matmul" in
    T.Blis_schedule.run ~blocking payload;
    n

(* Only the SCF set is implementable from this library; [Mlt.Pipeline]
   replaces this implementation with one that also knows the tactic
   sets ("linalg", "affine-matmul"). *)
let raise_impl t_op =
  match Attr.get_str (Core.attr t_op "set") with
  | "affine" -> T.Raise_scf.run
  | other ->
      D.errorf ~loc:t_op.Core.o_loc
        "transform.raise: set %S needs the tactic library (call \
         Mlt.Pipeline.register_dialects first)"
        other

let canonicalize_impl t_op =
  let fast_math = Core.find_attr t_op "fast_math" = Some (Attr.Int 1) in
  fun payload -> T.Canonicalize.run ~fast_math payload

let builtin_registered = Atomic.make false

(* Built-ins never clobber an already-registered implementation:
   [Mlt.Pipeline] may have installed its richer [transform.raise]
   before the first compile forced this registration. *)
let register_builtin name impl =
  Mutex.protect registry_mutex (fun () ->
      if not (Hashtbl.mem registry name) then Hashtbl.add registry name impl)

let register_builtins () =
  Dialect.register_once builtin_registered (fun () ->
      Ops.register ();
      register_builtin "transform.tile" tile_impl;
      register_builtin "transform.interchange" interchange_impl;
      register_builtin "transform.fuse" fuse_impl;
      register_builtin "transform.unroll" unroll_impl;
      register_builtin "transform.lower_affine" lower_affine_impl;
      register_builtin "transform.lower_linalg" lower_linalg_impl;
      register_builtin "transform.blis_schedule" blis_impl;
      register_builtin "transform.raise" raise_impl;
      register_builtin "transform.canonicalize" canonicalize_impl;
      register_builtin "transform.dce" (fun _t_op -> T.Dce.run))

let registered_steps () =
  register_builtins ();
  List.sort compare
    (Mutex.protect registry_mutex (fun () ->
         Hashtbl.fold (fun k _ acc -> k :: acc) registry []))

(* ---- compilation and application ----------------------------------------- *)

type compiled = {
  c_name : string;
  c_loc : Support.Loc.t;
  c_apply : Core.op -> int;
}

let compile_op (op : Core.op) =
  let step = Script.step_of_op op in
  match lookup_step op.Core.o_name with
  | Some impl ->
      {
        c_name = Script.step_name step;
        c_loc = op.Core.o_loc;
        c_apply = impl op;
      }
  | None ->
      D.errorf ~loc:op.Core.o_loc
        "no interpreter registered for %s (registered: %s)" op.Core.o_name
        (String.concat ", " (registered_steps ()))

let compile script =
  register_builtins ();
  if script.Core.o_name <> "builtin.module" then
    D.errorf ~loc:script.Core.o_loc
      "a transform script must be a builtin.module (found %s)"
      script.Core.o_name;
  List.map compile_op (Core.ops_of_block (Core.module_block script))

let compile_steps steps = compile (Script.of_steps steps)

let apply_step c payload =
  Trace.span ~cat:"transform" c.c_name (fun () ->
      let n = c.c_apply payload in
      if n = 0 && Remark.enabled () then
        Remark.remark ~loc:c.c_loc ~context:"transform" Remark.Analysis
          "%s did not apply: no matching construct in the payload" c.c_name;
      n)

let pass_of_compiled c =
  Pass.make ~name:c.c_name (fun payload -> ignore (apply_step c payload))

let passes_of_script script = List.map pass_of_compiled (compile script)
let passes_of_steps steps = List.map pass_of_compiled (compile_steps steps)

let run script payload =
  List.iter (fun c -> ignore (apply_step c payload)) (compile script)
