(** Transform scripts: building, printing, parsing and destructuring
    sequences of {!Ops} operations.

    The canonical carrier is a [builtin.module] whose single block holds
    transform ops in application order. Because every op uses the
    generic print form, scripts round-trip through the ordinary
    {!Ir.Printer}/{!Ir.Parser} pair — a schedule is IR text a user can
    write, version and pass to [mlt-opt --transform-script=FILE] or a
    batch manifest. *)

open Ir

(** The structured view of one transform op. [Canonicalize b] enables
    fast-math folds when [b]; [Lower_linalg (Some s)] takes the
    cache-tiled path. *)
type step =
  | Tile of int list
  | Interchange
  | Fuse of Transforms.Loop_fuse.heuristic
  | Unroll of int
  | Lower_affine
  | Lower_linalg of int option
  | Blis_schedule of Transforms.Blis_schedule.blocking
  | Raise of string
  | Canonicalize of bool
  | Dce
  | Reorder_chains
  | To_blas

val equal_step : step -> step -> bool

(** A compact descriptor, e.g. ["transform.tile[32]"],
    ["transform.fuse[smartfuse]"] — used for pass names, tuner candidate
    labels and remarks. *)
val step_name : step -> string

(** The elaboration of one Pluto configuration: fuse, then (with
    [vectorize]) interchange, then (with [tile > 1]) tile — the exact
    sequence {!Transforms.Pluto.apply} runs, as script steps. *)
val of_pluto : Transforms.Pluto.config -> step list

(** [of_steps steps] builds the script module (registers the dialect
    first; the result verifies). *)
val of_steps : step list -> Core.op

(** [step_of_op op] destructures one transform op (verifying it);
    raises {!Support.Diag.Error} on anything else. *)
val step_of_op : Core.op -> step

(** [steps_of m] destructures a script module back into steps; raises
    {!Support.Diag.Error} if [m] is not a [builtin.module] holding only
    well-formed transform ops. *)
val steps_of : Core.op -> step list

(** [print m] — the script as parseable IR text (trailing newline). *)
val print : Core.op -> string

(** [parse ?file src] — parse and validate a script; errors carry
    [file] positions. *)
val parse : ?file:string -> string -> Core.op

(** [parse_steps ?file src] = [steps_of (parse ?file src)]. *)
val parse_steps : ?file:string -> string -> step list
