open Ir
module D = Support.Diag

let prefix = "transform."

let is_transform_op_name name = String.starts_with ~prefix name

(* ---- attribute shape checks --------------------------------------------- *)

let err (op : Core.op) fmt =
  Printf.ksprintf
    (fun msg -> D.errorf ~loc:op.Core.o_loc "%s: %s" op.Core.o_name msg)
    fmt

let check_plain (op : Core.op) =
  if Core.num_operands op > 0 then err op "takes no operands";
  if Core.num_results op > 0 then err op "produces no results";
  if Array.length op.Core.o_regions > 0 then err op "carries no regions"

(* Every parameter must round-trip through the generic attribute grammar:
   Int, Ints and Str only (Bool/Float print forms do not re-parse). *)
let check_attr_kinds (op : Core.op) ~allowed =
  List.iter
    (fun (k, v) ->
      if not (List.mem k allowed) then err op "unknown attribute %S" k;
      match (v : Attr.t) with
      | Attr.Int _ | Attr.Ints _ | Attr.Str _ -> ()
      | _ ->
          err op
            "attribute %S must be an integer, integer list or string \
             (the only kinds the generic form round-trips)"
            k)
    op.Core.o_attrs

let required_int op name =
  match Core.find_attr op name with
  | Some (Attr.Int i) -> i
  | Some _ -> err op "attribute %S must be an integer" name
  | None -> err op "missing required attribute %S" name

let positive_int op name =
  let i = required_int op name in
  if i < 1 then err op "attribute %S must be >= 1 (got %d)" name i;
  i

(* ---- per-op verifiers ---------------------------------------------------- *)

let fuse_heuristics = [ "nofuse"; "smartfuse"; "maxfuse" ]
let raise_sets = [ "linalg"; "affine-matmul"; "affine" ]

let verify_tile op =
  check_plain op;
  check_attr_kinds op ~allowed:[ "sizes" ];
  match Core.find_attr op "sizes" with
  | Some (Attr.Ints sizes) ->
      if sizes = [] then err op "attribute \"sizes\" must be non-empty";
      List.iter
        (fun s -> if s < 1 then err op "tile size %d must be >= 1" s)
        sizes
  | Some _ -> err op "attribute \"sizes\" must be an integer list"
  | None -> err op "missing required attribute \"sizes\""

let verify_fuse op =
  check_plain op;
  check_attr_kinds op ~allowed:[ "heuristic" ];
  match Core.find_attr op "heuristic" with
  | Some (Attr.Str h) ->
      if not (List.mem h fuse_heuristics) then
        err op "unknown fusion heuristic %S (expected %s)" h
          (String.concat ", " fuse_heuristics)
  | Some _ -> err op "attribute \"heuristic\" must be a string"
  | None -> err op "missing required attribute \"heuristic\""

let verify_unroll op =
  check_plain op;
  check_attr_kinds op ~allowed:[ "factor" ];
  let f = required_int op "factor" in
  if f < 2 then err op "attribute \"factor\" must be >= 2 (got %d)" f

let verify_lower_linalg op =
  check_plain op;
  check_attr_kinds op ~allowed:[ "tile_size" ];
  match Core.find_attr op "tile_size" with
  | None -> ()
  | Some (Attr.Int s) ->
      if s < 2 then err op "attribute \"tile_size\" must be >= 2 (got %d)" s
  | Some _ -> err op "attribute \"tile_size\" must be an integer"

let verify_blis op =
  check_plain op;
  check_attr_kinds op ~allowed:[ "mc"; "nc"; "kc" ];
  ignore (positive_int op "mc");
  ignore (positive_int op "nc");
  ignore (positive_int op "kc")

let verify_raise op =
  check_plain op;
  check_attr_kinds op ~allowed:[ "set" ];
  match Core.find_attr op "set" with
  | Some (Attr.Str s) ->
      if not (List.mem s raise_sets) then
        err op "unknown raising set %S (expected %s)" s
          (String.concat ", " raise_sets)
  | Some _ -> err op "attribute \"set\" must be a string"
  | None -> err op "missing required attribute \"set\""

let verify_canonicalize op =
  check_plain op;
  check_attr_kinds op ~allowed:[ "fast_math" ];
  match Core.find_attr op "fast_math" with
  | None | Some (Attr.Int (0 | 1)) -> ()
  | Some _ -> err op "attribute \"fast_math\" must be 0 or 1"

let verify_bare op =
  check_plain op;
  check_attr_kinds op ~allowed:[]

(* ---- registration -------------------------------------------------------- *)

let defs =
  [
    Dialect.def "transform.tile" ~verify:verify_tile
      ~summary:"tile affine loop nests ({sizes = [..]}; one size tiles \
                every dimension)";
    Dialect.def "transform.interchange" ~verify:verify_bare
      ~summary:"rotate a unit-stride loop innermost (vectorizing \
                interchange; marks functions fast_math)";
    Dialect.def "transform.fuse" ~verify:verify_fuse
      ~summary:"fuse adjacent loops ({heuristic = \"nofuse\" | \
                \"smartfuse\" | \"maxfuse\"})";
    Dialect.def "transform.unroll" ~verify:verify_unroll
      ~summary:"unroll innermost loops ({factor = N})";
    Dialect.def "transform.lower_affine" ~verify:verify_bare
      ~summary:"lower the affine dialect to SCF + memref";
    Dialect.def "transform.lower_linalg" ~verify:verify_lower_linalg
      ~summary:"lower Linalg ops to affine loops ({tile_size = N} for \
                the cache-tiled path)";
    Dialect.def "transform.blis_schedule" ~verify:verify_blis
      ~summary:"lower affine.matmul through the packed BLIS schedule \
                ({mc, nc, kc})";
    Dialect.def "transform.raise" ~verify:verify_raise
      ~summary:"apply a raising tactic set ({set = \"linalg\" | \
                \"affine-matmul\" | \"affine\"})";
    Dialect.def "transform.canonicalize" ~verify:verify_canonicalize
      ~summary:"algebraic canonicalization ({fast_math = 1} enables \
                value-unsafe folds)";
    Dialect.def "transform.dce" ~verify:verify_bare
      ~summary:"dead-code and dead-buffer elimination";
    Dialect.def "transform.reorder_chains" ~verify:verify_bare
      ~summary:"re-parenthesize matmul chains optimally (MLT-Blas)";
    Dialect.def "transform.to_blas" ~verify:verify_bare
      ~summary:"replace Linalg ops with vendor-library calls";
  ]

let op_names =
  List.sort compare (List.map (fun d -> d.Dialect.od_name) defs)

let registered = Atomic.make false

let register () =
  Dialect.register_once registered (fun () -> Dialect.register_all defs)
