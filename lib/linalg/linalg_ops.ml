open Ir
module D = Support.Diag

let names =
  [
    "linalg.matmul";
    "linalg.matvec";
    "linalg.transpose";
    "linalg.reshape";
    "linalg.conv2d_nchw";
    "linalg.contract";
    "linalg.fill";
  ]

let is_linalg (op : Core.op) = List.mem op.o_name names
let is_matmul (op : Core.op) = String.equal op.o_name "linalg.matmul"
let is_matvec (op : Core.op) = String.equal op.o_name "linalg.matvec"
let is_transpose (op : Core.op) = String.equal op.o_name "linalg.transpose"
let is_reshape (op : Core.op) = String.equal op.o_name "linalg.reshape"
let is_conv2d (op : Core.op) = String.equal op.o_name "linalg.conv2d_nchw"
let is_contract (op : Core.op) = String.equal op.o_name "linalg.contract"
let is_fill (op : Core.op) = String.equal op.o_name "linalg.fill"

let shape_of (v : Core.value) name =
  match Typ.static_shape v.v_typ with
  | Some s -> s
  | None ->
      D.errorf "%s: operand must be a statically shaped memref, got %s" name
        (Typ.to_string v.v_typ)

let expect_rank name v r =
  if List.length (shape_of v name) <> r then
    D.errorf "%s: expected rank-%d operand" name r

let verify_matmul (op : Core.op) =
  if Core.num_operands op <> 3 then D.errorf "linalg.matmul: expects A, B, C";
  Array.iter (fun v -> expect_rank "linalg.matmul" v 2) op.o_operands;
  match Array.to_list op.o_operands |> List.map (fun v -> shape_of v "") with
  | [ [ m; k ]; [ k'; n ]; [ m'; n' ] ] ->
      if k <> k' || m <> m' || n <> n' then
        D.errorf "linalg.matmul: dimension mismatch (%dx%d)*(%dx%d)->(%dx%d)"
          m k k' n m' n'
  | _ -> assert false

let verify_matvec (op : Core.op) =
  if Core.num_operands op <> 3 then D.errorf "linalg.matvec: expects A, x, y";
  match Array.to_list op.o_operands |> List.map (fun v -> shape_of v "linalg.matvec") with
  | [ [ m; n ]; [ n' ]; [ m' ] ] ->
      if n <> n' || m <> m' then D.errorf "linalg.matvec: dimension mismatch"
  | _ -> D.errorf "linalg.matvec: expected ranks (2, 1, 1)"

let transposed_shape perm shape =
  let a = Array.of_list shape in
  Array.to_list (Array.map (fun p -> a.(p)) perm)

let verify_transpose (op : Core.op) =
  if Core.num_operands op <> 2 then
    D.errorf "linalg.transpose: expects input and output";
  let perm =
    Array.of_list (Attr.get_ints (Core.attr op "permutation"))
  in
  let in_shape = shape_of (Core.operand op 0) "linalg.transpose" in
  let out_shape = shape_of (Core.operand op 1) "linalg.transpose" in
  if Array.length perm <> List.length in_shape then
    D.errorf "linalg.transpose: permutation rank mismatch";
  (try ignore (Affine_map.permutation perm)
   with Invalid_argument _ ->
     D.errorf "linalg.transpose: attribute is not a permutation");
  if transposed_shape perm in_shape <> out_shape then
    D.errorf "linalg.transpose: output shape does not match permutation"

let reshape_check ~grouping in_shape out_shape =
  let in_arr = Array.of_list in_shape in
  List.length grouping = List.length out_shape
  && List.concat grouping = List.init (List.length in_shape) Fun.id
  && List.for_all2
       (fun group out_dim ->
         List.fold_left (fun acc d -> acc * in_arr.(d)) 1 group = out_dim)
       grouping out_shape

let verify_reshape (op : Core.op) =
  if Core.num_operands op <> 2 then
    D.errorf "linalg.reshape: expects input and output";
  let grouping = Attr.get_grouping (Core.attr op "grouping") in
  let in_shape = shape_of (Core.operand op 0) "linalg.reshape" in
  let out_shape = shape_of (Core.operand op 1) "linalg.reshape" in
  let hi, lo =
    if List.length in_shape >= List.length out_shape then
      (in_shape, out_shape)
    else (out_shape, in_shape)
  in
  if not (reshape_check ~grouping hi lo) then
    D.errorf "linalg.reshape: grouping %s does not take %s to %s"
      (Attr.to_string (Attr.Grouping grouping))
      (String.concat "x" (List.map string_of_int in_shape))
      (String.concat "x" (List.map string_of_int out_shape))

let verify_conv2d (op : Core.op) =
  if Core.num_operands op <> 3 then
    D.errorf "linalg.conv2d_nchw: expects I, W, O";
  match
    Array.to_list op.o_operands
    |> List.map (fun v -> shape_of v "linalg.conv2d_nchw")
  with
  | [ [ n; c; h; w ]; [ f; c'; kh; kw ]; [ n'; f'; oh; ow ] ] ->
      if c <> c' || n <> n' || f <> f' then
        D.errorf "linalg.conv2d_nchw: channel/batch mismatch";
      if oh <> h - kh + 1 || ow <> w - kw + 1 then
        D.errorf "linalg.conv2d_nchw: output spatial dims must be valid (no padding)"
  | _ -> D.errorf "linalg.conv2d_nchw: expected rank-4 operands"

let verify_contract (op : Core.op) =
  if Core.num_operands op <> 3 then
    D.errorf "linalg.contract: expects two inputs and an output";
  let maps =
    Attr.get_list (Core.attr op "indexing_maps") |> List.map Attr.get_map
  in
  if List.length maps <> 3 then
    D.errorf "linalg.contract: expects three indexing maps";
  let n_dims =
    match maps with m :: _ -> m.Affine_map.n_dims | [] -> assert false
  in
  List.iteri
    (fun i (m : Affine_map.t) ->
      if m.n_dims <> n_dims then
        D.errorf "linalg.contract: map %d has inconsistent dim count" i;
      let v = Core.operand op i in
      if Affine_map.n_results m <> List.length (shape_of v "linalg.contract")
      then D.errorf "linalg.contract: map %d arity vs operand rank" i)
    maps

let verify_fill (op : Core.op) =
  if Core.num_operands op <> 1 then D.errorf "linalg.fill: expects output";
  ignore (Attr.get_float (Core.attr op "value"))

let registered = Atomic.make false

let register () =
  Dialect.register_once registered @@ fun () ->
    Std_dialect.Memref_ops.register ();
    Dialect.register_all
      [
        Dialect.def ~verify:verify_matmul ~summary:"C += A * B" "linalg.matmul";
        Dialect.def ~verify:verify_matvec ~summary:"y += A * x" "linalg.matvec";
        Dialect.def ~verify:verify_transpose ~summary:"permute dimensions"
          "linalg.transpose";
        Dialect.def ~verify:verify_reshape
          ~summary:"collapse/expand contiguous dims" "linalg.reshape";
        Dialect.def ~verify:verify_conv2d ~summary:"2-d convolution, NCHW"
          "linalg.conv2d_nchw";
        Dialect.def ~verify:verify_contract
          ~summary:"generic Einstein contraction" "linalg.contract";
        Dialect.def ~verify:verify_fill ~summary:"broadcast a scalar"
          "linalg.fill";
      ]

let build3 name b x y z =
  register ();
  Builder.build b ~operands:[ x; y; z ] name

let matmul b = build3 "linalg.matmul" b
let matvec b = build3 "linalg.matvec" b
let conv2d_nchw b = build3 "linalg.conv2d_nchw" b

let transpose b ~perm input output =
  register ();
  Builder.build b ~operands:[ input; output ]
    ~attrs:[ ("permutation", Attr.Ints (Array.to_list perm)) ]
    "linalg.transpose"

let reshape b ~grouping input output =
  register ();
  Builder.build b ~operands:[ input; output ]
    ~attrs:[ ("grouping", Attr.Grouping grouping) ]
    "linalg.reshape"

let contract b ~maps a bv c =
  register ();
  Builder.build b ~operands:[ a; bv; c ]
    ~attrs:
      [ ("indexing_maps", Attr.List (List.map (fun m -> Attr.Map m) maps)) ]
    "linalg.contract"

let fill b ~value c =
  register ();
  Builder.build b ~operands:[ c ] ~attrs:[ ("value", Attr.Float value) ]
    "linalg.fill"

let transpose_perm op =
  Array.of_list (Attr.get_ints (Core.attr op "permutation"))

let reshape_grouping op = Attr.get_grouping (Core.attr op "grouping")

let contract_maps op =
  Attr.get_list (Core.attr op "indexing_maps") |> List.map Attr.get_map

let ins (op : Core.op) =
  let n = Core.num_operands op in
  Array.to_list (Array.sub op.o_operands 0 (n - 1))

let out (op : Core.op) = Core.operand op (Core.num_operands op - 1)
