open Ir
module A = Affine.Affine_ops
module D = Support.Diag

let const_bounds loop =
  match A.for_const_bounds loop with
  | Some (0, ub) when A.for_step loop = 1 -> ub
  | _ ->
      D.errorf
        "tile: loop bounds must be constant, zero-based, unit-step"

let tile_nest loops ~sizes =
  if List.length loops <> List.length sizes then
    invalid_arg "tile_nest: sizes do not pair with loops";
  let outermost = List.hd loops in
  let ubs = List.map const_bounds loops in
  let innermost = List.nth loops (List.length loops - 1) in
  let body_ops = Affine.Loops.body_ops innermost in
  let old_ivs = Affine.Loops.nest_ivs loops in
  (* Effective tiling decision per loop. *)
  let tiled =
    List.map2 (fun ub size -> size > 1 && size < ub) ubs sizes
  in
  let b = Builder.before outermost in
  (* Phase 1: tile loops for the tiled dimensions. *)
  let rec build_tiles b acc = function
    | [] -> build_points b acc []
    | (ub, (size, is_tiled)) :: rest ->
        if is_tiled then
          ignore
            (A.for_ b ~hint:"it"
               ~lb:(Affine_map.constant_map [ 0 ], [])
               ~ub:(Affine_map.constant_map [ ub ], [])
               ~step:size
               (fun b tile_iv ->
                 build_tiles b (acc @ [ Some tile_iv ]) rest))
        else build_tiles b (acc @ [ None ]) rest
  (* Phase 2: point loops, one per original loop. *)
  and build_points b tile_ivs new_ivs =
    match tile_ivs with
    | [] ->
        (* Move the body and substitute ivs. *)
        List.iter
          (fun op ->
            Core.detach_op op;
            ignore (Builder.insert b op))
          body_ops;
        List.iter2
          (fun old_iv new_iv ->
            List.iter
              (fun op -> Core.replace_uses op ~old_v:old_iv ~new_v:new_iv)
              body_ops)
          old_ivs (List.rev new_ivs)
    | tv :: rest ->
        let idx = List.length new_ivs in
        let ub = List.nth ubs idx and size = List.nth sizes idx in
        (match tv with
        | Some tile_iv ->
            (* for %p = %t to min(%t + size, ub) *)
            ignore
              (A.for_ b ~hint:"i"
                 ~lb:(Affine_map.make ~n_dims:1 [ Affine_expr.dim 0 ], [ tile_iv ])
                 ~ub:
                   ( Affine_map.make ~n_dims:1
                       [
                         Affine_expr.add (Affine_expr.dim 0)
                           (Affine_expr.const size);
                         Affine_expr.const ub;
                       ],
                     [ tile_iv ] )
                 (fun b iv -> build_points b rest (iv :: new_ivs)))
        | None ->
            ignore
              (A.for_const b ~hint:"i" ~lb:0 ~ub (fun b iv ->
                   build_points b rest (iv :: new_ivs))))
  in
  build_tiles b [] (List.combine ubs (List.combine sizes tiled));
  Core.erase_op outermost

let tile_all root ~size =
  (* Tile each maximal perfect nest of depth > 1; recurse into depth-1
     loops to find deeper nests in imperfectly nested code. *)
  let rec process (op : Core.op) =
    if A.is_for op then begin
      let loops = Affine.Loops.perfect_nest op in
      if List.length loops > 1 && Affine.Loops.nest_trip_counts loops <> None
      then tile_nest loops ~sizes:(List.map (fun _ -> size) loops)
      else if List.length loops = 1 then
        List.iter process (Affine.Loops.body_ops op)
    end
    else
      Array.iter
        (fun (r : Core.region) ->
          List.iter
            (fun (blk : Core.block) -> List.iter process (Core.ops_of_block blk))
            r.r_blocks)
        op.Core.o_regions
  in
  process root

let pass ~size =
  Pass.make ~name:(Printf.sprintf "tile-%d" size) (fun root ->
      tile_all root ~size)
