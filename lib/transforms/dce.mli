(** Dead-code elimination, including dead-buffer elimination: a locally
    allocated buffer whose value is never read can be removed along with
    the operations that only write it (matrix-chain reordering leaves such
    buffers behind). Conservative: function arguments are always live. *)

open Ir

(** Returns the number of erased operations. *)
val run : Core.op -> int

(** The pure-scalar subset of DCE as a benefit-0 rewrite pattern, for
    composing into combined greedy sets (dead index arithmetic left by a
    nest-consuming raise would otherwise block structural matching on
    sibling nests). Dead buffers and empty loops still need {!run}. *)
val pattern : unit -> Rewriter.pattern

val pass : Pass.t
