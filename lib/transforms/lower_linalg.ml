open Ir
module A = Affine.Affine_ops
module L = Linalg.Linalg_ops
module Arith = Std_dialect.Arith
module D = Support.Diag

let shape_of (v : Core.value) =
  match Typ.static_shape v.Core.v_typ with
  | Some s -> s
  | None -> D.errorf "lower-linalg: dynamic shapes unsupported"

(* Build a nest over [extents]; [body] receives the ivs outermost-first. *)
let build_nest b extents body =
  let hints = [ "i"; "j"; "k"; "l"; "m"; "n"; "o" ] in
  let rec go b ivs = function
    | [] -> body b (List.rev ivs)
    | ub :: rest ->
        let hint = List.nth_opt hints (List.length ivs) in
        ignore
          (A.for_const b ?hint ~lb:0 ~ub (fun b iv -> go b (iv :: ivs) rest))
  in
  go b [] extents

(* C(i,j) += A(i,k) * B(k,j) *)
let lower_matmul b a bm c =
  let m, k =
    match shape_of a with [ m; k ] -> (m, k) | _ -> assert false
  in
  let n = List.nth (shape_of bm) 1 in
  build_nest b [ m; n; k ] (fun b ivs ->
      match ivs with
      | [ i; j; kk ] ->
          let c0 = A.load_simple b c [ i; j ] in
          let x = A.load_simple b a [ i; kk ] in
          let y = A.load_simple b bm [ kk; j ] in
          let s = Arith.addf b c0 (Arith.mulf b x y) in
          ignore (A.store_simple b s c [ i; j ])
      | _ -> assert false)

let lower_matvec b ~transpose a x y =
  let m, n =
    match shape_of a with [ m; n ] -> (m, n) | _ -> assert false
  in
  if transpose then
    (* y(j) += A(i,j) * x(i) *)
    build_nest b [ m; n ] (fun b ivs ->
        match ivs with
        | [ i; j ] ->
            let y0 = A.load_simple b y [ j ] in
            let a0 = A.load_simple b a [ i; j ] in
            let x0 = A.load_simple b x [ i ] in
            let s = Arith.addf b y0 (Arith.mulf b a0 x0) in
            ignore (A.store_simple b s y [ j ])
        | _ -> assert false)
  else
    build_nest b [ m; n ] (fun b ivs ->
        match ivs with
        | [ i; j ] ->
            let y0 = A.load_simple b y [ i ] in
            let a0 = A.load_simple b a [ i; j ] in
            let x0 = A.load_simple b x [ j ] in
            let s = Arith.addf b y0 (Arith.mulf b a0 x0) in
            ignore (A.store_simple b s y [ i ])
        | _ -> assert false)

let lower_transpose b ~perm src dst =
  let out_shape = shape_of dst in
  let rank = Array.length perm in
  let inv = Affine_map.inverse_permutation perm in
  build_nest b out_shape (fun b ivs ->
      let ivs = Array.of_list ivs in
      (* src_idx.(j) = dst_idx.(inv.(j)) *)
      let src_ivs = List.init rank (fun j -> ivs.(inv.(j))) in
      let v = A.load_simple b src src_ivs in
      ignore (A.store_simple b v dst (Array.to_list ivs)))

let row_major_strides shape =
  let n = List.length shape in
  let arr = Array.of_list shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * arr.(i + 1)
  done;
  strides

let lower_reshape b src dst =
  (* Contiguous row-major relayout: iterate the output space; the input
     subscripts delinearize the shared row-major offset. *)
  let out_shape = shape_of dst and in_shape = shape_of src in
  let out_strides = row_major_strides out_shape in
  let in_strides = row_major_strides in_shape in
  let in_shape_a = Array.of_list in_shape in
  build_nest b out_shape (fun b ivs ->
      let n_out = List.length ivs in
      let linear =
        List.fold_left
          (fun (acc, d) _ ->
            ( Affine_expr.add acc
                (Affine_expr.mul
                   (Affine_expr.const out_strides.(d))
                   (Affine_expr.dim d)),
              d + 1 ))
          (Affine_expr.const 0, 0) ivs
        |> fst
      in
      let in_exprs =
        List.init (Array.length in_shape_a) (fun j ->
            Affine_expr.mod_
              (Affine_expr.floor_div linear (Affine_expr.const in_strides.(j)))
              (Affine_expr.const in_shape_a.(j)))
      in
      let map = Affine_map.make ~n_dims:n_out in_exprs in
      let v = A.load b src (map, ivs) in
      let out_map = Affine_map.identity n_out in
      ignore (A.store b v dst (out_map, ivs)))

let lower_conv2d b i w o =
  match (shape_of i, shape_of w, shape_of o) with
  | [ n; c; _h; _w ], [ f; _; kh; kw ], [ _; _; oh; ow ] ->
      build_nest b [ n; f; oh; ow; c; kh; kw ] (fun b ivs ->
          match ivs with
          | [ nn; ff; y; x; cc; r; s ] ->
              let o0 = A.load_simple b o [ nn; ff; y; x ] in
              (* I[n, c, y + r, x + s] *)
              let imap =
                Affine_map.make ~n_dims:6
                  Affine_expr.
                    [ dim 0; dim 1; add (dim 2) (dim 3); add (dim 4) (dim 5) ]
              in
              let iv = A.load b i (imap, [ nn; cc; y; r; x; s ]) in
              let wv = A.load_simple b w [ ff; cc; r; s ] in
              let sum = Arith.addf b o0 (Arith.mulf b iv wv) in
              ignore (A.store_simple b sum o [ nn; ff; y; x ])
          | _ -> assert false)
  | _ -> D.errorf "lower-linalg: bad conv shapes"

let lower_contract b maps a bv c =
  let shapes = [ shape_of a; shape_of bv; shape_of c ] in
  let dims =
    (* Reuse the interpreter's inference logic, reimplemented cheaply:
       bind each bare-dim map result to the operand extent. *)
    let n_dims =
      match maps with
      | (m : Affine_map.t) :: _ -> m.n_dims
      | [] -> D.errorf "lower-linalg: contract without maps"
    in
    let dims = Array.make n_dims (-1) in
    List.iter2
      (fun (m : Affine_map.t) shape ->
        List.iteri
          (fun pos e ->
            match Affine_expr.is_single_dim e with
            | Some (1, d, 0) -> dims.(d) <- List.nth shape pos
            | _ -> ())
          m.exprs)
      maps shapes;
    Array.iter
      (fun d ->
        if d < 0 then D.errorf "lower-linalg: unconstrained contract dim")
      dims;
    dims
  in
  let ma, mb, mc =
    match maps with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  build_nest b (Array.to_list dims) (fun b ivs ->
      let c0 = A.load b c (mc, ivs) in
      let av = A.load b a (ma, ivs) in
      let bvv = A.load b bv (mb, ivs) in
      let s = Arith.addf b c0 (Arith.mulf b av bvv) in
      ignore (A.store b s c (mc, ivs)))

let lower_fill b value c =
  build_nest b (shape_of c) (fun b ivs ->
      let v = Arith.constant_float b value in
      ignore (A.store_simple b v c ivs))

let lower_op ?tile_size (ctx : Rewriter.ctx) (op : Core.op) =
  (* Track the loops this lowering creates so they can be tiled without
     touching surrounding code. *)
  let parent_block =
    match op.o_parent with
    | Some blk -> blk
    | None -> D.errorf "lower-linalg: op is detached"
  in
  let before = Core.ops_of_block parent_block in
  let b = ctx.builder in
  let operand i = Core.operand op i in
  let handled =
    match op.o_name with
    | "linalg.matmul" ->
        lower_matmul b (operand 0) (operand 1) (operand 2);
        true
    | "linalg.matvec" ->
        let transpose =
          match Core.find_attr op "transpose" with
          | Some (Attr.Bool t) -> t
          | _ -> false
        in
        lower_matvec b ~transpose (operand 0) (operand 1) (operand 2);
        true
    | "linalg.transpose" ->
        lower_transpose b ~perm:(L.transpose_perm op) (operand 0) (operand 1);
        true
    | "linalg.reshape" ->
        lower_reshape b (operand 0) (operand 1);
        true
    | "linalg.conv2d_nchw" ->
        lower_conv2d b (operand 0) (operand 1) (operand 2);
        true
    | "linalg.contract" ->
        lower_contract b (L.contract_maps op) (operand 0) (operand 1)
          (operand 2);
        true
    | "linalg.fill" ->
        lower_fill b (Attr.get_float (Core.attr op "value")) (operand 0);
        true
    | _ -> false
  in
  if handled then begin
    Core.erase_op op;
    match tile_size with
    | Some size ->
        let created =
          List.filter
            (fun (o : Core.op) ->
              A.is_for o && not (List.exists (Core.op_equal o) before))
            (Core.ops_of_block parent_block)
        in
        List.iter
          (fun outer ->
            let loops = Affine.Loops.perfect_nest outer in
            if
              List.length loops > 1
              && Affine.Loops.nest_trip_counts loops <> None
            then
              Loop_tile.tile_nest loops
                ~sizes:(List.map (fun _ -> size) loops))
          created
    | None -> ()
  end;
  handled

let linalg_roots =
  Rewriter.Roots
    [
      "linalg.matmul";
      "linalg.matvec";
      "linalg.transpose";
      "linalg.reshape";
      "linalg.conv2d_nchw";
      "linalg.contract";
      "linalg.fill";
    ]

let patterns () =
  [
    Rewriter.pattern ~name:"lower-linalg" ~roots:linalg_roots
      ~generated_ops:[ "affine.for"; "affine.load"; "affine.store" ]
      (lower_op ?tile_size:None);
  ]

let frozen = Rewriter.freeze (patterns ())
let run root = ignore (Rewriter.apply_sweeps root frozen)

let run_tiled ~size root =
  ignore
    (Rewriter.apply_sweeps root
       (Rewriter.freeze
          [
            Rewriter.pattern ~name:"lower-linalg-tiled" ~roots:linalg_roots
              ~generated_ops:[ "affine.for"; "affine.load"; "affine.store" ]
              (lower_op ~tile_size:size);
          ]))

let pass = Pass.make ~name:"lower-linalg-to-affine" run

let tiled_pass ~size =
  Pass.make ~name:"lower-linalg-tiled" (run_tiled ~size)

let lower_affine_matmul_naive root =
  let pat =
    Rewriter.pattern ~name:"lower-affine-matmul"
      ~roots:(Rewriter.Roots [ "affine.matmul" ])
      ~generated_ops:[ "affine.for"; "affine.load"; "affine.store" ]
      (fun ctx op ->
        if A.is_matmul op then begin
          lower_matmul ctx.builder (Core.operand op 0) (Core.operand op 1)
            (Core.operand op 2);
          Core.erase_op op;
          true
        end
        else false)
  in
  ignore (Rewriter.apply_sweeps root (Rewriter.freeze [ pat ]))
