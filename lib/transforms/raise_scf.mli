(** Raising from SCF to the affine dialect — the paper's footnote 1:
    "Multi-Level Tactics can also lift from SCF".

    [scf.for] loops whose bounds and step are [arith.constant]s become
    [affine.for]; [memref.load]/[memref.store] whose indices are built
    from induction variables, constants and [arith] index arithmetic get
    their affine access maps re-synthesized (the inverse of
    {!Lower_affine}'s expansion). Loops containing non-raisable
    constructs are left at the SCF level. *)

open Ir

(** The raising patterns (loop raising and access-map re-synthesis), for
    composing into combined progressive-raising sets. *)
val patterns : unit -> Rewriter.pattern list

(** Returns the number of raised operations. *)
val run : Core.op -> int

val pass : Pass.t
