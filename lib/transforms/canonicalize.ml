open Ir
module Arith = Std_dialect.Arith

let const_val (v : Core.value) =
  match Core.defining_op v with
  | Some op -> Arith.constant_float_value op
  | None -> None

let fold_identities ~fast_math (ctx : Rewriter.ctx) (op : Core.op) =
  let replace_with v =
    Rewriter.replace_op ctx op [ v ];
    true
  in
  let x () = Core.operand op 0 and y () = Core.operand op 1 in
  match op.o_name with
  | "arith.mulf" -> (
      match (const_val (x ()), const_val (y ())) with
      | Some a, Some b ->
          let c = Arith.constant_float ctx.builder (a *. b) in
          replace_with c
      | Some 1.0, None -> replace_with (y ())
      | None, Some 1.0 -> replace_with (x ())
      (* x *. 0.0 -> 0.0 is wrong for NaN, +/-inf and -0.0 (NaN *. 0.0 is
         NaN, inf *. 0.0 is NaN, -1.0 *. 0.0 is -0.0), so it only fires
         under fast-math. Note the [0.0] literal pattern also matches
         [-0.0] (float patterns compare with [=]). The const*const arm
         above is exact and needs no gate. *)
      | (Some 0.0, None | None, Some 0.0) when fast_math ->
          replace_with (Arith.constant_float ctx.builder 0.0)
      | _ -> false)
  | "arith.addf" -> (
      match (const_val (x ()), const_val (y ())) with
      | Some a, Some b ->
          replace_with (Arith.constant_float ctx.builder (a +. b))
      | Some 0.0, None -> replace_with (y ())
      | None, Some 0.0 -> replace_with (x ())
      | _ -> false)
  | "arith.subf" -> (
      match (const_val (x ()), const_val (y ())) with
      | Some a, Some b ->
          replace_with (Arith.constant_float ctx.builder (a -. b))
      | None, Some 0.0 -> replace_with (x ())
      | _ -> false)
  | "arith.divf" -> (
      match const_val (y ()) with
      | Some 1.0 -> replace_with (x ())
      | _ -> false)
  | _ -> false

let patterns ?(fast_math = false) () =
  [
    Rewriter.pattern ~name:"fold-float-identities"
      ~roots:
        (Rewriter.Roots [ "arith.mulf"; "arith.addf"; "arith.subf"; "arith.divf" ])
        (* All four roots are binary, region-less ops; anything else
           (malformed IR aside, which [x ()]/[y ()] would reject anyway)
           is pruned before the apply function runs. *)
      ~prefix:(Rewriter.prefix ~operands:2 ~regions:0 ())
      (fold_identities ~fast_math);
  ]

let frozen = Rewriter.freeze (patterns ())
let frozen_fast_math = Rewriter.freeze (patterns ~fast_math:true ())

let run ?(fast_math = false) root =
  let fz = if fast_math then frozen_fast_math else frozen in
  let n = Rewriter.apply_greedily root fz in
  (* Folding orphans constants; sweep them. *)
  ignore (Dce.run root);
  n

let pass = Pass.make ~name:"canonicalize" (fun root -> ignore (run root))

let fast_math_pass =
  Pass.make ~name:"canonicalize-fast-math" (fun root ->
      ignore (run ~fast_math:true root))
