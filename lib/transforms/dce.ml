open Ir
module A = Affine.Affine_ops

(* Does [op] only write buffer [buf] (no reads, no other effects)? Such
   writers die with the buffer. *)
let pure_writer_of (buf : Core.value) (op : Core.op) =
  match op.o_name with
  | "affine.store" -> Core.value_equal (A.access_memref op) buf
  | "linalg.fill" -> Core.value_equal (Core.operand op 0) buf
  | "memref.dealloc" -> Core.value_equal (Core.operand op 0) buf
  | "linalg.matmul" | "linalg.matvec" | "linalg.conv2d_nchw"
  | "linalg.contract" | "blas.sgemm" | "blas.sgemv" ->
      (* Output is the last operand; reads the others. *)
      Core.value_equal (Core.operand op (Core.num_operands op - 1)) buf
      && not
           (List.exists (Core.value_equal buf)
              (List.filteri
                 (fun i _ -> i < Core.num_operands op - 1)
                 (Array.to_list op.o_operands)))
  | "linalg.transpose" | "linalg.reshape" | "blas.stranspose"
  | "blas.sreshape_copy" ->
      Core.value_equal (Core.operand op 1) buf
      && not (Core.value_equal (Core.operand op 0) buf)
  | _ -> false

let has_side_effects (op : Core.op) =
  match op.o_name with
  | "arith.constant" | "affine.apply" | "affine.load" | "memref.alloc" ->
      false
  | name when List.mem name Std_dialect.Arith.float_binops -> false
  | "arith.addi" | "arith.subi" | "arith.muli" -> false
  | _ -> true

(* DCE as a rewrite pattern, for composing into combined greedy sets
   (e.g. a progressive-raising set where erasing a loop nest leaves its
   index arithmetic dead, which would otherwise block exact-block
   structural matching on sibling nests). Only handles the pure-scalar
   case; dead buffers and empty loops still need [run]. Benefit 0 so
   every real rewrite at an op is tried first. *)
let pattern () =
  Rewriter.pattern ~name:"erase-dead-pure-op" ~benefit:0
    ~roots:
      (Rewriter.Roots
         ([ "arith.constant"; "affine.apply"; "affine.load" ]
         @ Std_dialect.Arith.float_binops
         @ [ "arith.addi"; "arith.subi"; "arith.muli" ]))
    (fun ctx op ->
      if
        (not (has_side_effects op))
        && (not (Std_dialect.Memref_ops.is_alloc op))
        && Core.num_results op > 0
        && Array.for_all
             (fun (r : Core.value) -> not (Core.has_uses ctx.Rewriter.root r))
             op.o_results
      then begin
        Core.erase_op op;
        true
      end
      else false)

let run root =
  let erased = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (* Pure ops with no uses. *)
    let to_erase = ref [] in
    Core.walk root (fun op ->
        if
          op != root
          && (not (has_side_effects op))
          && Array.for_all
               (fun (r : Core.value) -> not (Core.has_uses root r))
               op.o_results
          && Core.num_results op > 0
        then to_erase := op :: !to_erase);
    List.iter
      (fun op ->
        if op.Core.o_parent <> None then begin
          Core.erase_op op;
          incr erased;
          progress := true
        end)
      !to_erase;
    (* Loops whose bodies became empty. *)
    let empty_loops = ref [] in
    Core.walk root (fun op ->
        if A.is_for op && Affine.Loops.body_ops op = [] then
          empty_loops := op :: !empty_loops);
    List.iter
      (fun op ->
        if op.Core.o_parent <> None then begin
          Core.erase_op op;
          incr erased;
          progress := true
        end)
      !empty_loops;
    (* Dead buffers: allocs all of whose users are pure writers. *)
    let allocs = ref [] in
    Core.walk root (fun op ->
        if Std_dialect.Memref_ops.is_alloc op then allocs := op :: !allocs);
    List.iter
      (fun alloc ->
        let buf = Core.result alloc 0 in
        let users = List.map fst (Core.uses root buf) in
        if users <> [] && List.for_all (pure_writer_of buf) users then begin
          List.iter
            (fun u ->
              if u.Core.o_parent <> None then begin
                Core.erase_op u;
                incr erased
              end)
            users;
          Core.erase_op alloc;
          incr erased;
          progress := true
        end)
      !allocs
  done;
  !erased

let pass = Pass.make ~name:"dce" (fun root -> ignore (run root))
