open Ir
module A = Affine.Affine_ops
module Arith = Std_dialect.Arith
module Memref = Std_dialect.Memref_ops
module Scf = Std_dialect.Scf
module D = Support.Diag

(* Expand an affine expression over SSA index operands into arith ops. *)
let rec expand b (operands : Core.value array) (e : Affine_expr.t) =
  match e with
  | Affine_expr.Dim i -> operands.(i)
  | Affine_expr.Sym _ -> D.errorf "lower-affine: symbols unsupported"
  | Affine_expr.Const c -> Arith.constant_index b c
  | Affine_expr.Add (x, y) ->
      Arith.addi b (expand b operands x) (expand b operands y)
  | Affine_expr.Mul (x, y) ->
      Arith.muli b (expand b operands x) (expand b operands y)
  | Affine_expr.Floor_div (x, y) ->
      Arith.floordivsi b (expand b operands x) (expand b operands y)
  | Affine_expr.Mod (x, y) ->
      Arith.remsi b (expand b operands x) (expand b operands y)

let single_bound_value b ((map, args) : A.bound) =
  match map.Affine_map.exprs with
  | [ e ] -> expand b (Array.of_list args) e
  | _ ->
      D.errorf
        "lower-affine: min/max loop bounds not supported at the SCF level"

let lower_for (ctx : Rewriter.ctx) (op : Core.op) =
  let b = ctx.builder in
  let lb = single_bound_value b (A.for_lb op) in
  let ub = single_bound_value b (A.for_ub op) in
  let step = Arith.constant_index b (A.for_step op) in
  let old_body = A.for_body op in
  let old_iv = A.for_iv op in
  ignore
    (Scf.for_ b ~hint:(Option.value ~default:"i" old_iv.Core.v_hint) ~lb ~ub
       ~step (fun b iv ->
         List.iter
           (fun child ->
             Core.detach_op child;
             ignore (Builder.insert b child);
             Core.replace_uses child ~old_v:old_iv ~new_v:iv)
           (List.filter
              (fun (o : Core.op) ->
                not (String.equal o.o_name "affine.yield"))
              (Core.ops_of_block old_body))));
  Core.erase_op op;
  true

let lower_access (ctx : Rewriter.ctx) (op : Core.op) =
  let b = ctx.builder in
  let expand_indices () =
    let map = A.access_map op in
    let operands = Array.of_list (A.access_indices op) in
    List.map (expand b operands) map.Affine_map.exprs
  in
  if A.is_load op then begin
    let v = Memref.load b (A.access_memref op) (expand_indices ()) in
    Rewriter.replace_op_local ctx op [ v ];
    true
  end
  else if A.is_store op then begin
    ignore
      (Memref.store b (A.stored_value op) (A.access_memref op)
         (expand_indices ()));
    Core.erase_op op;
    true
  end
  else false

let lower_apply (ctx : Rewriter.ctx) (op : Core.op) =
  if String.equal op.Core.o_name "affine.apply" then begin
    let map = Attr.get_map (Core.attr op "map") in
    let v =
      expand ctx.builder op.o_operands (List.hd map.Affine_map.exprs)
    in
    Rewriter.replace_op_local ctx op [ v ];
    true
  end
  else false

let patterns () =
  [
    Rewriter.pattern ~name:"affine-for-to-scf"
      ~roots:(Rewriter.Roots [ "affine.for" ])
      ~generated_ops:[ "scf.for" ]
      (fun ctx op -> if A.is_for op then lower_for ctx op else false);
    Rewriter.pattern ~name:"affine-access-to-memref"
      ~roots:(Rewriter.Roots [ "affine.load"; "affine.store" ])
      ~generated_ops:[ "memref.load"; "memref.store" ]
      (fun ctx op ->
        if A.is_load op || A.is_store op then lower_access ctx op else false);
    Rewriter.pattern ~name:"affine-apply-to-arith"
      ~roots:(Rewriter.Roots [ "affine.apply" ])
      lower_apply;
  ]

let frozen = Rewriter.freeze (patterns ())
let run root = ignore (Rewriter.apply_sweeps root frozen)

let pass = Pass.make ~name:"lower-affine-to-scf" run
