(** Progressive lowering of Linalg operations to affine loop nests —
    the default Linalg code-generation path of MLT-Linalg (§5.2).

    Each named operation lowers to the canonical loop nest of its
    definition; [linalg.reshape] lowers to a copy whose input subscripts
    delinearize the row-major offset (floordiv/mod affine maps). Tiling
    (the optimization Linalg "primarily performs" at the paper's
    timeframe) is applied separately by {!Loop_tile}. *)

(** Rewrite patterns, one per Linalg op. *)
val patterns : unit -> Ir.Rewriter.pattern list

(** [run root] lowers every linalg op under [root] to affine loops. *)
val run : Ir.Core.op -> unit

(** [run_tiled ~size root]: the MLT-Linalg code-generation path — every
    Linalg op lowers to loops that are then cache-tiled with [size]
    (only the loops produced by the lowering; surrounding code is left
    untouched, as the real Linalg path only transforms its own ops). *)
val run_tiled : size:int -> Ir.Core.op -> unit

(** The pass (for pass-manager pipelines). *)
val pass : Ir.Pass.t

(** {!run_tiled} as a pass, named ["lower-linalg-tiled"]. *)
val tiled_pass : size:int -> Ir.Pass.t

(** Also lower [affine.matmul] (§5.1) to its naive loop nest — used as
    the reference lowering when not taking the BLIS path. *)
val lower_affine_matmul_naive : Ir.Core.op -> unit
