open Ir
module A = Affine.Affine_ops

type heuristic = No_fuse | Smart_fuse | Max_fuse

let heuristic_to_string = function
  | No_fuse -> "nofuse"
  | Smart_fuse -> "smartfuse"
  | Max_fuse -> "maxfuse"

(* Identify an index operand by where its loop sits inside the candidate
   loop (preorder number), or as an outer value. Signatures of accesses in
   two loops are comparable because the numbering is structural. *)
type iv_role = Rel of int | Outer of int

type signature = {
  sg_memref : int;  (** value id *)
  sg_store : bool;
  sg_map : string;
  sg_roles : iv_role list;
}

let loop_numbering root =
  let tbl = Hashtbl.create 8 in
  let n = ref 0 in
  Core.walk root (fun op ->
      if A.is_for op then begin
        Hashtbl.replace tbl (A.for_iv op).Core.v_id !n;
        incr n
      end);
  tbl

let signatures_of loop =
  let numbering = loop_numbering loop in
  let acc = ref [] in
  Core.walk loop (fun op ->
      if A.is_load op || A.is_store op then begin
        let memref = A.access_memref op in
        let roles =
          List.map
            (fun (iv : Core.value) ->
              match Hashtbl.find_opt numbering iv.v_id with
              | Some d -> Rel d
              | None -> Outer iv.v_id)
            (A.access_indices op)
        in
        acc :=
          {
            sg_memref = memref.Core.v_id;
            sg_store = A.is_store op;
            sg_map = Affine_map.to_string (A.access_map op);
            sg_roles = roles;
          }
          :: !acc
      end);
  List.rev !acc

let same_bounds l1 l2 =
  A.for_step l1 = A.for_step l2
  &&
  match (A.for_const_bounds l1, A.for_const_bounds l2) with
  | Some b1, Some b2 -> b1 = b2
  | _ -> false

let fusable l1 l2 =
  same_bounds l1 l2
  (* Restrict to equal-depth perfect nests: fusing nests of different
     depth creates imperfect nests that defeat subsequent tiling, a bad
     trade this simple cost model cannot see. *)
  && List.length (Affine.Loops.perfect_nest l1)
     = List.length (Affine.Loops.perfect_nest l2)
  &&
  let s1 = signatures_of l1 and s2 = signatures_of l2 in
  let arrays sigs = List.map (fun s -> s.sg_memref) sigs in
  let written sigs =
    List.filter_map (fun s -> if s.sg_store then Some s.sg_memref else None) sigs
  in
  let shared_written =
    List.sort_uniq compare (written s1 @ written s2)
    |> List.filter (fun x -> List.mem x (arrays s1) && List.mem x (arrays s2))
  in
  List.for_all
    (fun x ->
      let on_x =
        List.filter (fun s -> s.sg_memref = x) (s1 @ s2)
        |> List.map (fun s -> (s.sg_map, s.sg_roles))
      in
      match on_x with
      | [] -> true
      | (_, roles) :: _ as all ->
          (* All subscript patterns identical, and the cell must vary with
             the fused loop's own induction variable (role [Rel 0]):
             otherwise every iteration of both loops aliases the same cell
             and interleaving reorders cross-loop dependences (e.g. a
             reduction into [tmp[i]] read by a second loop). *)
          let first = List.hd all in
          List.for_all (fun s -> s = first) all
          && List.mem (Rel 0) roles)
    shared_written

let shares_data l1 l2 =
  let arrays l =
    List.sort_uniq compare
      (List.map (fun s -> s.sg_memref) (signatures_of l))
  in
  List.exists (fun x -> List.mem x (arrays l2)) (arrays l1)

let fuse_pair l1 l2 =
  let body1 = A.for_body l1 in
  let yield1 =
    List.find (fun (o : Core.op) -> String.equal o.o_name "affine.yield")
      (Core.ops_of_block body1)
  in
  let iv1 = A.for_iv l1 and iv2 = A.for_iv l2 in
  List.iter
    (fun op ->
      Core.detach_op op;
      Core.insert_before ~anchor:yield1 op;
      Core.replace_uses op ~old_v:iv2 ~new_v:iv1)
    (Affine.Loops.body_ops l2);
  Core.erase_op l2

let should_fuse h l1 l2 =
  match h with
  | No_fuse -> false
  | Max_fuse -> fusable l1 l2
  | Smart_fuse -> fusable l1 l2 && shares_data l1 l2

let run h root =
  let fused = ref 0 in
  if h <> No_fuse then begin
    let progress = ref true in
    while !progress do
      progress := false;
      (* Find one fusable adjacent pair anywhere, fuse it, restart. *)
      let exception Found of Core.op * Core.op in
      (try
         Core.walk root (fun op ->
             Array.iter
               (fun (r : Core.region) ->
                 List.iter
                   (fun (blk : Core.block) ->
                     let rec scan = function
                       | a :: (b :: _ as rest) ->
                           if
                             A.is_for a && A.is_for b && should_fuse h a b
                           then raise (Found (a, b))
                           else scan rest
                       | _ -> ()
                     in
                     scan (Core.ops_of_block blk))
                   r.r_blocks)
               op.Core.o_regions)
       with Found (a, b) ->
         fuse_pair a b;
         incr fused;
         progress := true)
    done
  end;
  !fused

let pass h =
  Pass.make ~name:("fuse-" ^ heuristic_to_string h) (fun root ->
      ignore (run h root))
