(** Canonicalization patterns: algebraic identities ([x*1 -> x],
    [x+0 -> x]) and scalar constant folding, as MLIR's canonicalizer
    would run between dialect conversions. Raising benefits: a GEMM
    written with an explicit [alpha = 1.0] factor canonicalizes to the
    bare accumulation the tactic matches.

    The value-unsafe [x*0 -> 0] fold (wrong for NaN, +/-inf and -0.0) is
    gated behind [fast_math], which defaults to off. *)

open Ir

val patterns : ?fast_math:bool -> unit -> Rewriter.pattern list

(** Returns the number of pattern applications. *)
val run : ?fast_math:bool -> Core.op -> int

val pass : Pass.t

(** Same pass with the value-unsafe folds enabled. *)
val fast_math_pass : Pass.t
