open Ir
module A = Affine.Affine_ops

let non_yield (b : Core.block) =
  List.filter
    (fun (o : Core.op) -> not (String.equal o.o_name "affine.yield"))
    (Core.ops_of_block b)

let access_sig op =
  ( (A.access_memref op).Core.v_id,
    Affine_map.to_string (A.access_map op),
    List.map (fun (v : Core.value) -> v.Core.v_id) (A.access_indices op) )

let permutable_body (b : Core.block) =
  let ops = non_yield b in
  let stores = List.filter A.is_store ops in
  let loads = List.filter A.is_load ops in
  let arith_ok =
    List.for_all
      (fun (o : Core.op) ->
        A.is_store o || A.is_load o
        || List.mem o.o_name Std_dialect.Arith.float_binops
        || Std_dialect.Arith.is_constant o)
      ops
  in
  match stores with
  | [ store ] ->
      arith_ok
      &&
      let target = (A.access_memref store).Core.v_id in
      let store_sig = access_sig store in
      (* Loads from the written array must be the accumulator (identical
         subscripts); loads from other arrays are unrestricted. *)
      List.for_all
        (fun ld ->
          let memref, _, _ = access_sig ld in
          memref <> target
          ||
          let m, map, idx = access_sig ld in
          let m', map', idx' = store_sig in
          m = m' && map = map' && idx = idx')
        loads
  | _ -> false

let vectorizable_wrt loop body_ops =
  (* Same rule as the machine model's vectorizability check: unit or zero
     strides, and stores must vary with the loop (no SIMD reductions
     without -ffast-math). *)
  let iv = A.for_iv loop in
  List.for_all
    (fun op ->
      if A.is_load op || A.is_store op then
        match Affine.Loops.access_stride_wrt iv op with
        | Some 1 -> true
        | Some 0 -> not (A.is_store op)
        | _ -> false
      else true)
    body_ops

let rotate_nest loops ~inner =
  (* Rebuild the nest with [inner] moved to the innermost position. *)
  let outermost = List.hd loops in
  let innermost_old = List.nth loops (List.length loops - 1) in
  let body_ops = non_yield (A.for_body innermost_old) in
  let order = List.filter (fun l -> not (Core.op_equal l inner)) loops @ [ inner ] in
  let b = Builder.before outermost in
  let rec build b built = function
    | [] ->
        List.iter
          (fun op ->
            Core.detach_op op;
            ignore (Builder.insert b op))
          body_ops;
        List.iter
          (fun (old_loop, new_iv) ->
            let old_iv = A.for_iv old_loop in
            List.iter
              (fun op -> Core.replace_uses op ~old_v:old_iv ~new_v:new_iv)
              body_ops)
          built
    | loop :: rest ->
        let lb, ub =
          match A.for_const_bounds loop with
          | Some b -> b
          | None -> assert false
        in
        let hint =
          Option.value ~default:"i" (A.for_iv loop).Core.v_hint
        in
        ignore
          (A.for_const b ~hint ~lb ~ub ~step:(A.for_step loop) (fun b iv ->
               build b ((loop, iv) :: built) rest))
  in
  build b [] order;
  Core.erase_op outermost

let vectorize_func func =
  let changed = ref 0 in
  let rec process (op : Core.op) =
    if A.is_for op then begin
      let loops = Affine.Loops.perfect_nest op in
      let depth = List.length loops in
      if depth > 1 && Affine.Loops.nest_trip_counts loops <> None then begin
        let innermost = List.nth loops (depth - 1) in
        let body = A.for_body innermost in
        if permutable_body body then begin
          let body_ops = non_yield body in
          if not (vectorizable_wrt innermost body_ops) then
            (* Deepest vectorizable loop wins (better locality outside). *)
            match
              List.rev loops
              |> List.find_opt (fun l -> vectorizable_wrt l body_ops)
            with
            | Some candidate ->
                rotate_nest loops ~inner:candidate;
                incr changed
            | None -> ()
        end
      end
      else if depth = 1 then List.iter process (Affine.Loops.body_ops op)
    end
    else
      Array.iter
        (fun (r : Core.region) ->
          List.iter
            (fun (blk : Core.block) -> List.iter process (Core.ops_of_block blk))
            r.r_blocks)
        op.Core.o_regions
  in
  process func;
  !changed

let pass =
  Pass.make ~name:"interchange-for-vectorization" (fun root ->
      ignore (vectorize_func root))
