open Ir
module A = Affine.Affine_ops
module Arith = Std_dialect.Arith
module E = Affine_expr

let const_int_of (v : Core.value) =
  match Core.defining_op v with
  | Some op -> Arith.constant_int_value op
  | None -> None

(* Rebuild an affine expression from arith index computations, collecting
   non-reconstructible leaves (induction variables, unknown index values)
   as map operands. *)
let rec expr_of operands (v : Core.value) =
  let dim_of () =
    let rec find i = function
      | [] ->
          operands := !operands @ [ v ];
          i
      | v' :: _ when Core.value_equal v v' -> i
      | _ :: rest -> find (i + 1) rest
    in
    E.dim (find 0 !operands)
  in
  match Core.defining_op v with
  | None -> dim_of ()
  | Some op -> (
      match op.Core.o_name with
      | "arith.constant" -> (
          match Arith.constant_int_value op with
          | Some i -> E.const i
          | None -> dim_of ())
      | "arith.addi" ->
          E.Add (expr_of operands (Core.operand op 0),
                 expr_of operands (Core.operand op 1))
      | "arith.subi" ->
          E.Add
            ( expr_of operands (Core.operand op 0),
              E.Mul (E.Const (-1), expr_of operands (Core.operand op 1)) )
      | "arith.muli" ->
          E.Mul (expr_of operands (Core.operand op 0),
                 expr_of operands (Core.operand op 1))
      | "arith.floordivsi" ->
          E.Floor_div (expr_of operands (Core.operand op 0),
                       expr_of operands (Core.operand op 1))
      | "arith.remsi" ->
          E.Mod (expr_of operands (Core.operand op 0),
                 expr_of operands (Core.operand op 1))
      | _ -> dim_of ())

let rec is_affine e =
  let is_const e = match E.is_constant e with Some _ -> true | None -> false in
  match e with
  | E.Dim _ | E.Sym _ | E.Const _ -> true
  | E.Add (a, b) -> is_affine a && is_affine b
  | E.Mul (a, b) -> is_affine a && is_affine b && (is_const a || is_const b)
  | E.Floor_div (a, b) | E.Mod (a, b) -> is_affine a && is_const b

let raise_for (ctx : Rewriter.ctx) (op : Core.op) =
  match
    ( const_int_of (Core.operand op 0),
      const_int_of (Core.operand op 1),
      const_int_of (Core.operand op 2) )
  with
  | Some lb, Some ub, Some step when step > 0 ->
      let old_iv = Std_dialect.Scf.for_iv op in
      let old_body = Std_dialect.Scf.for_body op in
      ignore
        (A.for_ ctx.Rewriter.builder
           ~hint:(Option.value ~default:"i" old_iv.Core.v_hint)
           ~lb:(Affine_map.constant_map [ lb ], [])
           ~ub:(Affine_map.constant_map [ ub ], [])
           ~step
           (fun b iv ->
             List.iter
               (fun (child : Core.op) ->
                 if not (String.equal child.o_name "scf.yield") then begin
                   Core.detach_op child;
                   ignore (Builder.insert b child);
                   Core.replace_uses child ~old_v:old_iv ~new_v:iv
                 end)
               (Core.ops_of_block old_body)));
      Core.erase_op op;
      true
  | _ -> false

let raise_access (ctx : Rewriter.ctx) (op : Core.op) =
  let is_load = String.equal op.Core.o_name "memref.load" in
  let base = if is_load then 0 else 1 in
  let memref = Core.operand op base in
  let indices =
    Array.to_list
      (Array.sub op.Core.o_operands (base + 1)
         (Array.length op.Core.o_operands - base - 1))
  in
  let operands = ref [] in
  let exprs = List.map (fun v -> E.simplify (expr_of operands v)) indices in
  if not (List.for_all is_affine exprs) then false
  else begin
    let map = Affine_map.make ~n_dims:(List.length !operands) exprs in
    let b = ctx.Rewriter.builder in
    if is_load then begin
      let v = A.load b memref (map, !operands) in
      Rewriter.replace_op_local ctx op [ v ];
      true
    end
    else begin
      ignore (A.store b (Core.operand op 0) memref (map, !operands));
      Core.erase_op op;
      true
    end
  end

let patterns () =
  [
    Rewriter.pattern ~name:"raise-scf-for"
      ~roots:(Rewriter.Roots [ "scf.for" ])
        (* The scf.for verifier pins the shape: (lb, ub, step) + one body
           region. *)
      ~prefix:(Rewriter.prefix ~operands:3 ~regions:1 ())
      ~generated_ops:[ "affine.for" ]
      (fun ctx op ->
        if Std_dialect.Scf.is_for op then raise_for ctx op else false);
    Rewriter.pattern ~name:"raise-memref-access"
      ~roots:(Rewriter.Roots [ "memref.load"; "memref.store" ])
      ~generated_ops:[ "affine.load"; "affine.store" ]
      (fun ctx op ->
        if
          String.equal op.Core.o_name "memref.load"
          || String.equal op.Core.o_name "memref.store"
        then raise_access ctx op
        else false);
  ]

let frozen = Rewriter.freeze (patterns ())

let run root =
  let n = Rewriter.apply_sweeps root frozen in
  (* Bound constants and index arithmetic are now dead. *)
  ignore (Dce.run root);
  n

let pass = Pass.make ~name:"raise-scf-to-affine" (fun root -> ignore (run root))
