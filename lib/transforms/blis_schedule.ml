open Ir
module A = Affine.Affine_ops
module Arith = Std_dialect.Arith
module E = Affine_expr
module D = Support.Diag

type blocking = { mc : int; nc : int; kc : int }

let default_blocking = { mc = 64; nc = 256; kc = 128 }

let shape2 (v : Core.value) =
  match Typ.static_shape v.Core.v_typ with
  | Some [ a; b ] -> (a, b)
  | _ -> D.errorf "blis-schedule: operands must be static rank-2 memrefs"

(* for iv = base to min(base + size, limit) — the panel loop shape. *)
let panel_loop b ~hint ~base ~size ~limit body =
  A.for_ b ~hint
    ~lb:(Affine_map.make ~n_dims:1 [ E.dim 0 ], [ base ])
    ~ub:
      ( Affine_map.make ~n_dims:1
          [ E.add (E.dim 0) (E.const size); E.const limit ],
        [ base ] )
    body

(* X[a - b][c - d]: the packed-panel access. *)
let rel_map =
  Affine_map.make ~n_dims:4
    [ E.sub (E.dim 0) (E.dim 1); E.sub (E.dim 2) (E.dim 3) ]

let lower_one blocking b (op : Core.op) =
  let a = Core.operand op 0
  and bm = Core.operand op 1
  and c = Core.operand op 2 in
  let m, k = shape2 a in
  let _, n = shape2 bm in
  let { mc; nc; kc } = blocking in
  (* Packed panels, sized for full blocks; edge tiles use a sub-region. *)
  let ap = Std_dialect.Memref_ops.alloc b ~hint:"Ap" (Typ.memref [ mc; kc ] Typ.F32) in
  let bp = Std_dialect.Memref_ops.alloc b ~hint:"Bp" (Typ.memref [ kc; nc ] Typ.F32) in
  ignore
    (A.for_const b ~hint:"jc" ~lb:0 ~ub:n ~step:nc (fun b jc ->
         ignore
           (A.for_const b ~hint:"pc" ~lb:0 ~ub:k ~step:kc (fun b pc ->
                (* Pack B[pc.., jc..] into Bp. *)
                ignore
                  (panel_loop b ~hint:"p" ~base:pc ~size:kc ~limit:k
                     (fun b p ->
                       ignore
                         (panel_loop b ~hint:"j" ~base:jc ~size:nc ~limit:n
                            (fun b j ->
                              let v = A.load_simple b bm [ p; j ] in
                              ignore
                                (A.store b v bp (rel_map, [ p; pc; j; jc ]))))));
                ignore
                  (A.for_const b ~hint:"ic" ~lb:0 ~ub:m ~step:mc (fun b ic ->
                       (* Pack A[ic.., pc..] into Ap. *)
                       ignore
                         (panel_loop b ~hint:"i" ~base:ic ~size:mc ~limit:m
                            (fun b i ->
                              ignore
                                (panel_loop b ~hint:"p" ~base:pc ~size:kc
                                   ~limit:k (fun b p ->
                                     let v = A.load_simple b a [ i; p ] in
                                     ignore
                                       (A.store b v ap
                                          (rel_map, [ i; ic; p; pc ]))))));
                       (* Macro kernel over the packed block. *)
                       ignore
                         (panel_loop b ~hint:"i" ~base:ic ~size:mc ~limit:m
                            (fun b i ->
                              ignore
                                (panel_loop b ~hint:"p" ~base:pc ~size:kc
                                   ~limit:k (fun b p ->
                                     ignore
                                       (panel_loop b ~hint:"j" ~base:jc
                                          ~size:nc ~limit:n (fun b j ->
                                            let c0 =
                                              A.load_simple b c [ i; j ]
                                            in
                                            let av =
                                              A.load b ap
                                                (rel_map, [ i; ic; p; pc ])
                                            in
                                            let bv =
                                              A.load b bp
                                                (rel_map, [ p; pc; j; jc ])
                                            in
                                            let s =
                                              Arith.addf b c0
                                                (Arith.mulf b av bv)
                                            in
                                            ignore
                                              (A.store_simple b s c [ i; j ])))))))))))));
  Core.erase_op op

let run ?(blocking = default_blocking) root =
  let pat =
    Rewriter.pattern ~name:"blis-schedule"
      ~roots:(Rewriter.Roots [ "affine.matmul" ])
      ~generated_ops:[ "affine.for"; "affine.load"; "affine.store" ]
      (fun ctx op ->
        if A.is_matmul op then begin
          lower_one blocking ctx.Rewriter.builder op;
          true
        end
        else false)
  in
  ignore (Rewriter.apply_sweeps root (Rewriter.freeze [ pat ]))

let pass =
  Pass.make ~name:"lower-affine-matmul-blis" (fun root -> run root)
