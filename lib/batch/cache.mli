(** Persistent content-addressed compilation cache with crash-safe
    commits (layout, journal format, and recovery invariants in
    docs/CACHE.md).

    Keys are {!Support.Digest} hex strings — hash of input source +
    pipeline config + pattern-set identity (the driver builds them with
    {!key}); values are JSON artifact payloads. Every commit is
    write-tmp / fsync / atomic-rename plus one fsynced append-only
    journal line; an entry exists iff its journal line landed, so a kill
    at any instant loses at most the in-flight entry and never corrupts
    the store. {!open_} replays the journal, sweeps temp files and
    unjournaled blobs, and compacts the journal.

    One process owns a cache directory at a time. Within the process a
    handle is domain-safe: operations serialize on an internal mutex, so
    the batch driver's worker domains share one handle. *)

type t

(** [open_ ~dir] creates [dir] (and [dir/objects]) as needed, runs the
    recovery scan, and returns a ready store. Raises {!Support.Diag.Error}
    if a path component exists and is not a directory. *)
val open_ : dir:string -> t

val dir : t -> string

(** [key parts] — the content address of an artifact, from the parts
    that determine it (injective encoding: {!Support.Digest.strings}). *)
val key : string list -> string

(** [find t k] — the committed payload for [k], or [None]. A committed
    blob that fails to read or parse is discarded (miss + recompile, not
    an error). Counts into {!hit_miss}. *)
val find : t -> string -> Support.Json.t option

(** [store t ~key json] commits [json] under [key]; no-op if already
    committed. Raises on I/O failure — callers treat a failed store as a
    warning, the entry itself stays valid. *)
val store : t -> key:string -> Support.Json.t -> unit

val mem : t -> string -> bool

val entry_count : t -> int

(** [(hits, misses)] counted by {!find} over this handle's lifetime. *)
val hit_miss : t -> int * int

(** What {!open_}'s recovery scan dropped — all zero/false after a clean
    shutdown. *)
type recovery = {
  rec_swept_tmp : int;  (** orphaned temp files removed *)
  rec_unjournaled : int;  (** renamed blobs with no journal line *)
  rec_missing_blob : int;  (** journal lines with no blob *)
  rec_torn_journal : bool;  (** final journal line was torn *)
}

val recovery : t -> recovery

(** {2 Fault injection (tests only)} *)

(** Raised by test hooks to simulate a crash at a labelled point. *)
exception Injected_crash of string

(** Called with a crash-point label at each step of the commit protocol
    ([store:before-tmp], [store:mid-blob], [store:before-rename],
    [store:before-journal], [store:after-journal]); tests install a hook
    that raises. Reset to [ignore] when done. *)
val crash_hook : (string -> unit) ref
