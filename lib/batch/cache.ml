(* The persistent content-addressed compilation cache (store layout,
   journal format, and recovery invariants in docs/CACHE.md).

   Layout under the cache directory:

     objects/<k[0..1]>/<key>.json    committed artifact blobs
     journal                         append-only commit log

   Commit protocol, per [store]: write the blob to a temp file in its
   objects/ subdirectory, fsync, atomically rename to its final name,
   then append (and fsync) one "commit <key>" journal line. An entry is
   *committed* iff its journal line landed — the journal is authoritative,
   so every crash point has a defined outcome:

     - killed mid-blob-write: a temp file survives; recovery sweeps it.
     - killed after rename, before the journal line: the blob file exists
       but is not journaled; recovery discards it (the in-flight entry is
       recompiled — never served).
     - killed mid-journal-append: only the final journal line can be
       torn; recovery drops the torn line (and that entry's blob).

   [open_] runs the recovery scan, then compacts the journal (atomic
   rename) when it dropped anything. One process owns a cache directory
   at a time; within the process, all operations serialize on a mutex so
   any number of domains may share the handle. *)

exception Injected_crash of string

(* Test-only fault injection: called with a crash-point label at each
   step of the commit protocol; tests install a hook that raises to
   simulate a kill at exactly that point. *)
let crash_hook : (string -> unit) ref = ref ignore

let crash_point label = !crash_hook label

type recovery = {
  rec_swept_tmp : int;
  rec_unjournaled : int;
  rec_missing_blob : int;
  rec_torn_journal : bool;
}

type t = {
  c_dir : string;
  c_committed : (string, unit) Hashtbl.t;  (** keys with journal lines *)
  c_mutex : Mutex.t;
  c_recovery : recovery;
  mutable c_hits : int;
  mutable c_misses : int;
}

let dir t = t.c_dir

let objects_dir dir = Filename.concat dir "objects"

let journal_path dir = Filename.concat dir "journal"

let blob_path dir key =
  Filename.concat
    (Filename.concat (objects_dir dir) (String.sub key 0 2))
    (key ^ ".json")

let key parts = Support.Digest.strings parts

(* ---- open + recovery ----------------------------------------------------- *)

let read_journal dir =
  let path = journal_path dir in
  if not (Sys.file_exists path) then ([], false)
  else begin
    let src = In_channel.with_open_bin path In_channel.input_all in
    (* A crash during an append can tear only the last line: a source not
       ending in '\n' has a torn tail, which we drop. Any line that is
       not exactly "commit <32-hex>" is likewise ignored. *)
    let torn = src <> "" && src.[String.length src - 1] <> '\n' in
    let lines = String.split_on_char '\n' src in
    let lines =
      match List.rev lines with
      | last :: rest when torn || last = "" -> List.rev rest
      | _ -> lines
    in
    let keys =
      List.filter_map
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "commit"; k ] when Support.Digest.is_hex k -> Some k
          | _ -> None)
        lines
    in
    (keys, torn)
  end

let open_ ~dir =
  Support.Atomic_io.mkdir_p (objects_dir dir);
  let journaled, torn = read_journal dir in
  let committed = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace committed k ()) journaled;
  (* Sweep the object tree: temp files are debris from a kill mid-write;
     a well-named blob with no journal line is a commit whose journal
     append never landed — both are partial entries, both are dropped. *)
  let swept_tmp = ref 0 and unjournaled = ref 0 in
  let odir = objects_dir dir in
  Array.iter
    (fun sub ->
      let subdir = Filename.concat odir sub in
      if try Sys.is_directory subdir with Sys_error _ -> false then
        Array.iter
          (fun name ->
            let path = Filename.concat subdir name in
            if Support.Atomic_io.is_tmp_name name then begin
              (try Sys.remove path with Sys_error _ -> ());
              incr swept_tmp
            end
            else
              let k = Filename.chop_suffix_opt ~suffix:".json" name in
              match k with
              | Some k when Support.Digest.is_hex k ->
                  if not (Hashtbl.mem committed k) then begin
                    (try Sys.remove path with Sys_error _ -> ());
                    incr unjournaled
                  end
              | _ -> ())
          (Sys.readdir subdir))
    (Sys.readdir odir);
  (* Journal lines whose blob vanished (e.g. a corrupt blob unlinked by a
     previous [find]) are dropped from the committed set. *)
  let missing = ref 0 in
  Hashtbl.iter
    (fun k () -> if not (Sys.file_exists (blob_path dir k)) then incr missing)
    (Hashtbl.copy committed);
  if !missing > 0 then
    Hashtbl.iter
      (fun k () ->
        if not (Sys.file_exists (blob_path dir k)) then
          Hashtbl.remove committed k)
      (Hashtbl.copy committed);
  (* Compact: if recovery dropped anything, rewrite the journal to list
     exactly the surviving entries (atomic rename, like any artifact). *)
  if torn || !missing > 0 || Hashtbl.length committed < List.length journaled
  then begin
    let buf = Buffer.create 1024 in
    Hashtbl.iter
      (fun k () -> Buffer.add_string buf ("commit " ^ k ^ "\n"))
      committed;
    Support.Atomic_io.write_file ~path:(journal_path dir)
      (Buffer.contents buf)
  end;
  {
    c_dir = dir;
    c_committed = committed;
    c_mutex = Mutex.create ();
    c_recovery =
      {
        rec_swept_tmp = !swept_tmp;
        rec_unjournaled = !unjournaled;
        rec_missing_blob = !missing;
        rec_torn_journal = torn;
      };
    c_hits = 0;
    c_misses = 0;
  }

let recovery t = t.c_recovery

(* ---- lookup -------------------------------------------------------------- *)

let with_lock t f =
  Mutex.lock t.c_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.c_mutex) f

(* Registry-exported cache activity (docs/OBSERVABILITY.md): the
   hit/miss counters mirror the per-handle pair below so a --metrics file
   agrees with report.json; the latency histograms include lock wait,
   which is the part worth watching once many domains share one
   handle. *)
let m_hits =
  lazy (Ir.Metrics.counter ~help:"cache lookups served a payload" "mlt_cache_hits")

let m_misses =
  lazy
    (Ir.Metrics.counter ~help:"cache lookups that fell through to a compile"
       "mlt_cache_misses")

let m_stores =
  lazy (Ir.Metrics.counter ~help:"cache blobs committed" "mlt_cache_stores")

let m_find_seconds =
  lazy
    (Ir.Metrics.histogram ~help:"Cache.find latency incl. lock wait"
       "mlt_cache_find_seconds")

let m_store_seconds =
  lazy
    (Ir.Metrics.histogram ~help:"Cache.store latency incl. lock wait"
       "mlt_cache_store_seconds")

let count_hit t =
  t.c_hits <- t.c_hits + 1;
  Ir.Metrics.incr (Lazy.force m_hits)

let count_miss t =
  t.c_misses <- t.c_misses + 1;
  Ir.Metrics.incr (Lazy.force m_misses)

let find t k =
  Ir.Metrics.time (Lazy.force m_find_seconds) @@ fun () ->
  with_lock t (fun () ->
      if not (Hashtbl.mem t.c_committed k) then begin
        count_miss t;
        None
      end
      else begin
        let path = blob_path t.c_dir k in
        let invalidate () =
          (* Unreadable or unparsable committed blob: drop it — a miss
             and a recompile, never a crash or a stale artifact. *)
          Hashtbl.remove t.c_committed k;
          (try Sys.remove path with Sys_error _ -> ());
          count_miss t;
          None
        in
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error _ -> invalidate ()
        | src -> (
            match Support.Json.parse src with
            | Error _ -> invalidate ()
            | Ok json ->
                count_hit t;
                Some json)
      end)

let mem t k = with_lock t (fun () -> Hashtbl.mem t.c_committed k)

let entry_count t = with_lock t (fun () -> Hashtbl.length t.c_committed)

let hit_miss t = with_lock t (fun () -> (t.c_hits, t.c_misses))

(* ---- commit -------------------------------------------------------------- *)

let store t ~key:k json =
  if not (Support.Digest.is_hex k) then
    invalid_arg "Cache.store: key is not a digest";
  Ir.Metrics.time (Lazy.force m_store_seconds) @@ fun () ->
  with_lock t (fun () ->
      if not (Hashtbl.mem t.c_committed k) then begin
        Ir.Metrics.incr (Lazy.force m_stores);
        let path = blob_path t.c_dir k in
        Support.Atomic_io.mkdir_p (Filename.dirname path);
        let payload = Support.Json.to_string json in
        crash_point "store:before-tmp";
        (* Write the blob through the atomic writer, with an injection
           point mid-payload so tests can tear the temp file. *)
        Support.Atomic_io.with_file ~path (fun oc ->
            let half = String.length payload / 2 in
            Out_channel.output_string oc (String.sub payload 0 half);
            crash_point "store:mid-blob";
            Out_channel.output_substring oc payload half
              (String.length payload - half);
            crash_point "store:before-rename");
        crash_point "store:before-journal";
        Support.Atomic_io.append_line ~path:(journal_path t.c_dir)
          ("commit " ^ k);
        crash_point "store:after-journal";
        Hashtbl.replace t.c_committed k ()
      end)
