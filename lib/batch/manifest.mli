(** Batch-compilation manifests: the list of inputs a [mlt-batch] run
    shards across its domain pool (the ManifestLoader role of the
    sharded-pipeline architecture in docs/CONCURRENCY.md).

    A manifest is a JSON file:

    {v
    { "entries": [
        {"name": "gemm", "path": "gemm.c", "pipeline": "mlt-linalg"},
        {"name": "inline", "source": "void f(...) {...}"},
        {"name": "pre-raised", "path": "kernel.mlir"}
    ] }
    v}

    Each entry names its input (a mini-C or [.mlir] file path, resolved
    relative to the manifest file, or inline mini-C [source]) and the
    pipeline configuration to run ({!Mlt.Pipeline.config_name} spelling;
    defaults to ["mlt-linalg"]). *)

type source = File of string | Inline of string

type entry = {
  e_name : string;
  e_source : source;
  e_config : Mlt.Pipeline.config;
}

type t

(** [load path] parses a JSON manifest; raises [Support.Diag.Error] with
    a descriptive message on malformed input. File paths are resolved
    relative to [path]'s directory. *)
val load : string -> t

(** Build a manifest programmatically (the bench harness does). *)
val of_entries : entry list -> t

(** Entries in manifest order. *)
val entries : t -> entry list

val size : t -> int

(** The entry's program text (reads the file for [File] sources). *)
val source_text : entry -> string

(** True when the entry is textual IR ([.mlir]) rather than mini-C. *)
val is_ir : entry -> bool

(** Parses a {!Mlt.Pipeline.config_name} spelling. *)
val config_of_name : string -> Mlt.Pipeline.config option
