(** Batch-compilation manifests: the list of inputs a [mlt-batch] run
    shards across its domain pool (the ManifestLoader role of the
    sharded-pipeline architecture in docs/CONCURRENCY.md).

    A manifest is a JSON file:

    {v
    { "entries": [
        {"name": "gemm", "path": "gemm.c", "pipeline": "mlt-linalg"},
        {"name": "tuned", "path": "gemm.c", "script": "schedule.mlir"},
        {"name": "inline", "source": "void f(...) {...}",
         "script_source": "builtin.module { \"transform.tile\"() {sizes = [16]} : () -> () }"},
        {"name": "pre-raised", "path": "kernel.mlir"}
    ] }
    v}

    Each entry names its input (a mini-C or [.mlir] file path, resolved
    relative to the manifest file, or inline mini-C [source]) and the
    schedule to run: a built-in pipeline configuration
    ({!Mlt.Pipeline.config_name} spelling, default ["mlt-linalg"]), a
    transform-script file ([script], resolved relative to the manifest),
    or inline script IR text ([script_source]) — at most one of the
    three (docs/TRANSFORM.md). *)

type source = File of string | Inline of string

type entry = {
  e_name : string;
  e_source : source;
  e_schedule : Mlt.Pipeline.schedule;
}

type t

(** [load path] parses a JSON manifest; raises [Support.Diag.Error] with
    a descriptive message on malformed input. File paths are resolved
    relative to [path]'s directory. Transform scripts are parsed and
    validated at load time, so schedule errors surface before any domain
    spawns. *)
val load : string -> t

(** Build a manifest programmatically (the bench harness does). *)
val of_entries : entry list -> t

(** Entries in manifest order. *)
val entries : t -> entry list

val size : t -> int

(** The entry's program text (reads the file for [File] sources). *)
val source_text : entry -> string

(** True when the entry is textual IR ([.mlir]) rather than mini-C. *)
val is_ir : entry -> bool

(** Parses a {!Mlt.Pipeline.config_name} spelling
    (= {!Mlt.Pipeline.config_of_name}). *)
val config_of_name : string -> Mlt.Pipeline.config option
