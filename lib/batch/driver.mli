(** The sharded multi-domain batch compiler: shards a {!Manifest} across
    a pool of OCaml domains, compiles every entry through its configured
    {!Mlt.Pipeline}, isolates per-entry faults, and aggregates results
    deterministically (docs/CONCURRENCY.md describes the state model
    that makes the domain pool sound; docs/CACHE.md the compilation
    cache below).

    Roles, after the docudactyl HPC pipeline: manifest loading
    ({!Manifest}), sharding + the domain pool ({!run}), fault handling
    (per-entry — a crashing input fails its own manifest entry only),
    content-addressed caching with per-entry checkpoint commits
    ({!Cache}), sharded output ({!write_outputs}), and result
    aggregation (manifest order, so reports are independent of domain
    scheduling). *)

type status = Done | Failed of string

type entry_result = {
  r_name : string;
  r_config : string;  (** schedule name (pipeline config or script) *)
  r_shard : int;  (** which shard (= domain index) compiled/served it *)
  r_status : status;
  r_cached : bool;  (** served from the compilation cache *)
  r_ir : string;  (** printed IR; [""] when failed *)
  r_seconds : float;
  r_match_attempts : int;  (** rewriter counter delta for this entry *)
  r_rewrites : int;
  r_summary : Ir.Pass.summary list;  (** per-pass stats for this entry *)
  r_remarks : string list;  (** captured remarks, emission order *)
}

type report = {
  rp_domains : int;
  rp_wall_seconds : float;
  rp_cache_enabled : bool;
  rp_cache_hits : int;  (** entries served from the cache *)
  rp_cache_misses : int;  (** entries compiled (0 when cache disabled) *)
  rp_results : entry_result list;  (** manifest order, all entries *)
  rp_summary : Ir.Pass.summary list;
      (** per-entry summaries merged in manifest order
          ({!Ir.Pass.merge_summaries}) — deterministic, schedule-independent *)
}

val ok_count : report -> int
val failed_count : report -> int

(** [run ~domains manifest] compiles every entry. [domains] (default 1,
    clamped to the entry count) sets the pool size: entry [i] goes to
    shard [i mod domains]; shard 0 runs on the calling domain, the rest
    on spawned domains. With [domains = 1] no domain is spawned — the
    sequential oracle the tests compare against. [capture_remarks]
    (default false) installs a per-entry remark sink and records the
    rendered remarks in the result (off by default: an installed sink
    makes tactics compute near-miss explanations, which costs compile
    time).

    With [cache], each entry is first looked up by content address
    (source text + pipeline/pattern-set identity + remark-capture mode);
    hits are served without compiling, misses compile and then commit —
    and each commit is a checkpoint: a killed run re-invoked with the
    same cache serves every committed entry and recompiles only the
    rest. Cached entries reproduce the original's IR byte-for-byte and
    its {!result_signature} exactly. One handle may be shared by all
    worker domains.

    Faults: any exception an entry raises ([Diag.Error] or otherwise) is
    caught at the entry boundary and recorded as [Failed]; the run and
    every other entry complete normally. Failed entries are never
    cached. A cache lookup that fails for any reason falls back to
    compiling; a failed commit warns on stderr and leaves the entry
    intact.

    [progress] (default false) spawns a stderr heartbeat on its own
    ticker domain: done/failed/cached counts, rate, and ETA, redrawn in
    place on a tty and emitted as change-only lines otherwise. Purely
    wall-clock observability — nothing it reads or prints flows into
    results, reports, or {!result_signature}.

    When {!Ir.Metrics.enabled}, a run also records per-shard entry
    latency histograms ([mlt_batch_shard<N>_entry_seconds]) and the
    [mlt_batch_entries_{done,failed,cached}] counters — bumped from the
    same aggregation as the report, so the two artifacts agree. *)
val run :
  ?domains:int ->
  ?capture_remarks:bool ->
  ?progress:bool ->
  ?cache:Cache.t ->
  Manifest.t ->
  report

(** [compile_entry ~capture_remarks ~shard e] — the single-entry unit of
    work (exposed for tests). Never raises. *)
val compile_entry :
  capture_remarks:bool ->
  shard:int ->
  ?cache:Cache.t ->
  Manifest.entry ->
  entry_result

(** Deterministic comparison keys: summaries and results rendered
    {e without} wall-clock fields, so a 4-domain run can be asserted
    equal to the sequential oracle — and a cache-served run to a fresh
    one. Wall-clock seconds and GC deltas are {e excluded} by
    construction (pinned by a regression test in test/test_batch.ml). *)
val summary_signature : Ir.Pass.summary list -> string

val result_signature : entry_result -> string

(** Sum of per-entry wall-clock seconds across all shards (the CPU-time
    view to set against [wall_seconds]); the report's
    ["total_entry_seconds"] member. Wall-clock only — never part of a
    signature. *)
val total_entry_seconds : report -> float

(** The whole report as one JSON object (schema in
    docs/CONCURRENCY.md), rendered by {!Support.Json.to_string}. *)
val report_json : report -> string

(** [write_outputs ~dir rp] writes each successful entry's IR to
    [dir/shard-N/III-name.mlir] ([III] the zero-padded manifest index —
    sanitized names are not unique) and the JSON report to
    [dir/report.json], creating directories as needed. All files commit
    through {!Support.Atomic_io} — a kill mid-write never leaves a torn
    artifact. *)
val write_outputs : dir:string -> report -> unit
