type status = Done | Failed of string

type entry_result = {
  r_name : string;
  r_config : string;
  r_shard : int;
  r_status : status;
  r_cached : bool;
  r_ir : string;
  r_seconds : float;
  r_match_attempts : int;
  r_rewrites : int;
  r_summary : Ir.Pass.summary list;
  r_remarks : string list;
}

type report = {
  rp_domains : int;
  rp_wall_seconds : float;
  rp_cache_enabled : bool;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_results : entry_result list;
  rp_summary : Ir.Pass.summary list;
}

let ok_count rp =
  List.length
    (List.filter (fun r -> r.r_status = Done) rp.rp_results)

let failed_count rp = List.length rp.rp_results - ok_count rp

(* ---- cache payloads ------------------------------------------------------ *)

module J = Support.Json

(* The artifact payload format: what a committed cache blob must carry to
   reconstruct an entry_result whose result_signature (and report row,
   wall-clock aside) is identical to a fresh compilation's. Bump together
   with any field change so old blobs read as misses, not as garbage.
   3: summaries carry per-pass GC deltas. *)
let payload_format = 3

let pattern_stat_to_json (p : Ir.Rewriter.pattern_stat) =
  J.Obj
    [
      ("name", J.Str p.ps_name);
      ("attempts", J.num_int p.ps_attempts);
      ("hits", J.num_int p.ps_hits);
      ("activations", J.num_int p.ps_activations);
    ]

let summary_to_json (s : Ir.Pass.summary) =
  J.Obj
    [
      ("name", J.Str s.s_name);
      ("runs", J.num_int s.s_runs);
      ("seconds", J.Num s.s_seconds);
      ("match_attempts", J.num_int s.s_match_attempts);
      ("rewrites", J.num_int s.s_rewrites);
      ("ops_delta", J.num_int s.s_ops_delta);
      ("gc", Ir.Pass.gc_json s.s_gc);
      ("patterns", J.List (List.map pattern_stat_to_json s.s_patterns));
    ]

exception Bad_payload

let jstr = function J.Str s -> s | _ -> raise Bad_payload
let jint v = match J.to_int v with Some i -> i | None -> raise Bad_payload
let jfloat = function J.Num f -> f | _ -> raise Bad_payload
let jlist = function J.List l -> l | _ -> raise Bad_payload

let jfield key json =
  match J.member key json with Some v -> v | None -> raise Bad_payload

let pattern_stat_of_json j : Ir.Rewriter.pattern_stat =
  {
    ps_name = jstr (jfield "name" j);
    ps_attempts = jint (jfield "attempts" j);
    ps_hits = jint (jfield "hits" j);
    ps_activations = jint (jfield "activations" j);
  }

let summary_of_json j : Ir.Pass.summary =
  {
    s_name = jstr (jfield "name" j);
    s_runs = jint (jfield "runs" j);
    s_seconds = jfloat (jfield "seconds" j);
    s_match_attempts = jint (jfield "match_attempts" j);
    s_rewrites = jint (jfield "rewrites" j);
    s_ops_delta = jint (jfield "ops_delta" j);
    s_gc =
      (match J.member "gc" j with
      | Some g -> Ir.Pass.gc_of_json g
      | None -> Ir.Pass.zero_gc);
    s_patterns = List.map pattern_stat_of_json (jlist (jfield "patterns" j));
  }

let payload_of_result r =
  J.Obj
    [
      ("format", J.num_int payload_format);
      ("pipeline", J.Str r.r_config);
      ("ir", J.Str r.r_ir);
      ("ir_digest", J.Str (Support.Digest.string r.r_ir));
      ("seconds", J.Num r.r_seconds);
      ("match_attempts", J.num_int r.r_match_attempts);
      ("rewrites", J.num_int r.r_rewrites);
      ("remarks", J.List (List.map (fun m -> J.Str m) r.r_remarks));
      ("passes", J.List (List.map summary_to_json r.r_summary));
    ]

(* Decode a committed payload back into a (cached) result for the entry
   at hand. Any shape mismatch — wrong format version, missing field,
   IR digest divergence — raises [Bad_payload]; the caller treats it as
   a miss and recompiles. *)
let result_of_payload ~entry ~shard ~seconds json =
  if jint (jfield "format" json) <> payload_format then raise Bad_payload;
  let ir = jstr (jfield "ir" json) in
  if
    not
      (String.equal (jstr (jfield "ir_digest" json)) (Support.Digest.string ir))
  then raise Bad_payload;
  {
    r_name = entry.Manifest.e_name;
    r_config = Mlt.Pipeline.schedule_name entry.Manifest.e_schedule;
    r_shard = shard;
    r_status = Done;
    r_cached = true;
    r_ir = ir;
    r_seconds = seconds;
    r_match_attempts = jint (jfield "match_attempts" json);
    r_rewrites = jint (jfield "rewrites" json);
    r_summary = List.map summary_of_json (jlist (jfield "passes" json));
    r_remarks = List.map jstr (jlist (jfield "remarks" json));
  }

(* The content address of an entry's artifact: everything that determines
   the compiled output (and the recorded remarks) must be in here —
   source text, source kind, pipeline + pattern-set identity, and whether
   a remark sink was installed during compilation. *)
let entry_key ~capture_remarks (e : Manifest.entry) src =
  Cache.key
    [
      "batch-entry";
      (if Manifest.is_ir e then "ir" else "c");
      Mlt.Pipeline.schedule_cache_identity e.Manifest.e_schedule;
      (if capture_remarks then "remarks" else "no-remarks");
      src;
    ]

(* ---- per-entry compilation (the FaultHandler boundary) ------------------ *)

(* Everything an entry does — reading its file, parsing, the whole pass
   pipeline, printing, cache lookup/commit — happens inside this
   function, and any exception it raises is converted into a [Failed]
   result. One crashing input therefore fails exactly its own manifest
   entry; the shard moves on to its next entry. *)
let compile_entry ~capture_remarks ~shard ?cache (e : Manifest.entry) =
  let t0 = Unix.gettimeofday () in
  let remarks_rev = ref [] in
  let attempts0, rewrites0 = Ir.Rewriter.counter_totals () in
  let with_remark_capture f =
    if capture_remarks then
      Ir.Remark.with_sink
        (fun r -> remarks_rev := Ir.Remark.to_string r :: !remarks_rev)
        f
    else f ()
  in
  let finish status ir summary =
    let attempts1, rewrites1 = Ir.Rewriter.counter_totals () in
    {
      r_name = e.Manifest.e_name;
      r_config = Mlt.Pipeline.schedule_name e.Manifest.e_schedule;
      r_shard = shard;
      r_status = status;
      r_cached = false;
      r_ir = ir;
      r_seconds = Unix.gettimeofday () -. t0;
      r_match_attempts = attempts1 - attempts0;
      r_rewrites = rewrites1 - rewrites0;
      r_summary = summary;
      r_remarks = List.rev !remarks_rev;
    }
  in
  (* Serve from the cache if we can. Lookup failures of any kind (bad
     payload, I/O error) fall through to a fresh compile — the cache can
     cost a recompilation, never a wrong answer or a crashed entry. *)
  let cached =
    match cache with
    | None -> None
    | Some c -> (
        let lookup () =
          let src = Manifest.source_text e in
          match Cache.find c (entry_key ~capture_remarks e src) with
          | None -> None
          | Some payload ->
              Some
                (result_of_payload ~entry:e ~shard
                   ~seconds:(Unix.gettimeofday () -. t0)
                   payload)
        in
        match lookup () with v -> v | exception _ -> None)
  in
  match cached with
  | Some r -> r
  | None -> (
      match
        with_remark_capture (fun () ->
            let src = Manifest.source_text e in
            let file =
              match e.Manifest.e_source with
              | Manifest.File path -> Some path
              | Manifest.Inline _ -> None
            in
            let m =
              if Manifest.is_ir e then Ir.Parser.parse_module ?file src
              else Met.Emit_affine.translate ?file src
            in
            let pm = Ir.Pass.create_manager () in
            let m = Mlt.Pipeline.prepare_schedule_module ~pm e.Manifest.e_schedule m in
            (src, Ir.Printer.op_to_string m ^ "\n", Ir.Pass.summarize pm))
      with
      | src, ir, summary ->
          let r = finish Done ir summary in
          (* Commit to the cache *after* the entry succeeded: this
             journal append is the checkpoint record — a killed run
             restarts and serves every committed entry without
             recompiling. A failed store degrades to a warning; the
             compiled entry itself is unaffected. *)
          (match cache with
          | None -> ()
          | Some c -> (
              let key = entry_key ~capture_remarks e src in
              try Cache.store c ~key (payload_of_result r)
              with exn ->
                Printf.eprintf
                  "mlt-batch: warning: cache store failed for %S: %s\n%!"
                  e.Manifest.e_name (Printexc.to_string exn)));
          r
      | exception Support.Diag.Error (loc, msg) ->
          finish (Failed (Support.Diag.to_string loc msg)) "" []
      | exception exn -> finish (Failed (Printexc.to_string exn)) "" [])

(* ---- the domain pool ---------------------------------------------------- *)

(* Registry handles (docs/OBSERVABILITY.md). The done/failed/cached
   counters are bumped from the same aggregation that builds
   report.json, so a --metrics file and the report cannot disagree. *)
let m_entries_done =
  lazy
    (Ir.Metrics.counter ~help:"batch entries compiled or served ok"
       "mlt_batch_entries_done")

let m_entries_failed =
  lazy (Ir.Metrics.counter ~help:"batch entries failed" "mlt_batch_entries_failed")

let m_entries_cached =
  lazy
    (Ir.Metrics.counter ~help:"batch entries served from the cache"
       "mlt_batch_entries_cached")

let m_wall_seconds =
  lazy
    (Ir.Metrics.gauge ~help:"wall-clock of the last batch run"
       "mlt_batch_wall_seconds")

let shard_hist shard =
  Ir.Metrics.histogram ~help:"per-entry wall-clock on this shard"
    (Printf.sprintf "mlt_batch_shard%d_entry_seconds" shard)

(* ---- progress heartbeat --------------------------------------------------

   Wall-clock-only observability: the heartbeat reads three atomics the
   workers bump and writes to stderr from its own ticker domain. Nothing
   it computes flows into results, reports, or signatures. *)

type progress_state = {
  pg_total : int;
  pg_done : int Atomic.t;  (** entries finished [Done], cached included *)
  pg_failed : int Atomic.t;
  pg_cached : int Atomic.t;
  pg_stop : bool Atomic.t;
  pg_t0 : float;
}

let progress_line st =
  let d = Atomic.get st.pg_done in
  let f = Atomic.get st.pg_failed in
  let c = Atomic.get st.pg_cached in
  let completed = d + f in
  let elapsed = Unix.gettimeofday () -. st.pg_t0 in
  let rate = if elapsed > 0. then float_of_int completed /. elapsed else 0. in
  let eta =
    if rate > 0. && completed < st.pg_total then
      Printf.sprintf " eta %.0fs" (float_of_int (st.pg_total - completed) /. rate)
    else ""
  in
  Printf.sprintf "[mlt-batch] %d/%d done (%d failed, %d cached) %.1f/s%s"
    completed st.pg_total f c rate eta

let progress_ticker st =
  Domain.spawn (fun () ->
      (* On a tty, redraw one line in place; otherwise emit a full line
         only when the numbers moved, so logs aren't flooded. *)
      let tty = try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false in
      let last = ref "" in
      let emit ~final line =
        if tty then Printf.eprintf "\r\027[K%s%s%!" line (if final then "\n" else "")
        else if final || line <> !last then Printf.eprintf "%s\n%!" line;
        last := line
      in
      while not (Atomic.get st.pg_stop) do
        emit ~final:false (progress_line st);
        Unix.sleepf 0.5
      done;
      emit ~final:true (progress_line st))

let run ?(domains = 1) ?(capture_remarks = false) ?(progress = false) ?cache
    manifest =
  (* The Dialect op-def registry is write-once-before-parallelism:
     populate it fully on this domain so the workers spawned below only
     ever read it (Ir.Dialect.register_once makes even a racing first
     registration safe, but eager registration means the unsynchronized
     lookup fast path is all the workers execute). *)
  Mlt.Pipeline.register_dialects ();
  let entries = Array.of_list (Manifest.entries manifest) in
  let n = Array.length entries in
  let domains = max 1 (min domains (max 1 n)) in
  let results : entry_result option array = Array.make n None in
  (* Round-robin sharding: entry [i] belongs to shard [i mod domains].
     Each result slot is written by exactly one domain, so the plain
     array needs no synchronization; [Domain.join] publishes the
     writes. The cache handle, when present, is shared — its operations
     serialize on an internal mutex. *)
  let t0 = Unix.gettimeofday () in
  let pg =
    if progress && n > 0 then
      Some
        {
          pg_total = n;
          pg_done = Atomic.make 0;
          pg_failed = Atomic.make 0;
          pg_cached = Atomic.make 0;
          pg_stop = Atomic.make false;
          pg_t0 = t0;
        }
    else None
  in
  let work shard () =
    let hist = shard_hist shard in
    let i = ref shard in
    while !i < n do
      let r = compile_entry ~capture_remarks ~shard ?cache entries.(!i) in
      results.(!i) <- Some r;
      Ir.Metrics.observe hist r.r_seconds;
      (match pg with
      | None -> ()
      | Some st ->
          (match r.r_status with
          | Done -> Atomic.incr st.pg_done
          | Failed _ -> Atomic.incr st.pg_failed);
          if r.r_cached then Atomic.incr st.pg_cached);
      i := !i + domains
    done
  in
  let ticker = Option.map progress_ticker pg in
  if domains = 1 then work 0 ()
  else begin
    let spawned =
      List.init (domains - 1) (fun s -> Domain.spawn (work (s + 1)))
    in
    (* Shard 0 runs on the calling domain — its listener/sink/counter
       state is domain-local, so this does not disturb the caller beyond
       advancing its own rewriter counters. *)
    work 0 ();
    List.iter Domain.join spawned
  end;
  (match (pg, ticker) with
  | Some st, Some t ->
      Atomic.set st.pg_stop true;
      Domain.join t
  | _ -> ());
  let wall = Unix.gettimeofday () -. t0 in
  let results =
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> failwith "batch: unfilled result slot")
         results)
  in
  (* ResultAggregator: fold per-entry pass summaries in manifest order —
     independent of which domain compiled what, the aggregate is the one
     a sequential run would produce (timings aside). *)
  let merged =
    List.fold_left
      (fun acc r -> Ir.Pass.merge_summaries acc r.r_summary)
      [] results
  in
  let hits =
    List.length (List.filter (fun r -> r.r_cached) results)
  in
  let rp =
    {
      rp_domains = domains;
      rp_wall_seconds = wall;
      rp_cache_enabled = cache <> None;
      rp_cache_hits = hits;
      rp_cache_misses = (if cache = None then 0 else n - hits);
      rp_results = results;
      rp_summary = merged;
    }
  in
  if Ir.Metrics.enabled () then begin
    Ir.Metrics.add (Lazy.force m_entries_done) (ok_count rp);
    Ir.Metrics.add (Lazy.force m_entries_failed) (failed_count rp);
    Ir.Metrics.add (Lazy.force m_entries_cached) hits;
    Ir.Metrics.set (Lazy.force m_wall_seconds) wall
  end;
  rp

(* ---- deterministic signatures ------------------------------------------- *)

(* Render summaries without the wall-clock fields, so two runs of the
   same work can be compared for equality: pass/pattern counters are
   deterministic, seconds are not. *)
let summary_signature summaries =
  let pattern (p : Ir.Rewriter.pattern_stat) =
    Printf.sprintf "%s:%d/%d/%d" p.ps_name p.ps_attempts p.ps_hits
      p.ps_activations
  in
  String.concat "\n"
    (List.map
       (fun (s : Ir.Pass.summary) ->
         Printf.sprintf "%s runs=%d matches=%d rewrites=%d ops=%+d [%s]"
           s.s_name s.s_runs s.s_match_attempts s.s_rewrites s.s_ops_delta
           (String.concat " " (List.map pattern s.s_patterns)))
       summaries)

let result_signature r =
  Printf.sprintf "%s|%s|%s|%s"
    r.r_name r.r_config
    (match r.r_status with Done -> "ok" | Failed m -> "error:" ^ m)
    (summary_signature r.r_summary)

(* ---- report ------------------------------------------------------------- *)

let status_fields = function
  | Done -> [ ("status", J.Str "ok") ]
  | Failed msg -> [ ("status", J.Str "error"); ("error", J.Str msg) ]

let entry_json_value r =
  J.Obj
    ([
       ("name", J.Str r.r_name);
       ("pipeline", J.Str r.r_config);
       ("shard", J.num_int r.r_shard);
       ("cached", J.Bool r.r_cached);
     ]
    @ status_fields r.r_status
    @ [
        ("seconds", J.Num r.r_seconds);
        ("match_attempts", J.num_int r.r_match_attempts);
        ("rewrites", J.num_int r.r_rewrites);
        ("remarks", J.List (List.map (fun m -> J.Str m) r.r_remarks));
        ("passes", Ir.Pass.summaries_json_value r.r_summary);
      ])

(* CPU-time view to set against [wall_seconds]: the sum of per-entry
   wall-clocks across all shards. Wall-clock only — excluded (like every
   seconds field) from both signatures. *)
let total_entry_seconds rp =
  List.fold_left (fun acc r -> acc +. r.r_seconds) 0. rp.rp_results

let report_json_value rp =
  J.Obj
    [
      ("domains", J.num_int rp.rp_domains);
      ("wall_seconds", J.Num rp.rp_wall_seconds);
      ("total_entry_seconds", J.Num (total_entry_seconds rp));
      ("ok", J.num_int (ok_count rp));
      ("failed", J.num_int (failed_count rp));
      ("cache_enabled", J.Bool rp.rp_cache_enabled);
      ("cache_hits", J.num_int rp.rp_cache_hits);
      ("cache_misses", J.num_int rp.rp_cache_misses);
      ("entries", J.List (List.map entry_json_value rp.rp_results));
      ("passes", Ir.Pass.summaries_json_value rp.rp_summary);
    ]

let report_json rp = J.to_string (report_json_value rp)

(* ---- sharded output ----------------------------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

(* Per-shard subdirectories mirror how each domain could stream its own
   output file without contending on a shared writer; the report at the
   top level is the aggregated view. Filenames are prefixed with the
   manifest index: sanitizing collapses distinct entry names ("gemm#0"
   and "gemm_0" both sanitize to "gemm_0"), and manifests may repeat a
   name outright, so the index is what guarantees one file per entry.
   Every file commits through the atomic writer: a kill mid-run leaves
   whole files and absent files, never torn ones. *)
let write_outputs ~dir rp =
  Support.Atomic_io.mkdir_p dir;
  List.iteri
    (fun idx r ->
      match r.r_status with
      | Failed _ -> ()
      | Done ->
          let shard_dir =
            Filename.concat dir (Printf.sprintf "shard-%d" r.r_shard)
          in
          Support.Atomic_io.mkdir_p shard_dir;
          let path =
            Filename.concat shard_dir
              (Printf.sprintf "%03d-%s.mlir" idx (sanitize r.r_name))
          in
          Support.Atomic_io.write_file ~path r.r_ir)
    rp.rp_results;
  Support.Atomic_io.write_file
    ~path:(Filename.concat dir "report.json")
    (report_json rp ^ "\n")
