type status = Done | Failed of string

type entry_result = {
  r_name : string;
  r_config : string;
  r_shard : int;
  r_status : status;
  r_ir : string;
  r_seconds : float;
  r_match_attempts : int;
  r_rewrites : int;
  r_summary : Ir.Pass.summary list;
  r_remarks : string list;
}

type report = {
  rp_domains : int;
  rp_wall_seconds : float;
  rp_results : entry_result list;
  rp_summary : Ir.Pass.summary list;
}

let ok_count rp =
  List.length
    (List.filter (fun r -> r.r_status = Done) rp.rp_results)

let failed_count rp = List.length rp.rp_results - ok_count rp

(* ---- per-entry compilation (the FaultHandler boundary) ------------------ *)

(* Everything an entry does — reading its file, parsing, the whole pass
   pipeline, printing — happens inside this function, and any exception it
   raises is converted into a [Failed] result. One crashing input
   therefore fails exactly its own manifest entry; the shard moves on to
   its next entry. *)
let compile_entry ~capture_remarks ~shard (e : Manifest.entry) =
  let t0 = Unix.gettimeofday () in
  let remarks_rev = ref [] in
  let attempts0, rewrites0 = Ir.Rewriter.counter_totals () in
  let with_remark_capture f =
    if capture_remarks then
      Ir.Remark.with_sink
        (fun r -> remarks_rev := Ir.Remark.to_string r :: !remarks_rev)
        f
    else f ()
  in
  let finish status ir summary =
    let attempts1, rewrites1 = Ir.Rewriter.counter_totals () in
    {
      r_name = e.Manifest.e_name;
      r_config = Mlt.Pipeline.config_name e.Manifest.e_config;
      r_shard = shard;
      r_status = status;
      r_ir = ir;
      r_seconds = Unix.gettimeofday () -. t0;
      r_match_attempts = attempts1 - attempts0;
      r_rewrites = rewrites1 - rewrites0;
      r_summary = summary;
      r_remarks = List.rev !remarks_rev;
    }
  in
  match
    with_remark_capture (fun () ->
        let src = Manifest.source_text e in
        let file =
          match e.Manifest.e_source with
          | Manifest.File path -> Some path
          | Manifest.Inline _ -> None
        in
        let m =
          if Manifest.is_ir e then Ir.Parser.parse_module ?file src
          else Met.Emit_affine.translate ?file src
        in
        let pm = Ir.Pass.create_manager () in
        let m = Mlt.Pipeline.prepare_module ~pm e.Manifest.e_config m in
        (Ir.Printer.op_to_string m ^ "\n", Ir.Pass.summarize pm))
  with
  | ir, summary -> finish Done ir summary
  | exception Support.Diag.Error (loc, msg) ->
      finish (Failed (Support.Diag.to_string loc msg)) "" []
  | exception exn -> finish (Failed (Printexc.to_string exn)) "" []

(* ---- the domain pool ---------------------------------------------------- *)

let run ?(domains = 1) ?(capture_remarks = false) manifest =
  (* The Dialect op-def registry is write-once-before-parallelism:
     populate it fully on this domain so the workers spawned below only
     ever read it (Ir.Dialect.register_once makes even a racing first
     registration safe, but eager registration means the unsynchronized
     lookup fast path is all the workers execute). *)
  Mlt.Pipeline.register_dialects ();
  let entries = Array.of_list (Manifest.entries manifest) in
  let n = Array.length entries in
  let domains = max 1 (min domains (max 1 n)) in
  let results : entry_result option array = Array.make n None in
  (* Round-robin sharding: entry [i] belongs to shard [i mod domains].
     Each result slot is written by exactly one domain, so the plain
     array needs no synchronization; [Domain.join] publishes the
     writes. *)
  let work shard () =
    let i = ref shard in
    while !i < n do
      results.(!i) <-
        Some (compile_entry ~capture_remarks ~shard entries.(!i));
      i := !i + domains
    done
  in
  let t0 = Unix.gettimeofday () in
  if domains = 1 then work 0 ()
  else begin
    let spawned =
      List.init (domains - 1) (fun s -> Domain.spawn (work (s + 1)))
    in
    (* Shard 0 runs on the calling domain — its listener/sink/counter
       state is domain-local, so this does not disturb the caller beyond
       advancing its own rewriter counters. *)
    work 0 ();
    List.iter Domain.join spawned
  end;
  let wall = Unix.gettimeofday () -. t0 in
  let results =
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> failwith "batch: unfilled result slot")
         results)
  in
  (* ResultAggregator: fold per-entry pass summaries in manifest order —
     independent of which domain compiled what, the aggregate is the one
     a sequential run would produce (timings aside). *)
  let merged =
    List.fold_left
      (fun acc r -> Ir.Pass.merge_summaries acc r.r_summary)
      [] results
  in
  {
    rp_domains = domains;
    rp_wall_seconds = wall;
    rp_results = results;
    rp_summary = merged;
  }

(* ---- deterministic signatures ------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Render summaries without the wall-clock fields, so two runs of the
   same work can be compared for equality: pass/pattern counters are
   deterministic, seconds are not. *)
let summary_signature summaries =
  let pattern (p : Ir.Rewriter.pattern_stat) =
    Printf.sprintf "%s:%d/%d/%d" p.ps_name p.ps_attempts p.ps_hits
      p.ps_activations
  in
  String.concat "\n"
    (List.map
       (fun (s : Ir.Pass.summary) ->
         Printf.sprintf "%s runs=%d matches=%d rewrites=%d ops=%+d [%s]"
           s.s_name s.s_runs s.s_match_attempts s.s_rewrites s.s_ops_delta
           (String.concat " " (List.map pattern s.s_patterns)))
       summaries)

let result_signature r =
  Printf.sprintf "%s|%s|%s|%s"
    r.r_name r.r_config
    (match r.r_status with Done -> "ok" | Failed m -> "error:" ^ m)
    (summary_signature r.r_summary)

(* ---- report ------------------------------------------------------------- *)

let status_fields = function
  | Done -> [ ("status", "\"ok\"") ]
  | Failed msg ->
      [ ("status", "\"error\""); ("error", "\"" ^ json_escape msg ^ "\"") ]

let json_of_fields fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ k ^ "\":" ^ v) fields)
  ^ "}"

let entry_json r =
  json_of_fields
    ([
       ("name", "\"" ^ json_escape r.r_name ^ "\"");
       ("pipeline", "\"" ^ json_escape r.r_config ^ "\"");
       ("shard", string_of_int r.r_shard);
     ]
    @ status_fields r.r_status
    @ [
        ("seconds", Printf.sprintf "%.9f" r.r_seconds);
        ("match_attempts", string_of_int r.r_match_attempts);
        ("rewrites", string_of_int r.r_rewrites);
        ( "remarks",
          "["
          ^ String.concat ","
              (List.map (fun m -> "\"" ^ json_escape m ^ "\"") r.r_remarks)
          ^ "]" );
        ("passes", Ir.Pass.summaries_json r.r_summary);
      ])

let report_json rp =
  json_of_fields
    [
      ("domains", string_of_int rp.rp_domains);
      ("wall_seconds", Printf.sprintf "%.9f" rp.rp_wall_seconds);
      ("ok", string_of_int (ok_count rp));
      ("failed", string_of_int (failed_count rp));
      ( "entries",
        "[" ^ String.concat "," (List.map entry_json rp.rp_results) ^ "]" );
      ("passes", Ir.Pass.summaries_json rp.rp_summary);
    ]

(* ---- sharded output ----------------------------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

(* Per-shard subdirectories mirror how each domain could stream its own
   output file without contending on a shared writer; the report at the
   top level is the aggregated view. Filenames are prefixed with the
   manifest index: sanitizing collapses distinct entry names ("gemm#0"
   and "gemm_0" both sanitize to "gemm_0"), and manifests may repeat a
   name outright, so the index is what guarantees one file per entry. *)
let write_outputs ~dir rp =
  mkdir_p dir;
  List.iteri
    (fun idx r ->
      match r.r_status with
      | Failed _ -> ()
      | Done ->
          let shard_dir =
            Filename.concat dir (Printf.sprintf "shard-%d" r.r_shard)
          in
          mkdir_p shard_dir;
          let path =
            Filename.concat shard_dir
              (Printf.sprintf "%03d-%s.mlir" idx (sanitize r.r_name))
          in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc r.r_ir))
    rp.rp_results;
  let report_path = Filename.concat dir "report.json" in
  Out_channel.with_open_text report_path (fun oc ->
      Out_channel.output_string oc (report_json rp);
      Out_channel.output_char oc '\n')
