type source = File of string | Inline of string

type entry = {
  e_name : string;
  e_source : source;
  e_schedule : Mlt.Pipeline.schedule;
}

type t = { m_entries : entry list }

let config_of_name = Mlt.Pipeline.config_of_name

let of_entries entries = { m_entries = entries }

let entries t = t.m_entries

let size t = List.length t.m_entries

let read_file path = In_channel.with_open_text path In_channel.input_all

let source_text e =
  match e.e_source with Inline src -> src | File path -> read_file path

let is_ir e =
  match e.e_source with
  | File path -> Filename.check_suffix path ".mlir"
  | Inline _ -> false

(* ---- JSON loading ------------------------------------------------------- *)

let fail path msg =
  Support.Diag.errorf "manifest %s: %s" path msg

let parse_entry ~path ~dir i json =
  let where msg = fail path (Printf.sprintf "entry %d: %s" i msg) in
  let str_member key =
    match Support.Json.member key json with
    | Some (Support.Json.Str s) -> Some s
    | Some _ -> where (Printf.sprintf "field %S must be a string" key)
    | None -> None
  in
  let name =
    match str_member "name" with
    | Some n -> n
    | None -> where "missing required field \"name\""
  in
  let source =
    match (str_member "path", str_member "source") with
    | Some p, None ->
        let p =
          if Filename.is_relative p then Filename.concat dir p else p
        in
        File p
    | None, Some s -> Inline s
    | Some _, Some _ -> where "give either \"path\" or \"source\", not both"
    | None, None -> where "missing \"path\" or \"source\""
  in
  let schedule =
    match
      (str_member "pipeline", str_member "script", str_member "script_source")
    with
    | None, None, None -> Mlt.Pipeline.Config Mlt.Pipeline.Mlt_linalg
    | Some n, None, None -> (
        match config_of_name n with
        | Some c -> Mlt.Pipeline.Config c
        | None -> where (Printf.sprintf "unknown pipeline %S" n))
    | None, Some p, None -> (
        let p =
          if Filename.is_relative p then Filename.concat dir p else p
        in
        try
          Mlt.Pipeline.schedule_of_script_text
            ~name:("script:" ^ Filename.basename p)
            ~file:p (read_file p)
        with
        | Support.Diag.Error (loc, msg) ->
            where
              (Printf.sprintf "transform script %s: %s" p
                 (Support.Diag.to_string loc msg))
        | Sys_error msg -> where ("transform script: " ^ msg))
    | None, None, Some src -> (
        try Mlt.Pipeline.schedule_of_script_text src
        with Support.Diag.Error (loc, msg) ->
          where ("inline transform script: " ^ Support.Diag.to_string loc msg))
    | _ ->
        where
          "give at most one of \"pipeline\", \"script\" and \"script_source\""
  in
  { e_name = name; e_source = source; e_schedule = schedule }

let load path =
  let src = read_file path in
  let json =
    match Support.Json.parse src with
    | Ok v -> v
    | Error msg -> fail path msg
  in
  let dir = Filename.dirname path in
  match Support.Json.member "entries" json with
  | Some (Support.Json.List items) ->
      if items = [] then fail path "empty \"entries\" array";
      { m_entries = List.mapi (parse_entry ~path ~dir) items }
  | Some _ -> fail path "\"entries\" must be an array"
  | None -> fail path "missing \"entries\" array"
