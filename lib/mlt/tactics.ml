open Ir
module A = Affine.Affine_ops
module Ac = Matchers.Access
module D = Support.Diag

let standard_tdl =
  {|def GEMM {
  pattern = builder C(i,j) += A(i,k) * B(k,j)
}
def MATVEC {
  pattern = builder y(i) += A(i,j) * x(j)
}
def MATVEC_T {
  pattern = builder y(j) += A(i,j) * x(i)
}
def CONV2D_NCHW {
  pattern O(n,f,x,y) += I(n,c,x+r,y+s) * W(f,c,r,s)
}
|}

let standard () = Tdl.Backend.compile_tdl standard_tdl

let contraction (spec : Workloads.Contraction_spec.t) =
  let s = Workloads.Contraction_spec.to_string spec in
  match String.split_on_char '-' s with
  | [ o; a; b ] ->
      let name = "TTGT_" ^ String.concat "_" [ o; a; b ] in
      let tdl = Tdl.Frontend.contraction_tdl ~name o a b in
      (match Tdl.Backend.compile_tdl tdl with
      | [ p ] -> p
      | _ -> D.errorf "tactics: contraction tactic compiled to many patterns")
  | _ -> assert false

let paper_contractions () =
  List.map
    (fun (_, spec, _) -> contraction spec)
    (Workloads.Contraction_spec.paper_benchmarks ())

let normalized_loop loop =
  A.for_step loop = 1
  && (match A.for_const_bounds loop with Some (0, _) -> true | _ -> false)

let fill_pattern () =
  Rewriter.pattern ~name:"raise-fill"
    ~roots:(Rewriter.Roots [ "affine.for" ])
    ~generated_ops:[ "linalg.fill" ]
    (fun ctx op ->
      let miss stage msg =
        if Remark.enabled () then
          Remark.remark ~loc:op.Core.o_loc ~pattern:"raise-fill" ~stage
            Remark.Missed "%s" msg;
        false
      in
      match
        if A.is_for op then Some (Affine.Loops.perfect_nest op) else None
      with
      | Some loops when List.for_all normalized_loop loops ->
          let depth = List.length loops in
          let innermost = List.nth loops (depth - 1) in
          let actx = Ac.create_ctx () in
          let phs = List.init depth (fun _ -> Ac.placeholder actx) in
          let arr = Ac.array_placeholder actx in
          let pat =
            Ac.Init_const { out = Ac.access arr (List.map Ac.p phs) }
          in
          if not (Ac.match_block actx pat (A.for_body innermost)) then
            (match Ac.last_reject actx with
            | Some Ac.Unify ->
                miss "access-unification"
                  "store found, but its subscripts do not unify with the \
                   nest's induction variables"
            | _ ->
                miss "op-chain"
                  "innermost statement is not a constant store")
          else
            let memref = Ac.array_of actx arr in
            let covered =
              match Typ.static_shape memref.Core.v_typ with
              | Some shape when List.length shape = depth ->
                  (* Full coverage: each subscript spans its dimension. *)
                  List.for_all2
                    (fun ph extent -> Ac.solution_extent actx ph = Some extent)
                    phs shape
                  (* Every nest loop is bound (no repeating outer loop). *)
                  && List.for_all
                       (fun iv ->
                         List.exists
                           (fun ph -> Core.value_equal (Ac.iv_of actx ph) iv)
                           phs)
                       (Affine.Loops.nest_ivs loops)
              | _ -> false
            in
            if not covered then
              miss "coverage"
                "the initialized region does not cover the array's full \
                 extent"
            else begin
              ignore
                (Linalg.Linalg_ops.fill ctx.Rewriter.builder
                   ~value:(Ac.const_of actx) memref);
              Core.erase_op (List.hd loops);
              true
            end
      | _ -> false)

let all () = (fill_pattern () :: standard ()) @ paper_contractions ()

let raise_to_linalg root = Rewriter.apply_greedily root (Rewriter.freeze (all ()))

let raise_to_affine_matmul root =
  let pats =
    Tdl.Backend.compile_tdl ~target:Tdl.Backend.To_affine_matmul
      Tdl.Frontend.gemm_tdl
  in
  Rewriter.apply_greedily root (Rewriter.freeze pats)

let raise_to_linalg_pass ?patterns () =
  (* Freeze once at pass construction; every run reuses the index. *)
  let frozen =
    Rewriter.freeze (match patterns with Some ps -> ps | None -> all ())
  in
  Pass.make ~name:"raise-affine-to-linalg" (fun root ->
      ignore (Rewriter.apply_greedily root frozen))

let raise_to_affine_matmul_pass () =
  Pass.make ~name:"raise-affine-to-affine" (fun root ->
      ignore (raise_to_affine_matmul root))
