open Ir
module L = Linalg.Linalg_ops
module B = Blas.Blas_ops
module D = Support.Diag

let convert (ctx : Rewriter.ctx) (op : Core.op) =
  let b = ctx.builder in
  let operand i = Core.operand op i in
  let converted =
    match op.o_name with
    | "linalg.matmul" ->
        ignore (B.sgemm b (operand 0) (operand 1) (operand 2));
        true
    | "linalg.matvec" ->
        let call = B.sgemv b (operand 0) (operand 1) (operand 2) in
        (match Core.find_attr op "transpose" with
        | Some (Attr.Bool true) -> Core.set_attr call "transpose" (Attr.Bool true)
        | _ -> ());
        true
    | "linalg.transpose" ->
        ignore (B.stranspose b ~perm:(L.transpose_perm op) (operand 0) (operand 1));
        true
    | "linalg.reshape" ->
        ignore
          (B.sreshape_copy b ~grouping:(L.reshape_grouping op) (operand 0)
             (operand 1));
        true
    | "linalg.conv2d_nchw" ->
        ignore (B.sconv2d b (operand 0) (operand 1) (operand 2));
        true
    | "linalg.contract" ->
        D.errorf
          "to-blas: linalg.contract has no direct library call — raise \
           through a TTGT tactic first"
    | _ -> false
  in
  if converted then Core.erase_op op;
  converted

let patterns () =
  [
    Rewriter.pattern ~name:"linalg-to-blas"
      ~roots:
        (Rewriter.Roots
           [
             "linalg.matmul";
             "linalg.matvec";
             "linalg.transpose";
             "linalg.reshape";
             "linalg.conv2d_nchw";
             (* Not convertible, but must stay a dispatch root so the
                diagnostic above still fires under indexed dispatch. *)
             "linalg.contract";
           ])
      ~generated_ops:
        [
          "blas.sgemm";
          "blas.sgemv";
          "blas.stranspose";
          "blas.sreshape_copy";
          "blas.sconv2d";
        ]
      convert;
  ]

let frozen = Rewriter.freeze (patterns ())
let run root = Rewriter.apply_sweeps root frozen

let pass = Pass.make ~name:"convert-linalg-to-blas" (fun root -> ignore (run root))
