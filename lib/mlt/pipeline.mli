(** End-to-end compilation pipelines for the five Figure-9 configurations
    plus the §5.1 affine-raising path, producing simulated performance on
    a machine model.

    Every pipeline starts from mini-C source, enters the IR through MET
    at the Affine level (with loop distribution), and ends in IR that
    {!Machine.Perf} can time: affine loops, library calls, or both.

    - [Clang_O3]      — the loops as written (general-purpose compiler).
    - [Pluto_default] — fusion [smartfuse] + tiling 32.
    - [Pluto_best]    — best of the tiling/fusion sweep on the model.
    - [Mlt_linalg]    — raise to Linalg, lower back through the default
                        (tiling) Linalg path.
    - [Mlt_blas]      — raise to Linalg, convert to vendor-library calls.
    - [Mlt_affine_blis] — §5.1: raise GEMM to [affine.matmul], lower via
                        the OpenBLAS/BLIS schedule model. *)

open Ir

type config =
  | Clang_O3
  | Pluto_default
  | Pluto_best
  | Mlt_linalg
  | Mlt_blas
  | Mlt_affine_blis

val config_name : config -> string

(** [register_dialects ()] eagerly registers every dialect's op
    definitions into the {!Ir.Dialect} registry. The registry is
    write-once-before-parallelism, so anything that spawns domains which
    compile IR must call this first, on the spawning domain
    ([Batch.Driver.run] does). Idempotent and cheap after the first
    call. *)
val register_dialects : unit -> unit

val all_figure9_configs : config list

(** [cache_identity config] — the pipeline + pattern-set identity string
    mixed into every compilation-cache key ({!Batch.Cache}): a version
    tag (bumped when transformation behavior changes without the pass
    list changing) plus the configuration's pass-name list. Two configs
    with equal identity are promised to compile any source to identical
    IR. *)
val cache_identity : config -> string

(** The configuration's transformation pipeline, as pass-manager passes
    in application order (empty for [Clang_O3]). Pattern-backed passes
    compile their tactic sets once, at list construction. *)
val passes_of_config : config -> Pass.t list

(** [prepare config src] — parse, distribute, apply the configuration's
    transformations; returns the module (one function). The result always
    verifies. With [pm] the passes register into (and record statistics
    in) the caller's manager — pass a fresh manager per invocation, since
    registration accumulates. *)
val prepare : ?pm:Pass.manager -> config -> string -> Core.op

(** [prepare_module config m] — {!prepare} starting from an already
    translated module. *)
val prepare_module : ?pm:Pass.manager -> config -> Core.op -> Core.op

(** [time config machine src] — simulated seconds and report for the
    single kernel in [src]. With [pm], the preparation pipeline records
    per-pass statistics into the caller's (fresh) manager; for
    [Pluto_best] the sweep runs uninstrumented and the winning
    configuration is replayed through [pm]. *)
val time :
  ?pm:Pass.manager ->
  config ->
  Machine.Machine_model.t ->
  string ->
  Machine.Perf.report

(** [gflops config machine src ~flops] *)
val gflops :
  config -> Machine.Machine_model.t -> string -> flops:float -> float

(** [check_semantics config src] — differential execution check: run the
    untransformed kernel and the configuration's full pipeline output on
    identical random inputs through the interpreter and compare every
    buffer. The CLI's [--verify] and the test suite use this to pin each
    pipeline to real execution semantics (not just the verifier's
    structural invariants). *)
val check_semantics :
  ?seed:int ->
  ?eps:float ->
  ?engine:Interp.Eval.engine ->
  config ->
  string ->
  bool

(** {2 Compile-time measurement (§5.2 overhead experiment)}

    Wall-clock seconds to run the full lowering pipeline over the given
    sources, without ([`Baseline]) and with ([`With_mlt]) the raising
    passes; [`Match_only] runs canonicalization plus the tactic matching
    (the idiom discovery the paper contrasts with IDL's constraint
    solving) — the same prefix [`With_mlt] executes, so the overhead
    comparison measures matching on identical IR. Tactic-set compilation
    happens at pass registration, outside the timed region, in every
    mode. With [pm] (fresh manager), per-pass statistics accumulate
    across all sources; read them with {!Pass.summarize}. *)
val compile_time :
  ?pm:Pass.manager ->
  [ `Baseline | `With_mlt | `Match_only ] ->
  string list ->
  float

(** The pass list a {!compile_time} mode runs per source. *)
val compile_passes :
  [ `Baseline | `With_mlt | `Match_only ] -> Pass.t list

(** {2 Figure 8: callsite detection} *)

(** [count_gemm_callsites ?delinearize src] — number of sites the GEMM
    tactic raises; with [delinearize] the optimistic delinearization pass
    (the paper's proposed fix for Darknet) runs first. *)
val count_gemm_callsites : ?delinearize:bool -> string -> int
