(** End-to-end compilation pipelines for the five Figure-9 configurations
    plus the §5.1 affine-raising path, producing simulated performance on
    a machine model.

    Every pipeline starts from mini-C source, enters the IR through MET
    at the Affine level (with loop distribution), and ends in IR that
    {!Machine.Perf} can time: affine loops, library calls, or both.

    - [Clang_O3]      — the loops as written (general-purpose compiler).
    - [Pluto_default] — fusion [smartfuse] + tiling 32.
    - [Pluto_best]    — best of the tiling/fusion sweep on the model.
    - [Mlt_linalg]    — raise to Linalg, lower back through the default
                        (tiling) Linalg path.
    - [Mlt_blas]      — raise to Linalg, convert to vendor-library calls.
    - [Mlt_affine_blis] — §5.1: raise GEMM to [affine.matmul], lower via
                        the OpenBLAS/BLIS schedule model.

    Configurations are no longer hard-coded pass lists: each variant
    elaborates to a {!Transform.Script} ({!steps_of_config}) and every
    derived artifact — passes, cache identity, preparation — comes from
    interpreting that script. A {!schedule} generalizes [config] to
    user-supplied scripts ([--transform-script=FILE], batch-manifest
    [script] entries); see docs/TRANSFORM.md. *)

open Ir

type config =
  | Clang_O3
  | Pluto_default
  | Pluto_best
  | Mlt_linalg
  | Mlt_blas
  | Mlt_affine_blis

val config_name : config -> string

(** Every configuration, in {!config_name} display order. *)
val all_configs : config list

(** [config_of_name "mlt-blas"] — inverse of {!config_name}. *)
val config_of_name : string -> config option

val all_figure9_configs : config list

(** [register_dialects ()] eagerly registers every dialect's op
    definitions into the {!Ir.Dialect} registry — including the
    transform dialect and this library's transform-step implementations
    ({!register_transform_steps}). The registry is
    write-once-before-parallelism, so anything that spawns domains which
    compile IR must call this first, on the spawning domain
    ([Batch.Driver.run] does). Idempotent and cheap after the first
    call. *)
val register_dialects : unit -> unit

(** Installs the transform-step implementations only this library can
    provide — [transform.raise] over the tactic sets ([linalg],
    [affine-matmul], [affine]), [transform.reorder_chains] and
    [transform.to_blas] — into {!Transform.Interp}'s registry.
    Write-once; called by {!register_dialects} and by every script
    elaboration here. *)
val register_transform_steps : unit -> unit

(** {2 Configs as transform scripts} *)

(** The configuration's elaboration to transform-script steps (empty for
    [Clang_O3]; [Pluto_best] elaborates like [Pluto_default] — the sweep
    is resolved at timing, when a machine model is in hand). *)
val steps_of_config : config -> Transform.Script.step list

(** [script_of_config c] = [Transform.Script.of_steps (steps_of_config c)]
    — the configuration as a parseable [builtin.module] of transform
    ops. *)
val script_of_config : config -> Core.op

(** {2 Schedules}

    A schedule is what the drivers actually run: either a named built-in
    configuration or a custom transform script. *)

type schedule =
  | Config of config
  | Custom of { name : string; steps : Transform.Script.step list }

val schedule_of_config : config -> schedule

(** [schedule_of_steps steps] — a custom schedule. The default [name] is
    ["script:" ^ digest-prefix] of the printed script, so two textually
    identical scripts get the same display name. *)
val schedule_of_steps : ?name:string -> Transform.Script.step list -> schedule

(** [schedule_of_script m] — from an already parsed script module. *)
val schedule_of_script : ?name:string -> Core.op -> schedule

(** [schedule_of_script_text src] — parse script IR text (errors carry
    [file] positions). *)
val schedule_of_script_text :
  ?name:string -> ?file:string -> string -> schedule

val schedule_name : schedule -> string
val schedule_steps : schedule -> Transform.Script.step list

(** The schedule's steps as a script module. *)
val script_of_schedule : schedule -> Core.op

(** {2 Derived artifacts} *)

(** [schedule_cache_identity s] — the pipeline + pattern-set identity
    string mixed into every compilation-cache key ({!Batch.Cache}): a
    version tag (bumped when transformation behavior changes in a way
    the script cannot express), the interner version, and the {e printed
    transform script}. Because the script carries every parameter (tile
    sizes, BLIS blocking, fusion heuristic), two schedules with equal
    identity are promised to compile any source to identical IR — the
    v1 pass-name identity could not promise that. The schedule's display
    name is deliberately excluded: equal scripts share cache entries. *)
val schedule_cache_identity : schedule -> string

(** [cache_identity config] = [schedule_cache_identity (Config config)]. *)
val cache_identity : config -> string

(** The schedule's transformation pipeline, as pass-manager passes in
    application order — one pass per script step, named by
    {!Transform.Script.step_name}. Pattern-backed steps compile their
    tactic sets once, at list construction. *)
val passes_of_schedule : schedule -> Pass.t list

(** [passes_of_config c] = [passes_of_schedule (Config c)]. *)
val passes_of_config : config -> Pass.t list

(** {2 Preparation} *)

(** [prepare_schedule schedule src] — parse, distribute, interpret the
    schedule's script; returns the module (one function). The result
    always verifies. With [pm] the passes register into (and record
    statistics in) the caller's manager — pass a fresh manager per
    invocation, since registration accumulates. *)
val prepare_schedule : ?pm:Pass.manager -> schedule -> string -> Core.op

(** {!prepare_schedule} starting from an already translated module. *)
val prepare_schedule_module :
  ?pm:Pass.manager -> schedule -> Core.op -> Core.op

val prepare : ?pm:Pass.manager -> config -> string -> Core.op
val prepare_module : ?pm:Pass.manager -> config -> Core.op -> Core.op

(** {2 Simulated timing} *)

(** [time_schedule_ext schedule machine src] — simulated report for the
    single kernel in [src], plus tuner statistics when the schedule
    triggered a search. [Config Pluto_best] routes through {!Tune}:
    the Pluto sweep as transform scripts, sharded across a domain pool,
    winner byte-identical to the legacy sequential sweep. With [pm], the
    preparation pipeline records per-pass statistics into the caller's
    (fresh) manager; for [Pluto_best] the sweep runs uninstrumented and
    the winning script is replayed through [pm]. *)
val time_schedule_ext :
  ?pm:Pass.manager ->
  schedule ->
  Machine.Machine_model.t ->
  string ->
  Machine.Perf.report * Tune.stats option

val time_schedule :
  ?pm:Pass.manager ->
  schedule ->
  Machine.Machine_model.t ->
  string ->
  Machine.Perf.report

val time :
  ?pm:Pass.manager ->
  config ->
  Machine.Machine_model.t ->
  string ->
  Machine.Perf.report

(** [gflops config machine src ~flops] *)
val gflops :
  config -> Machine.Machine_model.t -> string -> flops:float -> float

(** {2 Differential execution} *)

(** [check_schedule_semantics schedule src] — differential execution
    check: run the untransformed kernel and the schedule's full pipeline
    output on identical random inputs through the interpreter and
    compare every buffer. The CLI's [--verify-exec] and the test suite
    use this to pin each pipeline to real execution semantics (not just
    the verifier's structural invariants). *)
val check_schedule_semantics :
  ?seed:int ->
  ?eps:float ->
  ?engine:Interp.Eval.engine ->
  schedule ->
  string ->
  bool

val check_semantics :
  ?seed:int ->
  ?eps:float ->
  ?engine:Interp.Eval.engine ->
  config ->
  string ->
  bool

(** {2 Compile-time measurement (§5.2 overhead experiment)}

    Wall-clock seconds to run the full lowering pipeline over the given
    sources, without ([`Baseline]) and with ([`With_mlt]) the raising
    passes; [`Match_only] runs canonicalization plus the tactic matching
    (the idiom discovery the paper contrasts with IDL's constraint
    solving) — the same prefix [`With_mlt] executes, so the overhead
    comparison measures matching on identical IR. Tactic-set compilation
    happens at pass registration, outside the timed region, in every
    mode. With [pm] (fresh manager), per-pass statistics accumulate
    across all sources; read them with {!Pass.summarize}. *)
val compile_time :
  ?pm:Pass.manager ->
  [ `Baseline | `With_mlt | `Match_only ] ->
  string list ->
  float

(** The pass list a {!compile_time} mode runs per source. *)
val compile_passes :
  [ `Baseline | `With_mlt | `Match_only ] -> Pass.t list

(** {2 Figure 8: callsite detection} *)

(** [count_gemm_callsites ?delinearize src] — number of sites the GEMM
    tactic raises; with [delinearize] the optimistic delinearization pass
    (the paper's proposed fix for Darknet) runs first. *)
val count_gemm_callsites : ?delinearize:bool -> string -> int
