open Ir
module L = Linalg.Linalg_ops
module A = Affine.Affine_ops
module D = Support.Diag

let rec writes_buffer (op : Core.op) (v : Core.value) =
  match op.o_name with
  | "linalg.fill" -> Core.value_equal (Core.operand op 0) v
  | "affine.store" -> Core.value_equal (A.access_memref op) v
  | "memref.store" -> Core.value_equal (Core.operand op 1) v
  | "linalg.matmul" | "linalg.matvec" | "linalg.conv2d_nchw"
  | "linalg.contract" | "blas.sgemm" | "blas.sgemv" | "blas.sconv2d" ->
      Core.value_equal (Core.operand op (Core.num_operands op - 1)) v
  | "linalg.transpose" | "linalg.reshape" | "blas.stranspose"
  | "blas.sreshape_copy" ->
      Core.value_equal (Core.operand op 1) v
  | "affine.for" | "scf.for" ->
      (* A loop writes v if anything inside does. *)
      let found = ref false in
      Core.walk op (fun inner ->
          if inner != op && writes_buffer inner v then found := true);
      !found
  | _ -> false

let last_writer ~anchor (v : Core.value) =
  match anchor.Core.o_parent with
  | None -> None
  | Some block ->
      let rec scan best = function
        | [] -> best
        | o :: rest ->
            if Core.op_equal o anchor then best
            else scan (if writes_buffer o v then Some o else best) rest
      in
      scan None (Core.ops_of_block block)

type chain = {
  matmuls : Core.op list;
  inputs : Core.value list;
  output : Core.value;
  temp_fills : Core.op list;
}

let is_zero_fill (op : Core.op) =
  L.is_fill op && Attr.get_float (Core.attr op "value") = 0.

(* A buffer qualifies as a chain intermediate when it is a local alloc,
   zero-filled, and used exactly by {fill, producer, consumer}. *)
let qualifying_temp func (v : Core.value) ~producer ~consumer =
  match Core.defining_op v with
  | Some alloc when Std_dialect.Memref_ops.is_alloc alloc ->
      let users = List.map fst (Core.uses func v) in
      let fills = List.filter is_zero_fill users in
      (match fills with
      | [ fill ] ->
          let ok =
            List.length users = 3
            && List.exists (Core.op_equal producer) users
            && List.exists (Core.op_equal consumer) users
            && (* the fill must precede the producer *)
            match last_writer ~anchor:producer v with
            | Some w -> Core.op_equal w fill
            | None -> false
          in
          if ok then Some fill else None
      | _ -> None)
  | _ -> None

let detect func =
  let block = Core.func_entry func in
  let matmuls = List.filter L.is_matmul (Core.ops_of_block block) in
  let consumed = Hashtbl.create 8 in
  (* producer matmul id -> (consumer, fill) when linkable *)
  let links = Hashtbl.create 8 in
  List.iter
    (fun consumer ->
      let in1 = Core.operand consumer 0 in
      match last_writer ~anchor:consumer in1 with
      | Some producer when L.is_matmul producer ->
          (match
             qualifying_temp func in1 ~producer ~consumer
           with
          | Some fill ->
              Hashtbl.replace links producer.Core.o_id (consumer, fill);
              Hashtbl.replace consumed consumer.Core.o_id ()
          | None -> ())
      | _ -> ())
    matmuls;
  (* Chain heads: matmuls that are not consumers of a link. *)
  List.filter_map
    (fun head ->
      if Hashtbl.mem consumed head.Core.o_id then None
      else begin
        let rec follow acc fills m =
          match Hashtbl.find_opt links m.Core.o_id with
          | Some (consumer, fill) -> follow (consumer :: acc) (fill :: fills) consumer
          | None -> (List.rev acc, List.rev fills)
        in
        let rest, fills = follow [] [] head in
        let chain_matmuls = head :: rest in
        if List.length chain_matmuls < 2 then None
        else
          let inputs =
            Core.operand head 0
            :: List.map (fun m -> Core.operand m 1) chain_matmuls
          in
          let last = List.nth chain_matmuls (List.length chain_matmuls - 1) in
          Some
            {
              matmuls = chain_matmuls;
              inputs;
              output = Core.operand last 2;
              temp_fills = fills;
            }
      end)
    matmuls

let dims_of_chain chain =
  let shape v =
    match Typ.static_shape v.Core.v_typ with
    | Some [ a; b ] -> (a, b)
    | _ -> D.errorf "chain: inputs must be static rank-2 memrefs"
  in
  let n = List.length chain.inputs in
  let dims = Array.make (n + 1) 0 in
  List.iteri
    (fun i v ->
      let r, c = shape v in
      if i = 0 then dims.(0) <- r
      else if dims.(i) <> r then D.errorf "chain: inconsistent dimensions";
      dims.(i + 1) <- c)
    chain.inputs;
  dims

let rewrite_chain func chain =
  let dims = dims_of_chain chain in
  let optimal_tree, opt_cost = Matrix_chain.optimal dims in
  let _, cur_cost = Matrix_chain.left_assoc dims in
  if opt_cost >= cur_cost then false
  else begin
    (* Insert before the last matmul of the chain: ops between the chain's
       members (e.g. the zero-fill of the final output) keep preceding the
       replacement that writes the output. *)
    let last = List.nth chain.matmuls (List.length chain.matmuls - 1) in
    let b = Builder.before last in
    let inputs = Array.of_list chain.inputs in
    let rec emit ~is_root tree =
      match tree with
      | Matrix_chain.Leaf i -> inputs.(i)
      | Matrix_chain.Node (l, r) ->
          let lv = emit ~is_root:false l in
          let rv = emit ~is_root:false r in
          let target =
            if is_root then chain.output
            else begin
              let m, _ = Matrix_chain.shape dims l in
              let _, n = Matrix_chain.shape dims r in
              let t =
                Std_dialect.Memref_ops.alloc b ~hint:"t"
                  (Typ.memref [ m; n ] Typ.F32)
              in
              ignore (L.fill b ~value:0. t);
              t
            end
          in
          ignore (L.matmul b lv rv target);
          target
    in
    ignore (emit ~is_root:true optimal_tree);
    List.iter Core.erase_op chain.matmuls;
    List.iter Core.erase_op chain.temp_fills;
    ignore (Transforms.Dce.run func);
    true
  end

(* Chain reordering as a rewrite pattern rooted at the chain's head
   matmul. Chains are re-detected at each attempt: erasures invalidate
   stored chains, so nothing may be cached across rewrites. Terminates
   because [rewrite_chain] refuses chains that are already optimally
   associated. *)
let pattern () =
  Rewriter.pattern ~name:"reorder-matmul-chain"
    ~roots:(Rewriter.Roots [ "linalg.matmul" ])
    ~generated_ops:[ "linalg.matmul"; "linalg.fill"; "memref.alloc" ]
    (fun _ctx op ->
      if not (L.is_matmul op) then false
      else
        let rec enclosing_func o =
          match Core.parent_op o with
          | Some p -> if Core.is_func p then Some p else enclosing_func p
          | None -> None
        in
        match enclosing_func op with
        | None -> false
        | Some func -> (
            match
              List.find_opt
                (fun c -> Core.op_equal (List.hd c.matmuls) op)
                (detect func)
            with
            | Some chain -> rewrite_chain func chain
            | None -> false))

let frozen = lazy (Rewriter.freeze [ pattern () ])

let reorder func = Rewriter.apply_greedily func (Lazy.force frozen)

let pass = Pass.make ~name:"reorder-matmul-chains" (fun root ->
    Core.walk root (fun op -> if Core.is_func op then ignore (reorder op)))
