open Ir
module T = Transforms
module M = Machine

type config =
  | Clang_O3
  | Pluto_default
  | Pluto_best
  | Mlt_linalg
  | Mlt_blas
  | Mlt_affine_blis

let config_name = function
  | Clang_O3 -> "clang-O3"
  | Pluto_default -> "pluto-default"
  | Pluto_best -> "pluto-best"
  | Mlt_linalg -> "mlt-linalg"
  | Mlt_blas -> "mlt-blas"
  | Mlt_affine_blis -> "mlt-affine-blis"

let all_figure9_configs =
  [ Clang_O3; Pluto_default; Pluto_best; Mlt_linalg; Mlt_blas ]

(* The op-def registry is write-once-before-parallelism (see
   Ir.Dialect): multi-domain drivers call this on the spawning domain so
   worker domains only ever read it. *)
let register_dialects () =
  Std_dialect.Arith.register ();
  Std_dialect.Memref_ops.register ();
  Std_dialect.Scf.register ();
  Affine.Affine_ops.register ();
  Linalg.Linalg_ops.register ();
  Blas.Blas_ops.register ()

let sole_func m =
  match List.filter Core.is_func (Core.ops_of_block (Core.module_block m)) with
  | [ f ] -> f
  | fs ->
      Support.Diag.errorf "pipeline: expected one kernel, found %d"
        (List.length fs)

let translate src = Met.Emit_affine.translate src

(* The Linalg default path primarily performs tiling (§5.2, footnote 2). *)
let linalg_tile_size = 32

let passes_of_config config =
  match config with
  | Clang_O3 -> []
  | Pluto_default -> [ T.Pluto.pass T.Pluto.default_config ]
  | Pluto_best ->
      (* Resolved at timing (needs the machine model); structural prepare
         keeps the default. *)
      [ T.Pluto.pass T.Pluto.default_config ]
  | Mlt_linalg ->
      [
        T.Canonicalize.pass;
        Tactics.raise_to_linalg_pass ();
        T.Lower_linalg.tiled_pass ~size:linalg_tile_size;
      ]
  | Mlt_blas ->
      [
        T.Canonicalize.pass;
        Tactics.raise_to_linalg_pass ();
        Raise_chain.pass;
        To_blas.pass;
        (* Leftover fills have no library call; lower them to loops. *)
        T.Lower_linalg.pass;
      ]
  | Mlt_affine_blis ->
      [ T.Canonicalize.pass; Tactics.raise_to_affine_matmul_pass () ]

(* Bump whenever pipeline or pattern-set *behavior* changes in a way the
   pass list below cannot express (a tactic's rewrite changes, a tile
   size moves, the printer's output format shifts): the version is part
   of every compilation-cache key, so stale artifacts from the previous
   behavior can never be served (docs/CACHE.md). *)
let cache_version = "mlt-pipeline-v1"

let cache_identity config =
  (* The interner version participates too: hash-consing canonicalizes the
     in-memory representation (and a future revision could change printed
     canonical forms), so cached artifacts must never alias across
     interning disciplines (ISSUE 8 / docs/PERF.md). *)
  Printf.sprintf "%s+%s:%s[%s]" cache_version Support.Intern.version
    (config_name config)
    (String.concat ";"
       (List.map (fun (p : Pass.t) -> p.Pass.name) (passes_of_config config)))

let prepare_module ?pm config m =
  let f = sole_func m in
  let mgr = match pm with Some pm -> pm | None -> Pass.create_manager () in
  Pass.add_all mgr (passes_of_config config);
  Pass.run mgr f;
  Verifier.verify m;
  m

let prepare ?pm config src = prepare_module ?pm config (translate src)

let max_trip_count f =
  List.fold_left
    (fun acc loop ->
      match Affine.Affine_ops.for_trip_count loop with
      | Some t -> max acc t
      | None -> acc)
    1
    (Affine.Loops.all_loops f)

let time ?pm config machine src =
  match config with
  | Pluto_best ->
      (* Score every sweep configuration on the machine model and keep
         the fastest — the model-driven stand-in for the paper's
         multi-day autotuning. *)
      let probe = translate src in
      let trips = max_trip_count (sole_func probe) in
      let candidates = T.Pluto.sweep_configs ~max_trip:trips in
      let best =
        List.fold_left
          (fun best cfg ->
            let m = translate src in
            let f = sole_func m in
            T.Pluto.apply cfg f;
            Verifier.verify m;
            let report = M.Perf.time_func machine f in
            match best with
            | Some (_, b) when b.M.Perf.seconds <= report.M.Perf.seconds ->
                best
            | _ -> Some (cfg, report))
          None candidates
      in
      (match best with
      | Some (cfg, report) ->
          (* The sweep itself runs uninstrumented; replay the winning
             configuration through the manager so the recorded stats
             describe the pipeline [time] effectively selected. *)
          (match pm with
          | Some mgr ->
              let m = translate src in
              Pass.add mgr (T.Pluto.pass cfg);
              Pass.run mgr (sole_func m)
          | None -> ());
          report
      | None -> Support.Diag.errorf "pipeline: empty pluto sweep")
  | _ ->
      let m = prepare ?pm config src in
      M.Perf.time_func machine (sole_func m)

let gflops config machine src ~flops =
  let report = time config machine src in
  M.Perf.gflops ~flops report

let check_semantics ?(seed = 0) ?eps ?engine config src =
  let reference = translate src in
  let transformed = prepare config src in
  let name = Core.func_name (sole_func reference) in
  Interp.Eval.equivalent ?eps ?engine reference transformed name ~seed

let compile_passes mode =
  match mode with
  | `Match_only ->
      (* Canonicalize first so matching is measured on the same IR the
         [`With_mlt] raising pass sees. *)
      [ T.Canonicalize.pass; Tactics.raise_to_linalg_pass () ]
  | `Baseline -> [ T.Lower_affine.pass ]
  | `With_mlt ->
      [
        T.Canonicalize.pass;
        Tactics.raise_to_linalg_pass ();
        T.Lower_linalg.pass;
        (* Common progressive lowering to the SCF level. *)
        T.Lower_affine.pass;
      ]

let compile_time ?pm mode sources =
  let mgr = match pm with Some pm -> pm | None -> Pass.create_manager () in
  Pass.add_all mgr (compile_passes mode);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun src ->
      let m = translate src in
      Pass.run mgr (sole_func m);
      match mode with
      | `Match_only -> ()
      | `Baseline | `With_mlt -> Verifier.verify m)
    sources;
  Unix.gettimeofday () -. t0

let count_gemm_callsites ?(delinearize = false) src =
  let m = translate src in
  if delinearize then
    Core.walk m (fun op ->
        if Core.is_func op then ignore (T.Delinearize.run op));
  let pats = Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl in
  Rewriter.apply_greedily m (Rewriter.freeze pats)
