open Ir
module T = Transforms
module M = Machine
module Script = Transform.Script

type config =
  | Clang_O3
  | Pluto_default
  | Pluto_best
  | Mlt_linalg
  | Mlt_blas
  | Mlt_affine_blis

let config_name = function
  | Clang_O3 -> "clang-O3"
  | Pluto_default -> "pluto-default"
  | Pluto_best -> "pluto-best"
  | Mlt_linalg -> "mlt-linalg"
  | Mlt_blas -> "mlt-blas"
  | Mlt_affine_blis -> "mlt-affine-blis"

let all_configs =
  [ Clang_O3; Pluto_default; Pluto_best; Mlt_linalg; Mlt_blas; Mlt_affine_blis ]

let config_of_name name =
  List.find_opt (fun c -> String.equal (config_name c) name) all_configs

let all_figure9_configs =
  [ Clang_O3; Pluto_default; Pluto_best; Mlt_linalg; Mlt_blas ]

(* The raising steps only this library can implement: the tactic sets
   compile TDL and freeze pattern sets at script-compilation time, so
   interpreting [transform.raise {set = "linalg"}] matches the legacy
   [Tactics.raise_to_linalg_pass ()] exactly. Registered through the
   same write-once-before-parallelism discipline as dialects. *)
let steps_registered = Atomic.make false

let register_transform_steps () =
  Dialect.register_once steps_registered (fun () ->
      Transform.Ops.register ();
      Transform.Interp.register_step "transform.raise" (fun t_op ->
          match Attr.get_str (Core.attr t_op "set") with
          | "linalg" ->
              let frozen = Rewriter.freeze (Tactics.all ()) in
              fun payload -> Rewriter.apply_greedily payload frozen
          | "affine-matmul" ->
              let frozen =
                Rewriter.freeze
                  (Tdl.Backend.compile_tdl
                     ~target:Tdl.Backend.To_affine_matmul
                     Tdl.Frontend.gemm_tdl)
              in
              fun payload -> Rewriter.apply_greedily payload frozen
          | "affine" -> T.Raise_scf.run
          | other ->
              Support.Diag.errorf ~loc:t_op.Core.o_loc
                "transform.raise: unknown set %S" other);
      Transform.Interp.register_step "transform.reorder_chains"
        (fun _t_op payload -> Raise_chain.reorder payload);
      Transform.Interp.register_step "transform.to_blas" (fun _t_op payload ->
          To_blas.run payload))

(* The op-def registry is write-once-before-parallelism (see
   Ir.Dialect): multi-domain drivers call this on the spawning domain so
   worker domains only ever read it. *)
let register_dialects () =
  Std_dialect.Arith.register ();
  Std_dialect.Memref_ops.register ();
  Std_dialect.Scf.register ();
  Affine.Affine_ops.register ();
  Linalg.Linalg_ops.register ();
  Blas.Blas_ops.register ();
  Transform.Ops.register ();
  register_transform_steps ()

let sole_func m =
  match List.filter Core.is_func (Core.ops_of_block (Core.module_block m)) with
  | [ f ] -> f
  | fs ->
      Support.Diag.errorf "pipeline: expected one kernel, found %d"
        (List.length fs)

let translate src = Met.Emit_affine.translate src

(* The Linalg default path primarily performs tiling (§5.2, footnote 2). *)
let linalg_tile_size = 32

(* ---- configs as transform scripts ---------------------------------------- *)

(* Each variant elaborates to a script whose interpretation reproduces
   the legacy hard-coded pass list byte-for-byte (asserted in
   test_transform_dialect). *)
let steps_of_config = function
  | Clang_O3 -> []
  | Pluto_default | Pluto_best ->
      (* Pluto_best is resolved at timing (needs the machine model);
         structural prepare keeps the default. *)
      Script.of_pluto T.Pluto.default_config
  | Mlt_linalg ->
      [
        Script.Canonicalize false;
        Script.Raise "linalg";
        Script.Lower_linalg (Some linalg_tile_size);
      ]
  | Mlt_blas ->
      [
        Script.Canonicalize false;
        Script.Raise "linalg";
        Script.Reorder_chains;
        Script.To_blas;
        (* Leftover fills have no library call; lower them to loops. *)
        Script.Lower_linalg None;
      ]
  | Mlt_affine_blis ->
      [ Script.Canonicalize false; Script.Raise "affine-matmul" ]

let script_of_config config = Script.of_steps (steps_of_config config)

(* ---- schedules ------------------------------------------------------------ *)

type schedule =
  | Config of config
  | Custom of { name : string; steps : Script.step list }

let schedule_of_config config = Config config

let schedule_of_steps ?name steps =
  let name =
    match name with
    | Some n -> n
    | None ->
        "script:"
        ^ String.sub
            (Support.Digest.string (Script.print (Script.of_steps steps)))
            0 12
  in
  Custom { name; steps }

let schedule_of_script ?name m = schedule_of_steps ?name (Script.steps_of m)

let schedule_of_script_text ?name ?file src =
  schedule_of_steps ?name (Script.parse_steps ?file src)

let schedule_name = function
  | Config c -> config_name c
  | Custom { name; _ } -> name

let schedule_steps = function
  | Config c -> steps_of_config c
  | Custom { steps; _ } -> steps

let script_of_schedule s = Script.of_steps (schedule_steps s)

let passes_of_schedule s =
  register_transform_steps ();
  Transform.Interp.passes_of_steps (schedule_steps s)

let passes_of_config config = passes_of_schedule (Config config)

(* Bump whenever pipeline or pattern-set *behavior* changes in a way the
   printed script below cannot express (a tactic's rewrite changes, the
   printer's output format shifts): the version is part of every
   compilation-cache key, so stale artifacts from the previous behavior
   can never be served (docs/CACHE.md). *)
let cache_version = "mlt-pipeline-v2"

let schedule_cache_identity s =
  (* The printed transform script carries every transformation parameter
     (tile sizes, BLIS mc/nc/kc, fusion heuristic, ...), so two
     schedules with equal pass names but different parameters can never
     alias in the cache — the aliasing bug the pass-name identity of
     v1 had. The interner version participates too: hash-consing
     canonicalizes the in-memory representation (and a future revision
     could change printed canonical forms), so cached artifacts must
     never alias across interning disciplines (docs/PERF.md). *)
  Printf.sprintf "%s+%s:%s" cache_version Support.Intern.version
    (Script.print (script_of_schedule s))

let cache_identity config = schedule_cache_identity (Config config)

(* ---- preparation ---------------------------------------------------------- *)

let prepare_schedule_module ?pm schedule m =
  let f = sole_func m in
  let mgr = match pm with Some pm -> pm | None -> Pass.create_manager () in
  Pass.add_all mgr (passes_of_schedule schedule);
  Pass.run mgr f;
  Verifier.verify m;
  m

let prepare_schedule ?pm schedule src =
  prepare_schedule_module ?pm schedule (translate src)

let prepare_module ?pm config m =
  prepare_schedule_module ?pm (Config config) m

let prepare ?pm config src = prepare_schedule ?pm (Config config) src

(* ---- simulated timing ----------------------------------------------------- *)

(* Score every Pluto sweep configuration on the machine model and keep
   the fastest — the model-driven stand-in for the paper's multi-day
   autotuning, now running through the general tuner with the sweep
   sharded across a domain pool. The winner (first strict minimum in
   sweep order) and its IR are byte-identical to the legacy sequential
   sweep's (asserted in test_tune). *)
let tuned ?pm machine src =
  register_dialects ();
  let probe = translate src in
  let trips = Tune.max_trip_count (sole_func probe) in
  let space = Tune.pluto_space ~max_trip:trips in
  let outcome =
    Tune.search
      ~domains:(Domain.recommended_domain_count ())
      ~machine
      ~translate:(fun () -> translate src)
      space
  in
  (* The sweep runs outside any manager; replay the winning script
     through the caller's manager so the recorded stats describe the
     schedule [time] effectively selected. *)
  (match pm with
  | Some mgr ->
      let m = translate src in
      Pass.add_all mgr (Transform.Interp.passes_of_steps outcome.Tune.o_best.Tune.c_steps);
      Pass.run mgr (sole_func m)
  | None -> ());
  (outcome.Tune.o_best_report, Some outcome.Tune.o_stats)

let time_schedule_ext ?pm schedule machine src =
  match schedule with
  | Config Pluto_best -> tuned ?pm machine src
  | _ ->
      let m = prepare_schedule ?pm schedule src in
      (M.Perf.time_func machine (sole_func m), None)

let time_schedule ?pm schedule machine src =
  fst (time_schedule_ext ?pm schedule machine src)

let time ?pm config machine src =
  time_schedule ?pm (Config config) machine src

let gflops config machine src ~flops =
  let report = time config machine src in
  M.Perf.gflops ~flops report

(* ---- differential execution ----------------------------------------------- *)

let check_schedule_semantics ?(seed = 0) ?eps ?engine schedule src =
  let reference = translate src in
  let transformed = prepare_schedule schedule src in
  let name = Core.func_name (sole_func reference) in
  Interp.Eval.equivalent ?eps ?engine reference transformed name ~seed

let check_semantics ?seed ?eps ?engine config src =
  check_schedule_semantics ?seed ?eps ?engine (Config config) src

(* ---- compile-time measurement (§5.2) -------------------------------------- *)

let compile_passes mode =
  match mode with
  | `Match_only ->
      (* Canonicalize first so matching is measured on the same IR the
         [`With_mlt] raising pass sees. *)
      [ T.Canonicalize.pass; Tactics.raise_to_linalg_pass () ]
  | `Baseline -> [ T.Lower_affine.pass ]
  | `With_mlt ->
      [
        T.Canonicalize.pass;
        Tactics.raise_to_linalg_pass ();
        T.Lower_linalg.pass;
        (* Common progressive lowering to the SCF level. *)
        T.Lower_affine.pass;
      ]

let compile_time ?pm mode sources =
  let mgr = match pm with Some pm -> pm | None -> Pass.create_manager () in
  Pass.add_all mgr (compile_passes mode);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun src ->
      let m = translate src in
      Pass.run mgr (sole_func m);
      match mode with
      | `Match_only -> ()
      | `Baseline | `With_mlt -> Verifier.verify m)
    sources;
  Unix.gettimeofday () -. t0

let count_gemm_callsites ?(delinearize = false) src =
  let m = translate src in
  if delinearize then
    Core.walk m (fun op ->
        if Core.is_func op then ignore (T.Delinearize.run op));
  let pats = Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl in
  Rewriter.apply_greedily m (Rewriter.freeze pats)
