(** The standard tactic set shipped with Multi-Level Tactics, plus the
    built-in fill-raising pattern.

    The paper's tactics cover GEMM (Listing 8), matrix-vector products in
    both orientations, 2-d convolution, and TTGT for tensor contractions;
    the benchmark contraction tactics are generated from their index
    specs through the full TDL → TDS → backend pipeline. Initialization
    raising ([C(i,j) = const] → [linalg.fill]) is an infrastructure
    addition of this reproduction needed by the matrix-chain rewriter. *)

open Ir

(** TDL source of the standard tactics (gemm, matvec, matvec-transposed,
    conv2d). *)
val standard_tdl : string

(** Compiled standard tactics targeting Linalg. *)
val standard : unit -> Rewriter.pattern list

(** Tactics for the seven paper contractions (TTGT), generated from
    {!Workloads.Contraction_spec.paper_benchmarks}. *)
val paper_contractions : unit -> Rewriter.pattern list

(** [contraction spec] — TTGT tactic for one contraction spec. *)
val contraction : Workloads.Contraction_spec.t -> Rewriter.pattern

(** Raise full-array constant-initialization nests to [linalg.fill]. *)
val fill_pattern : unit -> Rewriter.pattern

(** Everything: standard + paper contractions + fill. *)
val all : unit -> Rewriter.pattern list

(** [raise_to_linalg root] applies {!all} greedily; returns the number of
    raised sites. *)
val raise_to_linalg : Core.op -> int

(** [raise_to_affine_matmul root] — the §5.1 path: GEMM loop nests become
    [affine.matmul] (flag [-raise-affine-to-affine]). *)
val raise_to_affine_matmul : Core.op -> int

(** {!raise_to_linalg} as a pass, named ["raise-affine-to-linalg"];
    [patterns] substitutes a user tactic set (e.g. compiled from
    [--tactics]) for {!all}. The pattern set is compiled once, at pass
    construction. *)
val raise_to_linalg_pass : ?patterns:Rewriter.pattern list -> unit -> Pass.t

(** {!raise_to_affine_matmul} as a pass, named ["raise-affine-to-affine"]. *)
val raise_to_affine_matmul_pass : unit -> Pass.t
