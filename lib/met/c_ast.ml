type index =
  | I_var of string
  | I_const of int
  | I_add of index * index
  | I_sub of index * index
  | I_mul of index * index

type expr =
  | E_lit of float
  | E_ref of ref_
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr

and ref_ = { array : string; subscripts : index list }

type stmt =
  | S_for of {
      var : string;
      lb : int;
      ub : int;
      body : stmt list;
      loc : Support.Loc.t;
    }
  | S_assign of { lhs : ref_; rhs : expr; loc : Support.Loc.t }

type decl = { d_name : string; d_dims : int list }

type kernel = {
  k_name : string;
  k_params : decl list;
  k_locals : decl list;
  k_body : stmt list;
}

type program = kernel list

let rec expr_reads = function
  | E_lit _ -> []
  | E_ref r -> [ r ]
  | E_add (a, b) | E_sub (a, b) | E_mul (a, b) | E_div (a, b) ->
      expr_reads a @ expr_reads b

let rec stmt_accesses = function
  | S_assign { lhs; rhs; _ } -> ([ lhs ], expr_reads rhs)
  | S_for { body; _ } ->
      List.fold_left
        (fun (w, r) s ->
          let w', r' = stmt_accesses s in
          (w @ w', r @ r'))
        ([], []) body

let rec index_vars = function
  | I_var v -> [ v ]
  | I_const _ -> []
  | I_add (a, b) | I_sub (a, b) | I_mul (a, b) ->
      index_vars a @ index_vars b

let rec strip_locs_stmt = function
  | S_for f ->
      S_for
        {
          f with
          body = List.map strip_locs_stmt f.body;
          loc = Support.Loc.unknown;
        }
  | S_assign a -> S_assign { a with loc = Support.Loc.unknown }

let strip_locs k = { k with k_body = List.map strip_locs_stmt k.k_body }

let rec pp_index fmt = function
  | I_var v -> Format.fprintf fmt "%s" v
  | I_const c -> Format.fprintf fmt "%d" c
  | I_add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_index a pp_index b
  | I_sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_index a pp_index b
  | I_mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_index a pp_index b

let pp_ref fmt { array; subscripts } =
  Format.fprintf fmt "%s" array;
  List.iter (fun i -> Format.fprintf fmt "[%a]" pp_index i) subscripts

let rec pp_expr fmt = function
  | E_lit f -> Format.fprintf fmt "%g" f
  | E_ref r -> pp_ref fmt r
  | E_add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | E_sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | E_mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_expr a pp_expr b
  | E_div (a, b) -> Format.fprintf fmt "(%a / %a)" pp_expr a pp_expr b

let rec pp_stmt_in indent fmt stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | S_for { var; lb; ub; body; _ } ->
      Format.fprintf fmt "%sfor (int %s = %d; %s < %d; ++%s) {\n" pad var lb
        var ub var;
      List.iter (fun s -> pp_stmt_in (indent + 2) fmt s) body;
      Format.fprintf fmt "%s}\n" pad
  | S_assign { lhs; rhs; _ } ->
      Format.fprintf fmt "%s%a = %a;\n" pad pp_ref lhs pp_expr rhs

let pp_stmt fmt stmt = pp_stmt_in 0 fmt stmt

let pp_kernel fmt k =
  let pp_decl fmt d =
    Format.fprintf fmt "float %s" d.d_name;
    List.iter (fun n -> Format.fprintf fmt "[%d]" n) d.d_dims
  in
  Format.fprintf fmt "void %s(%a) {\n" k.k_name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       pp_decl)
    k.k_params;
  List.iter (fun d -> Format.fprintf fmt "  %a;\n" pp_decl d) k.k_locals;
  List.iter (fun s -> pp_stmt_in 2 fmt s) k.k_body;
  Format.fprintf fmt "}\n"
