open C_ast
module L = C_lexer
module D = Support.Diag

type state = { mutable toks : L.t list }

let peek st =
  match st.toks with [] -> assert false | t :: _ -> t

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  t

let expect st tok =
  let t = next st in
  if t.L.tok <> tok then
    D.errorf ~loc:t.L.loc "expected %s but found %s" (L.token_to_string tok)
      (L.token_to_string t.L.tok)

let expect_ident st =
  let t = next st in
  match t.L.tok with
  | L.Ident s -> (s, t.L.loc)
  | other ->
      D.errorf ~loc:t.L.loc "expected identifier, found %s"
        (L.token_to_string other)

let expect_int st =
  let t = next st in
  match t.L.tok with
  | L.Int i -> i
  | other ->
      D.errorf ~loc:t.L.loc "expected integer literal, found %s"
        (L.token_to_string other)

(* index := term (("+"|"-") term)* ; term := factor ("*" factor)*
   factor := int | ident | "(" index ")" *)
let rec parse_index st =
  let lhs = parse_index_term st in
  let rec loop lhs =
    match (peek st).L.tok with
    | L.Plus ->
        ignore (next st);
        loop (I_add (lhs, parse_index_term st))
    | L.Minus ->
        ignore (next st);
        loop (I_sub (lhs, parse_index_term st))
    | _ -> lhs
  in
  loop lhs

and parse_index_term st =
  let lhs = parse_index_factor st in
  let rec loop lhs =
    match (peek st).L.tok with
    | L.Star ->
        ignore (next st);
        loop (I_mul (lhs, parse_index_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_index_factor st =
  let t = next st in
  match t.L.tok with
  | L.Int i -> I_const i
  | L.Minus -> (
      match (next st).L.tok with
      | L.Int i -> I_const (-i)
      | other ->
          D.errorf ~loc:t.L.loc "expected integer after '-', found %s"
            (L.token_to_string other))
  | L.Ident v -> I_var v
  | L.Lparen ->
      let e = parse_index st in
      expect st L.Rparen;
      e
  | other ->
      D.errorf ~loc:t.L.loc "expected index expression, found %s"
        (L.token_to_string other)

let parse_ref st =
  let name, _ = expect_ident st in
  let rec subs acc =
    match (peek st).L.tok with
    | L.Lbracket ->
        ignore (next st);
        let i = parse_index st in
        expect st L.Rbracket;
        subs (i :: acc)
    | _ -> List.rev acc
  in
  { array = name; subscripts = subs [] }

(* expr := term (("+"|"-") term)* ; term := factor (("*"|"/") factor)* *)
let rec parse_expr st =
  let lhs = parse_term st in
  let rec loop lhs =
    match (peek st).L.tok with
    | L.Plus ->
        ignore (next st);
        loop (E_add (lhs, parse_term st))
    | L.Minus ->
        ignore (next st);
        loop (E_sub (lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop lhs =
    match (peek st).L.tok with
    | L.Star ->
        ignore (next st);
        loop (E_mul (lhs, parse_factor st))
    | L.Slash ->
        ignore (next st);
        loop (E_div (lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st =
  let t = peek st in
  match t.L.tok with
  | L.Float f ->
      ignore (next st);
      E_lit f
  | L.Int i ->
      ignore (next st);
      E_lit (float_of_int i)
  | L.Minus ->
      ignore (next st);
      E_sub (E_lit 0., parse_factor st)
  | L.Ident _ -> E_ref (parse_ref st)
  | L.Lparen ->
      ignore (next st);
      let e = parse_expr st in
      expect st L.Rparen;
      e
  | other ->
      D.errorf ~loc:t.L.loc "expected expression, found %s"
        (L.token_to_string other)

let rec parse_stmt st =
  let t = peek st in
  match t.L.tok with
  | L.Kw_for -> parse_for st
  | L.Ident _ ->
      let loc = t.L.loc in
      let lhs = parse_ref st in
      let op = next st in
      let rhs = parse_expr st in
      expect st L.Semi;
      let rhs =
        match op.L.tok with
        | L.Assign -> rhs
        | L.Plus_assign -> E_add (E_ref lhs, rhs)
        | L.Minus_assign -> E_sub (E_ref lhs, rhs)
        | L.Star_assign -> E_mul (E_ref lhs, rhs)
        | other ->
            D.errorf ~loc:op.L.loc "expected assignment operator, found %s"
              (L.token_to_string other)
      in
      S_assign { lhs; rhs; loc }
  | other ->
      D.errorf ~loc:t.L.loc "expected statement, found %s"
        (L.token_to_string other)

and parse_for st =
  let for_loc = (peek st).L.loc in
  expect st L.Kw_for;
  expect st L.Lparen;
  expect st L.Kw_int;
  let var, loc = expect_ident st in
  expect st L.Assign;
  let lb = expect_int st in
  expect st L.Semi;
  let var2, _ = expect_ident st in
  if not (String.equal var var2) then
    D.errorf ~loc "loop condition tests %S, expected %S" var2 var;
  (match (next st).L.tok with
  | L.Lt -> ()
  | other ->
      D.errorf ~loc "only '<' loop conditions are supported, found %s"
        (L.token_to_string other));
  let ub = expect_int st in
  expect st L.Semi;
  (* ++i | i++ *)
  (match (next st).L.tok with
  | L.Plus_plus ->
      let var3, _ = expect_ident st in
      if not (String.equal var var3) then
        D.errorf ~loc "loop increments %S, expected %S" var3 var
  | L.Ident var3 when String.equal var var3 -> expect st L.Plus_plus
  | other ->
      D.errorf ~loc "expected unit-stride increment, found %s"
        (L.token_to_string other));
  expect st L.Rparen;
  let body =
    match (peek st).L.tok with
    | L.Lbrace ->
        ignore (next st);
        let rec stmts acc =
          match (peek st).L.tok with
          | L.Rbrace ->
              ignore (next st);
              List.rev acc
          | _ -> stmts (parse_stmt st :: acc)
        in
        stmts []
    | _ -> [ parse_stmt st ]
  in
  S_for { var; lb; ub; body; loc = for_loc }

let parse_decl st =
  expect st L.Kw_float;
  let name, _ = expect_ident st in
  let rec dims acc =
    match (peek st).L.tok with
    | L.Lbracket ->
        ignore (next st);
        let n = expect_int st in
        expect st L.Rbracket;
        dims (n :: acc)
    | _ -> List.rev acc
  in
  { d_name = name; d_dims = dims [] }

let parse_kernel_at st =
  expect st L.Kw_void;
  let name, _ = expect_ident st in
  expect st L.Lparen;
  let rec params acc =
    match (peek st).L.tok with
    | L.Rparen ->
        ignore (next st);
        List.rev acc
    | L.Comma ->
        ignore (next st);
        params acc
    | _ -> params (parse_decl st :: acc)
  in
  let params = params [] in
  expect st L.Lbrace;
  let rec locals acc =
    match (peek st).L.tok with
    | L.Kw_float ->
        let d = parse_decl st in
        expect st L.Semi;
        locals (d :: acc)
    | _ -> List.rev acc
  in
  let locals = locals [] in
  let rec stmts acc =
    match (peek st).L.tok with
    | L.Rbrace ->
        ignore (next st);
        List.rev acc
    | _ -> stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  { k_name = name; k_params = params; k_locals = locals; k_body = body }

let parse_program ?(file = "<string>") src =
  let st = { toks = L.tokenize ~file src } in
  let rec kernels acc =
    match (peek st).L.tok with
    | L.Eof -> List.rev acc
    | _ -> kernels (parse_kernel_at st :: acc)
  in
  kernels []

let parse_kernel ?file src =
  match parse_program ?file src with
  | [ k ] -> k
  | ks -> D.errorf "expected exactly one kernel, found %d" (List.length ks)
