open C_ast

(* All subscript lists used for array [name] anywhere in [s]. *)
let subscripts_of name s =
  let w, r = stmt_accesses s in
  List.filter_map
    (fun (rf : ref_) ->
      if String.equal rf.array name then Some rf.subscripts else None)
    (w @ r)

let writes_of s = fst (stmt_accesses s) |> List.map (fun r -> r.array)
let accesses_of s =
  let w, r = stmt_accesses s in
  List.map (fun (x : ref_) -> x.array) (w @ r)

let separable a b =
  let shared_written =
    List.sort_uniq String.compare (writes_of a @ writes_of b)
    |> List.filter (fun x ->
           List.mem x (accesses_of a) && List.mem x (accesses_of b))
  in
  List.for_all
    (fun x ->
      match subscripts_of x a @ subscripts_of x b with
      | [] -> true
      | first :: rest -> List.for_all (fun s -> s = first) rest)
    shared_written

(* Union-find over statement indices. *)
let group stmts =
  let n = Array.length stmts in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j = parent.(find i) <- find j in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (separable stmts.(i) stmts.(j)) then union i j
    done
  done;
  (* Components ordered by first member. *)
  let roots = ref [] in
  let members = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let r = find i in
    if not (Hashtbl.mem members r) then roots := r :: !roots;
    Hashtbl.replace members r
      (stmts.(i) :: (try Hashtbl.find members r with Not_found -> []))
  done;
  List.rev_map (fun r -> List.rev (Hashtbl.find members r)) !roots

let rec stmt = function
  | S_assign _ as s -> [ s ]
  | S_for { var; lb; ub; body; loc } ->
      let body = List.concat_map stmt body in
      group (Array.of_list body)
      |> List.map (fun g -> S_for { var; lb; ub; body = g; loc })

let kernel k = { k with k_body = List.concat_map stmt k.k_body }
