open C_ast
open Ir
module D = Support.Diag
module A = Affine.Affine_ops
module Arith = Std_dialect.Arith

type env = {
  arrays : (string, Core.value) Hashtbl.t;
  loop_vars : (string, Core.value) Hashtbl.t;
}

let decl_type (d : decl) = Typ.memref d.d_dims Typ.F32

(* Convert subscripts to an affine map over the loop variables they
   mention (in order of first appearance) plus the iv operands. *)
let ref_access env (r : ref_) =
  let vars = List.concat_map index_vars r.subscripts in
  let ordered =
    List.fold_left
      (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
      [] vars
  in
  let dim_of v =
    match List.mapi (fun i x -> (x, i)) ordered |> List.assoc_opt v with
    | Some i -> i
    | None -> assert false
  in
  let rec conv = function
    | I_var v -> Affine_expr.dim (dim_of v)
    | I_const c -> Affine_expr.const c
    | I_add (a, b) -> Affine_expr.Add (conv a, conv b)
    | I_sub (a, b) -> Affine_expr.(Add (conv a, Mul (Const (-1), conv b)))
    | I_mul (a, b) -> Affine_expr.Mul (conv a, conv b)
  in
  let exprs =
    List.map
      (fun idx ->
        let e = conv idx in
        match Affine_expr.linearize e with
        | Some _ -> Affine_expr.simplify e
        | None ->
            D.errorf "non-affine subscript in access to %S: %s" r.array
              (Affine_expr.to_string e))
      r.subscripts
  in
  let map = Affine_map.make ~n_dims:(List.length ordered) exprs in
  let operands =
    List.map
      (fun v ->
        match Hashtbl.find_opt env.loop_vars v with
        | Some iv -> iv
        | None -> D.errorf "subscript variable %S is not a loop variable" v)
      ordered
  in
  (map, operands)

let lookup_array env name =
  match Hashtbl.find_opt env.arrays name with
  | Some v -> v
  | None -> D.errorf "array %S is not declared" name

let check_rank env (r : ref_) =
  let v = lookup_array env r.array in
  let rank = Typ.memref_rank v.Core.v_typ in
  if rank <> List.length r.subscripts then
    D.errorf "access to %S has %d subscripts but the array has rank %d"
      r.array
      (List.length r.subscripts)
      rank

let rec emit_expr env b = function
  | E_lit f -> Arith.constant_float b f
  | E_ref r ->
      check_rank env r;
      A.load b (lookup_array env r.array) (ref_access env r)
  | E_add (x, y) -> emit_bin env b Arith.addf x y
  | E_sub (x, y) -> emit_bin env b Arith.subf x y
  | E_mul (x, y) -> emit_bin env b Arith.mulf x y
  | E_div (x, y) -> emit_bin env b Arith.divf x y

and emit_bin env b f x y =
  let xv = emit_expr env b x in
  let yv = emit_expr env b y in
  f b xv yv

(* Each statement's emission runs under [Core.with_loc], so every op a
   statement expands to — including ops built inside dialect helpers —
   carries that statement's C source location. *)
let rec emit_stmt env b = function
  | S_assign { lhs; rhs; loc } ->
      Core.with_loc loc @@ fun () ->
      (try check_rank env lhs
       with D.Error (_, msg) -> D.error ~loc msg);
      let value = emit_expr env b rhs in
      ignore (A.store b value (lookup_array env lhs.array) (ref_access env lhs))
  | S_for { var; lb; ub; body; loc } ->
      if Hashtbl.mem env.loop_vars var then
        D.errorf ~loc "loop variable %S shadows an enclosing loop" var;
      ignore
        (Core.with_loc loc @@ fun () ->
         A.for_const b ~hint:var ~lb ~ub (fun b iv ->
             Hashtbl.replace env.loop_vars var iv;
             List.iter (emit_stmt env b) body;
             Hashtbl.remove env.loop_vars var))

let kernel (k : C_ast.kernel) =
  List.iter
    (fun (d : decl) ->
      if List.exists (fun n -> n <= 0) d.d_dims then
        D.errorf "array %S has a non-positive dimension" d.d_name)
    (k.k_params @ k.k_locals);
  let f =
    Core.create_func ~name:k.k_name
      ~arg_types:(List.map decl_type k.k_params)
      ~arg_hints:(List.map (fun d -> d.d_name) k.k_params)
      ()
  in
  let env =
    { arrays = Hashtbl.create 16; loop_vars = Hashtbl.create 16 }
  in
  List.iter2
    (fun (d : decl) v ->
      if Hashtbl.mem env.arrays d.d_name then
        D.errorf "duplicate declaration of %S" d.d_name;
      Hashtbl.replace env.arrays d.d_name v)
    k.k_params (Core.func_args f);
  let b = Builder.at_end (Core.func_entry f) in
  List.iter
    (fun (d : decl) ->
      if Hashtbl.mem env.arrays d.d_name then
        D.errorf "duplicate declaration of %S" d.d_name;
      let v = Std_dialect.Memref_ops.alloc b ~hint:d.d_name (decl_type d) in
      Hashtbl.replace env.arrays d.d_name v)
    k.k_locals;
  List.iter (emit_stmt env b) k.k_body;
  ignore (Builder.build b "func.return");
  f

let program ?(distribute = true) ks =
  let ks = if distribute then List.map Distribute.kernel ks else ks in
  let m = Core.create_module () in
  List.iter (fun k -> Core.append_op (Core.module_block m) (kernel k)) ks;
  m

let translate ?distribute ?file src =
  let ks = C_parser.parse_program ?file src in
  let m = program ?distribute ks in
  Verifier.verify m;
  m
