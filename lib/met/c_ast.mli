(** AST for the polyhedral mini-C subset accepted by the MET substitute.

    The subset covers the paper's workloads: perfectly or imperfectly
    nested [for] loops with integer-literal bounds, assignments to array
    elements with affine subscripts (including linearized, Darknet-style
    subscripts such as [A[i*K+k]]), and float arithmetic over array reads
    and literals. Compound assignments are desugared by the parser. *)

(** Integer index expressions over loop variables. *)
type index =
  | I_var of string
  | I_const of int
  | I_add of index * index
  | I_sub of index * index
  | I_mul of index * index

(** Float-valued expressions. *)
type expr =
  | E_lit of float
  | E_ref of ref_
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr

(** An array element reference [A[e1][e2]...]; scalars are rank-0. *)
and ref_ = { array : string; subscripts : index list }

type stmt =
  | S_for of {
      var : string;
      lb : int;
      ub : int;
      body : stmt list;
      loc : Support.Loc.t;
    }  (** [for (int var = lb; var < ub; ++var) body] *)
  | S_assign of { lhs : ref_; rhs : expr; loc : Support.Loc.t }

type decl = { d_name : string; d_dims : int list }

type kernel = {
  k_name : string;
  k_params : decl list;
  k_locals : decl list;
  k_body : stmt list;
}

type program = kernel list

(** {2 Traversal helpers} *)

(** Arrays read (via [E_ref]) by an expression. *)
val expr_reads : expr -> ref_ list

(** [(writes, reads)] of a statement subtree, as references. *)
val stmt_accesses : stmt -> ref_ list * ref_ list

(** Loop variables referenced by an index expression. *)
val index_vars : index -> string list

(** Structural equality helper: reset every statement location to
    {!Support.Loc.unknown} (for AST comparisons in tests). *)
val strip_locs : kernel -> kernel

val pp_index : Format.formatter -> index -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_kernel : Format.formatter -> kernel -> unit
