(* Alias the sibling simulation-trace module before [open Ir]: [Ir] now
   exports its own [Trace] (the event-tracing layer), which would shadow
   ours. *)
module Sim_trace = Trace
open Ir
module D = Support.Diag
module M = Machine_model

type report = {
  seconds : float;
  loop_seconds : float;
  library_seconds : float;
  stats : Sim_trace.stats;
}

let shape2 (v : Core.value) =
  match Typ.static_shape v.Core.v_typ with
  | Some [ a; b ] -> (a, b)
  | _ -> D.errorf "perf: expected a rank-2 static memref"

let library_time model (op : Core.op) =
  let operand i = Core.operand op i in
  match op.o_name with
  | "blas.sgemm" ->
      let m, k = shape2 (operand 0) in
      let _, n = shape2 (operand 1) in
      Blas_model.gemm_seconds model ~m ~n ~k
  | "blas.sgemv" ->
      let m, n = shape2 (operand 0) in
      Blas_model.gemv_seconds model ~m ~n
  | "blas.stranspose" -> (
      match Typ.num_elements (operand 0).Core.v_typ with
      | Some e -> Blas_model.transpose_seconds model ~elems:e
      | None -> D.errorf "perf: dynamic transpose")
  | "blas.sreshape_copy" -> (
      match Typ.num_elements (operand 0).Core.v_typ with
      | Some e -> Blas_model.copy_seconds model ~elems:e
      | None -> D.errorf "perf: dynamic reshape")
  | "blas.sconv2d" -> (
      match
        ( Typ.static_shape (operand 0).Core.v_typ,
          Typ.static_shape (operand 1).Core.v_typ,
          Typ.static_shape (operand 2).Core.v_typ )
      with
      | Some [ n; c; _; _ ], Some [ f; _; kh; kw ], Some [ _; _; oh; ow ] ->
          Blas_model.conv2d_seconds model ~n ~c ~f ~oh ~ow ~kh ~kw
      | _ -> D.errorf "perf: bad conv shapes")
  | "affine.matmul" ->
      let m, k = shape2 (operand 0) in
      let _, n = shape2 (operand 1) in
      Blas_model.blis_codegen_gemm_seconds model ~m ~n ~k
  | _ -> D.errorf "perf: '%s' is not a library call" op.o_name

let is_library (op : Core.op) =
  Blas.Blas_ops.is_blas op || Affine.Affine_ops.is_matmul op

let time_func model func =
  if not (Core.is_func func) then invalid_arg "Perf.time_func";
  Core.walk func (fun op ->
      if Linalg.Linalg_ops.is_linalg op then
        D.errorf
          "perf: found %s — lower Linalg ops to loops or convert them to \
           library calls before timing"
          op.Core.o_name);
  let addrs = Sim_trace.assign_addresses func in
  let hier = M.fresh_hierarchy model in
  let stats = Sim_trace.empty_stats () in
  let fast_math =
    match Core.find_attr func "fast_math" with
    | Some (Attr.Bool b) -> b
    | _ -> false
  in
  let library_seconds = ref 0. in
  (* Group maximal runs of trace-simulable ops so the cache stays warm
     across adjacent loop nests; library calls are timed analytically. *)
  let pending = ref [] in
  let flush () =
    if !pending <> [] then begin
      Sim_trace.simulate ~fast_math model hier addrs stats (List.rev !pending);
      pending := []
    end
  in
  List.iter
    (fun (op : Core.op) ->
      if is_library op then begin
        flush ();
        library_seconds := !library_seconds +. library_time model op
      end
      else
        match op.o_name with
        | "func.return" | "memref.alloc" | "memref.dealloc" -> ()
        | _ -> pending := op :: !pending)
    (Core.ops_of_block (Core.func_entry func));
  flush ();
  let compute_cycles =
    (stats.Sim_trace.flops_scalar /. model.M.scalar_flops_per_cycle)
    +. (stats.Sim_trace.flops_vector /. model.M.vector_flops_per_cycle)
  in
  let cycles =
    Float.max compute_cycles stats.Sim_trace.mem_cycles
    +. (stats.Sim_trace.iterations *. model.M.loop_overhead_cycles)
  in
  let loop_seconds = M.seconds_of_cycles model cycles in
  {
    seconds = loop_seconds +. !library_seconds;
    loop_seconds;
    library_seconds = !library_seconds;
    stats;
  }

let gflops ~flops report = flops /. report.seconds /. 1e9
