(** Whole-function performance simulation: affine loop code goes through
    the trace-driven cache simulation, vendor-library calls through the
    analytical model, and [affine.matmul] through the BLIS-codegen model
    (§5.1). The timing combines a compute term (scalar/vector issue), a
    memory term (miss latencies) and per-iteration loop overhead:

    [cycles = max(compute, memory) + iterations * loop_overhead]. *)

(* No [open Ir] here: [Ir.Trace] (the event-tracing layer) would shadow
   the sibling simulation-trace module this interface refers to. *)

type report = {
  seconds : float;
  loop_seconds : float;  (** trace-simulated loop time *)
  library_seconds : float;  (** modelled library calls *)
  stats : Trace.stats;
}

(** [time_func model func] — raises {!Support.Diag.Error} if the function
    still contains Linalg ops (lower or convert them first). *)
val time_func : Machine_model.t -> Ir.Core.op -> report

(** [gflops ~flops report] *)
val gflops : flops:float -> report -> float
