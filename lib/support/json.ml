type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Malformed of string

type st = { src : string; mutable pos : int }

let fail st msg = raise (Malformed (Printf.sprintf "at byte %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let read_hex4 () =
                  if st.pos + 4 > String.length st.src then
                    fail st "truncated \\u escape";
                  let value = ref 0 in
                  for k = st.pos to st.pos + 3 do
                    let d =
                      match st.src.[k] with
                      | '0' .. '9' as c -> Char.code c - Char.code '0'
                      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                      | _ -> fail st "invalid \\u escape"
                    in
                    value := (!value lsl 4) lor d
                  done;
                  st.pos <- st.pos + 4;
                  !value
                in
                let code = read_hex4 () in
                let code =
                  if code >= 0xD800 && code <= 0xDBFF then begin
                    (* High surrogate: must be followed by \uDC00-\uDFFF;
                       the pair encodes one supplementary code point. *)
                    if
                      st.pos + 2 > String.length st.src
                      || st.src.[st.pos] <> '\\'
                      || st.src.[st.pos + 1] <> 'u'
                    then fail st "unpaired high surrogate in \\u escape";
                    st.pos <- st.pos + 2;
                    let low = read_hex4 () in
                    if low < 0xDC00 || low > 0xDFFF then
                      fail st "unpaired high surrogate in \\u escape";
                    0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                  end
                  else if code >= 0xDC00 && code <= 0xDFFF then
                    fail st "unpaired low surrogate in \\u escape"
                  else code
                in
                Buffer.add_utf_8_uchar buf (Uchar.of_int code)
            | c -> fail st (Printf.sprintf "invalid escape \\%C" c));
            go ())
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while p =
    let rec go () =
      match peek st with
      | Some c when p c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (fun c -> c >= '0' && c <= '9');
  if peek st = Some '.' then begin
    advance st;
    consume_while (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
      | _ -> fail st "expected ',' or '}' in object"
    in
    Obj (members [])
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          List.rev (v :: acc)
      | _ -> fail st "expected ',' or ']' in array"
    in
    List (elements [])
  end

let parse src =
  let st = { src; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then
      fail st "trailing characters after JSON value";
    Ok v
  with Malformed msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ---- writer -------------------------------------------------------------- *)

(* The one escaping routine every JSON emitter in the tree goes through
   (reports, pass stats, traces): printable ASCII and UTF-8 bytes pass
   through, the two JSON metacharacters and the common controls use their
   short escapes, and remaining control characters use \u00XX. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integer-valued floats print as integers (counters stay "3", not "3.");
   other finite floats print with the fewest digits that round-trip. *)
let number_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let num_int i = Num (float_of_int i)

let to_int = function
  | Num f when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None
