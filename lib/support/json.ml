type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Malformed of string

type st = { src : string; mutable pos : int }

let fail st msg = raise (Malformed (Printf.sprintf "at byte %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "invalid \\u escape"
                in
                st.pos <- st.pos + 4;
                (* Good enough for validation: store the code point raw
                   (no UTF-8 encoding, no surrogate pairing). *)
                Buffer.add_char buf (Char.chr (code land 0xff))
            | c -> fail st (Printf.sprintf "invalid escape \\%C" c));
            go ())
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while p =
    let rec go () =
      match peek st with
      | Some c when p c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (fun c -> c >= '0' && c <= '9');
  if peek st = Some '.' then begin
    advance st;
    consume_while (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
      | _ -> fail st "expected ',' or '}' in object"
    in
    Obj (members [])
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          List.rev (v :: acc)
      | _ -> fail st "expected ',' or ']' in array"
    in
    List (elements [])
  end

let parse src =
  let st = { src; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then
      fail st "trailing characters after JSON value";
    Ok v
  with Malformed msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
