type t = int Atomic.t

let create () = Atomic.make 0

let next t = Atomic.fetch_and_add t 1

let global = create ()
