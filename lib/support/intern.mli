(** Domain-safe hash-consing (uniquing) tables.

    [Make] builds an interner for one key type: [intern k] returns the
    canonical node structurally equal to [k], creating it on first sight.
    Two structurally equal values interned through the same table are
    physically equal ([==]), so client [equal] functions can use physical
    equality as their fast path and fall back to a structural walk only
    for values that never went through the interner (or that straddle a
    [clear] generation).

    Concurrency (see docs/CONCURRENCY.md and docs/PERF.md): the bucket
    array is published through an [Atomic.t]. Hits — the overwhelmingly
    common case once a module's types exist — are lock-free: one atomic
    read plus a bucket scan over immutable list cells. Misses take a
    process-wide mutex, re-probe, then prepend the new slot to its bucket
    in place; a fresh array is built and published atomically only when
    the table resizes. A reader racing with an insert can at worst miss
    the new slot and fall through to the locked re-probe — it can never
    observe a torn or half-initialized one — so concurrent interns of the
    same key on different domains race benignly and agree on whichever
    canonical node won the lock. This mirrors the [Dialect.register_once]
    discipline: mutation is mutex-serialized and readers only ever
    observe fully constructed slots. *)

(** Version tag for the interning representation, for inclusion in cache
    identities (see [Mlt.Pipeline.cache_identity]): bump when canonical
    forms or the interning discipline change in a way that could alias
    cached artifacts across representations. *)
val version : string

type stats = {
  size : int;  (** canonical nodes currently in the table (exact) *)
  hits : int;
      (** lock-free probes that found an existing node; maintained without
          synchronization, so approximate under parallelism *)
  misses : int;  (** nodes inserted since the last [clear] (exact) *)
  generation : int;  (** incremented by every [clear] *)
}

module type KEY = sig
  type t

  (** Structural equality used to recognize an existing canonical node.
      May be stricter than the client-facing [equal] (e.g. bitwise float
      comparison so [-0.] and [0.] keep distinct canonical nodes). *)
  val equal : t -> t -> bool

  (** Must agree with [equal]; collisions are only a performance matter. *)
  val hash : t -> int
end

module type S = sig
  type key

  (** [intern k] returns the canonical node for [k]. The result is
      [KEY.equal] to [k] and physically equal to every other [intern] of a
      [KEY.equal] value within the same generation. *)
  val intern : key -> key

  (** [mem k] probes without inserting. *)
  val mem : key -> bool

  val stats : unit -> stats

  (** Drop every canonical node and start a new generation. Only intended
      for tests; nodes interned before and after a [clear] are never
      physically equal, which is why client [equal] keeps a structural
      fallback. *)
  val clear : unit -> unit
end

module Make (K : KEY) : S with type key = K.t
