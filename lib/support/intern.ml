let version = "intern-v1"

type stats = { size : int; hits : int; misses : int; generation : int }

module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type key

  val intern : key -> key
  val mem : key -> bool
  val stats : unit -> stats
  val clear : unit -> unit
end

module Make (K : KEY) = struct
  type key = K.t
  type slot = { s_hash : int; s_key : key }

  (* [t_buckets] has power-of-two length; each bucket is an immutable
     list whose cells never change once published. Inserts mutate a
     bucket element in place under [lock] (prepend); [Atomic.set]
     publishes a whole new array only on resize or [clear]. A reader
     racing with an insert may miss the new slot — it then falls through
     to the locked re-probe, which cannot miss — and a reader holding a
     just-retired array simply probes a stale (still correct, merely
     smaller) snapshot. What a racy read can never observe is a torn or
     half-initialized slot: slots are immutable records fully built
     before the bucket store. [t_count] is only read/written under
     [lock]. *)
  type table = { t_buckets : slot list array; mutable t_count : int }

  let initial_buckets = 64
  let max_load = 3 (* average bucket length that triggers doubling *)
  let empty n = { t_buckets = Array.make n []; t_count = 0 }
  let table = Atomic.make (empty initial_buckets)
  let lock = Mutex.create ()
  let generation = Atomic.make 0

  (* Hit counting is deliberately unsynchronized (a racy [int ref]): an
     atomic on the hot path would serialize every domain's lookups just to
     keep a diagnostic exact. Reads of an immediate can't tear; under
     parallelism the count can only undercount. *)
  let hit_count = ref 0
  let miss_count = ref 0 (* exact: only written under [lock] *)

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let bucket_of t h = h land (Array.length t.t_buckets - 1)

  let rec probe h k = function
    | [] -> None
    | s :: tl ->
        if s.s_hash = h && (s.s_key == k || K.equal s.s_key k) then
          Some s.s_key
        else probe h k tl

  let resize t =
    let n = Array.length t.t_buckets * 2 in
    let buckets = Array.make n [] in
    let t' = { t_buckets = buckets; t_count = t.t_count } in
    Array.iter
      (List.iter (fun s ->
           let i = bucket_of t' s.s_hash in
           buckets.(i) <- s :: buckets.(i)))
      t.t_buckets;
    t'

  let intern k =
    let h = K.hash k land max_int in
    let t = Atomic.get table in
    match probe h k t.t_buckets.(bucket_of t h) with
    | Some canonical ->
        incr hit_count;
        canonical
    | None ->
        with_lock (fun () ->
            (* Re-probe: another domain may have inserted [k] between our
               lock-free miss and acquiring the lock. *)
            let t = Atomic.get table in
            match probe h k t.t_buckets.(bucket_of t h) with
            | Some canonical -> canonical
            | None ->
                let i = bucket_of t h in
                t.t_buckets.(i) <- { s_hash = h; s_key = k } :: t.t_buckets.(i);
                t.t_count <- t.t_count + 1;
                incr miss_count;
                if t.t_count > max_load * Array.length t.t_buckets then
                  Atomic.set table (resize t);
                k)

  let mem k =
    let h = K.hash k land max_int in
    let t = Atomic.get table in
    Option.is_some (probe h k t.t_buckets.(bucket_of t h))

  let stats () =
    let t = Atomic.get table in
    {
      size = t.t_count;
      hits = !hit_count;
      misses = !miss_count;
      generation = Atomic.get generation;
    }

  let clear () =
    with_lock (fun () ->
        Atomic.set table (empty initial_buckets);
        miss_count := 0;
        Atomic.incr generation)
end
