(** Source locations for the textual frontends (mini-C, TDL, IR parser). *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

val unknown : t

val make : file:string -> line:int -> col:int -> t

val equal : t -> t -> bool

(** [is_known t] — is [t] structurally different from {!unknown}? *)
val is_known : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
