(** The shared [run_meta] block stamped into every machine-readable
    artifact (BENCH_*.json, --pass-stats, --metrics files) so a recorded
    perf point is attributable to the environment that produced it —
    and so [trace_stats --diff] can refuse to compare artifacts written
    under different schemas. *)

(** Version of the recorded-artifact schemas. Bump whenever a field of
    the pass-stats / metrics / BENCH JSON layouts changes meaning, so
    offline diffs across the change fail loudly instead of comparing
    apples to oranges. *)
val schema_version : int

(** [json ?domains ()] — the block as a {!Support.Json} object:
    [schema_version], [domains] (default
    [Domain.recommended_domain_count ()]), [ocaml_version], [hostname].
    Hostname lookup failures degrade to ["unknown"], never raise. *)
val json : ?domains:int -> unit -> Json.t

(** [to_string ?domains ()] — {!json} rendered compactly, for emitters
    that build their artifact with [Printf] rather than the tree
    writer. *)
val to_string : ?domains:int -> unit -> string

(** [schema_version_of j] — the [run_meta.schema_version] member of a
    parsed artifact, [None] when the artifact predates run_meta
    stamping. *)
val schema_version_of : Json.t -> int option
