type t = { file : string; line : int; col : int }

let unknown = { file = "<unknown>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let equal a b =
  String.equal a.file b.file && a.line = b.line && a.col = b.col

let is_known t = not (equal t unknown)

let pp fmt { file; line; col } =
  if line = 0 then Format.fprintf fmt "%s" file
  else Format.fprintf fmt "%s:%d:%d" file line col

let to_string t = Format.asprintf "%a" pp t
