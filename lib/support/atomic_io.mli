(** Crash-safe artifact I/O: all file emission in the tree (batch
    outputs, [report.json], Chrome traces, cache blobs) goes through this
    module so no code path can leave a torn file. Writes land in a temp
    file in the target's directory and are committed by an atomic
    [rename]; a crash, kill, or exception at any instant leaves either
    the old file or the new one, and exceptions remove the temp. *)

(** [with_file ~path f] opens a temp file next to [path], runs [f] on its
    channel, then fsyncs (unless [fsync:false]), closes, and atomically
    renames onto [path] (best-effort directory fsync afterwards). If [f]
    — or the commit itself — raises, [path] is untouched and the temp is
    removed; the exception propagates. *)
val with_file : ?fsync:bool -> path:string -> (out_channel -> 'a) -> 'a

(** [write_file ~path contents] — {!with_file} writing one string. *)
val write_file : ?fsync:bool -> path:string -> string -> unit

(** [mkdir_p dir] creates [dir] and its parents. Raises a precise
    {!Diag.Error} if any component exists and is not a directory
    (including when a concurrent creator wins the [EEXIST] race with a
    non-directory). *)
val mkdir_p : string -> unit

(** [append_line ~path line] appends [line ^ "\n"] with [O_APPEND] and
    fsyncs (unless [fsync:false]), creating the file if needed. A crash
    can tear only the final line — append-only journal readers must skip
    a trailing partial line. *)
val append_line : ?fsync:bool -> path:string -> string -> unit

(** [is_tmp_name name] — [name] carries this module's temp-file marker;
    recovery scans use it to sweep temps orphaned by a kill. *)
val is_tmp_name : string -> bool

(** [fsync_channel oc] — flush and fsync an open channel. *)
val fsync_channel : out_channel -> unit
