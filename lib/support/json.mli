(** A minimal JSON reader/writer, used for every tool-emitted JSON
    artifact (batch reports, pass statistics) and to validate them in
    tests and CI without taking on a JSON dependency. The reader is
    strict; [\uXXXX] escapes decode to UTF-8 (surrogate pairs combine,
    unpaired surrogates are rejected). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse src] parses exactly one JSON value spanning all of [src]
    (modulo whitespace); [Error msg] carries a byte offset. *)
val parse : string -> (t, string) result

(** [member key v] — field lookup on [Obj]; [None] on other values. *)
val member : string -> t -> t option

(** [to_string v] renders [v] compactly (no whitespace). Object fields
    keep their list order. Integer-valued numbers render without a
    decimal point; other floats with the fewest digits that round-trip
    through {!parse}. Raises [Invalid_argument] on non-finite numbers. *)
val to_string : t -> string

(** The escaping {!to_string} applies inside string literals (without the
    surrounding quotes) — shared so hand-rolled emitters (the Chrome
    trace stream) cannot diverge from the writer. *)
val escape_string : string -> string

(** [num_int i] is [Num (float_of_int i)]. *)
val num_int : int -> t

(** [to_int v] — [Some i] iff [v] is an integer-valued [Num]. *)
val to_int : t -> int option
