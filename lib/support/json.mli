(** A minimal JSON reader, used to validate the tool-emitted JSON reports
    (pass statistics, Chrome traces) in tests and CI without taking on a
    JSON dependency. Strict enough for well-formedness checking; string
    decoding of [\u] escapes is lossy (validation, not round-tripping). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse src] parses exactly one JSON value spanning all of [src]
    (modulo whitespace); [Error msg] carries a byte offset. *)
val parse : string -> (t, string) result

(** [member key v] — field lookup on [Obj]; [None] on other values. *)
val member : string -> t -> t option
