(** Monotonic unique-id generation, used for SSA values, ops and blocks.

    Generators are atomic: concurrent [next] calls from multiple domains
    never return the same id. The IR layer relies on this — op/value ids
    key domain-local registries (e.g. the region-owner table), so a
    cross-domain collision would silently corrupt unrelated IR. *)

type t

val create : unit -> t

(** [next t] returns a fresh id, starting at 0. Atomic: safe to call
    concurrently from multiple domains. *)
val next : t -> int

(** A process-wide generator for entities that only need global uniqueness. *)
val global : t
