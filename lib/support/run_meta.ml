let schema_version = 1

let hostname () = try Unix.gethostname () with _ -> "unknown"

let json ?domains () =
  let domains =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  Json.Obj
    [
      ("schema_version", Json.num_int schema_version);
      ("domains", Json.num_int domains);
      ("ocaml_version", Json.Str Sys.ocaml_version);
      ("hostname", Json.Str (hostname ()));
    ]

let to_string ?domains () = Json.to_string (json ?domains ())

let schema_version_of j =
  match Json.member "run_meta" j with
  | Some meta -> (
      match Json.member "schema_version" meta with
      | Some v -> Json.to_int v
      | None -> None)
  | None -> None
