(** Content digests for the artifact cache: 32-character lowercase hex
    strings (MD5 — a content address, not a security boundary). *)

type t = string

(** Digest of one string. *)
val string : string -> t

(** Digest of a sequence of strings under an injective (length-prefixed)
    encoding — [strings ["ab"; "c"]] differs from [strings ["a"; "bc"]].
    The cache key constructor. *)
val strings : string list -> t

(** [is_hex s] — [s] has the exact shape of a digest (32 lowercase hex
    chars); used to recognize cache object filenames. *)
val is_hex : string -> bool
