type t = string

let string s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

(* Length-prefix each part so the encoding is injective: ["ab"; "c"] and
   ["a"; "bc"] digest differently. *)
let strings parts =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  string (Buffer.contents buf)

let is_hex s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s
