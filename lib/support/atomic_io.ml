(* Crash-safe file emission: every artifact writer in the tree (batch
   outputs, reports, Chrome traces, cache blobs) commits through
   write-tmp-then-atomic-rename, so a crash or kill at any instant leaves
   either the previous file or the new one — never a torn mixture — and
   never leaks a stray temp file on an exception. *)

let tmp_counter = Atomic.make 0

(* Temp name in the *same directory* as the target, so the final
   [Sys.rename] never crosses a filesystem boundary (rename is only
   atomic within one). Pid + atomic counter keep concurrent writers
   (domains or processes) from colliding. *)
let tmp_path path =
  Printf.sprintf "%s.tmp-%d-%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

(* Recognizes names produced by [tmp_path] (any ".tmp-" marker), so
   recovery scans can sweep temp files orphaned by a kill. *)
let is_tmp_name name =
  let needle = ".tmp-" in
  let nl = String.length needle and l = String.length name in
  let rec go i =
    i + nl <= l && (String.equal (String.sub name i nl) needle || go (i + 1))
  in
  go 0

let fsync_channel oc =
  Out_channel.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Best-effort directory fsync so the rename itself is durable; some
   filesystems refuse to open or fsync a directory — that only weakens
   durability of the *name*, never atomicity of the content. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let with_file ?(fsync = true) ~path f =
  let tmp = tmp_path path in
  let oc = Out_channel.open_bin tmp in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      (* Writer raised (or fsync/rename failed): close and remove the
         temp so no partial file survives under any name. *)
      if not !committed then begin
        (try Out_channel.close oc with Sys_error _ -> ());
        try Sys.remove tmp with Sys_error _ -> ()
      end)
    (fun () ->
      let v = f oc in
      if fsync then fsync_channel oc;
      Out_channel.close oc;
      Sys.rename tmp path;
      committed := true;
      if fsync then fsync_dir (Filename.dirname path);
      v)

let write_file ?fsync ~path contents =
  with_file ?fsync ~path (fun oc -> Out_channel.output_string oc contents)

let mkdir_p dir =
  let rec go d =
    if Sys.file_exists d then begin
      if not (try Sys.is_directory d with Sys_error _ -> false) then
        Diag.errorf
          "cannot create directory %s: %s exists and is not a directory"
          dir d
    end
    else begin
      let parent = Filename.dirname d in
      if parent <> d then go parent;
      try Unix.mkdir d 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) ->
          (* Raced another creator: fine if what won is a directory,
             precise error if a file appeared under this name. *)
          if not (try Sys.is_directory d with Sys_error _ -> false) then
            Diag.errorf
              "cannot create directory %s: %s exists and is not a directory"
              dir d
    end
  in
  go dir

(* Append one line durably. O_APPEND keeps concurrent appenders from
   interleaving mid-line for short writes; a crash can only tear the
   *last* line, which journal readers must (and do) tolerate. *)
let append_line ?(fsync = true) ~path line =
  let fd =
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let data = Bytes.of_string (line ^ "\n") in
      let len = Bytes.length data in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write fd data !off (len - !off)
      done;
      if fsync then Unix.fsync fd)
