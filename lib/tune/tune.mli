(** The machine-model schedule autotuner: enumerate transform-script
    candidates, score each on {!Machine.Perf}'s trace-driven model, keep
    the best — the general search that replaces [Pluto_best]'s bespoke
    sequential sweep and backs [bench -- tune] / [mlt-sim --tune].

    Determinism: candidates are evaluated into a slot array indexed by
    candidate position and the winner is the {e first strict minimum} in
    candidate order, so the result is independent of the domain count;
    with a fixed [seed] the optional subsampling is deterministic too.
    Sharding follows the batch driver's round-robin discipline
    (docs/CONCURRENCY.md): populate the dialect and transform-step
    registries on the calling domain first
    ([Mlt.Pipeline.register_dialects]). *)

type candidate = {
  c_name : string;
  c_steps : Transform.Script.step list;
}

(** Per-candidate outcome: modelled seconds, or the error that disqualified
    it (a candidate that fails to apply or verify loses, it does not
    abort the search). *)
type evaluation = {
  ev_candidate : candidate;
  ev_seconds : float option;
  ev_wall_seconds : float;
      (** Wall-clock cost of evaluating this candidate (apply + verify +
          model) — the tuner's own latency, recorded whether or not the
          candidate survived. Never part of the scoring. *)
  ev_error : string option;
}

(** The [--pass-stats] summary of a search (docs/OBSERVABILITY.md). *)
type stats = {
  t_candidates : int;  (** size of the (subsampled) space *)
  t_evaluated : int;  (** candidates that compiled, verified and timed *)
  t_best_seconds : float;
  t_eval_latency : Ir.Metrics.histogram_snapshot;
      (** Distribution of [ev_wall_seconds] over all candidates
          ({!Ir.Metrics} log buckets); also observed into the
          [mlt_tune_eval_seconds] registry histogram when metrics are
          enabled. *)
}

type outcome = {
  o_best : candidate;
  o_best_index : int;  (** position in the searched candidate list *)
  o_best_report : Machine.Perf.report;
  o_stats : stats;
  o_evaluations : evaluation list;  (** searched order *)
}

(** Largest constant trip count under a function — the knob that bounds
    tile-size grids to useful values. *)
val max_trip_count : Ir.Core.op -> int

(** The Pluto sweep ({!Transforms.Pluto.sweep_configs}) as transform
    scripts, in sweep order with identical elaborations — the space that
    makes the tuner's winner byte-identical to the legacy sweep's. *)
val pluto_space : max_trip:int -> candidate list

(** BLIS-blocking candidates for a GEMM-shaped kernel: raise to
    [affine.matmul], then either keep the library-modelled op or lower
    through the packed schedule over an [mc/nc/kc] grid. *)
val blis_space : ?quick:bool -> unit -> candidate list

(** [pluto_space] plus [blis_space]: tile sizes, interchange, fusion and
    blocking — the [bench -- tune] / [mlt-sim --tune] search space.
    [quick] trims both grids for smoke runs. *)
val gemm_space : ?quick:bool -> max_trip:int -> unit -> candidate list

(** [search ~machine ~translate candidates] evaluates every candidate on
    a fresh [translate ()] payload and returns the winner. [domains]
    shards candidates round-robin across a domain pool (default 1);
    [limit] (with [seed], default 0) deterministically subsamples the
    space, always keeping the first candidate — by convention the
    baseline schedule. Raises {!Support.Diag.Error} when the space is
    empty or no candidate survives. *)
val search :
  ?domains:int ->
  ?seed:int ->
  ?limit:int ->
  machine:Machine.Machine_model.t ->
  translate:(unit -> Ir.Core.op) ->
  candidate list ->
  outcome
