module Script = Transform.Script
module Interp = Transform.Interp
module T = Transforms
module D = Support.Diag
open Ir

type candidate = { c_name : string; c_steps : Script.step list }

type evaluation = {
  ev_candidate : candidate;
  ev_seconds : float option;
  ev_wall_seconds : float;
  ev_error : string option;
}

type stats = {
  t_candidates : int;
  t_evaluated : int;
  t_best_seconds : float;
  t_eval_latency : Metrics.histogram_snapshot;
}

type outcome = {
  o_best : candidate;
  o_best_index : int;
  o_best_report : Machine.Perf.report;
  o_stats : stats;
  o_evaluations : evaluation list;
}

let max_trip_count f =
  List.fold_left
    (fun acc loop ->
      match Affine.Affine_ops.for_trip_count loop with
      | Some t -> max acc t
      | None -> acc)
    1
    (Affine.Loops.all_loops f)

(* ---- candidate spaces ---------------------------------------------------- *)

let pluto_space ~max_trip =
  List.map
    (fun (c : T.Pluto.config) ->
      {
        c_name = "pluto-" ^ T.Pluto.config_to_string c;
        c_steps = Script.of_pluto c;
      })
    (T.Pluto.sweep_configs ~max_trip)

let blis_space ?(quick = false) () =
  let raised = [ Script.Canonicalize false; Script.Raise "affine-matmul" ] in
  let library_call =
    (* Keep affine.matmul: Machine.Perf times it through the analytic
       library model — the Mlt_affine_blis schedule. *)
    { c_name = "blis-library"; c_steps = raised }
  in
  let blockings =
    if quick then [ T.Blis_schedule.default_blocking ]
    else
      List.concat_map
        (fun mc ->
          List.concat_map
            (fun nc ->
              List.map
                (fun kc -> { T.Blis_schedule.mc; nc; kc })
                [ 64; 128; 256 ])
            [ 128; 256; 512 ])
        [ 32; 64; 128 ]
  in
  library_call
  :: List.map
       (fun (b : T.Blis_schedule.blocking) ->
         {
           c_name =
             Printf.sprintf "blis-mc%d-nc%d-kc%d" b.T.Blis_schedule.mc
               b.T.Blis_schedule.nc b.T.Blis_schedule.kc;
           c_steps = raised @ [ Script.Blis_schedule b ];
         })
       blockings

let gemm_space ?(quick = false) ~max_trip () =
  let pluto =
    if quick then
      List.map
        (fun (c : T.Pluto.config) ->
          {
            c_name = "pluto-" ^ T.Pluto.config_to_string c;
            c_steps = Script.of_pluto c;
          })
        [
          T.Pluto.default_config;
          { T.Pluto.tile = 1; fusion = T.Loop_fuse.Smart_fuse; vectorize = false };
          { T.Pluto.tile = 16; fusion = T.Loop_fuse.Smart_fuse; vectorize = true };
        ]
    else pluto_space ~max_trip
  in
  pluto @ blis_space ~quick ()

(* ---- deterministic subsampling ------------------------------------------- *)

(* Partial Fisher-Yates over indices 1..n-1 driven by a fixed LCG; slot 0
   (the baseline schedule) always survives, and the chosen indices are
   re-sorted so candidate order — and with it the first-strict-minimum
   tie-break — is preserved. *)
let subsample ~seed ~limit candidates =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  if limit >= n || limit < 1 then candidates
  else begin
    let state = ref ((seed * 2654435761 + 12345) land 0x3FFFFFFF) in
    let next m =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod m
    in
    let idx = Array.init n (fun i -> i) in
    for i = 1 to min (limit - 1) (n - 2) do
      let j = i + next (n - i) in
      let t = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- t
    done;
    let chosen = Array.sub idx 0 limit in
    Array.sort compare chosen;
    Array.to_list (Array.map (fun i -> arr.(i)) chosen)
  end

(* ---- the search ----------------------------------------------------------- *)

let sole_func m =
  match List.filter Core.is_func (Core.ops_of_block (Core.module_block m)) with
  | [ f ] -> f
  | fs -> D.errorf "tune: expected one kernel, found %d" (List.length fs)

let m_eval_seconds =
  lazy
    (Metrics.histogram ~help:"tuner candidate-evaluation wall-clock"
       "mlt_tune_eval_seconds")

let search ?(domains = 1) ?(seed = 0) ?limit ~machine ~translate candidates =
  let candidates =
    match limit with
    | Some l -> subsample ~seed ~limit:l candidates
    | None -> candidates
  in
  let cands = Array.of_list candidates in
  let n = Array.length cands in
  if n = 0 then D.errorf "tune: empty candidate space";
  (* Resolve every script on the calling domain: step resolution may
     freeze pattern sets, and frozen sets are the shareable form
     (docs/CONCURRENCY.md). Workers only read the closures. *)
  let compiled = Array.map (fun c -> Interp.compile_steps c.c_steps) cands in
  let results : (Machine.Perf.report option * string option) array =
    Array.make n (None, None)
  in
  (* Wall-clock cost of evaluating each candidate — the tuner's own
     latency, distinct from the modelled seconds it scores. Each slot is
     written by exactly one shard; [Domain.join] publishes them. *)
  let walls = Array.make n 0. in
  let eval i =
    let t0 = Unix.gettimeofday () in
    (match
       let m = translate () in
       let f = sole_func m in
       List.iter (fun c -> ignore (Interp.apply_step c f)) compiled.(i);
       Verifier.verify m;
       Machine.Perf.time_func machine f
     with
    | report -> results.(i) <- (Some report, None)
    | exception D.Error (loc, msg) ->
        results.(i) <- (None, Some (D.to_string loc msg))
    | exception exn -> results.(i) <- (None, Some (Printexc.to_string exn)));
    let w = Unix.gettimeofday () -. t0 in
    walls.(i) <- w;
    Metrics.observe (Lazy.force m_eval_seconds) w
  in
  let domains = max 1 (min domains n) in
  let work shard () =
    let i = ref shard in
    while !i < n do
      eval !i;
      i := !i + domains
    done
  in
  Trace.span ~cat:"driver" "tune-search" (fun () ->
      if domains = 1 then work 0 ()
      else begin
        let spawned =
          List.init (domains - 1) (fun s -> Domain.spawn (work (s + 1)))
        in
        work 0 ();
        List.iter Domain.join spawned
      end);
  (* First strict minimum in candidate order — the exact argmin the
     legacy sequential Pluto sweep computed. *)
  let best = ref None in
  Array.iteri
    (fun i (r, _) ->
      match r with
      | None -> ()
      | Some (rep : Machine.Perf.report) -> (
          match !best with
          | Some (_, (b : Machine.Perf.report))
            when b.Machine.Perf.seconds <= rep.Machine.Perf.seconds ->
              ()
          | _ -> best := Some (i, rep)))
    results;
  match !best with
  | None ->
      let first_error =
        Array.fold_left
          (fun acc (_, e) -> match acc with Some _ -> acc | None -> e)
          None results
      in
      D.errorf "tune: no candidate evaluated successfully%s"
        (match first_error with Some e -> ": " ^ e | None -> "")
  | Some (best_index, report) ->
      let evaluated =
        Array.fold_left
          (fun acc (r, _) -> if r <> None then acc + 1 else acc)
          0 results
      in
      let evaluations =
        List.mapi
          (fun j c ->
            let r, e = results.(j) in
            {
              ev_candidate = c;
              ev_seconds =
                Option.map
                  (fun (r : Machine.Perf.report) -> r.Machine.Perf.seconds)
                  r;
              ev_wall_seconds = walls.(j);
              ev_error = e;
            })
          candidates
      in
      let eval_latency =
        let buckets = Array.make Metrics.bucket_count 0 in
        let sum = ref 0. in
        Array.iter
          (fun w ->
            sum := !sum +. w;
            let b = Metrics.bucket_of_seconds w in
            buckets.(b) <- buckets.(b) + 1)
          walls;
        { Metrics.h_count = n; h_sum = !sum; h_buckets = buckets }
      in
      {
        o_best = cands.(best_index);
        o_best_index = best_index;
        o_best_report = report;
        o_stats =
          {
            t_candidates = n;
            t_evaluated = evaluated;
            t_best_seconds = report.Machine.Perf.seconds;
            t_eval_latency = eval_latency;
          };
        o_evaluations = evaluations;
      }
