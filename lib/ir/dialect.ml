type op_def = {
  od_name : string;
  od_verify : Core.op -> unit;
  od_terminator : bool;
  od_commutative : bool;
  od_summary : string;
}

let no_verify (_ : Core.op) = ()

let def ?(verify = no_verify) ?(terminator = false) ?(commutative = false)
    ?(summary = "") name =
  {
    od_name = name;
    od_verify = verify;
    od_terminator = terminator;
    od_commutative = commutative;
    od_summary = summary;
  }

(* The registry is a plain Hashtbl, so it is write-once-before-parallelism:
   all registration must complete before a second domain reads it
   (lookups are unsynchronized on the verifier hot path on purpose).
   [register_once] makes the "before" part safe even if two domains do
   race a first registration — writers serialize on one mutex, and a
   dialect's [registered] flag is published (Atomic.set) only after its
   whole body ran, so no domain can ever observe a half-registered
   dialect. Multi-domain drivers ([Batch.Driver.run]) additionally
   register everything eagerly on the calling domain before spawning, so
   in practice worker domains never write here at all. *)
let registry : (string, op_def) Hashtbl.t = Hashtbl.create 64

let registration_mutex = Mutex.create ()

(* Reentrancy: dialect registration nests (linalg registers memref, affine
   registers arith + memref), and Stdlib.Mutex is not reentrant. *)
let holding_registration_mutex : bool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> false)

let register_once flag body =
  if not (Atomic.get flag) then
    if Domain.DLS.get holding_registration_mutex then begin
      (* Nested call from an enclosing register_once on this domain. *)
      if not (Atomic.get flag) then begin
        body ();
        Atomic.set flag true
      end
    end
    else begin
      Mutex.lock registration_mutex;
      Domain.DLS.set holding_registration_mutex true;
      Fun.protect
        ~finally:(fun () ->
          Domain.DLS.set holding_registration_mutex false;
          Mutex.unlock registration_mutex)
        (fun () ->
          (* Double-checked: a racing domain may have registered while we
             waited for the lock. *)
          if not (Atomic.get flag) then begin
            body ();
            Atomic.set flag true
          end)
    end

let register d = Hashtbl.replace registry d.od_name d
let register_all ds = List.iter register ds
let lookup name = Hashtbl.find_opt registry name
let is_registered name = Hashtbl.mem registry name

let is_terminator (op : Core.op) =
  match lookup op.o_name with Some d -> d.od_terminator | None -> false

let is_commutative (op : Core.op) =
  match lookup op.o_name with Some d -> d.od_commutative | None -> false

let registered_ops () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let dialect_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name
