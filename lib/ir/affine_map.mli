(** Multi-dimensional affine maps [(d0, ..., dn)[s0, ..., sm] -> (e0, ..., ek)].

    Affine maps are the compile-time objects that the affine dialect stores
    in attributes: access functions of [affine.load]/[affine.store], loop
    bounds of [affine.for], and the indexing maps of [linalg.contract]. *)

type t = private {
  n_dims : int;
  n_syms : int;
  exprs : Affine_expr.t list;  (** results, simplified *)
}

(** [make ~n_dims ~n_syms exprs] builds a map; raises [Invalid_argument] if
    an expression references a dimension or symbol out of range. *)
val make : n_dims:int -> ?n_syms:int -> Affine_expr.t list -> t

(** [identity n] is [(d0, ..., dn-1) -> (d0, ..., dn-1)]. *)
val identity : int -> t

(** [constant_map cs] is [() -> (c0, ..., ck)]. *)
val constant_map : int list -> t

(** [permutation p] is the map sending [(d0...dn-1)] to [(d_p(0)...d_p(n-1))];
    [p] must be a permutation of [0..n-1]. Applying it to an index vector [v]
    yields [v'] with [v'.(i) = v.(p.(i))]. *)
val permutation : int array -> t

val n_results : t -> int

(** [eval t ~dims ~syms] applies the map to concrete indices. *)
val eval : t -> dims:int array -> ?syms:int array -> unit -> int array

(** [compile t] stages the map: every result expression is resolved to a
    closure once (see {!Affine_expr.compile}), and the returned function
    [c] evaluates the whole map with [c dims out], writing the results
    into the caller-supplied [out] array — no per-application tree walk or
    allocation. Used by the interpreter's compiled engine and the staged
    contraction kernel. Maps with symbols are rejected at compile time. *)
val compile : t -> int array -> int array -> unit

(** [compose f g] is the map [x -> f (g x)]; requires
    [n_results g = n_dims f] and [n_syms f = 0]. Symbols of [g] are kept. *)
val compose : t -> t -> t

val is_identity : t -> bool

(** [is_permutation t] returns the permutation array if every result is a
    distinct bare dimension covering [0..n_dims-1]. *)
val is_permutation : t -> int array option

(** [inverse_permutation p] with [q = inverse_permutation p] satisfies
    [q.(p.(i)) = i]. *)
val inverse_permutation : int array -> int array

(** [minor_identity ~n_dims ~results] selects dimensions [results] in order,
    e.g. [minor_identity ~n_dims:3 ~results:[0;2]] is [(d0,d1,d2) -> (d0,d2)]. *)
val minor_identity : n_dims:int -> results:int list -> t

(** Structural equality with a physical ([==]) fast path; monomorphic and
    length-guarded throughout. Because the type is private and every map is
    built by {!make} — which hash-conses the record and its expressions —
    structurally equal maps are normally physically equal already. *)
val equal : t -> t -> bool

val interner_stats : unit -> Support.Intern.stats
val pp : Format.formatter -> t -> unit
val to_string : t -> string
