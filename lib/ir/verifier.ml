module D = Support.Diag

let fail op fmt =
  Format.kasprintf
    (fun msg -> D.errorf "verifier: '%s' (id %d): %s" op.Core.o_name op.Core.o_id msg)
    fmt

(* Scope = set of value ids visible at the current program point. Regions
   introduce nested scopes; block arguments enter scope at block start. *)
let rec verify_op scope (op : Core.op) =
  Array.iter
    (fun (v : Core.value) ->
      if not (Hashtbl.mem scope v.Core.v_id) then
        fail op "operand %s used before definition or out of scope"
          (Printer.debug_value v))
    op.o_operands;
  (match Dialect.lookup op.o_name with
  | Some d -> d.od_verify op
  | None -> ());
  Array.iter
    (fun (r : Core.region) ->
      List.iter
        (fun (b : Core.block) ->
          let inner = Hashtbl.copy scope in
          Array.iter
            (fun (a : Core.value) -> Hashtbl.replace inner a.Core.v_id ())
            b.b_args;
          List.iter
            (fun child ->
              verify_op inner child;
              Array.iter
                (fun (res : Core.value) ->
                  Hashtbl.replace inner res.Core.v_id ())
                child.o_results)
            (Core.ops_of_block b);
          (* Terminator discipline: if any op in the block is a registered
             terminator it must be the last one. *)
          let rec check_terms = function
            | [] -> ()
            | [ _last ] -> ()
            | o :: rest ->
                if Dialect.is_terminator o then
                  fail op "terminator '%s' is not last in its block"
                    o.Core.o_name
                else check_terms rest
          in
          check_terms (Core.ops_of_block b))
        r.r_blocks)
    op.o_regions

let verify root =
  let scope = Hashtbl.create 64 in
  verify_op scope root

let verify_result root =
  match verify root with
  | () -> Ok ()
  | exception D.Error (loc, msg) -> Error (D.to_string loc msg)
