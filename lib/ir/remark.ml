type kind = Applied | Missed | Analysis | Warning

type t = {
  r_kind : kind;
  r_context : string option;
  r_pattern : string option;
  r_stage : string option;
  r_loc : Support.Loc.t;
  r_message : string;
}

let kind_name = function
  | Applied -> "applied"
  | Missed -> "missed"
  | Analysis -> "analysis"
  | Warning -> "warning"

let to_string r =
  let buf = Buffer.create 64 in
  if Support.Loc.is_known r.r_loc then begin
    Buffer.add_string buf (Support.Loc.to_string r.r_loc);
    Buffer.add_string buf ": "
  end;
  Buffer.add_string buf ("remark [" ^ kind_name r.r_kind ^ "]");
  (match r.r_pattern with
  | Some p -> Buffer.add_string buf (" " ^ p)
  | None -> ());
  (match r.r_stage with
  | Some s -> Buffer.add_string buf (" (stage: " ^ s ^ ")")
  | None -> ());
  Buffer.add_string buf ": ";
  Buffer.add_string buf r.r_message;
  (match r.r_context with
  | Some c -> Buffer.add_string buf (" [" ^ c ^ "]")
  | None -> ());
  Buffer.contents buf

type sink = t -> unit

(* Domain-local, like [Trace.sinks]: remarks emitted by a compilation on
   one domain reach only the sinks that compilation installed. Handles
   come from one atomic counter so they are unique process-wide. *)
let sinks_key : (int * sink) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let next_handle = Atomic.make 0

type handle = int

let install sink =
  let h = 1 + Atomic.fetch_and_add next_handle 1 in
  Domain.DLS.set sinks_key ((h, sink) :: Domain.DLS.get sinks_key);
  h

let uninstall h =
  Domain.DLS.set sinks_key
    (List.filter (fun (h', _) -> h' <> h) (Domain.DLS.get sinks_key))

let with_sink sink f =
  let h = install sink in
  Fun.protect ~finally:(fun () -> uninstall h) f

let enabled () = Domain.DLS.get sinks_key <> []

let installed_count () = List.length (Domain.DLS.get sinks_key)

let trace_args r =
  let opt key = function
    | Some v -> [ (key, Trace.A_str v) ]
    | None -> []
  in
  (("kind", Trace.A_str (kind_name r.r_kind)) :: opt "pattern" r.r_pattern)
  @ opt "stage" r.r_stage @ opt "context" r.r_context
  @
  if Support.Loc.is_known r.r_loc then
    [ ("loc", Trace.A_str (Support.Loc.to_string r.r_loc)) ]
  else []

let emit r =
  (* Remarks are also visible in the trace timeline, so a Perfetto view
     of a raising run shows *why* a nest did not raise next to the
     pattern attempts that rejected it. *)
  if Trace.enabled () then
    Trace.instant ~cat:"remark" ~args:(trace_args r) r.r_message;
  match Domain.DLS.get sinks_key with
  | [] ->
      (* Unwatched warnings must still reach the user (the pre-existing
         behaviour of the ad-hoc [Printf.eprintf] call sites). *)
      if r.r_kind = Warning then prerr_endline (to_string r)
  | sinks -> List.iter (fun (_, sink) -> sink r) sinks

let remark ?(loc = Support.Loc.unknown) ?context ?pattern ?stage kind fmt =
  Printf.ksprintf
    (fun msg ->
      emit
        {
          r_kind = kind;
          r_context = context;
          r_pattern = pattern;
          r_stage = stage;
          r_loc = loc;
          r_message = msg;
        })
    fmt

let warningf ?loc ?context fmt = remark ?loc ?context Warning fmt

let kinds_of_string = function
  | "missed" -> Some [ Missed ]
  | "applied" -> Some [ Applied ]
  | "analysis" -> Some [ Analysis ]
  | "all" -> Some [ Applied; Missed; Analysis; Warning ]
  | _ -> None

let stderr_sink ?kinds () r =
  let wanted = match kinds with None -> true | Some ks -> List.mem r.r_kind ks in
  if wanted then prerr_endline (to_string r)
