(** Textual IR output, in an MLIR-flavoured concrete syntax.

    Operations with well-known names (func, affine, scf, arith, memref,
    linalg, blas dialects) print in a pretty custom form; anything else
    falls back to the generic
    [%r = "name"(%operands) {attrs} : (operand types) -> (result types)]
    form. {!Parser} accepts exactly what this module prints, giving a
    round-trip property that the tests enforce. *)

(** [pp_op fmt op] prints a whole operation tree (typically a module or a
    function) followed by a newline for nested ops.

    [debug_locs] (default false) appends a [loc(...)] trailer to every
    op that has a known source location or a provenance chain:
    [loc("gemm.c":4:3)] for frontend ops, and
    [loc(derived "GEMM" from ["gemm.c":2:3, ...])] for ops stamped by a
    rewrite ([mlt-opt --print-debug-locs]). Trailers are not part of the
    parseable syntax, so the round-trip property holds only for the
    default form. *)
val pp_op : ?debug_locs:bool -> Format.formatter -> Core.op -> unit

val op_to_string : ?debug_locs:bool -> Core.op -> string

(** [debug_value v] renders a value for diagnostics (hint + internal id);
    names are not the printer's stable SSA names. *)
val debug_value : Core.value -> string
