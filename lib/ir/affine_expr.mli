(** Affine expressions over dimension and symbol variables.

    As in MLIR, affine expressions are a built-in concept of the IR (they
    appear inside attributes via {!Affine_map}), not part of the affine
    dialect. An expression is built from dimensions [d0, d1, ...], symbols
    [s0, s1, ...], integer constants, and the operators [+], [-], [*],
    [floordiv], [mod]; multiplication and division are restricted to a
    constant right-hand side, keeping expressions affine. *)

type t =
  | Dim of int
  | Sym of int
  | Const of int
  | Add of t * t
  | Mul of t * t  (** rhs must be affine-constant after simplification *)
  | Floor_div of t * t
  | Mod of t * t

val dim : int -> t
val sym : int -> t
val const : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val floor_div : t -> t -> t
val mod_ : t -> t -> t

(** {2 Integer floor semantics}

    The concrete arithmetic shared by every evaluator of affine expressions
    (constant folding, {!eval}, the interpreter's two execution engines):
    [floordiv] rounds toward negative infinity and [floormod] returns the
    matching remainder, so [x = y * floordiv x y + floormod x y] holds for
    every non-zero divisor and [floormod x y] carries the divisor's sign
    (it lies in [[0, y)] for positive [y], [(y, 0]] for negative [y]).
    Both raise [Invalid_argument] when [y = 0]. *)

val floordiv : int -> int -> int
val floormod : int -> int -> int

(** {2 Linear (canonical) form} *)

(** The canonical form of a purely linear affine expression:
    [sum_i coeff(d_i) * d_i + sum_j coeff(s_j) * s_j + const].
    Expressions containing [floordiv] or [mod] have no linear form. *)
type linear = {
  dim_coeffs : (int * int) list;  (** (dim index, coefficient), coeff <> 0 *)
  sym_coeffs : (int * int) list;  (** (sym index, coefficient), coeff <> 0 *)
  constant : int;
}

(** [linearize e] computes the linear form, or [None] if [e] is not purely
    linear (contains floordiv/mod) or multiplies two non-constant terms. *)
val linearize : t -> linear option

(** [of_linear l] rebuilds a simplified expression from a linear form. *)
val of_linear : linear -> t

(** [simplify e] canonicalizes: folds constants, flattens sums, and orders
    terms by variable index when [e] is purely linear; otherwise simplifies
    sub-expressions recursively. *)
val simplify : t -> t

(** {2 Queries} *)

(** [eval ~dims ~syms e] evaluates with the given variable bindings.
    Raises [Invalid_argument] on out-of-range indices. *)
val eval : dims:int array -> syms:int array -> t -> int

(** [compile e] stages evaluation: the expression tree is resolved to
    nested closures (with flat fast paths for linear shapes) once, and the
    returned function evaluates it against a dimension vector with no tree
    walk and no allocation. Symbols are rejected at compile time. *)
val compile : t -> int array -> int

(** [is_constant e] returns the constant value if [e] simplifies to one. *)
val is_constant : t -> int option

(** [is_single_dim e] returns [(k, d, c)] when [e] is [k*d_d + c] with
    [k <> 0] — the shape the paper's access placeholders match. *)
val is_single_dim : t -> (int * int * int) option

(** [used_dims e] is the sorted list of dimension indices occurring in [e]. *)
val used_dims : t -> int list

(** [max_dim e] is [1 + ] the largest dimension index in [e], or [0]. *)
val max_dim : t -> int

(** [substitute_dims f e] replaces every [Dim i] with [f i]. *)
val substitute_dims : (int -> t) -> t -> t

(** Semantic equality up to {!simplify}, computed by a monomorphic
    structural walk with a physical ([==]) fast path — interned canonical
    nodes (see {!intern}) compare in O(1). *)
val equal : t -> t -> bool

(** Total order consistent with {!equal}; monomorphic. *)
val compare : t -> t -> int

(** [intern e] hash-conses [e] bottom-up into canonical nodes (canonical
    nodes only reference canonical nodes). [Affine_map.make] interns every
    result expression, so all maps stored in the IR carry canonical
    expressions. Domain-safe (see {!Support.Intern}). *)
val intern : t -> t

val interner_stats : unit -> Support.Intern.stats
val pp : Format.formatter -> t -> unit
val to_string : t -> string
