module J = Support.Json

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type t = { d_id : int; d_name : string; d_kind : kind; d_help : string }

let bucket_count = 64

(* ---------------------------------------------------------------------- *)
(* Registry: process-global, write-once descriptors behind one mutex.
   Mirrors [Dialect.register_once]: mutation is mutex-serialized, handles
   are immutable once published. *)

let registry_mutex = Mutex.create ()
let by_name : (string, t) Hashtbl.t = Hashtbl.create 64

(* Newest-first; reversed (registration order) where it matters. *)
let descriptors : t list ref = ref []
let next_id = ref 0

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let register kind ?(help = "") name =
  locked (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some d ->
          if d.d_kind <> kind then
            Support.Diag.errorf "metric %s already registered as a %s" name
              (kind_name d.d_kind);
          d
      | None ->
          let d =
            { d_id = !next_id; d_name = name; d_kind = kind; d_help = help }
          in
          incr next_id;
          Hashtbl.add by_name name d;
          descriptors := d :: !descriptors;
          d)

let counter ?help name = register Counter ?help name
let gauge ?help name = register Gauge ?help name
let histogram ?help name = register Histogram ?help name

(* ---------------------------------------------------------------------- *)
(* Per-domain shards.  A shard is an id-indexed cell array owned by one
   domain; updates never synchronize.  Shards register themselves in
   [shards] at creation so [snapshot] can see every domain's cells even
   after the owning domain has been joined. *)

type hist_cell = {
  mutable hc_count : int;
  mutable hc_sum : float;
  hc_buckets : int array;
}

type cell =
  | C_empty
  | C_counter of int ref
  | C_gauge of float option ref
  | C_hist of hist_cell

type shard = { mutable cells : cell array }

let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { cells = Array.make 16 C_empty } in
      locked (fun () -> shards := s :: !shards);
      s)

let fresh_cell = function
  | Counter -> C_counter (ref 0)
  | Gauge -> C_gauge (ref None)
  | Histogram ->
      C_hist { hc_count = 0; hc_sum = 0.; hc_buckets = Array.make bucket_count 0 }

let cell_of d =
  let s = Domain.DLS.get shard_key in
  let n = Array.length s.cells in
  if d.d_id >= n then begin
    let grown = Array.make (max (d.d_id + 1) (2 * n)) C_empty in
    Array.blit s.cells 0 grown 0 n;
    s.cells <- grown
  end;
  match s.cells.(d.d_id) with
  | C_empty ->
      let c = fresh_cell d.d_kind in
      s.cells.(d.d_id) <- c;
      c
  | c -> c

(* ---------------------------------------------------------------------- *)
(* Enablement: the disabled path is one [Atomic.get] and a conditional,
   matching the disabled [Trace] sink-stack budget. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ---------------------------------------------------------------------- *)
(* Bucketing: log2 over nanoseconds via [frexp].  For finite ns >= 1,
   [frexp ns = (m, e)] with m in [0.5, 1) puts ns in [2^(e-1), 2^e), which
   is exactly bucket [e]. *)

let bucket_of_seconds v =
  let ns = v *. 1e9 in
  if Float.is_nan ns || ns < 1.0 then 0
  else if ns = Float.infinity then bucket_count - 1
  else
    let _, e = Float.frexp ns in
    if e >= bucket_count then bucket_count - 1 else e

let bucket_upper_seconds i =
  if i >= bucket_count - 1 then Float.infinity else Float.ldexp 1e-9 i

(* ---------------------------------------------------------------------- *)
(* Updates *)

let add d n =
  if Atomic.get enabled_flag then
    match cell_of d with
    | C_counter r -> r := !r + n
    | _ -> Support.Diag.errorf "metric %s is not a counter" d.d_name

let incr d = add d 1

let set d v =
  if Atomic.get enabled_flag && Float.is_finite v then
    match cell_of d with
    | C_gauge r -> r := Some v
    | _ -> Support.Diag.errorf "metric %s is not a gauge" d.d_name

let observe d v =
  if Atomic.get enabled_flag then
    match cell_of d with
    | C_hist h ->
        h.hc_count <- h.hc_count + 1;
        if Float.is_finite v then h.hc_sum <- h.hc_sum +. v;
        let b = bucket_of_seconds v in
        h.hc_buckets.(b) <- h.hc_buckets.(b) + 1
    | _ -> Support.Diag.errorf "metric %s is not a histogram" d.d_name

let time d f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe d (Unix.gettimeofday () -. t0)) f
  end

(* ---------------------------------------------------------------------- *)
(* Snapshots *)

type histogram_snapshot = { h_count : int; h_sum : float; h_buckets : int array }

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of histogram_snapshot

type sample = { s_metric : string; s_help : string; s_value : value }

let zero_value = function
  | Counter -> V_counter 0
  | Gauge -> V_gauge 0.
  | Histogram ->
      V_histogram
        { h_count = 0; h_sum = 0.; h_buckets = Array.make bucket_count 0 }

let merge_cell kind acc cell =
  match (kind, acc, cell) with
  | _, acc, C_empty -> acc
  | Counter, V_counter a, C_counter r -> V_counter (a + !r)
  | Gauge, V_gauge a, C_gauge { contents = Some v } ->
      V_gauge (Float.max a v)
  | Gauge, (V_gauge _ as a), C_gauge { contents = None } -> a
  | Histogram, V_histogram a, C_hist h ->
      V_histogram
        {
          h_count = a.h_count + h.hc_count;
          h_sum = a.h_sum +. h.hc_sum;
          h_buckets = Array.map2 ( + ) a.h_buckets h.hc_buckets;
        }
  | _ ->
      (* Unreachable: a cell is only ever created through its
         descriptor, whose kind is write-once. *)
      assert false

let snapshot () =
  let descs, shard_list =
    locked (fun () -> (List.rev !descriptors, !shards))
  in
  descs
  |> List.map (fun d ->
         let v =
           List.fold_left
             (fun acc s ->
               if d.d_id < Array.length s.cells then
                 merge_cell d.d_kind acc s.cells.(d.d_id)
               else acc)
             (zero_value d.d_kind) shard_list
         in
         { s_metric = d.d_name; s_help = d.d_help; s_value = v })
  |> List.sort (fun a b -> String.compare a.s_metric b.s_metric)

let merge_values name a b =
  match (a, b) with
  | V_counter x, V_counter y -> V_counter (x + y)
  | V_gauge x, V_gauge y -> V_gauge (Float.max x y)
  | V_histogram x, V_histogram y ->
      V_histogram
        {
          h_count = x.h_count + y.h_count;
          h_sum = x.h_sum +. y.h_sum;
          h_buckets = Array.map2 ( + ) x.h_buckets y.h_buckets;
        }
  | _ -> Support.Diag.errorf "metric %s: cannot merge samples of different kinds" name

let merge_samples a b =
  let tbl = Hashtbl.create 64 in
  let names = ref [] in
  let feed s =
    match Hashtbl.find_opt tbl s.s_metric with
    | None ->
        Hashtbl.add tbl s.s_metric s;
        names := s.s_metric :: !names
    | Some prev ->
        Hashtbl.replace tbl s.s_metric
          {
            prev with
            s_value = merge_values s.s_metric prev.s_value s.s_value;
            s_help = (if prev.s_help = "" then s.s_help else prev.s_help);
          }
  in
  List.iter feed a;
  List.iter feed b;
  !names
  |> List.sort String.compare
  |> List.map (Hashtbl.find tbl)

(* ---------------------------------------------------------------------- *)
(* JSON exposition *)

let kind_of_value = function
  | V_counter _ -> Counter
  | V_gauge _ -> Gauge
  | V_histogram _ -> Histogram

(* Only non-empty buckets are listed; the overflow bucket's bound is the
   string "+Inf" because the strict writer rejects non-finite numbers. *)
let histogram_fields h =
  let buckets =
    Array.to_list h.h_buckets
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) ->
           let le =
             if i = bucket_count - 1 then J.Str "+Inf"
             else J.Num (bucket_upper_seconds i)
           in
           J.Obj [ ("le", le); ("count", J.num_int n) ])
  in
  [
    ("count", J.num_int h.h_count);
    ("sum", J.Num h.h_sum);
    ("buckets", J.List buckets);
  ]

let histogram_snapshot_json h = J.Obj (histogram_fields h)

let sample_json s =
  let base =
    [ ("name", J.Str s.s_metric); ("type", J.Str (kind_name (kind_of_value s.s_value))) ]
  in
  let help = if s.s_help = "" then [] else [ ("help", J.Str s.s_help) ] in
  let payload =
    match s.s_value with
    | V_counter n -> [ ("value", J.num_int n) ]
    | V_gauge v -> [ ("value", J.Num v) ]
    | V_histogram h -> histogram_fields h
  in
  J.Obj (base @ help @ payload)

let to_json_value ?run_meta samples =
  let meta = match run_meta with Some m -> [ ("run_meta", m) ] | None -> [] in
  J.Obj (meta @ [ ("metrics", J.List (List.map sample_json samples)) ])

let to_json ?run_meta samples = J.to_string (to_json_value ?run_meta samples)

(* ---------------------------------------------------------------------- *)
(* Prometheus/OpenMetrics text exposition *)

let mangle name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let prom_float v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus samples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      let name = mangle s.s_metric in
      if s.s_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name s.s_help);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name
           (kind_name (kind_of_value s.s_value)));
      (match s.s_value with
      | V_counter n -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name n)
      | V_gauge v ->
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (prom_float v))
      | V_histogram h ->
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              (* Cumulative rows only where the histogram has mass (plus
                 the mandatory +Inf row) keeps 64-bucket output short. *)
              if n > 0 || i = bucket_count - 1 then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                     (prom_float (bucket_upper_seconds i))
                     !cum))
            h.h_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name (prom_float h.h_sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.h_count)))
    samples;
  Buffer.contents buf

let write ~path samples =
  let text =
    if Filename.check_suffix path ".prom" || Filename.check_suffix path ".txt"
    then to_prometheus samples
    else to_json ~run_meta:(Support.Run_meta.json ()) samples ^ "\n"
  in
  Support.Atomic_io.write_file ~path text

(* ---------------------------------------------------------------------- *)
(* Reader (trace_stats, tests) *)

let parse_sample j =
  let ( let* ) = Result.bind in
  let str k =
    match J.member k j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "sample missing string %S" k)
  in
  let int k =
    match Option.bind (J.member k j) J.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "sample missing integer %S" k)
  in
  let* name = str "name" in
  let* ty = str "type" in
  let help =
    match J.member "help" j with Some (J.Str h) -> h | _ -> ""
  in
  let* value =
    match ty with
    | "counter" ->
        let* n = int "value" in
        Ok (V_counter n)
    | "gauge" -> (
        match J.member "value" j with
        | Some (J.Num v) -> Ok (V_gauge v)
        | _ -> Error (Printf.sprintf "gauge %s missing numeric value" name))
    | "histogram" ->
        let* count = int "count" in
        let* sum =
          match J.member "sum" j with
          | Some (J.Num v) -> Ok v
          | _ -> Error (Printf.sprintf "histogram %s missing sum" name)
        in
        let buckets = Array.make bucket_count 0 in
        let* () =
          match J.member "buckets" j with
          | Some (J.List rows) ->
              List.fold_left
                (fun acc row ->
                  let* () = acc in
                  let* n =
                    match Option.bind (J.member "count" row) J.to_int with
                    | Some n -> Ok n
                    | None ->
                        Error
                          (Printf.sprintf "histogram %s: bucket without count"
                             name)
                  in
                  let* i =
                    match J.member "le" row with
                    | Some (J.Str "+Inf") -> Ok (bucket_count - 1)
                    (* [le] is bucket [i]'s exclusive upper bound, and
                       an exact power of two *opens* the next bucket in
                       [bucket_of_seconds] — step back one. *)
                    | Some (J.Num le) ->
                        Ok (max 0 (bucket_of_seconds le - 1))
                    | _ ->
                        Error
                          (Printf.sprintf "histogram %s: bucket without le"
                             name)
                  in
                  buckets.(i) <- buckets.(i) + n;
                  Ok ())
                (Ok ()) rows
          | _ -> Error (Printf.sprintf "histogram %s missing buckets" name)
        in
        Ok (V_histogram { h_count = count; h_sum = sum; h_buckets = buckets })
    | other -> Error (Printf.sprintf "sample %s: unknown type %S" name other)
  in
  Ok { s_metric = name; s_help = help; s_value = value }

let parse_json j =
  match J.member "metrics" j with
  | Some (J.List items) ->
      List.fold_left
        (fun acc item ->
          Result.bind acc (fun rev ->
              Result.map (fun s -> s :: rev) (parse_sample item)))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "document has no \"metrics\" array"

(* ---------------------------------------------------------------------- *)
(* Intern-table bridge (satellite: export Support.Intern stats) *)

let record_intern_stats () =
  if Atomic.get enabled_flag then
    List.iter
      (fun (table, stats) ->
        let (s : Support.Intern.stats) = stats () in
        let g suffix v =
          set
            (gauge (Printf.sprintf "mlt_intern_%s_%s" table suffix))
            (float_of_int v)
        in
        g "size" s.size;
        g "hits" s.hits;
        g "misses" s.misses)
      [
        ("typ", Typ.interner_stats);
        ("attr", Attr.interner_stats);
        ("affine_expr", Affine_expr.interner_stats);
        ("affine_map", Affine_map.interner_stats);
      ]

(* ---------------------------------------------------------------------- *)
(* Test support *)

let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.iter
            (function
              | C_empty -> ()
              | C_counter r -> r := 0
              | C_gauge r -> r := None
              | C_hist h ->
                  h.hc_count <- 0;
                  h.hc_sum <- 0.;
                  Array.fill h.hc_buckets 0 bucket_count 0)
            s.cells)
        !shards)
