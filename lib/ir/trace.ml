type arg =
  | A_str of string
  | A_int of int
  | A_float of float
  | A_bool of bool

type phase = Begin | End | Instant

type event = {
  ev_ts : float;
  ev_cat : string;
  ev_name : string;
  ev_phase : phase;
  ev_args : (string * arg) list;
}

type sink = event -> unit

(* Installed sinks, newest first, each keyed by a handle so [uninstall] is
   order-independent. The stack is domain-local (Domain.DLS): a sink
   installed by one compilation never observes events from a concurrent
   compilation on another domain, and installing/uninstalling never
   races. Handles are drawn from one atomic counter so they stay unique
   process-wide. The hot path is "no sinks installed": [emit] reads the
   domain-local slot and returns, so tracing costs nothing when
   disabled. *)
let sinks_key : (int * sink) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let next_handle = Atomic.make 0

type handle = int

let install sink =
  let h = 1 + Atomic.fetch_and_add next_handle 1 in
  Domain.DLS.set sinks_key ((h, sink) :: Domain.DLS.get sinks_key);
  h

let uninstall h =
  Domain.DLS.set sinks_key
    (List.filter (fun (h', _) -> h' <> h) (Domain.DLS.get sinks_key))

let with_sink sink f =
  let h = install sink in
  Fun.protect ~finally:(fun () -> uninstall h) f

let enabled () = Domain.DLS.get sinks_key <> []

let installed_count () = List.length (Domain.DLS.get sinks_key)

let dispatch sinks ev = List.iter (fun (_, sink) -> sink ev) sinks

let now () = Unix.gettimeofday ()

let emit ?(args = []) ~cat ~phase name =
  match Domain.DLS.get sinks_key with
  | [] -> ()
  | sinks ->
      dispatch sinks
        { ev_ts = now (); ev_cat = cat; ev_name = name; ev_phase = phase;
          ev_args = args }

let instant ?args ~cat name = emit ?args ~cat ~phase:Instant name
let begin_ ?args ~cat name = emit ?args ~cat ~phase:Begin name
let end_ ?args ~cat name = emit ?args ~cat ~phase:End name

(* [span] takes the end args lazily: they usually summarize what the body
   did (op counts, applications) and only exist once it has run. *)
let span ?args ?(end_args = fun () -> []) ~cat name f =
  if not (enabled ()) then f ()
  else begin
    begin_ ?args ~cat name;
    Fun.protect ~finally:(fun () -> end_ ~args:(end_args ()) ~cat name) f
  end

module Memory = struct
  type t = {
    capacity : int;
    buf : event Queue.t;
    mutable dropped : int;
    mutable handle : handle;
  }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Trace.Memory.create: capacity <= 0";
    let buf = Queue.create () in
    let t = { capacity; buf; dropped = 0; handle = 0 } in
    let sink ev =
      if Queue.length buf >= capacity then begin
        ignore (Queue.pop buf);
        t.dropped <- t.dropped + 1
      end;
      Queue.push ev buf
    in
    t.handle <- install sink;
    t

  let events t = List.of_seq (Queue.to_seq t.buf)
  let dropped t = t.dropped

  let clear t =
    Queue.clear t.buf;
    t.dropped <- 0

  let detach t = uninstall t.handle
end

(* ---- Chrome trace-event exporter ---------------------------------------- *)

(* Events stream into a buffer as they happen, so the exporter formats
   them by hand — but through the shared escaping, so its strings can
   never diverge from the Support.Json writer's. *)
let json_escape = Support.Json.escape_string

let arg_json = function
  | A_str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | A_int i -> string_of_int i
  | A_float f -> Printf.sprintf "%.17g" f
  | A_bool b -> if b then "true" else "false"

let phase_code = function Begin -> "B" | End -> "E" | Instant -> "i"

let event_json ~t0 ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":1"
       (json_escape ev.ev_name) (json_escape ev.ev_cat)
       (phase_code ev.ev_phase)
       ((ev.ev_ts -. t0) *. 1e6));
  if ev.ev_phase = Instant then Buffer.add_string buf ",\"s\":\"t\"";
  if ev.ev_args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":%s" (json_escape k) (arg_json v)))
      ev.ev_args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

module Chrome = struct
  type t = {
    buf : Buffer.t;
    t0 : float;
    mutable count : int;
    mutable handle : handle;
  }

  let create () =
    let buf = Buffer.create 4096 in
    let t0 = now () in
    let t = { buf; t0; count = 0; handle = 0 } in
    let sink ev =
      if t.count > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json ~t0 ev);
      t.count <- t.count + 1
    in
    t.handle <- install sink;
    t

  let count t = t.count

  let contents t =
    Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
      (Buffer.contents t.buf)

  (* Atomic commit: an exception (or kill) mid-export leaves either no
     trace file or the previous complete one — never a torn JSON that a
     viewer chokes on — and never leaks the channel. *)
  let write t path = Support.Atomic_io.write_file ~path (contents t)

  let detach t = uninstall t.handle
end
