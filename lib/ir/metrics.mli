(** Domain-safe runtime metrics: counters, gauges, and log-bucketed
    latency histograms.

    The registry follows the repo's domain-confinement discipline
    (docs/CONCURRENCY.md): metric {e descriptors} are process-global and
    write-once (registering the same name twice returns the same
    handle), while the {e cells} they update live in per-domain
    [Domain.DLS] shards — an update never takes a lock and never
    contends with another domain. {!snapshot} merges every domain's
    shard with the same associative, order-deterministic discipline as
    {!Pass.merge_summaries}: counters and histogram buckets sum, gauges
    take the maximum, and samples are sorted by metric name, so the
    merged result is independent of the domain count and of shard
    enumeration order.

    Metrics are {e disabled by default}: every update is a single
    [Atomic.get] and return, the same hot-path budget as the disabled
    {!Trace} sink stack (<50ns/call, asserted by [bench -- patterns]).
    The [--metrics=FILE] flag on mlt-opt/mlt-sim/mlt-batch/bench enables
    collection for the run and exports the snapshot on exit — as strict
    {!Support.Json}, or as Prometheus/OpenMetrics text when [FILE] ends
    in [.prom] or [.txt] (schema in docs/OBSERVABILITY.md). *)

type kind = Counter | Gauge | Histogram

(** A metric handle: cheap to store in a module-level [let]; the
    registration cost (a mutex + hashtable probe) is paid once. *)
type t

(** [counter name] registers (or finds) the counter [name].
    Raises {!Support.Diag.Error} if [name] is already registered with a
    different kind. Names should be Prometheus-compatible
    ([[a-zA-Z_][a-zA-Z0-9_]*]); the text exposition mangles anything
    else. *)
val counter : ?help:string -> string -> t

val gauge : ?help:string -> string -> t

(** Log-bucketed latency histogram over seconds: bucket 0 holds
    observations under 1ns (and non-positive values), bucket [i] holds
    [[2^(i-1), 2^i)] nanoseconds, and bucket 63 everything at or above
    [2^62] ns. Exact powers of two land in the bucket they lower-bound
    (pinned by test/test_metrics.ml). *)
val histogram : ?help:string -> string -> t

(** {2 Updates — no-ops (one atomic read) while disabled} *)

val incr : t -> unit
val add : t -> int -> unit

(** [set g v] — gauge assignment (last write on this domain wins;
    cross-domain merge takes the max). *)
val set : t -> float -> unit

(** [observe h seconds] — record one latency observation. *)
val observe : t -> float -> unit

(** [time h f] — run [f ()] and observe its wall-clock duration
    (observed even when [f] raises). When disabled this is exactly
    [f ()] — no clock is read. *)
val time : t -> (unit -> 'a) -> 'a

(** {2 Enablement} *)

val enabled : unit -> bool

(** Process-wide switch (an [Atomic.t] flag — any domain may flip it,
    all domains observe it). The CLI turns it on when [--metrics] is
    given. *)
val set_enabled : bool -> unit

(** {2 Snapshots and merging} *)

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_buckets : int array;  (** always {!bucket_count} entries *)
}

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of histogram_snapshot

type sample = { s_metric : string; s_help : string; s_value : value }

val bucket_count : int

(** [bucket_of_seconds v] — the bucket index {!observe} files [v]
    under. Exposed for the boundary-edge-case tests. *)
val bucket_of_seconds : float -> int

(** Upper bound (exclusive) of bucket [i] in seconds; [infinity] for
    the overflow bucket. *)
val bucket_upper_seconds : int -> float

(** Every registered metric, merged across all domain shards, sorted by
    name. Registered-but-never-updated metrics appear with zero
    values. *)
val snapshot : unit -> sample list

(** Associative offline merge of two snapshots (same rules as the
    cross-domain merge); used by [trace_stats] to combine per-run
    metrics files. Samples with the same name must agree on kind. *)
val merge_samples : sample list -> sample list -> sample list

(** {2 Exposition} *)

(** [{"run_meta":{...},"metrics":[...]}]; each sample carries [name],
    [type], [help] (when nonempty) and its value — counters/gauges a
    [value] member, histograms [count], [sum] and a [buckets] array of
    non-empty [{"le":upper,"count":n}] rows (the overflow bucket's [le]
    is the string ["+Inf"]). *)
val to_json_value : ?run_meta:Support.Json.t -> sample list -> Support.Json.t

(** The histogram payload alone ([count]/[sum]/[buckets]) — for
    embedding a {!histogram_snapshot} in another report (the
    [--pass-stats] [tune] member). *)
val histogram_snapshot_json : histogram_snapshot -> Support.Json.t

val to_json : ?run_meta:Support.Json.t -> sample list -> string

(** Prometheus/OpenMetrics text exposition: [# HELP]/[# TYPE] comments,
    cumulative [_bucket{le="..."}] rows plus [_sum]/[_count] for
    histograms. *)
val to_prometheus : sample list -> string

(** [write ~path samples] — atomic write ({!Support.Atomic_io});
    Prometheus text when [path] ends in [.prom]/[.txt], JSON (with a
    {!Support.Run_meta} block) otherwise. *)
val write : path:string -> sample list -> unit

(** [parse_json j] — read back a metrics JSON document written by
    {!write}/{!to_json}; [Error] names the offending member. Used by
    [trace_stats] and the tests. *)
val parse_json : Support.Json.t -> (sample list, string) result

(** {2 Process-wide sources} *)

(** Record the {!Support.Intern} table statistics of the four IR
    interners (types, attributes, affine exprs/maps) as gauges
    ([mlt_intern_<table>_{size,hits,misses}]) — call just before
    exporting, so the snapshot reflects the tables' end-of-run state. *)
val record_intern_stats : unit -> unit

(** {2 Test support} *)

(** Zero every cell on every shard (descriptors stay registered). Tests
    only — concurrent updates during a reset are lost, not corrupted. *)
val reset : unit -> unit
