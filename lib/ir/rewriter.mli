(** Pattern-rewriting infrastructure: first-class rewrite-pattern
    descriptors applied greedily to a fixpoint, in the style of MLIR's
    [RewritePatternSet] / [FrozenRewritePatternSet] pair that Multi-Level
    Tactics hooks its generated tactics into.

    A pattern is no longer an opaque closure: it declares the op names it
    can match at ({!roots}), a benefit, and optionally the op names it
    generates. Freezing a pattern list ({!Frozen.of_patterns}) sorts it
    once by descending benefit and precomputes, per declared root name,
    the candidate list — so the drivers dispatch O(candidates at this op
    name) instead of O(all patterns) at every worklist visit. *)

(** Handle passed to a pattern while it rewrites; insertion happens at the
    matched op by default. *)
type ctx = {
  root : Core.op;  (** the function/module the driver runs on *)
  builder : Builder.t;  (** positioned just before the matched op *)
}

(** Where a pattern can match. [Roots names] promises the pattern only
    ever returns [true] on ops whose [o_name] is in [names] — the frozen
    index uses this to skip the pattern everywhere else. [Any] makes the
    pattern a candidate at every op (structural patterns that cannot name
    a root). Declared roots must be conservative: the apply function
    still guards on the op itself, so relaxing [Roots _] to [Any] never
    changes the result, only the number of match attempts. *)
type roots = Any | Roots of string list

(** A structural prefix: a conservative, cheaply checkable necessary
    condition for the pattern to match, declared alongside {!roots} and
    compiled by {!Frozen.of_patterns} into a decision tree shared by all
    patterns rooted at the same op name. The drivers evaluate each
    declared feature once per op visit and only run [p_apply] on the
    surviving candidates. Like roots, a prefix must over-approximate: the
    apply function still guards on the op itself, so stripping prefixes
    ({!Frozen.strip_prefixes}, {!Frozen.relax}) never changes rewriting
    results — only match-attempt counts (see docs/PERF.md). *)
type prefix

(** [prefix ?operands ?regions ?nest_depth ?nest_ignore ()] — every
    component is an {e exact} requirement on the matched op:
    - [operands]: operand count;
    - [regions]: region count;
    - [nest_depth]: length of the op's perfect nest — the chain of
      same-named ops where each link is the sole op of its parent's
      single region's single block, not counting ops whose names are in
      [nest_ignore] (the producer's terminator names, e.g.
      ["affine.yield"]). Depth [1] is a loop with a non-loop body; the
      probe mirrors [Affine.Loops.perfect_nest] exactly when
      [nest_ignore = ["affine.yield"]]. Must be [>= 1]; [nest_ignore]
      without [nest_depth] is rejected. *)
val prefix :
  ?operands:int ->
  ?regions:int ->
  ?nest_depth:int ->
  ?nest_ignore:string list ->
  unit ->
  prefix

(** Per-pattern-name counters, shared by every pattern instance
    constructed under the same name ({e domain-local}, monotonic:
    each domain accumulates its own registry — see
    {!section-stats}). *)
type stats = {
  mutable st_attempts : int;  (** [p_apply] invocations *)
  mutable st_hits : int;  (** invocations that rewrote the IR *)
  mutable st_activations : int;
      (** driver runs that had the pattern in their frozen set *)
}

type pattern = {
  p_name : string;
  p_benefit : int;  (** higher applies first *)
  p_roots : roots;
  p_prefix : prefix option;  (** structural prefix, [None] = no pruning *)
  p_generated_ops : string list;
      (** advisory: op names the rewrite may insert *)
  p_apply : ctx -> Core.op -> bool;
      (** Inspect [op]; if it matches, mutate the IR (insert replacement
          ops via [ctx.builder], erase matched ops) and return [true]. *)
}

(** [pattern ~name ?benefit ?roots ?prefix ?generated_ops apply] —
    [benefit] defaults to 1, [roots] to [Any], [prefix] to none,
    [generated_ops] to []. Counters are looked up (or created) by [name]
    in the running domain's registry, so re-compiling a pattern set keeps
    accumulating into the same per-name statistics; pattern descriptors
    themselves carry no mutable state, so a frozen set may be shared
    across domains. *)
val pattern :
  name:string ->
  ?benefit:int ->
  ?roots:roots ->
  ?prefix:prefix ->
  ?generated_ops:string list ->
  (ctx -> Core.op -> bool) ->
  pattern

(** {2 Frozen pattern sets} *)

module Frozen : sig
  (** An immutable, op-indexed view of a pattern list: built once per
      set (ideally at pass construction), reused across driver runs. *)
  type t

  (** Stable-sorts by descending benefit (ties keep registration order)
      and indexes the benefit-sorted candidate list per declared root
      name, with [Any]-rooted patterns merged into every list. Each
      bucket's declared {!type-prefix}es are additionally compiled into a
      shared decision tree (operand arity -> region arity -> nest-spine
      probes), so the drivers evaluate every structural feature at most
      once per op visit regardless of how many candidates test it. *)
  val of_patterns : pattern list -> t

  (** All patterns, benefit-sorted. *)
  val patterns : t -> pattern list

  (** [candidates t op_name] — the benefit-sorted patterns that can match
      an op named [op_name]: the indexed list for a declared root, or
      just the [Any]-rooted patterns for any other name. Prefixes are
      not consulted (this is the name-only view). *)
  val candidates : t -> string -> pattern list

  (** [candidates_for t op] — what the drivers attempt at [op]: the
      name-indexed bucket filtered through its compiled prefix tree.
      Always a (benefit-ordered) subsequence of
      [candidates t op.o_name]. *)
  val candidates_for : t -> Core.op -> pattern list

  (** [relax t] forgets every root declaration {e and} every prefix (all
      patterns become [Any]-rooted, unpruned): the unindexed-dispatch
      baseline used by the bench harness and the differential property
      tests. Rewriting behaviour is identical by the {!roots}/{!type-prefix}
      contracts; only match-attempt counts differ. *)
  val relax : t -> t

  (** [strip_prefixes t] keeps root indexing but drops every prefix —
      exactly the dispatch PR 4 shipped. The bench harness uses it to
      attribute attempt reductions to the prefix trees separately from
      root indexing. *)
  val strip_prefixes : t -> t

  (** Number of patterns in the set. *)
  val size : t -> int

  (** Root names with a precomputed candidate list (sorted). *)
  val indexed_roots : t -> string list
end

(** [freeze ps] is {!Frozen.of_patterns}[ ps]. *)
val freeze : pattern list -> Frozen.t

(** {2 Drivers}

    All drivers are observable: each run is bracketed in a {!Trace} span
    (category ["driver"]) whose End event carries the application count,
    and every pattern attempt emits an instant event (category
    ["pattern"]) when a trace sink is installed. On a successful
    application the driver stamps each op the rewrite inserted with a
    {!Core.derivation} — the pattern name plus the known source
    locations of the matched op and everything the rewrite erased — and
    propagates a source location onto location-less inserted ops, so
    raised ops answer "where did this come from?"
    ([--print-debug-locs]). A [Diag.Error] escaping a pattern body with
    no location is re-raised carrying the matched op's location. *)

(** [apply_greedily root frozen] applies the highest-benefit matching
    pattern per op to a fixpoint using a worklist: the queue is seeded
    with a post-order walk (nested ops before their nests), and each
    successful rewrite re-enqueues only the affected neighborhood —
    newly inserted ops, ops whose operands changed, the defining ops of
    an erased op's operands, and the enclosing-op chain of each (so
    nest-level raising patterns see interior changes). Each visit tries
    only [Frozen.candidates frozen op_name]. Raises after a safety bound
    of applications (diverging pattern set). Returns the number of
    successful pattern applications. *)
val apply_greedily : Core.op -> Frozen.t -> int

(** [apply_greedily_fullsweep root frozen] — the pre-worklist driver:
    full sweep from the root, restarted after every application. Same
    fixpoints as {!apply_greedily} on confluent pattern sets; kept as
    the oracle for the differential property test and for debugging
    driver regressions. *)
val apply_greedily_fullsweep : Core.op -> Frozen.t -> int

(** [apply_sweeps root frozen] applies patterns in full sweeps without
    restarting after each application, iterating sweeps to a fixpoint —
    the efficient driver for exhaustive one-way conversions (dialect
    lowerings) where each op is rewritten at most once. Returns the
    number of applications. *)
val apply_sweeps : Core.op -> Frozen.t -> int

(** {2:stats Driver statistics}

    Domain-local monotonic counters over all drivers, both in aggregate
    and per pattern name: every driver run charges the counters of the
    domain it executes on, so concurrent compilations never race and
    each domain's totals describe exactly its own work. Single-domain
    programs observe the historical process-wide behaviour unchanged.
    {!Pass.run} snapshots the counters around each pass to attribute the
    work to individual passes; multi-domain drivers merge per-domain
    results with {!Pass.merge_summaries}. *)

(** [counter_totals ()] is [(match_attempts, rewrites)] accumulated by
    the calling domain since it first ran a driver. *)
val counter_totals : unit -> int * int

(** One per-name row of {!pattern_totals}. *)
type pattern_stat = {
  ps_name : string;
  ps_attempts : int;
  ps_hits : int;
  ps_activations : int;
}

(** The calling domain's per-pattern-name totals, in first-registration
    order (registration happens at {!pattern} construction, or at first
    use for sets built on another domain). A pattern participates in a
    driver run ("activation") even if op-indexed dispatch never attempted
    it — so 0-attempt tactics still show up in the per-pass reports. *)
val pattern_totals : unit -> pattern_stat list

(** {2 Rewrite helpers} *)

(** [replace_op ctx op values] replaces all uses of [op]'s results under
    the driver root by [values] and erases [op]. *)
val replace_op : ctx -> Core.op -> Core.value list -> unit

(** [replace_op_local ctx op values] — like {!replace_op} but only
    rewrites uses within [op]'s enclosing block (including nested
    regions). Correct whenever the results cannot escape the block —
    true for scalar SSA values in this IR's structured control flow —
    and much cheaper on large functions. *)
val replace_op_local : ctx -> Core.op -> Core.value list -> unit

(** [erase_op op] — re-exported for symmetry. *)
val erase_op : Core.op -> unit
