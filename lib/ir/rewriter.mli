(** Pattern-rewriting infrastructure: declarative rewrite patterns applied
    greedily to a fixpoint, in the style of MLIR's pattern rewriter that
    Multi-Level Tactics hooks its generated tactics into. *)

(** Handle passed to a pattern while it rewrites; insertion happens at the
    matched op by default. *)
type ctx = {
  root : Core.op;  (** the function/module the driver runs on *)
  builder : Builder.t;  (** positioned just before the matched op *)
}

type pattern = {
  p_name : string;
  p_benefit : int;  (** higher applies first *)
  p_apply : ctx -> Core.op -> bool;
      (** Inspect [op]; if it matches, mutate the IR (insert replacement
          ops via [ctx.builder], erase matched ops) and return [true]. *)
}

val pattern :
  name:string -> ?benefit:int -> (ctx -> Core.op -> bool) -> pattern

(** [apply_greedily root patterns] applies the highest-benefit matching
    pattern per op to a fixpoint using a worklist: the queue is seeded
    with a post-order walk (nested ops before their nests), and each
    successful rewrite re-enqueues only the affected neighborhood —
    newly inserted ops, ops whose operands changed, the defining ops of
    an erased op's operands, and the enclosing-op chain of each (so
    nest-level raising patterns see interior changes). Raises after a
    safety bound of applications (diverging pattern set). Returns the
    number of successful pattern applications. *)
val apply_greedily : Core.op -> pattern list -> int

(** [apply_greedily_fullsweep root patterns] — the pre-worklist driver:
    full sweep from the root, restarted after every application. Same
    fixpoints as {!apply_greedily} on confluent pattern sets; kept as
    the oracle for the differential property test and for debugging
    driver regressions. *)
val apply_greedily_fullsweep : Core.op -> pattern list -> int

(** [apply_sweeps root patterns] applies patterns in full sweeps without
    restarting after each application, iterating sweeps to a fixpoint —
    the efficient driver for exhaustive one-way conversions (dialect
    lowerings) where each op is rewritten at most once. Returns the
    number of applications. *)
val apply_sweeps : Core.op -> pattern list -> int

(** {2 Driver statistics}

    Process-wide monotonic counters over both drivers: how many times a
    pattern's [p_apply] was invoked (match attempts) and how many of those
    invocations rewrote the IR. {!Pass.run} snapshots them around each
    pass to attribute the work to individual passes. *)

(** [counter_totals ()] is [(match_attempts, rewrites)] since process
    start. *)
val counter_totals : unit -> int * int

(** {2 Rewrite helpers} *)

(** [replace_op ctx op values] replaces all uses of [op]'s results under
    the driver root by [values] and erases [op]. *)
val replace_op : ctx -> Core.op -> Core.value list -> unit

(** [replace_op_local ctx op values] — like {!replace_op} but only
    rewrites uses within [op]'s enclosing block (including nested
    regions). Correct whenever the results cannot escape the block —
    true for scalar SSA values in this IR's structured control flow —
    and much cheaper on large functions. *)
val replace_op_local : ctx -> Core.op -> Core.value list -> unit

(** [erase_op op] — re-exported for symmetry. *)
val erase_op : Core.op -> unit
