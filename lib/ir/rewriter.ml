type ctx = { root : Core.op; builder : Builder.t }

type roots = Any | Roots of string list

type stats = {
  mutable st_attempts : int;
  mutable st_hits : int;
  mutable st_activations : int;
}

type pattern = {
  p_name : string;
  p_benefit : int;
  p_roots : roots;
  p_generated_ops : string list;
  p_apply : ctx -> Core.op -> bool;
}

(* Counter state is domain-local (Domain.DLS): each domain accumulates
   its own registry, so concurrent compilations never race on the
   counters, and a frozen pattern set built on one domain can run on
   another — its descriptors carry no mutable state; the running domain's
   registry picks up the counts. Per-domain registries are merged at
   aggregation time (Pass.merge_summaries / the batch driver). *)
type registry = {
  by_name : (string, stats) Hashtbl.t;
  mutable order_rev : string list;  (** reverse registration order *)
  mutable match_attempts : int;
  mutable rewrites : int;
}

let registry_key : registry Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        by_name = Hashtbl.create 64;
        order_rev = [];
        match_attempts = 0;
        rewrites = 0;
      })

let registry () = Domain.DLS.get registry_key

(* Counters are keyed by pattern name so re-compiling a set (tactics are
   compiled fresh per pass construction) keeps accumulating into the same
   row; registration order is preserved for the reports. *)
let stats_for name =
  let reg = registry () in
  match Hashtbl.find_opt reg.by_name name with
  | Some s -> s
  | None ->
      let s = { st_attempts = 0; st_hits = 0; st_activations = 0 } in
      Hashtbl.replace reg.by_name name s;
      reg.order_rev <- name :: reg.order_rev;
      s

type pattern_stat = {
  ps_name : string;
  ps_attempts : int;
  ps_hits : int;
  ps_activations : int;
}

let pattern_totals () =
  let reg = registry () in
  List.rev_map
    (fun name ->
      let s = Hashtbl.find reg.by_name name in
      {
        ps_name = name;
        ps_attempts = s.st_attempts;
        ps_hits = s.st_hits;
        ps_activations = s.st_activations;
      })
    reg.order_rev

let pattern ~name ?(benefit = 1) ?(roots = Any) ?(generated_ops = []) apply =
  (* Register the name now so report rows appear in registration order on
     the constructing domain, even for patterns dispatch never attempts. *)
  ignore (stats_for name : stats);
  {
    p_name = name;
    p_benefit = benefit;
    p_roots = roots;
    p_generated_ops = generated_ops;
    p_apply = apply;
  }

let max_iterations = 10_000

(* Domain-local driver counters. The pass manager snapshots them around
   each pass run to attribute match/rewrite work to individual passes. *)
let counter_totals () =
  let reg = registry () in
  (reg.match_attempts, reg.rewrites)

(* Provenance: cap how many distinct source locations a derivation
   records — a consumed loop nest contributes a handful, and unbounded
   chains would bloat ops rewritten many times. *)
let max_src_locs = 8

(* [reg] and [pstats] are resolved once per driver run (see [resolve]
   below), not per attempt: with millions of attempts per compile, a
   DLS fetch plus a per-name Hashtbl lookup here would be a measurable
   per-attempt tax on the hottest path in the rewriter. *)
let try_apply reg pstats p ctx op =
  reg.match_attempts <- reg.match_attempts + 1;
  pstats.st_attempts <- pstats.st_attempts + 1;
  (* Observe the attempt through the listener stack: ops the rewrite
     inserts get stamped with a derivation on success, and ops it erases
     contribute their known source locations (walking the subtree at
     erase time, while it is still intact). *)
  let inserted_rev = ref [] in
  let inserted_ids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let src_locs_rev =
    ref (if Support.Loc.is_known op.Core.o_loc then [ op.Core.o_loc ] else [])
  in
  let note_src_loc l =
    if
      Support.Loc.is_known l
      && List.length !src_locs_rev < max_src_locs
      && not (List.exists (Support.Loc.equal l) !src_locs_rev)
    then src_locs_rev := l :: !src_locs_rev
  in
  let listener =
    {
      Core.on_op_inserted =
        (fun o ->
          if not (Hashtbl.mem inserted_ids o.Core.o_id) then begin
            Hashtbl.replace inserted_ids o.Core.o_id ();
            inserted_rev := o :: !inserted_rev
          end);
      on_op_erased =
        (fun erased ->
          Core.walk erased (fun o ->
              if not (Hashtbl.mem inserted_ids o.Core.o_id) then
                note_src_loc o.Core.o_loc));
      on_operand_update = ignore;
    }
  in
  let applied =
    try Core.with_listener listener (fun () -> p.p_apply ctx op) with
    | Support.Diag.Error (loc, msg)
      when (not (Support.Loc.is_known loc))
           && Support.Loc.is_known op.Core.o_loc ->
        (* Attribute location-less mid-rewrite failures to the matched op. *)
        raise (Support.Diag.Error (op.Core.o_loc, msg))
  in
  if applied then begin
    reg.rewrites <- reg.rewrites + 1;
    pstats.st_hits <- pstats.st_hits + 1;
    let srcs = List.rev !src_locs_rev in
    let dv = { Core.dv_pattern = p.p_name; dv_locs = srcs } in
    List.iter
      (fun o ->
        if o.Core.o_parent != None then begin
          Core.add_derivation o dv;
          if not (Support.Loc.is_known o.Core.o_loc) then
            match srcs with l :: _ -> Core.set_loc o l | [] -> ()
        end)
      (List.rev !inserted_rev)
  end;
  if Trace.enabled () then begin
    let args =
      [
        ("op", Trace.A_str op.Core.o_name);
        ("hit", Trace.A_bool applied);
      ]
    in
    let args =
      if Support.Loc.is_known op.Core.o_loc then
        args @ [ ("loc", Trace.A_str (Support.Loc.to_string op.Core.o_loc)) ]
      else args
    in
    Trace.instant ~cat:"pattern" ~args p.p_name
  end;
  if applied && Remark.enabled () then
    Remark.remark ~loc:op.Core.o_loc ~pattern:p.p_name Remark.Applied
      "rewrote %s" op.Core.o_name;
  applied

(* Stable: equal-benefit patterns keep their registration order, which is
   what makes greedy application deterministic across driver variants. *)
let sort_by_benefit patterns =
  List.stable_sort (fun a b -> compare b.p_benefit a.p_benefit) patterns

module Frozen = struct
  type t = {
    f_patterns : pattern list;  (** benefit-sorted *)
    f_index : (string, pattern list) Hashtbl.t;
        (** root name -> benefit-sorted candidates (Any merged in) *)
    f_any : pattern list;  (** fallback for names with no declared root *)
  }

  let of_patterns ps =
    let sorted = sort_by_benefit ps in
    let is_any p = match p.p_roots with Any -> true | Roots _ -> false in
    let any = List.filter is_any sorted in
    let root_names =
      List.concat_map
        (fun p -> match p.p_roots with Any -> [] | Roots names -> names)
        sorted
      |> List.sort_uniq String.compare
    in
    let index = Hashtbl.create (List.length root_names * 2) in
    List.iter
      (fun name ->
        (* Filtering the globally sorted list preserves benefit order and
           registration-order tie-breaking inside each candidate list. *)
        let candidates =
          List.filter
            (fun p ->
              match p.p_roots with
              | Any -> true
              | Roots names -> List.mem name names)
            sorted
        in
        Hashtbl.replace index name candidates)
      root_names;
    { f_patterns = sorted; f_index = index; f_any = any }

  let patterns t = t.f_patterns

  let candidates t op_name =
    match Hashtbl.find_opt t.f_index op_name with
    | Some l -> l
    | None -> t.f_any

  let relax t = of_patterns (List.map (fun p -> { p with p_roots = Any }) t.f_patterns)

  let size t = List.length t.f_patterns

  let indexed_roots t =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.f_index []
    |> List.sort String.compare
end

let freeze = Frozen.of_patterns

(* A frozen set viewed through the running domain's registry: each
   candidate pattern is paired with its stats row, resolved once per
   driver run. Frozen sets stay immutable and shareable across domains;
   this per-run view is what keeps the per-attempt path free of DLS
   fetches and per-name lookups. *)
type resolved = {
  rs_reg : registry;
  rs_index : (string, (pattern * stats) list) Hashtbl.t;
  rs_any : (pattern * stats) list;
}

let resolve (fz : Frozen.t) =
  let reg = registry () in
  let attach ps = List.map (fun p -> (p, stats_for p.p_name)) ps in
  let index = Hashtbl.create (Hashtbl.length fz.Frozen.f_index * 2) in
  Hashtbl.iter
    (fun name ps -> Hashtbl.replace index name (attach ps))
    fz.Frozen.f_index;
  { rs_reg = reg; rs_index = index; rs_any = attach fz.Frozen.f_any }

let resolved_candidates rs op_name =
  match Hashtbl.find_opt rs.rs_index op_name with
  | Some l -> l
  | None -> rs.rs_any

(* Every pattern of the set participates in the driver run, whether or not
   dispatch ever attempts it — the per-pass reports list them all. *)
let activate (fz : Frozen.t) =
  List.iter
    (fun p ->
      let s = stats_for p.p_name in
      s.st_activations <- s.st_activations + 1)
    (Frozen.patterns fz)

(* Bracket a driver run in a trace span whose End event carries the
   application count. *)
let with_driver_span name fz f =
  if not (Trace.enabled ()) then f ()
  else begin
    Trace.begin_ ~cat:"driver"
      ~args:[ ("patterns", Trace.A_int (Frozen.size fz)) ]
      name;
    match f () with
    | n ->
        Trace.end_ ~cat:"driver"
          ~args:[ ("applications", Trace.A_int n) ]
          name;
        n
    | exception e ->
        Trace.end_ ~cat:"driver" name;
        raise e
  end

let apply_greedily root frozen =
  with_driver_span "greedy-worklist" frozen @@ fun () ->
  activate frozen;
  let rs = resolve frozen in
  (* LIFO worklist. Seeded post-order and popped from the top, the
     outermost ops come off first: a nest-consuming raising pattern fires
     on the outer loop before the driver wastes matcher work on the
     interior ops it is about to erase (erased entries are skipped on
     pop). Ops enqueued by a rewrite are processed before older entries,
     so fold cascades complete locally. *)
  let stack = ref [] in
  let pending : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let enqueue op =
    if op != root && not (Hashtbl.mem pending op.Core.o_id) then begin
      Hashtbl.replace pending op.Core.o_id ();
      stack := op :: !stack
    end
  in
  (* Enqueue an op together with its enclosing chain up to the root:
     raising patterns match on an outer loop nest whose interior just
     changed, so a mutation inside a region must revisit the ancestors. *)
  let rec enqueue_up op =
    enqueue op;
    match Core.parent_op op with
    | Some p when p != root -> enqueue_up p
    | _ -> ()
  in
  let listener =
    {
      Core.on_op_inserted = enqueue_up;
      on_operand_update = enqueue_up;
      on_op_erased =
        (fun op ->
          (* The erased op's operands may have become dead. *)
          Array.iter
            (fun v ->
              match Core.defining_op v with
              | Some d -> enqueue d
              | None -> ())
            op.Core.o_operands;
          match Core.parent_op op with
          | Some p when p != root -> enqueue_up p
          | _ -> ());
    }
  in
  (* Seed post-order so nested ops rewrite before the nests that contain
     them — the order progressive raising wants. *)
  Core.walk_post root (fun op -> if op != root then enqueue op);
  let applications = ref 0 in
  Core.with_listener listener (fun () ->
      while !stack <> [] do
        let op = List.hd !stack in
        stack := List.tl !stack;
        Hashtbl.remove pending op.Core.o_id;
        if op != root && Core.is_under ~root op then begin
          let rec try_patterns = function
            | [] -> ()
            | (p, pstats) :: rest ->
                if op.Core.o_parent == None then ()
                else
                  let ctx = { root; builder = Builder.before op } in
                  if try_apply rs.rs_reg pstats p ctx op then begin
                    incr applications;
                    if !applications > max_iterations then
                      Support.Diag.errorf
                        "rewriter: no fixpoint after %d rewrites (diverging \
                         pattern set?)"
                        max_iterations;
                    (* A successful rewrite may enable another pattern on
                       the same op (if it survived). *)
                    if Core.is_under ~root op then enqueue op
                  end
                  else try_patterns rest
          in
          try_patterns (resolved_candidates rs op.Core.o_name)
        end
      done);
  !applications

(* The pre-worklist driver: full sweep from the root restarted after every
   application. Kept as the differential-testing oracle for the worklist
   driver (see test/test_random.ml). *)
let apply_greedily_fullsweep root frozen =
  with_driver_span "greedy-fullsweep" frozen @@ fun () ->
  activate frozen;
  let rs = resolve frozen in
  let applications = ref 0 in
  let progress = ref true in
  let iterations = ref 0 in
  while !progress do
    incr iterations;
    if !iterations > max_iterations then
      Support.Diag.errorf
        "rewriter: no fixpoint after %d sweeps (diverging pattern set?)"
        max_iterations;
    progress := false;
    (* Sweep over a snapshot; stop the sweep at the first application since
       the matched region of IR may have been heavily restructured. *)
    let exception Applied in
    (try
       Core.walk_safe root (fun op ->
           if op != root && op.Core.o_parent != None then
             List.iter
               (fun (p, pstats) ->
                 if op.Core.o_parent != None then
                   let ctx = { root; builder = Builder.before op } in
                   if try_apply rs.rs_reg pstats p ctx op then (
                     incr applications;
                     raise Applied))
               (resolved_candidates rs op.Core.o_name))
     with Applied -> progress := true)
  done;
  !applications

let apply_sweeps root frozen =
  with_driver_span "sweeps" frozen @@ fun () ->
  activate frozen;
  let rs = resolve frozen in
  let applications = ref 0 in
  let progress = ref true in
  let sweeps = ref 0 in
  while !progress do
    incr sweeps;
    if !sweeps > max_iterations then
      Support.Diag.errorf "rewriter: no fixpoint after %d sweeps"
        max_iterations;
    progress := false;
    Core.walk_safe root (fun op ->
        if op != root && op.Core.o_parent != None then
          List.iter
            (fun (p, pstats) ->
              if op.Core.o_parent != None then
                let ctx = { root; builder = Builder.before op } in
                if try_apply rs.rs_reg pstats p ctx op then begin
                  incr applications;
                  progress := true
                end)
            (resolved_candidates rs op.Core.o_name))
  done;
  !applications

let check_arity ~what op values =
  let n = Core.num_results op and m = List.length values in
  if n <> m then
    Support.Diag.errorf
      "%s: arity mismatch replacing %s (%d results, %d replacement values)"
      what op.Core.o_name n m

let replace_op ctx op values =
  check_arity ~what:"replace_op" op values;
  List.iteri
    (fun i new_v ->
      Core.replace_uses ctx.root ~old_v:(Core.result op i) ~new_v)
    values;
  Core.erase_op op

let replace_op_local ctx op values =
  ignore ctx;
  match op.Core.o_parent with
  | None -> Support.Diag.errorf "replace_op_local: op is detached"
  | Some block ->
      check_arity ~what:"replace_op_local" op values;
      List.iteri
        (fun i new_v ->
          Core.replace_uses_in_block block ~old_v:(Core.result op i) ~new_v)
        values;
      Core.erase_op op

let erase_op = Core.erase_op
