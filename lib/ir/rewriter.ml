type ctx = { root : Core.op; builder : Builder.t }

type roots = Any | Roots of string list

(* A structural prefix is a conservative, cheaply checkable necessary
   condition for a pattern to match, evaluated by the compiled dispatch
   tree (see [Frozen]) before [p_apply] is ever invoked. Like [roots],
   it must be an over-approximation: the apply function still guards on
   the op itself, so dropping the prefix never changes results — only
   match-attempt counts. *)
type prefix = {
  pre_operands : int option;  (** exact operand count *)
  pre_regions : int option;  (** exact region count *)
  pre_nest : (int * string list) option;
      (** exact perfect-nest depth (root op included) and the op names
          ignored when deciding "sole child" — sorted, deduplicated *)
}

let prefix ?operands ?regions ?nest_depth ?(nest_ignore = []) () =
  (match (nest_ignore, nest_depth) with
  | _ :: _, None ->
      invalid_arg "Rewriter.prefix: nest_ignore without nest_depth"
  | _ -> ());
  let pre_nest =
    Option.map
      (fun d ->
        if d < 1 then invalid_arg "Rewriter.prefix: nest_depth must be >= 1";
        (d, List.sort_uniq String.compare nest_ignore))
      nest_depth
  in
  { pre_operands = operands; pre_regions = regions; pre_nest }

type stats = {
  mutable st_attempts : int;
  mutable st_hits : int;
  mutable st_activations : int;
}

type pattern = {
  p_name : string;
  p_benefit : int;
  p_roots : roots;
  p_prefix : prefix option;
  p_generated_ops : string list;
  p_apply : ctx -> Core.op -> bool;
}

(* Counter state is domain-local (Domain.DLS): each domain accumulates
   its own registry, so concurrent compilations never race on the
   counters, and a frozen pattern set built on one domain can run on
   another — its descriptors carry no mutable state; the running domain's
   registry picks up the counts. Per-domain registries are merged at
   aggregation time (Pass.merge_summaries / the batch driver). *)
type registry = {
  by_name : (string, stats) Hashtbl.t;
  mutable order_rev : string list;  (** reverse registration order *)
  mutable match_attempts : int;
  mutable rewrites : int;
}

let registry_key : registry Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        by_name = Hashtbl.create 64;
        order_rev = [];
        match_attempts = 0;
        rewrites = 0;
      })

let registry () = Domain.DLS.get registry_key

(* Counters are keyed by pattern name so re-compiling a set (tactics are
   compiled fresh per pass construction) keeps accumulating into the same
   row; registration order is preserved for the reports. *)
let stats_for name =
  let reg = registry () in
  match Hashtbl.find_opt reg.by_name name with
  | Some s -> s
  | None ->
      let s = { st_attempts = 0; st_hits = 0; st_activations = 0 } in
      Hashtbl.replace reg.by_name name s;
      reg.order_rev <- name :: reg.order_rev;
      s

type pattern_stat = {
  ps_name : string;
  ps_attempts : int;
  ps_hits : int;
  ps_activations : int;
}

let pattern_totals () =
  let reg = registry () in
  List.rev_map
    (fun name ->
      let s = Hashtbl.find reg.by_name name in
      {
        ps_name = name;
        ps_attempts = s.st_attempts;
        ps_hits = s.st_hits;
        ps_activations = s.st_activations;
      })
    reg.order_rev

let pattern ~name ?(benefit = 1) ?(roots = Any) ?prefix ?(generated_ops = [])
    apply =
  (* Register the name now so report rows appear in registration order on
     the constructing domain, even for patterns dispatch never attempts. *)
  ignore (stats_for name : stats);
  {
    p_name = name;
    p_benefit = benefit;
    p_roots = roots;
    p_prefix = prefix;
    p_generated_ops = generated_ops;
    p_apply = apply;
  }

let max_iterations = 10_000

(* Domain-local driver counters. The pass manager snapshots them around
   each pass run to attribute match/rewrite work to individual passes. *)
let counter_totals () =
  let reg = registry () in
  (reg.match_attempts, reg.rewrites)

(* Provenance: cap how many distinct source locations a derivation
   records — a consumed loop nest contributes a handful, and unbounded
   chains would bloat ops rewritten many times. *)
let max_src_locs = 8

(* [reg] and [pstats] are resolved once per driver run (see [resolve]
   below), not per attempt: with millions of attempts per compile, a
   DLS fetch plus a per-name Hashtbl lookup here would be a measurable
   per-attempt tax on the hottest path in the rewriter. *)
let try_apply reg pstats p ctx op =
  reg.match_attempts <- reg.match_attempts + 1;
  pstats.st_attempts <- pstats.st_attempts + 1;
  (* Observe the attempt through the listener stack: ops the rewrite
     inserts get stamped with a derivation on success, and ops it erases
     contribute their known source locations (walking the subtree at
     erase time, while it is still intact). *)
  let inserted_rev = ref [] in
  (* Allocated on the first insertion only: the overwhelmingly common
     attempt fails without inserting anything, and this prologue runs
     once per attempt on every op a driver visits. *)
  let inserted_ids : (int, unit) Hashtbl.t option ref = ref None in
  let inserted_tbl () =
    match !inserted_ids with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        inserted_ids := Some tbl;
        tbl
  in
  let was_inserted id =
    match !inserted_ids with None -> false | Some tbl -> Hashtbl.mem tbl id
  in
  let src_locs_rev =
    ref (if Support.Loc.is_known op.Core.o_loc then [ op.Core.o_loc ] else [])
  in
  let note_src_loc l =
    if
      Support.Loc.is_known l
      && List.length !src_locs_rev < max_src_locs
      && not (List.exists (Support.Loc.equal l) !src_locs_rev)
    then src_locs_rev := l :: !src_locs_rev
  in
  let listener =
    {
      Core.on_op_inserted =
        (fun o ->
          if not (was_inserted o.Core.o_id) then begin
            Hashtbl.replace (inserted_tbl ()) o.Core.o_id ();
            inserted_rev := o :: !inserted_rev
          end);
      on_op_erased =
        (fun erased ->
          Core.walk erased (fun o ->
              if not (was_inserted o.Core.o_id) then
                note_src_loc o.Core.o_loc));
      on_operand_update = ignore;
    }
  in
  let applied =
    try Core.with_listener listener (fun () -> p.p_apply ctx op) with
    | Support.Diag.Error (loc, msg)
      when (not (Support.Loc.is_known loc))
           && Support.Loc.is_known op.Core.o_loc ->
        (* Attribute location-less mid-rewrite failures to the matched op. *)
        raise (Support.Diag.Error (op.Core.o_loc, msg))
  in
  if applied then begin
    reg.rewrites <- reg.rewrites + 1;
    pstats.st_hits <- pstats.st_hits + 1;
    let srcs = List.rev !src_locs_rev in
    let dv = { Core.dv_pattern = p.p_name; dv_locs = srcs } in
    List.iter
      (fun o ->
        if o.Core.o_parent != None then begin
          Core.add_derivation o dv;
          if not (Support.Loc.is_known o.Core.o_loc) then
            match srcs with l :: _ -> Core.set_loc o l | [] -> ()
        end)
      (List.rev !inserted_rev)
  end;
  if Trace.enabled () then begin
    let args =
      [
        ("op", Trace.A_str op.Core.o_name);
        ("hit", Trace.A_bool applied);
      ]
    in
    let args =
      if Support.Loc.is_known op.Core.o_loc then
        args @ [ ("loc", Trace.A_str (Support.Loc.to_string op.Core.o_loc)) ]
      else args
    in
    Trace.instant ~cat:"pattern" ~args p.p_name
  end;
  if applied && Remark.enabled () then
    Remark.remark ~loc:op.Core.o_loc ~pattern:p.p_name Remark.Applied
      "rewrote %s" op.Core.o_name;
  applied

(* Stable: equal-benefit patterns keep their registration order, which is
   what makes greedy application deterministic across driver variants. *)
let sort_by_benefit patterns =
  List.stable_sort (fun a b -> Int.compare b.p_benefit a.p_benefit) patterns

(* ---- compiled matcher automaton ----------------------------------------- *)

(* Each op-name bucket's declared prefixes compile into one shared decision
   tree: the driver evaluates every structural feature at most once per op
   visit — however many patterns constrain it — and only the surviving
   leaf's candidates reach [try_apply]. Tests are exact-value, so a node
   is a branch table plus a default for unconstrained values; patterns
   that don't constrain a feature are replicated into every branch *and*
   the default, which preserves the global benefit order inside each leaf
   (all lists are filtered views of one benefit-sorted list). *)
type feature =
  | F_operands
  | F_regions
  | F_nest of string list  (** keyed by the (sorted) ignore set *)

type 'a dtree =
  | Leaf of 'a list
  | Test of {
      t_feature : feature;
      t_cap : int;
          (** nest probes stop here: 1 + the deepest declared depth, so a
              million-op spine costs O(max declared depth), not O(spine) *)
      t_branches : (int * 'a dtree) list;
      t_default : 'a dtree;
    }

let ignore_equal = List.equal String.equal

let prefix_constraint p f =
  match p.p_prefix with
  | None -> None
  | Some pre -> (
      match f with
      | F_operands -> pre.pre_operands
      | F_regions -> pre.pre_regions
      | F_nest ignore -> (
          match pre.pre_nest with
          | Some (d, ig) when ignore_equal ig ignore -> Some d
          | _ -> None))

(* Feature evaluation order: cheap arity tests first, then one nest probe
   per distinct ignore set (in first-declaration order — in practice one). *)
let features_of ps =
  let nest_keys =
    List.fold_left
      (fun acc p ->
        match p.p_prefix with
        | Some { pre_nest = Some (_, ig); _ }
          when not (List.exists (ignore_equal ig) acc) ->
            ig :: acc
        | _ -> acc)
      [] ps
    |> List.rev
  in
  F_operands :: F_regions :: List.map (fun ig -> F_nest ig) nest_keys

let rec build_tree features ps =
  match features with
  | [] -> Leaf ps
  | f :: rest ->
      let values =
        List.filter_map (fun p -> prefix_constraint p f) ps
        |> List.sort_uniq Int.compare
      in
      if values = [] then build_tree rest ps
      else
        let branches =
          List.map
            (fun v ->
              let survivors =
                List.filter
                  (fun p ->
                    match prefix_constraint p f with
                    | None -> true
                    | Some d -> Int.equal d v)
                  ps
              in
              (v, build_tree rest survivors))
            values
        in
        let default =
          build_tree rest
            (List.filter (fun p -> prefix_constraint p f = None) ps)
        in
        let cap =
          match f with
          | F_nest _ -> List.fold_left max 0 values + 1
          | F_operands | F_regions -> 0
        in
        Test { t_feature = f; t_cap = cap; t_branches = branches;
               t_default = default }

(* The sole op of [b] whose name is not in [ignore], scanning with early
   exit: a second survivor ends the walk immediately, so this is O(1) in
   practice (the ignored terminator sits at the block's tail). *)
let sole_child ignore b =
  let rec go acc = function
    | [] -> acc
    | (o : Core.op) :: tl ->
        if List.exists (fun n -> String.equal n o.Core.o_name) ignore then
          go acc tl
        else ( match acc with None -> go (Some o) tl | Some _ -> None)
  in
  go None (Core.ops_of_block b)

(* Perfect-nest depth, mirroring [Affine.Loops.perfect_nest] generically:
   the chain of same-named ops where each link is the sole non-ignored op
   of its parent's single region's single block. Never descends past
   [cap] (all exact-depth tests beyond the deepest declared depth fail
   identically at [cap]). *)
let rec measured_nest_depth ignore cap depth (op : Core.op) =
  if depth >= cap then depth
  else
    match op.Core.o_regions with
    | [| r |] -> (
        match r.Core.r_blocks with
        | [ b ] -> (
            match sole_child ignore b with
            | Some inner when String.equal inner.Core.o_name op.Core.o_name
              ->
                measured_nest_depth ignore cap (depth + 1) inner
            | _ -> depth)
        | _ -> depth)
    | _ -> depth

let rec walk_tree (op : Core.op) = function
  | Leaf ps -> ps
  | Test { t_feature; t_cap; t_branches; t_default } ->
      let v =
        match t_feature with
        | F_operands -> Array.length op.Core.o_operands
        | F_regions -> Array.length op.Core.o_regions
        | F_nest ignore -> measured_nest_depth ignore t_cap 1 op
      in
      let rec pick = function
        | [] -> walk_tree op t_default
        | (bv, sub) :: tl ->
            if Int.equal bv v then walk_tree op sub else pick tl
      in
      pick t_branches

let rec map_tree f = function
  | Leaf ps -> Leaf (List.map f ps)
  | Test t ->
      Test
        {
          t with
          t_branches = List.map (fun (v, s) -> (v, map_tree f s)) t.t_branches;
          t_default = map_tree f t.t_default;
        }

module Frozen = struct
  type bucket = {
    bk_all : pattern list;  (** benefit-sorted, prefix-unfiltered *)
    bk_tree : pattern dtree;
  }

  type t = {
    f_patterns : pattern list;  (** benefit-sorted *)
    f_index : (string, bucket) Hashtbl.t;
        (** root name -> benefit-sorted candidates (Any merged in) *)
    f_any : bucket;  (** fallback for names with no declared root *)
  }

  let bucket ps = { bk_all = ps; bk_tree = build_tree (features_of ps) ps }

  let of_patterns ps =
    let sorted = sort_by_benefit ps in
    let is_any p = match p.p_roots with Any -> true | Roots _ -> false in
    let any = List.filter is_any sorted in
    let root_names =
      List.concat_map
        (fun p -> match p.p_roots with Any -> [] | Roots names -> names)
        sorted
      |> List.sort_uniq String.compare
    in
    let index = Hashtbl.create (List.length root_names * 2) in
    List.iter
      (fun name ->
        (* Filtering the globally sorted list preserves benefit order and
           registration-order tie-breaking inside each candidate list. *)
        let candidates =
          List.filter
            (fun p ->
              match p.p_roots with
              | Any -> true
              | Roots names -> List.exists (String.equal name) names)
            sorted
        in
        Hashtbl.replace index name (bucket candidates))
      root_names;
    { f_patterns = sorted; f_index = index; f_any = bucket any }

  let patterns t = t.f_patterns

  let candidates t op_name =
    match Hashtbl.find_opt t.f_index op_name with
    | Some b -> b.bk_all
    | None -> t.f_any.bk_all

  let candidates_for t (op : Core.op) =
    match Hashtbl.find_opt t.f_index op.Core.o_name with
    | Some b -> walk_tree op b.bk_tree
    | None -> walk_tree op t.f_any.bk_tree

  let relax t =
    of_patterns
      (List.map
         (fun p -> { p with p_roots = Any; p_prefix = None })
         t.f_patterns)

  let strip_prefixes t =
    of_patterns (List.map (fun p -> { p with p_prefix = None }) t.f_patterns)

  let size t = List.length t.f_patterns

  let indexed_roots t =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.f_index []
    |> List.sort String.compare
end

let freeze = Frozen.of_patterns

(* A frozen set viewed through the running domain's registry: each
   candidate pattern is paired with its stats row, resolved once per
   driver run. Frozen sets stay immutable and shareable across domains;
   this per-run view is what keeps the per-attempt path free of DLS
   fetches and per-name lookups. *)
type resolved = {
  rs_reg : registry;
  rs_index : (string, (pattern * stats) dtree) Hashtbl.t;
  rs_any : (pattern * stats) dtree;
}

let resolve (fz : Frozen.t) =
  let reg = registry () in
  let attach = map_tree (fun p -> (p, stats_for p.p_name)) in
  let index = Hashtbl.create (Hashtbl.length fz.Frozen.f_index * 2) in
  Hashtbl.iter
    (fun name (b : Frozen.bucket) ->
      Hashtbl.replace index name (attach b.bk_tree))
    fz.Frozen.f_index;
  { rs_reg = reg; rs_index = index;
    rs_any = attach fz.Frozen.f_any.Frozen.bk_tree }

(* One tree walk per op visit: every structural feature the bucket's
   prefixes test is evaluated at most once here, shared by all candidate
   patterns; only the surviving leaf reaches [try_apply]. *)
let resolved_candidates rs (op : Core.op) =
  match Hashtbl.find_opt rs.rs_index op.Core.o_name with
  | Some tree -> walk_tree op tree
  | None -> walk_tree op rs.rs_any

(* Every pattern of the set participates in the driver run, whether or not
   dispatch ever attempts it — the per-pass reports list them all. *)
let activate (fz : Frozen.t) =
  List.iter
    (fun p ->
      let s = stats_for p.p_name in
      s.st_activations <- s.st_activations + 1)
    (Frozen.patterns fz)

(* Bracket a driver run in a trace span whose End event carries the
   application count. *)
let with_driver_span name fz f =
  if not (Trace.enabled ()) then f ()
  else begin
    Trace.begin_ ~cat:"driver"
      ~args:[ ("patterns", Trace.A_int (Frozen.size fz)) ]
      name;
    match f () with
    | n ->
        Trace.end_ ~cat:"driver"
          ~args:[ ("applications", Trace.A_int n) ]
          name;
        n
    | exception e ->
        Trace.end_ ~cat:"driver" name;
        raise e
  end

let apply_greedily root frozen =
  with_driver_span "greedy-worklist" frozen @@ fun () ->
  activate frozen;
  let rs = resolve frozen in
  (* LIFO worklist. Seeded post-order and popped from the top, the
     outermost ops come off first: a nest-consuming raising pattern fires
     on the outer loop before the driver wastes matcher work on the
     interior ops it is about to erase (erased entries are skipped on
     pop). Ops enqueued by a rewrite are processed before older entries,
     so fold cascades complete locally. *)
  let stack = ref [] in
  let pending : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let enqueue op =
    if op != root && not (Hashtbl.mem pending op.Core.o_id) then begin
      Hashtbl.replace pending op.Core.o_id ();
      stack := op :: !stack
    end
  in
  (* Enqueue an op together with its enclosing chain up to the root:
     raising patterns match on an outer loop nest whose interior just
     changed, so a mutation inside a region must revisit the ancestors. *)
  let rec enqueue_up op =
    enqueue op;
    match Core.parent_op op with
    | Some p when p != root -> enqueue_up p
    | _ -> ()
  in
  let listener =
    {
      Core.on_op_inserted = enqueue_up;
      on_operand_update = enqueue_up;
      on_op_erased =
        (fun op ->
          (* The erased op's operands may have become dead. *)
          Array.iter
            (fun v ->
              match Core.defining_op v with
              | Some d -> enqueue d
              | None -> ())
            op.Core.o_operands;
          match Core.parent_op op with
          | Some p when p != root -> enqueue_up p
          | _ -> ());
    }
  in
  (* Seed post-order so nested ops rewrite before the nests that contain
     them — the order progressive raising wants. *)
  Core.walk_post root (fun op -> if op != root then enqueue op);
  let applications = ref 0 in
  Core.with_listener listener (fun () ->
      while !stack <> [] do
        let op = List.hd !stack in
        stack := List.tl !stack;
        Hashtbl.remove pending op.Core.o_id;
        if op != root && Core.is_under ~root op then begin
          let rec try_patterns = function
            | [] -> ()
            | (p, pstats) :: rest ->
                if op.Core.o_parent == None then ()
                else
                  let ctx = { root; builder = Builder.before op } in
                  if try_apply rs.rs_reg pstats p ctx op then begin
                    incr applications;
                    if !applications > max_iterations then
                      Support.Diag.errorf
                        "rewriter: no fixpoint after %d rewrites (diverging \
                         pattern set?)"
                        max_iterations;
                    (* A successful rewrite may enable another pattern on
                       the same op (if it survived). *)
                    if Core.is_under ~root op then enqueue op
                  end
                  else try_patterns rest
          in
          try_patterns (resolved_candidates rs op)
        end
      done);
  !applications

(* The pre-worklist driver: full sweep from the root restarted after every
   application. Kept as the differential-testing oracle for the worklist
   driver (see test/test_random.ml). *)
let apply_greedily_fullsweep root frozen =
  with_driver_span "greedy-fullsweep" frozen @@ fun () ->
  activate frozen;
  let rs = resolve frozen in
  let applications = ref 0 in
  let progress = ref true in
  let iterations = ref 0 in
  while !progress do
    incr iterations;
    if !iterations > max_iterations then
      Support.Diag.errorf
        "rewriter: no fixpoint after %d sweeps (diverging pattern set?)"
        max_iterations;
    progress := false;
    (* Sweep over a snapshot; stop the sweep at the first application since
       the matched region of IR may have been heavily restructured. *)
    let exception Applied in
    (try
       Core.walk_safe root (fun op ->
           if op != root && op.Core.o_parent != None then
             List.iter
               (fun (p, pstats) ->
                 if op.Core.o_parent != None then
                   let ctx = { root; builder = Builder.before op } in
                   if try_apply rs.rs_reg pstats p ctx op then (
                     incr applications;
                     raise Applied))
               (resolved_candidates rs op))
     with Applied -> progress := true)
  done;
  !applications

let apply_sweeps root frozen =
  with_driver_span "sweeps" frozen @@ fun () ->
  activate frozen;
  let rs = resolve frozen in
  let applications = ref 0 in
  let progress = ref true in
  let sweeps = ref 0 in
  while !progress do
    incr sweeps;
    if !sweeps > max_iterations then
      Support.Diag.errorf "rewriter: no fixpoint after %d sweeps"
        max_iterations;
    progress := false;
    Core.walk_safe root (fun op ->
        if op != root && op.Core.o_parent != None then
          List.iter
            (fun (p, pstats) ->
              if op.Core.o_parent != None then
                let ctx = { root; builder = Builder.before op } in
                if try_apply rs.rs_reg pstats p ctx op then begin
                  incr applications;
                  progress := true
                end)
            (resolved_candidates rs op))
  done;
  !applications

let check_arity ~what op values =
  let n = Core.num_results op and m = List.length values in
  if n <> m then
    Support.Diag.errorf
      "%s: arity mismatch replacing %s (%d results, %d replacement values)"
      what op.Core.o_name n m

let replace_op ctx op values =
  check_arity ~what:"replace_op" op values;
  List.iteri
    (fun i new_v ->
      Core.replace_uses ctx.root ~old_v:(Core.result op i) ~new_v)
    values;
  Core.erase_op op

let replace_op_local ctx op values =
  ignore ctx;
  match op.Core.o_parent with
  | None -> Support.Diag.errorf "replace_op_local: op is detached"
  | Some block ->
      check_arity ~what:"replace_op_local" op values;
      List.iteri
        (fun i new_v ->
          Core.replace_uses_in_block block ~old_v:(Core.result op i) ~new_v)
        values;
      Core.erase_op op

let erase_op = Core.erase_op
