type ctx = { root : Core.op; builder : Builder.t }

type pattern = {
  p_name : string;
  p_benefit : int;
  p_apply : ctx -> Core.op -> bool;
}

let pattern ~name ?(benefit = 1) apply =
  { p_name = name; p_benefit = benefit; p_apply = apply }

let max_iterations = 10_000

(* Process-wide driver counters. The pass manager snapshots them around
   each pass run to attribute match/rewrite work to individual passes. *)
let total_match_attempts = ref 0
let total_rewrites = ref 0
let counter_totals () = (!total_match_attempts, !total_rewrites)

let try_apply p ctx op =
  incr total_match_attempts;
  let applied = p.p_apply ctx op in
  if applied then incr total_rewrites;
  applied

let apply_greedily root patterns =
  let patterns =
    List.stable_sort (fun a b -> compare b.p_benefit a.p_benefit) patterns
  in
  let applications = ref 0 in
  let progress = ref true in
  let iterations = ref 0 in
  while !progress do
    incr iterations;
    if !iterations > max_iterations then
      Support.Diag.errorf
        "rewriter: no fixpoint after %d sweeps (diverging pattern set?)"
        max_iterations;
    progress := false;
    (* Sweep over a snapshot; stop the sweep at the first application since
       the matched region of IR may have been heavily restructured. *)
    let exception Applied in
    (try
       Core.walk_safe root (fun op ->
           if op != root && op.o_parent != None then
             List.iter
               (fun p ->
                 if op.o_parent != None then
                   let ctx = { root; builder = Builder.before op } in
                   if try_apply p ctx op then (
                     incr applications;
                     raise Applied))
               patterns)
     with Applied -> progress := true)
  done;
  !applications

let apply_sweeps root patterns =
  let patterns =
    List.stable_sort (fun a b -> compare b.p_benefit a.p_benefit) patterns
  in
  let applications = ref 0 in
  let progress = ref true in
  let sweeps = ref 0 in
  while !progress do
    incr sweeps;
    if !sweeps > max_iterations then
      Support.Diag.errorf "rewriter: no fixpoint after %d sweeps"
        max_iterations;
    progress := false;
    Core.walk_safe root (fun op ->
        if op != root && op.o_parent != None then
          List.iter
            (fun p ->
              if op.o_parent != None then
                let ctx = { root; builder = Builder.before op } in
                if try_apply p ctx op then begin
                  incr applications;
                  progress := true
                end)
            patterns)
  done;
  !applications

let replace_op ctx op values =
  let results = Array.to_list op.Core.o_results in
  (try
     List.iter2
       (fun (old_v : Core.value) new_v ->
         Core.replace_uses ctx.root ~old_v ~new_v)
       results values
   with Invalid_argument _ ->
     Support.Diag.errorf "replace_op: arity mismatch replacing %s"
       op.Core.o_name);
  Core.erase_op op

let replace_op_local ctx op values =
  (match op.Core.o_parent with
  | None -> Support.Diag.errorf "replace_op_local: op is detached"
  | Some block ->
      let results = Array.to_list op.Core.o_results in
      (try
         List.iter2
           (fun (old_v : Core.value) new_v ->
             List.iter
               (fun sibling ->
                 Core.replace_uses sibling ~old_v ~new_v)
               (Core.ops_of_block block))
           results values
       with Invalid_argument _ ->
         Support.Diag.errorf "replace_op_local: arity mismatch replacing %s"
           op.Core.o_name));
  ignore ctx;
  Core.erase_op op

let erase_op = Core.erase_op
