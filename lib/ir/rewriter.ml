type ctx = { root : Core.op; builder : Builder.t }

type pattern = {
  p_name : string;
  p_benefit : int;
  p_apply : ctx -> Core.op -> bool;
}

let pattern ~name ?(benefit = 1) apply =
  { p_name = name; p_benefit = benefit; p_apply = apply }

let max_iterations = 10_000

(* Process-wide driver counters. The pass manager snapshots them around
   each pass run to attribute match/rewrite work to individual passes. *)
let total_match_attempts = ref 0
let total_rewrites = ref 0
let counter_totals () = (!total_match_attempts, !total_rewrites)

let try_apply p ctx op =
  incr total_match_attempts;
  let applied = p.p_apply ctx op in
  if applied then incr total_rewrites;
  applied

let sort_by_benefit patterns =
  List.stable_sort (fun a b -> compare b.p_benefit a.p_benefit) patterns

let apply_greedily root patterns =
  let patterns = sort_by_benefit patterns in
  (* LIFO worklist. Seeded post-order and popped from the top, the
     outermost ops come off first: a nest-consuming raising pattern fires
     on the outer loop before the driver wastes matcher work on the
     interior ops it is about to erase (erased entries are skipped on
     pop). Ops enqueued by a rewrite are processed before older entries,
     so fold cascades complete locally. *)
  let stack = ref [] in
  let pending : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let enqueue op =
    if op != root && not (Hashtbl.mem pending op.Core.o_id) then begin
      Hashtbl.replace pending op.Core.o_id ();
      stack := op :: !stack
    end
  in
  (* Enqueue an op together with its enclosing chain up to the root:
     raising patterns match on an outer loop nest whose interior just
     changed, so a mutation inside a region must revisit the ancestors. *)
  let rec enqueue_up op =
    enqueue op;
    match Core.parent_op op with
    | Some p when p != root -> enqueue_up p
    | _ -> ()
  in
  let listener =
    {
      Core.on_op_inserted = enqueue_up;
      on_operand_update = enqueue_up;
      on_op_erased =
        (fun op ->
          (* The erased op's operands may have become dead. *)
          Array.iter
            (fun v ->
              match Core.defining_op v with
              | Some d -> enqueue d
              | None -> ())
            op.Core.o_operands;
          match Core.parent_op op with
          | Some p when p != root -> enqueue_up p
          | _ -> ());
    }
  in
  (* Seed post-order so nested ops rewrite before the nests that contain
     them — the order progressive raising wants. *)
  Core.walk_post root (fun op -> if op != root then enqueue op);
  let applications = ref 0 in
  Core.with_listener listener (fun () ->
      while !stack <> [] do
        let op = List.hd !stack in
        stack := List.tl !stack;
        Hashtbl.remove pending op.Core.o_id;
        if op != root && Core.is_under ~root op then begin
          let rec try_patterns = function
            | [] -> ()
            | p :: rest ->
                if op.Core.o_parent == None then ()
                else
                  let ctx = { root; builder = Builder.before op } in
                  if try_apply p ctx op then begin
                    incr applications;
                    if !applications > max_iterations then
                      Support.Diag.errorf
                        "rewriter: no fixpoint after %d rewrites (diverging \
                         pattern set?)"
                        max_iterations;
                    (* A successful rewrite may enable another pattern on
                       the same op (if it survived). *)
                    if Core.is_under ~root op then enqueue op
                  end
                  else try_patterns rest
          in
          try_patterns patterns
        end
      done);
  !applications

(* The pre-worklist driver: full sweep from the root restarted after every
   application. Kept as the differential-testing oracle for the worklist
   driver (see test/test_random.ml). *)
let apply_greedily_fullsweep root patterns =
  let patterns = sort_by_benefit patterns in
  let applications = ref 0 in
  let progress = ref true in
  let iterations = ref 0 in
  while !progress do
    incr iterations;
    if !iterations > max_iterations then
      Support.Diag.errorf
        "rewriter: no fixpoint after %d sweeps (diverging pattern set?)"
        max_iterations;
    progress := false;
    (* Sweep over a snapshot; stop the sweep at the first application since
       the matched region of IR may have been heavily restructured. *)
    let exception Applied in
    (try
       Core.walk_safe root (fun op ->
           if op != root && op.Core.o_parent != None then
             List.iter
               (fun p ->
                 if op.Core.o_parent != None then
                   let ctx = { root; builder = Builder.before op } in
                   if try_apply p ctx op then (
                     incr applications;
                     raise Applied))
               patterns)
     with Applied -> progress := true)
  done;
  !applications

let apply_sweeps root patterns =
  let patterns = sort_by_benefit patterns in
  let applications = ref 0 in
  let progress = ref true in
  let sweeps = ref 0 in
  while !progress do
    incr sweeps;
    if !sweeps > max_iterations then
      Support.Diag.errorf "rewriter: no fixpoint after %d sweeps"
        max_iterations;
    progress := false;
    Core.walk_safe root (fun op ->
        if op != root && op.Core.o_parent != None then
          List.iter
            (fun p ->
              if op.Core.o_parent != None then
                let ctx = { root; builder = Builder.before op } in
                if try_apply p ctx op then begin
                  incr applications;
                  progress := true
                end)
            patterns)
  done;
  !applications

let check_arity ~what op values =
  let n = Core.num_results op and m = List.length values in
  if n <> m then
    Support.Diag.errorf
      "%s: arity mismatch replacing %s (%d results, %d replacement values)"
      what op.Core.o_name n m

let replace_op ctx op values =
  check_arity ~what:"replace_op" op values;
  List.iteri
    (fun i new_v ->
      Core.replace_uses ctx.root ~old_v:(Core.result op i) ~new_v)
    values;
  Core.erase_op op

let replace_op_local ctx op values =
  ignore ctx;
  match op.Core.o_parent with
  | None -> Support.Diag.errorf "replace_op_local: op is detached"
  | Some block ->
      check_arity ~what:"replace_op_local" op values;
      List.iteri
        (fun i new_v ->
          Core.replace_uses_in_block block ~old_v:(Core.result op i) ~new_v)
        values;
      Core.erase_op op

let erase_op = Core.erase_op
