type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type of Typ.t
  | Ints of int list
  | Map of Affine_map.t
  | Grouping of int list list
  | List of t list

let rec ints_equal a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> Int.equal x y && ints_equal xs ys
  | _ -> false

let rec grouping_equal a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> ints_equal x y && grouping_equal xs ys
  | _ -> false

(* Length mismatches are handled by the list walk itself — the old
   [try List.for_all2 ... with _ -> false] swallowed *every* exception
   (including ones raised by a nested [Typ]/[Affine_map] comparison), not
   just the [Invalid_argument] of unequal lengths. Monomorphic throughout,
   with a physical fast path at every node so interned attributes (see
   [intern]) compare in O(1). *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  (* Deliberately IEEE equality ([nan <> nan]), as before — [Float.equal]
     would silently flip NaN comparisons to true. *)
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Type x, Type y -> Typ.equal x y
  | Ints x, Ints y -> ints_equal x y
  | Map x, Map y -> Affine_map.equal x y
  | Grouping x, Grouping y -> grouping_equal x y
  | List x, List y -> list_equal x y
  | _ -> false

and list_equal a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && list_equal xs ys
  | _ -> false

(* Interner key equality: like [equal] but bitwise on floats, so [-0.] and
   [0.] keep distinct canonical nodes (they print differently) and NaN
   payloads are preserved rather than growing the table a node per probe. *)
let rec key_equal a b =
  a == b
  ||
  match (a, b) with
  | Float x, Float y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | List x, List y ->
      let rec go a b =
        match (a, b) with
        | [], [] -> true
        | x :: xs, y :: ys -> key_equal x y && go xs ys
        | _ -> false
      in
      go x y
  | _ -> equal a b

module Interner = Support.Intern.Make (struct
  type nonrec t = t

  let equal = key_equal

  (* [Hashtbl.hash] conflates [0.] with [-0.] and all NaNs; that only
     costs a shared bucket — [key_equal] keeps the nodes distinct. *)
  let hash = Hashtbl.hash
end)

let rec map_preserving f l =
  match l with
  | [] -> l
  | x :: tl ->
      let x' = f x and tl' = map_preserving f tl in
      if x' == x && tl' == tl then l else x' :: tl'

(* Bottom-up: nested types/attributes are canonicalized before the parent
   node is interned. [Map] payloads are already canonical — every map is
   built by [Affine_map.make], which interns. [Unit] is an immediate. *)
let rec intern a =
  match a with
  | Unit -> a
  | Bool _ | Int _ | Float _ | Str _ | Ints _ | Grouping _ | Map _ ->
      Interner.intern a
  | Type t ->
      let t' = Typ.intern t in
      Interner.intern (if t' == t then a else Type t')
  | List l ->
      let l' = map_preserving intern l in
      Interner.intern (if l' == l then a else List l')

let interner_stats = Interner.stats

let rec pp fmt = function
  | Unit -> Format.fprintf fmt "unit"
  | Bool b -> Format.fprintf fmt "%b" b
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%h" f
  | Str s -> Format.fprintf fmt "%S" s
  | Type t -> Typ.pp fmt t
  | Ints is ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           Format.pp_print_int)
        is
  | Map m -> Format.fprintf fmt "affine_map<%a>" Affine_map.pp m
  | Grouping g ->
      let pp_group fmt = function
        | [ d ] -> Format.fprintf fmt "%d" d
        | ds ->
            Format.fprintf fmt "{%a}"
              (Format.pp_print_list
                 ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
                 Format.pp_print_int)
              ds
      in
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp_group)
        g
  | List l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp)
        l

let to_string t = Format.asprintf "%a" pp t

let kind_error want got =
  invalid_arg (Printf.sprintf "Attr: expected %s, got %s" want (to_string got))

let get_int = function Int i -> i | a -> kind_error "int" a
let get_float = function Float f -> f | a -> kind_error "float" a
let get_str = function Str s -> s | a -> kind_error "string" a
let get_bool = function Bool b -> b | a -> kind_error "bool" a
let get_ints = function Ints is -> is | a -> kind_error "ints" a
let get_map = function Map m -> m | a -> kind_error "affine map" a
let get_type = function Type t -> t | a -> kind_error "type" a
let get_grouping = function Grouping g -> g | a -> kind_error "grouping" a
let get_list = function List l -> l | a -> kind_error "list" a
