type dim = Static of int | Dynamic

type t =
  | F32
  | F64
  | I1
  | I32
  | I64
  | Index
  | Mem_ref of dim list * t
  | Fun of t list * t list

let is_scalar = function
  | F32 | F64 | I1 | I32 | I64 | Index -> true
  | Mem_ref _ | Fun _ -> false

let is_float = function F32 | F64 -> true | _ -> false
let is_int = function I1 | I32 | I64 | Index -> true | _ -> false

let memref shape elem = Mem_ref (List.map (fun d -> Static d) shape, elem)

let memref_rank = function
  | Mem_ref (shape, _) -> List.length shape
  | _ -> invalid_arg "Typ.memref_rank: not a memref"

let memref_elem = function
  | Mem_ref (_, e) -> e
  | _ -> invalid_arg "Typ.memref_elem: not a memref"

let memref_shape = function
  | Mem_ref (shape, _) -> shape
  | _ -> invalid_arg "Typ.memref_shape: not a memref"

let static_shape = function
  | Mem_ref (shape, _) ->
      List.fold_right
        (fun d acc ->
          match (d, acc) with
          | Static n, Some tl -> Some (n :: tl)
          | _ -> None)
        shape (Some [])
  | _ -> None

let num_elements t =
  Option.map (List.fold_left ( * ) 1) (static_shape t)

let dim_equal (a : dim) (b : dim) =
  match (a, b) with
  | Static x, Static y -> Int.equal x y
  | Dynamic, Dynamic -> true
  | _ -> false

let rec list_equal eq a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> eq x y && list_equal eq xs ys
  | _ -> false

(* Monomorphic structural walk with a physical fast path at every node:
   interned types (the common case — see [intern]) compare in O(1). *)
let rec structural_equal (a : t) (b : t) =
  a == b
  ||
  match (a, b) with
  | F32, F32 | F64, F64 | I1, I1 | I32, I32 | I64, I64 | Index, Index ->
      true
  | Mem_ref (sa, ea), Mem_ref (sb, eb) ->
      list_equal dim_equal sa sb && structural_equal ea eb
  | Fun (aa, ra), Fun (ab, rb) ->
      list_equal structural_equal aa ab && list_equal structural_equal ra rb
  | _ -> false

let equal = structural_equal

module Interner = Support.Intern.Make (struct
  type nonrec t = t

  let equal = structural_equal
  let hash = Hashtbl.hash
end)

(* [List.map f l] that returns [l] itself when [f] fixes every element, so
   interning an already-canonical node allocates nothing. *)
let rec map_preserving f l =
  match l with
  | [] -> l
  | x :: tl ->
      let x' = f x and tl' = map_preserving f tl in
      if x' == x && tl' == tl then l else x' :: tl'

(* Bottom-up, so a canonical node only ever points at canonical children
   (the invariant docs/PERF.md relies on). Scalar constructors are OCaml
   immediates — physical equality already holds — so only the allocated
   shapes go through the table. *)
let rec intern t =
  match t with
  | F32 | F64 | I1 | I32 | I64 | Index -> t
  | Mem_ref (shape, elem) ->
      let elem' = intern elem in
      Interner.intern (if elem' == elem then t else Mem_ref (shape, elem'))
  | Fun (args, results) ->
      let args' = map_preserving intern args
      and results' = map_preserving intern results in
      Interner.intern
        (if args' == args && results' == results then t
         else Fun (args', results'))

let interner_stats = Interner.stats

let rec pp fmt = function
  | F32 -> Format.fprintf fmt "f32"
  | F64 -> Format.fprintf fmt "f64"
  | I1 -> Format.fprintf fmt "i1"
  | I32 -> Format.fprintf fmt "i32"
  | I64 -> Format.fprintf fmt "i64"
  | Index -> Format.fprintf fmt "index"
  | Mem_ref (shape, elem) ->
      Format.fprintf fmt "memref<";
      List.iter
        (fun d ->
          (match d with
          | Static n -> Format.fprintf fmt "%d" n
          | Dynamic -> Format.fprintf fmt "?");
          Format.fprintf fmt "x")
        shape;
      Format.fprintf fmt "%a>" pp elem
  | Fun (args, results) ->
      let pp_list fmt ts =
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
          pp fmt ts
      in
      Format.fprintf fmt "(%a) -> (%a)" pp_list args pp_list results

let to_string t = Format.asprintf "%a" pp t
