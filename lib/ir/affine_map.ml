module E = Affine_expr

type t = { n_dims : int; n_syms : int; exprs : E.t list }

let check_ranges ~n_dims ~n_syms e =
  let rec go = function
    | E.Dim i ->
        if i < 0 || i >= n_dims then
          invalid_arg
            (Printf.sprintf "Affine_map: dim d%d out of range (n_dims=%d)" i
               n_dims)
    | E.Sym i ->
        if i < 0 || i >= n_syms then
          invalid_arg
            (Printf.sprintf "Affine_map: sym s%d out of range (n_syms=%d)" i
               n_syms)
    | E.Const _ -> ()
    | E.Add (a, b) | E.Mul (a, b) | E.Floor_div (a, b) | E.Mod (a, b) ->
        go a;
        go b
  in
  go e

(* Monomorphic, length-guarded structural equality (no exception-driven
   [for_all2], no polymorphic compare). Maps coming out of [make] are
   canonical nodes, so the [==] fast path is the common case. *)
let rec exprs_equal a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> E.equal x y && exprs_equal xs ys
  | _ -> false

let structural_equal a b =
  a == b
  || Int.equal a.n_dims b.n_dims
     && Int.equal a.n_syms b.n_syms
     && exprs_equal a.exprs b.exprs

let equal = structural_equal

module Interner = Support.Intern.Make (struct
  type nonrec t = t

  let equal = structural_equal
  let hash = Hashtbl.hash
end)

let interner_stats = Interner.stats

let make ~n_dims ?(n_syms = 0) exprs =
  let exprs = List.map (fun e -> E.intern (E.simplify e)) exprs in
  List.iter (check_ranges ~n_dims ~n_syms) exprs;
  (* The type is private and every construction path runs through [make],
     so interning here makes all maps in the IR canonical nodes. *)
  Interner.intern { n_dims; n_syms; exprs }

let identity n = make ~n_dims:n (List.init n E.dim)
let constant_map cs = make ~n_dims:0 (List.map E.const cs)

let permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Affine_map.permutation: not a permutation";
      seen.(i) <- true)
    p;
  make ~n_dims:n (Array.to_list (Array.map E.dim p))

let n_results t = List.length t.exprs

let eval t ~dims ?(syms = [||]) () =
  if Array.length dims <> t.n_dims then
    invalid_arg "Affine_map.eval: wrong number of dims";
  if Array.length syms <> t.n_syms then
    invalid_arg "Affine_map.eval: wrong number of syms";
  Array.of_list (List.map (E.eval ~dims ~syms) t.exprs)

let compile t =
  if t.n_syms <> 0 then
    invalid_arg "Affine_map.compile: maps with symbols unsupported";
  let n_dims = t.n_dims in
  let cs = Array.of_list (List.map E.compile t.exprs) in
  let n = Array.length cs in
  fun dims out ->
    if Array.length dims <> n_dims then
      invalid_arg "Affine_map.compile: wrong number of dims";
    if Array.length out <> n then
      invalid_arg "Affine_map.compile: wrong result arity";
    for i = 0 to n - 1 do
      out.(i) <- cs.(i) dims
    done

let compose f g =
  if n_results g <> f.n_dims then
    invalid_arg "Affine_map.compose: rank mismatch";
  if f.n_syms <> 0 then
    invalid_arg "Affine_map.compose: outer map must be symbol-free";
  let g_results = Array.of_list g.exprs in
  let exprs =
    List.map (E.substitute_dims (fun i -> g_results.(i))) f.exprs
  in
  make ~n_dims:g.n_dims ~n_syms:g.n_syms exprs

let is_identity t =
  t.n_syms = 0
  && n_results t = t.n_dims
  && List.for_all2
       (fun e i -> E.equal e (E.dim i))
       t.exprs
       (List.init t.n_dims Fun.id)

let is_permutation t =
  if t.n_syms <> 0 || n_results t <> t.n_dims then None
  else
    let p = Array.make t.n_dims (-1) in
    let seen = Array.make t.n_dims false in
    let ok =
      List.for_all2
        (fun e i ->
          match e with
          | E.Dim d when not seen.(d) ->
              seen.(d) <- true;
              p.(i) <- d;
              true
          | _ -> false)
        t.exprs
        (List.init t.n_dims Fun.id)
    in
    if ok then Some p else None

let inverse_permutation p =
  let n = Array.length p in
  let q = Array.make n (-1) in
  Array.iteri (fun i pi -> q.(pi) <- i) p;
  q

let minor_identity ~n_dims ~results = make ~n_dims (List.map E.dim results)

let pp fmt t =
  let pp_vars fmt (prefix, n) =
    for i = 0 to n - 1 do
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s%d" prefix i
    done
  in
  Format.fprintf fmt "(%a)" pp_vars ("d", t.n_dims);
  if t.n_syms > 0 then Format.fprintf fmt "[%a]" pp_vars ("s", t.n_syms);
  Format.fprintf fmt " -> (%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       E.pp)
    t.exprs

let to_string t = Format.asprintf "%a" pp t
