type t =
  | Dim of int
  | Sym of int
  | Const of int
  | Add of t * t
  | Mul of t * t
  | Floor_div of t * t
  | Mod of t * t

let dim i = Dim i
let sym i = Sym i
let const c = Const c

(* Floor-division semantics for any non-zero divisor: the result pair
   [(floordiv x y, floormod x y)] satisfies [x = y*q + r] with [r] in
   [[0, y)] for positive [y] and [(y, 0]] for negative [y]. OCaml's [/]
   and [mod] truncate toward zero, so both need a correction when the
   remainder is non-zero and the signs disagree. *)
let floordiv x y =
  if y = 0 then invalid_arg "Affine_expr.floordiv: division by zero"
  else
    let q = x / y and r = x mod y in
    if r <> 0 && r < 0 <> (y < 0) then q - 1 else q

let floormod x y =
  if y = 0 then invalid_arg "Affine_expr.floormod: modulo by zero"
  else
    let r = x mod y in
    if r <> 0 && r < 0 <> (y < 0) then r + y else r

type linear = {
  dim_coeffs : (int * int) list;
  sym_coeffs : (int * int) list;
  constant : int;
}

let lin_const c = { dim_coeffs = []; sym_coeffs = []; constant = c }

(* Merge two sorted coefficient lists, dropping zero coefficients. *)
let merge_coeffs a b =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ia, ca) :: ta, (ib, cb) :: tb ->
        if ia < ib then (ia, ca) :: go ta b
        else if ib < ia then (ib, cb) :: go a tb
        else
          let c = ca + cb in
          if c = 0 then go ta tb else (ia, c) :: go ta tb
  in
  go a b

let lin_add a b =
  {
    dim_coeffs = merge_coeffs a.dim_coeffs b.dim_coeffs;
    sym_coeffs = merge_coeffs a.sym_coeffs b.sym_coeffs;
    constant = a.constant + b.constant;
  }

let lin_scale k l =
  if k = 0 then lin_const 0
  else
    {
      dim_coeffs = List.map (fun (i, c) -> (i, k * c)) l.dim_coeffs;
      sym_coeffs = List.map (fun (i, c) -> (i, k * c)) l.sym_coeffs;
      constant = k * l.constant;
    }

let rec linearize = function
  | Dim i -> Some { dim_coeffs = [ (i, 1) ]; sym_coeffs = []; constant = 0 }
  | Sym i -> Some { dim_coeffs = []; sym_coeffs = [ (i, 1) ]; constant = 0 }
  | Const c -> Some (lin_const c)
  | Add (a, b) -> (
      match (linearize a, linearize b) with
      | Some la, Some lb -> Some (lin_add la lb)
      | _ -> None)
  | Mul (a, b) -> (
      match (linearize a, linearize b) with
      | Some la, Some lb -> (
          match (la, lb) with
          | { dim_coeffs = []; sym_coeffs = []; constant = k }, l
          | l, { dim_coeffs = []; sym_coeffs = []; constant = k } ->
              Some (lin_scale k l)
          | _ -> None)
      | _ -> None)
  | Floor_div _ | Mod _ -> None

let of_linear l =
  let term acc mk (i, c) =
    let t = if c = 1 then mk i else Mul (Const c, mk i) in
    match acc with None -> Some t | Some a -> Some (Add (a, t))
  in
  let acc = List.fold_left (fun a dc -> term a dim dc) None l.dim_coeffs in
  let acc = List.fold_left (fun a sc -> term a sym sc) acc l.sym_coeffs in
  match (acc, l.constant) with
  | None, c -> Const c
  | Some a, 0 -> a
  | Some a, c -> Add (a, Const c)

let rec simplify e =
  match linearize e with
  | Some l -> of_linear l
  | None -> (
      match e with
      | Dim _ | Sym _ | Const _ -> e
      | Add (a, b) -> (
          match (simplify a, simplify b) with
          | Const x, Const y -> Const (x + y)
          | Const 0, s | s, Const 0 -> s
          | sa, sb -> Add (sa, sb))
      | Mul (a, b) -> (
          match (simplify a, simplify b) with
          | Const x, Const y -> Const (x * y)
          | Const 1, s | s, Const 1 -> s
          | (Const 0 as z), _ | _, (Const 0 as z) -> z
          | sa, sb -> Mul (sa, sb))
      | Floor_div (a, b) -> (
          match (simplify a, simplify b) with
          | Const x, Const y when y <> 0 -> Const (floordiv x y)
          | sa, Const 1 -> sa
          | sa, sb -> Floor_div (sa, sb))
      | Mod (a, b) -> (
          match (simplify a, simplify b) with
          | Const x, Const y when y <> 0 -> Const (floormod x y)
          | _, Const (1 | -1) -> Const 0
          | sa, sb -> Mod (sa, sb)))

let add a b = simplify (Add (a, b))
let mul a b = simplify (Mul (a, b))
let neg a = mul (Const (-1)) a
let sub a b = add a (neg b)
let floor_div a b = simplify (Floor_div (a, b))
let mod_ a b = simplify (Mod (a, b))

let rec eval ~dims ~syms = function
  | Dim i ->
      if i < 0 || i >= Array.length dims then
        invalid_arg "Affine_expr.eval: dim out of range"
      else dims.(i)
  | Sym i ->
      if i < 0 || i >= Array.length syms then
        invalid_arg "Affine_expr.eval: sym out of range"
      else syms.(i)
  | Const c -> c
  | Add (a, b) -> eval ~dims ~syms a + eval ~dims ~syms b
  | Mul (a, b) -> eval ~dims ~syms a * eval ~dims ~syms b
  | Floor_div (a, b) ->
      let x = eval ~dims ~syms a and y = eval ~dims ~syms b in
      if y = 0 then invalid_arg "Affine_expr.eval: division by zero"
      else floordiv x y
  | Mod (a, b) ->
      let x = eval ~dims ~syms a and y = eval ~dims ~syms b in
      if y = 0 then invalid_arg "Affine_expr.eval: modulo by zero"
      else floormod x y

(* Staged evaluation: resolve the expression tree to nested closures once,
   then apply them to many dimension vectors without re-walking the tree.
   Linear expressions get dedicated flat closures (the common case for
   access functions), so a [k*d0 + d1] subscript costs two array reads and
   two integer ops per application. *)
let compile e =
  let rec go = function
    | Dim i -> fun dims -> dims.(i)
    | Sym _ -> invalid_arg "Affine_expr.compile: symbols unsupported"
    | Const c -> fun _ -> c
    | Add (a, Const c) ->
        let ca = go a in
        fun dims -> ca dims + c
    | Add (a, b) ->
        let ca = go a and cb = go b in
        fun dims -> ca dims + cb dims
    | Mul (Const k, Dim i) | Mul (Dim i, Const k) ->
        fun dims -> k * dims.(i)
    | Mul (a, b) ->
        let ca = go a and cb = go b in
        fun dims -> ca dims * cb dims
    | Floor_div (a, b) ->
        let ca = go a and cb = go b in
        fun dims ->
          let y = cb dims in
          if y = 0 then invalid_arg "Affine_expr.eval: division by zero"
          else floordiv (ca dims) y
    | Mod (a, b) ->
        let ca = go a and cb = go b in
        fun dims ->
          let y = cb dims in
          if y = 0 then invalid_arg "Affine_expr.eval: modulo by zero"
          else floormod (ca dims) y
  in
  let e = simplify e in
  match linearize e with
  | Some { dim_coeffs = []; sym_coeffs = []; constant } -> fun _ -> constant
  | Some { dim_coeffs = [ (d, 1) ]; sym_coeffs = []; constant = 0 } ->
      fun dims -> dims.(d)
  | Some { dim_coeffs = [ (d, k) ]; sym_coeffs = []; constant } ->
      fun dims -> (k * dims.(d)) + constant
  | Some { dim_coeffs = [ (d0, k0); (d1, k1) ]; sym_coeffs = []; constant } ->
      fun dims -> (k0 * dims.(d0)) + (k1 * dims.(d1)) + constant
  | _ -> go e

let is_constant e =
  match simplify e with Const c -> Some c | _ -> None

let is_single_dim e =
  match linearize e with
  | Some { dim_coeffs = [ (d, k) ]; sym_coeffs = []; constant = c }
    when k <> 0 ->
      Some (k, d, c)
  | _ -> None

let rec fold_vars f acc = function
  | (Dim _ | Sym _) as v -> f acc v
  | Const _ -> acc
  | Add (a, b) | Mul (a, b) | Floor_div (a, b) | Mod (a, b) ->
      fold_vars f (fold_vars f acc a) b

let used_dims e =
  fold_vars (fun acc v -> match v with Dim i -> i :: acc | _ -> acc) [] e
  |> List.sort_uniq compare

let max_dim e = List.fold_left (fun m i -> max m (i + 1)) 0 (used_dims e)

let rec substitute_dims f = function
  | Dim i -> f i
  | (Sym _ | Const _) as e -> e
  | Add (a, b) -> add (substitute_dims f a) (substitute_dims f b)
  | Mul (a, b) -> mul (substitute_dims f a) (substitute_dims f b)
  | Floor_div (a, b) -> floor_div (substitute_dims f a) (substitute_dims f b)
  | Mod (a, b) -> mod_ (substitute_dims f a) (substitute_dims f b)

(* Monomorphic structural walk with a physical fast path at every node.
   Interned expressions (the canonical nodes every [Affine_map] stores)
   short-circuit immediately. *)
let rec structural_equal a b =
  a == b
  ||
  match (a, b) with
  | Dim x, Dim y | Sym x, Sym y | Const x, Const y -> Int.equal x y
  | Add (a1, a2), Add (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Floor_div (a1, a2), Floor_div (b1, b2)
  | Mod (a1, a2), Mod (b1, b2) ->
      structural_equal a1 b1 && structural_equal a2 b2
  | _ -> false

(* Semantic equality up to simplification, as before — but the walk is
   monomorphic and already-canonical operands never re-simplify. *)
let equal a b = a == b || structural_equal (simplify a) (simplify b)

let tag = function
  | Dim _ -> 0
  | Sym _ -> 1
  | Const _ -> 2
  | Add _ -> 3
  | Mul _ -> 4
  | Floor_div _ -> 5
  | Mod _ -> 6

let rec structural_compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Dim x, Dim y | Sym x, Sym y | Const x, Const y -> Int.compare x y
    | Add (a1, a2), Add (b1, b2)
    | Mul (a1, a2), Mul (b1, b2)
    | Floor_div (a1, a2), Floor_div (b1, b2)
    | Mod (a1, a2), Mod (b1, b2) -> (
        match structural_compare a1 b1 with
        | 0 -> structural_compare a2 b2
        | c -> c)
    | _ -> Int.compare (tag a) (tag b)

let compare a b =
  if a == b then 0 else structural_compare (simplify a) (simplify b)

module Interner = Support.Intern.Make (struct
  type nonrec t = t

  let equal = structural_equal
  let hash = Hashtbl.hash
end)

(* Bottom-up hash-consing: children are canonicalized before the parent is
   interned, so canonical nodes only ever reference canonical nodes. *)
let rec intern e =
  match e with
  | Dim _ | Sym _ | Const _ -> Interner.intern e
  | Add (a, b) ->
      let a' = intern a and b' = intern b in
      Interner.intern (if a' == a && b' == b then e else Add (a', b'))
  | Mul (a, b) ->
      let a' = intern a and b' = intern b in
      Interner.intern (if a' == a && b' == b then e else Mul (a', b'))
  | Floor_div (a, b) ->
      let a' = intern a and b' = intern b in
      Interner.intern (if a' == a && b' == b then e else Floor_div (a', b'))
  | Mod (a, b) ->
      let a' = intern a and b' = intern b in
      Interner.intern (if a' == a && b' == b then e else Mod (a', b'))

let interner_stats = Interner.stats

(* Precedence: 1 = additive, 2 = multiplicative, 3 = atom. A child is
   parenthesized when its precedence is below what its context requires. *)
let prec = function
  | Dim _ | Sym _ | Const _ -> 3
  | Mul _ | Floor_div _ | Mod _ -> 2
  | Add _ -> 1

let rec pp_prec req fmt e =
  let wrap = prec e < req in
  if wrap then Format.fprintf fmt "(";
  (match e with
  | Dim i -> Format.fprintf fmt "d%d" i
  | Sym i -> Format.fprintf fmt "s%d" i
  | Const c -> Format.fprintf fmt "%d" c
  | Add (a, Const c) when c < 0 ->
      Format.fprintf fmt "%a - %d" (pp_prec 1) a (-c)
  | Add (a, Mul (Const (-1), b)) ->
      Format.fprintf fmt "%a - %a" (pp_prec 1) a (pp_prec 2) b
  | Add (a, b) -> Format.fprintf fmt "%a + %a" (pp_prec 1) a (pp_prec 1) b
  | Mul (a, b) -> Format.fprintf fmt "%a * %a" (pp_prec 2) a (pp_prec 2) b
  | Floor_div (a, b) ->
      Format.fprintf fmt "%a floordiv %a" (pp_prec 3) a (pp_prec 3) b
  | Mod (a, b) -> Format.fprintf fmt "%a mod %a" (pp_prec 3) a (pp_prec 3) b);
  if wrap then Format.fprintf fmt ")"

let pp fmt e = pp_prec 0 fmt e

let to_string e = Format.asprintf "%a" pp e
