(** IR types.

    The reproduction uses buffer (memref) semantics throughout, matching the
    2020-era Linalg-on-buffers setting the paper evaluates. *)

type dim = Static of int | Dynamic

type t =
  | F32
  | F64
  | I1
  | I32
  | I64
  | Index  (** loop induction variables and subscripts *)
  | Mem_ref of dim list * t  (** shaped buffer of a scalar element type *)
  | Fun of t list * t list

val is_scalar : t -> bool
val is_float : t -> bool
val is_int : t -> bool

(** [memref shape elem] with [shape] given as static extents. *)
val memref : int list -> t -> t

(** [memref_rank t] for a memref type; raises [Invalid_argument] otherwise. *)
val memref_rank : t -> int

val memref_elem : t -> t
val memref_shape : t -> dim list

(** [static_shape t] returns the extents when all dimensions are static. *)
val static_shape : t -> int list option

(** Number of elements of a fully static memref. *)
val num_elements : t -> int option

(** Structural equality with a physical ([==]) fast path at every node;
    monomorphic throughout (no polymorphic compare). Interned types (see
    {!intern}) compare in O(1). *)
val equal : t -> t -> bool

(** [intern t] hash-conses [t] into its canonical node (scalars are OCaml
    immediates and pass through untouched). [Core.create_op] and
    [Core.create_block] intern every type they are handed, so all IR built
    through the builders or the parser carries canonical types. Domain-safe
    (see {!Support.Intern}). *)
val intern : t -> t

(** Interning-table counters for diagnostics and [bench -- scale]. *)
val interner_stats : unit -> Support.Intern.stats

val pp : Format.formatter -> t -> unit
val to_string : t -> string
