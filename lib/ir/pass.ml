type t = { name : string; run : Core.op -> unit }

let make ~name run = { name; run }

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero_gc =
  {
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

let add_gc a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    major_words = a.major_words +. b.major_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
  }

(* [Gc.quick_stat] reads the counters without forcing a heap walk, so
   sampling it around every pass is cheap enough to do unconditionally.
   Its [minor_words] field only advances at minor-collection boundaries,
   though, so [timed] overrides that one field from [Gc.minor_words]
   (which reads the live allocation pointer) — otherwise any pass that
   allocates less than a minor heap reports zero. Note the counters are
   per-domain: a pass that spawns domains (none do today) would
   under-report. *)
let gc_delta (before : Gc.stat) (after : Gc.stat) =
  {
    minor_words = after.minor_words -. before.minor_words;
    major_words = after.major_words -. before.major_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
  }

type timing = {
  pass_name : string;
  seconds : float;
  ops_before : int;
  ops_after : int;
  match_attempts : int;
  rewrites : int;
  depth : int;
  gc : gc_delta;
  pattern_stats : Rewriter.pattern_stat list;
}

(* Per-pattern deltas between two [Rewriter.pattern_totals] snapshots,
   keeping only the patterns that participated in this pass (activated,
   attempted, or applied). Counters are monotonic, so every [before] row
   is present in [after]. Rows are ordered by name: the registry's
   registration order reflects the domain's whole compile history, so it
   differs between a fresh domain and one that has compiled other
   pipelines first — sorting keeps recorded stats independent of that. *)
let pattern_delta before after =
  let prior = Hashtbl.create 32 in
  List.iter
    (fun (s : Rewriter.pattern_stat) -> Hashtbl.replace prior s.ps_name s)
    before;
  List.filter_map
    (fun (s : Rewriter.pattern_stat) ->
      let d =
        match Hashtbl.find_opt prior s.ps_name with
        | None -> s
        | Some p ->
            {
              s with
              ps_attempts = s.ps_attempts - p.ps_attempts;
              ps_hits = s.ps_hits - p.ps_hits;
              ps_activations = s.ps_activations - p.ps_activations;
            }
      in
      if d.ps_attempts > 0 || d.ps_hits > 0 || d.ps_activations > 0 then
        Some d
      else None)
    after
  |> List.sort (fun (a : Rewriter.pattern_stat) b ->
         String.compare a.ps_name b.ps_name)

type snapshot_policy = No_snapshots | After_all | After_named of string list

type item = Single of t | Nested of string * item list

type manager = {
  mutable items_rev : item list;  (** reverse order *)
  mutable recorded : timing list;  (** reverse order *)
  verify_each : bool;
  snapshot : snapshot_policy;
  ir_sink : pass_name:string -> ir:string -> unit;
}

let default_ir_sink ~pass_name ~ir =
  Printf.printf "// ----- IR after pass '%s' -----\n%s\n" pass_name ir

let create_manager ?(verify_each = false) ?(snapshot = No_snapshots)
    ?(ir_sink = default_ir_sink) () =
  { items_rev = []; recorded = []; verify_each; snapshot; ir_sink }

let add m p = m.items_rev <- Single p :: m.items_rev
let add_all m ps = List.iter (add m) ps

let add_pipeline m name ps =
  m.items_rev <- Nested (name, List.map (fun p -> Single p) ps) :: m.items_rev

let count_ops root =
  let n = ref 0 in
  Core.walk root (fun _ -> incr n);
  !n

let wants_snapshot m name =
  match m.snapshot with
  | No_snapshots -> false
  | After_all -> true
  | After_named names -> List.mem name names

(* Timing is recorded in a [Fun.protect] finalizer so that a pass raising
   mid-run still contributes its (partial) entry to the report. *)
let metric_pass_seconds =
  lazy (Metrics.histogram ~help:"per-pass wall-clock seconds" "mlt_pass_seconds")

let metric_pass_minor_words =
  lazy
    (Metrics.counter ~help:"minor-heap words allocated inside passes"
       "mlt_pass_minor_words")

let metric_pass_major_collections =
  lazy
    (Metrics.counter ~help:"major collections triggered inside passes"
       "mlt_pass_major_collections")

let timed m ~name ~depth root body =
  let ops_before = count_ops root in
  let attempts0, rewrites0 = Rewriter.counter_totals () in
  let patterns0 = Rewriter.pattern_totals () in
  let gc0 = Gc.quick_stat () in
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  if Trace.enabled () then
    Trace.begin_ ~cat:"pass"
      ~args:[ ("ops_before", Trace.A_int ops_before) ]
      name;
  Fun.protect
    ~finally:(fun () ->
      let seconds = Unix.gettimeofday () -. t0 in
      let gc =
        { (gc_delta gc0 (Gc.quick_stat ())) with
          minor_words = Gc.minor_words () -. mw0 }
      in
      let attempts1, rewrites1 = Rewriter.counter_totals () in
      let entry =
        {
          pass_name = name;
          seconds;
          ops_before;
          ops_after = count_ops root;
          match_attempts = attempts1 - attempts0;
          rewrites = rewrites1 - rewrites0;
          depth;
          gc;
          pattern_stats = pattern_delta patterns0 (Rewriter.pattern_totals ());
        }
      in
      m.recorded <- entry :: m.recorded;
      if Metrics.enabled () && depth = 0 then begin
        Metrics.observe (Lazy.force metric_pass_seconds) seconds;
        Metrics.add
          (Lazy.force metric_pass_minor_words)
          (int_of_float gc.minor_words);
        Metrics.add
          (Lazy.force metric_pass_major_collections)
          gc.major_collections
      end;
      if Trace.enabled () then
        Trace.end_ ~cat:"pass"
          ~args:
            [
              ("ops_after", Trace.A_int entry.ops_after);
              ("match_attempts", Trace.A_int entry.match_attempts);
              ("rewrites", Trace.A_int entry.rewrites);
              ("minor_words", Trace.A_int (int_of_float gc.minor_words));
            ]
          name)
    body

let rec run_item m ~depth ~prefix root = function
  | Single p ->
      let qualified = prefix ^ p.name in
      (* Re-report mid-pass diagnostics with the failing pass's qualified
         name; the location (stamped by the rewriter when the failure
         happened at a located op) rides along untouched. *)
      (try timed m ~name:qualified ~depth root (fun () -> p.run root)
       with Support.Diag.Error (loc, msg) ->
         raise
           (Support.Diag.Error
              (loc, Printf.sprintf "pass '%s': %s" qualified msg)));
      if wants_snapshot m p.name then
        m.ir_sink ~pass_name:qualified ~ir:(Printer.op_to_string root);
      if m.verify_each then (
        match Verifier.verify_result root with
        | Ok () -> ()
        | Error msg ->
            Support.Diag.errorf "after pass '%s': %s" qualified msg)
  | Nested (name, items) ->
      let qualified = prefix ^ name in
      timed m ~name:qualified ~depth root (fun () ->
          List.iter
            (run_item m ~depth:(depth + 1) ~prefix:(qualified ^ "/") root)
            items)

let run m root =
  List.iter (run_item m ~depth:0 ~prefix:"" root) (List.rev m.items_rev)

let timings m = List.rev m.recorded

let total_seconds m =
  (* Nested entries are already contained in their pipeline's aggregate
     entry; summing depth-0 entries avoids double counting. *)
  List.fold_left
    (fun acc t -> if t.depth = 0 then acc +. t.seconds else acc)
    0. (timings m)

let clear_timings m = m.recorded <- []

(* ---- aggregation ------------------------------------------------------- *)

type summary = {
  s_name : string;
  s_runs : int;
  s_seconds : float;
  s_match_attempts : int;
  s_rewrites : int;
  s_ops_delta : int;
  s_gc : gc_delta;
  s_patterns : Rewriter.pattern_stat list;
}

(* Merge per-run pattern rows by name, keeping first-appearance order. *)
let merge_pattern_stats acc ps =
  List.fold_left
    (fun acc (p : Rewriter.pattern_stat) ->
      let rec go = function
        | [] -> [ p ]
        | (s : Rewriter.pattern_stat) :: rest
          when String.equal s.ps_name p.ps_name ->
            {
              s with
              ps_attempts = s.ps_attempts + p.ps_attempts;
              ps_hits = s.ps_hits + p.ps_hits;
              ps_activations = s.ps_activations + p.ps_activations;
            }
            :: rest
        | s :: rest -> s :: go rest
      in
      go acc)
    acc ps

(* Fold one summary row into an accumulated list, merging by qualified
   name and keeping first-appearance order — the same discipline
   [summarize] applies to per-run timings, lifted to whole summaries so
   per-domain results can be combined deterministically. *)
let add_summary acc (x : summary) =
  let rec go = function
    | [] -> [ x ]
    | s :: rest when String.equal s.s_name x.s_name ->
        {
          s with
          s_runs = s.s_runs + x.s_runs;
          s_seconds = s.s_seconds +. x.s_seconds;
          s_match_attempts = s.s_match_attempts + x.s_match_attempts;
          s_rewrites = s.s_rewrites + x.s_rewrites;
          s_ops_delta = s.s_ops_delta + x.s_ops_delta;
          s_gc = add_gc s.s_gc x.s_gc;
          s_patterns = merge_pattern_stats s.s_patterns x.s_patterns;
        }
        :: rest
    | s :: rest -> s :: go rest
  in
  go acc

let merge_summaries a b = List.fold_left add_summary a b

let summarize m =
  (* Aggregate by qualified name, keeping first-appearance order. *)
  let fold acc (t : timing) =
    let bump s =
      {
        s with
        s_runs = s.s_runs + 1;
        s_seconds = s.s_seconds +. t.seconds;
        s_match_attempts = s.s_match_attempts + t.match_attempts;
        s_rewrites = s.s_rewrites + t.rewrites;
        s_ops_delta = s.s_ops_delta + t.ops_after - t.ops_before;
        s_gc = add_gc s.s_gc t.gc;
        s_patterns = merge_pattern_stats s.s_patterns t.pattern_stats;
      }
    in
    let rec go = function
      | [] ->
          [
            bump
              {
                s_name = t.pass_name;
                s_runs = 0;
                s_seconds = 0.;
                s_match_attempts = 0;
                s_rewrites = 0;
                s_ops_delta = 0;
                s_gc = zero_gc;
                s_patterns = [];
              };
          ]
      | s :: rest when String.equal s.s_name t.pass_name -> bump s :: rest
      | s :: rest -> s :: go rest
    in
    go acc
  in
  List.fold_left fold [] (timings m)

(* ---- reports ----------------------------------------------------------- *)

let report_table m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %12s %8s %8s %9s %9s %10s %6s\n" "pass" "seconds"
       "ops-in" "ops-out" "matches" "rewrites" "minor-Mw" "majGCs");
  List.iter
    (fun t ->
      let indent = String.make (2 * t.depth) ' ' in
      Buffer.add_string buf
        (Printf.sprintf "%-40s %12.6f %8d %8d %9d %9d %10.2f %6d\n"
           (indent ^ t.pass_name) t.seconds t.ops_before t.ops_after
           t.match_attempts t.rewrites
           (t.gc.minor_words /. 1e6)
           t.gc.major_collections);
      List.iter
        (fun (p : Rewriter.pattern_stat) ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s %12s %8s %8s %9d %9d\n"
               (indent ^ "  . " ^ p.ps_name) "" "" "" p.ps_attempts p.ps_hits))
        t.pattern_stats)
    (timings m);
  Buffer.add_string buf
    (Printf.sprintf "%-40s %12.6f\n" "total" (total_seconds m));
  Buffer.contents buf

let summary_table m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %6s %12s %9s %9s %9s %10s %6s\n" "pass" "runs"
       "seconds" "matches" "rewrites" "ops-delta" "minor-Mw" "majGCs");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s %6d %12.6f %9d %9d %+9d %10.2f %6d\n" s.s_name
           s.s_runs s.s_seconds s.s_match_attempts s.s_rewrites s.s_ops_delta
           (s.s_gc.minor_words /. 1e6)
           s.s_gc.major_collections);
      List.iter
        (fun (p : Rewriter.pattern_stat) ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s %6d %12s %9d %9d %9s\n"
               ("  . " ^ p.ps_name) p.ps_activations "" p.ps_attempts
               p.ps_hits ""))
        s.s_patterns)
    (summarize m);
  Buffer.contents buf

(* All JSON reports render through the shared Support.Json writer, so
   escaping and number formatting cannot diverge between emitters (the
   batch report embeds these same values). *)
module J = Support.Json

let pattern_stat_json (p : Rewriter.pattern_stat) =
  J.Obj
    [
      ("name", J.Str p.ps_name);
      ("attempts", J.num_int p.ps_attempts);
      ("hits", J.num_int p.ps_hits);
      ("activations", J.num_int p.ps_activations);
    ]

(* Word counts are integral floats (OCaml's Gc reports them as floats to
   survive 32-bit); render them as numbers, not ints, so >2^53 never
   traps. *)
let gc_json g =
  J.Obj
    [
      ("minor_words", J.Num g.minor_words);
      ("major_words", J.Num g.major_words);
      ("promoted_words", J.Num g.promoted_words);
      ("minor_collections", J.num_int g.minor_collections);
      ("major_collections", J.num_int g.major_collections);
    ]

let gc_of_json j =
  let num k =
    match J.member k j with Some (J.Num v) -> v | _ -> 0.
  in
  let int k = Option.value ~default:0 (Option.bind (J.member k j) J.to_int) in
  {
    minor_words = num "minor_words";
    major_words = num "major_words";
    promoted_words = num "promoted_words";
    minor_collections = int "minor_collections";
    major_collections = int "major_collections";
  }

let timing_json (t : timing) =
  J.Obj
    [
      ("name", J.Str t.pass_name);
      ("seconds", J.Num t.seconds);
      ("ops_before", J.num_int t.ops_before);
      ("ops_after", J.num_int t.ops_after);
      ("match_attempts", J.num_int t.match_attempts);
      ("rewrites", J.num_int t.rewrites);
      ("depth", J.num_int t.depth);
      ("gc", gc_json t.gc);
      ("patterns", J.List (List.map pattern_stat_json t.pattern_stats));
    ]

let report_json m =
  J.to_string
    (J.Obj
       [
         ("total_seconds", J.Num (total_seconds m));
         ("passes", J.List (List.map timing_json (timings m)));
       ])

let summary_entry_json s =
  J.Obj
    [
      ("name", J.Str s.s_name);
      ("runs", J.num_int s.s_runs);
      ("seconds", J.Num s.s_seconds);
      ("match_attempts", J.num_int s.s_match_attempts);
      ("rewrites", J.num_int s.s_rewrites);
      ("ops_delta", J.num_int s.s_ops_delta);
      ("gc", gc_json s.s_gc);
      ("patterns", J.List (List.map pattern_stat_json s.s_patterns));
    ]

let summaries_json_value summaries =
  J.List (List.map summary_entry_json summaries)

let summaries_json summaries = J.to_string (summaries_json_value summaries)

let summary_json m =
  J.to_string
    (J.Obj
       [
         ("total_seconds", J.Num (total_seconds m));
         ("passes", summaries_json_value (summarize m));
       ])
