module D = Support.Diag
module E = Affine_expr

(* ---- lexer ------------------------------------------------------------ *)

type token =
  | T_value of string  (** %name *)
  | T_symbol of string  (** @name *)
  | T_ident of string
  | T_int of int
  | T_float of float
  | T_string of string
  | T_lparen
  | T_rparen
  | T_lbrace
  | T_rbrace
  | T_lbracket
  | T_rbracket
  | T_comma
  | T_colon
  | T_equal
  | T_plus
  | T_minus
  | T_star
  | T_arrow
  | T_type of Typ.t
  | T_map of Affine_map.t
  | T_eof

let token_to_string = function
  | T_value v -> "%" ^ v
  | T_symbol s -> "@" ^ s
  | T_ident s -> Printf.sprintf "identifier %S" s
  | T_int i -> string_of_int i
  | T_float f -> string_of_float f
  | T_string s -> Printf.sprintf "%S" s
  | T_lparen -> "'('"
  | T_rparen -> "')'"
  | T_lbrace -> "'{'"
  | T_rbrace -> "'}'"
  | T_lbracket -> "'['"
  | T_rbracket -> "']'"
  | T_comma -> "','"
  | T_colon -> "':'"
  | T_equal -> "'='"
  | T_plus -> "'+'"
  | T_minus -> "'-'"
  | T_star -> "'*'"
  | T_arrow -> "'->'"
  | T_type t -> "type " ^ Typ.to_string t
  | T_map m -> "affine_map<" ^ Affine_map.to_string m ^ ">"
  | T_eof -> "end of input"

type ltok = { tok : token; loc : Support.Loc.t }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

(* Parse a type string like "memref<8x8xf32>" or "f32". *)
let rec type_of_string ~loc s =
  let s = String.trim s in
  match s with
  | "f32" -> Typ.F32
  | "f64" -> Typ.F64
  | "i1" -> Typ.I1
  | "i32" -> Typ.I32
  | "i64" -> Typ.I64
  | "index" -> Typ.Index
  | _ ->
      if String.length s > 8 && String.sub s 0 7 = "memref<"
         && s.[String.length s - 1] = '>'
      then begin
        let inner = String.sub s 7 (String.length s - 8) in
        let parts = String.split_on_char 'x' inner in
        match List.rev parts with
        | elem :: rev_dims ->
            let dims =
              List.rev_map
                (fun d ->
                  if d = "?" then Typ.Dynamic
                  else
                    try Typ.Static (int_of_string d)
                    with _ -> D.errorf ~loc "bad memref dimension %S" d)
                rev_dims
            in
            Typ.Mem_ref (dims, type_of_string ~loc elem)
        | [] -> D.errorf ~loc "empty memref type"
      end
      else D.errorf ~loc "unknown type %S" s

(* A tiny hand parser for textual maps (used by affine_map<...> tokens).
   Shape: (d0, d1, ...)[s0, ...] -> (e0, e1, ...) *)
let parse_map_text ~loc s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos
    else D.errorf ~loc "affine map %S: expected %C" s c
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    while !pos < n && (is_ident_char s.[!pos]) do
      incr pos
    done;
    String.sub s start (!pos - start)
  in
  let int_lit () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && is_digit s.[!pos] do
      incr pos
    done;
    int_of_string (String.sub s start (!pos - start))
  in
  let var_list close =
    let vars = ref [] in
    skip_ws ();
    if peek () = Some close then incr pos
    else begin
      let rec go () =
        vars := ident () :: !vars;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            go ()
        | Some c when c = close -> incr pos
        | _ -> D.errorf ~loc "affine map %S: expected ',' or %C" s close
      in
      go ()
    end;
    List.rev !vars
  in
  expect '(';
  let dims = var_list ')' in
  skip_ws ();
  let syms =
    if peek () = Some '[' then begin
      incr pos;
      var_list ']'
    end
    else []
  in
  skip_ws ();
  expect '-';
  expect '>';
  expect '(';
  let dim_index v =
    match List.mapi (fun i x -> (x, i)) dims |> List.assoc_opt v with
    | Some i -> `Dim i
    | None -> (
        match List.mapi (fun i x -> (x, i)) syms |> List.assoc_opt v with
        | Some i -> `Sym i
        | None -> D.errorf ~loc "affine map %S: unknown variable %S" s v)
  in
  (* expr := term (('+'|'-') term)*; term := factor (('*'|floordiv|mod) factor)* *)
  let rec parse_expr () =
    let lhs = ref (parse_term ()) in
    let rec loop () =
      skip_ws ();
      match peek () with
      | Some '+' ->
          incr pos;
          lhs := E.Add (!lhs, parse_term ());
          loop ()
      | Some '-' ->
          incr pos;
          lhs := E.Add (!lhs, E.Mul (E.Const (-1), parse_term ()));
          loop ()
      | _ -> !lhs
    in
    loop ()
  and parse_term () =
    let lhs = ref (parse_factor ()) in
    let rec loop () =
      skip_ws ();
      match peek () with
      | Some '*' ->
          incr pos;
          lhs := E.Mul (!lhs, parse_factor ());
          loop ()
      | Some c when is_ident_start c ->
          let save = !pos in
          let id = ident () in
          if id = "floordiv" then begin
            lhs := E.Floor_div (!lhs, parse_factor ());
            loop ()
          end
          else if id = "mod" then begin
            lhs := E.Mod (!lhs, parse_factor ());
            loop ()
          end
          else begin
            pos := save;
            !lhs
          end
      | _ -> !lhs
    in
    loop ()
  and parse_factor () =
    skip_ws ();
    match peek () with
    | Some '(' ->
        incr pos;
        let e = parse_expr () in
        expect ')';
        e
    | Some c when is_digit c || c = '-' -> E.Const (int_lit ())
    | Some c when is_ident_start c -> (
        match dim_index (ident ()) with
        | `Dim i -> E.Dim i
        | `Sym i -> E.Sym i)
    | _ -> D.errorf ~loc "affine map %S: expected expression" s
  in
  let exprs = ref [ parse_expr () ] in
  let rec more () =
    skip_ws ();
    match peek () with
    | Some ',' ->
        incr pos;
        exprs := parse_expr () :: !exprs;
        more ()
    | Some ')' -> incr pos
    | _ -> D.errorf ~loc "affine map %S: expected ',' or ')'" s
  in
  more ();
  Affine_map.make ~n_dims:(List.length dims) ~n_syms:(List.length syms)
    (List.rev !exprs)

let tokenize ~file src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let toks = ref [] in
  let loc () = Support.Loc.make ~file ~line:!line ~col:!col in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then (
         incr line;
         col := 1)
       else incr col);
    incr pos
  in
  let peek i = if !pos + i < n then Some src.[!pos + i] else None in
  let emit l tok = toks := { tok; loc = l } :: !toks in
  (* Read balanced <...> content after a known prefix. *)
  let angle_content l =
    if peek 0 <> Some '<' then D.errorf ~loc:l "expected '<'";
    advance ();
    let start = !pos in
    let depth = ref 1 in
    let prev = ref ' ' in
    while !depth > 0 do
      (match peek 0 with
      | Some '<' -> incr depth
      (* '->' arrows inside affine maps do not close the bracket. *)
      | Some '>' when !prev <> '-' -> decr depth
      | None -> D.errorf ~loc:l "unterminated '<...>'"
      | Some _ -> ());
      if !depth > 0 then begin
        prev := (match peek 0 with Some c -> c | None -> ' ');
        advance ()
      end
    done;
    let content = String.sub src start (!pos - start) in
    advance ();
    (* skip '>' *)
    content
  in
  let rec go () =
    match peek 0 with
    | None -> emit (loc ()) T_eof
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance ();
        go ()
    | Some '/' when peek 1 = Some '/' ->
        while peek 0 <> None && peek 0 <> Some '\n' do
          advance ()
        done;
        go ()
    | Some '%' ->
        let l = loc () in
        advance ();
        let start = !pos in
        while (match peek 0 with
               | Some c -> is_ident_char c
               | None -> false)
        do
          advance ()
        done;
        emit l (T_value (String.sub src start (!pos - start)));
        go ()
    | Some '@' ->
        let l = loc () in
        advance ();
        let start = !pos in
        while (match peek 0 with
               | Some c -> is_ident_char c
               | None -> false)
        do
          advance ()
        done;
        emit l (T_symbol (String.sub src start (!pos - start)));
        go ()
    | Some '"' ->
        let l = loc () in
        advance ();
        let start = !pos in
        while peek 0 <> Some '"' && peek 0 <> None do
          advance ()
        done;
        if peek 0 = None then D.errorf ~loc:l "unterminated string";
        let s = String.sub src start (!pos - start) in
        advance ();
        emit l (T_string s);
        go ()
    | Some c when is_digit c ->
        let l = loc () in
        let start = !pos in
        (* Floats may be decimal (1.5, 1e9) or hex (0x1.8p+3). *)
        let is_hex = c = '0' && peek 1 = Some 'x' in
        let float_char ch =
          is_digit ch || ch = '.' || ch = 'e' || ch = 'E' || ch = '-'
          || ch = '+'
        in
        let hex_char ch =
          is_digit ch || ch = 'x' || ch = '.'
          || (ch >= 'a' && ch <= 'f')
          || (ch >= 'A' && ch <= 'F')
          || ch = 'p' || ch = '+' || ch = '-'
        in
        if is_hex then
          while (match peek 0 with Some ch -> hex_char ch | None -> false) do
            advance ()
          done
        else begin
          while (match peek 0 with Some ch -> is_digit ch | None -> false) do
            advance ()
          done;
          if
            (match peek 0 with
            | Some ('.' | 'e' | 'E') -> true
            | _ -> false)
          then
            while
              match peek 0 with Some ch -> float_char ch | None -> false
            do
              advance ()
            done
        end;
        let text = String.sub src start (!pos - start) in
        (match int_of_string_opt text with
        | Some i -> emit l (T_int i)
        | None -> (
            match float_of_string_opt text with
            | Some f -> emit l (T_float f)
            | None -> D.errorf ~loc:l "bad numeric literal %S" text));
        go ()
    | Some c when is_ident_start c ->
        let l = loc () in
        let start = !pos in
        while (match peek 0 with
               | Some ch -> is_ident_char ch
               | None -> false)
        do
          advance ()
        done;
        let text = String.sub src start (!pos - start) in
        (match text with
        | "memref" when peek 0 = Some '<' ->
            let content = angle_content l in
            emit l (T_type (type_of_string ~loc:l ("memref<" ^ content ^ ">")))
        | "affine_map" when peek 0 = Some '<' ->
            let content = angle_content l in
            emit l (T_map (parse_map_text ~loc:l content))
        | "f32" -> emit l (T_type Typ.F32)
        | "f64" -> emit l (T_type Typ.F64)
        | "i1" -> emit l (T_type Typ.I1)
        | "i32" -> emit l (T_type Typ.I32)
        | "i64" -> emit l (T_type Typ.I64)
        | "index" -> emit l (T_type Typ.Index)
        | _ -> emit l (T_ident text));
        go ()
    | Some c ->
        let l = loc () in
        let one tok =
          advance ();
          emit l tok
        in
        (match (c, peek 1) with
        | '-', Some '>' ->
            advance ();
            advance ();
            emit l T_arrow
        | '(', _ -> one T_lparen
        | ')', _ -> one T_rparen
        | '{', _ -> one T_lbrace
        | '}', _ -> one T_rbrace
        | '[', _ -> one T_lbracket
        | ']', _ -> one T_rbracket
        | ',', _ -> one T_comma
        | ':', _ -> one T_colon
        | '=', _ -> one T_equal
        | '+', _ -> one T_plus
        | '-', _ -> one T_minus
        | '*', _ -> one T_star
        | _ -> D.errorf ~loc:l "unexpected character %C" c);
        go ()
  in
  go ();
  List.rev !toks

(* ---- parser state ------------------------------------------------------ *)

type state = {
  mutable toks : ltok list;
  values : (string, Core.value) Hashtbl.t;
}

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let peek2 st =
  match st.toks with _ :: t :: _ -> Some t.tok | _ -> None

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: r -> st.toks <- r);
  t

let expect st tok =
  let t = next st in
  if t.tok <> tok then
    D.errorf ~loc:t.loc "expected %s, found %s" (token_to_string tok)
      (token_to_string t.tok)

let expect_value st =
  let t = next st in
  match t.tok with
  | T_value v -> (v, t.loc)
  | other ->
      D.errorf ~loc:t.loc "expected %%value, found %s" (token_to_string other)

let expect_int st =
  let t = next st in
  match t.tok with
  | T_int i -> i
  | other ->
      D.errorf ~loc:t.loc "expected integer, found %s" (token_to_string other)

let expect_type st =
  let t = next st in
  match t.tok with
  | T_type ty -> ty
  | other ->
      D.errorf ~loc:t.loc "expected a type, found %s" (token_to_string other)

let lookup_value st name loc =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None -> D.errorf ~loc "use of undefined value %%%s" name

let define_value st name (v : Core.value) =
  v.Core.v_hint <- Some name;
  Hashtbl.replace st.values name v

(* ---- inline affine expressions over %values ----------------------------- *)

(* Returns (map expr over collected dims, operand list shared via ref). *)
let parse_inline_exprs st =
  let operands = ref [] in
  let dim_of name loc =
    let v = lookup_value st name loc in
    let rec find i = function
      | [] ->
          operands := !operands @ [ v ];
          i
      | v' :: _ when Core.value_equal v v' -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 !operands
  in
  let rec parse_expr () =
    let lhs = ref (parse_term ()) in
    let rec loop () =
      match (peek st).tok with
      | T_plus ->
          ignore (next st);
          lhs := E.Add (!lhs, parse_term ());
          loop ()
      | T_minus ->
          ignore (next st);
          lhs := E.Add (!lhs, E.Mul (E.Const (-1), parse_term ()));
          loop ()
      | _ -> !lhs
    in
    loop ()
  and parse_term () =
    let lhs = ref (parse_factor ()) in
    let rec loop () =
      match (peek st).tok with
      | T_star ->
          ignore (next st);
          lhs := E.Mul (!lhs, parse_factor ());
          loop ()
      | T_ident "floordiv" ->
          ignore (next st);
          lhs := E.Floor_div (!lhs, parse_factor ());
          loop ()
      | T_ident "mod" ->
          ignore (next st);
          lhs := E.Mod (!lhs, parse_factor ());
          loop ()
      | _ -> !lhs
    in
    loop ()
  and parse_factor () =
    let t = next st in
    match t.tok with
    | T_int i -> E.Const i
    | T_minus -> (
        match (next st).tok with
        | T_int i -> E.Const (-i)
        | other ->
            D.errorf ~loc:t.loc "expected integer after '-', found %s"
              (token_to_string other))
    | T_value v -> E.Dim (dim_of v t.loc)
    | T_lparen ->
        let e = parse_expr () in
        expect st T_rparen;
        e
    | other ->
        D.errorf ~loc:t.loc "expected index expression, found %s"
          (token_to_string other)
  in
  let exprs = ref [ parse_expr () ] in
  let rec more () =
    match (peek st).tok with
    | T_comma ->
        ignore (next st);
        exprs := parse_expr () :: !exprs;
        more ()
    | _ -> ()
  in
  more ();
  (List.rev !exprs, !operands)

let exprs_to_bound st exprs operands =
  ignore st;
  (Affine_map.make ~n_dims:(List.length operands) exprs, operands)

(* ---- operations --------------------------------------------------------- *)

let attach b op = ignore (Builder.insert b op)

let rec parse_block_ops st b ~terminator =
  let rec go () =
    match (peek st).tok with
    | T_rbrace -> ()
    | T_eof -> D.errorf ~loc:(peek st).loc "unexpected end of input"
    | _ ->
        parse_op st b;
        go ()
  in
  go ();
  ignore terminator

and parse_op st b =
  let t = peek st in
  (* Scope the op's first-token location over its whole parse: the op it
     builds — and any ops built for nested regions pick up their own
     [parse_op] location instead. *)
  Core.with_loc t.loc @@ fun () ->
  match t.tok with
  | T_value _ -> parse_assignment st b
  | T_ident "builtin.module" -> ignore (parse_module_at st b)
  | T_ident "func.func" -> ignore (parse_func_at st b)
  | T_ident "func.return" ->
      ignore (next st);
      (* Operands (if any) would follow; our funcs return nothing. *)
      ignore (Builder.build b "func.return")
  | T_ident "affine.for" -> parse_affine_for st b
  | T_ident "affine.yield" ->
      ignore (next st);
      ignore (Builder.build b "affine.yield")
  | T_ident "scf.yield" ->
      ignore (next st);
      ignore (Builder.build b "scf.yield")
  | T_ident "scf.for" -> parse_scf_for st b
  | T_ident "affine.store" -> parse_affine_store st b
  | T_ident "affine.matmul" ->
      ignore (next st);
      let ops = parse_value_list st in
      expect st T_colon;
      ignore (parse_type_list st);
      ignore
        (Builder.build b ~operands:ops "affine.matmul")
  | T_ident "memref.dealloc" ->
      ignore (next st);
      let v, loc = expect_value st in
      expect st T_colon;
      ignore (expect_type st);
      ignore
        (Builder.build b ~operands:[ lookup_value st v loc ] "memref.dealloc")
  | T_ident
      (("linalg.matmul" | "linalg.matvec" | "linalg.conv2d_nchw") as name) ->
      ignore (next st);
      let ins = parse_ins_outs st "ins" in
      let outs = parse_ins_outs st "outs" in
      ignore (Builder.build b ~operands:(ins @ outs) name)
  | T_ident "linalg.transpose" ->
      ignore (next st);
      let ins = parse_ins_outs st "ins" in
      let outs = parse_ins_outs st "outs" in
      expect st (T_ident "permutation");
      expect st T_equal;
      let perm = parse_int_list st in
      ignore
        (Builder.build b
           ~operands:(ins @ outs)
           ~attrs:[ ("permutation", Attr.Ints perm) ]
           "linalg.transpose")
  | T_ident "linalg.reshape" ->
      ignore (next st);
      let ins = parse_ins_outs st "ins" in
      let outs = parse_ins_outs st "outs" in
      expect st (T_ident "grouping");
      expect st T_equal;
      let grouping = parse_grouping st in
      ignore
        (Builder.build b
           ~operands:(ins @ outs)
           ~attrs:[ ("grouping", Attr.Grouping grouping) ]
           "linalg.reshape")
  | T_ident "linalg.fill" ->
      ignore (next st);
      expect st (T_ident "value");
      expect st T_equal;
      let v =
        match (next st).tok with
        | T_float f -> f
        | T_int i -> float_of_int i
        | other ->
            D.errorf ~loc:t.loc "expected fill value, found %s"
              (token_to_string other)
      in
      let outs = parse_ins_outs st "outs" in
      ignore
        (Builder.build b ~operands:outs
           ~attrs:[ ("value", Attr.Float v) ]
           "linalg.fill")
  | T_ident "linalg.contract" ->
      ignore (next st);
      expect st (T_ident "indexing_maps");
      expect st T_equal;
      let maps = parse_map_list st in
      let ins = parse_ins_outs st "ins" in
      let outs = parse_ins_outs st "outs" in
      ignore
        (Builder.build b
           ~operands:(ins @ outs)
           ~attrs:
             [ ("indexing_maps", Attr.List (List.map (fun m -> Attr.Map m) maps)) ]
           "linalg.contract")
  | T_ident
      (("blas.sgemm" | "blas.sgemv" | "blas.stranspose"
       | "blas.sreshape_copy" | "blas.sconv2d") as name) ->
      ignore (next st);
      let ops = parse_value_list st in
      expect st T_colon;
      ignore (parse_type_list st);
      let attrs = parse_trailing_attrs st in
      ignore (Builder.build b ~operands:ops ~attrs name)
  | T_string _ -> parse_generic st b ~results:[]
  | other ->
      D.errorf ~loc:t.loc "expected an operation, found %s"
        (token_to_string other)

and parse_value_list st =
  let rec go acc =
    let v, loc = expect_value st in
    let value = lookup_value st v loc in
    match (peek st).tok with
    | T_comma ->
        ignore (next st);
        go (value :: acc)
    | _ -> List.rev (value :: acc)
  in
  go []

and parse_type_list st =
  let rec go acc =
    let ty = expect_type st in
    match (peek st).tok with
    | T_comma ->
        ignore (next st);
        go (ty :: acc)
    | _ -> List.rev (ty :: acc)
  in
  go []

and parse_int_list st =
  expect st T_lbracket;
  let rec go acc =
    match (next st).tok with
    | T_int i -> (
        match (next st).tok with
        | T_comma -> go (i :: acc)
        | T_rbracket -> List.rev (i :: acc)
        | other ->
            D.errorf "expected ',' or ']', found %s" (token_to_string other))
    | T_rbracket -> List.rev acc
    | other -> D.errorf "expected integer, found %s" (token_to_string other)
  in
  go []

and parse_grouping st =
  (* {g, g, ...} where g := int | {int, int, ...} *)
  expect st T_lbrace;
  let parse_group () =
    match (peek st).tok with
    | T_lbrace ->
        ignore (next st);
        let rec ints acc =
          let i = expect_int st in
          match (next st).tok with
          | T_comma -> ints (i :: acc)
          | T_rbrace -> List.rev (i :: acc)
          | other ->
              D.errorf "expected ',' or '}', found %s" (token_to_string other)
        in
        ints []
    | _ -> [ expect_int st ]
  in
  let rec go acc =
    let g = parse_group () in
    match (next st).tok with
    | T_comma -> go (g :: acc)
    | T_rbrace -> List.rev (g :: acc)
    | other -> D.errorf "expected ',' or '}', found %s" (token_to_string other)
  in
  go []

and parse_map_list st =
  expect st T_lbracket;
  let rec go acc =
    let m =
      match (next st).tok with
      | T_map m -> m
      | other ->
          D.errorf "expected affine_map<...>, found %s" (token_to_string other)
    in
    match (next st).tok with
    | T_comma -> go (m :: acc)
    | T_rbracket -> List.rev (m :: acc)
    | other -> D.errorf "expected ',' or ']', found %s" (token_to_string other)
  in
  go []

and parse_ins_outs st kw =
  expect st (T_ident kw);
  expect st T_lparen;
  let vs = parse_value_list st in
  expect st T_colon;
  ignore (parse_type_list st);
  expect st T_rparen;
  vs

and parse_trailing_attrs st =
  let rec go acc =
    match ((peek st).tok, peek2 st) with
    | T_ident name, Some T_equal ->
        ignore (next st);
        ignore (next st);
        let value =
          match (peek st).tok with
          | T_lbracket -> Attr.Ints (parse_int_list st)
          | T_lbrace -> Attr.Grouping (parse_grouping st)
          | T_int i ->
              ignore (next st);
              Attr.Int i
          | T_float f ->
              ignore (next st);
              Attr.Float f
          | T_ident "true" ->
              ignore (next st);
              Attr.Bool true
          | T_ident "false" ->
              ignore (next st);
              Attr.Bool false
          | other ->
              D.errorf "unsupported attribute value %s" (token_to_string other)
        in
        go ((name, value) :: acc)
    | _ -> List.rev acc
  in
  go []

and parse_assignment st b =
  (* %r[, %r2 ...] = <op> *)
  let rec results acc =
    let v, _ = expect_value st in
    match (next st).tok with
    | T_comma -> results (v :: acc)
    | T_equal -> List.rev (v :: acc)
    | other ->
        D.errorf "expected ',' or '=', found %s" (token_to_string other)
  in
  let results = results [] in
  let t = peek st in
  match t.tok with
  | T_ident "affine.load" ->
      ignore (next st);
      let memref_name, mloc = expect_value st in
      let memref = lookup_value st memref_name mloc in
      expect st T_lbracket;
      let exprs, operands =
        if (peek st).tok = T_rbracket then ([], [])
        else parse_inline_exprs st
      in
      expect st T_rbracket;
      expect st T_colon;
      ignore (expect_type st);
      let map, operands = exprs_to_bound st exprs operands in
      let op =
        Builder.build b
          ~operands:(memref :: operands)
          ~result_types:[ Typ.memref_elem memref.Core.v_typ ]
          ~attrs:[ ("map", Attr.Map map) ]
          "affine.load"
      in
      bind_results st results op
  | T_ident "affine.apply" ->
      ignore (next st);
      let exprs, operands = parse_inline_exprs st in
      let map, operands = exprs_to_bound st exprs operands in
      let op =
        Builder.build b ~operands ~result_types:[ Typ.Index ]
          ~attrs:[ ("map", Attr.Map map) ]
          "affine.apply"
      in
      bind_results st results op
  | T_ident "arith.constant" ->
      ignore (next st);
      let value =
        match (next st).tok with
        | T_int i -> `I i
        | T_float f -> `F f
        | T_minus -> (
            match (next st).tok with
            | T_int i -> `I (-i)
            | T_float f -> `F (-.f)
            | other ->
                D.errorf "expected number after '-', found %s"
                  (token_to_string other))
        | other ->
            D.errorf "expected constant value, found %s"
              (token_to_string other)
      in
      expect st T_colon;
      let ty = expect_type st in
      let attr =
        match (value, ty) with
        | `I i, t when Typ.is_float t -> Attr.Float (float_of_int i)
        | `I i, _ -> Attr.Int i
        | `F f, _ -> Attr.Float f
      in
      let op =
        Builder.build b ~result_types:[ ty ]
          ~attrs:[ ("value", attr) ]
          "arith.constant"
      in
      bind_results st results op
  | T_ident
      (("arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
       | "arith.addi" | "arith.subi" | "arith.muli" | "arith.floordivsi"
       | "arith.remsi") as name) ->
      ignore (next st);
      let ops = parse_value_list st in
      expect st T_colon;
      let ty = expect_type st in
      let op = Builder.build b ~operands:ops ~result_types:[ ty ] name in
      bind_results st results op
  | T_ident "memref.alloc" ->
      ignore (next st);
      expect st T_lparen;
      expect st T_rparen;
      expect st T_colon;
      let ty = expect_type st in
      let op = Builder.build b ~result_types:[ ty ] "memref.alloc" in
      bind_results st results op
  | T_string _ -> parse_generic st b ~results
  | other ->
      D.errorf ~loc:t.loc "expected an operation after '=', found %s"
        (token_to_string other)

and bind_results st names (op : Core.op) =
  if List.length names <> Core.num_results op then
    D.errorf "operation %s produces %d results, %d named" op.Core.o_name
      (Core.num_results op) (List.length names);
  List.iteri (fun i name -> define_value st name (Core.result op i)) names

and parse_generic st b ~results =
  let name =
    match (next st).tok with
    | T_string s -> s
    | other -> D.errorf "expected op name, found %s" (token_to_string other)
  in
  expect st T_lparen;
  let operands =
    if (peek st).tok = T_rparen then []
    else parse_value_list st
  in
  expect st T_rparen;
  let attrs =
    if (peek st).tok = T_lbrace then begin
      ignore (next st);
      let rec go acc =
        match (peek st).tok with
        | T_rbrace ->
            ignore (next st);
            List.rev acc
        | _ -> (
            let aname =
              match (next st).tok with
              | T_ident s -> s
              | other ->
                  D.errorf "expected attribute name, found %s"
                    (token_to_string other)
            in
            expect st T_equal;
            let value =
              match (peek st).tok with
              | T_lbracket -> Attr.Ints (parse_int_list st)
              | T_int i ->
                  ignore (next st);
                  Attr.Int i
              | T_float f ->
                  ignore (next st);
                  Attr.Float f
              | T_map m ->
                  ignore (next st);
                  Attr.Map m
              | T_string s ->
                  ignore (next st);
                  Attr.Str s
              | other ->
                  D.errorf "unsupported attribute value %s"
                    (token_to_string other)
            in
            match (peek st).tok with
            | T_comma ->
                ignore (next st);
                go ((aname, value) :: acc)
            | _ -> go ((aname, value) :: acc))
      in
      go []
    end
    else []
  in
  expect st T_colon;
  expect st T_lparen;
  let _operand_types =
    if (peek st).tok = T_rparen then [] else parse_type_list st
  in
  expect st T_rparen;
  expect st T_arrow;
  expect st T_lparen;
  let result_types =
    if (peek st).tok = T_rparen then [] else parse_type_list st
  in
  expect st T_rparen;
  let op = Builder.build b ~operands ~attrs ~result_types name in
  bind_results st results op

and parse_affine_store st b =
  ignore (next st);
  let v, vloc = expect_value st in
  expect st T_comma;
  let memref_name, mloc = expect_value st in
  let memref = lookup_value st memref_name mloc in
  expect st T_lbracket;
  let exprs, operands =
    if (peek st).tok = T_rbracket then ([], []) else parse_inline_exprs st
  in
  expect st T_rbracket;
  expect st T_colon;
  ignore (expect_type st);
  let map, operands = exprs_to_bound st exprs operands in
  ignore
    (Builder.build b
       ~operands:((lookup_value st v vloc :: memref :: operands))
       ~attrs:[ ("map", Attr.Map map) ]
       "affine.store")

and parse_bound st ~minimize =
  (* expr | max(...) | min(...) *)
  let kw = if minimize then "min" else "max" in
  match ((peek st).tok, peek2 st) with
  | T_ident k, Some T_lparen when k = kw ->
      ignore (next st);
      ignore (next st);
      let exprs, operands = parse_inline_exprs st in
      expect st T_rparen;
      exprs_to_bound st exprs operands
  | _ ->
      let exprs, operands = parse_inline_exprs st in
      (match exprs with
      | [ _ ] -> ()
      | _ -> D.errorf "loop bound must be a single expression or %s(...)" kw);
      exprs_to_bound st exprs operands

and parse_affine_for st b =
  ignore (next st);
  let iv_name, _ = expect_value st in
  expect st T_equal;
  let lb_map, lb_ops = parse_bound st ~minimize:false in
  expect st (T_ident "to");
  let ub_map, ub_ops = parse_bound st ~minimize:true in
  let step =
    match (peek st).tok with
    | T_ident "step" ->
        ignore (next st);
        expect_int st
    | _ -> 1
  in
  expect st T_lbrace;
  let block = Core.create_block ~hints:[ iv_name ] [ Typ.Index ] in
  define_value st iv_name block.Core.b_args.(0);
  let region = Core.create_region [ block ] in
  let op =
    Core.create_op
      ~operands:(lb_ops @ ub_ops)
      ~attrs:
        [
          ("lower_bound", Attr.Map lb_map);
          ("upper_bound", Attr.Map ub_map);
          ("step", Attr.Int step);
        ]
      ~regions:[ region ] "affine.for"
  in
  attach b op;
  let body_builder = Builder.at_end block in
  parse_block_ops st body_builder ~terminator:"affine.yield";
  expect st T_rbrace;
  (* Ensure the terminator exists (printer prints it, but be lenient). *)
  (match List.rev (Core.ops_of_block block) with
  | last :: _ when String.equal last.Core.o_name "affine.yield" -> ()
  | _ -> ignore (Builder.build body_builder "affine.yield"))

and parse_scf_for st b =
  ignore (next st);
  let iv_name, _ = expect_value st in
  expect st T_equal;
  let lb, lloc = expect_value st in
  expect st (T_ident "to");
  let ub, uloc = expect_value st in
  expect st (T_ident "step");
  let sv, sloc = expect_value st in
  expect st T_lbrace;
  let block = Core.create_block ~hints:[ iv_name ] [ Typ.Index ] in
  define_value st iv_name block.Core.b_args.(0);
  let region = Core.create_region [ block ] in
  let op =
    Core.create_op
      ~operands:
        [
          lookup_value st lb lloc;
          lookup_value st ub uloc;
          lookup_value st sv sloc;
        ]
      ~regions:[ region ] "scf.for"
  in
  attach b op;
  let body_builder = Builder.at_end block in
  parse_block_ops st body_builder ~terminator:"scf.yield";
  expect st T_rbrace;
  match List.rev (Core.ops_of_block block) with
  | last :: _ when String.equal last.Core.o_name "scf.yield" -> ()
  | _ -> ignore (Builder.build body_builder "scf.yield")

and parse_func_at st b =
  expect st (T_ident "func.func");
  let name =
    match (next st).tok with
    | T_symbol s -> s
    | other -> D.errorf "expected @name, found %s" (token_to_string other)
  in
  expect st T_lparen;
  let rec params acc =
    match (peek st).tok with
    | T_rparen ->
        ignore (next st);
        List.rev acc
    | T_comma ->
        ignore (next st);
        params acc
    | _ ->
        let v, _ = expect_value st in
        expect st T_colon;
        let ty = expect_type st in
        params ((v, ty) :: acc)
  in
  let params = params [] in
  expect st T_lbrace;
  let f =
    Core.create_func ~name
      ~arg_types:(List.map snd params)
      ~arg_hints:(List.map fst params)
      ()
  in
  List.iteri
    (fun i (pname, _) ->
      define_value st pname (Core.func_entry f).Core.b_args.(i))
    params;
  attach b f;
  let body_builder = Builder.at_end (Core.func_entry f) in
  parse_block_ops st body_builder ~terminator:"func.return";
  expect st T_rbrace;
  f

and parse_module_at st b =
  expect st (T_ident "builtin.module");
  expect st T_lbrace;
  let m = Core.create_module () in
  attach b m;
  let inner = Builder.at_end (Core.module_block m) in
  parse_block_ops st inner ~terminator:"";
  expect st T_rbrace;
  m

(* ---- entry points -------------------------------------------------------- *)

let with_state ~file src k =
  let st = { toks = tokenize ~file src; values = Hashtbl.create 64 } in
  let result = k st in
  (match (peek st).tok with
  | T_eof -> ()
  | other ->
      D.errorf ~loc:(peek st).loc "trailing input: %s" (token_to_string other));
  result

let parse_module ?(file = "<ir>") src =
  with_state ~file src (fun st ->
      (* Parse into a scratch holder block, then extract. *)
      let holder = Core.create_block [] in
      let b = Builder.at_end holder in
      let m = parse_module_at st b in
      Core.detach_op m;
      Verifier.verify m;
      m)

let parse_func ?(file = "<ir>") src =
  with_state ~file src (fun st ->
      let holder = Core.create_block [] in
      let b = Builder.at_end holder in
      let f = parse_func_at st b in
      Core.detach_op f;
      Verifier.verify f;
      f)
