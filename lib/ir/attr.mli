(** Attributes attach compile-time information to operations. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type of Typ.t
  | Ints of int list
  | Map of Affine_map.t
  | Grouping of int list list
      (** reshape dimension grouping, e.g. [{{0,1},2}] *)
  | List of t list

(** Structural equality with a physical ([==]) fast path at every node;
    monomorphic (no polymorphic compare) and length-guarded on lists.
    [Float] keeps IEEE semantics ([nan <> nan]) on structurally distinct
    nodes; a NaN attribute that went through {!intern} is one canonical
    node, so it equals itself — bitwise NaN equality, as in MLIR. *)
val equal : t -> t -> bool

(** [intern a] hash-conses [a] (and nested types/attributes, bottom-up)
    into canonical nodes. The interner distinguishes floats bitwise, so
    [-0.] and [0.] — which print differently — never merge, and NaN
    attributes are uniqued by payload instead of defeating the table.
    [Core.create_op]/[Core.set_attr] intern every attribute they store.
    Domain-safe (see {!Support.Intern}). *)
val intern : t -> t

val interner_stats : unit -> Support.Intern.stats
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Typed accessors} — raise [Invalid_argument] on kind mismatch. *)

val get_int : t -> int
val get_float : t -> float
val get_str : t -> string
val get_bool : t -> bool
val get_ints : t -> int list
val get_map : t -> Affine_map.t
val get_type : t -> Typ.t
val get_grouping : t -> int list list
val get_list : t -> t list
