(** Dialect registry: per-operation verification and metadata.

    Dialect libraries register their operation definitions here (explicitly,
    via their [register ()] entry points). The {!Verifier} consults the
    registry; unregistered operations only get generic structural checks.

    The registry is {e write-once-before-parallelism}: lookups are
    unsynchronized (they sit on the verifier hot path), so all
    registration must happen before IR flows through a second domain.
    Dialect [register ()] entry points go through {!register_once}, which
    serializes racing first registrations and never publishes a
    half-registered dialect; multi-domain drivers additionally register
    every dialect eagerly on the calling domain before spawning workers
    (see [docs/CONCURRENCY.md]). *)

type op_def = {
  od_name : string;  (** fully qualified, e.g. ["linalg.matmul"] *)
  od_verify : Core.op -> unit;  (** raise {!Support.Diag.Error} on failure *)
  od_terminator : bool;
  od_commutative : bool;  (** operand order is semantically irrelevant *)
  od_summary : string;
}

(** [no_verify] is a verifier that accepts anything. *)
val no_verify : Core.op -> unit

val def :
  ?verify:(Core.op -> unit) ->
  ?terminator:bool ->
  ?commutative:bool ->
  ?summary:string ->
  string ->
  op_def

(** [register d] installs (or replaces) the definition. *)
val register : op_def -> unit

val register_all : op_def list -> unit

(** [register_once flag body] runs [body] at most once across all
    domains: the fast path is a lock-free [Atomic.get flag]; otherwise
    callers serialize on a process-wide registration mutex and [flag] is
    set only {e after} [body] returns, so a concurrent caller either runs
    the registration itself or blocks until it is fully visible — never
    proceeds past a half-registered dialect. Reentrant on the same
    domain (dialect registrations nest). Every dialect's [register ()]
    must be implemented with this. *)
val register_once : bool Atomic.t -> (unit -> unit) -> unit
val lookup : string -> op_def option
val is_registered : string -> bool
val is_terminator : Core.op -> bool
val is_commutative : Core.op -> bool

(** All registered op names, sorted — used by documentation and tests. *)
val registered_ops : unit -> string list

(** [dialect_of "affine.for"] is ["affine"]. *)
val dialect_of : string -> string
