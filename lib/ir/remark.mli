(** Structured compiler remarks: machine-readable notes about what the
    optimizer did ([Applied]), what it almost did ([Missed], with the
    matcher stage that rejected the near-miss), analysis observations,
    and user-facing warnings.

    Like {!Trace}, delivery is through pluggable sinks so tests capture
    remarks instead of scraping stderr. With no sink installed,
    [Warning]s still print to stderr (warnings must never be silently
    dropped) and everything else is discarded. Every remark is also
    mirrored into the trace as an instant event (category ["remark"])
    when tracing is enabled. *)

type kind =
  | Applied  (** a pattern/tactic rewrote the IR *)
  | Missed  (** a near-miss: a tactic matched partially, then a stage rejected it *)
  | Analysis
  | Warning

type t = {
  r_kind : kind;
  r_context : string option;  (** enclosing pass or component *)
  r_pattern : string option;  (** pattern/tactic name *)
  r_stage : string option;
      (** for [Missed]: the matcher stage that rejected — one of
          ["control-flow"], ["op-chain"], ["access-unification"],
          ["coverage"] *)
  r_loc : Support.Loc.t;
  r_message : string;
}

val kind_name : kind -> string

(** Render as [LOC: remark [KIND] PATTERN (stage: STAGE): MESSAGE]. *)
val to_string : t -> string

type sink = t -> unit

type handle

(** Sink stacks are domain-local, like {!Trace}'s: a sink installed on
    one domain receives only remarks emitted by that domain
    (docs/CONCURRENCY.md). *)
val install : sink -> handle

val uninstall : handle -> unit

(** [with_sink sink f] runs [f ()] with [sink] installed,
    exception-safely uninstalling it afterwards. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** True when a sink is installed on the calling domain. Emitters of
    non-warning remarks should guard message construction with this —
    near-miss explanation is only worth computing when someone is
    listening. *)
val enabled : unit -> bool

(** Number of sinks installed on the calling domain (for tests). *)
val installed_count : unit -> int

val emit : t -> unit

(** [remark ?loc ?context ?pattern ?stage kind fmt ...] — printf-style
    construction + {!emit}. *)
val remark :
  ?loc:Support.Loc.t ->
  ?context:string ->
  ?pattern:string ->
  ?stage:string ->
  kind ->
  ('a, unit, string, unit) format4 ->
  'a

(** Warnings print to stderr when no sink is installed. *)
val warningf :
  ?loc:Support.Loc.t ->
  ?context:string ->
  ('a, unit, string, unit) format4 ->
  'a

(** Parses a [--remarks] argument: ["missed"], ["applied"],
    ["analysis"], or ["all"]. *)
val kinds_of_string : string -> kind list option

(** A stderr printer filtered to the given kinds (all kinds if
    omitted) — what the [--remarks] CLI flag installs. *)
val stderr_sink : ?kinds:kind list -> unit -> sink
