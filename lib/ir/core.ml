type value = {
  v_id : int;
  mutable v_typ : Typ.t;
  mutable v_hint : string option;
  mutable v_def : vdef;
  mutable v_uses : (op * int) list;
}

and vdef = Def_op of op * int | Def_block_arg of block * int

and op = {
  o_id : int;
  o_name : string;
  mutable o_operands : value array;
  mutable o_results : value array;
  mutable o_attrs : (string * Attr.t) list;
  o_regions : region array;
  mutable o_parent : block option;
  mutable o_loc : Support.Loc.t;
  mutable o_prov : derivation list;
}

and derivation = { dv_pattern : string; dv_locs : Support.Loc.t list }

and block = {
  b_id : int;
  mutable b_args : value array;
  mutable b_head : op list;
  mutable b_tail_rev : op list;
  mutable b_parent : region option;
}

and region = { r_id : int; mutable r_blocks : block list }

let ids = Support.Id_gen.global
let fresh () = Support.Id_gen.next ids

(* ---- mutation listener -------------------------------------------------- *)

type listener = {
  on_op_inserted : op -> unit;
  on_op_erased : op -> unit;
  on_operand_update : op -> unit;
}

(* A stack of listeners, newest first; every notification reaches all of
   them. A provenance-collecting listener (installed per pattern attempt
   by the rewriter) therefore composes with the worklist driver's
   re-enqueue listener instead of shadowing it. The stack is domain-local
   (Domain.DLS): a rewrite driver on one domain never observes — or
   misses — mutations performed by a compilation on another domain. *)
let listeners_key : listener list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let notify_inserted op =
  match Domain.DLS.get listeners_key with
  | [] -> ()
  | ls -> List.iter (fun l -> l.on_op_inserted op) ls

let notify_erased op =
  match Domain.DLS.get listeners_key with
  | [] -> ()
  | ls -> List.iter (fun l -> l.on_op_erased op) ls

let notify_operand_update op =
  match Domain.DLS.get listeners_key with
  | [] -> ()
  | ls -> List.iter (fun l -> l.on_operand_update op) ls

let listener_depth () = List.length (Domain.DLS.get listeners_key)

let with_listener l f =
  let saved = Domain.DLS.get listeners_key in
  Domain.DLS.set listeners_key (l :: saved);
  Fun.protect ~finally:(fun () -> Domain.DLS.set listeners_key saved) f

(* ---- ambient source location -------------------------------------------- *)

(* Frontends scope op creation with [with_loc] so every op built for a
   statement — including ops emitted deep inside dialect builders — is
   stamped with that statement's source location. Domain-local: each
   domain's frontend scopes its own compilation. *)
let ambient_loc_key : Support.Loc.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Support.Loc.unknown)

let current_loc () = Domain.DLS.get ambient_loc_key

let with_loc loc f =
  let saved = Domain.DLS.get ambient_loc_key in
  Domain.DLS.set ambient_loc_key loc;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_loc_key saved) f

(* ---- intrusive use lists ------------------------------------------------ *)

let add_use v user index = v.v_uses <- (user, index) :: v.v_uses

let remove_use v user index =
  v.v_uses <-
    List.filter (fun (o, i) -> not (o == user && i = index)) v.v_uses

(* ---- construction ------------------------------------------------------- *)

(* Intern every type and attribute at the construction chokepoints, so all
   IR — whether built by builders, the parser, or rewrite patterns — holds
   canonical nodes and downstream [equal] calls hit the [==] fast path.
   Re-interning an already-canonical node is one lock-free table probe. *)
let intern_attrs attrs =
  match attrs with
  | [] -> attrs
  | _ ->
      List.map
        (fun ((name, a) as pair) ->
          let a' = Attr.intern a in
          if a' == a then pair else (name, a'))
        attrs

let create_op ?loc ?(operands = []) ?(result_types = []) ?(attrs = [])
    ?(regions = []) name =
  let attrs = intern_attrs attrs in
  let loc =
    match loc with Some l -> l | None -> Domain.DLS.get ambient_loc_key
  in
  let op =
    {
      o_id = fresh ();
      o_name = name;
      o_operands = Array.of_list operands;
      o_results = [||];
      o_attrs = attrs;
      o_regions = Array.of_list regions;
      o_parent = None;
      o_loc = loc;
      o_prov = [];
    }
  in
  Array.iteri (fun i v -> add_use v op i) op.o_operands;
  op.o_results <-
    Array.of_list
      (List.mapi
         (fun i t ->
           {
             v_id = fresh ();
             v_typ = Typ.intern t;
             v_hint = None;
             v_def = Def_op (op, i);
             v_uses = [];
           })
         result_types);
  op

let create_block ?(hints = []) arg_types =
  let block =
    { b_id = fresh (); b_args = [||]; b_head = []; b_tail_rev = [];
      b_parent = None }
  in
  block.b_args <-
    Array.of_list
      (List.mapi
         (fun i t ->
           let hint = List.nth_opt hints i in
           {
             v_id = fresh ();
             v_typ = Typ.intern t;
             v_hint = hint;
             v_def = Def_block_arg (block, i);
             v_uses = [];
           })
         arg_types);
  block

let create_region blocks =
  let r = { r_id = fresh (); r_blocks = blocks } in
  List.iter (fun b -> b.b_parent <- Some r) blocks;
  r

let result op i = op.o_results.(i)
let operand op i = op.o_operands.(i)
let num_operands op = Array.length op.o_operands
let num_results op = Array.length op.o_results

(* ---- location and provenance -------------------------------------------- *)

let op_loc op = op.o_loc
let set_loc op loc = op.o_loc <- loc

let add_derivation op dv = op.o_prov <- dv :: op.o_prov

let provenance op = op.o_prov

let find_attr op name = List.assoc_opt name op.o_attrs

let attr op name =
  match find_attr op name with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Core.attr: %s has no attribute %S" op.o_name name)

let set_attr op name a =
  op.o_attrs <- (name, Attr.intern a) :: List.remove_assoc name op.o_attrs

let remove_attr op name = op.o_attrs <- List.remove_assoc name op.o_attrs
let has_attr op name = Option.is_some (find_attr op name)
let region op i = op.o_regions.(i)

let single_block op i =
  match (region op i).r_blocks with
  | [ b ] -> b
  | bs ->
      invalid_arg
        (Printf.sprintf "Core.single_block: %s region %d has %d blocks"
           op.o_name i (List.length bs))

(* Map region -> enclosing op, rebuilt lazily. We avoid a region->op pointer
   to keep [create_op] non-cyclic over regions; lookups scan the block's
   parent region against candidate ops via a registry keyed by region id.
   [erase_op] unregisters the erased subtree so the table stays bounded
   across pipeline runs. The table is domain-local: IR is confined to the
   domain that created it (docs/CONCURRENCY.md), and region ids are
   globally unique (atomic Id_gen), so per-domain tables never alias. *)
let region_owner_key : (int, op) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let region_owner () = Domain.DLS.get region_owner_key

let region_registry_size () = Hashtbl.length (region_owner ())

let register_regions op =
  let owner = region_owner () in
  Array.iter (fun r -> Hashtbl.replace owner r.r_id op) op.o_regions

let block_parent_op block =
  match block.b_parent with
  | None -> None
  | Some r -> Hashtbl.find_opt (region_owner ()) r.r_id

let parent_op op =
  match op.o_parent with None -> None | Some b -> block_parent_op b

let rec is_under ~root op =
  op == root
  || match parent_op op with Some p -> is_under ~root p | None -> false

(* ---- block op sequences ------------------------------------------------- *)

(* A block's op sequence is [b_head @ List.rev b_tail_rev]: appends push onto
   the reversed tail in O(1) (long straight-line blocks are built one op at a
   time by the lowerings), and readers flush the tail into the head. *)

let flush_block b =
  match b.b_tail_rev with
  | [] -> ()
  | tail ->
      b.b_head <- b.b_head @ List.rev tail;
      b.b_tail_rev <- []

let ops_of_block b =
  flush_block b;
  b.b_head

let append_op block op =
  register_regions op;
  op.o_parent <- Some block;
  block.b_tail_rev <- op :: block.b_tail_rev;
  notify_inserted op

let prepend_op block op =
  register_regions op;
  op.o_parent <- Some block;
  block.b_head <- op :: block.b_head;
  notify_inserted op

let insert_relative ~before ~anchor op =
  match anchor.o_parent with
  | None -> invalid_arg "Core.insert: anchor is detached"
  | Some block ->
      register_regions op;
      op.o_parent <- Some block;
      flush_block block;
      let rec go = function
        | [] -> invalid_arg "Core.insert: anchor not found in its block"
        | o :: rest when o == anchor ->
            if before then op :: o :: rest else o :: op :: rest
        | o :: rest -> o :: go rest
      in
      block.b_head <- go block.b_head;
      notify_inserted op

let insert_before ~anchor op = insert_relative ~before:true ~anchor op
let insert_after ~anchor op = insert_relative ~before:false ~anchor op

let detach_op op =
  match op.o_parent with
  | None -> ()
  | Some block ->
      let not_op o = not (o == op) in
      block.b_head <- List.filter not_op block.b_head;
      block.b_tail_rev <- List.filter not_op block.b_tail_rev;
      op.o_parent <- None

(* ---- traversal ---------------------------------------------------------- *)

let rec walk root f =
  f root;
  Array.iter
    (fun r ->
      List.iter
        (fun b -> List.iter (fun op -> walk op f) (ops_of_block b))
        r.r_blocks)
    root.o_regions

let rec walk_post root f =
  Array.iter
    (fun r ->
      List.iter
        (fun b -> List.iter (fun op -> walk_post op f) (ops_of_block b))
        r.r_blocks)
    root.o_regions;
  f root

let rec walk_safe root f =
  f root;
  walk_safe_children root f

and walk_safe_children root f =
  Array.iter
    (fun r ->
      List.iter
        (fun b ->
          let snapshot = ops_of_block b in
          List.iter
            (fun op ->
              (* Skip ops detached by earlier callbacks in this sweep. *)
              if op.o_parent != None then begin
                f op;
                (* [f] may have detached [op] itself (a rewrite consuming
                   the whole nest); its descendants still carry parents
                   inside the detached subtree, so re-check before
                   descending into erased IR. *)
                if op.o_parent != None then walk_safe_children op f
              end)
            snapshot)
        r.r_blocks)
    root.o_regions

(* ---- erasure ------------------------------------------------------------ *)

let erase_op op =
  notify_erased op;
  detach_op op;
  (* Structurally invalidate the whole subtree: drop its operand use-list
     entries (so use counts of surviving values stay exact) and unregister
     its regions (so the region registry does not grow across runs). *)
  let owner = region_owner () in
  walk op (fun o ->
      Array.iteri (fun i v -> remove_use v o i) o.o_operands;
      o.o_operands <- [||];
      Array.iter (fun r -> Hashtbl.remove owner r.r_id) o.o_regions)

(* ---- use-def queries and mutation --------------------------------------- *)

let defining_op v =
  match v.v_def with Def_op (op, _) -> Some op | Def_block_arg _ -> None

let uses root v =
  List.rev (List.filter (fun (o, _) -> is_under ~root o) v.v_uses)

let has_uses root v = List.exists (fun (o, _) -> is_under ~root o) v.v_uses

let set_operand op i v =
  let old = op.o_operands.(i) in
  if not (old == v) then begin
    remove_use old op i;
    op.o_operands.(i) <- v;
    add_use v op i;
    notify_operand_update op
  end

let replace_uses root ~old_v ~new_v =
  if not (old_v == new_v) then
    List.iter
      (fun (o, i) -> if is_under ~root o then set_operand o i new_v)
      old_v.v_uses

let rec is_in_block ~block op =
  match op.o_parent with
  | Some b when b == block -> true
  | _ -> (
      match parent_op op with
      | Some p -> is_in_block ~block p
      | None -> false)

let replace_uses_in_block block ~old_v ~new_v =
  if not (old_v == new_v) then
    List.iter
      (fun (o, i) -> if is_in_block ~block o then set_operand o i new_v)
      old_v.v_uses

let find_op root p =
  let exception Found of op in
  try
    walk root (fun op -> if op != root && p op then raise (Found op));
    None
  with Found op -> Some op

let create_module () =
  let block = create_block [] in
  let region = create_region [ block ] in
  let m = create_op ~regions:[ region ] "builtin.module" in
  register_regions m;
  m

let module_block m =
  if not (String.equal m.o_name "builtin.module") then
    invalid_arg "Core.module_block: not a module";
  single_block m 0

let create_func ~name ~arg_types ?arg_hints ?(result_types = []) () =
  let entry = create_block ?hints:arg_hints arg_types in
  let region = create_region [ entry ] in
  let fn_type = Typ.Fun (arg_types, result_types) in
  let f =
    create_op ~regions:[ region ]
      ~attrs:[ ("sym_name", Attr.Str name); ("function_type", Attr.Type fn_type) ]
      "func.func"
  in
  register_regions f;
  f

let is_func op = String.equal op.o_name "func.func"

let func_name op =
  if not (is_func op) then invalid_arg "Core.func_name: not a func.func";
  Attr.get_str (attr op "sym_name")

let func_entry op =
  if not (is_func op) then invalid_arg "Core.func_entry: not a func.func";
  single_block op 0

let func_args op = Array.to_list (func_entry op).b_args

let find_func m name =
  List.find_opt
    (fun op -> is_func op && String.equal (func_name op) name)
    (ops_of_block (module_block m))

let rec clone_op_with map op =
  let remap v =
    match Hashtbl.find_opt map v.v_id with Some v' -> v' | None -> v
  in
  let regions =
    Array.to_list op.o_regions
    |> List.map (fun r ->
           let blocks =
             List.map
               (fun b ->
                 let b' =
                   create_block
                     ?hints:None
                     (Array.to_list (Array.map (fun a -> a.v_typ) b.b_args))
                 in
                 Array.iteri
                   (fun i a ->
                     b'.b_args.(i).v_hint <- a.v_hint;
                     Hashtbl.replace map a.v_id b'.b_args.(i))
                   b.b_args;
                 (b, b'))
               r.r_blocks
           in
           (* Clone block contents after all block args are mapped. *)
           List.iter
             (fun (b, b') ->
               List.iter
                 (fun child -> append_op b' (clone_op_with map child))
                 (ops_of_block b))
             blocks;
           create_region (List.map snd blocks))
  in
  let op' =
    create_op
      ~operands:(List.map remap (Array.to_list op.o_operands))
      ~result_types:(Array.to_list (Array.map (fun r -> r.v_typ) op.o_results))
      ~attrs:op.o_attrs ~regions op.o_name
  in
  register_regions op';
  op'.o_loc <- op.o_loc;
  op'.o_prov <- op.o_prov;
  Array.iteri
    (fun i r ->
      op'.o_results.(i).v_hint <- r.v_hint;
      Hashtbl.replace map r.v_id op'.o_results.(i))
    op.o_results;
  op'

let clone_op op = clone_op_with (Hashtbl.create 64) op

let clone_ops ops =
  let map = Hashtbl.create 64 in
  List.map (clone_op_with map) ops

let op_equal a b = a == b
let value_equal a b = a == b
