module F = Format

type env = {
  names : (int, string) Hashtbl.t;  (** value id -> printed name *)
  used : (string, unit) Hashtbl.t;
  next_suffix : (string, int) Hashtbl.t;
      (** per-base resume point for suffix probing: suffixes below it are
          all taken (names are never released within an env), so a module
          with thousands of clones of the same value hints prints in
          linear instead of quadratic time, with byte-identical output *)
  mutable counter : int;
  debug_locs : bool;
      (** append [loc(...)] trailers; off by default so the output stays
          parseable (the round-trip property the tests enforce) *)
}

let create_env ?(debug_locs = false) () =
  {
    names = Hashtbl.create 64;
    used = Hashtbl.create 64;
    next_suffix = Hashtbl.create 64;
    counter = 0;
    debug_locs;
  }

(* [loc("gemm.c":4:3)] for frontend ops; derived ops name the pattern and
   the source locations its rewrite consumed, newest derivation first. *)
let pp_loc_trailer fmt (op : Core.op) =
  let known = Support.Loc.is_known op.Core.o_loc in
  match op.Core.o_prov with
  | [] ->
      if known then
        F.fprintf fmt " loc(%s)" (Support.Loc.to_string op.Core.o_loc)
  | dvs ->
      F.fprintf fmt " loc(";
      List.iteri
        (fun i (d : Core.derivation) ->
          if i > 0 then F.fprintf fmt " | ";
          F.fprintf fmt "derived \"%s\" from [%s]" d.Core.dv_pattern
            (String.concat ", "
               (List.map Support.Loc.to_string d.Core.dv_locs)))
        dvs;
      F.fprintf fmt ")"

let assign_name env (v : Core.value) =
  match Hashtbl.find_opt env.names v.v_id with
  | Some n -> n
  | None ->
      let base =
        match v.v_hint with
        | Some h when h <> "" -> h
        | _ ->
            let n = string_of_int env.counter in
            env.counter <- env.counter + 1;
            n
      in
      let name =
        if not (Hashtbl.mem env.used base) then base
        else
          let rec try_suffix i =
            let cand = Printf.sprintf "%s_%d" base i in
            if Hashtbl.mem env.used cand then try_suffix (i + 1)
            else begin
              Hashtbl.replace env.next_suffix base (i + 1);
              cand
            end
          in
          try_suffix
            (Option.value ~default:0 (Hashtbl.find_opt env.next_suffix base))
      in
      Hashtbl.replace env.used name ();
      Hashtbl.replace env.names v.v_id name;
      name

let value_ref env (v : Core.value) =
  match Hashtbl.find_opt env.names v.v_id with
  | Some n -> "%" ^ n
  | None -> "%" ^ assign_name env v (* use before def: still print something *)

(* Print an affine map applied to operand values as inline index
   expressions, e.g. the map (d0, d1) -> (2*d0 + 1, d1) over [%i; %j]
   prints as "2 * %i + 1, %j". *)
let pp_applied_expr env fmt (operands : Core.value array) e =
  let module E = Affine_expr in
  let prec = function
    | E.Dim _ | E.Sym _ | E.Const _ -> 3
    | E.Mul _ | E.Floor_div _ | E.Mod _ -> 2
    | E.Add _ -> 1
  in
  let rec go req fmt e =
    let wrap = prec e < req in
    if wrap then F.fprintf fmt "(";
    (match e with
    | E.Dim i -> F.fprintf fmt "%s" (value_ref env operands.(i))
    | E.Sym i -> F.fprintf fmt "s%d" i
    | E.Const c -> F.fprintf fmt "%d" c
    | E.Add (a, E.Const c) when c < 0 ->
        F.fprintf fmt "%a - %d" (go 1) a (-c)
    | E.Add (a, b) -> F.fprintf fmt "%a + %a" (go 1) a (go 1) b
    | E.Mul (a, b) -> F.fprintf fmt "%a * %a" (go 2) a (go 2) b
    | E.Floor_div (a, b) -> F.fprintf fmt "%a floordiv %a" (go 3) a (go 3) b
    | E.Mod (a, b) -> F.fprintf fmt "%a mod %a" (go 3) a (go 3) b);
    if wrap then F.fprintf fmt ")"
  in
  go 0 fmt e

let pp_applied_map env fmt (map : Affine_map.t) operands =
  List.iteri
    (fun i e ->
      if i > 0 then F.fprintf fmt ", ";
      pp_applied_expr env fmt operands e)
    map.Affine_map.exprs

let pp_comma_list pp fmt xs =
  List.iteri
    (fun i x ->
      if i > 0 then F.fprintf fmt ", ";
      pp fmt x)
    xs

let pp_values env fmt vs =
  pp_comma_list (fun fmt v -> F.pp_print_string fmt (value_ref env v)) fmt vs

(* ins(%a, %b : t, t) outs(%c : t) used by the linalg forms. *)
let pp_ins_outs env fmt ~ins ~outs =
  let pp_group kw fmt vs =
    if vs <> [] then (
      F.fprintf fmt "%s(%a : %a) " kw (pp_values env) vs
        (pp_comma_list (fun fmt (v : Core.value) -> Typ.pp fmt v.v_typ))
        vs)
  in
  pp_group "ins" fmt ins;
  pp_group "outs" fmt outs

let rec pp_op_in env indent fmt (op : Core.op) =
  pp_op_body env indent fmt op;
  if env.debug_locs then pp_loc_trailer fmt op

and pp_op_body env indent fmt (op : Core.op) =
  let pad = String.make indent ' ' in
  let results = Array.to_list op.o_results in
  List.iter (fun r -> ignore (assign_name env r)) results;
  let pp_results fmt =
    if results <> [] then F.fprintf fmt "%a = " (pp_values env) results
  in
  let operands = Array.to_list op.o_operands in
  F.fprintf fmt "%s" pad;
  match op.o_name with
  | "builtin.module" ->
      F.fprintf fmt "builtin.module {\n";
      pp_block_contents env (indent + 2) fmt (Core.single_block op 0);
      F.fprintf fmt "%s}" pad
  | "func.func" ->
      let name = Core.func_name op in
      let entry = Core.func_entry op in
      F.fprintf fmt "func.func @%s(" name;
      Array.iteri
        (fun i (a : Core.value) ->
          if i > 0 then F.fprintf fmt ", ";
          F.fprintf fmt "%s: %a"
            ("%" ^ assign_name env a)
            Typ.pp a.v_typ)
        entry.b_args;
      F.fprintf fmt ") {\n";
      pp_block_contents env (indent + 2) fmt entry;
      F.fprintf fmt "%s}" pad
  | "func.return" ->
      F.fprintf fmt "func.return";
      if operands <> [] then F.fprintf fmt " %a" (pp_values env) operands
  | "affine.for" ->
      let iv = (Core.single_block op 0).b_args.(0) in
      let lb_map = Attr.get_map (Core.attr op "lower_bound") in
      let ub_map = Attr.get_map (Core.attr op "upper_bound") in
      let step = Attr.get_int (Core.attr op "step") in
      let n_lb = Affine_map.n_results lb_map in
      let lb_ops = Array.sub op.o_operands 0 (Array.length op.o_operands) in
      (* Operand layout: lb map operands then ub map operands. *)
      let lb_operands = Array.sub lb_ops 0 lb_map.Affine_map.n_dims in
      let ub_operands =
        Array.sub lb_ops lb_map.Affine_map.n_dims ub_map.Affine_map.n_dims
      in
      F.fprintf fmt "affine.for %s = " ("%" ^ assign_name env iv);
      (if n_lb = 1 then pp_applied_map env fmt lb_map lb_operands
       else (
         F.fprintf fmt "max(";
         pp_applied_map env fmt lb_map lb_operands;
         F.fprintf fmt ")"));
      F.fprintf fmt " to ";
      (if Affine_map.n_results ub_map = 1 then
         pp_applied_map env fmt ub_map ub_operands
       else (
         F.fprintf fmt "min(";
         pp_applied_map env fmt ub_map ub_operands;
         F.fprintf fmt ")"));
      if step <> 1 then F.fprintf fmt " step %d" step;
      F.fprintf fmt " {\n";
      pp_block_contents env (indent + 2) fmt (Core.single_block op 0);
      F.fprintf fmt "%s}" pad
  | "affine.yield" ->
      F.fprintf fmt "affine.yield";
      if operands <> [] then F.fprintf fmt " %a" (pp_values env) operands
  | "affine.load" ->
      let map = Attr.get_map (Core.attr op "map") in
      let memref = op.o_operands.(0) in
      let idx_operands =
        Array.sub op.o_operands 1 (Array.length op.o_operands - 1)
      in
      pp_results fmt;
      F.fprintf fmt "affine.load %s[" (value_ref env memref);
      pp_applied_map env fmt map idx_operands;
      F.fprintf fmt "] : %a" Typ.pp memref.v_typ
  | "affine.store" ->
      let map = Attr.get_map (Core.attr op "map") in
      let value = op.o_operands.(0) in
      let memref = op.o_operands.(1) in
      let idx_operands =
        Array.sub op.o_operands 2 (Array.length op.o_operands - 2)
      in
      F.fprintf fmt "affine.store %s, %s[" (value_ref env value)
        (value_ref env memref);
      pp_applied_map env fmt map idx_operands;
      F.fprintf fmt "] : %a" Typ.pp memref.v_typ
  | "affine.apply" ->
      let map = Attr.get_map (Core.attr op "map") in
      pp_results fmt;
      F.fprintf fmt "affine.apply ";
      pp_applied_map env fmt map op.o_operands
  | "affine.matmul" ->
      F.fprintf fmt "affine.matmul %a : %a" (pp_values env) operands
        (pp_comma_list (fun fmt (v : Core.value) -> Typ.pp fmt v.v_typ))
        operands
  | "scf.for" ->
      let iv = (Core.single_block op 0).b_args.(0) in
      F.fprintf fmt "scf.for %s = %s to %s step %s {\n"
        ("%" ^ assign_name env iv)
        (value_ref env op.o_operands.(0))
        (value_ref env op.o_operands.(1))
        (value_ref env op.o_operands.(2));
      pp_block_contents env (indent + 2) fmt (Core.single_block op 0);
      F.fprintf fmt "%s}" pad
  | "scf.yield" ->
      F.fprintf fmt "scf.yield";
      if operands <> [] then F.fprintf fmt " %a" (pp_values env) operands
  | "arith.constant" ->
      pp_results fmt;
      let v = op.o_results.(0) in
      F.fprintf fmt "arith.constant ";
      (match Core.attr op "value" with
      | Attr.Float f -> F.fprintf fmt "%g" f
      | Attr.Int i -> F.fprintf fmt "%d" i
      | a -> Attr.pp fmt a);
      F.fprintf fmt " : %a" Typ.pp v.v_typ
  | ( "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
    | "arith.addi" | "arith.subi" | "arith.muli" ) as name ->
      pp_results fmt;
      F.fprintf fmt "%s %a : %a" name (pp_values env) operands Typ.pp
        op.o_results.(0).v_typ
  | "memref.alloc" ->
      pp_results fmt;
      F.fprintf fmt "memref.alloc() : %a" Typ.pp op.o_results.(0).v_typ
  | "memref.dealloc" ->
      F.fprintf fmt "memref.dealloc %s : %a"
        (value_ref env op.o_operands.(0))
        Typ.pp op.o_operands.(0).v_typ
  | "linalg.matmul" | "linalg.matvec" | "linalg.conv2d_nchw" ->
      let n_in = Array.length op.o_operands - 1 in
      let ins = Array.to_list (Array.sub op.o_operands 0 n_in) in
      let outs = [ op.o_operands.(n_in) ] in
      F.fprintf fmt "%s " op.o_name;
      pp_ins_outs env fmt ~ins ~outs
  | "linalg.transpose" ->
      F.fprintf fmt "linalg.transpose ";
      pp_ins_outs env fmt
        ~ins:[ op.o_operands.(0) ]
        ~outs:[ op.o_operands.(1) ];
      F.fprintf fmt "permutation = %a" Attr.pp (Core.attr op "permutation")
  | "linalg.reshape" ->
      F.fprintf fmt "linalg.reshape ";
      pp_ins_outs env fmt
        ~ins:[ op.o_operands.(0) ]
        ~outs:[ op.o_operands.(1) ];
      F.fprintf fmt "grouping = %a" Attr.pp (Core.attr op "grouping")
  | "linalg.fill" ->
      F.fprintf fmt "linalg.fill value = %a " Attr.pp (Core.attr op "value");
      pp_ins_outs env fmt ~ins:[] ~outs:[ op.o_operands.(0) ]
  | "linalg.contract" ->
      let n_in = Array.length op.o_operands - 1 in
      let ins = Array.to_list (Array.sub op.o_operands 0 n_in) in
      let outs = [ op.o_operands.(n_in) ] in
      F.fprintf fmt "linalg.contract indexing_maps = %a " Attr.pp
        (Core.attr op "indexing_maps");
      pp_ins_outs env fmt ~ins ~outs
  | "blas.sgemm" | "blas.sgemv" | "blas.stranspose" | "blas.sreshape_copy"
  | "blas.sconv2d" ->
      F.fprintf fmt "%s %a : %a" op.o_name (pp_values env) operands
        (pp_comma_list (fun fmt (v : Core.value) -> Typ.pp fmt v.v_typ))
        operands;
      List.iter
        (fun (k, a) -> F.fprintf fmt " %s = %a" k Attr.pp a)
        (List.sort compare op.o_attrs)
  | name ->
      (* Generic form. *)
      pp_results fmt;
      F.fprintf fmt "\"%s\"(%a)" name (pp_values env) operands;
      if op.o_attrs <> [] then (
        F.fprintf fmt " {";
        List.iteri
          (fun i (k, a) ->
            if i > 0 then F.fprintf fmt ", ";
            F.fprintf fmt "%s = %a" k Attr.pp a)
          (List.sort compare op.o_attrs);
        F.fprintf fmt "}");
      Array.iter
        (fun (r : Core.region) ->
          F.fprintf fmt " ({\n";
          List.iter (fun b -> pp_block_contents env (indent + 2) fmt b) r.r_blocks;
          F.fprintf fmt "%s})" pad)
        op.o_regions;
      F.fprintf fmt " : (%a) -> (%a)"
        (pp_comma_list (fun fmt (v : Core.value) -> Typ.pp fmt v.v_typ))
        operands
        (pp_comma_list (fun fmt (v : Core.value) -> Typ.pp fmt v.v_typ))
        results

and pp_block_contents env indent fmt (b : Core.block) =
  List.iter
    (fun op ->
      pp_op_in env indent fmt op;
      F.fprintf fmt "\n")
    (Core.ops_of_block b)

let pp_op ?debug_locs fmt op =
  let env = create_env ?debug_locs () in
  pp_op_in env 0 fmt op

let op_to_string ?debug_locs op = F.asprintf "%a" (pp_op ?debug_locs) op

let debug_value v =
  match v.Core.v_hint with
  | Some h -> Printf.sprintf "%%%s<%d>" h v.Core.v_id
  | None -> Printf.sprintf "%%<%d>" v.Core.v_id
