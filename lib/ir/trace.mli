(** Structured event tracing for the compilation pipeline.

    Every instrumented layer — pass manager spans, rewrite-driver runs,
    per-pattern attempt/hit events, interpreter compile/exec spans — emits
    {!event}s through this module to pluggable {!sink}s. With no sink
    installed, {!emit} is a single ref read, so leaving the call sites in
    hot paths costs nothing (asserted by [bench -- patterns]).

    Two sinks ship with the repo: {!Chrome} accumulates Chrome
    trace-event JSON (the [--trace=FILE] flag; load the file in Perfetto
    or chrome://tracing), and {!Memory} is a bounded ring buffer for unit
    tests. *)

type arg =
  | A_str of string
  | A_int of int
  | A_float of float
  | A_bool of bool

type phase =
  | Begin  (** opens a duration span; must be closed by a matching [End] *)
  | End
  | Instant  (** a point event (pattern attempt, remark) *)

type event = {
  ev_ts : float;  (** absolute [Unix.gettimeofday] seconds *)
  ev_cat : string;  (** "pass", "driver", "pattern", "interp", "remark" *)
  ev_name : string;
  ev_phase : phase;
  ev_args : (string * arg) list;
}

type sink = event -> unit

type handle

(** [install sink] registers a sink on the calling domain; every
    subsequent event emitted {e by that domain} is delivered to all of
    its installed sinks. The sink stack is domain-local: a compilation
    running on another domain neither sees this sink nor disturbs it
    (docs/CONCURRENCY.md). *)
val install : sink -> handle

val uninstall : handle -> unit

(** [with_sink sink f] runs [f ()] with [sink] installed,
    exception-safely uninstalling it afterwards. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** True when at least one sink is installed on the calling domain. Guard
    expensive argument construction with this; {!emit} itself already
    checks. *)
val enabled : unit -> bool

(** Number of sinks installed on the calling domain. Exposed for
    exception-safety regression tests. *)
val installed_count : unit -> int

val emit : ?args:(string * arg) list -> cat:string -> phase:phase -> string -> unit
val instant : ?args:(string * arg) list -> cat:string -> string -> unit
val begin_ : ?args:(string * arg) list -> cat:string -> string -> unit
val end_ : ?args:(string * arg) list -> cat:string -> string -> unit

(** [span ?args ?end_args ~cat name f] brackets [f ()] in a Begin/End
    pair (exception-safe). [end_args] is evaluated after [f] so the End
    event can carry result summaries. With no sink installed this is
    exactly [f ()]. *)
val span :
  ?args:(string * arg) list ->
  ?end_args:(unit -> (string * arg) list) ->
  cat:string ->
  string ->
  (unit -> 'a) ->
  'a

(** In-memory ring buffer sink for tests: keeps the last [capacity]
    events, counting the overflow. *)
module Memory : sig
  type t

  (** Creates and installs the sink ([capacity] defaults to 4096). *)
  val create : ?capacity:int -> unit -> t

  (** Buffered events, oldest first. *)
  val events : t -> event list

  (** Events discarded due to capacity overflow. *)
  val dropped : t -> int

  val clear : t -> unit

  (** Uninstall the sink; the buffered events stay readable. *)
  val detach : t -> unit
end

(** Chrome trace-event JSON sink. Timestamps are microseconds relative to
    sink creation; spans map to ["ph":"B"/"E"], instants to ["ph":"i"].
    The output loads in Perfetto / chrome://tracing. *)
module Chrome : sig
  type t

  (** Creates and installs the sink. *)
  val create : unit -> t

  (** Number of events captured so far. *)
  val count : t -> int

  (** The complete JSON document ([{"traceEvents":[...]}]). *)
  val contents : t -> string

  val write : t -> string -> unit

  val detach : t -> unit
end
