(** The IR object graph: SSA values, operations, blocks and regions.

    Mirrors MLIR's structure: an {e operation} has operands, results,
    attributes and nested {e regions}; a region holds {e blocks}; a block
    holds block arguments and an ordered list of operations. Functions and
    modules are themselves operations ([func.func], [builtin.module]), so a
    single recursive structure describes whole programs.

    Use-def information is stored in both directions: [v_def] points at the
    defining op/block-arg, and [v_uses] is an intrusive use-list maintained
    by every operand write ([create_op], [set_operand], [replace_uses],
    [erase_op]), so [uses]/[has_uses]/[replace_uses] cost O(users) instead
    of a whole-module walk. *)

type value = {
  v_id : int;
  mutable v_typ : Typ.t;
      (** mutable for type-rewriting passes (e.g. delinearization); the
          rewriter must keep every use consistent and re-verify *)
  mutable v_hint : string option;  (** printer name hint, e.g. ["i"] *)
  mutable v_def : vdef;
  mutable v_uses : (op * int) list;
      (** intrusive use-list, newest first; maintained by Core's own
          operand writes — mutate operands only through Core functions *)
}

and vdef =
  | Def_op of op * int  (** result [i] of an operation *)
  | Def_block_arg of block * int

and op = {
  o_id : int;
  o_name : string;  (** fully qualified, e.g. ["affine.for"] *)
  mutable o_operands : value array;
  mutable o_results : value array;
      (** mutable only to tie the construction knot; never reassigned *)
  mutable o_attrs : (string * Attr.t) list;
  o_regions : region array;
  mutable o_parent : block option;
  mutable o_loc : Support.Loc.t;
      (** source location: where the frontend/parser created this op, or
          (for derived ops) the location of the first known source op *)
  mutable o_prov : derivation list;
      (** provenance chain, newest derivation first; empty for ops that
          came straight from a frontend *)
}

(** One provenance step: the pattern that emitted the op, plus the known
    source locations of the ops the rewrite consumed. *)
and derivation = { dv_pattern : string; dv_locs : Support.Loc.t list }

and block = {
  b_id : int;
  mutable b_args : value array;
  mutable b_head : op list;
      (** forward prefix of the op sequence; read through {!ops_of_block} *)
  mutable b_tail_rev : op list;
      (** pending O(1) appends, in reverse; flushed into [b_head] on read *)
  mutable b_parent : region option;
}

and region = { r_id : int; mutable r_blocks : block list }

(** {2 Construction} *)

(** [create_op name ~operands ~result_types ~attrs ~regions] builds a
    detached operation and its result values, registering the op on each
    operand's use-list. [loc] defaults to the ambient location
    ({!with_loc}). *)
val create_op :
  ?loc:Support.Loc.t ->
  ?operands:value list ->
  ?result_types:Typ.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:region list ->
  string ->
  op

(** {2 Locations and provenance} *)

(** [with_loc loc f] runs [f ()] with [loc] as the ambient source
    location: every op created inside (without an explicit [?loc]) is
    stamped with it. Nests; exception-safe; domain-local (the ambient
    location set on one domain is invisible to every other domain).
    Frontends scope each statement's emission with this. *)
val with_loc : Support.Loc.t -> (unit -> 'a) -> 'a

(** The current ambient location ([Loc.unknown] outside {!with_loc}). *)
val current_loc : unit -> Support.Loc.t

val op_loc : op -> Support.Loc.t
val set_loc : op -> Support.Loc.t -> unit

(** Push a derivation onto the op's provenance chain (newest first). *)
val add_derivation : op -> derivation -> unit

val provenance : op -> derivation list

(** [create_block arg_types] builds a detached block with fresh argument
    values; [hints] optionally names them. *)
val create_block : ?hints:string list -> Typ.t list -> block

val create_region : block list -> region

(** {2 Accessors} *)

val result : op -> int -> value
val operand : op -> int -> value
val num_operands : op -> int
val num_results : op -> int

val attr : op -> string -> Attr.t
(** Raises [Invalid_argument] if absent; [find_attr] for the option form. *)

val find_attr : op -> string -> Attr.t option
val set_attr : op -> string -> Attr.t -> unit
val remove_attr : op -> string -> unit
val has_attr : op -> string -> bool

val region : op -> int -> region

(** Sole block of the operation's [i]-th region (raises if not single-block). *)
val single_block : op -> int -> block

(** The parent operation owning the block this op lives in, if attached. *)
val parent_op : op -> op option

(** The region's enclosing op, found via the region registry; only valid
    while attached. *)
val block_parent_op : block -> op option

(** [is_under ~root op] — is [op] equal to [root] or transitively nested
    inside it (following parent pointers)? Detached and erased ops are
    under nothing. *)
val is_under : root:op -> op -> bool

(** Number of live entries in the calling domain's region->owner
    registry. Exposed for leak regression tests: erasing an op
    unregisters its whole subtree, so the size must return to baseline
    after build-and-erase cycles. The registry is domain-local — IR must
    stay confined to the domain that created it (docs/CONCURRENCY.md). *)
val region_registry_size : unit -> int

(** {2 Mutation listeners}

    IR mutations are observed through a {e domain-local stack} of
    listeners: the worklist rewrite driver installs one for the duration
    of a driver run, and the rewriter's provenance collector installs
    another per pattern attempt. Every notification reaches every
    listener installed on the mutating domain; listeners on other
    domains are never invoked. *)

type listener = {
  on_op_inserted : op -> unit;  (** fired after attaching an op to a block *)
  on_op_erased : op -> unit;
      (** fired at the start of {!erase_op}, while operands are intact *)
  on_operand_update : op -> unit;
      (** fired after {!set_operand} changes an operand *)
}

(** [with_listener l f] runs [f ()] with [l] pushed onto the calling
    domain's listener stack, restoring the previous stack afterwards
    (exception-safe, so drivers and collectors nest freely — and a
    [Diag.Error] escaping [f], or the listener itself raising mid-notify,
    still pops [l]). *)
val with_listener : listener -> (unit -> 'a) -> 'a

(** Current depth of the calling domain's listener stack (0 outside any
    {!with_listener} scope). Exposed for exception-safety regression
    tests. *)
val listener_depth : unit -> int

(** {2 Block surgery} *)

val append_op : block -> op -> unit
(** O(1): pushes onto the block's pending tail. *)

val prepend_op : block -> op -> unit

(** [insert_before ~anchor op] places [op] just before [anchor] in the
    anchor's block. Raises if [anchor] is detached. *)
val insert_before : anchor:op -> op -> unit

val insert_after : anchor:op -> op -> unit

(** Detach [op] from its block (no-op if already detached). *)
val detach_op : op -> unit

(** Detach and structurally invalidate the whole subtree: clears operand
    arrays (removing their use-list entries) and unregisters nested
    regions from the registry. Erased ops must not be reused. *)
val erase_op : op -> unit

(** {2 Use-def queries and mutation} *)

(** [defining_op v] is [Some op] when [v] is an op result. *)
val defining_op : value -> op option

(** [uses root v] lists [(user, operand index)] pairs attached under
    [root] (inclusive of [root] itself), oldest registration first.
    O(total users of [v]). *)
val uses : op -> value -> (op * int) list

(** [has_uses root v] — does any attached op under [root] use [v]?
    Early-exits, so cheaper than [uses root v <> []]. *)
val has_uses : op -> value -> bool

(** [replace_uses root ~old_v ~new_v] rewrites every operand under [root].
    O(users of [old_v]). *)
val replace_uses : op -> old_v:value -> new_v:value -> unit

(** [replace_uses_in_block block ~old_v ~new_v] — like {!replace_uses} but
    scoped to users inside [block] (including nested regions). *)
val replace_uses_in_block : block -> old_v:value -> new_v:value -> unit

val set_operand : op -> int -> value -> unit

(** {2 Traversal} *)

(** Pre-order walk over [root] and all transitively nested operations. *)
val walk : op -> (op -> unit) -> unit

(** Post-order variant (children before parents). *)
val walk_post : op -> (op -> unit) -> unit

(** Walk that may erase/replace the visited op: iterates over a snapshot. *)
val walk_safe : op -> (op -> unit) -> unit

(** First nested op (pre-order, excluding root) satisfying the predicate. *)
val find_op : op -> (op -> bool) -> op option

(** The block's ops in order. Flushes pending appends; always read the
    sequence through this, never the raw fields. *)
val ops_of_block : block -> op list

(** {2 Module / function conveniences} *)

(** [create_module ()] builds an empty [builtin.module] with one region and
    one block. *)
val create_module : unit -> op

val module_block : op -> block

(** [create_func ~name ~arg_types ?arg_hints ~result_types ()] builds a
    [func.func] op whose region has an entry block with the argument
    values. *)
val create_func :
  name:string ->
  arg_types:Typ.t list ->
  ?arg_hints:string list ->
  ?result_types:Typ.t list ->
  unit ->
  op

val func_name : op -> string
val func_entry : op -> block
val func_args : op -> value list
val is_func : op -> bool

(** [find_func m name] looks up a function by symbol name in a module. *)
val find_func : op -> string -> op option

(** {2 Deep copy} *)

(** [clone_op op] deep-copies an operation tree. Operands defined outside
    the cloned tree are kept as-is; values defined inside are remapped. *)
val clone_op : op -> op

(** [clone_ops ops] deep-copies a sequence of operations with a shared
    remap table, so references between the clones stay internal (what a
    loop-body duplication needs). *)
val clone_ops : op list -> op list

(** Equality by identity (ops and values are unique graph nodes). *)
val op_equal : op -> op -> bool

val value_equal : value -> value -> bool
