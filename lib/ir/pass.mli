(** Passes and an instrumented pass manager.

    The manager records, per executed pass: wall-clock seconds, op counts
    before/after, and the pattern-driver match/rewrite counters
    ({!Rewriter.counter_totals}) attributed to that pass. The §5.2
    compile-time overhead experiment reads the timings; the per-pass
    statistics back the observability flags of [mlt-opt]/[mlt-sim]
    ([--timing], [--pass-stats], [--print-ir-after-all]) described in
    [docs/OBSERVABILITY.md]. *)

type t = { name : string; run : Core.op -> unit }

val make : name:string -> (Core.op -> unit) -> t

(** GC activity attributed to one pass (or aggregated over a summary
    row): deltas of the owning domain's [Gc.quick_stat] counters taken
    around the pass body. Word counts stay [float] exactly as [Gc]
    reports them. Never part of {e any} signature or cache identity —
    allocation counts vary with GC settings and domain scheduling the
    same way wall-clock does. *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val zero_gc : gc_delta

(** Field-wise sum — the merge used by {!merge_summaries}. *)
val add_gc : gc_delta -> gc_delta -> gc_delta

type timing = {
  pass_name : string;
      (** Qualified with the enclosing pipeline path, e.g. ["opt/dce"]. *)
  seconds : float;
  ops_before : int;
  ops_after : int;
  match_attempts : int;
      (** Pattern [p_apply] invocations during this pass. *)
  rewrites : int;  (** Successful pattern applications during this pass. *)
  depth : int;  (** Nesting depth: 0 for top-level passes. *)
  gc : gc_delta;
      (** Allocation/collection activity during this pass. Nested
          entries are contained in their pipeline's aggregate, like
          [seconds]. *)
  pattern_stats : Rewriter.pattern_stat list;
      (** Per-pattern attempt/hit/activation deltas for this pass,
          restricted to the patterns that participated (a pattern counts
          as participating — [activations] — whenever a driver ran with it
          in the frozen set, even if op-indexed dispatch never attempted
          it, so every registered tactic of a raising pass is listed). *)
}

(** Which passes trigger an IR snapshot to the manager's sink after they
    run ([--print-ir-after-all] / [--print-ir-after=<name>]). [After_named]
    matches the unqualified pass name. *)
type snapshot_policy = No_snapshots | After_all | After_named of string list

type manager

(** [create_manager ()] — [ir_sink] receives snapshots (default: print to
    stdout with a [// ----- IR after pass ...] header). *)
val create_manager :
  ?verify_each:bool ->
  ?snapshot:snapshot_policy ->
  ?ir_sink:(pass_name:string -> ir:string -> unit) ->
  unit ->
  manager

val add : manager -> t -> unit
val add_all : manager -> t list -> unit

(** [add_pipeline m name passes] registers a named nested pipeline: its
    passes record with names qualified as ["name/pass"] at depth 1, and an
    aggregate entry for the whole pipeline is recorded (after its
    children) under ["name"] at depth 0. *)
val add_pipeline : manager -> string -> t list -> unit

(** [run m root] executes the registered items in order; with
    [verify_each] the verifier runs after every pass and failures name the
    culprit pass. A pass that raises still records its (partial) timing
    entry before the exception propagates. Statistics accumulate across
    multiple [run] calls (one {!timing} per pass per run); see
    {!summarize}. *)
val run : manager -> Core.op -> unit

val timings : manager -> timing list

(** Total seconds across recorded top-level (depth-0) entries — nested
    entries are already contained in their pipeline's aggregate. *)
val total_seconds : manager -> float

val clear_timings : manager -> unit

(** [count_ops root] — number of ops in the tree rooted at [root]
    (including [root]); the metric behind [ops_before]/[ops_after]. *)
val count_ops : Core.op -> int

(** {2 Aggregation}

    When a manager is run repeatedly (e.g. one pipeline over many
    kernels), [summarize] folds the per-run entries into one row per
    qualified pass name, in first-appearance order. *)

type summary = {
  s_name : string;
  s_runs : int;
  s_seconds : float;
  s_match_attempts : int;
  s_rewrites : int;
  s_ops_delta : int;  (** Sum of [ops_after - ops_before] over runs. *)
  s_gc : gc_delta;  (** GC deltas summed over runs. *)
  s_patterns : Rewriter.pattern_stat list;
      (** Per-pattern deltas summed over runs, first-appearance order. *)
}

val summarize : manager -> summary list

(** [merge_summaries a b] folds [b]'s rows into [a], merging rows with
    the same qualified pass name (counters summed, per-pattern rows
    merged) and keeping first-appearance order. Deterministic: merging
    per-domain/per-input summaries in a fixed order (e.g. manifest order)
    yields the same aggregate as a sequential run, which is what the
    multi-domain batch driver relies on. [merge_summaries [] s] copies
    [s]; the operation is associative. *)
val merge_summaries : summary list -> summary list -> summary list

(** {2 Reports}

    The JSON schema is documented in [docs/OBSERVABILITY.md]. *)

(** Human-readable per-entry table (one row per pass per run, nested
    passes indented by depth). *)
val report_table : manager -> string

(** Per-entry JSON:
    [{"total_seconds":s,"passes":[{"name":...,"seconds":...,
    "ops_before":...,"ops_after":...,"match_attempts":...,
    "rewrites":...,"depth":...,"patterns":[{"name":...,"attempts":...,
    "hits":...,"activations":...}, ...]}, ...]}]. *)
val report_json : manager -> string

(** Aggregated variants of the two reports (one row per pass). *)
val summary_table : manager -> string

val summary_json : manager -> string

(** The JSON array of summary rows alone (the ["passes"] field of
    {!summary_json}), for embedding aggregated cross-manager summaries
    in other reports (the batch driver's). *)
val summaries_json : summary list -> string

(** Same array as a {!Support.Json} value, for emitters that build a
    larger report through the shared writer. *)
val summaries_json_value : summary list -> Support.Json.t

(** JSON round-trip for {!gc_delta}, shared with the batch cache payload
    so the two emitters cannot diverge. [gc_of_json] treats missing
    members as zero (payloads written before GC profiling carry none). *)
val gc_json : gc_delta -> Support.Json.t

val gc_of_json : Support.Json.t -> gc_delta
