open Ir
module D = Support.Diag

let verify_alloc (op : Core.op) =
  if Core.num_results op <> 1 then D.errorf "memref.alloc: expects 1 result";
  match (Core.result op 0).v_typ with
  | Typ.Mem_ref _ -> ()
  | t -> D.errorf "memref.alloc: result must be a memref, got %s"
           (Typ.to_string t)

let verify_dealloc (op : Core.op) =
  if Core.num_operands op <> 1 || Core.num_results op <> 0 then
    D.errorf "memref.dealloc: expects 1 operand and no results"

let verify_access ~is_store (op : Core.op) =
  let base = if is_store then 1 else 0 in
  if Core.num_operands op < base + 1 then
    D.errorf "%s: missing memref operand" op.o_name;
  match (Core.operand op base).v_typ with
  | Typ.Mem_ref (shape, _) ->
      if Core.num_operands op - base - 1 <> List.length shape then
        D.errorf "%s: index count does not match memref rank" op.o_name
  | t ->
      D.errorf "%s: expected a memref operand, got %s" op.o_name
        (Typ.to_string t)

let registered = Atomic.make false

let register () =
  Dialect.register_once registered @@ fun () ->
    Dialect.register
      (Dialect.def ~verify:verify_alloc ~summary:"allocate a buffer"
         "memref.alloc");
    Dialect.register
      (Dialect.def ~verify:verify_dealloc ~summary:"free a buffer"
         "memref.dealloc");
    Dialect.register
      (Dialect.def
         ~verify:(verify_access ~is_store:false)
         ~summary:"indexed load" "memref.load");
    Dialect.register
      (Dialect.def
         ~verify:(verify_access ~is_store:true)
         ~summary:"indexed store" "memref.store")

let alloc b ?hint typ =
  register ();
  (match Typ.static_shape typ with
  | Some _ -> ()
  | None ->
      D.errorf "memref.alloc: type %s is not a static memref"
        (Typ.to_string typ));
  let op = Builder.build b ~result_types:[ typ ] "memref.alloc" in
  let v = Core.result op 0 in
  v.v_hint <- hint;
  v

let dealloc b v =
  register ();
  ignore (Builder.build b ~operands:[ v ] "memref.dealloc")

let is_alloc (op : Core.op) = String.equal op.o_name "memref.alloc"

let load b memref indices =
  register ();
  let elem = Typ.memref_elem memref.Core.v_typ in
  let op =
    Builder.build b
      ~operands:(memref :: indices)
      ~result_types:[ elem ] "memref.load"
  in
  Core.result op 0

let store b value memref indices =
  register ();
  Builder.build b ~operands:(value :: memref :: indices) "memref.store"
