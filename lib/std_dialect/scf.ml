open Ir
module D = Support.Diag

let verify_for (op : Core.op) =
  if Core.num_operands op <> 3 then D.errorf "scf.for: expects 3 operands";
  Array.iter
    (fun (v : Core.value) ->
      if not (Typ.equal v.v_typ Typ.Index) then
        D.errorf "scf.for: bounds and step must be index values")
    op.o_operands;
  let body = Core.single_block op 0 in
  if Array.length body.b_args <> 1 then
    D.errorf "scf.for: body must have exactly the induction variable";
  match List.rev (Core.ops_of_block body) with
  | last :: _ when String.equal last.o_name "scf.yield" -> ()
  | _ -> D.errorf "scf.for: body must end with scf.yield"

let registered = Atomic.make false

let register () =
  Dialect.register_once registered @@ fun () ->
    Dialect.register
      (Dialect.def ~verify:verify_for ~summary:"counted loop" "scf.for");
    Dialect.register
      (Dialect.def ~terminator:true ~summary:"loop terminator" "scf.yield")

let for_ b ?(hint = "i") ~lb ~ub ~step body =
  register ();
  let block = Core.create_block ~hints:[ hint ] [ Typ.Index ] in
  let region = Core.create_region [ block ] in
  let op =
    Builder.build b ~operands:[ lb; ub; step ] ~regions:[ region ] "scf.for"
  in
  let body_builder = Builder.at_end block in
  body body_builder block.b_args.(0);
  ignore (Builder.build body_builder "scf.yield");
  op

let is_for (op : Core.op) = String.equal op.o_name "scf.for"

let for_iv op =
  if not (is_for op) then invalid_arg "Scf.for_iv: not an scf.for";
  (Core.single_block op 0).b_args.(0)

let for_body op =
  if not (is_for op) then invalid_arg "Scf.for_body: not an scf.for";
  Core.single_block op 0
