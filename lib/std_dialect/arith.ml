open Ir
module D = Support.Diag

let float_binops = [ "arith.addf"; "arith.subf"; "arith.mulf"; "arith.divf" ]

let int_binops =
  [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.floordivsi"; "arith.remsi" ]

let verify_binop ~want_float (op : Core.op) =
  if Core.num_operands op <> 2 || Core.num_results op <> 1 then
    D.errorf "%s: expects 2 operands and 1 result" op.o_name;
  let t = (Core.result op 0).v_typ in
  let ok = if want_float then Typ.is_float t else Typ.is_int t in
  if not ok then D.errorf "%s: bad result type %s" op.o_name (Typ.to_string t);
  Array.iter
    (fun (v : Core.value) ->
      if not (Typ.equal v.v_typ t) then
        D.errorf "%s: operand/result type mismatch" op.o_name)
    op.o_operands

let verify_constant (op : Core.op) =
  if Core.num_operands op <> 0 || Core.num_results op <> 1 then
    D.errorf "arith.constant: expects no operands and 1 result";
  match (Core.find_attr op "value", (Core.result op 0).v_typ) with
  | Some (Attr.Float _), t when Typ.is_float t -> ()
  | Some (Attr.Int _), t when Typ.is_int t -> ()
  | _ -> D.errorf "arith.constant: value attribute does not match type"

let registered = Atomic.make false

let register () =
  Dialect.register_once registered @@ fun () ->
    Dialect.register
      (Dialect.def ~verify:verify_constant ~summary:"scalar constant"
         "arith.constant");
    List.iter
      (fun name ->
        let commutative = name = "arith.addf" || name = "arith.mulf" in
        Dialect.register
          (Dialect.def ~verify:(verify_binop ~want_float:true) ~commutative
             ~summary:"float binary op" name))
      float_binops;
    List.iter
      (fun name ->
        let commutative = name = "arith.addi" || name = "arith.muli" in
        Dialect.register
          (Dialect.def ~verify:(verify_binop ~want_float:false) ~commutative
             ~summary:"integer binary op" name))
      int_binops

let constant_float b ?(typ = Typ.F32) f =
  register ();
  let op =
    Builder.build b ~result_types:[ typ ]
      ~attrs:[ ("value", Attr.Float f) ]
      "arith.constant"
  in
  Core.result op 0

let constant_int b ?(typ = Typ.I64) i =
  register ();
  let op =
    Builder.build b ~result_types:[ typ ]
      ~attrs:[ ("value", Attr.Int i) ]
      "arith.constant"
  in
  Core.result op 0

let constant_index b i = constant_int b ~typ:Typ.Index i

let binop name b (x : Core.value) (y : Core.value) =
  register ();
  let op =
    Builder.build b ~operands:[ x; y ] ~result_types:[ x.v_typ ] name
  in
  Core.result op 0

let addf b = binop "arith.addf" b
let subf b = binop "arith.subf" b
let mulf b = binop "arith.mulf" b
let divf b = binop "arith.divf" b
let addi b = binop "arith.addi" b
let subi b = binop "arith.subi" b
let muli b = binop "arith.muli" b
let floordivsi b = binop "arith.floordivsi" b
let remsi b = binop "arith.remsi" b

let is_constant (op : Core.op) = String.equal op.o_name "arith.constant"

let constant_float_value (op : Core.op) =
  if is_constant op then
    match Core.find_attr op "value" with
    | Some (Attr.Float f) -> Some f
    | _ -> None
  else None

let constant_int_value (op : Core.op) =
  if is_constant op then
    match Core.find_attr op "value" with
    | Some (Attr.Int i) -> Some i
    | _ -> None
  else None
