open Ir
module D = Support.Diag

type bound = Affine_map.t * Core.value list

let verify_for (op : Core.op) =
  let lb = Attr.get_map (Core.attr op "lower_bound") in
  let ub = Attr.get_map (Core.attr op "upper_bound") in
  let step = Attr.get_int (Core.attr op "step") in
  if step <= 0 then D.errorf "affine.for: step must be positive";
  if Affine_map.n_results lb < 1 || Affine_map.n_results ub < 1 then
    D.errorf "affine.for: bound maps need at least one result";
  if Core.num_operands op <> lb.Affine_map.n_dims + ub.Affine_map.n_dims then
    D.errorf "affine.for: operand count does not match bound maps";
  let body = Core.single_block op 0 in
  if Array.length body.b_args <> 1
     || not (Typ.equal body.b_args.(0).v_typ Typ.Index)
  then D.errorf "affine.for: body must carry a single index argument";
  match List.rev (Core.ops_of_block body) with
  | last :: _ when String.equal last.o_name "affine.yield" -> ()
  | _ -> D.errorf "affine.for: body must end with affine.yield"

let verify_access ~is_store (op : Core.op) =
  let base = if is_store then 1 else 0 in
  if Core.num_operands op < base + 1 then
    D.errorf "%s: missing memref operand" op.o_name;
  let memref = Core.operand op base in
  let map = Attr.get_map (Core.attr op "map") in
  (match memref.v_typ with
  | Typ.Mem_ref (shape, elem) ->
      if Affine_map.n_results map <> List.length shape then
        D.errorf "%s: access map arity does not match memref rank" op.o_name;
      let scalar =
        if is_store then (Core.operand op 0).v_typ
        else (Core.result op 0).v_typ
      in
      if not (Typ.equal scalar elem) then
        D.errorf "%s: element type mismatch" op.o_name
  | t ->
      D.errorf "%s: expected a memref operand, got %s" op.o_name
        (Typ.to_string t));
  if
    Core.num_operands op - base - 1 <> map.Affine_map.n_dims
  then D.errorf "%s: index operand count does not match access map" op.o_name

let memref_2d_f32 (v : Core.value) name =
  match v.v_typ with
  | Typ.Mem_ref ([ _; _ ], Typ.F32) -> ()
  | t -> D.errorf "%s: expected 2-d f32 memref, got %s" name (Typ.to_string t)

let verify_matmul (op : Core.op) =
  if Core.num_operands op <> 3 then
    D.errorf "affine.matmul: expects operands A, B, C";
  Array.iter (fun v -> memref_2d_f32 v "affine.matmul") op.o_operands

let registered = Atomic.make false

let register () =
  Dialect.register_once registered @@ fun () ->
    Std_dialect.Arith.register ();
    Std_dialect.Memref_ops.register ();
    Dialect.register_all
      [
        Dialect.def ~verify:verify_for ~summary:"affine counted loop"
          "affine.for";
        Dialect.def ~terminator:true ~summary:"affine loop terminator"
          "affine.yield";
        Dialect.def
          ~verify:(verify_access ~is_store:false)
          ~summary:"affine buffer load" "affine.load";
        Dialect.def
          ~verify:(verify_access ~is_store:true)
          ~summary:"affine buffer store" "affine.store";
        Dialect.def ~summary:"apply an affine map" "affine.apply";
        Dialect.def ~verify:verify_matmul
          ~summary:"high-level matmul at the affine level (Bondhugula 2020)"
          "affine.matmul";
      ]

let for_ b ?(hint = "i") ~lb:(lb_map, lb_args) ~ub:(ub_map, ub_args)
    ?(step = 1) body =
  register ();
  if List.length lb_args <> lb_map.Affine_map.n_dims then
    D.errorf "affine.for: lower bound operands do not match map";
  if List.length ub_args <> ub_map.Affine_map.n_dims then
    D.errorf "affine.for: upper bound operands do not match map";
  let block = Core.create_block ~hints:[ hint ] [ Typ.Index ] in
  let region = Core.create_region [ block ] in
  let op =
    Builder.build b
      ~operands:(lb_args @ ub_args)
      ~attrs:
        [
          ("lower_bound", Attr.Map lb_map);
          ("upper_bound", Attr.Map ub_map);
          ("step", Attr.Int step);
        ]
      ~regions:[ region ] "affine.for"
  in
  let body_builder = Builder.at_end block in
  body body_builder block.b_args.(0);
  ignore (Builder.build body_builder "affine.yield");
  op

let const_bound c = (Affine_map.constant_map [ c ], [])

let for_const b ?hint ~lb ~ub ?step body =
  for_ b ?hint ~lb:(const_bound lb) ~ub:(const_bound ub) ?step body

let is_for (op : Core.op) = String.equal op.o_name "affine.for"

let for_iv op =
  if not (is_for op) then invalid_arg "Affine_ops.for_iv";
  (Core.single_block op 0).b_args.(0)

let for_body op =
  if not (is_for op) then invalid_arg "Affine_ops.for_body";
  Core.single_block op 0

let for_lb op : bound =
  let map = Attr.get_map (Core.attr op "lower_bound") in
  let args =
    Array.to_list (Array.sub op.Core.o_operands 0 map.Affine_map.n_dims)
  in
  (map, args)

let for_ub op : bound =
  let lb_map = Attr.get_map (Core.attr op "lower_bound") in
  let map = Attr.get_map (Core.attr op "upper_bound") in
  let args =
    Array.to_list
      (Array.sub op.Core.o_operands lb_map.Affine_map.n_dims
         map.Affine_map.n_dims)
  in
  (map, args)

let for_step op = Attr.get_int (Core.attr op "step")

let single_const ((map, args) : bound) =
  match (map.Affine_map.exprs, args) with
  | [ e ], [] -> Affine_expr.is_constant e
  | _ -> None

let for_const_bounds op =
  match (single_const (for_lb op), single_const (for_ub op)) with
  | Some lb, Some ub -> Some (lb, ub)
  | _ -> None

let for_trip_count op =
  match for_const_bounds op with
  | Some (lb, ub) ->
      let step = for_step op in
      Some (max 0 ((ub - lb + step - 1) / step))
  | None -> None

let load b memref (map, indices) =
  register ();
  let elem = Typ.memref_elem memref.Core.v_typ in
  let op =
    Builder.build b
      ~operands:(memref :: indices)
      ~result_types:[ elem ]
      ~attrs:[ ("map", Attr.Map map) ]
      "affine.load"
  in
  Core.result op 0

let load_simple b memref ivs =
  load b memref (Affine_map.identity (List.length ivs), ivs)

let store b value memref (map, indices) =
  register ();
  Builder.build b
    ~operands:(value :: memref :: indices)
    ~attrs:[ ("map", Attr.Map map) ]
    "affine.store"

let store_simple b value memref ivs =
  store b value memref (Affine_map.identity (List.length ivs), ivs)

let is_load (op : Core.op) = String.equal op.o_name "affine.load"
let is_store (op : Core.op) = String.equal op.o_name "affine.store"

let access_memref (op : Core.op) =
  if is_load op then Core.operand op 0
  else if is_store op then Core.operand op 1
  else invalid_arg "Affine_ops.access_memref: not an affine access"

let access_map (op : Core.op) = Attr.get_map (Core.attr op "map")

let access_indices (op : Core.op) =
  let base =
    if is_load op then 1
    else if is_store op then 2
    else invalid_arg "Affine_ops.access_indices: not an affine access"
  in
  Array.to_list
    (Array.sub op.o_operands base (Array.length op.o_operands - base))

let stored_value (op : Core.op) =
  if not (is_store op) then invalid_arg "Affine_ops.stored_value";
  Core.operand op 0

let apply b map operands =
  register ();
  if Affine_map.n_results map <> 1 then
    D.errorf "affine.apply: map must have exactly one result";
  let op =
    Builder.build b ~operands ~result_types:[ Typ.Index ]
      ~attrs:[ ("map", Attr.Map map) ]
      "affine.apply"
  in
  Core.result op 0

let matmul b a bm c =
  register ();
  Builder.build b ~operands:[ a; bm; c ] "affine.matmul"

let is_matmul (op : Core.op) = String.equal op.o_name "affine.matmul"
