open Ir
module D = Support.Diag
module A = Affine.Affine_ops
module Ac = Matchers.Access
module L = Linalg.Linalg_ops

type target = To_linalg | To_affine_matmul

(* ---- pattern-side preparation --------------------------------------- *)

type prepared = {
  vars : string list;  (** index variables, in order of appearance *)
  tensors : string list;  (** pattern tensor names: [out; in1; in2] *)
  mk_pattern :
    Ac.ctx ->
    Ac.stmt_pattern
    * (string * Ac.placeholder) list
    * (string * Ac.array_placeholder) list;
  accesses : (string * Tdl_ast.iexpr list) list;
      (** (tensor, subscripts) for the coverage checks *)
}

let prepare (stmt : Tdl_ast.stmt) =
  let out, in1, in2 =
    match (stmt.op, stmt.rhs) with
    | Tdl_ast.Accumulate, Tdl_ast.R_mul (a, b) -> (stmt.lhs, a, b)
    | _ -> D.errorf "backend: pattern must be 'out += a * b'"
  in
  let vars = Tdl_ast.stmt_vars stmt in
  let tensors = [ out.tensor; in1.tensor; in2.tensor ] in
  if List.length (List.sort_uniq compare tensors) <> 3 then
    D.errorf "backend: pattern tensors must be distinct";
  let mk_pattern ctx =
    let phs = List.map (fun v -> (v, Ac.placeholder ctx)) vars in
    let aphs = List.map (fun t -> (t, Ac.array_placeholder ctx)) tensors in
    let pexpr_of (e : Tdl_ast.iexpr) =
      List.fold_left
        (fun acc (v, k) ->
          let ph = List.assoc v phs in
          Ac.padd acc (Ac.term ~coeff:k ph))
        (Ac.pconst e.ix_const) e.ix_terms
    in
    let access_of (r : Tdl_ast.ref_) =
      Ac.access (List.assoc r.tensor aphs) (List.map pexpr_of r.indices)
    in
    ( Ac.Contraction
        { out = access_of out; in1 = access_of in1; in2 = access_of in2 },
      phs,
      aphs )
  in
  let accesses =
    [
      (out.tensor, out.indices);
      (in1.tensor, in1.indices);
      (in2.tensor, in2.indices);
    ]
  in
  { vars; tensors; mk_pattern; accesses }

(* ---- match-time validation ------------------------------------------ *)

(* Constant loop bounds, zero-based, unit step. *)
let normalized_loop loop =
  A.for_step loop = 1
  &&
  match A.for_const_bounds loop with Some (0, _) -> true | _ -> false

(* Every subscript must span its memref dimension exactly. *)
let coverage_ok ~extent_of ~memref_of (accesses : (string * Tdl_ast.iexpr list) list) =
  List.for_all
    (fun (tensor, subs) ->
      let memref : Core.value = memref_of tensor in
      match Typ.static_shape memref.Core.v_typ with
      | None -> false
      | Some shape ->
          List.length shape = List.length subs
          && List.for_all2
               (fun dim_extent (e : Tdl_ast.iexpr) ->
                 let min_v = e.ix_const in
                 let max_v =
                   List.fold_left
                     (fun acc (v, k) ->
                       let ext = extent_of v in
                       if k >= 0 then acc + (k * (ext - 1)) else acc)
                     e.ix_const e.ix_terms
                 in
                 let all_nonneg = List.for_all (fun (_, k) -> k > 0) e.ix_terms in
                 all_nonneg && min_v = 0 && max_v + 1 = dim_extent)
               shape subs)
    accesses

(* ---- shape inference over builder steps ------------------------------ *)

let grouping_rank g = List.length (List.concat g)

let infer_shapes (steps : Tds.builder list) (known : (string, int list) Hashtbl.t) =
  let get name = Hashtbl.find_opt known name in
  let put name shape =
    match get name with
    | Some s when s <> shape ->
        D.errorf "backend: inconsistent shapes inferred for %s" name
    | _ -> Hashtbl.replace known name shape
  in
  let step_pass (b : Tds.builder) =
    match b with
    | Tds.Transpose { input; output; perm } -> (
        let perm = Array.of_list perm in
        match (get input, get output) with
        | Some s, _ -> put output (L.transposed_shape perm s)
        | None, Some s ->
            let inv = Affine_map.inverse_permutation perm in
            put input (L.transposed_shape inv s)
        | None, None -> ())
    | Tds.Reshape { input; output; grouping } -> (
        let collapse hi =
          List.map
            (fun grp ->
              List.fold_left (fun acc d -> acc * List.nth hi d) 1 grp)
            grouping
        in
        match (get input, get output) with
        | Some s, _ when List.length s = grouping_rank grouping ->
            put output (collapse s)
        | None, Some s when List.length s = grouping_rank grouping ->
            put input (collapse s)
        | _ -> ())
    | Tds.Matmul { in1; in2; output } -> (
        match (get in1, get in2) with
        | Some [ m; _ ], Some [ _; n ] -> put output [ m; n ]
        | _ -> ())
    | Tds.Matvec { in1; in2 = _; output; transpose } -> (
        match get in1 with
        | Some [ m; n ] -> put output [ (if transpose then n else m) ]
        | _ -> ())
    | Tds.Conv2d _ | Tds.Fill _ -> ()
  in
  (* A couple of forward/backward sweeps reach the fixpoint for any
     pipeline TTGT synthesis produces. *)
  for _ = 1 to 4 do
    List.iter step_pass steps;
    List.iter step_pass (List.rev steps)
  done;
  List.iter
    (fun b ->
      List.iter
        (fun name ->
          if get name = None then
            D.errorf "backend: could not infer a shape for %s" name)
        (Tds.builder_output b :: Tds.builder_inputs b))
    steps

(* ---- code emission ---------------------------------------------------- *)

let emit_steps ~target b (steps : Tds.builder list)
    (env : (string, Core.value) Hashtbl.t)
    (shapes : (string, int list) Hashtbl.t) =
  let resolve name =
    match Hashtbl.find_opt env name with
    | Some v -> v
    | None ->
        let shape = Hashtbl.find shapes name in
        let v =
          Std_dialect.Memref_ops.alloc b ~hint:(String.lowercase_ascii name)
            (Typ.memref shape Typ.F32)
        in
        Hashtbl.replace env name v;
        v
  in
  List.iter
    (fun (step : Tds.builder) ->
      match (target, step) with
      | To_affine_matmul, Tds.Matmul { in1; in2; output } ->
          ignore (A.matmul b (resolve in1) (resolve in2) (resolve output))
      | To_affine_matmul, _ ->
          D.errorf
            "backend: -raise-affine-to-affine only supports pure matmul \
             tactics"
      | To_linalg, Tds.Transpose { input; output; perm } ->
          ignore
            (L.transpose b ~perm:(Array.of_list perm) (resolve input)
               (resolve output))
      | To_linalg, Tds.Reshape { input; output; grouping } ->
          ignore (L.reshape b ~grouping (resolve input) (resolve output))
      | To_linalg, Tds.Matmul { in1; in2; output } ->
          ignore (L.matmul b (resolve in1) (resolve in2) (resolve output))
      | To_linalg, Tds.Matvec { in1; in2; output; transpose } ->
          let op = L.matvec b (resolve in1) (resolve in2) (resolve output) in
          if transpose then Core.set_attr op "transpose" (Attr.Bool true)
      | To_linalg, Tds.Conv2d { in1; in2; output } ->
          ignore (L.conv2d_nchw b (resolve in1) (resolve in2) (resolve output))
      | To_linalg, Tds.Fill { output; value } ->
          ignore (L.fill b ~value (resolve output)))
    steps

(* ---- the compiled pattern --------------------------------------------- *)

let compile ?(target = To_linalg) (t : Tds.tactic) =
  let prepared = prepare t.pattern in
  (if target = To_affine_matmul then
     match t.builders with
     | [ Tds.Matmul _ ] -> ()
     | _ ->
         D.errorf
           "backend: tactic %s cannot target the affine matmul raising" t.name);
  let depth = List.length prepared.vars in
  (* A nest of the right depth that then fails a later stage is a
     near-miss worth a structured remark ([--remarks=missed]); nests of
     the wrong depth are not reported — every tactic probing every loop
     would drown the signal. *)
  let apply (ctx : Rewriter.ctx) (op : Core.op) =
    let miss stage msg =
      if Remark.enabled () then
        Remark.remark ~loc:op.Core.o_loc ~pattern:t.name ~stage Remark.Missed
          "%s" msg;
      false
    in
    match Matchers.Structural.matched_nest ~depth op with
    | None -> false
    | Some loops ->
        if not (List.for_all normalized_loop loops) then
          miss "control-flow"
            "loop nest is not normalized (constant zero-based bounds with \
             unit step required)"
        else begin
          let innermost = List.nth loops (depth - 1) in
          let actx = Ac.create_ctx () in
          let pat, phs, aphs = prepared.mk_pattern actx in
          if not (Ac.match_block actx pat (A.for_body innermost)) then
            match Ac.last_reject actx with
            | Some Ac.Unify ->
                miss "access-unification"
                  "statement ops match, but the array subscripts do not \
                   unify with the pattern accesses"
            | _ ->
                miss "op-chain"
                  "innermost statement is not a single out += in1 * in2 \
                   contraction"
          else begin
            (* All extents known, and the binding covers exactly the nest. *)
            let extents =
              List.map (fun (v, ph) -> (v, Ac.solution_extent actx ph)) phs
            in
            if List.exists (fun (_, e) -> e = None) extents then
              miss "coverage"
                "an induction variable's loop extent is not a known constant"
            else begin
              let extent_of v = Option.get (List.assoc v extents) in
              let nest_ivs = Affine.Loops.nest_ivs loops in
              let bound_ivs = List.map (fun (_, ph) -> Ac.iv_of actx ph) phs in
              if
                not
                  (List.for_all
                     (fun iv -> List.exists (Core.value_equal iv) bound_ivs)
                     nest_ivs)
              then
                miss "coverage"
                  "a loop of the nest is not bound by any pattern index"
              else if
                not
                  (coverage_ok ~extent_of
                     ~memref_of:(fun tensor ->
                       Ac.array_of actx (List.assoc tensor aphs))
                     prepared.accesses)
              then
                miss "coverage"
                  "the accesses do not span their arrays' full extents"
              else begin
                (* Build the replacement. *)
                let env = Hashtbl.create 8 in
                let shapes = Hashtbl.create 8 in
                List.iter
                  (fun (tensor, aph) ->
                    let memref = Ac.array_of actx aph in
                    Hashtbl.replace env tensor memref;
                    match Typ.static_shape memref.Core.v_typ with
                    | Some s -> Hashtbl.replace shapes tensor s
                    | None -> ())
                  aphs;
                infer_shapes t.builders shapes;
                emit_steps ~target ctx.builder t.builders env shapes;
                Core.erase_op (List.hd loops);
                true
              end
            end
          end
        end
  in
  let generated_of_builder = function
    | Tds.Transpose _ -> "linalg.transpose"
    | Tds.Reshape _ -> "linalg.reshape"
    | Tds.Matmul _ -> (
        match target with
        | To_linalg -> "linalg.matmul"
        | To_affine_matmul -> "affine.matmul")
    | Tds.Matvec _ -> "linalg.matvec"
    | Tds.Conv2d _ -> "linalg.conv2d_nchw"
    | Tds.Fill _ -> "linalg.fill"
  in
  let generated_ops =
    List.sort_uniq String.compare
      ("memref.alloc" :: List.map generated_of_builder t.builders)
  in
  (* The apply function's first gate is [matched_nest ~depth], which
     requires the perfect nest rooted at [op] to have exactly [depth]
     loops ([Loops.perfect_nest] treats "affine.yield" as the only
     invisible op) — declare exactly that, so the compiled dispatch tree
     probes the nest spine once per root op and skips every tactic whose
     depth cannot match. Wrong-depth nests produce no near-miss remarks
     (see the comment above [apply]), so pruning them is observationally
     identical. *)
  let prefix =
    Rewriter.prefix ~nest_depth:depth ~nest_ignore:[ "affine.yield" ] ()
  in
  Rewriter.pattern ~name:t.name ~roots:(Rewriter.Roots t.roots) ~prefix
    ~generated_ops apply

let compile_tdl ?target src =
  List.map (compile ?target) (Frontend.lower_source src)

let materialize b (t : Tds.tactic) bindings =
  let env = Hashtbl.create 8 in
  let shapes = Hashtbl.create 8 in
  List.iter
    (fun (name, (v : Core.value)) ->
      Hashtbl.replace env name v;
      match Typ.static_shape v.v_typ with
      | Some s -> Hashtbl.replace shapes name s
      | None -> D.errorf "materialize: %s has no static shape" name)
    bindings;
  infer_shapes t.builders shapes;
  emit_steps ~target:To_linalg b t.builders env shapes
