open Tdl_ast
module D = Support.Diag

(* ---- small helpers over index lists -------------------------------- *)

let positions_of ~within target =
  (* perm p with target.(t) = within.(p.(t)) *)
  List.map
    (fun v ->
      match
        List.mapi (fun i x -> (x, i)) within |> List.assoc_opt v
      with
      | Some i -> i
      | None -> D.errorf "TDL: index %s not found where expected" v)
    target

let is_identity_perm p = List.mapi (fun i x -> i = x) p |> List.for_all Fun.id

let all_singletons g = List.for_all (fun grp -> List.length grp = 1) g

(* ---- lowering state -------------------------------------------------- *)

type st = { mutable fresh : int; mutable steps : Tds.builder list }

let fresh st prefix =
  let n = st.fresh in
  st.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let emit st b = st.steps <- st.steps @ [ b ]

(* Bring tensor [name] (index order [order]) to index order [target] and
   collapse it by [groups] (a partition of [target] into contiguous
   groups). Returns the name holding the result. [collapse] controls
   whether the reshape step is emitted. *)
let normalize_input st ~name ~order ~target ~groups =
  let perm = positions_of ~within:order target in
  let name =
    if is_identity_perm perm then name
    else begin
      let out = fresh st "T" in
      emit st (Tds.Transpose { input = name; output = out; perm });
      out
    end
  in
  let grouping =
    let _, gs =
      List.fold_left
        (fun (off, acc) grp ->
          let n = List.length grp in
          (off + n, acc @ [ List.init n (fun i -> off + i) ]))
        (0, []) groups
    in
    gs
  in
  if all_singletons grouping then (name, grouping)
  else begin
    let out = fresh st "T" in
    emit st (Tds.Reshape { input = name; output = out; grouping });
    (out, grouping)
  end

(* ---- pattern classification + TTGT synthesis ------------------------ *)

let classify_pattern (s : stmt) =
  if s.op <> Accumulate then
    D.errorf "TDL: pattern must be an accumulation (+=)";
  match s.rhs with
  | R_mul (a, b) -> (s.lhs, a, b)
  | R_ref _ -> D.errorf "TDL: pattern must multiply two tensors"

let conv_classify ~(out : ref_) ~(in1 : ref_) ~(in2 : ref_) =
  (* O(n,f,x,y) += I(n,c,x+r,y+s) * W(f,c,r,s), modulo renaming. *)
  match
    (simple_indices out, simple_indices in2, out.indices, in1.indices)
  with
  | Some [ n; f; x; y ], Some [ f'; c; r; s ], _, [ i0; i1; i2; i3 ] ->
      let is_var e v = e = var v in
      let is_sum e a b =
        List.sort compare e.ix_terms = List.sort compare [ (a, 1); (b, 1) ]
        && e.ix_const = 0
      in
      if
        String.equal f f' && is_var i0 n && is_var i1 c && is_sum i2 x r
        && is_sum i3 y s
      then Some ()
      else None
  | _ -> None

let synthesize st ~(out : ref_) ~(in1 : ref_) ~(in2 : ref_) =
  match conv_classify ~out ~in1 ~in2 with
  | Some () ->
      emit st
        (Tds.Conv2d { in1 = in1.tensor; in2 = in2.tensor; output = out.tensor })
  | None ->
      let get_simple r =
        match simple_indices r with
        | Some idx -> idx
        | None ->
            D.errorf
              "TDL: unsupported compound subscripts in %s (only conv2d \
               windows are recognized)"
              r.tensor
      in
      let o = get_simple out and a = get_simple in1 and b = get_simple in2 in
      List.iter
        (fun v ->
          if List.mem v a && List.mem v b then
            D.errorf "TDL: output index %s appears in both inputs" v;
          if not (List.mem v a || List.mem v b) then
            D.errorf "TDL: output index %s appears in no input" v)
        o;
      let m_group = List.filter (fun v -> List.mem v a) o in
      let n_group = List.filter (fun v -> List.mem v b) o in
      let k_group =
        List.filter (fun v -> not (List.mem v o)) a
      in
      (* Contractedness: every non-output index of either input must be
         shared by both. *)
      List.iter
        (fun v ->
          if not (List.mem v o) && not (List.mem v a && List.mem v b) then
            D.errorf "TDL: index %s is neither free nor contracted" v)
        (a @ b);
      if k_group = [] then
        D.errorf "TDL: pattern has no contracted index (outer product?)";
      (* For matrix-vector shapes, pick the matrix orientation that avoids
         a transpose: (free, contracted) gives a plain gemv while
         (contracted, free) gives the transposed one. *)
      let matvec_plan ~mat_order ~free ~contracted =
        if mat_order = contracted @ free && mat_order <> free @ contracted
        then (`Transposed, contracted @ free, [ contracted; free ])
        else (`Plain, free @ contracted, [ free; contracted ])
      in
      (* Normalize the output; remember how to fold it back. *)
      let c_target = m_group @ n_group in
      let c_perm = positions_of ~within:o c_target in
      let c_groups =
        List.filter (fun g -> g <> []) [ m_group; n_group ]
      in
      let needs_transpose = not (is_identity_perm c_perm) in
      let grouping =
        let _, gs =
          List.fold_left
            (fun (off, acc) grp ->
              let n = List.length grp in
              (off + n, acc @ [ List.init n (fun i -> off + i) ]))
            (0, []) c_groups
        in
        gs
      in
      let needs_reshape = not (all_singletons grouping) in
      let c_name = out.tensor in
      let c_name =
        if needs_transpose then begin
          let t = fresh st "T" in
          emit st (Tds.Transpose { input = c_name; output = t; perm = c_perm });
          t
        end
        else c_name
      in
      let c_mat =
        if needs_reshape then begin
          let t = fresh st "T" in
          emit st (Tds.Reshape { input = c_name; output = t; grouping });
          t
        end
        else c_name
      in
      (* The product itself. *)
      (if m_group <> [] && n_group <> [] then begin
         let a_name, _ =
           normalize_input st ~name:in1.tensor ~order:a
             ~target:(m_group @ k_group) ~groups:[ m_group; k_group ]
         in
         let b_name, _ =
           normalize_input st ~name:in2.tensor ~order:b
             ~target:(k_group @ n_group) ~groups:[ k_group; n_group ]
         in
         emit st (Tds.Matmul { in1 = a_name; in2 = b_name; output = c_mat })
       end
       else begin
         (* Matrix-vector product: one input holds all free indices. *)
         let (mat, mat_order), (vec, vec_order), free =
           if n_group = [] then ((in1, a), (in2, b), m_group)
           else ((in2, b), (in1, a), n_group)
         in
         let orientation, target, groups =
           matvec_plan ~mat_order ~free ~contracted:k_group
         in
         let mat_name, _ =
           normalize_input st ~name:mat.tensor ~order:mat_order ~target ~groups
         in
         let vec_name, _ =
           normalize_input st ~name:vec.tensor ~order:vec_order
             ~target:k_group ~groups:[ k_group ]
         in
         emit st
           (Tds.Matvec
              {
                in1 = mat_name;
                in2 = vec_name;
                output = c_mat;
                transpose = orientation = `Transposed;
              })
       end);
      (* Fold the result back into the original layout. *)
      if needs_reshape then begin
        let t = if needs_transpose then fresh st "T" else out.tensor in
        emit st (Tds.Reshape { input = c_mat; output = t; grouping });
        if needs_transpose then
          emit st
            (Tds.Transpose
               {
                 input = t;
                 output = out.tensor;
                 perm =
                   Array.to_list
                     (Ir.Affine_map.inverse_permutation
                        (Array.of_list c_perm));
               })
      end
      else if needs_transpose then
        emit st
          (Tds.Transpose
             {
               input = c_mat;
               output = out.tensor;
               perm =
                 Array.to_list
                   (Ir.Affine_map.inverse_permutation (Array.of_list c_perm));
             })

(* ---- explicit builder statements (Listing 3) ------------------------ *)

let expand_where (r : ref_) (where : (string * string list) option) =
  (* The index order of [r] with any fused index expanded to its group. *)
  let idx =
    match simple_indices r with
    | Some idx -> idx
    | None -> D.errorf "TDL: builder statements need simple subscripts"
  in
  match where with
  | None -> (idx, idx)
  | Some (f, group) ->
      let expanded =
        List.concat_map (fun v -> if String.equal v f then group else [ v ]) idx
      in
      (idx, expanded)

let lower_builder_stmt st (s : stmt) =
  match (s.op, s.rhs) with
  | Accumulate, R_mul (a, b) -> (
      (* Must be an exact matmul/matvec at this point. *)
      let o = Option.get (simple_indices s.lhs) in
      let ia = Option.get (simple_indices a) in
      let ib = Option.get (simple_indices b) in
      match (o, ia, ib) with
      | [ i; j ], [ i'; k ], [ k'; j' ]
        when i = i' && j = j' && k = k' ->
          emit st (Tds.Matmul { in1 = a.tensor; in2 = b.tensor; output = s.lhs.tensor })
      | [ i ], [ i'; k ], [ k' ] when i = i' && k = k' ->
          emit st
            (Tds.Matvec
               { in1 = a.tensor; in2 = b.tensor; output = s.lhs.tensor;
                 transpose = false })
      | [ j ], [ k; j' ], [ k' ] when j = j' && k = k' ->
          emit st
            (Tds.Matvec
               { in1 = a.tensor; in2 = b.tensor; output = s.lhs.tensor;
                 transpose = true })
      | _ ->
          D.errorf
            "TDL: builder accumulation must be a canonical matmul/matvec")
  | Accumulate, R_ref _ ->
      D.errorf "TDL: builder accumulation must multiply two tensors"
  | Assign, R_mul _ ->
      D.errorf "TDL: builder assignment cannot multiply tensors"
  | Assign, R_ref src ->
      let l_idx, l_expanded = expand_where s.lhs s.where in
      let r_idx, r_expanded = expand_where src s.where in
      if List.length l_idx < List.length r_idx then begin
        (* Collapse: transpose rhs to expanded-lhs order, then reshape. *)
        let perm = positions_of ~within:r_idx l_expanded in
        let name =
          if is_identity_perm perm then src.tensor
          else begin
            let t = fresh st "T" in
            emit st (Tds.Transpose { input = src.tensor; output = t; perm });
            t
          end
        in
        let f, group =
          match s.where with
          | Some w -> w
          | None -> D.errorf "TDL: rank-changing assignment needs 'where'"
        in
        let grouping =
          let pos = ref 0 in
          List.map
            (fun v ->
              if String.equal v f then begin
                let g = List.init (List.length group) (fun i -> !pos + i) in
                pos := !pos + List.length group;
                g
              end
              else begin
                let g = [ !pos ] in
                incr pos;
                g
              end)
            l_idx
        in
        emit st
          (Tds.Reshape { input = name; output = s.lhs.tensor; grouping })
      end
      else if List.length l_idx > List.length r_idx then begin
        (* Expand: reshape rhs, then transpose into lhs order. *)
        let f, group =
          match s.where with
          | Some w -> w
          | None -> D.errorf "TDL: rank-changing assignment needs 'where'"
        in
        let grouping =
          let pos = ref 0 in
          List.map
            (fun v ->
              if String.equal v f then begin
                let g = List.init (List.length group) (fun i -> !pos + i) in
                pos := !pos + List.length group;
                g
              end
              else begin
                let g = [ !pos ] in
                incr pos;
                g
              end)
            r_idx
        in
        let perm = positions_of ~within:r_expanded l_idx in
        if is_identity_perm perm then
          emit st
            (Tds.Reshape { input = src.tensor; output = s.lhs.tensor; grouping })
        else begin
          let t = fresh st "T" in
          emit st (Tds.Reshape { input = src.tensor; output = t; grouping });
          emit st
            (Tds.Transpose { input = t; output = s.lhs.tensor; perm })
        end
      end
      else begin
        (* Same rank: pure transpose (or copy). *)
        let perm = positions_of ~within:r_idx l_idx in
        emit st
          (Tds.Transpose { input = src.tensor; output = s.lhs.tensor; perm })
      end

let lower (t : tactic) =
  let out, in1, in2 = classify_pattern t.t_pattern in
  ignore (out, in1, in2);
  let st = { fresh = 0; steps = [] } in
  (if t.t_builder = [] then synthesize st ~out ~in1 ~in2
   else List.iter (lower_builder_stmt st) t.t_builder);
  {
    Tds.name = t.t_name;
    pattern = t.t_pattern;
    (* Every generated matcher anchors on a perfectly-nested loop nest. *)
    roots = [ "affine.for" ];
    builders = st.steps;
  }

let lower_source ?file src =
  List.map lower (Tdl_parser.parse ?file src)

let gemm_tdl =
  {|def GEMM {
  pattern = builder C(i,j) += A(i,k) * B(k,j)
}
|}

let ttgt_tdl =
  {|def TTGT {
  pattern
    C(a,b,c) += A(a,c,d) * B(d,b)
  builder
    D(f,b) = C(a,b,c) where f = a * c
    E(f,d) = A(a,c,d) where f = a * c
    D(f,b) += E(f,d) * B(d,b)
    C(a,b,c) = D(f,b) where f = a * c
}
|}

let contraction_tdl ~name out in1 in2 =
  let subs s =
    String.concat ","
      (List.init (String.length s) (fun i -> String.make 1 s.[i]))
  in
  Printf.sprintf "def %s {\n  pattern\n    C(%s) += A(%s) * B(%s)\n}\n" name
    (subs out) (subs in1) (subs in2)
