(** Tactics Description Specification (TDS, §III-B and Figure 5): the
    TableGen-stage representation between TDL and the generated matchers
    and builders. Each entry derives from the [Tactic] class and carries
    the pattern (in TC syntax) plus a list of builders.

    TableGen files are only containers of domain-specific information —
    this module provides the data type, the textual rendering (Listing 4)
    and a parser for it, so the two-step TDL → TDS → code pipeline is
    observable and testable. *)

type builder =
  | Transpose of { input : string; output : string; perm : int list }
  | Reshape of { input : string; output : string; grouping : int list list }
  | Matmul of { in1 : string; in2 : string; output : string }
  | Matvec of { in1 : string; in2 : string; output : string; transpose : bool }
  | Conv2d of { in1 : string; in2 : string; output : string }
  | Fill of { output : string; value : float }

type tactic = {
  name : string;
  pattern : Tdl_ast.stmt;
  roots : string list;
      (** Op names the generated matcher can fire at (rendered as a
          [Roots<[...]>] clause; files without one parse to
          [["affine.for"]], the root of every structural nest match). *)
  builders : builder list;
}

(** Tensor names read by a builder step. *)
val builder_inputs : builder -> string list

(** Tensor name written by a builder step. *)
val builder_output : builder -> string

(** Render in the TableGen syntax of Listing 4. *)
val pp : Format.formatter -> tactic -> unit

val to_string : tactic -> string

(** Parse the rendered syntax back ([to_string] and [parse] round-trip). *)
val parse : ?file:string -> string -> tactic list

val parse_one : ?file:string -> string -> tactic
