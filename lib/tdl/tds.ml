module P = Tdl_parser
module D = Support.Diag

type builder =
  | Transpose of { input : string; output : string; perm : int list }
  | Reshape of { input : string; output : string; grouping : int list list }
  | Matmul of { in1 : string; in2 : string; output : string }
  | Matvec of { in1 : string; in2 : string; output : string; transpose : bool }
  | Conv2d of { in1 : string; in2 : string; output : string }
  | Fill of { output : string; value : float }

type tactic = {
  name : string;
  pattern : Tdl_ast.stmt;
  roots : string list;
  builders : builder list;
}

let builder_inputs = function
  | Transpose { input; _ } | Reshape { input; _ } -> [ input ]
  | Matmul { in1; in2; _ } | Matvec { in1; in2; _ } | Conv2d { in1; in2; _ }
    ->
      [ in1; in2 ]
  | Fill _ -> []

let builder_output = function
  | Transpose { output; _ }
  | Reshape { output; _ }
  | Matmul { output; _ }
  | Matvec { output; _ }
  | Conv2d { output; _ }
  | Fill { output; _ } ->
      output

let pp_names fmt names =
  Format.fprintf fmt "In<[%s]>" (String.concat ", " names)

let pp_builder fmt b =
  let out fmt name = Format.fprintf fmt "Out<[%s]>" name in
  match b with
  | Transpose { input; output; perm } ->
      Format.fprintf fmt "transposeBuilder<%a, %a, Expr<{%s}>>" pp_names
        [ input ] out output
        (String.concat ", " (List.map string_of_int perm))
  | Reshape { input; output; grouping } ->
      let group g =
        match g with
        | [ d ] -> string_of_int d
        | ds -> "{" ^ String.concat ", " (List.map string_of_int ds) ^ "}"
      in
      Format.fprintf fmt "reshapeBuilder<%a, %a, Expr<{%s}>>" pp_names
        [ input ] out output
        (String.concat ", " (List.map group grouping))
  | Matmul { in1; in2; output } ->
      Format.fprintf fmt "matmulBuilder<%a, %a>" pp_names [ in1; in2 ] out
        output
  | Matvec { in1; in2; output; transpose } ->
      Format.fprintf fmt "matvecBuilder<%a, %a, Trans<%d>>" pp_names
        [ in1; in2 ] out output
        (if transpose then 1 else 0)
  | Conv2d { in1; in2; output } ->
      Format.fprintf fmt "convBuilder<%a, %a>" pp_names [ in1; in2 ] out
        output
  | Fill { output; value } ->
      (* The value is rendered as a rational to stay within TableGen-ish
         integer tokens. *)
      Format.fprintf fmt "fillBuilder<Out<[%s]>, Value<%d, %d>>" output
        (int_of_float (value *. 1000.))
        1000

let pp fmt t =
  Format.fprintf fmt "def %s : Tactic<%s, Roots<[%s]>, [\n" t.name
    (Tdl_ast.stmt_to_string t.pattern)
    (String.concat ", " t.roots);
  List.iter (fun b -> Format.fprintf fmt "  %a,\n" pp_builder b) t.builders;
  Format.fprintf fmt "]>;\n"

let to_string t = Format.asprintf "%a" pp t

(* ---- parsing ------------------------------------------------------- *)

let expect_name st name =
  let id = P.expect_ident st in
  if not (String.equal id name) then
    D.errorf "TDS: expected %s, found %s" name id

let parse_name_list st =
  (* In<[A, B]> *)
  P.expect st P.Lt;
  P.expect st P.Lbracket;
  let rec go acc =
    let id = P.expect_ident st in
    match (P.next st).P.tok with
    | P.Comma -> go (id :: acc)
    | P.Rbracket -> List.rev (id :: acc)
    | other ->
        D.errorf "TDS: expected ',' or ']', found %s"
          (P.token_to_string other)
  in
  let names = go [] in
  P.expect st P.Gt;
  names

let parse_in st =
  expect_name st "In";
  parse_name_list st

let parse_out st =
  expect_name st "Out";
  match parse_name_list st with
  | [ o ] -> o
  | _ -> D.errorf "TDS: Out<> takes exactly one name"

let expect_int st =
  match (P.next st).P.tok with
  | P.Int i -> i
  | other -> D.errorf "TDS: expected integer, found %s" (P.token_to_string other)

let parse_expr_ints st =
  (* Expr<{0, 2, 1}> or Expr<{{0, 1}, 2}> — returns groups. *)
  expect_name st "Expr";
  P.expect st P.Lt;
  P.expect st P.Lbrace;
  let rec go acc =
    let item =
      match (P.peek st).P.tok with
      | P.Lbrace ->
          ignore (P.next st);
          let rec ints acc =
            let i = expect_int st in
            match (P.next st).P.tok with
            | P.Comma -> ints (i :: acc)
            | P.Rbrace -> List.rev (i :: acc)
            | other ->
                D.errorf "TDS: expected ',' or '}', found %s"
                  (P.token_to_string other)
          in
          ints []
      | _ -> [ expect_int st ]
    in
    match (P.next st).P.tok with
    | P.Comma -> go (item :: acc)
    | P.Rbrace -> List.rev (item :: acc)
    | other ->
        D.errorf "TDS: expected ',' or '}', found %s" (P.token_to_string other)
  in
  let groups = go [] in
  P.expect st P.Gt;
  groups

let parse_builder st =
  let kind = P.expect_ident st in
  P.expect st P.Lt;
  let b =
    match kind with
    | "transposeBuilder" ->
        let input =
          match parse_in st with
          | [ i ] -> i
          | _ -> D.errorf "TDS: transposeBuilder takes one input"
        in
        P.expect st P.Comma;
        let output = parse_out st in
        P.expect st P.Comma;
        let perm = List.map List.hd (parse_expr_ints st) in
        Transpose { input; output; perm }
    | "reshapeBuilder" ->
        let input =
          match parse_in st with
          | [ i ] -> i
          | _ -> D.errorf "TDS: reshapeBuilder takes one input"
        in
        P.expect st P.Comma;
        let output = parse_out st in
        P.expect st P.Comma;
        let grouping = parse_expr_ints st in
        Reshape { input; output; grouping }
    | "matmulBuilder" | "convBuilder" -> (
        let ins = parse_in st in
        P.expect st P.Comma;
        let output = parse_out st in
        match ins with
        | [ in1; in2 ] ->
            if String.equal kind "matmulBuilder" then
              Matmul { in1; in2; output }
            else Conv2d { in1; in2; output }
        | _ -> D.errorf "TDS: %s takes two inputs" kind)
    | "matvecBuilder" -> (
        let ins = parse_in st in
        P.expect st P.Comma;
        let output = parse_out st in
        P.expect st P.Comma;
        expect_name st "Trans";
        P.expect st P.Lt;
        let t = expect_int st in
        P.expect st P.Gt;
        match ins with
        | [ in1; in2 ] -> Matvec { in1; in2; output; transpose = t <> 0 }
        | _ -> D.errorf "TDS: matvecBuilder takes two inputs")
    | "fillBuilder" ->
        let output = parse_out st in
        P.expect st P.Comma;
        expect_name st "Value";
        P.expect st P.Lt;
        let num = expect_int st in
        P.expect st P.Comma;
        let den = expect_int st in
        P.expect st P.Gt;
        Fill { output; value = float_of_int num /. float_of_int den }
    | other -> D.errorf "TDS: unknown builder kind %S" other
  in
  P.expect st P.Gt;
  b

let parse_tactic_at st =
  P.expect st P.Def;
  let name = P.expect_ident st in
  P.expect st P.Colon;
  expect_name st "Tactic";
  P.expect st P.Lt;
  let pattern = P.parse_stmt_at st in
  P.expect st P.Comma;
  (* Optional root-op clause; older TDS files without one default to the
     affine.for nests every structural tactic matches at. *)
  let roots =
    match (P.peek st).P.tok with
    | P.Ident "Roots" ->
        expect_name st "Roots";
        let names = parse_name_list st in
        P.expect st P.Comma;
        names
    | _ -> [ "affine.for" ]
  in
  P.expect st P.Lbracket;
  let rec builders acc =
    match (P.peek st).P.tok with
    | P.Rbracket ->
        ignore (P.next st);
        List.rev acc
    | _ ->
        let b = parse_builder st in
        (match (P.peek st).P.tok with
        | P.Comma -> ignore (P.next st)
        | _ -> ());
        builders (b :: acc)
  in
  let builders = builders [] in
  P.expect st P.Gt;
  P.expect st P.Semi;
  { name; pattern; roots; builders }

let parse ?(file = "<tds>") src =
  let st = { P.toks = P.tokenize ~file src } in
  let rec go acc =
    match (P.peek st).P.tok with
    | P.Eof -> List.rev acc
    | _ -> go (parse_tactic_at st :: acc)
  in
  go []

let parse_one ?file src =
  match parse ?file src with
  | [ t ] -> t
  | ts -> D.errorf "TDS: expected one tactic, found %d" (List.length ts)
