open Tdl_ast
module D = Support.Diag

type token =
  | Def
  | Pattern
  | Builder
  | Where
  | Ident of string
  | Int of int
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Eq
  | Plus_eq
  | Star
  | Plus
  (* Tokens used only by the TDS (TableGen) syntax. *)
  | Lt
  | Gt
  | Lbracket
  | Rbracket
  | Semi
  | Colon
  | Eof

let token_to_string = function
  | Def -> "'def'"
  | Pattern -> "'pattern'"
  | Builder -> "'builder'"
  | Where -> "'where'"
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int i -> Printf.sprintf "integer %d" i
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Comma -> "','"
  | Eq -> "'='"
  | Plus_eq -> "'+='"
  | Star -> "'*'"
  | Plus -> "'+'"
  | Lt -> "'<'"
  | Gt -> "'>'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semi -> "';'"
  | Colon -> "':'"
  | Eof -> "end of input"

type ltok = { tok : token; loc : Support.Loc.t }

let tokenize ~file src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let toks = ref [] in
  let loc () = Support.Loc.make ~file ~line:!line ~col:!col in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then (
         incr line;
         col := 1)
       else incr col);
    incr pos
  in
  let peek i = if !pos + i < n then Some src.[!pos + i] else None in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  let rec go () =
    match peek 0 with
    | None -> toks := { tok = Eof; loc = loc () } :: !toks
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        go ()
    | Some '/' when peek 1 = Some '/' ->
        while peek 0 <> None && peek 0 <> Some '\n' do
          advance ()
        done;
        go ()
    | Some c when is_id c ->
        let l = loc () in
        let start = !pos in
        (* '.' continues an identifier so dialect-qualified op names
           (affine.for, linalg.matmul) in TDS Roots<[...]> clauses lex as
           one token; TDL surface syntax itself never uses '.'. *)
        while (match peek 0 with
               | Some c -> is_id c || is_digit c || c = '.'
               | None -> false)
        do
          advance ()
        done;
        let text = String.sub src start (!pos - start) in
        let tok =
          match text with
          | "def" -> Def
          | "pattern" -> Pattern
          | "builder" -> Builder
          | "where" -> Where
          | _ -> Ident text
        in
        toks := { tok; loc = l } :: !toks;
        go ()
    | Some c when is_digit c ->
        let l = loc () in
        let start = !pos in
        while (match peek 0 with Some c -> is_digit c | None -> false) do
          advance ()
        done;
        toks :=
          { tok = Int (int_of_string (String.sub src start (!pos - start))); loc = l }
          :: !toks;
        go ()
    | Some c ->
        let l = loc () in
        let one tok =
          advance ();
          toks := { tok; loc = l } :: !toks
        in
        (match (c, peek 1) with
        | '+', Some '=' ->
            advance ();
            advance ();
            toks := { tok = Plus_eq; loc = l } :: !toks
        | '(', _ -> one Lparen
        | ')', _ -> one Rparen
        | '{', _ -> one Lbrace
        | '}', _ -> one Rbrace
        | ',', _ -> one Comma
        | '=', _ -> one Eq
        | '*', _ -> one Star
        | '+', _ -> one Plus
        | '<', _ -> one Lt
        | '>', _ -> one Gt
        | '[', _ -> one Lbracket
        | ']', _ -> one Rbracket
        | ';', _ -> one Semi
        | ':', _ -> one Colon
        | _ -> D.errorf ~loc:l "TDL: unexpected character %C" c);
        go ()
  in
  go ();
  List.rev !toks

type state = { mutable toks : ltok list }

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: r -> st.toks <- r);
  t

let expect st tok =
  let t = next st in
  if t.tok <> tok then
    D.errorf ~loc:t.loc "TDL: expected %s, found %s" (token_to_string tok)
      (token_to_string t.tok)

let expect_ident st =
  let t = next st in
  match t.tok with
  | Ident s -> s
  | other ->
      D.errorf ~loc:t.loc "TDL: expected identifier, found %s"
        (token_to_string other)

(* iexpr := iterm ('+' iterm)*, iterm := INT '*' IDENT | INT | IDENT *)
let parse_iexpr st =
  let parse_term () =
    let t = next st in
    match t.tok with
    | Int k -> (
        match (peek st).tok with
        | Star ->
            ignore (next st);
            let v = expect_ident st in
            { ix_terms = [ (v, k) ]; ix_const = 0 }
        | _ -> { ix_terms = []; ix_const = k })
    | Ident v -> { ix_terms = [ (v, 1) ]; ix_const = 0 }
    | other ->
        D.errorf ~loc:t.loc "TDL: expected subscript term, found %s"
          (token_to_string other)
  in
  let add a b =
    let terms =
      List.fold_left
        (fun acc (v, k) ->
          match List.assoc_opt v acc with
          | Some k' -> (v, k + k') :: List.remove_assoc v acc
          | None -> acc @ [ (v, k) ])
        a.ix_terms b.ix_terms
    in
    { ix_terms = terms; ix_const = a.ix_const + b.ix_const }
  in
  let rec loop acc =
    match (peek st).tok with
    | Plus ->
        ignore (next st);
        loop (add acc (parse_term ()))
    | _ -> acc
  in
  loop (parse_term ())

let parse_ref st =
  let tensor = expect_ident st in
  expect st Lparen;
  let rec idxs acc =
    let e = parse_iexpr st in
    match (next st).tok with
    | Comma -> idxs (e :: acc)
    | Rparen -> List.rev (e :: acc)
    | other ->
        D.errorf "TDL: expected ',' or ')' in subscript list, found %s"
          (token_to_string other)
  in
  { tensor; indices = idxs [] }

let parse_stmt_at st =
  let lhs = parse_ref st in
  let op =
    let t = next st in
    match t.tok with
    | Eq -> Assign
    | Plus_eq -> Accumulate
    | other ->
        D.errorf ~loc:t.loc "TDL: expected '=' or '+=', found %s"
          (token_to_string other)
  in
  let r1 = parse_ref st in
  let rhs =
    match (peek st).tok with
    | Star ->
        ignore (next st);
        R_mul (r1, parse_ref st)
    | _ -> R_ref r1
  in
  let where =
    match (peek st).tok with
    | Where ->
        ignore (next st);
        let f = expect_ident st in
        expect st Eq;
        let rec group acc =
          let v = expect_ident st in
          match (peek st).tok with
          | Star ->
              ignore (next st);
              group (v :: acc)
          | _ -> List.rev (v :: acc)
        in
        Some (f, group [])
    | _ -> None
  in
  { lhs; op; rhs; where }

let parse_tactic_at st =
  expect st Def;
  let name = expect_ident st in
  expect st Lbrace;
  expect st Pattern;
  let pattern, builder =
    match (peek st).tok with
    | Eq ->
        (* Listing 8: pattern = builder <stmt> *)
        ignore (next st);
        expect st Builder;
        let s = parse_stmt_at st in
        (s, [])
    | _ ->
        let pattern = parse_stmt_at st in
        let builder =
          match (peek st).tok with
          | Builder ->
              ignore (next st);
              let rec stmts acc =
                match (peek st).tok with
                | Rbrace -> List.rev acc
                | _ -> stmts (parse_stmt_at st :: acc)
              in
              stmts []
          | _ -> []
        in
        (pattern, builder)
  in
  expect st Rbrace;
  { t_name = name; t_pattern = pattern; t_builder = builder }

let parse ?(file = "<tdl>") src =
  let st = { toks = tokenize ~file src } in
  let rec go acc =
    match (peek st).tok with
    | Eof -> List.rev acc
    | _ -> go (parse_tactic_at st :: acc)
  in
  go []

let parse_one ?file src =
  match parse ?file src with
  | [ t ] -> t
  | ts -> D.errorf "TDL: expected one tactic, found %d" (List.length ts)

let parse_stmt ?(file = "<tdl>") src =
  let st = { toks = tokenize ~file src } in
  let s = parse_stmt_at st in
  expect st Eof;
  s
