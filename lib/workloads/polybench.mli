(** Mini-C sources for the evaluation workloads: the Polybench 4.2 linear
    algebra subset used in Figure 9, the GEMM style variants of Figure 8
    (including the Darknet-style linearized kernel), conv2d-nchw, and the
    matrix chains of Table II.

    Following the paper we restrict Polybench to the kernels that map to
    the available Linalg operations, and (like the artifact) pre-scale
    alpha/beta to 1 so the accumulation statements are plain contractions;
    initialization/update statements remain and are separated by MET's
    loop distribution. All sources are generated at the scaled-down
    default sizes unless explicit dimensions are passed. *)

(** [gemm ~ni ~nj ~nk ()]: C *= beta-style init then C += A*B. *)
val gemm : ?ni:int -> ?nj:int -> ?nk:int -> ?name:string -> unit -> string

(** Plain triple-loop matmul without initialization (the [mm] style of
    Figure 8). *)
val mm : ?ni:int -> ?nj:int -> ?nk:int -> ?name:string -> unit -> string

val two_mm : ?ni:int -> ?nj:int -> ?nk:int -> ?nl:int -> unit -> string
val three_mm :
  ?ni:int -> ?nj:int -> ?nk:int -> ?nl:int -> ?nm:int -> unit -> string

(** Darknet-style GEMM over linearized (rank-1) buffers — the kernel the
    2-d GEMM tactic must miss in Figure 8. *)
val darknet_gemm : ?m:int -> ?n:int -> ?k:int -> unit -> string

val atax : ?m:int -> ?n:int -> unit -> string
val bicg : ?m:int -> ?n:int -> unit -> string
val mvt : ?n:int -> unit -> string
val gesummv : ?n:int -> unit -> string
val gemver : ?n:int -> unit -> string

val conv2d_nchw :
  ?n:int -> ?c:int -> ?h:int -> ?w:int -> ?f:int -> ?kh:int -> ?kw:int ->
  unit -> string

(** {2 Negative controls}

    Kernels the paper excluded from Figure 9 "that cannot be mapped to
    current available Linalg operations": triangular iteration spaces
    (syrk, trmm) and an output indexed by both inputs (doitgen's
    in-place writeback). The tactics must {e not} fire on them — tested
    in [test_workloads_negative]. (Our mini-C subset has no triangular
    bounds, so syrk/trmm use the closest expressible shapes that still
    defeat the tactics: symmetric-output and in-place aliasing.) *)

(** syrk-like update C(i,j) += A(i,k) * A(j,k): both inputs are the same
    array — the tactic's array-distinctness constraint must reject it. *)
val syrk_like : ?n:int -> ?k:int -> unit -> string

(** trmm-like in-place update B(i,j) += A(i,k) * B(k,j): the output
    aliases an input. *)
val trmm_like : ?n:int -> unit -> string

(** doitgen's writeback shape: sum(r,q,p) then A(r,q,p) = sum(r,q,p) in
    the same nest — distribution isolates the contraction, which matches
    a matvec-like tactic, but the copy-back stays at the loop level. *)
val doitgen : ?r:int -> ?q:int -> ?p:int -> unit -> string

(** [matrix_chain dims] for dims [[p0; p1; ...; pn]]: computes
    [R = A1 x A2 x ... x An] left-to-right with explicit zero-initialized
    temporaries, where [Ai] is [p_{i-1} x p_i]. *)
val matrix_chain : int list -> string

(** Names and sources of the 16 Figure-9 kernels at reproduction sizes,
    with the flop count of the mathematical operation. *)
val figure9_suite : unit -> (string * string * float) list

(** The same 16 kernels at tiny sizes, for interpreter-based semantic
    tests (flop counts omitted). *)
val tiny_suite : unit -> (string * string) list

(** Deep-loop-nest battery for [bench -- scale]: one kernel per nest
    shape (2-deep vector ops, 3-deep contractions, the 7-deep
    convolution) at tiny extents. The scale benchmark reaches its
    million-op target by cloning the translated functions, so extents
    only set per-function op counts. *)
val scale_battery : unit -> (string * string) list
