let spf = Printf.sprintf

let mm ?(ni = 128) ?(nj = 128) ?(nk = 128) ?(name = "mm") () =
  spf
    {|void %s(float A[%d][%d], float B[%d][%d], float C[%d][%d]) {
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      for (int k = 0; k < %d; ++k)
        C[i][j] += A[i][k] * B[k][j];
}
|}
    name ni nk nk nj ni nj ni nj nk

let gemm ?(ni = 128) ?(nj = 128) ?(nk = 128) ?(name = "gemm") () =
  spf
    {|void %s(float A[%d][%d], float B[%d][%d], float C[%d][%d]) {
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j) {
      C[i][j] = 0.0;
      for (int k = 0; k < %d; ++k)
        C[i][j] += A[i][k] * B[k][j];
    }
}
|}
    name ni nk nk nj ni nj ni nj nk

let two_mm ?(ni = 96) ?(nj = 96) ?(nk = 96) ?(nl = 96) () =
  spf
    {|void two_mm(float A[%d][%d], float B[%d][%d], float C[%d][%d], float D[%d][%d]) {
  float T[%d][%d];
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j) {
      T[i][j] = 0.0;
      for (int k = 0; k < %d; ++k)
        T[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      for (int k = 0; k < %d; ++k)
        D[i][j] += T[i][k] * C[k][j];
}
|}
    ni nk nk nj nj nl ni nl ni nj ni nj nk ni nl nj

let three_mm ?(ni = 96) ?(nj = 96) ?(nk = 96) ?(nl = 96) ?(nm = 96) () =
  spf
    {|void three_mm(float A[%d][%d], float B[%d][%d], float C[%d][%d], float D[%d][%d], float G[%d][%d]) {
  float E[%d][%d];
  float F[%d][%d];
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j) {
      E[i][j] = 0.0;
      for (int k = 0; k < %d; ++k)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j) {
      F[i][j] = 0.0;
      for (int k = 0; k < %d; ++k)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      for (int k = 0; k < %d; ++k)
        G[i][j] += E[i][k] * F[k][j];
}
|}
    ni nk nk nj nj nm nm nl ni nl ni nj nj nm ni nj nk nj nl nm ni nl nj

let darknet_gemm ?(m = 128) ?(n = 128) ?(k = 128) () =
  (* Darknet's gemm_nn: linearized row-major buffers with explicit
     lda/ldb/ldc strides baked into rank-1 subscripts. *)
  spf
    {|void darknet_gemm(float A[%d], float B[%d], float C[%d]) {
  for (int i = 0; i < %d; ++i)
    for (int kk = 0; kk < %d; ++kk)
      for (int j = 0; j < %d; ++j)
        C[i*%d + j] += A[i*%d + kk] * B[kk*%d + j];
}
|}
    (m * k) (k * n) (m * n) m k n n k n

let atax ?(m = 256) ?(n = 256) () =
  spf
    {|void atax(float A[%d][%d], float x[%d], float y[%d]) {
  float tmp[%d];
  for (int j = 0; j < %d; ++j)
    y[j] = 0.0;
  for (int i = 0; i < %d; ++i) {
    tmp[i] = 0.0;
    for (int j = 0; j < %d; ++j)
      tmp[i] += A[i][j] * x[j];
  }
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      y[j] += A[i][j] * tmp[i];
}
|}
    m n n n m n m n m n

let bicg ?(m = 256) ?(n = 256) () =
  spf
    {|void bicg(float A[%d][%d], float p[%d], float r[%d], float q[%d], float s[%d]) {
  for (int j = 0; j < %d; ++j)
    s[j] = 0.0;
  for (int i = 0; i < %d; ++i) {
    q[i] = 0.0;
    for (int j = 0; j < %d; ++j)
      q[i] += A[i][j] * p[j];
  }
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      s[j] += A[i][j] * r[i];
}
|}
    n m m n n m m n m n m

let mvt ?(n = 256) () =
  spf
    {|void mvt(float A[%d][%d], float x1[%d], float x2[%d], float y1[%d], float y2[%d]) {
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      x1[i] += A[i][j] * y1[j];
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      x2[j] += A[i][j] * y2[i];
}
|}
    n n n n n n n n n n

let gesummv ?(n = 256) () =
  spf
    {|void gesummv(float A[%d][%d], float B[%d][%d], float x[%d], float y[%d]) {
  float tmp[%d];
  for (int i = 0; i < %d; ++i) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < %d; ++j)
      tmp[i] += A[i][j] * x[j];
    for (int j = 0; j < %d; ++j)
      y[i] += B[i][j] * x[j];
    y[i] = tmp[i] + y[i];
  }
}
|}
    n n n n n n n n n n

let gemver ?(n = 256) () =
  spf
    {|void gemver(float A[%d][%d], float u1[%d], float v1[%d], float u2[%d], float v2[%d], float w[%d], float x[%d], float y[%d], float z[%d]) {
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      x[i] += A[j][i] * y[j];
  for (int i = 0; i < %d; ++i)
    x[i] = x[i] + z[i];
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      w[i] += A[i][j] * x[j];
}
|}
    n n n n n n n n n n n n n n n n n

let conv2d_nchw ?(n = 1) ?(c = 8) ?(h = 36) ?(w = 36) ?(f = 8) ?(kh = 5)
    ?(kw = 5) () =
  let oh = h - kh + 1 and ow = w - kw + 1 in
  spf
    {|void conv2d_nchw(float I[%d][%d][%d][%d], float W[%d][%d][%d][%d], float O[%d][%d][%d][%d]) {
  for (int nn = 0; nn < %d; ++nn)
    for (int ff = 0; ff < %d; ++ff)
      for (int oh = 0; oh < %d; ++oh)
        for (int ow = 0; ow < %d; ++ow)
          for (int cc = 0; cc < %d; ++cc)
            for (int r = 0; r < %d; ++r)
              for (int s = 0; s < %d; ++s)
                O[nn][ff][oh][ow] += I[nn][cc][oh + r][ow + s] * W[ff][cc][r][s];
}
|}
    n c h w f c kh kw n f oh ow n f oh ow c kh kw

let syrk_like ?(n = 32) ?(k = 32) () =
  spf
    {|void syrk(float A[%d][%d], float C[%d][%d]) {
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      for (int kk = 0; kk < %d; ++kk)
        C[i][j] += A[i][kk] * A[j][kk];
}
|}
    n k n n n n k

let trmm_like ?(n = 32) () =
  spf
    {|void trmm(float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j)
      for (int k = 0; k < %d; ++k)
        B[i][j] += A[i][k] * B[k][j];
}
|}
    n n n n n n n

let doitgen ?(r = 8) ?(q = 8) ?(p = 8) () =
  spf
    {|void doitgen(float A[%d][%d][%d], float C4[%d][%d], float sum[%d]) {
  for (int rr = 0; rr < %d; ++rr)
    for (int qq = 0; qq < %d; ++qq) {
      for (int pp = 0; pp < %d; ++pp) {
        sum[pp] = 0.0;
        for (int s = 0; s < %d; ++s)
          sum[pp] += A[rr][qq][s] * C4[s][pp];
      }
      for (int pp = 0; pp < %d; ++pp)
        A[rr][qq][pp] = sum[pp];
    }
}
|}
    r q p p p p r q p p p

let matrix_chain dims =
  let dims = Array.of_list dims in
  let n = Array.length dims - 1 in
  if n < 2 then invalid_arg "matrix_chain: need at least two matrices";
  let buf = Buffer.create 1024 in
  let params =
    List.init n (fun i ->
        spf "float A%d[%d][%d]" (i + 1) dims.(i) dims.(i + 1))
    @ [ spf "float R[%d][%d]" dims.(0) dims.(n) ]
  in
  Buffer.add_string buf
    (spf "void chain(%s) {\n" (String.concat ", " params));
  (* Temporaries T2 .. T{n-1}: T_i = A1 x ... x A_i. *)
  for i = 2 to n - 1 do
    Buffer.add_string buf (spf "  float T%d[%d][%d];\n" i dims.(0) dims.(i))
  done;
  let emit_mm ~a ~b ~c ~m ~k ~nn =
    Buffer.add_string buf
      (spf
         {|  for (int i = 0; i < %d; ++i)
    for (int j = 0; j < %d; ++j) {
      %s[i][j] = 0.0;
      for (int k = 0; k < %d; ++k)
        %s[i][j] += %s[i][k] * %s[k][j];
    }
|}
         m nn c k c a b)
  in
  for i = 2 to n do
    let a = if i = 2 then "A1" else spf "T%d" (i - 1) in
    let b = spf "A%d" i in
    let c = if i = n then "R" else spf "T%d" i in
    emit_mm ~a ~b ~c ~m:dims.(0) ~k:dims.(i - 1) ~nn:dims.(i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let tiny_suite () =
  let n = 8 in
  [
    ("atax", atax ~m:n ~n ());
    ("bicg", bicg ~m:n ~n ());
    ("gemver", gemver ~n ());
    ("gesummv", gesummv ~n ());
    ("mvt", mvt ~n ());
    ("2mm", two_mm ~ni:n ~nj:n ~nk:n ~nl:n ());
    ("3mm", three_mm ~ni:n ~nj:n ~nk:n ~nl:n ~nm:n ());
    ("gemm", gemm ~ni:n ~nj:n ~nk:n ());
    ("conv2d-nchw", conv2d_nchw ~n:1 ~c:2 ~h:10 ~w:10 ~f:2 ~kh:3 ~kw:3 ());
  ]
  @ List.map
      (fun (name, spec, sizes) ->
        let sizes = List.map (fun (c, _) -> (c, 5)) sizes in
        (name, Contraction_spec.c_source spec ~sizes ~name:"contraction" ()))
      (Contraction_spec.paper_benchmarks ())

(* Deep-loop-nest battery for the scale benchmark (bench -- scale): one
   representative of every nest shape the raising patterns care about —
   2-deep vector kernels, 3-deep contractions, and the 7-deep
   convolution. Extents are tiny: the scale bench measures *compiler*
   time on op count, not kernel flops, and the synthesized module reaches
   its target size by cloning these functions, not by enlarging trip
   counts. *)
let scale_battery () =
  let n = 4 in
  [
    ("atax", atax ~m:n ~n ());
    ("gemver", gemver ~n ());
    ("mvt", mvt ~n ());
    ("gemm", gemm ~ni:n ~nj:n ~nk:n ());
    ("mm", mm ~ni:n ~nj:n ~nk:n ());
    ("2mm", two_mm ~ni:n ~nj:n ~nk:n ~nl:n ());
    ("3mm", three_mm ~ni:n ~nj:n ~nk:n ~nl:n ~nm:n ());
    ("conv2d-nchw", conv2d_nchw ~n:1 ~c:2 ~h:8 ~w:8 ~f:2 ~kh:3 ~kw:3 ());
  ]

let figure9_suite () =
  let f2 = float_of_int in
  let lvl2 = 256 and mmn = 96 and gsz = 128 in
  let conv_flops =
    let n = 1 and c = 8 and f = 8 and kh = 5 and kw = 5 in
    let oh = 32 and ow = 32 in
    2. *. f2 (n * f * oh * ow * c * kh * kw)
  in
  [
    ("atax", atax ~m:lvl2 ~n:lvl2 (), 4. *. f2 (lvl2 * lvl2));
    ("bicg", bicg ~m:lvl2 ~n:lvl2 (), 4. *. f2 (lvl2 * lvl2));
    ("gemver", gemver ~n:lvl2 (), 8. *. f2 (lvl2 * lvl2));
    ("gesummv", gesummv ~n:lvl2 (), 4. *. f2 (lvl2 * lvl2));
    ("mvt", mvt ~n:lvl2 (), 4. *. f2 (lvl2 * lvl2));
    ("2mm", two_mm ~ni:mmn ~nj:mmn ~nk:mmn ~nl:mmn (), 4. *. f2 (mmn * mmn * mmn));
    ( "3mm",
      three_mm ~ni:mmn ~nj:mmn ~nk:mmn ~nl:mmn ~nm:mmn (),
      6. *. f2 (mmn * mmn * mmn) );
    ("gemm", gemm ~ni:gsz ~nj:gsz ~nk:gsz (), 2. *. f2 (gsz * gsz * gsz));
    ("conv2d-nchw", conv2d_nchw (), conv_flops)
  ]
  @ List.map
      (fun (name, spec, sizes) ->
        ( name,
          Contraction_spec.c_source spec ~sizes ~name:"contraction" (),
          Contraction_spec.flops spec ~sizes ))
      (Contraction_spec.paper_benchmarks ())
