open Ir

let names =
  [
    "blas.sgemm";
    "blas.sgemv";
    "blas.stranspose";
    "blas.sreshape_copy";
    "blas.sconv2d";
  ]

let is_blas (op : Core.op) = List.mem op.o_name names

let registered = Atomic.make false

let register () =
  Dialect.register_once registered @@ fun () ->
    Dialect.register_all
      (List.map
         (fun n -> Dialect.def ~summary:"vendor library call" n)
         names)

let call3 name b x y z =
  register ();
  Builder.build b ~operands:[ x; y; z ] name

let sgemm b = call3 "blas.sgemm" b
let sgemv b = call3 "blas.sgemv" b
let sconv2d b = call3 "blas.sconv2d" b

let stranspose b ~perm input output =
  register ();
  Builder.build b ~operands:[ input; output ]
    ~attrs:[ ("permutation", Attr.Ints (Array.to_list perm)) ]
    "blas.stranspose"

let sreshape_copy b ~grouping input output =
  register ();
  Builder.build b ~operands:[ input; output ]
    ~attrs:[ ("grouping", Attr.Grouping grouping) ]
    "blas.sreshape_copy"
