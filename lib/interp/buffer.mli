(** Dense row-major float buffers backing memref values during
    interpretation. *)

type t = {
  shape : int array;
  strides : int array;  (** row-major, elements *)
  data : float array;
}

(** [create shape] — zero-initialized. *)
val create : int list -> t

(** [strides_of shape] — the row-major element strides of a shape. Exposed
    so the staged execution engine can precompute linear offsets from
    static memref types at compile time. *)
val strides_of : int array -> int array

(** [of_type t] for a fully static memref type. *)
val of_type : Ir.Typ.t -> t

val rank : t -> int
val num_elements : t -> int

(** [linear_index b idx] — bounds-checked row-major offset. *)
val linear_index : t -> int array -> int

val get : t -> int array -> float
val set : t -> int array -> float -> unit

(** [init shape f] fills from a function of the index vector. *)
val init : int list -> (int array -> float) -> t

(** [randomize ~seed b] fills with reproducible pseudo-random values in
    [0, 1). *)
val randomize : seed:int -> t -> unit

val copy : t -> t
val fill : t -> float -> unit

(** [approx_equal ?eps a b] — same shape and element-wise within [eps]
    relative tolerance. *)
val approx_equal : ?eps:float -> t -> t -> bool

(** Largest absolute element-wise difference (shapes must match). *)
val max_abs_diff : t -> t -> float

val pp : Format.formatter -> t -> unit
