(** The IR interpreter: executes functions at any abstraction level (affine
    loops, scf loops, Linalg named ops, BLAS calls) over real float buffers.

    This is the reproduction's semantic ground truth: every raising or
    lowering path is validated by checking that the transformed function
    computes the same buffers as the original (the paper relies on MLIR's
    verifier and testing for this).

    Two execution engines share one op semantics:

    - [Walk] — the simple tree-walking oracle (hash-table environment,
      per-op string dispatch). Intentionally simple; kept as the reference
      implementation.
    - [Compiled] — the staged engine ({!Compile}): the function is compiled
      once into nested closures over slot-indexed register frames, with
      op dispatch, affine maps, loop bounds and memory-access offsets all
      resolved at compile time. Default, roughly an order of magnitude
      faster on loop-level IR.

    Entry points take [?engine] (default {!default_engine}, initially
    [Compiled]); differential tests pin both engines explicitly and compare
    buffers bit-for-bit. *)

exception Runtime_error of string

(** Re-export of {!Rt.engine} so callers can say [Interp.Eval.Walk]. *)
type engine = Rt.engine = Walk | Compiled

(** Process-wide default engine, [Compiled] initially; the [--interp] CLI
    flag and the bench harness override it. *)
val default_engine : engine ref

(** [run_func f args] executes a [func.func]; [args] provides one buffer
    per memref argument (mutated in place). *)
val run_func : ?engine:engine -> Ir.Core.op -> Buffer.t list -> unit

(** [run m name args] — look up and run a function of a module. *)
val run : ?engine:engine -> Ir.Core.op -> string -> Buffer.t list -> unit

(** [run_on_random m name ~seed shapes] — convenience for tests: allocate
    buffers per the function signature, fill them with reproducible random
    data, run, and return the buffers. *)
val run_on_random :
  ?engine:engine -> Ir.Core.op -> string -> seed:int -> Buffer.t list

(** [equivalent m1 m2 name ~seed] — run the same-named function of two
    modules on identical random inputs and compare all buffers. Returns
    the maximum element-wise difference. *)
val equivalent :
  ?eps:float ->
  ?engine:engine ->
  Ir.Core.op ->
  Ir.Core.op ->
  string ->
  seed:int ->
  bool
