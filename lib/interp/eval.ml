open Ir
module A = Affine.Affine_ops

(* The runtime-failure exception lives in [Rt] (shared with the staged
   engine); rebinding it here keeps [Interp.Eval.Runtime_error] working. *)
exception Runtime_error = Rt.Runtime_error

let fail = Rt.fail

type engine = Rt.engine = Walk | Compiled

let default_engine = Rt.default_engine

(* ---------------- the tree-walking oracle ------------------------------- *)

type rv = R_float of float | R_int of int | R_buf of Buffer.t

type env = { values : (int, rv) Hashtbl.t }

let bind env (v : Core.value) rv = Hashtbl.replace env.values v.v_id rv

let lookup env (v : Core.value) =
  match Hashtbl.find_opt env.values v.v_id with
  | Some rv -> rv
  | None -> fail "interp: value %s has no runtime binding" (Printer.debug_value v)

let as_int env v =
  match lookup env v with
  | R_int i -> i
  | _ -> fail "interp: expected an integer value"

let as_float env v =
  match lookup env v with
  | R_float f -> f
  | R_int i -> float_of_int i
  | _ -> fail "interp: expected a float value"

let as_buf env v =
  match lookup env v with
  | R_buf b -> b
  | _ -> fail "interp: expected a buffer value"

let eval_bound env ~minimize ((map, args) : A.bound) =
  let dims = Array.of_list (List.map (as_int env) args) in
  let results = Affine_map.eval map ~dims () in
  if Array.length results = 0 then
    fail "interp: affine loop bound map has no results";
  Array.fold_left
    (if minimize then min else max)
    results.(0)
    results

let access_indices env op =
  let map = A.access_map op in
  let dims = Array.of_list (List.map (as_int env) (A.access_indices op)) in
  Affine_map.eval map ~dims ()

let float_binop name =
  match name with
  | "arith.addf" -> ( +. )
  | "arith.subf" -> ( -. )
  | "arith.mulf" -> ( *. )
  | "arith.divf" -> ( /. )
  | _ -> assert false

let int_binop name =
  match name with
  | "arith.addi" -> ( + )
  | "arith.subi" -> ( - )
  | "arith.muli" -> ( * )
  | "arith.floordivsi" -> Rt.floordivsi
  | "arith.remsi" -> Rt.remsi
  | _ -> assert false

let rec exec_block env (b : Core.block) =
  List.iter (exec_op env) (Core.ops_of_block b)

and exec_op env (op : Core.op) =
  match op.o_name with
  | "affine.yield" | "scf.yield" | "func.return" | "memref.dealloc" -> ()
  | "arith.constant" -> (
      match Core.attr op "value" with
      | Attr.Float f -> bind env (Core.result op 0) (R_float f)
      | Attr.Int i -> bind env (Core.result op 0) (R_int i)
      | a -> fail "interp: bad constant %s" (Attr.to_string a))
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" ->
      let f = float_binop op.o_name in
      bind env (Core.result op 0)
        (R_float (f (as_float env (Core.operand op 0))
                    (as_float env (Core.operand op 1))))
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.floordivsi"
  | "arith.remsi" ->
      let f = int_binop op.o_name in
      bind env (Core.result op 0)
        (R_int (f (as_int env (Core.operand op 0))
                  (as_int env (Core.operand op 1))))
  | "memref.alloc" ->
      bind env (Core.result op 0)
        (R_buf (Buffer.of_type (Core.result op 0).v_typ))
  | "affine.for" ->
      let body = Rt.check_loop_shape op in
      let lb = eval_bound env ~minimize:false (A.for_lb op) in
      let ub = eval_bound env ~minimize:true (A.for_ub op) in
      let step = A.for_step op in
      if step <= 0 then fail "interp: affine.for with non-positive step";
      let iv = body.b_args.(0) in
      let i = ref lb in
      while !i < ub do
        bind env iv (R_int !i);
        exec_block env body;
        i := !i + step
      done
  | "scf.for" ->
      let body = Rt.check_loop_shape op in
      let lb = as_int env (Core.operand op 0) in
      let ub = as_int env (Core.operand op 1) in
      let step = as_int env (Core.operand op 2) in
      if step <= 0 then fail "interp: scf.for with non-positive step";
      let iv = body.b_args.(0) in
      let i = ref lb in
      while !i < ub do
        bind env iv (R_int !i);
        exec_block env body;
        i := !i + step
      done
  | "memref.load" ->
      let buf = as_buf env (Core.operand op 0) in
      let idx =
        Array.init
          (Array.length op.o_operands - 1)
          (fun i -> as_int env (Core.operand op (i + 1)))
      in
      bind env (Core.result op 0) (R_float (Buffer.get buf idx))
  | "memref.store" ->
      let buf = as_buf env (Core.operand op 1) in
      let idx =
        Array.init
          (Array.length op.o_operands - 2)
          (fun i -> as_int env (Core.operand op (i + 2)))
      in
      Buffer.set buf idx (as_float env (Core.operand op 0))
  | "affine.load" ->
      let buf = as_buf env (A.access_memref op) in
      bind env (Core.result op 0) (R_float (Buffer.get buf (access_indices env op)))
  | "affine.store" ->
      let buf = as_buf env (A.access_memref op) in
      Buffer.set buf (access_indices env op)
        (as_float env (A.stored_value op))
  | "affine.apply" ->
      let map = Attr.get_map (Core.attr op "map") in
      let dims =
        Array.of_list
          (List.map (as_int env) (Array.to_list op.o_operands))
      in
      bind env (Core.result op 0) (R_int (Affine_map.eval map ~dims ()).(0))
  | "affine.matmul" | "linalg.matmul" | "blas.sgemm" ->
      Kernels.matmul
        (as_buf env (Core.operand op 0))
        (as_buf env (Core.operand op 1))
        (as_buf env (Core.operand op 2))
  | "linalg.matvec" | "blas.sgemv" ->
      let transpose =
        match Core.find_attr op "transpose" with
        | Some (Attr.Bool b) -> b
        | _ -> false
      in
      Kernels.matvec ~transpose
        (as_buf env (Core.operand op 0))
        (as_buf env (Core.operand op 1))
        (as_buf env (Core.operand op 2))
  | "linalg.transpose" | "blas.stranspose" ->
      let perm =
        Array.of_list (Attr.get_ints (Core.attr op "permutation"))
      in
      Kernels.transpose ~perm
        (as_buf env (Core.operand op 0))
        (as_buf env (Core.operand op 1))
  | "linalg.reshape" | "blas.sreshape_copy" ->
      Kernels.reshape_copy
        (as_buf env (Core.operand op 0))
        (as_buf env (Core.operand op 1))
  | "linalg.conv2d_nchw" | "blas.sconv2d" ->
      Kernels.conv2d_nchw
        (as_buf env (Core.operand op 0))
        (as_buf env (Core.operand op 1))
        (as_buf env (Core.operand op 2))
  | "linalg.contract" ->
      let maps = Linalg.Linalg_ops.contract_maps op in
      let shapes =
        List.map
          (fun v -> (as_buf env v).Buffer.shape)
          (Array.to_list op.o_operands)
      in
      let dims = Kernels.infer_contract_dims ~maps ~shapes in
      Kernels.contract ~maps ~dims
        (as_buf env (Core.operand op 0))
        (as_buf env (Core.operand op 1))
        (as_buf env (Core.operand op 2))
  | "linalg.fill" ->
      Kernels.fill
        (Attr.get_float (Core.attr op "value"))
        (as_buf env (Core.operand op 0))
  | name -> fail "interp: unsupported operation '%s'" name

let walk_func f args =
  Rt.validate_args f args;
  let env = { values = Hashtbl.create 256 } in
  List.iter2 (fun (p : Core.value) buf -> bind env p (R_buf buf))
    (Core.func_args f) args;
  exec_block env (Core.func_entry f)

(* ---------------- engine dispatch --------------------------------------- *)

let m_exec_seconds =
  lazy
    (Metrics.histogram ~help:"interpreter function-execution latency"
       "mlt_interp_exec_seconds")

let run_func ?engine f args =
  let engine = Option.value engine ~default:!Rt.default_engine in
  Metrics.time (Lazy.force m_exec_seconds)
  @@ fun () ->
  Trace.span ~cat:"interp"
    ~args:
      [
        ("func", Trace.A_str (Core.func_name f));
        ("engine", Trace.A_str (Rt.engine_name engine));
      ]
    "exec"
  @@ fun () ->
  match engine with
  | Walk -> walk_func f args
  | Compiled -> Compile.run_func f args

let run ?engine m name args =
  match Core.find_func m name with
  | Some f -> run_func ?engine f args
  | None -> fail "interp: no function named %S" name

let alloc_args f =
  List.map (fun (p : Core.value) -> Buffer.of_type p.v_typ) (Core.func_args f)

let run_on_random ?engine m name ~seed =
  match Core.find_func m name with
  | Some f ->
      let args = alloc_args f in
      List.iteri (fun i b -> Buffer.randomize ~seed:(seed + i) b) args;
      run_func ?engine f args;
      args
  | None -> fail "interp: no function named %S" name

let equivalent ?eps ?engine m1 m2 name ~seed =
  let r1 = run_on_random ?engine m1 name ~seed in
  let r2 = run_on_random ?engine m2 name ~seed in
  List.length r1 = List.length r2
  && List.for_all2 (Buffer.approx_equal ?eps) r1 r2
