(** The staged compile-to-closure execution engine.

    A verified [func.func] is compiled {e once} into nested OCaml closures:
    every SSA value gets a dense slot in a typed register frame (int /
    float / buffer arrays — no hash tables in the hot path), op dispatch is
    resolved at compile time (no per-iteration string matching), affine
    bound and access maps are pre-compiled, and memref accesses become
    precomputed-stride linear offsets. A compile-time interval analysis
    over the integer values proves most subscripts in bounds statically;
    accesses it cannot prove fall back to the walker's per-dimension
    checked path with identical failure behavior.

    The tree-walker in {!Eval} is the reference oracle; differential tests
    assert bit-identical buffers between the two engines. Compilation
    failures and runtime failures both raise {!Rt.Runtime_error} with the
    same messages the walker produces. *)

(** The typed register frame a compiled function executes against. *)
type frame = {
  ints : int array;
  floats : float array;
  bufs : Buffer.t array;
}

type code = frame -> unit

(** A compiled function. Closures capture frame {e slot indices}, not
    values, so one compiled function can be executed many times (each
    {!execute} allocates a fresh frame). *)
type compiled = {
  c_func : Ir.Core.op;  (** the source [func.func] *)
  c_arg_slots : int array;  (** buffer slots of the function arguments *)
  c_n_ints : int;  (** integer register-frame size *)
  c_n_floats : int;  (** float register-frame size *)
  c_n_bufs : int;  (** buffer register-frame size *)
  c_checked_accesses : int;
      (** memory accesses that could {e not} be proven in bounds and use
          the checked fallback (introspection for tests and the bench) *)
  c_unchecked_accesses : int;
      (** accesses statically proven in bounds: a single unchecked
          linear-offset read/write *)
  c_body : code;
}

(** [compile_func f] stages [f] ([func.func] with buffer arguments).
    Raises {!Rt.Runtime_error} on unsupported constructs (iter_args loops,
    unknown ops, symbolic maps, dynamic shapes) — eagerly, at compile
    time. *)
val compile_func : Ir.Core.op -> compiled

(** [execute c args] validates [args] against the source function and runs
    the compiled body over them (results are written into the argument
    buffers, as in {!Eval.run_func}). *)
val execute : compiled -> Buffer.t list -> unit

(** [run_func f args] = [execute (compile_func f) args]. *)
val run_func : Ir.Core.op -> Buffer.t list -> unit
