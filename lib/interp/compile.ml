(* The staged compile-to-closure execution engine.

   A verified [func.func] is compiled once into nested OCaml closures:

   - every SSA value is value-numbered into a dense slot of a typed
     register frame (an [int array] for index/integer values, a
     [float array] for scalars, a [Buffer.t array] for memrefs) — no
     hash-table lookups in the hot path;
   - op dispatch (the walker's per-iteration string match) is resolved
     once at compile time: each op becomes a closure specialized to its
     operand/result slots;
   - affine bound maps and access maps are pre-compiled to closures;
     loop bounds are evaluated once per loop entry;
   - memref accesses lower to precomputed row-major-stride linear
     offsets. A small interval analysis over the integer slots (constant
     propagation through loop bounds, affine maps and arith ops) proves
     most subscripts in bounds at compile time, in which case the access
     is a single unchecked [data.(offset)] read/write; anything it cannot
     prove (data-dependent or potentially out-of-range indices) falls
     back to the per-dimension checked path ([Buffer.get]/[Buffer.set],
     identical failure behavior to the walker).

   The tree-walker in [Eval] remains the semantic oracle; differential
   tests assert bit-identical buffers between the two engines. *)

open Ir
module A = Affine.Affine_ops
module E = Affine_expr
open Rt

type frame = {
  ints : int array;
  floats : float array;
  bufs : Buffer.t array;
}

type code = frame -> unit

(* ---------------- compile-time integer intervals ------------------------ *)

type range = { lo : int; hi : int }

(* Magnitude cap: anything whose bounds could leave this window is treated
   as unknown, which keeps the interval arithmetic below safely inside
   native-int range (products of two in-window values cannot overflow). *)
let cap = 1 lsl 30

let mk_range lo hi =
  if lo > hi || lo < -cap || hi > cap then None else Some { lo; hi }

let r_const c = mk_range c c

let r_add a b =
  match (a, b) with
  | Some a, Some b -> mk_range (a.lo + b.lo) (a.hi + b.hi)
  | _ -> None

let r_sub a b =
  match (a, b) with
  | Some a, Some b -> mk_range (a.lo - b.hi) (a.hi - b.lo)
  | _ -> None

let r_mul a b =
  match (a, b) with
  | Some a, Some b ->
      let p1 = a.lo * b.lo
      and p2 = a.lo * b.hi
      and p3 = a.hi * b.lo
      and p4 = a.hi * b.hi in
      mk_range (min (min p1 p2) (min p3 p4)) (max (max p1 p2) (max p3 p4))
  | _ -> None

(* Division/modulo intervals only for a constant divisor; [floordiv] is
   monotone in the dividend, and a floor-mod result always carries the
   divisor's sign. *)
let r_floordiv a b =
  match (a, b) with
  | Some a, Some { lo = y; hi = y' } when y = y' && y <> 0 ->
      let q1 = E.floordiv a.lo y and q2 = E.floordiv a.hi y in
      mk_range (min q1 q2) (max q1 q2)
  | _ -> None

let r_mod _ b =
  match b with
  | Some { lo = y; hi = y' } when y = y' && y <> 0 ->
      if y > 0 then mk_range 0 (y - 1) else mk_range (y + 1) 0
  | _ -> None

(* ---------------- compilation context ----------------------------------- *)

type ctx = {
  int_slot : (int, int) Hashtbl.t; (* value id -> frame.ints index *)
  float_slot : (int, int) Hashtbl.t;
  buf_slot : (int, int) Hashtbl.t;
  ranges : (int, range) Hashtbl.t; (* value id -> proven interval *)
  mutable n_ints : int;
  mutable n_floats : int;
  mutable n_bufs : int;
  mutable checked_accesses : int;
  mutable unchecked_accesses : int;
}

let create_ctx () =
  {
    int_slot = Hashtbl.create 64;
    float_slot = Hashtbl.create 64;
    buf_slot = Hashtbl.create 16;
    ranges = Hashtbl.create 64;
    n_ints = 0;
    n_floats = 0;
    n_bufs = 0;
    checked_accesses = 0;
    unchecked_accesses = 0;
  }

(* Definition sites assign a slot (and with it the value's runtime class,
   mirroring the walker's dynamic R_int/R_float/R_buf tagging). *)
let def_int ctx (v : Core.value) =
  let s = ctx.n_ints in
  ctx.n_ints <- s + 1;
  Hashtbl.replace ctx.int_slot v.v_id s;
  s

let def_float ctx (v : Core.value) =
  let s = ctx.n_floats in
  ctx.n_floats <- s + 1;
  Hashtbl.replace ctx.float_slot v.v_id s;
  s

let def_buf ctx (v : Core.value) =
  let s = ctx.n_bufs in
  ctx.n_bufs <- s + 1;
  Hashtbl.replace ctx.buf_slot v.v_id s;
  s

(* Use sites resolve slots; SSA dominance guarantees the definition was
   compiled first, so a missing slot is a class mismatch. *)
let int_slot ctx (v : Core.value) =
  match Hashtbl.find_opt ctx.int_slot v.v_id with
  | Some s -> s
  | None -> fail "interp: expected an integer value"

let buf_slot ctx (v : Core.value) =
  match Hashtbl.find_opt ctx.buf_slot v.v_id with
  | Some s -> s
  | None -> fail "interp: expected a buffer value"

(* Float reads coerce integer operands like the walker's [as_float]. *)
let float_rd ctx (v : Core.value) : frame -> float =
  match Hashtbl.find_opt ctx.float_slot v.v_id with
  | Some s -> fun fr -> fr.floats.(s)
  | None -> (
      match Hashtbl.find_opt ctx.int_slot v.v_id with
      | Some s -> fun fr -> float_of_int fr.ints.(s)
      | None -> fail "interp: expected a float value")

let float_slot2 ctx (a : Core.value) (b : Core.value) =
  match
    ( Hashtbl.find_opt ctx.float_slot a.v_id,
      Hashtbl.find_opt ctx.float_slot b.v_id )
  with
  | Some sa, Some sb -> Some (sa, sb)
  | _ -> None

let range_of ctx (v : Core.value) = Hashtbl.find_opt ctx.ranges v.v_id

let set_range ctx (v : Core.value) = function
  | Some r -> Hashtbl.replace ctx.ranges v.v_id r
  | None -> ()

let static_shape_of (v : Core.value) =
  match Typ.static_shape v.Core.v_typ with
  | Some shape -> Array.of_list shape
  | None ->
      fail "interp: dynamic memref shapes unsupported (%s)"
        (Typ.to_string v.Core.v_typ)

(* ---------------- staged affine expressions over frame slots ------------ *)

(* Like [Affine_expr.compile], but dimension [i] reads the frame's integer
   slot [slots.(i)] instead of an argument array, so access/bound closures
   plug straight into the register frame. *)
let compile_expr (slots : int array) (e : E.t) : frame -> int =
  let rec go = function
    | E.Dim i ->
        let s = slots.(i) in
        fun fr -> fr.ints.(s)
    | E.Sym _ -> fail "interp: affine symbols unsupported"
    | E.Const c -> fun _ -> c
    | E.Add (a, E.Const c) ->
        let ca = go a in
        fun fr -> ca fr + c
    | E.Add (a, b) ->
        let ca = go a and cb = go b in
        fun fr -> ca fr + cb fr
    | E.Mul (E.Const k, E.Dim i) | E.Mul (E.Dim i, E.Const k) ->
        let s = slots.(i) in
        fun fr -> k * fr.ints.(s)
    | E.Mul (a, b) ->
        let ca = go a and cb = go b in
        fun fr -> ca fr * cb fr
    | E.Floor_div (a, b) ->
        let ca = go a and cb = go b in
        fun fr -> floordivsi (ca fr) (cb fr)
    | E.Mod (a, b) ->
        let ca = go a and cb = go b in
        fun fr -> remsi (ca fr) (cb fr)
  in
  match E.linearize e with
  | Some { E.dim_coeffs = []; sym_coeffs = []; constant } -> fun _ -> constant
  | Some { E.dim_coeffs = [ (d, 1) ]; sym_coeffs = []; constant = 0 } ->
      let s = slots.(d) in
      fun fr -> fr.ints.(s)
  | Some { E.dim_coeffs = [ (d, k) ]; sym_coeffs = []; constant } ->
      let s = slots.(d) in
      fun fr -> (k * fr.ints.(s)) + constant
  | Some { E.dim_coeffs = [ (d0, k0); (d1, k1) ]; sym_coeffs = []; constant }
    ->
      let s0 = slots.(d0) and s1 = slots.(d1) in
      fun fr -> (k0 * fr.ints.(s0)) + (k1 * fr.ints.(s1)) + constant
  | _ -> go e

let rec expr_range (dim_ranges : range option array) = function
  | E.Dim i -> dim_ranges.(i)
  | E.Sym _ -> None
  | E.Const c -> r_const c
  | E.Add (a, b) -> r_add (expr_range dim_ranges a) (expr_range dim_ranges b)
  | E.Mul (a, b) -> r_mul (expr_range dim_ranges a) (expr_range dim_ranges b)
  | E.Floor_div (a, b) ->
      r_floordiv (expr_range dim_ranges a) (expr_range dim_ranges b)
  | E.Mod (a, b) -> r_mod (expr_range dim_ranges a) (expr_range dim_ranges b)

(* ---------------- bound maps -------------------------------------------- *)

(* Compile a loop bound to (closure, proven interval of the runtime bound
   value). Multi-result maps fold with min (upper bounds) / max (lower
   bounds); all-constant maps collapse to a constant closure. *)
let compile_bound ctx ~minimize ((map, args) : A.bound) =
  if map.Affine_map.n_syms <> 0 then
    fail "interp: affine loop bounds with symbols unsupported";
  if map.Affine_map.exprs = [] then
    fail "interp: affine loop bound map has no results";
  if List.length args <> map.Affine_map.n_dims then
    fail "interp: affine loop bound operands do not match map";
  let slots = Array.of_list (List.map (int_slot ctx) args) in
  let dim_ranges = Array.of_list (List.map (range_of ctx) args) in
  let sel = if minimize then min else max in
  let code =
    match List.map (fun e -> (e, E.is_constant e)) map.Affine_map.exprs with
    | consts when List.for_all (fun (_, c) -> c <> None) consts ->
        let v =
          List.fold_left
            (fun acc (_, c) ->
              match (acc, c) with
              | None, Some c -> Some c
              | Some acc, Some c -> Some (sel acc c)
              | _, None -> assert false)
            None consts
        in
        let v = Option.get v in
        fun _ -> v
    | _ -> (
        match List.map (compile_expr slots) map.Affine_map.exprs with
        | [ c ] -> c
        | c0 :: rest ->
            let rest = Array.of_list rest in
            fun fr ->
              let acc = ref (c0 fr) in
              for i = 0 to Array.length rest - 1 do
                acc := sel !acc (rest.(i) fr)
              done;
              !acc
        | [] -> assert false)
  in
  let range =
    List.fold_left
      (fun acc e ->
        let r = expr_range dim_ranges e in
        match (acc, r) with
        | `First, r -> `Seen r
        | `Seen (Some a), Some b ->
            `Seen (mk_range (sel a.lo b.lo) (sel a.hi b.hi))
        | `Seen _, _ -> `Seen None)
      `First map.Affine_map.exprs
  in
  let range = match range with `First -> None | `Seen r -> r in
  (code, range)

(* ---------------- memory accesses --------------------------------------- *)

(* Shared tail of affine and memref accesses: given per-dimension index
   closures and a precomputed linear-offset closure, emit either the
   unchecked path (proven in bounds: a single stride-weighted indexed
   read/write) or the checked per-dimension fallback. *)
let access_code ctx ~bslot ~(comp : (frame -> int) array)
    ~(off : frame -> int) ~in_bounds
    (kind : [ `Load of int | `Store of frame -> float ]) : code =
  if in_bounds then begin
    ctx.unchecked_accesses <- ctx.unchecked_accesses + 1;
    match kind with
    | `Load d -> fun fr -> fr.floats.(d) <- fr.bufs.(bslot).Buffer.data.(off fr)
    | `Store gv -> fun fr -> fr.bufs.(bslot).Buffer.data.(off fr) <- gv fr
  end
  else begin
    ctx.checked_accesses <- ctx.checked_accesses + 1;
    let n = Array.length comp in
    (* Reused scratch index vector: accesses execute atomically, so a
       per-op buffer is safe. [Buffer.get]/[set] perform the walker's
       exact bounds checks (identical out-of-bounds failure). *)
    let idx = Array.make n 0 in
    let fill fr =
      for i = 0 to n - 1 do
        idx.(i) <- comp.(i) fr
      done
    in
    match kind with
    | `Load d ->
        fun fr ->
          fill fr;
          fr.floats.(d) <- Buffer.get fr.bufs.(bslot) idx
    | `Store gv ->
        fun fr ->
          fill fr;
          Buffer.set fr.bufs.(bslot) idx (gv fr)
  end

let proves_in_bounds shape ranges =
  let ok = ref true in
  Array.iteri
    (fun i r ->
      match r with
      | Some { lo; hi } when lo >= 0 && hi < shape.(i) -> ()
      | _ -> ok := false)
    ranges;
  !ok

(* Stride-weighted linear offset of the access expressions, as one folded
   affine expression ([Affine_map.make] already simplified each result, and
   the smart constructors merge the stride constants). *)
let offset_expr strides exprs =
  let acc = ref (E.const 0) in
  List.iteri
    (fun i e -> acc := E.add !acc (E.mul (E.const strides.(i)) e))
    exprs;
  !acc

let compile_affine_access ctx op ~is_store =
  let memref = A.access_memref op in
  let bslot = buf_slot ctx memref in
  let shape = static_shape_of memref in
  let strides = Buffer.strides_of shape in
  let map = A.access_map op in
  if map.Affine_map.n_syms <> 0 then
    fail "interp: affine access maps with symbols unsupported";
  let exprs = map.Affine_map.exprs in
  if List.length exprs <> Array.length shape then
    fail "interp: %s access map arity does not match memref rank"
      op.Core.o_name;
  let idx_operands = Array.of_list (A.access_indices op) in
  if Array.length idx_operands <> map.Affine_map.n_dims then
    fail "interp: %s index operand count does not match access map"
      op.Core.o_name;
  let slots = Array.map (int_slot ctx) idx_operands in
  let dim_ranges = Array.map (range_of ctx) idx_operands in
  let result_ranges =
    Array.of_list (List.map (expr_range dim_ranges) exprs)
  in
  let in_bounds = proves_in_bounds shape result_ranges in
  let comp = Array.of_list (List.map (compile_expr slots) exprs) in
  let off = compile_expr slots (offset_expr strides exprs) in
  let kind =
    if is_store then `Store (float_rd ctx (A.stored_value op))
    else `Load (def_float ctx (Core.result op 0))
  in
  access_code ctx ~bslot ~comp ~off ~in_bounds kind

let compile_memref_access ctx op ~is_store =
  let base = if is_store then 1 else 0 in
  let memref = Core.operand op base in
  let bslot = buf_slot ctx memref in
  let shape = static_shape_of memref in
  let strides = Buffer.strides_of shape in
  let n_idx = Core.num_operands op - base - 1 in
  let idx_operands =
    Array.init n_idx (fun i -> Core.operand op (base + 1 + i))
  in
  let slots = Array.map (int_slot ctx) idx_operands in
  let dim_ranges = Array.map (range_of ctx) idx_operands in
  let in_bounds =
    n_idx = Array.length shape && proves_in_bounds shape dim_ranges
  in
  let comp =
    Array.map (fun s -> fun fr -> fr.ints.(s)) slots
  in
  let off =
    (* Plain slot reads: specialize the common low ranks. Only built when
       the access is proven in bounds (which implies n_idx = rank, so the
       stride lookups are well-defined). *)
    if not in_bounds then fun _ -> 0
    else
      match Array.length slots with
      | 0 -> fun _ -> 0
      | 1 ->
          let s0 = slots.(0) and k0 = strides.(0) in
          if k0 = 1 then fun fr -> fr.ints.(s0)
          else fun fr -> k0 * fr.ints.(s0)
      | 2 ->
          let s0 = slots.(0)
          and k0 = strides.(0)
          and s1 = slots.(1)
          and k1 = strides.(1) in
          if k1 = 1 then fun fr -> (k0 * fr.ints.(s0)) + fr.ints.(s1)
          else fun fr -> (k0 * fr.ints.(s0)) + (k1 * fr.ints.(s1))
      | n ->
          fun fr ->
            let acc = ref 0 in
            for i = 0 to n - 1 do
              acc := !acc + (strides.(i) * fr.ints.(slots.(i)))
            done;
            !acc
  in
  let kind =
    if is_store then `Store (float_rd ctx (Core.operand op 0))
    else `Load (def_float ctx (Core.result op 0))
  in
  access_code ctx ~bslot ~comp ~off ~in_bounds kind

(* ---------------- operations -------------------------------------------- *)

let rec compile_block ctx (b : Core.block) : code =
  let codes = List.filter_map (compile_op ctx) (Core.ops_of_block b) in
  match codes with
  | [] -> fun _ -> ()
  | [ c ] -> c
  | [ c1; c2 ] ->
      fun fr ->
        c1 fr;
        c2 fr
  | [ c1; c2; c3 ] ->
      fun fr ->
        c1 fr;
        c2 fr;
        c3 fr
  | [ c1; c2; c3; c4 ] ->
      fun fr ->
        c1 fr;
        c2 fr;
        c3 fr;
        c4 fr
  | cs ->
      let cs = Array.of_list cs in
      fun fr ->
        for i = 0 to Array.length cs - 1 do
          cs.(i) fr
        done

and compile_op ctx (op : Core.op) : code option =
  match op.o_name with
  | "affine.yield" | "scf.yield" | "func.return" | "memref.dealloc" -> None
  | "arith.constant" -> (
      match Core.attr op "value" with
      | Attr.Float f ->
          let d = def_float ctx (Core.result op 0) in
          Some (fun fr -> fr.floats.(d) <- f)
      | Attr.Int i ->
          let r = Core.result op 0 in
          let d = def_int ctx r in
          set_range ctx r (r_const i);
          Some (fun fr -> fr.ints.(d) <- i)
      | a -> fail "interp: bad constant %s" (Attr.to_string a))
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" -> (
      let x = Core.operand op 0 and y = Core.operand op 1 in
      let d = def_float ctx (Core.result op 0) in
      match float_slot2 ctx x y with
      | Some (a, b) ->
          Some
            (match op.o_name with
            | "arith.addf" ->
                fun fr -> fr.floats.(d) <- fr.floats.(a) +. fr.floats.(b)
            | "arith.subf" ->
                fun fr -> fr.floats.(d) <- fr.floats.(a) -. fr.floats.(b)
            | "arith.mulf" ->
                fun fr -> fr.floats.(d) <- fr.floats.(a) *. fr.floats.(b)
            | _ -> fun fr -> fr.floats.(d) <- fr.floats.(a) /. fr.floats.(b))
      | None ->
          (* Mixed int/float operands: coerce through getters like the
             walker's [as_float]. *)
          let ga = float_rd ctx x and gb = float_rd ctx y in
          Some
            (match op.o_name with
            | "arith.addf" -> fun fr -> fr.floats.(d) <- ga fr +. gb fr
            | "arith.subf" -> fun fr -> fr.floats.(d) <- ga fr -. gb fr
            | "arith.mulf" -> fun fr -> fr.floats.(d) <- ga fr *. gb fr
            | _ -> fun fr -> fr.floats.(d) <- ga fr /. gb fr))
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.floordivsi"
  | "arith.remsi" ->
      let x = Core.operand op 0 and y = Core.operand op 1 in
      let a = int_slot ctx x and b = int_slot ctx y in
      let ra = range_of ctx x and rb = range_of ctx y in
      let r = Core.result op 0 in
      let d = def_int ctx r in
      set_range ctx r
        (match op.o_name with
        | "arith.addi" -> r_add ra rb
        | "arith.subi" -> r_sub ra rb
        | "arith.muli" -> r_mul ra rb
        | "arith.floordivsi" -> r_floordiv ra rb
        | _ -> r_mod ra rb);
      Some
        (match op.o_name with
        | "arith.addi" -> fun fr -> fr.ints.(d) <- fr.ints.(a) + fr.ints.(b)
        | "arith.subi" -> fun fr -> fr.ints.(d) <- fr.ints.(a) - fr.ints.(b)
        | "arith.muli" -> fun fr -> fr.ints.(d) <- fr.ints.(a) * fr.ints.(b)
        | "arith.floordivsi" ->
            fun fr -> fr.ints.(d) <- floordivsi fr.ints.(a) fr.ints.(b)
        | _ -> fun fr -> fr.ints.(d) <- remsi fr.ints.(a) fr.ints.(b))
  | "memref.alloc" ->
      let r = Core.result op 0 in
      let shape = Array.to_list (static_shape_of r) in
      let d = def_buf ctx r in
      (* Allocation stays inside the closure: an alloc nested in a loop
         yields a fresh zeroed buffer per iteration, like the walker. *)
      Some (fun fr -> fr.bufs.(d) <- Buffer.create shape)
  | "affine.for" ->
      let body = check_loop_shape op in
      let step = A.for_step op in
      if step <= 0 then fail "interp: affine.for with non-positive step";
      let lb_code, lb_range =
        compile_bound ctx ~minimize:false (A.for_lb op)
      in
      let ub_code, ub_range = compile_bound ctx ~minimize:true (A.for_ub op) in
      let iv = body.b_args.(0) in
      let iv_slot = def_int ctx iv in
      (match (lb_range, ub_range) with
      | Some l, Some u -> set_range ctx iv (mk_range l.lo (max l.lo (u.hi - 1)))
      | _ -> ());
      let body_code = compile_block ctx body in
      Some
        (fun fr ->
          let ub = ub_code fr in
          let i = ref (lb_code fr) in
          while !i < ub do
            fr.ints.(iv_slot) <- !i;
            body_code fr;
            i := !i + step
          done)
  | "scf.for" ->
      let body = check_loop_shape op in
      let s_lb = int_slot ctx (Core.operand op 0)
      and s_ub = int_slot ctx (Core.operand op 1)
      and s_step = int_slot ctx (Core.operand op 2) in
      let iv = body.b_args.(0) in
      let iv_slot = def_int ctx iv in
      (match (range_of ctx (Core.operand op 0), range_of ctx (Core.operand op 1))
      with
      | Some l, Some u -> set_range ctx iv (mk_range l.lo (max l.lo (u.hi - 1)))
      | _ -> ());
      let body_code = compile_block ctx body in
      Some
        (fun fr ->
          let lb = fr.ints.(s_lb)
          and ub = fr.ints.(s_ub)
          and step = fr.ints.(s_step) in
          if step <= 0 then fail "interp: scf.for with non-positive step";
          let i = ref lb in
          while !i < ub do
            fr.ints.(iv_slot) <- !i;
            body_code fr;
            i := !i + step
          done)
  | "affine.load" -> Some (compile_affine_access ctx op ~is_store:false)
  | "affine.store" -> Some (compile_affine_access ctx op ~is_store:true)
  | "memref.load" -> Some (compile_memref_access ctx op ~is_store:false)
  | "memref.store" -> Some (compile_memref_access ctx op ~is_store:true)
  | "affine.apply" -> (
      let map = Attr.get_map (Core.attr op "map") in
      if map.Affine_map.n_syms <> 0 then
        fail "interp: affine.apply with symbols unsupported";
      match map.Affine_map.exprs with
      | [] -> fail "interp: affine.apply map has no results"
      | e :: _ ->
          let operands = op.o_operands in
          if Array.length operands <> map.Affine_map.n_dims then
            fail "interp: affine.apply operand count does not match map";
          let slots = Array.map (int_slot ctx) operands in
          let dim_ranges = Array.map (range_of ctx) operands in
          let c = compile_expr slots e in
          let r = Core.result op 0 in
          let d = def_int ctx r in
          set_range ctx r (expr_range dim_ranges e);
          Some (fun fr -> fr.ints.(d) <- c fr))
  | "affine.matmul" | "linalg.matmul" | "blas.sgemm" ->
      let a = buf_slot ctx (Core.operand op 0)
      and b = buf_slot ctx (Core.operand op 1)
      and c = buf_slot ctx (Core.operand op 2) in
      Some (fun fr -> Kernels.matmul fr.bufs.(a) fr.bufs.(b) fr.bufs.(c))
  | "linalg.matvec" | "blas.sgemv" ->
      let transpose =
        match Core.find_attr op "transpose" with
        | Some (Attr.Bool b) -> b
        | _ -> false
      in
      let a = buf_slot ctx (Core.operand op 0)
      and x = buf_slot ctx (Core.operand op 1)
      and y = buf_slot ctx (Core.operand op 2) in
      Some
        (fun fr -> Kernels.matvec ~transpose fr.bufs.(a) fr.bufs.(x) fr.bufs.(y))
  | "linalg.transpose" | "blas.stranspose" ->
      let perm = Array.of_list (Attr.get_ints (Core.attr op "permutation")) in
      let src = buf_slot ctx (Core.operand op 0)
      and dst = buf_slot ctx (Core.operand op 1) in
      Some (fun fr -> Kernels.transpose ~perm fr.bufs.(src) fr.bufs.(dst))
  | "linalg.reshape" | "blas.sreshape_copy" ->
      let src = buf_slot ctx (Core.operand op 0)
      and dst = buf_slot ctx (Core.operand op 1) in
      Some (fun fr -> Kernels.reshape_copy fr.bufs.(src) fr.bufs.(dst))
  | "linalg.conv2d_nchw" | "blas.sconv2d" ->
      let i = buf_slot ctx (Core.operand op 0)
      and w = buf_slot ctx (Core.operand op 1)
      and o = buf_slot ctx (Core.operand op 2) in
      Some (fun fr -> Kernels.conv2d_nchw fr.bufs.(i) fr.bufs.(w) fr.bufs.(o))
  | "linalg.contract" ->
      let maps = Linalg.Linalg_ops.contract_maps op in
      (* Operand shapes are static, so the iteration space is inferable at
         compile time; the runtime closure goes straight to the kernel. *)
      let shapes =
        List.map static_shape_of (Array.to_list op.o_operands)
      in
      let dims = Kernels.infer_contract_dims ~maps ~shapes in
      let a = buf_slot ctx (Core.operand op 0)
      and b = buf_slot ctx (Core.operand op 1)
      and c = buf_slot ctx (Core.operand op 2) in
      Some
        (fun fr ->
          Kernels.contract ~maps ~dims fr.bufs.(a) fr.bufs.(b) fr.bufs.(c))
  | "linalg.fill" ->
      let v = Attr.get_float (Core.attr op "value") in
      let b = buf_slot ctx (Core.operand op 0) in
      Some (fun fr -> Kernels.fill v fr.bufs.(b))
  | name -> fail "interp: unsupported operation '%s'" name

(* ---------------- whole functions --------------------------------------- *)

type compiled = {
  c_func : Core.op;
  c_arg_slots : int array;
  c_n_ints : int;
  c_n_floats : int;
  c_n_bufs : int;
  c_checked_accesses : int;
  c_unchecked_accesses : int;
  c_body : code;
}

let m_compile_seconds =
  lazy
    (Metrics.histogram ~help:"Interp.Compile.compile_func latency"
       "mlt_interp_compile_seconds")

let compile_func f =
  if not (Core.is_func f) then
    invalid_arg "Interp.Compile.compile_func: not a func.func";
  Metrics.time (Lazy.force m_compile_seconds)
  @@ fun () ->
  Trace.span ~cat:"interp"
    ~args:[ ("func", Trace.A_str (Core.func_name f)) ]
    "compile"
  @@ fun () ->
  let ctx = create_ctx () in
  let arg_slots =
    Array.of_list (List.map (def_buf ctx) (Core.func_args f))
  in
  let body = compile_block ctx (Core.func_entry f) in
  {
    c_func = f;
    c_arg_slots = arg_slots;
    c_n_ints = ctx.n_ints;
    c_n_floats = ctx.n_floats;
    c_n_bufs = ctx.n_bufs;
    c_checked_accesses = ctx.checked_accesses;
    c_unchecked_accesses = ctx.unchecked_accesses;
    c_body = body;
  }

let placeholder_buf = Buffer.create []

let execute c args =
  validate_args c.c_func args;
  let fr =
    {
      ints = Array.make (max 1 c.c_n_ints) 0;
      floats = Array.make (max 1 c.c_n_floats) 0.;
      bufs = Array.make (max 1 c.c_n_bufs) placeholder_buf;
    }
  in
  List.iteri (fun i b -> fr.bufs.(c.c_arg_slots.(i)) <- b) args;
  c.c_body fr

let run_func f args = execute (compile_func f) args
