open Ir

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

type engine = Walk | Compiled

let default_engine = ref Compiled

let engine_name = function Walk -> "walk" | Compiled -> "compiled"

let engine_of_string = function
  | "walk" | "walker" | "oracle" -> Some Walk
  | "compiled" | "compile" | "closure" -> Some Compiled
  | _ -> None

let floordivsi x y =
  if y = 0 then fail "interp: division by zero" else Affine_expr.floordiv x y

let remsi x y =
  if y = 0 then fail "interp: remainder by zero" else Affine_expr.floormod x y

let check_loop_shape (op : Core.op) =
  let body = Core.single_block op 0 in
  if Core.num_results op > 0 || Array.length body.Core.b_args <> 1 then
    fail
      "interp: %s with loop-carried iter_args (loop results or extra block \
       arguments) is unsupported; rewrite the loop to accumulate through \
       memory"
      op.Core.o_name;
  body

let validate_args (f : Core.op) (args : Buffer.t list) =
  if not (Core.is_func f) then invalid_arg "Interp.run_func: not a func.func";
  let params = Core.func_args f in
  if List.length params <> List.length args then
    fail "interp: %s expects %d arguments, got %d" (Core.func_name f)
      (List.length params) (List.length args);
  List.iter2
    (fun (p : Core.value) (buf : Buffer.t) ->
      match Typ.static_shape p.v_typ with
      | Some shape when shape = Array.to_list buf.Buffer.shape -> ()
      | Some _ ->
          fail "interp: argument shape mismatch for %s" (Printer.debug_value p)
      | None -> fail "interp: dynamic argument shapes unsupported")
    params args
