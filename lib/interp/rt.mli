(** Shared runtime substrate of the two interpreter execution engines
    (the {!Eval} tree-walking oracle and the {!Compile} staged engine):
    the runtime-failure exception, engine selection, signed integer
    division semantics, and common argument/loop-shape validation. *)

exception Runtime_error of string

(** [fail fmt ...] raises {!Runtime_error} with a formatted message. *)
val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Which execution engine runs a function: [Walk] is the simple
    tree-walking oracle, [Compiled] the staged compile-to-closure engine.
    [Compiled] is the process-wide default; tests and the bench harness
    pin engines explicitly. *)
type engine = Walk | Compiled

val default_engine : engine ref
val engine_name : engine -> string
val engine_of_string : string -> engine option

(** Signed floor-division semantics shared by both engines (and by affine
    expression folding — see {!Ir.Affine_expr.floordiv}): correct for
    negative dividends {e and} divisors; division/remainder by zero raise
    {!Runtime_error}. *)

val floordivsi : int -> int -> int
val remsi : int -> int -> int

(** [check_loop_shape op] returns the loop body block of an
    [affine.for]/[scf.for], raising an eager, descriptive {!Runtime_error}
    when the loop carries iter_args (results or extra block arguments) —
    which neither engine supports — instead of letting the results surface
    later as a misleading "no runtime binding" failure. *)
val check_loop_shape : Ir.Core.op -> Ir.Core.block

(** [validate_args f args] checks arity and static argument shapes of a
    [func.func] against the supplied buffers. *)
val validate_args : Ir.Core.op -> Buffer.t list -> unit
