module D = Support.Diag

let matmul a b c =
  let m = c.Buffer.shape.(0) and n = c.Buffer.shape.(1) in
  let k = a.Buffer.shape.(1) in
  if
    a.Buffer.shape.(0) <> m || b.Buffer.shape.(0) <> k
    || b.Buffer.shape.(1) <> n
  then invalid_arg "Kernels.matmul: shape mismatch";
  let ad = a.Buffer.data and bd = b.Buffer.data and cd = c.Buffer.data in
  for i = 0 to m - 1 do
    for kk = 0 to k - 1 do
      let aik = ad.((i * k) + kk) in
      if aik <> 0. then
        for j = 0 to n - 1 do
          cd.((i * n) + j) <- cd.((i * n) + j) +. (aik *. bd.((kk * n) + j))
        done
    done
  done

let matvec ?(transpose = false) a x y =
  let m = a.Buffer.shape.(0) and n = a.Buffer.shape.(1) in
  let ad = a.Buffer.data and xd = x.Buffer.data and yd = y.Buffer.data in
  if transpose then begin
    if x.Buffer.shape.(0) <> m || y.Buffer.shape.(0) <> n then
      invalid_arg "Kernels.matvec^T: shape mismatch";
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        yd.(j) <- yd.(j) +. (ad.((i * n) + j) *. xd.(i))
      done
    done
  end
  else begin
    if x.Buffer.shape.(0) <> n || y.Buffer.shape.(0) <> m then
      invalid_arg "Kernels.matvec: shape mismatch";
    for i = 0 to m - 1 do
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc := !acc +. (ad.((i * n) + j) *. xd.(j))
      done;
      yd.(i) <- yd.(i) +. !acc
    done
  end

let transpose ~perm src dst =
  if Linalg.Linalg_ops.transposed_shape perm (Array.to_list src.Buffer.shape)
     <> Array.to_list dst.Buffer.shape
  then invalid_arg "Kernels.transpose: shape mismatch";
  let rank = Buffer.rank dst in
  let inv = Ir.Affine_map.inverse_permutation perm in
  let src_idx = Array.make rank 0 in
  let dst_idx = Array.make rank 0 in
  (* dst dim d draws from src dim perm.(d): src_idx.(j) = dst_idx.(inv.(j)). *)
  let rec go d =
    if d = rank then begin
      for j = 0 to rank - 1 do
        src_idx.(j) <- dst_idx.(inv.(j))
      done;
      Buffer.set dst dst_idx (Buffer.get src src_idx)
    end
    else
      for i = 0 to dst.Buffer.shape.(d) - 1 do
        dst_idx.(d) <- i;
        go (d + 1)
      done
  in
  go 0

let reshape_copy src dst =
  if Buffer.num_elements src <> Buffer.num_elements dst then
    invalid_arg "Kernels.reshape_copy: element count mismatch";
  Array.blit src.Buffer.data 0 dst.Buffer.data 0 (Buffer.num_elements src)

let conv2d_nchw i w o =
  match (i.Buffer.shape, w.Buffer.shape, o.Buffer.shape) with
  | [| n; c; h; ww |], [| f; c'; kh; kw |], [| n'; f'; oh; ow |]
    when c = c' && n = n' && f = f' && oh = h - kh + 1 && ow = ww - kw + 1 ->
      for nn = 0 to n - 1 do
        for ff = 0 to f - 1 do
          for y = 0 to oh - 1 do
            for x = 0 to ow - 1 do
              let acc = ref (Buffer.get o [| nn; ff; y; x |]) in
              for cc = 0 to c - 1 do
                for r = 0 to kh - 1 do
                  for s = 0 to kw - 1 do
                    acc :=
                      !acc
                      +. Buffer.get i [| nn; cc; y + r; x + s |]
                         *. Buffer.get w [| ff; cc; r; s |]
                  done
                done
              done;
              Buffer.set o [| nn; ff; y; x |] !acc
            done
          done
        done
      done
  | _ -> invalid_arg "Kernels.conv2d_nchw: shape mismatch"

let contract ~maps ~dims a b c =
  match maps with
  | [ ma; mb; mc ] ->
      (* Stage the access maps once; each point of the iteration space then
         costs three closure applications into reused index arrays instead
         of three map evaluations allocating fresh result arrays. *)
      let ca = Ir.Affine_map.compile ma
      and cb = Ir.Affine_map.compile mb
      and cc = Ir.Affine_map.compile mc in
      let ia = Array.make (Ir.Affine_map.n_results ma) 0
      and ib = Array.make (Ir.Affine_map.n_results mb) 0
      and ic = Array.make (Ir.Affine_map.n_results mc) 0 in
      let idx = Array.make (Array.length dims) 0 in
      let rec go d =
        if d = Array.length dims then begin
          ca idx ia;
          cb idx ib;
          cc idx ic;
          Buffer.set c ic
            (Buffer.get c ic +. (Buffer.get a ia *. Buffer.get b ib))
        end
        else
          for i = 0 to dims.(d) - 1 do
            idx.(d) <- i;
            go (d + 1)
          done
      in
      go 0
  | _ -> invalid_arg "Kernels.contract: expected three maps"

let fill v b = Buffer.fill b v

let infer_contract_dims ~maps ~shapes =
  let n_dims =
    match maps with
    | m :: _ -> m.Ir.Affine_map.n_dims
    | [] -> D.errorf "infer_contract_dims: no maps"
  in
  let dims = Array.make n_dims (-1) in
  List.iter2
    (fun (m : Ir.Affine_map.t) shape ->
      List.iteri
        (fun pos e ->
          match Ir.Affine_expr.is_single_dim e with
          | Some (1, d, 0) ->
              let extent = shape.(pos) in
              if dims.(d) = -1 then dims.(d) <- extent
              else if dims.(d) <> extent then
                D.errorf
                  "infer_contract_dims: dim d%d bound to both %d and %d" d
                  dims.(d) extent
          | _ ->
              (* Non-trivial result expressions (e.g. conv windows) do not
                 pin an extent by themselves. *)
              ())
        m.exprs)
    maps shapes;
  Array.iteri
    (fun d e ->
      if e = -1 then
        D.errorf "infer_contract_dims: dimension d%d is unconstrained" d)
    dims;
  dims
