(* Tests for op provenance: source locations threaded from the mini-C
   frontend and the IR parser onto ops, the derivation chains the rewrite
   driver stamps onto pattern-generated ops, and their rendering under
   [--print-debug-locs]. *)

open Ir
module W = Workloads.Polybench
module L = Support.Loc

let contains = Astring_contains.contains

let find_op m name =
  let found = ref None in
  Core.walk m (fun op -> if op.Core.o_name = name then found := Some op);
  match !found with
  | Some op -> op
  | None -> Alcotest.failf "no %s in the module" name

(* The acceptance scenario: a GEMM kernel raised to linalg.matmul carries
   a derivation naming the GEMM tactic and the C source locations of the
   consumed affine.for nest. *)
let raised_gemm () =
  let m =
    Met.Emit_affine.translate ~file:"gemm.c" (W.mm ~ni:8 ~nj:8 ~nk:8 ())
  in
  ignore (Mlt.Tactics.raise_to_linalg m);
  m

let test_frontend_locs () =
  let m =
    Met.Emit_affine.translate ~file:"gemm.c" (W.mm ~ni:8 ~nj:8 ~nk:8 ())
  in
  let loops = ref [] in
  Core.walk m (fun op ->
      if Affine.Affine_ops.is_for op then loops := op :: !loops);
  Alcotest.(check bool) "found loops" true (!loops <> []);
  List.iter
    (fun loop ->
      let loc = Core.op_loc loop in
      Alcotest.(check bool) "loop has a known loc" true (L.is_known loc);
      Alcotest.(check string) "file threaded through" "gemm.c" loc.L.file)
    !loops;
  (* Distinct loops of the nest come from distinct source lines. *)
  let lines =
    List.sort_uniq compare
      (List.map (fun l -> (Core.op_loc l).L.line) !loops)
  in
  Alcotest.(check bool) "nest loops on distinct lines" true
    (List.length lines >= 3)

let test_matmul_provenance () =
  let m = raised_gemm () in
  let mm = find_op m "linalg.matmul" in
  match Core.provenance mm with
  | [ d ] ->
      Alcotest.(check string) "names the tactic" "GEMM" d.Core.dv_pattern;
      Alcotest.(check bool) "has source locs" true (d.Core.dv_locs <> []);
      List.iter
        (fun (l : L.t) ->
          Alcotest.(check string) "locs point into the C source" "gemm.c"
            l.L.file)
        d.Core.dv_locs;
      (* The consumed nest spans several source lines, all collected. *)
      let lines =
        List.sort_uniq compare (List.map (fun l -> l.L.line) d.Core.dv_locs)
      in
      Alcotest.(check bool) "covers the loop nest" true
        (List.length lines >= 3);
      (* The derived op inherits a location from its sources. *)
      Alcotest.(check bool) "derived op has a loc" true
        (L.is_known (Core.op_loc mm))
  | ds -> Alcotest.failf "expected one derivation, got %d" (List.length ds)

let test_debug_locs_printing () =
  let m = raised_gemm () in
  let plain = Printer.op_to_string m in
  Alcotest.(check bool) "default printing has no loc trailers" false
    (contains plain "loc(");
  let debug = Printer.op_to_string ~debug_locs:true m in
  Alcotest.(check bool) "derived op renders its chain" true
    (contains debug "derived \"GEMM\" from [gemm.c:");
  (* Un-derived ops (here: the loops of an unraised module) render their
     plain source location. *)
  let unraised =
    Met.Emit_affine.translate ~file:"gemm.c" (W.mm ~ni:8 ~nj:8 ~nk:8 ())
  in
  Alcotest.(check bool) "plain ops render their loc" true
    (contains (Printer.op_to_string ~debug_locs:true unraised) " loc(gemm.c:")

let test_parser_locs () =
  let src =
    "builtin.module {\n\
    \  func.func @f(%A: memref<4xf32>) {\n\
    \    %c = arith.constant 1.0 : f32\n\
    \    func.return\n\
    \  }\n\
     }\n"
  in
  let m = Parser.parse_module ~file:"t.mlir" src in
  let c = find_op m "arith.constant" in
  let loc = Core.op_loc c in
  Alcotest.(check string) "parser file" "t.mlir" loc.L.file;
  Alcotest.(check int) "parser line" 3 loc.L.line;
  let f = find_op m "func.func" in
  Alcotest.(check int) "region op gets its own first-token line" 2
    (Core.op_loc f).L.line

let test_clone_preserves_provenance () =
  let m = raised_gemm () in
  let clone = Core.clone_op m in
  let mm = find_op clone "linalg.matmul" in
  (match Core.provenance mm with
  | [ d ] -> Alcotest.(check string) "clone keeps chain" "GEMM" d.Core.dv_pattern
  | ds -> Alcotest.failf "clone: expected one derivation, got %d" (List.length ds));
  Alcotest.(check bool) "clone keeps loc" true
    (L.is_known (Core.op_loc mm))

let test_with_loc_scoping () =
  let l1 = L.make ~file:"a.c" ~line:1 ~col:1 in
  let inner = L.make ~file:"a.c" ~line:9 ~col:9 in
  Core.with_loc l1 (fun () ->
      let op1 = Core.create_op ~operands:[] ~result_types:[] "test.a" in
      Alcotest.(check bool) "ambient loc stamps creation" true
        (L.equal (Core.op_loc op1) l1);
      Core.with_loc inner (fun () ->
          let op2 = Core.create_op ~operands:[] ~result_types:[] "test.b" in
          Alcotest.(check bool) "nested scope wins" true
            (L.equal (Core.op_loc op2) inner));
      let op3 = Core.create_op ~operands:[] ~result_types:[] "test.c" in
      Alcotest.(check bool) "outer scope restored" true
        (L.equal (Core.op_loc op3) l1));
  let op4 = Core.create_op ~operands:[] ~result_types:[] "test.d" in
  Alcotest.(check bool) "unknown outside any scope" false
    (L.is_known (Core.op_loc op4));
  (* Explicit ?loc overrides the ambient one. *)
  Core.with_loc l1 (fun () ->
      let op5 =
        Core.create_op ~loc:inner ~operands:[] ~result_types:[] "test.e"
      in
      Alcotest.(check bool) "?loc beats ambient" true
        (L.equal (Core.op_loc op5) inner))

let test_fill_provenance () =
  (* W.gemm (unlike W.mm) initializes C, so loop distribution gives the
     raise-fill pattern a nest to consume. *)
  let m =
    Met.Emit_affine.translate ~file:"gemm.c" (W.gemm ~ni:8 ~nj:8 ~nk:8 ())
  in
  ignore (Mlt.Tactics.raise_to_linalg m);
  let fill = find_op m "linalg.fill" in
  match Core.provenance fill with
  | [ d ] ->
      Alcotest.(check string) "fill stamped by raise-fill" "raise-fill"
        d.Core.dv_pattern
  | ds -> Alcotest.failf "expected one derivation, got %d" (List.length ds)

let suite =
  [
    Alcotest.test_case "mini-C frontend threads locations" `Quick
      test_frontend_locs;
    Alcotest.test_case "raised matmul carries the GEMM chain" `Quick
      test_matmul_provenance;
    Alcotest.test_case "--print-debug-locs rendering" `Quick
      test_debug_locs_printing;
    Alcotest.test_case "IR parser stamps op locations" `Quick
      test_parser_locs;
    Alcotest.test_case "clone preserves loc and provenance" `Quick
      test_clone_preserves_provenance;
    Alcotest.test_case "with_loc is dynamically scoped" `Quick
      test_with_loc_scoping;
    Alcotest.test_case "raise-fill stamps its fill" `Quick
      test_fill_provenance;
  ]
