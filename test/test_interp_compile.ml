(* Differential tests for the staged compile-to-closure execution engine:
   on every workload and on random programs, the compiled engine must
   produce buffers bit-identical to the tree-walking oracle. *)

open Ir
module B = Interp.Buffer
module W = Workloads.Polybench

(* Run [fname] of module [m] through both engines on identical random
   inputs and require bit-identical output buffers (not approx_equal: the
   engines execute the same float operations in the same order). *)
let engines_agree ?(seed = 17) m fname =
  let walk = Interp.Eval.run_on_random ~engine:Interp.Eval.Walk m fname ~seed in
  let compiled =
    Interp.Eval.run_on_random ~engine:Interp.Eval.Compiled m fname ~seed
  in
  List.for_all2 (fun a b -> B.max_abs_diff a b = 0.) walk compiled

let check_engines_agree name m fname =
  if not (engines_agree m fname) then
    Alcotest.failf "%s: compiled engine disagrees with the walker" name

let func_name_of m =
  Core.func_name
    (List.hd
       (List.filter Core.is_func (Core.ops_of_block (Core.module_block m))))

let test_engines_agree_affine_level () =
  List.iter
    (fun (name, src) ->
      let m = Met.Emit_affine.translate src in
      check_engines_agree (name ^ "/affine") m (func_name_of m))
    (W.tiny_suite ())

let test_engines_agree_scf_level () =
  List.iter
    (fun (name, src) ->
      let m = Met.Emit_affine.translate src in
      Transforms.Lower_affine.run m;
      Verifier.verify m;
      check_engines_agree (name ^ "/scf") m (func_name_of m))
    (W.tiny_suite ())

let test_engines_agree_linalg_level () =
  (* After raising, execution goes through the kernel fast paths of both
     engines; they must still agree bit-for-bit. *)
  List.iter
    (fun (name, src) ->
      let m = Met.Emit_affine.translate src in
      ignore (Transforms.Canonicalize.run m);
      ignore (Mlt.Tactics.raise_to_linalg m);
      Verifier.verify m;
      check_engines_agree (name ^ "/linalg") m (func_name_of m))
    (W.tiny_suite ())

let test_engines_agree_tiled () =
  (* Tiling produces min-bounded multi-result upper bound maps — the
     interesting case for the compiled engine's bound closures. *)
  List.iter
    (fun tile ->
      let m = Met.Emit_affine.translate (W.mm ~ni:13 ~nj:7 ~nk:9 ()) in
      Transforms.Loop_tile.tile_all m ~size:tile;
      Verifier.verify m;
      check_engines_agree (Printf.sprintf "mm tiled %d" tile) m "mm")
    [ 2; 3; 5 ]

let prop_random_programs_engines_agree =
  (* Random loop nests over a single array (the mini-C generator also
     produces shapes larger than the iteration space, so some accesses
     keep non-trivial slack for the interval analysis). *)
  let gen =
    let open QCheck.Gen in
    let* depth = int_range 1 3 in
    let* extents = list_repeat depth (int_range 2 5) in
    let* pad = int_range 0 2 in
    let* scale = int_range 1 2 in
    let vars = [ "i"; "j"; "k" ] in
    let subscripts =
      String.concat ""
        (List.mapi
           (fun d _ ->
             if d = 0 && scale > 1 then
               Printf.sprintf "[%d * %s]" scale (List.nth vars d)
             else Printf.sprintf "[%s]" (List.nth vars d))
           extents)
    in
    let dims =
      String.concat ""
        (List.mapi
           (fun d e ->
             Printf.sprintf "[%d]"
               ((e * if d = 0 then scale else 1) + pad))
           extents)
    in
    let stmt =
      Printf.sprintf "A%s = A%s * 0.5 + 1.25;" subscripts subscripts
    in
    let rec loops d =
      if d = depth then stmt
      else
        Printf.sprintf "for (int %s = 0; %s < %d; ++%s) { %s }"
          (List.nth vars d) (List.nth vars d) (List.nth extents d)
          (List.nth vars d)
          (loops (d + 1))
    in
    return (Printf.sprintf "void f(float A%s) { %s }" dims (loops 0))
  in
  QCheck.Test.make ~name:"random nests: compiled engine = walker (bitwise)"
    ~count:60
    (QCheck.make ~print:Fun.id gen)
    (fun src ->
      let m = Met.Emit_affine.translate src in
      engines_agree m "f"
      && engines_agree (Met.Emit_affine.translate src) "f" ~seed:43)

(* ---- introspection: static bounds proof -------------------------------- *)

let compile_mm () =
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  Interp.Compile.compile_func (Option.get (Core.find_func m "mm"))

let test_mm_compiles_fully_unchecked () =
  let c = compile_mm () in
  Alcotest.(check int) "no checked accesses" 0
    c.Interp.Compile.c_checked_accesses;
  Alcotest.(check int) "all four accesses unchecked" 4
    c.Interp.Compile.c_unchecked_accesses

let test_frame_is_dense_and_reusable () =
  let c = compile_mm () in
  Alcotest.(check bool) "int frame is small and dense" true
    (c.Interp.Compile.c_n_ints <= 16);
  (* One compilation, many executions. *)
  let args () =
    List.init 3 (fun i ->
        let b = B.create [ 8; 8 ] in
        B.randomize ~seed:i b;
        b)
  in
  let a1 = args () and a2 = args () in
  Interp.Compile.execute c a1;
  Interp.Compile.execute c a2;
  List.iter2
    (fun x y -> Alcotest.(check (float 0.)) "deterministic re-execution" 0.
        (B.max_abs_diff x y))
    a1 a2

let test_unprovable_access_uses_checked_fallback () =
  (* A[i * (2 - i)] for i in [0,3) only ever touches A[0] and A[1], but
     interval analysis sees [0*0, 2*2] = [0,4] over shape [2]: it must take
     the checked fallback — and still agree with the walker. *)
  let f =
    Core.create_func ~name:"quad" ~arg_types:[ Typ.memref [ 2 ] Typ.F32 ]
      ~arg_hints:[ "A" ] ()
  in
  let a = List.hd (Core.func_args f) in
  let b = Builder.at_end (Core.func_entry f) in
  let lb = Std_dialect.Arith.constant_index b 0 in
  let ub = Std_dialect.Arith.constant_index b 3 in
  let step = Std_dialect.Arith.constant_index b 1 in
  ignore
    (Std_dialect.Scf.for_ b ~lb ~ub ~step (fun b i ->
         let two = Std_dialect.Arith.constant_index b 2 in
         let t = Std_dialect.Arith.subi b two i in
         let u = Std_dialect.Arith.muli b i t in
         let v = Std_dialect.Memref_ops.load b a [ u ] in
         let one = Std_dialect.Arith.constant_float b 1. in
         let w = Std_dialect.Arith.addf b v one in
         ignore (Std_dialect.Memref_ops.store b w a [ u ])));
  let c = Interp.Compile.compile_func f in
  Alcotest.(check bool) "took the checked fallback" true
    (c.Interp.Compile.c_checked_accesses > 0);
  let buf () =
    let x = B.create [ 2 ] in
    B.randomize ~seed:5 x;
    x
  in
  let bw = buf () and bc = buf () in
  Interp.Eval.run_func ~engine:Interp.Eval.Walk f [ bw ];
  Interp.Compile.execute c [ bc ];
  Alcotest.(check (float 0.)) "checked path agrees with walker" 0.
    (B.max_abs_diff bw bc)

let test_out_of_bounds_still_detected () =
  (* Shrinking the declared shape under the loop extent makes the access
     genuinely out of bounds: the compiled engine must refuse via the
     checked path exactly like the walker (not read out of the buffer). *)
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let f = Option.get (Core.find_func m "mm") in
  List.iter
    (fun (p : Core.value) -> p.Core.v_typ <- Typ.memref [ 3; 3 ] Typ.F32)
    (Core.func_args f);
  let expect_oob engine =
    let args = List.init 3 (fun _ -> B.create [ 3; 3 ]) in
    match Interp.Eval.run_func ~engine f args with
    | () -> Alcotest.failf "%s: expected out-of-bounds" (Interp.Rt.engine_name engine)
    | exception Invalid_argument _ -> ()
  in
  expect_oob Interp.Eval.Walk;
  expect_oob Interp.Eval.Compiled

(* ---- pipeline-level differential check --------------------------------- *)

let test_pipeline_check_semantics () =
  let src = W.mm ~ni:12 ~nj:12 ~nk:12 () in
  List.iter
    (fun config ->
      List.iter
        (fun engine ->
          if not (Mlt.Pipeline.check_semantics ~engine config src) then
            Alcotest.failf "%s changed semantics (engine %s)"
              (Mlt.Pipeline.config_name config)
              (Interp.Rt.engine_name engine))
        [ Interp.Eval.Walk; Interp.Eval.Compiled ])
    [ Mlt.Pipeline.Mlt_linalg; Mlt.Pipeline.Mlt_blas ]

let suite =
  [
    Alcotest.test_case "engines agree: all kernels, affine level" `Quick
      test_engines_agree_affine_level;
    Alcotest.test_case "engines agree: all kernels, scf level" `Quick
      test_engines_agree_scf_level;
    Alcotest.test_case "engines agree: all kernels, linalg level" `Quick
      test_engines_agree_linalg_level;
    Alcotest.test_case "engines agree: tiled (min-bound maps)" `Quick
      test_engines_agree_tiled;
    QCheck_alcotest.to_alcotest prop_random_programs_engines_agree;
    Alcotest.test_case "mm: every access statically proven in bounds" `Quick
      test_mm_compiles_fully_unchecked;
    Alcotest.test_case "compile once, execute many (dense frames)" `Quick
      test_frame_is_dense_and_reusable;
    Alcotest.test_case "unprovable index takes the checked fallback" `Quick
      test_unprovable_access_uses_checked_fallback;
    Alcotest.test_case "out-of-bounds detected by both engines" `Quick
      test_out_of_bounds_still_detected;
    Alcotest.test_case "pipeline differential check (both engines)" `Quick
      test_pipeline_check_semantics;
  ]
