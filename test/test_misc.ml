(* Remaining coverage: rewriter drivers, printer corner cases, workload
   metadata. *)

open Ir

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

let test_sweeps_equals_greedy_on_lowering () =
  (* Both drivers must produce semantically equal results for the linalg
     lowering (sweeps is the fast path, greedy the reference). *)
  let src = Workloads.Polybench.gemm ~ni:8 ~nj:8 ~nk:8 () in
  let prep () =
    let m = Met.Emit_affine.translate src in
    ignore (Mlt.Tactics.raise_to_linalg m);
    m
  in
  let m1 = prep () and m2 = prep () in
  ignore
    (Rewriter.apply_greedily m1
       (Rewriter.freeze (Transforms.Lower_linalg.patterns ())));
  ignore
    (Rewriter.apply_sweeps m2
       (Rewriter.freeze (Transforms.Lower_linalg.patterns ())));
  Verifier.verify m1;
  Verifier.verify m2;
  Alcotest.(check bool) "drivers agree semantically" true
    (Interp.Eval.equivalent m1 m2 "gemm" ~seed:109)

let test_rewriter_diverging_pattern_detected () =
  (* A pattern that always rewrites in place never reaches a fixpoint; the
     driver must abort rather than spin. *)
  let m = Met.Emit_affine.translate (Workloads.Polybench.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let spin =
    Rewriter.pattern ~name:"spin" (fun ctx op ->
        if Affine.Affine_ops.is_load op then begin
          (* Re-create the same load before the old one, forever. *)
          let memref = Affine.Affine_ops.access_memref op in
          let map = Affine.Affine_ops.access_map op in
          let idx = Affine.Affine_ops.access_indices op in
          let v = Affine.Affine_ops.load ctx.Rewriter.builder memref (map, idx) in
          Rewriter.replace_op ctx op [ v ];
          true
        end
        else false)
  in
  match
    Support.Diag.wrap (fun () ->
        Rewriter.apply_greedily m (Rewriter.freeze [ spin ]))
  with
  | Ok _ -> Alcotest.fail "expected divergence detection"
  | Error msg ->
      Alcotest.(check bool) "mentions fixpoint" true
        (Astring_contains.contains msg "fixpoint")

let test_pattern_benefit_ordering () =
  (* Higher-benefit patterns apply first. *)
  let m = Met.Emit_affine.translate (Workloads.Polybench.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let hits = ref [] in
  let mk name benefit =
    Rewriter.pattern ~name ~benefit (fun _ op ->
        if Affine.Affine_ops.is_matmul op then false
        else if Affine.Affine_ops.is_store op && !hits = [] then begin
          hits := name :: !hits;
          false (* observe only *)
        end
        else false)
  in
  ignore (Rewriter.apply_greedily m (Rewriter.freeze [ mk "low" 1; mk "high" 9 ]));
  Alcotest.(check (list string)) "high first" [ "high" ] !hits

let test_equal_benefit_registration_order () =
  (* Equal-benefit patterns must be tried (and thus apply) in registration
     order, under both drivers and regardless of root declarations — the
     stable benefit sort is what makes greedy rewriting deterministic. *)
  let check_driver driver_name driver roots_a roots_b =
    let m =
      Met.Emit_affine.translate (Workloads.Polybench.mm ~ni:4 ~nj:4 ~nk:4 ())
    in
    let fired = ref [] in
    let mk name roots =
      Rewriter.pattern ~name ~benefit:3 ~roots (fun _ op ->
          if Affine.Affine_ops.is_store op && !fired = [] then begin
            fired := name :: !fired;
            Core.erase_op op;
            true
          end
          else false)
    in
    ignore
      (driver m
         (Rewriter.freeze [ mk "registered-first" roots_a; mk "registered-second" roots_b ]));
    Alcotest.(check (list string))
      (driver_name ^ ": first registered wins ties")
      [ "registered-first" ] !fired
  in
  let store_roots = Rewriter.Roots [ "affine.store" ] in
  List.iter
    (fun (name, driver) ->
      check_driver name driver Rewriter.Any Rewriter.Any;
      check_driver name driver store_roots store_roots;
      (* Mixed Any/rooted: the Any pattern merges into the candidate list
         at its sorted position, not appended after the rooted ones. *)
      check_driver name driver Rewriter.Any store_roots;
      check_driver name driver store_roots Rewriter.Any)
    [
      ("apply_greedily", Rewriter.apply_greedily);
      ("apply_greedily_fullsweep", Rewriter.apply_greedily_fullsweep);
    ]

let test_printer_parser_sgemv_transpose_attr () =
  let src =
    "void f(float A[4][6], float x[4], float y[6]) { for (int i = 0; i < \
     4; ++i) for (int j = 0; j < 6; ++j) y[j] += A[i][j] * x[i]; }"
  in
  let m = Mlt.Pipeline.prepare Mlt.Pipeline.Mlt_blas src in
  Alcotest.(check int) "sgemv" 1 (count_ops m "blas.sgemv");
  let printed = Printer.op_to_string m in
  Alcotest.(check bool) "prints transpose attr" true
    (Astring_contains.contains printed "transpose = true");
  let m2 = Parser.parse_module printed in
  Alcotest.(check string) "roundtrips" printed (Printer.op_to_string m2);
  Alcotest.(check bool) "still equivalent" true
    (Interp.Eval.equivalent m m2 "f" ~seed:113)

let test_figure9_suite_metadata () =
  let suite = Workloads.Polybench.figure9_suite () in
  Alcotest.(check int) "sixteen kernels" 16 (List.length suite);
  List.iter
    (fun (name, src, flops) ->
      if flops <= 0. then Alcotest.failf "%s: non-positive flop count" name;
      (* Sources parse and contain exactly one kernel. *)
      match Met.C_parser.parse_program src with
      | [ _ ] -> ()
      | ks -> Alcotest.failf "%s: %d kernels" name (List.length ks))
    suite;
  let names = List.map (fun (n, _, _) -> n) suite in
  Alcotest.(check (list string)) "paper order"
    [
      "atax"; "bicg"; "gemver"; "gesummv"; "mvt"; "2mm"; "3mm"; "gemm";
      "conv2d-nchw"; "ab-acd-dbc"; "abc-acd-db"; "abc-ad-bdc"; "ab-cad-dcb";
      "abc-bda-dc"; "abcd-aebf-dfce"; "abcd-aebf-fdec";
    ]
    names

let test_trace_flop_count_matches_metadata () =
  (* The workload metadata flop counts agree with what the simulator
     actually executes for the pure-contraction kernels. *)
  List.iter
    (fun name ->
      let _, src, flops =
        List.find (fun (n, _, _) -> n = name) (Workloads.Polybench.figure9_suite ())
      in
      let f =
        Option.get
          (Core.find_func (Met.Emit_affine.translate src)
             (List.hd (Met.C_parser.parse_program src)).Met.C_ast.k_name)
      in
      let r = Machine.Perf.time_func Machine.Machine_model.intel_i9 f in
      let counted =
        r.Machine.Perf.stats.Machine.Trace.flops_scalar
        +. r.Machine.Perf.stats.Machine.Trace.flops_vector
      in
      if abs_float (counted -. flops) > flops *. 0.01 then
        Alcotest.failf "%s: metadata %g vs simulated %g" name flops counted)
    [ "gemm"; "conv2d-nchw"; "ab-acd-dbc" ]

let suite =
  [
    Alcotest.test_case "apply_sweeps = apply_greedily semantics" `Quick
      test_sweeps_equals_greedy_on_lowering;
    Alcotest.test_case "diverging pattern detected" `Quick
      test_rewriter_diverging_pattern_detected;
    Alcotest.test_case "pattern benefit ordering" `Quick
      test_pattern_benefit_ordering;
    Alcotest.test_case "equal-benefit ties keep registration order" `Quick
      test_equal_benefit_registration_order;
    Alcotest.test_case "sgemv transpose attr roundtrip" `Quick
      test_printer_parser_sgemv_transpose_attr;
    Alcotest.test_case "figure 9 suite metadata" `Quick
      test_figure9_suite_metadata;
    Alcotest.test_case "trace flops match metadata" `Quick
      test_trace_flop_count_matches_metadata;
  ]
