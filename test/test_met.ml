(* Tests for the mini-C frontend: lexer/parser, loop distribution, and
   emission to the Affine dialect. *)

open Met
module W = Workloads.Polybench

let parse src = C_parser.parse_kernel src

let test_parse_gemm () =
  let k = parse (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  Alcotest.(check string) "name" "gemm" k.C_ast.k_name;
  Alcotest.(check int) "params" 3 (List.length k.k_params);
  match k.k_body with
  | [ C_ast.S_for { var = "i"; lb = 0; ub = 8; body = [ S_for _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_compound_assign () =
  let k =
    parse "void f(float A[4]) { for (int i = 0; i < 4; ++i) A[i] *= 2.0; }"
  in
  match k.k_body with
  | [ C_ast.S_for { body = [ S_assign { rhs = E_mul (E_ref _, E_lit 2.0); _ } ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "*= not desugared to multiplication"

let test_parse_linearized () =
  let k = parse (W.darknet_gemm ~m:4 ~n:4 ~k:4 ()) in
  match k.k_body with
  | [ C_ast.S_for { body = [ S_for { body = [ S_for { body = [ S_assign a ]; _ } ]; _ } ]; _ } ]
    ->
      (* C[i*4 + j]: one subscript mixing two loop vars. *)
      Alcotest.(check int) "rank-1 lhs" 1 (List.length a.lhs.subscripts)
  | _ -> Alcotest.fail "unexpected darknet shape"

let test_parse_errors () =
  let expect_fail src =
    match Support.Diag.wrap (fun () -> parse src) with
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
    | Error _ -> ()
  in
  expect_fail "void f(float A[4]) { for (int i = 0; i > 4; ++i) A[i] = 0.0; }";
  expect_fail "void f(float A[4]) { for (int i = 0; j < 4; ++i) A[i] = 0.0; }";
  expect_fail "void f(float A[4]) { for (int i = 0; i < 4; ++j) A[i] = 0.0; }";
  expect_fail "void f(float A[4]) { A[0] = ; }";
  expect_fail "void f(float A[4]) { A[0] 1.0; }"

let test_lexer_comments () =
  let k =
    parse
      "void f(float A[4]) { // line\n/* block\ncomment */ for (int i = 0; i \
       < 4; i++) A[i] = 0.0; }"
  in
  Alcotest.(check int) "one stmt" 1 (List.length k.C_ast.k_body)

let count_top_level_fors k =
  List.length
    (List.filter
       (function C_ast.S_for _ -> true | _ -> false)
       k.C_ast.k_body)

let test_distribute_gemm () =
  (* gemm has C init and accumulation fused under (i, j); distribution must
     split them into two nests. *)
  let k = parse (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  let k' = Distribute.kernel k in
  Alcotest.(check int) "two nests" 2 (count_top_level_fors k');
  (* The accumulation nest must now be perfectly nested (single stmt). *)
  match k'.k_body with
  | [ _init; C_ast.S_for { body = [ S_for { body = [ S_for _ ]; _ } ]; _ } ] ->
      ()
  | _ -> Alcotest.fail "accumulation nest not isolated"

let test_distribute_preserves_dependences () =
  (* x[i] = y[i]; y[i+1] = x[i]  -- subscripts differ on a shared written
     array, so the two statements must stay together. *)
  let src =
    "void f(float x[8], float y[9]) { for (int i = 0; i < 8; ++i) { x[i] = \
     y[i]; y[i + 1] = x[i]; } }"
  in
  let k = Distribute.kernel (parse src) in
  Alcotest.(check int) "kept fused" 1 (count_top_level_fors k);
  match k.C_ast.k_body with
  | [ C_ast.S_for { body; _ } ] ->
      Alcotest.(check int) "both statements" 2 (List.length body)
  | _ -> Alcotest.fail "unexpected shape"

let test_distribute_orders_components () =
  (* Independent statements split, order preserved. *)
  let src =
    "void f(float a[8], float b[8]) { for (int i = 0; i < 8; ++i) { a[i] = \
     1.0; b[i] = 2.0; } }"
  in
  let k = Distribute.kernel (parse src) in
  match k.C_ast.k_body with
  | [ C_ast.S_for { body = [ S_assign s1 ]; _ };
      C_ast.S_for { body = [ S_assign s2 ]; _ } ] ->
      Alcotest.(check string) "first" "a" s1.lhs.array;
      Alcotest.(check string) "second" "b" s2.lhs.array
  | _ -> Alcotest.fail "expected two single-statement loops"

let test_emit_verifies_all_workloads () =
  List.iter
    (fun (name, src, _) ->
      match Support.Diag.wrap (fun () -> Emit_affine.translate src) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    (List.map (fun (n, s) -> (n, s, 0.)) (W.tiny_suite ()))

let test_emit_gemm_structure () =
  let m = Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  let f = Option.get (Ir.Core.find_func m "gemm") in
  let nests = Affine.Loops.top_level_loops f in
  Alcotest.(check int) "two nests after distribution" 2 (List.length nests);
  let acc_nest = List.nth nests 1 in
  let loops, body = Affine.Loops.nest_with_body acc_nest in
  Alcotest.(check int) "triple loop" 3 (List.length loops);
  Alcotest.(check int) "3 loads 1 store 2 arith" 6 (List.length body)

let test_emit_linearized_access_map () =
  let m = Emit_affine.translate (W.darknet_gemm ~m:4 ~n:4 ~k:4 ()) in
  let f = Option.get (Ir.Core.find_func m "darknet_gemm") in
  (* Every access is rank-1 with a 2-variable map like 4*d0 + d1. *)
  let saw_linearized = ref false in
  Ir.Core.walk f (fun op ->
      if Affine.Affine_ops.is_load op then begin
        let map = Affine.Affine_ops.access_map op in
        Alcotest.(check int) "rank-1" 1 (Ir.Affine_map.n_results map);
        if map.Ir.Affine_map.n_dims = 2 then saw_linearized := true
      end);
  Alcotest.(check bool) "found a linearized access" true !saw_linearized

let test_emit_locals_alloc () =
  let m = Emit_affine.translate (W.two_mm ~ni:8 ~nj:8 ~nk:8 ~nl:8 ()) in
  let f = Option.get (Ir.Core.find_func m "two_mm") in
  let allocs = ref 0 in
  Ir.Core.walk f (fun op ->
      if Std_dialect.Memref_ops.is_alloc op then incr allocs);
  Alcotest.(check int) "one local buffer" 1 !allocs

let test_emit_rejects_bad_programs () =
  let expect_fail src =
    match Support.Diag.wrap (fun () -> Emit_affine.translate src) with
    | Ok _ -> Alcotest.failf "expected semantic error for %S" src
    | Error _ -> ()
  in
  (* undeclared array *)
  expect_fail "void f(float A[4]) { for (int i = 0; i < 4; ++i) Z[i] = 0.0; }";
  (* rank mismatch *)
  expect_fail "void f(float A[4]) { for (int i = 0; i < 4; ++i) A[i][i] = 0.0; }";
  (* non-affine subscript i*i *)
  expect_fail
    "void f(float A[16]) { for (int i = 0; i < 4; ++i) A[i*i] = 0.0; }";
  (* subscript variable that is not a loop variable *)
  expect_fail "void f(float A[4]) { A[q] = 0.0; }";
  (* shadowed loop variable *)
  expect_fail
    "void f(float A[4]) { for (int i = 0; i < 4; ++i) for (int i = 0; i < 4; \
     ++i) A[i] = 0.0; }"

let test_roundtrip_print_parse_ast () =
  (* Printing a kernel and reparsing it yields the same AST. *)
  List.iter
    (fun (name, src, _) ->
      let k = parse src in
      let printed = Format.asprintf "%a" C_ast.pp_kernel k in
      let k2 = parse printed in
      if C_ast.strip_locs k <> C_ast.strip_locs k2 then
        Alcotest.failf "%s: AST roundtrip mismatch" name)
    (List.map (fun (n, s) -> (n, s, 0.)) (W.tiny_suite ()))

let suite =
  [
    Alcotest.test_case "parse gemm" `Quick test_parse_gemm;
    Alcotest.test_case "parse compound assignment" `Quick
      test_parse_compound_assign;
    Alcotest.test_case "parse linearized subscripts" `Quick
      test_parse_linearized;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "distribute gemm" `Quick test_distribute_gemm;
    Alcotest.test_case "distribution preserves dependences" `Quick
      test_distribute_preserves_dependences;
    Alcotest.test_case "distribution orders components" `Quick
      test_distribute_orders_components;
    Alcotest.test_case "emit verifies all workloads" `Quick
      test_emit_verifies_all_workloads;
    Alcotest.test_case "emit gemm structure" `Quick test_emit_gemm_structure;
    Alcotest.test_case "emit linearized access maps" `Quick
      test_emit_linearized_access_map;
    Alcotest.test_case "emit locals as allocs" `Quick test_emit_locals_alloc;
    Alcotest.test_case "emit rejects bad programs" `Quick
      test_emit_rejects_bad_programs;
    Alcotest.test_case "kernel AST print/parse roundtrip" `Quick
      test_roundtrip_print_parse_ast;
  ]
