(* Tests for optimistic delinearization — the pass that recovers the
   Darknet callsite of Figure 8. *)

open Ir
module T = Transforms
module W = Workloads.Polybench

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

let darknet_func n =
  let m = Met.Emit_affine.translate (W.darknet_gemm ~m:n ~n ~k:n ()) in
  (m, Option.get (Core.find_func m "darknet_gemm"))

let test_darknet_delinearizes () =
  let n = 8 in
  let m, f = darknet_func n in
  let rewritten = T.Delinearize.run f in
  Alcotest.(check int) "three buffers retyped" 3 rewritten;
  Verifier.verify m;
  (* Arguments are now 2-d. *)
  List.iter
    (fun (v : Core.value) ->
      Alcotest.(check int) "rank 2" 2 (Typ.memref_rank v.Core.v_typ))
    (Core.func_args f)

let test_darknet_raises_after_delinearization () =
  (* The Figure-8 fix: after delinearization, the ordinary 2-d GEMM tactic
     matches the Darknet kernel. *)
  let n = 8 in
  let _, f = darknet_func n in
  let before = Rewriter.apply_greedily f (Rewriter.freeze (Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl)) in
  Alcotest.(check int) "missed before" 0 before;
  ignore (T.Delinearize.run f);
  let after = Rewriter.apply_greedily f (Rewriter.freeze (Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl)) in
  Alcotest.(check int) "detected after" 1 after;
  Alcotest.(check int) "matmul op" 1 (count_ops f "linalg.matmul")

let test_delinearization_preserves_semantics () =
  let n = 6 in
  let m1, _ = darknet_func n in
  let m2, f2 = darknet_func n in
  ignore (T.Delinearize.run f2);
  ignore (Mlt.Tactics.raise_to_linalg f2);
  (* Same row-major data, different ranks: compare flattened buffers. *)
  let mk1 seed = let b = Interp.Buffer.create [ n * n ] in Interp.Buffer.randomize ~seed b; b in
  let mk2 seed = let b = Interp.Buffer.create [ n; n ] in Interp.Buffer.randomize ~seed b; b in
  let a1 = mk1 1 and b1 = mk1 2 and c1 = mk1 3 in
  let a2 = mk2 1 and b2 = mk2 2 and c2 = mk2 3 in
  Interp.Eval.run m1 "darknet_gemm" [ a1; b1; c1 ];
  Interp.Eval.run m2 "darknet_gemm" [ a2; b2; c2 ];
  Alcotest.(check (float 1e-4)) "same data" 0.
    (Interp.Buffer.max_abs_diff c1 { c1 with Interp.Buffer.data = c2.Interp.Buffer.data })

let test_guarded_against_overflowing_subscripts () =
  (* B[8*i + j] with j in [0, 12): the low part is NOT provably < 8, so
     the buffer must not be delinearized with stride 8. *)
  let src =
    "void f(float B[96]) { for (int i = 0; i < 8; ++i) for (int j = 0; j < \
     12; ++j) B[8*i + j] = 1.0; }"
  in
  let m = Met.Emit_affine.translate src in
  let f = Option.get (Core.find_func m "f") in
  Alcotest.(check int) "not rewritten" 0 (T.Delinearize.run f)

let test_mixed_rank_untouched () =
  (* 2-d buffers are left alone; only the rank-1 candidate is rewritten. *)
  let src =
    "void f(float A[4][4], float B[16]) { for (int i = 0; i < 4; ++i) for \
     (int j = 0; j < 4; ++j) B[4*i + j] = A[i][j]; }"
  in
  let m = Met.Emit_affine.translate src in
  let f = Option.get (Core.find_func m "f") in
  Alcotest.(check int) "one buffer" 1 (T.Delinearize.run f);
  Verifier.verify m

let test_non_affine_or_unknown_extent_guarded () =
  (* Accesses whose subscripts mix unknown strides must not be split. *)
  let src =
    "void f(float B[64]) { for (int i = 0; i < 8; ++i) B[9*i] = 1.0; }"
  in
  (* stride 9 does not divide 64: reject. *)
  let m = Met.Emit_affine.translate src in
  let f = Option.get (Core.find_func m "f") in
  Alcotest.(check int) "not rewritten" 0 (T.Delinearize.run f)

let suite =
  [
    Alcotest.test_case "darknet buffers delinearize" `Quick
      test_darknet_delinearizes;
    Alcotest.test_case "darknet raises after delinearization (fig 8)" `Quick
      test_darknet_raises_after_delinearization;
    Alcotest.test_case "delinearization preserves semantics" `Quick
      test_delinearization_preserves_semantics;
    Alcotest.test_case "overflowing subscripts guarded" `Quick
      test_guarded_against_overflowing_subscripts;
    Alcotest.test_case "mixed ranks: only candidates rewritten" `Quick
      test_mixed_rank_untouched;
    Alcotest.test_case "non-dividing strides guarded" `Quick
      test_non_affine_or_unknown_extent_guarded;
  ]
