(* Tests for the structured trace layer (Ir.Trace): sink plumbing, the
   in-memory ring buffer, the Chrome exporter's JSON, and the events the
   instrumented layers (pass manager, rewrite drivers, patterns,
   interpreter) actually emit. *)

open Ir
module W = Workloads.Polybench

let contains = Astring_contains.contains

let events_where pred t =
  List.filter pred (Trace.Memory.events t)

let arg_str ev key =
  match List.assoc_opt key ev.Trace.ev_args with
  | Some (Trace.A_str s) -> Some s
  | _ -> None

let arg_bool ev key =
  match List.assoc_opt key ev.Trace.ev_args with
  | Some (Trace.A_bool b) -> Some b
  | _ -> None

(* A raising pipeline run under a memory sink delivers the full event
   taxonomy: pass spans, driver runs, per-pattern attempts and hits. *)
let test_memory_captures_pipeline () =
  Alcotest.(check bool) "tracing disabled by default" false (Trace.enabled ());
  let t = Trace.Memory.create () in
  Alcotest.(check bool) "sink install enables tracing" true (Trace.enabled ());
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  let pm = Pass.create_manager () in
  Pass.add pm (Mlt.Tactics.raise_to_linalg_pass ());
  Pass.run pm m;
  Trace.Memory.detach t;
  Alcotest.(check bool) "detach disables tracing" false (Trace.enabled ());
  let pass_begin =
    events_where
      (fun e ->
        e.Trace.ev_cat = "pass" && e.Trace.ev_phase = Trace.Begin
        && e.Trace.ev_name = "raise-affine-to-linalg")
      t
  in
  Alcotest.(check int) "one pass Begin" 1 (List.length pass_begin);
  let pass_end =
    events_where
      (fun e ->
        e.Trace.ev_cat = "pass" && e.Trace.ev_phase = Trace.End
        && e.Trace.ev_name = "raise-affine-to-linalg")
      t
  in
  Alcotest.(check int) "one pass End" 1 (List.length pass_end);
  (match pass_end with
  | [ e ] ->
      Alcotest.(check bool) "End carries rewrite counters" true
        (List.mem_assoc "rewrites" e.Trace.ev_args)
  | _ -> ());
  let drivers =
    events_where
      (fun e -> e.Trace.ev_cat = "driver" && e.Trace.ev_name = "greedy-worklist")
      t
  in
  Alcotest.(check bool) "driver span recorded" true (List.length drivers >= 2);
  let hits =
    events_where
      (fun e ->
        e.Trace.ev_cat = "pattern" && e.Trace.ev_name = "GEMM"
        && arg_bool e "hit" = Some true)
      t
  in
  Alcotest.(check int) "one GEMM hit event" 1 (List.length hits);
  (match hits with
  | [ e ] ->
      Alcotest.(check (option string)) "hit names the matched op"
        (Some "affine.for") (arg_str e "op")
  | _ -> ());
  (* Events arrive in causal order: the pass Begin precedes its End. *)
  let ts_of es = (List.hd es).Trace.ev_ts in
  Alcotest.(check bool) "Begin before End" true
    (ts_of pass_begin <= ts_of pass_end)

let test_memory_ring_capacity () =
  let t = Trace.Memory.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.instant ~args:[ ("i", Trace.A_int i) ] ~cat:"test" "tick"
  done;
  Trace.Memory.detach t;
  Alcotest.(check int) "keeps the last [capacity]" 4
    (List.length (Trace.Memory.events t));
  Alcotest.(check int) "counts the overflow" 6 (Trace.Memory.dropped t);
  (* The survivors are the newest events. *)
  let is =
    List.filter_map
      (fun e ->
        match List.assoc_opt "i" e.Trace.ev_args with
        | Some (Trace.A_int i) -> Some i
        | _ -> None)
      (Trace.Memory.events t)
  in
  Alcotest.(check (list int)) "oldest first, newest kept" [ 7; 8; 9; 10 ] is;
  Trace.Memory.clear t;
  Alcotest.(check int) "clear empties the buffer" 0
    (List.length (Trace.Memory.events t))

(* The ring buffer must keep wrapping correctly while the metrics layer
   is live on the same hot path: every Metrics.observe between trace
   events must neither perturb the ring's bookkeeping nor lose its own
   observations when the ring overflows. *)
let test_ring_wraparound_under_metric_load () =
  let capacity = 8 and total = 1000 in
  let t = Trace.Memory.create ~capacity () in
  let h = Metrics.histogram "tt_ring_hist" in
  let c = Metrics.counter "tt_ring_counter" in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) (fun () ->
      for i = 1 to total do
        Metrics.incr c;
        Metrics.observe h 1e-6;
        Trace.instant ~args:[ ("i", Trace.A_int i) ] ~cat:"test" "tick"
      done);
  Trace.Memory.detach t;
  Alcotest.(check int) "ring keeps the last [capacity]" capacity
    (List.length (Trace.Memory.events t));
  Alcotest.(check int) "ring counts every overflow" (total - capacity)
    (Trace.Memory.dropped t);
  let is =
    List.filter_map
      (fun e ->
        match List.assoc_opt "i" e.Trace.ev_args with
        | Some (Trace.A_int i) -> Some i
        | _ -> None)
      (Trace.Memory.events t)
  in
  Alcotest.(check (list int)) "survivors are the newest, oldest first"
    (List.init capacity (fun k -> total - capacity + 1 + k))
    is;
  (* The metrics side lost nothing to the ring overflow. *)
  let sample name =
    List.find (fun s -> s.Metrics.s_metric = name) (Metrics.snapshot ())
  in
  (match (sample "tt_ring_counter").Metrics.s_value with
  | Metrics.V_counter n -> Alcotest.(check int) "counter kept all" total n
  | _ -> Alcotest.fail "counter lost its kind");
  match (sample "tt_ring_hist").Metrics.s_value with
  | Metrics.V_histogram hs ->
      Alcotest.(check int) "histogram kept all" total hs.Metrics.h_count
  | _ -> Alcotest.fail "histogram lost its kind"

let test_span_exception_safety () =
  let t = Trace.Memory.create () in
  (try
     Trace.span ~cat:"test" "boom" (fun () -> failwith "kaboom")
   with Failure _ -> ());
  Trace.Memory.detach t;
  let phases =
    List.map
      (fun e -> e.Trace.ev_phase)
      (events_where (fun e -> e.Trace.ev_name = "boom") t)
  in
  Alcotest.(check bool) "End emitted despite the raise" true
    (phases = [ Trace.Begin; Trace.End ])

let test_sinks_stack () =
  (* Two sinks both see every event; uninstalling one leaves the other. *)
  let t1 = Trace.Memory.create () in
  let t2 = Trace.Memory.create () in
  Trace.instant ~cat:"test" "both";
  Trace.Memory.detach t1;
  Trace.instant ~cat:"test" "only-t2";
  Trace.Memory.detach t2;
  Alcotest.(check int) "t1 saw one" 1 (List.length (Trace.Memory.events t1));
  Alcotest.(check int) "t2 saw both" 2 (List.length (Trace.Memory.events t2))

(* The Chrome exporter must produce strictly valid JSON with the
   trace-event fields Perfetto requires. Validated with the in-tree JSON
   reader, not string matching. *)
let test_chrome_json_valid () =
  let c = Trace.Chrome.create () in
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  let pm = Pass.create_manager () in
  Pass.add pm (Mlt.Tactics.raise_to_linalg_pass ());
  Pass.run pm m;
  Trace.Chrome.detach c;
  Alcotest.(check bool) "captured events" true (Trace.Chrome.count c > 0);
  match Support.Json.parse (Trace.Chrome.contents c) with
  | Error msg -> Alcotest.failf "exporter produced invalid JSON: %s" msg
  | Ok json -> (
      match Support.Json.member "traceEvents" json with
      | Some (Support.Json.List evs) ->
          Alcotest.(check int) "traceEvents matches count"
            (Trace.Chrome.count c) (List.length evs);
          List.iter
            (fun ev ->
              let str k =
                match Support.Json.member k ev with
                | Some (Support.Json.Str s) -> s
                | _ -> Alcotest.failf "event lacks string field %S" k
              in
              let num k =
                match Support.Json.member k ev with
                | Some (Support.Json.Num n) -> n
                | _ -> Alcotest.failf "event lacks numeric field %S" k
              in
              Alcotest.(check bool) "nonempty name" true (str "name" <> "");
              Alcotest.(check bool) "known phase" true
                (List.mem (str "ph") [ "B"; "E"; "i" ]);
              Alcotest.(check bool) "relative ts is nonnegative" true
                (num "ts" >= 0.);
              ignore (num "pid");
              ignore (num "tid");
              Alcotest.(check bool) "known category" true
                (List.mem (str "cat")
                   [ "pass"; "driver"; "pattern"; "interp"; "remark" ]))
            evs
      | _ -> Alcotest.fail "no traceEvents array")

let test_chrome_escaping () =
  let c = Trace.Chrome.create () in
  Trace.instant
    ~args:[ ("msg", Trace.A_str "quote \" backslash \\ newline \n tab \t") ]
    ~cat:"test" "esc \"name\"";
  Trace.Chrome.detach c;
  match Support.Json.parse (Trace.Chrome.contents c) with
  | Error msg -> Alcotest.failf "escaping broke the JSON: %s" msg
  | Ok _ -> ()

let test_interp_spans () =
  let t = Trace.Memory.create () in
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  ignore (Interp.Eval.run_on_random ~engine:Interp.Eval.Compiled m "mm" ~seed:3);
  Trace.Memory.detach t;
  let interp name =
    events_where
      (fun e -> e.Trace.ev_cat = "interp" && e.Trace.ev_name = name)
      t
  in
  Alcotest.(check bool) "exec span" true (List.length (interp "exec") >= 2);
  Alcotest.(check bool) "compile span" true
    (List.length (interp "compile") >= 2);
  match interp "exec" with
  | e :: _ ->
      Alcotest.(check (option string)) "exec names the function" (Some "mm")
        (arg_str e "func");
      Alcotest.(check (option string)) "exec names the engine"
        (Some "compiled") (arg_str e "engine")
  | [] -> ()

let test_remarks_mirrored_into_trace () =
  let t = Trace.Memory.create () in
  Remark.remark ~loc:(Support.Loc.make ~file:"x.c" ~line:3 ~col:1)
    ~pattern:"GEMM" ~stage:"op-chain" Remark.Missed "not a contraction";
  Trace.Memory.detach t;
  match events_where (fun e -> e.Trace.ev_cat = "remark") t with
  | [ e ] ->
      Alcotest.(check bool) "instant" true (e.Trace.ev_phase = Trace.Instant);
      Alcotest.(check (option string)) "pattern arg" (Some "GEMM")
        (arg_str e "pattern");
      Alcotest.(check (option string)) "stage arg" (Some "op-chain")
        (arg_str e "stage");
      Alcotest.(check bool) "loc arg" true
        (match arg_str e "loc" with
        | Some l -> contains l "x.c:3:1"
        | None -> false)
  | es -> Alcotest.failf "expected one remark event, got %d" (List.length es)

let suite =
  [
    Alcotest.test_case "memory sink captures the pipeline taxonomy" `Quick
      test_memory_captures_pipeline;
    Alcotest.test_case "ring buffer capacity and overflow" `Quick
      test_memory_ring_capacity;
    Alcotest.test_case "ring wraparound under metric-event load" `Quick
      test_ring_wraparound_under_metric_load;
    Alcotest.test_case "span closes on exceptions" `Quick
      test_span_exception_safety;
    Alcotest.test_case "sinks stack and detach independently" `Quick
      test_sinks_stack;
    Alcotest.test_case "chrome exporter emits valid trace JSON" `Quick
      test_chrome_json_valid;
    Alcotest.test_case "chrome exporter escapes strings" `Quick
      test_chrome_escaping;
    Alcotest.test_case "interpreter compile/exec spans" `Quick
      test_interp_spans;
    Alcotest.test_case "remarks mirror into the trace" `Quick
      test_remarks_mirrored_into_trace;
  ]
