(* Crash-safety of the content-addressed compilation cache.

   The commit protocol (docs/CACHE.md) promises that a kill at any
   instant loses at most the one in-flight entry and never corrupts the
   store. The first half drives [Cache.store] into every labelled crash
   point via the fault-injection hook and reopens the directory each
   time: previously committed entries must survive, the in-flight entry
   must be gone, and the recovery counters must say exactly what was
   dropped. SIGKILL debris that in-process exceptions cannot produce
   (orphaned temp files, torn journal lines, vanished blobs) is
   manufactured by hand. The second half is the driver-level resume
   story: a run whose Nth commit is killed, re-invoked against the same
   cache directory, must serve every checkpointed entry and still
   produce a report signature identical to an uncached run. *)

module C = Batch.Cache
module J = Support.Json
module W = Workloads.Polybench

let rec rm_rf path =
  if try Sys.is_directory path with Sys_error _ -> false then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    try Sys.rmdir path with Sys_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let with_tmp_dir f =
  let dir = Filename.temp_dir "mlt_cache_test" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Raise [Injected_crash] when the commit protocol reaches [label]. *)
let with_crash_at label f =
  C.crash_hook := (fun l -> if l = label then raise (C.Injected_crash l));
  Fun.protect ~finally:(fun () -> C.crash_hook := ignore) f

let k name = C.key [ "test"; name ]

let payload name =
  J.Obj [ ("name", J.Str name); ("len", J.num_int (String.length name)) ]

let store t name = C.store t ~key:(k name) (payload name)

(* The store layout is part of the documented format (docs/CACHE.md), so
   tests may address blobs directly to manufacture SIGKILL debris. *)
let blob_path dir key =
  Filename.concat
    (Filename.concat (Filename.concat dir "objects") (String.sub key 0 2))
    (key ^ ".json")

let json =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (J.to_string v))
    ( = )

(* ---- the happy path ----------------------------------------------- *)

let test_persistence () =
  with_tmp_dir @@ fun dir ->
  let t = C.open_ ~dir in
  Alcotest.(check int) "fresh store empty" 0 (C.entry_count t);
  store t "a";
  store t "b";
  Alcotest.(check (option json)) "immediate find"
    (Some (payload "a"))
    (C.find t (k "a"));
  let t2 = C.open_ ~dir in
  Alcotest.(check int) "both survive reopen" 2 (C.entry_count t2);
  Alcotest.(check (option json)) "payload round-trips the disk"
    (Some (payload "b"))
    (C.find t2 (k "b"));
  let r = C.recovery t2 in
  Alcotest.(check int) "no tmp swept" 0 r.C.rec_swept_tmp;
  Alcotest.(check int) "no unjournaled blobs" 0 r.C.rec_unjournaled;
  Alcotest.(check int) "no missing blobs" 0 r.C.rec_missing_blob;
  Alcotest.(check bool) "journal not torn" false r.C.rec_torn_journal;
  Alcotest.(check (pair int int)) "hit/miss counted" (1, 0) (C.hit_miss t2)

(* ---- one test per crash point ------------------------------------- *)

(* Kill the commit of "b" at [label]; "a" (committed earlier) must
   survive the reopen, "b" must not exist, and recovery must drop
   [expect_unjournaled] partial blobs. The handle that took the crash
   must also still work: a retried store of "b" commits normally. *)
let check_crash_at label ~expect_unjournaled () =
  with_tmp_dir @@ fun dir ->
  let t = C.open_ ~dir in
  store t "a";
  (match with_crash_at label (fun () -> store t "b") with
  | () -> Alcotest.failf "crash point %S never fired" label
  | exception C.Injected_crash l ->
      Alcotest.(check string) "crashed at the injected point" label l);
  Alcotest.(check bool) "in-flight entry not committed" false
    (C.mem t (k "b"));
  let t2 = C.open_ ~dir in
  Alcotest.(check bool) "committed entry survives" true (C.mem t2 (k "a"));
  Alcotest.(check bool) "in-flight entry dropped" false (C.mem t2 (k "b"));
  Alcotest.(check (option json)) "committed payload intact"
    (Some (payload "a"))
    (C.find t2 (k "a"));
  let r = C.recovery t2 in
  Alcotest.(check int) "recovery dropped only the in-flight blob"
    expect_unjournaled r.C.rec_unjournaled;
  Alcotest.(check int) "no stray temp files" 0 r.C.rec_swept_tmp;
  (* The crashed handle is not poisoned: the retry commits. *)
  store t "b";
  Alcotest.(check bool) "retry after crash commits" true (C.mem t (k "b"))

(* In-process exceptions unwind through [Atomic_io.with_file], which
   removes its temp file — so a *kill* mid-write is simulated by
   planting the orphaned temp file a real SIGKILL would leave. *)
let test_sweeps_tmp_debris () =
  with_tmp_dir @@ fun dir ->
  let t = C.open_ ~dir in
  store t "a";
  let sub = Filename.concat (Filename.concat dir "objects") "zz" in
  Support.Atomic_io.mkdir_p sub;
  let debris = Filename.concat sub "deadbeef.json.tmp-999-1" in
  Out_channel.with_open_bin debris (fun oc ->
      Out_channel.output_string oc "{\"torn\":");
  let t2 = C.open_ ~dir in
  Alcotest.(check int) "temp debris swept" 1 (C.recovery t2).C.rec_swept_tmp;
  Alcotest.(check bool) "debris file removed" false (Sys.file_exists debris);
  Alcotest.(check bool) "committed entry untouched" true (C.mem t2 (k "a"))

let test_torn_journal_drops_last_line () =
  with_tmp_dir @@ fun dir ->
  let t = C.open_ ~dir in
  store t "a";
  store t "b";
  (* A kill mid-append tears only the final line: no trailing newline. *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644
      (Filename.concat dir "journal")
  in
  output_string oc ("commit " ^ String.make 32 '0');
  close_out oc;
  let t2 = C.open_ ~dir in
  Alcotest.(check bool) "torn journal detected" true
    (C.recovery t2).C.rec_torn_journal;
  Alcotest.(check int) "earlier commits intact" 2 (C.entry_count t2);
  (* Recovery compacted the journal: reopening again is clean. *)
  let t3 = C.open_ ~dir in
  Alcotest.(check bool) "compacted journal no longer torn" false
    (C.recovery t3).C.rec_torn_journal;
  Alcotest.(check int) "still two entries" 2 (C.entry_count t3)

let test_missing_blob_dropped () =
  with_tmp_dir @@ fun dir ->
  let t = C.open_ ~dir in
  store t "a";
  store t "b";
  Sys.remove (blob_path dir (k "a"));
  let t2 = C.open_ ~dir in
  Alcotest.(check int) "journal line without blob dropped" 1
    (C.recovery t2).C.rec_missing_blob;
  Alcotest.(check bool) "vanished entry forgotten" false (C.mem t2 (k "a"));
  Alcotest.(check (option json)) "surviving entry served"
    (Some (payload "b"))
    (C.find t2 (k "b"))

let test_corrupt_blob_is_a_miss () =
  with_tmp_dir @@ fun dir ->
  let t = C.open_ ~dir in
  store t "a";
  Out_channel.with_open_bin (blob_path dir (k "a")) (fun oc ->
      Out_channel.output_string oc "not json at all");
  let t2 = C.open_ ~dir in
  Alcotest.(check (option json)) "corrupt blob reads as a miss" None
    (C.find t2 (k "a"));
  Alcotest.(check bool) "and is invalidated" false (C.mem t2 (k "a"));
  Alcotest.(check (pair int int)) "counted as a miss" (0, 1)
    (C.hit_miss t2);
  (* Invalidation unlinked the blob, so the next reopen is clean. *)
  let t3 = C.open_ ~dir in
  Alcotest.(check int) "no corpse left behind" 0 (C.entry_count t3)

(* ---- driver-level checkpoint / resume ----------------------------- *)

let mini_manifest n =
  let entries =
    List.filteri (fun i _ -> i < n) (W.tiny_suite ())
    |> List.map (fun (name, src) ->
           {
             Batch.Manifest.e_name = name;
             e_source = Batch.Manifest.Inline src;
             e_schedule = Mlt.Pipeline.Config Mlt.Pipeline.Mlt_linalg;
           })
  in
  Batch.Manifest.of_entries entries

let check_reports_match ~msg (a : Batch.Driver.report)
    (b : Batch.Driver.report) =
  List.iter2
    (fun (x : Batch.Driver.entry_result) (y : Batch.Driver.entry_result) ->
      Alcotest.(check string)
        (Printf.sprintf "%s: %s IR byte-identical" msg
           x.Batch.Driver.r_name)
        x.Batch.Driver.r_ir y.Batch.Driver.r_ir;
      Alcotest.(check string)
        (Printf.sprintf "%s: %s signature identical" msg
           x.Batch.Driver.r_name)
        (Batch.Driver.result_signature x)
        (Batch.Driver.result_signature y))
    a.Batch.Driver.rp_results b.Batch.Driver.rp_results;
  Alcotest.(check string)
    (msg ^ ": aggregate signature identical")
    (Batch.Driver.summary_signature a.Batch.Driver.rp_summary)
    (Batch.Driver.summary_signature b.Batch.Driver.rp_summary)

let test_warm_run_served_entirely_from_cache () =
  with_tmp_dir @@ fun dir ->
  let manifest = mini_manifest 3 in
  let uncached = Batch.Driver.run ~domains:1 manifest in
  let cold = Batch.Driver.run ~domains:2 ~cache:(C.open_ ~dir) manifest in
  let warm = Batch.Driver.run ~domains:2 ~cache:(C.open_ ~dir) manifest in
  Alcotest.(check (pair int int)) "cold run all misses" (0, 3)
    (cold.Batch.Driver.rp_cache_hits, cold.Batch.Driver.rp_cache_misses);
  Alcotest.(check (pair int int)) "warm run all hits" (3, 0)
    (warm.Batch.Driver.rp_cache_hits, warm.Batch.Driver.rp_cache_misses);
  List.iter
    (fun (r : Batch.Driver.entry_result) ->
      Alcotest.(check bool)
        (r.Batch.Driver.r_name ^ " flagged cached") true
        r.Batch.Driver.r_cached)
    warm.Batch.Driver.rp_results;
  check_reports_match ~msg:"cold vs uncached" uncached cold;
  check_reports_match ~msg:"warm vs uncached" uncached warm

let test_killed_run_resumes_from_checkpoints () =
  with_tmp_dir @@ fun dir ->
  let manifest = mini_manifest 3 in
  let oracle = Batch.Driver.run ~domains:1 manifest in
  (* First run: the third commit is killed after its blob rename but
     before its journal line — the worst spot, because the blob looks
     complete on disk. The entry itself still succeeds (a failed store
     is a warning), but its checkpoint never lands. *)
  let commits = ref 0 in
  C.crash_hook :=
    (fun l ->
      if l = "store:before-journal" then begin
        incr commits;
        if !commits = 3 then raise (C.Injected_crash l)
      end);
  let first =
    Fun.protect
      ~finally:(fun () -> C.crash_hook := ignore)
      (fun () ->
        Batch.Driver.run ~domains:1 ~cache:(C.open_ ~dir) manifest)
  in
  Alcotest.(check int) "interrupted run still compiles every entry" 3
    (Batch.Driver.ok_count first);
  (* Re-invoke with the same cache directory: recovery discards the
     in-flight blob, the two checkpointed entries are served, only the
     third recompiles. *)
  let t = C.open_ ~dir in
  Alcotest.(check int) "recovery dropped the in-flight blob" 1
    (C.recovery t).C.rec_unjournaled;
  Alcotest.(check int) "two checkpoints survived" 2 (C.entry_count t);
  let resumed = Batch.Driver.run ~domains:1 ~cache:t manifest in
  Alcotest.(check (pair int int)) "resume: 2 served, 1 recompiled" (2, 1)
    (resumed.Batch.Driver.rp_cache_hits,
     resumed.Batch.Driver.rp_cache_misses);
  check_reports_match ~msg:"resumed vs uncached" oracle resumed

(* Cache identity is derived from the schedule's *printed script*, not
   its name or pass list: two schedules that differ only in a tile size
   must never alias each other's entries (the v1 identity, built from
   pass names alone, did exactly that). *)
let test_different_tilings_never_alias () =
  with_tmp_dir @@ fun dir ->
  let manifest_with steps =
    Batch.Manifest.of_entries
      [
        {
          Batch.Manifest.e_name = "mm";
          e_source =
            Batch.Manifest.Inline
              (Workloads.Polybench.mm ~ni:8 ~nj:8 ~nk:8 ());
          e_schedule = Mlt.Pipeline.schedule_of_steps steps;
        };
      ]
  in
  let tile2 = manifest_with [ Transform.Script.Tile [ 2 ] ] in
  let tile4 = manifest_with [ Transform.Script.Tile [ 4 ] ] in
  Alcotest.(check bool) "distinct scripts, distinct cache identities" false
    (String.equal
       (Mlt.Pipeline.schedule_cache_identity
          (List.hd (Batch.Manifest.entries tile2)).Batch.Manifest.e_schedule)
       (Mlt.Pipeline.schedule_cache_identity
          (List.hd (Batch.Manifest.entries tile4)).Batch.Manifest.e_schedule));
  let run m = Batch.Driver.run ~domains:1 ~cache:(C.open_ ~dir) m in
  let cold2 = run tile2 in
  Alcotest.(check (pair int int)) "cold 2x2 tiling compiles" (0, 1)
    (cold2.Batch.Driver.rp_cache_hits, cold2.Batch.Driver.rp_cache_misses);
  let cold4 = run tile4 in
  Alcotest.(check (pair int int)) "4x4 tiling misses the 2x2 entry" (0, 1)
    (cold4.Batch.Driver.rp_cache_hits, cold4.Batch.Driver.rp_cache_misses);
  Alcotest.(check bool) "the two tilings produce different IR" false
    (String.equal
       (List.hd cold2.Batch.Driver.rp_results).Batch.Driver.r_ir
       (List.hd cold4.Batch.Driver.rp_results).Batch.Driver.r_ir);
  let warm2 = run tile2 in
  Alcotest.(check (pair int int)) "same tiling is served from cache" (1, 0)
    (warm2.Batch.Driver.rp_cache_hits, warm2.Batch.Driver.rp_cache_misses);
  Alcotest.(check string) "served IR byte-identical"
    (List.hd cold2.Batch.Driver.rp_results).Batch.Driver.r_ir
    (List.hd warm2.Batch.Driver.rp_results).Batch.Driver.r_ir

let suite =
  [
    Alcotest.test_case "commits persist across reopen" `Quick
      test_persistence;
    Alcotest.test_case "kill before the temp file" `Quick
      (check_crash_at "store:before-tmp" ~expect_unjournaled:0);
    Alcotest.test_case "kill mid-blob-write" `Quick
      (check_crash_at "store:mid-blob" ~expect_unjournaled:0);
    Alcotest.test_case "kill before the rename" `Quick
      (check_crash_at "store:before-rename" ~expect_unjournaled:0);
    Alcotest.test_case "kill between rename and journal line" `Quick
      (check_crash_at "store:before-journal" ~expect_unjournaled:1);
    Alcotest.test_case "kill after the journal line commits" `Quick
      (fun () ->
        (* After the journal line the entry IS committed: the crash only
           skips the in-memory bookkeeping, and reopening serves it. *)
        with_tmp_dir @@ fun dir ->
        let t = C.open_ ~dir in
        (match with_crash_at "store:after-journal" (fun () -> store t "a")
         with
        | () -> Alcotest.fail "crash point never fired"
        | exception C.Injected_crash _ -> ());
        let t2 = C.open_ ~dir in
        Alcotest.(check (option json)) "journaled entry survives"
          (Some (payload "a"))
          (C.find t2 (k "a")));
    Alcotest.test_case "orphaned temp files are swept" `Quick
      test_sweeps_tmp_debris;
    Alcotest.test_case "torn journal line is dropped" `Quick
      test_torn_journal_drops_last_line;
    Alcotest.test_case "journal line without blob is dropped" `Quick
      test_missing_blob_dropped;
    Alcotest.test_case "corrupt blob degrades to a miss" `Quick
      test_corrupt_blob_is_a_miss;
    Alcotest.test_case "warm run served entirely from cache" `Quick
      test_warm_run_served_entirely_from_cache;
    Alcotest.test_case "killed run resumes from checkpoints" `Quick
      test_killed_run_resumes_from_checkpoints;
    Alcotest.test_case "different tilings never alias in the cache" `Quick
      test_different_tilings_never_alias;
  ]
