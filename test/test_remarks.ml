(* Tests for structured remarks: the near-miss stage taxonomy the tactic
   matchers report ([--remarks=missed]), applied-rewrite remarks, warning
   routing, and the structural explain helpers. *)

open Ir

let contains = Astring_contains.contains

(* Capture every remark emitted while [f] runs. *)
let capture f =
  let rs = ref [] in
  let v = Remark.with_sink (fun r -> rs := r :: !rs) f in
  (v, List.rev !rs)

let gemm_variant stmt =
  Printf.sprintf
    "void gemm(float A[8][8], float B[8][8], float C[8][8]) {\n\
    \  for (int i = 0; i < 8; i++)\n\
    \    for (int j = 0; j < 8; j++)\n\
    \      for (int k = 0; k < 8; k++)\n\
    \        %s\n\
     }\n"
    stmt

let raise_src src =
  let m = Met.Emit_affine.translate ~file:"k.c" src in
  ignore (Mlt.Tactics.raise_to_linalg m)

let gemm_misses remarks =
  List.filter
    (fun r ->
      r.Remark.r_kind = Remark.Missed && r.Remark.r_pattern = Some "GEMM")
    remarks

(* A statement that is not a contraction at all: the op-chain stage
   rejects before any access unification happens. *)
let test_missed_op_chain () =
  let _, rs =
    capture (fun () ->
        raise_src
          (gemm_variant "C[i][j] = C[i][j] - A[i][k] * B[k][j];"))
  in
  match gemm_misses rs with
  | r :: _ ->
      Alcotest.(check (option string)) "stage" (Some "op-chain")
        r.Remark.r_stage;
      Alcotest.(check bool) "locates the nest" true
        (Support.Loc.is_known r.Remark.r_loc);
      Alcotest.(check string) "in the C source" "k.c" r.Remark.r_loc.Support.Loc.file
  | [] -> Alcotest.fail "no missed GEMM remark"

(* A proper MAC whose B subscripts are transposed: the op chain matches,
   unification of the access patterns rejects. *)
let test_missed_access_unification () =
  let _, rs =
    capture (fun () ->
        raise_src
          (gemm_variant "C[i][j] = C[i][j] + A[i][k] * B[j][k];"))
  in
  match gemm_misses rs with
  | r :: _ ->
      Alcotest.(check (option string)) "stage" (Some "access-unification")
        r.Remark.r_stage
  | [] -> Alcotest.fail "no missed GEMM remark"

(* A non-normalized nest (lb = 1): the control-flow stage rejects. *)
let test_missed_control_flow () =
  let src =
    "void gemm(float A[8][8], float B[8][8], float C[8][8]) {\n\
    \  for (int i = 1; i < 8; i++)\n\
    \    for (int j = 0; j < 8; j++)\n\
    \      for (int k = 0; k < 8; k++)\n\
    \        C[i][j] = C[i][j] + A[i][k] * B[k][j];\n\
     }\n"
  in
  let _, rs = capture (fun () -> raise_src src) in
  match gemm_misses rs with
  | r :: _ ->
      Alcotest.(check (option string)) "stage" (Some "control-flow")
        r.Remark.r_stage
  | [] -> Alcotest.fail "no missed GEMM remark"

(* An access that does not span the array (coverage stage): 8x8 loops
   over 16-column arrays. *)
let test_missed_coverage () =
  let src =
    "void gemm(float A[8][16], float B[16][16], float C[8][16]) {\n\
    \  for (int i = 0; i < 8; i++)\n\
    \    for (int j = 0; j < 8; j++)\n\
    \      for (int k = 0; k < 8; k++)\n\
    \        C[i][j] = C[i][j] + A[i][k] * B[k][j];\n\
     }\n"
  in
  let _, rs = capture (fun () -> raise_src src) in
  match gemm_misses rs with
  | r :: _ ->
      Alcotest.(check (option string)) "stage" (Some "coverage")
        r.Remark.r_stage
  | [] -> Alcotest.fail "no missed GEMM remark"

let test_applied_remarks () =
  (* W.gemm initializes C, so both raise-fill and GEMM fire. *)
  let _, rs =
    capture (fun () ->
        raise_src (Workloads.Polybench.gemm ~ni:8 ~nj:8 ~nk:8 ()))
  in
  let applied =
    List.filter (fun r -> r.Remark.r_kind = Remark.Applied) rs
  in
  Alcotest.(check bool) "GEMM applied" true
    (List.exists (fun r -> r.Remark.r_pattern = Some "GEMM") applied);
  Alcotest.(check bool) "raise-fill applied" true
    (List.exists (fun r -> r.Remark.r_pattern = Some "raise-fill") applied);
  (* On the clean kernel, GEMM reports no near-miss. *)
  Alcotest.(check int) "no missed GEMM" 0 (List.length (gemm_misses rs))

(* With no sink, the matchers skip near-miss explanation entirely; the
   guard is [Remark.enabled]. *)
let test_disabled_without_sink () =
  Alcotest.(check bool) "disabled by default" false (Remark.enabled ());
  let _, rs = capture (fun () -> Alcotest.(check bool) "enabled under sink" true (Remark.enabled ())) in
  Alcotest.(check int) "no stray remarks" 0 (List.length rs)

let test_warning_capture () =
  let (), rs =
    capture (fun () ->
        Remark.warningf ~context:"cli" "--%s is deprecated" "verify")
  in
  match rs with
  | [ r ] ->
      Alcotest.(check bool) "warning kind" true (r.Remark.r_kind = Remark.Warning);
      Alcotest.(check (option string)) "context" (Some "cli") r.Remark.r_context;
      Alcotest.(check string) "message" "--verify is deprecated"
        r.Remark.r_message
  | _ -> Alcotest.fail "expected exactly one warning"

let test_to_string_format () =
  let r =
    {
      Remark.r_kind = Remark.Missed;
      r_context = None;
      r_pattern = Some "GEMM";
      r_stage = Some "op-chain";
      r_loc = Support.Loc.make ~file:"k.c" ~line:2 ~col:3;
      r_message = "not a contraction";
    }
  in
  Alcotest.(check string) "rendering"
    "k.c:2:3: remark [missed] GEMM (stage: op-chain): not a contraction"
    (Remark.to_string r)

let test_kinds_of_string () =
  Alcotest.(check bool) "missed" true
    (Remark.kinds_of_string "missed" = Some [ Remark.Missed ]);
  Alcotest.(check bool) "applied" true
    (Remark.kinds_of_string "applied" = Some [ Remark.Applied ]);
  Alcotest.(check bool) "analysis" true
    (Remark.kinds_of_string "analysis" = Some [ Remark.Analysis ]);
  (match Remark.kinds_of_string "all" with
  | Some ks -> Alcotest.(check int) "all four" 4 (List.length ks)
  | None -> Alcotest.fail "all must parse");
  Alcotest.(check bool) "junk rejected" true
    (Remark.kinds_of_string "everything" = None)

let test_structural_explain () =
  let module S = Matchers.Structural in
  let m =
    Met.Emit_affine.translate
      (Workloads.Polybench.mm ~ni:4 ~nj:4 ~nk:4 ())
  in
  let f = Option.get (Core.find_func m "mm") in
  let loop = List.hd (Affine.Loops.top_level_loops f) in
  (* The right shape explains as Ok. *)
  (match S.explain (S.perfect ~depth:3 (fun _ -> true)) loop with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected a match, got: %s" e);
  (* Too-deep expectation names the failing constraint. *)
  (match S.explain (S.perfect ~depth:4 (fun _ -> true)) loop with
  | Ok () -> Alcotest.fail "depth-4 must not match a 3-nest"
  | Error e ->
      Alcotest.(check bool) "mentions the structural mismatch" true
        (contains e "loop" || contains e "statement"));
  (* Non-loop root. *)
  match S.explain (S.for_ S.any) f with
  | Ok () -> Alcotest.fail "func is not a loop"
  | Error e ->
      Alcotest.(check bool) "names the expected op" true
        (contains e "affine.for")

let test_explain_nest () =
  let module S = Matchers.Structural in
  let m =
    Met.Emit_affine.translate
      (Workloads.Polybench.mm ~ni:4 ~nj:4 ~nk:4 ())
  in
  let f = Option.get (Core.find_func m "mm") in
  let loop = List.hd (Affine.Loops.top_level_loops f) in
  (match S.explain_nest ~depth:3 loop with
  | Ok loops -> Alcotest.(check int) "three loops" 3 (List.length loops)
  | Error e -> Alcotest.failf "expected a 3-nest, got: %s" e);
  match S.explain_nest ~depth:2 loop with
  | Ok _ -> Alcotest.fail "a 3-nest is not a 2-nest"
  | Error e -> Alcotest.(check bool) "explains" true (String.length e > 0)

let suite =
  [
    Alcotest.test_case "missed: op-chain stage" `Quick test_missed_op_chain;
    Alcotest.test_case "missed: access-unification stage" `Quick
      test_missed_access_unification;
    Alcotest.test_case "missed: control-flow stage" `Quick
      test_missed_control_flow;
    Alcotest.test_case "missed: coverage stage" `Quick test_missed_coverage;
    Alcotest.test_case "applied remarks on the clean kernel" `Quick
      test_applied_remarks;
    Alcotest.test_case "disabled without a sink" `Quick
      test_disabled_without_sink;
    Alcotest.test_case "warnings become structured remarks" `Quick
      test_warning_capture;
    Alcotest.test_case "to_string rendering" `Quick test_to_string_format;
    Alcotest.test_case "kinds_of_string" `Quick test_kinds_of_string;
    Alcotest.test_case "Structural.explain" `Quick test_structural_explain;
    Alcotest.test_case "Structural.explain_nest" `Quick test_explain_nest;
  ]
