(* Unit and property tests for affine expressions and maps. *)

module E = Ir.Affine_expr
module M = Ir.Affine_map

let check_expr msg expected actual =
  Alcotest.(check string) msg expected (E.to_string (E.simplify actual))

let test_simplify_constants () =
  check_expr "1+2" "3" E.(add (const 1) (const 2));
  check_expr "2*3" "6" E.(mul (const 2) (const 3));
  check_expr "7 fdiv 2" "3" E.(floor_div (const 7) (const 2));
  check_expr "-7 fdiv 2" "-4" E.(floor_div (const (-7)) (const 2));
  check_expr "-7 mod 2" "1" E.(mod_ (const (-7)) (const 2));
  check_expr "0*d0" "0" E.(mul (const 0) (dim 0));
  check_expr "d0*1" "d0" E.(mul (dim 0) (const 1))

let test_simplify_linear () =
  check_expr "d0+d0" "2 * d0" E.(add (dim 0) (dim 0));
  check_expr "d0-d0" "0" E.(sub (dim 0) (dim 0));
  check_expr "2*(d0+d1)" "2 * d0 + 2 * d1" E.(mul (const 2) (add (dim 0) (dim 1)));
  check_expr "(d0+1)+(d0+2)" "2 * d0 + 3"
    E.(add (add (dim 0) (const 1)) (add (dim 0) (const 2)))

let test_eval () =
  let e = E.(add (mul (const 2) (dim 0)) (add (dim 1) (const 5))) in
  Alcotest.(check int) "2*3+4+5" 15 (E.eval ~dims:[| 3; 4 |] ~syms:[||] e);
  let fd = E.(floor_div (dim 0) (const 4)) in
  Alcotest.(check int) "floor(-5/4)" (-2) (E.eval ~dims:[| -5 |] ~syms:[||] fd);
  let md = E.(mod_ (dim 0) (const 4)) in
  Alcotest.(check int) "(-5) mod 4" 3 (E.eval ~dims:[| -5 |] ~syms:[||] md)

let test_floor_semantics_sign_grid () =
  (* floordiv rounds toward -inf and floormod carries the divisor's sign,
     for every sign combination — including negative divisors, which the
     pre-floor implementation got wrong. *)
  let grid = [ (7, 2, 3, 1); (-7, 2, -4, 1); (7, -2, -4, -1);
               (-7, -2, 3, -1); (6, 3, 2, 0); (-6, 3, -2, 0);
               (6, -3, -2, 0); (-6, -3, 2, 0) ] in
  List.iter
    (fun (x, y, q, r) ->
      Alcotest.(check int) (Printf.sprintf "floordiv %d %d" x y) q
        (E.floordiv x y);
      Alcotest.(check int) (Printf.sprintf "floormod %d %d" x y) r
        (E.floormod x y);
      Alcotest.(check int) "identity x = y*q + r" x ((y * q) + r);
      (* Constant folding and eval agree with the reference arithmetic. *)
      check_expr (Printf.sprintf "fold %d fdiv %d" x y) (string_of_int q)
        E.(floor_div (const x) (const y));
      check_expr (Printf.sprintf "fold %d mod %d" x y) (string_of_int r)
        E.(mod_ (const x) (const y));
      Alcotest.(check int) "eval fdiv" q
        (E.eval ~dims:[| x |] ~syms:[||] E.(Floor_div (Dim 0, Const y)));
      Alcotest.(check int) "eval mod" r
        (E.eval ~dims:[| x |] ~syms:[||] E.(Mod (Dim 0, Const y))))
    grid;
  (* mod by +-1 is identically zero. *)
  check_expr "d0 mod 1" "0" E.(mod_ (dim 0) (const 1));
  check_expr "d0 mod -1" "0" E.(mod_ (dim 0) (const (-1)));
  Alcotest.check_raises "fdiv by zero"
    (Invalid_argument "Affine_expr.floordiv: division by zero") (fun () ->
      ignore (E.floordiv 3 0));
  Alcotest.check_raises "mod by zero"
    (Invalid_argument "Affine_expr.floormod: modulo by zero") (fun () ->
      ignore (E.floormod 3 0))

let test_single_dim () =
  let check msg e expected =
    Alcotest.(check (option (triple int int int))) msg expected (E.is_single_dim e)
  in
  check "d0" (E.dim 0) (Some (1, 0, 0));
  check "2*d1+1" E.(add (mul (const 2) (dim 1)) (const 1)) (Some (2, 1, 1));
  check "d0+d1" E.(add (dim 0) (dim 1)) None;
  check "const" (E.const 3) None;
  check "d0 mod 2" E.(Mod (dim 0, const 2)) None

let test_used_dims () =
  let e = E.(add (mul (const 2) (dim 3)) (dim 1)) in
  Alcotest.(check (list int)) "dims" [ 1; 3 ] (E.used_dims e);
  Alcotest.(check int) "max_dim" 4 (E.max_dim e)

let test_map_identity_compose () =
  let id3 = M.identity 3 in
  Alcotest.(check bool) "identity" true (M.is_identity id3);
  let perm = M.permutation [| 0; 2; 1 |] in
  Alcotest.(check bool) "perm not id" false (M.is_identity perm);
  let back = M.compose perm perm in
  Alcotest.(check bool) "perm o perm = id" true (M.is_identity back)

let test_map_eval_permutation () =
  let perm = M.permutation [| 2; 0; 1 |] in
  let r = M.eval perm ~dims:[| 10; 20; 30 |] () in
  Alcotest.(check (array int)) "apply" [| 30; 10; 20 |] r;
  match M.is_permutation perm with
  | Some p ->
      Alcotest.(check (array int)) "roundtrip" [| 2; 0; 1 |] p;
      let q = M.inverse_permutation p in
      Array.iteri
        (fun i pi -> Alcotest.(check int) "inverse" i q.(pi))
        p
  | None -> Alcotest.fail "expected permutation"

let test_map_ranges () =
  Alcotest.check_raises "out of range dim"
    (Invalid_argument "Affine_map: dim d2 out of range (n_dims=2)")
    (fun () -> ignore (M.make ~n_dims:2 [ E.dim 2 ]))

(* Property: simplify is idempotent and preserves evaluation. *)
let arb_expr =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.map E.dim (Gen.int_bound 2);
        Gen.map E.const (Gen.int_range (-10) 10);
      ]
  in
  let gen =
    Gen.sized (fun n ->
        Gen.fix
          (fun self n ->
            if n <= 1 then leaf
            else
              Gen.oneof
                [
                  leaf;
                  Gen.map2 (fun a b -> E.Add (a, b)) (self (n / 2)) (self (n / 2));
                  Gen.map2 (fun a b -> E.Mul (a, b)) (self (n / 2)) (self (n / 2));
                  Gen.map
                    (fun a -> E.Floor_div (a, E.Const 3))
                    (self (n - 1));
                  Gen.map (fun a -> E.Mod (a, E.Const 5)) (self (n - 1));
                ])
          (min n 12))
  in
  QCheck.make ~print:E.to_string gen

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify idempotent" ~count:500 arb_expr (fun e ->
      E.equal (E.simplify e) (E.simplify (E.simplify e)))

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:500
    (QCheck.pair arb_expr (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat))
    (fun (e, (a, b, c)) ->
      let dims = [| a; b; c |] in
      E.eval ~dims ~syms:[||] e = E.eval ~dims ~syms:[||] (E.simplify e))

let prop_linearize_agrees =
  QCheck.Test.make ~name:"linear form preserves evaluation" ~count:500
    (QCheck.pair arb_expr (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat))
    (fun (e, (a, b, c)) ->
      match E.linearize e with
      | None -> QCheck.assume_fail ()
      | Some l ->
          let dims = [| a; b; c |] in
          E.eval ~dims ~syms:[||] (E.of_linear l) = E.eval ~dims ~syms:[||] e)

let prop_compile_agrees_with_eval =
  QCheck.Test.make ~name:"staged compile agrees with eval" ~count:500
    (QCheck.pair arb_expr
       (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat))
    (fun (e, (a, b, c)) ->
      let dims = [| a; b; c |] in
      E.compile e dims = E.eval ~dims ~syms:[||] e)

let prop_map_compile_agrees_with_eval =
  QCheck.Test.make ~name:"staged map compile agrees with map eval" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 4) arb_expr)
       (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat))
    (fun (exprs, (a, b, c)) ->
      let m = M.make ~n_dims:3 exprs in
      let dims = [| a; b; c |] in
      let out = Array.make (List.length exprs) 0 in
      M.compile m dims out;
      out = M.eval m ~dims ())

let suite =
  [
    Alcotest.test_case "simplify constants" `Quick test_simplify_constants;
    Alcotest.test_case "simplify linear" `Quick test_simplify_linear;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "floor div/mod sign grid" `Quick
      test_floor_semantics_sign_grid;
    Alcotest.test_case "is_single_dim" `Quick test_single_dim;
    Alcotest.test_case "used dims" `Quick test_used_dims;
    Alcotest.test_case "map identity/compose" `Quick test_map_identity_compose;
    Alcotest.test_case "map eval permutation" `Quick test_map_eval_permutation;
    Alcotest.test_case "map range checks" `Quick test_map_ranges;
    QCheck_alcotest.to_alcotest prop_simplify_idempotent;
    QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
    QCheck_alcotest.to_alcotest prop_linearize_agrees;
    QCheck_alcotest.to_alcotest prop_compile_agrees_with_eval;
    QCheck_alcotest.to_alcotest prop_map_compile_agrees_with_eval;
  ]
