(* Hash-consing (ISSUE 8): canonical-node guarantees of the interners
   behind Typ/Attr/Affine_expr/Affine_map, the construction chokepoints
   in Core that make all IR carry canonical nodes, the 4-domain safety of
   the shared tables, and the compiled matcher automaton's conservative
   pruning. *)

open Ir
module W = Workloads.Polybench

(* ---- structural equality implies physical equality ----------------- *)

(* Generators produce values through the plain constructors (no interning),
   and [clone] rebuilds a structurally equal value sharing no nodes, so a
   physical match after [intern] can only come from the table. *)
let gen_typ =
  let open QCheck.Gen in
  let scalar =
    oneofl [ Typ.F32; Typ.F64; Typ.I1; Typ.I32; Typ.I64; Typ.Index ]
  in
  let dim =
    oneof [ return Typ.Dynamic; map (fun n -> Typ.Static n) (int_range 1 64) ]
  in
  let memref =
    let* shape = list_size (int_range 1 4) dim in
    let* elem = scalar in
    return (Typ.Mem_ref (shape, elem))
  in
  let leaf = oneof [ scalar; memref ] in
  let* args = list_size (int_range 0 3) leaf in
  let* results = list_size (int_range 0 2) leaf in
  oneof [ leaf; return (Typ.Fun (args, results)) ]

let rec clone_typ = function
  | (Typ.F32 | Typ.F64 | Typ.I1 | Typ.I32 | Typ.I64 | Typ.Index) as t -> t
  | Typ.Mem_ref (shape, elem) ->
      Typ.Mem_ref
        ( List.map
            (function Typ.Static n -> Typ.Static n | Typ.Dynamic -> Typ.Dynamic)
            shape,
          clone_typ elem )
  | Typ.Fun (args, results) ->
      Typ.Fun (List.map clone_typ args, List.map clone_typ results)

let prop_typ_intern =
  QCheck.Test.make ~name:"equal-by-structure types intern to one node"
    ~count:200
    (QCheck.make ~print:Typ.to_string gen_typ)
    (fun t ->
      let a = Typ.intern t and b = Typ.intern (clone_typ t) in
      a == b && Typ.equal a t)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map Affine_expr.dim (int_range 0 3);
        map Affine_expr.const (int_range (-8) 8);
      ]
  in
  let node a b =
    oneofl
      [
        Affine_expr.Add (a, b);
        Affine_expr.Mul (a, b);
        Affine_expr.Floor_div (a, b);
        Affine_expr.Mod (a, b);
      ]
  in
  let* a = leaf and* b = leaf and* c = leaf in
  let* ab = node a b in
  oneof [ leaf; return ab; node ab c ]

let rec clone_expr = function
  | Affine_expr.Dim i -> Affine_expr.Dim i
  | Affine_expr.Sym i -> Affine_expr.Sym i
  | Affine_expr.Const c -> Affine_expr.Const c
  | Affine_expr.Add (a, b) -> Affine_expr.Add (clone_expr a, clone_expr b)
  | Affine_expr.Mul (a, b) -> Affine_expr.Mul (clone_expr a, clone_expr b)
  | Affine_expr.Floor_div (a, b) ->
      Affine_expr.Floor_div (clone_expr a, clone_expr b)
  | Affine_expr.Mod (a, b) -> Affine_expr.Mod (clone_expr a, clone_expr b)

let prop_expr_intern =
  QCheck.Test.make ~name:"equal-by-structure exprs intern to one node"
    ~count:200
    (QCheck.make ~print:Affine_expr.to_string gen_expr)
    (fun e ->
      let a = Affine_expr.intern e
      and b = Affine_expr.intern (clone_expr e) in
      a == b && Affine_expr.equal a e)

let prop_map_intern =
  QCheck.Test.make
    ~name:"equal-by-structure maps are one node straight out of make"
    ~count:200
    (QCheck.make
       ~print:(fun es ->
         String.concat ", " (List.map Affine_expr.to_string es))
       QCheck.Gen.(list_size (int_range 1 3) gen_expr))
    (fun exprs ->
      (* [make] interns, so two independent constructions of structurally
         equal maps must already be physically equal. *)
      let a = Affine_map.make ~n_dims:4 exprs
      and b = Affine_map.make ~n_dims:4 (List.map clone_expr exprs) in
      a == b)

(* ---- parse/print round-trips land on the same nodes ----------------- *)

let test_parse_roundtrip_shares_nodes () =
  let m1 = Met.Emit_affine.translate (W.gemm ~ni:6 ~nj:5 ~nk:4 ()) in
  let text = Printer.op_to_string m1 in
  let p1 = Parser.parse_module text and p2 = Parser.parse_module text in
  let collect root =
    let types = ref [] and attrs = ref [] in
    Core.walk root (fun op ->
        Array.iter (fun (v : Core.value) -> types := v.v_typ :: !types)
          op.o_results;
        List.iter (fun (_, a) -> attrs := a :: !attrs) op.o_attrs);
    (!types, !attrs)
  in
  let t1, a1 = collect p1 and t2, a2 = collect p2 in
  Alcotest.(check bool) "modules have types" true (t1 <> []);
  List.iter2
    (fun x y ->
      if x != y then
        Alcotest.failf "type %s parsed to two distinct nodes"
          (Typ.to_string x))
    t1 t2;
  List.iter2
    (fun x y ->
      if x != y then
        Alcotest.failf "attr %s parsed to two distinct nodes"
          (Attr.to_string x))
    a1 a2;
  (* And the canonical node is what [intern] answers for a fresh copy. *)
  List.iter
    (fun t ->
      if Typ.intern (clone_typ t) != t then
        Alcotest.failf "parsed type %s is not canonical" (Typ.to_string t))
    t1

(* ---- float corner cases in the attribute interner ------------------- *)

let test_float_zero_signs_stay_distinct () =
  let pos = Attr.intern (Attr.Float 0.0)
  and neg = Attr.intern (Attr.Float (-0.0)) in
  (* [-0.] and [0.] print differently, so merging them would change
     emitted IR; the interner keys floats bitwise. *)
  Alcotest.(check bool) "distinct canonical nodes" true (pos != neg);
  Alcotest.(check string) "+0. prints as before" "0x0p+0"
    (Attr.to_string pos);
  Alcotest.(check string) "-0. prints as before" "-0x0p+0"
    (Attr.to_string neg)

let test_nan_interns_once () =
  let a = Attr.intern (Attr.Float Float.nan)
  and b = Attr.intern (Attr.Float Float.nan) in
  (* Same NaN payload -> one node (IEEE [=] never matches NaN, so a
     value-keyed table would grow a node per probe). Physical equality
     then makes [Attr.equal] true for the shared node — NaN attribute
     equality is effectively bitwise once interned, as in MLIR — while
     structurally distinct NaN boxes that never met the interner still
     compare false. *)
  Alcotest.(check bool) "one canonical NaN node" true (a == b);
  Alcotest.(check bool) "canonical NaN node equals itself" true
    (Attr.equal a b);
  Alcotest.(check bool) "un-interned NaN boxes keep IEEE semantics" false
    (Attr.equal (Attr.Float Float.nan) (Attr.Float Float.nan))

let test_attr_list_equal_lengths () =
  let open Attr in
  Alcotest.(check bool) "equal lists" true
    (equal (List [ Int 1; Str "x" ]) (List [ Int 1; Str "x" ]));
  Alcotest.(check bool) "prefix is not equal" false
    (equal (List [ Int 1 ]) (List [ Int 1; Int 2 ]));
  Alcotest.(check bool) "suffix is not equal" false
    (equal (List [ Int 1; Int 2 ]) (List [ Int 2 ]));
  Alcotest.(check bool) "nested lengths" false
    (equal
       (List [ List [ Int 1; Int 2 ] ])
       (List [ List [ Int 1 ] ]))

(* ---- 4-domain stress ------------------------------------------------ *)

let test_four_domain_stress () =
  (* Every domain interns fresh structural copies of a shared battery of
     types and maps, racing the lock-free hit path against concurrent
     inserts; all domains must agree on one canonical node per spec, and
     re-interning afterwards must not grow the tables (no duplicate or
     torn entries). Unique-per-domain keys force genuinely concurrent
     inserts alongside the shared probes. *)
  let specs =
    [|
      (fun () -> Typ.Mem_ref ([ Typ.Static 64; Typ.Static 64 ], Typ.F64));
      (fun () ->
        Typ.Mem_ref ([ Typ.Dynamic; Typ.Static 8; Typ.Static 4 ], Typ.F32));
      (fun () -> Typ.Fun ([ Typ.Index; Typ.F64 ], [ Typ.F64 ]));
      (fun () ->
        Typ.Mem_ref
          ( [ Typ.Static 2; Typ.Static 3; Typ.Static 4; Typ.Static 5 ],
            Typ.I32 ));
    |]
  in
  let iterations = 2_000 in
  let burst d =
    let canon = Array.map (fun spec -> Typ.intern (spec ())) specs in
    for i = 1 to iterations do
      Array.iteri
        (fun s spec ->
          let t = Typ.intern (spec ()) in
          if t != canon.(s) then
            Alcotest.failf "domain %d saw two canonical nodes for %s" d
              (Typ.to_string t))
        specs;
      (* Distinct per-domain-per-iteration keys: concurrent inserts. *)
      ignore
        (Typ.intern
           (Typ.Mem_ref ([ Typ.Static ((d * iterations) + i) ], Typ.F32)));
      ignore
        (Affine_map.make ~n_dims:2
           [ Affine_expr.dim (i land 1); Affine_expr.dim ((i + 1) land 1) ])
    done;
    canon
  in
  let others = List.init 3 (fun d -> Domain.spawn (fun () -> burst (d + 1))) in
  let mine = burst 0 in
  let all = mine :: List.map Domain.join others in
  List.iteri
    (fun d canon ->
      Array.iteri
        (fun s t ->
          if t != mine.(s) then
            Alcotest.failf "domain %d disagrees on canonical node %d" d s)
        canon)
    all;
  (* Tables are settled: re-interning the whole battery hits every time. *)
  let before = (Typ.interner_stats ()).Support.Intern.size in
  Array.iter (fun spec -> ignore (Typ.intern (spec ()))) specs;
  for d = 0 to 3 do
    for i = 1 to iterations do
      ignore
        (Typ.intern
           (Typ.Mem_ref ([ Typ.Static ((d * iterations) + i) ], Typ.F32)))
    done
  done;
  let after = (Typ.interner_stats ()).Support.Intern.size in
  Alcotest.(check int) "no duplicates slipped into the table" before after

(* ---- compiled matcher automaton ------------------------------------- *)

let nop_pattern ~name ?benefit ?roots ?prefix () =
  Rewriter.pattern ~name ?benefit ?roots ?prefix (fun _ _ -> false)

let names ps = List.map (fun p -> p.Rewriter.p_name) ps

let test_prefix_operand_pruning () =
  let pa =
    nop_pattern ~name:"intern-test-binary" ~benefit:2
      ~roots:(Rewriter.Roots [ "test.op" ])
      ~prefix:(Rewriter.prefix ~operands:2 ())
      ()
  in
  let pb =
    nop_pattern ~name:"intern-test-anyarity"
      ~roots:(Rewriter.Roots [ "test.op" ])
      ()
  in
  let fz = Rewriter.freeze [ pb; pa ] in
  let v = Core.create_op ~result_types:[ Typ.F32 ] "test.const" in
  let unary = Core.create_op ~operands:[ Core.result v 0 ] "test.op" in
  let binary =
    Core.create_op
      ~operands:[ Core.result v 0; Core.result v 0 ]
      "test.op"
  in
  Alcotest.(check (list string))
    "unary op prunes the binary-only pattern"
    [ "intern-test-anyarity" ]
    (names (Rewriter.Frozen.candidates_for fz unary));
  Alcotest.(check (list string))
    "binary op keeps both, benefit first"
    [ "intern-test-binary"; "intern-test-anyarity" ]
    (names (Rewriter.Frozen.candidates_for fz binary));
  Alcotest.(check (list string))
    "name-only view is prefix-blind"
    [ "intern-test-binary"; "intern-test-anyarity" ]
    (names (Rewriter.Frozen.candidates fz "test.op"));
  (* relax forgets prefixes and roots. *)
  let rel = Rewriter.Frozen.relax fz in
  Alcotest.(check (list string))
    "relaxed dispatch attempts everything"
    [ "intern-test-binary"; "intern-test-anyarity" ]
    (names (Rewriter.Frozen.candidates_for rel unary))

let test_prefix_nest_depth_pruning () =
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let func = List.hd (Core.ops_of_block (Core.module_block m)) in
  let top = List.hd (Affine.Loops.top_level_loops func) in
  let depth = List.length (Affine.Loops.perfect_nest top) in
  Alcotest.(check int) "mm translates to a 3-deep nest" 3 depth;
  let at d =
    nop_pattern
      ~name:(Printf.sprintf "intern-test-depth%d" d)
      ~roots:(Rewriter.Roots [ "affine.for" ])
      ~prefix:
        (Rewriter.prefix ~nest_depth:d ~nest_ignore:[ "affine.yield" ] ())
      ()
  in
  let unconstrained =
    nop_pattern ~name:"intern-test-anydepth"
      ~roots:(Rewriter.Roots [ "affine.for" ])
      ()
  in
  let fz = Rewriter.freeze [ at 2; at 3; at 7; unconstrained ] in
  Alcotest.(check (list string))
    "only the exact depth and the unconstrained pattern survive"
    [ "intern-test-depth3"; "intern-test-anydepth" ]
    (names (Rewriter.Frozen.candidates_for fz top));
  (* The second loop of the nest roots a 2-deep perfect nest. *)
  let inner = List.nth (Affine.Loops.perfect_nest top) 1 in
  Alcotest.(check (list string))
    "inner loop selects the depth-2 branch"
    [ "intern-test-depth2"; "intern-test-anydepth" ]
    (names (Rewriter.Frozen.candidates_for fz inner))

let raising_set () =
  Mlt.Tactics.all ()
  @ Transforms.Canonicalize.patterns ()
  @ [ Transforms.Dce.pattern () ]

let test_compiled_matches_relaxed () =
  (* The compiled automaton must be pure pruning: byte-identical IR and
     rewrite counts vs relaxed (unindexed, prefix-less) dispatch, with
     fewer match attempts. *)
  Mlt.Pipeline.register_dialects ();
  let run fz src =
    let m = Met.Emit_affine.translate src in
    let attempts0, rewrites0 = Rewriter.counter_totals () in
    let n = Rewriter.apply_greedily m fz in
    let attempts1, rewrites1 = Rewriter.counter_totals () in
    (Printer.op_to_string m, n, attempts1 - attempts0, rewrites1 - rewrites0)
  in
  let compiled = Rewriter.freeze (raising_set ()) in
  let relaxed = Rewriter.Frozen.relax compiled in
  let stripped = Rewriter.Frozen.strip_prefixes compiled in
  List.iter
    (fun (name, src) ->
      let ir_c, n_c, att_c, rw_c = run compiled src in
      let ir_r, n_r, att_r, rw_r = run relaxed src in
      let ir_s, n_s, att_s, rw_s = run stripped src in
      Alcotest.(check string) (name ^ ": IR identical (relaxed)") ir_r ir_c;
      Alcotest.(check string) (name ^ ": IR identical (stripped)") ir_s ir_c;
      Alcotest.(check int) (name ^ ": applications identical") n_r n_c;
      Alcotest.(check int) (name ^ ": applications identical") n_s n_c;
      Alcotest.(check int) (name ^ ": rewrites identical") rw_r rw_c;
      Alcotest.(check int) (name ^ ": rewrites identical") rw_s rw_c;
      if not (att_c <= att_s && att_s <= att_r) then
        Alcotest.failf
          "%s: attempts not monotone: compiled %d, stripped %d, relaxed %d"
          name att_c att_s att_r)
    (W.tiny_suite ())

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_typ_intern; prop_expr_intern; prop_map_intern ]
  @ [
      Alcotest.test_case "parse round-trip shares canonical nodes" `Quick
        test_parse_roundtrip_shares_nodes;
      Alcotest.test_case "-0.0 and 0.0 stay distinct nodes" `Quick
        test_float_zero_signs_stay_distinct;
      Alcotest.test_case "NaN attrs intern to one node" `Quick
        test_nan_interns_once;
      Alcotest.test_case "Attr.equal list lengths" `Quick
        test_attr_list_equal_lengths;
      Alcotest.test_case "4-domain interning stress" `Quick
        test_four_domain_stress;
      Alcotest.test_case "prefix automaton: operand arity" `Quick
        test_prefix_operand_pruning;
      Alcotest.test_case "prefix automaton: nest depth" `Quick
        test_prefix_nest_depth_pruning;
      Alcotest.test_case "compiled dispatch = relaxed dispatch" `Quick
        test_compiled_matches_relaxed;
    ]
