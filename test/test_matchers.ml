(* Tests for structural, operation and access-pattern matchers. *)

open Ir
module S = Matchers.Structural
module OM = Matchers.Op_match
module Ac = Matchers.Access
module A = Affine.Affine_ops
module W = Workloads.Polybench

let func_of_src ?(name = "mm") src =
  let m = Met.Emit_affine.translate src in
  Option.get (Core.find_func m name)

let innermost_body f =
  let nest = List.hd (Affine.Loops.top_level_loops f) in
  let loops = Affine.Loops.perfect_nest nest in
  A.for_body (List.nth loops (List.length loops - 1))

(* --- structural ----------------------------------------------------- *)

let test_structural_gemm () =
  let f = func_of_src (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let top = List.hd (Affine.Loops.top_level_loops f) in
  Alcotest.(check bool) "depth 3 matches" true
    (S.matches (S.perfect ~depth:3 (fun _ -> true)) top);
  Alcotest.(check bool) "depth 2 fails" false
    (S.matches (S.perfect ~depth:2 (fun _ -> true)) top);
  Alcotest.(check bool) "depth 4 fails" false
    (S.matches (S.perfect ~depth:4 (fun _ -> true)) top);
  (* Filtering callback: reject nests whose innermost body is too big. *)
  Alcotest.(check bool) "callback is honoured" false
    (S.matches (S.perfect ~depth:3 (fun _ -> false)) top)

let test_structural_is_mac () =
  (* The paper's Listing 5: a 2-d nest whose body is a MAC. *)
  let f = func_of_src ~name:"f"
      "void f(float A[4][4], float B[4][4]) { for (int i = 0; i < 4; ++i) \
       for (int j = 0; j < 4; ++j) A[i][j] = A[i][j] + B[i][j] * 2.0; }"
  in
  let is_mac (b : Core.block) =
    match List.rev (Core.ops_of_block b) with
    | _yield :: store :: _ when A.is_store store ->
        let a = ref None and bb = ref None and c = ref None in
        let mac =
          OM.op_commutative "arith.addf"
            [ OM.capt a; OM.op_commutative "arith.mulf" [ OM.capt bb; OM.capt c ] ]
        in
        OM.matches mac (A.stored_value store)
    | _ -> false
  in
  let top = List.hd (Affine.Loops.top_level_loops f) in
  Alcotest.(check bool) "For(For(isMAC))" true
    (S.matches (S.for_ (S.for_ (S.body is_mac))) top)

(* --- op matchers ----------------------------------------------------- *)

let with_mac_value k =
  (* Build: r = addf (mulf x y) z inside a tiny function. *)
  let f = Core.create_func ~name:"t" ~arg_types:[] () in
  let b = Builder.at_end (Core.func_entry f) in
  let x = Std_dialect.Arith.constant_float b 1. in
  let y = Std_dialect.Arith.constant_float b 2. in
  let z = Std_dialect.Arith.constant_float b 3. in
  let m = Std_dialect.Arith.mulf b x y in
  let r = Std_dialect.Arith.addf b m z in
  k ~x ~y ~z ~m ~r

let test_op_match_shapes () =
  with_mac_value (fun ~x ~y:_ ~z:_ ~m:_ ~r ->
      (* Non-commutative matcher in the written order: add(mul, z). *)
      let pat_fixed = OM.op "arith.addf" [ OM.op "arith.mulf" [ OM.any; OM.any ]; OM.any ] in
      Alcotest.(check bool) "fixed order matches" true (OM.matches pat_fixed r);
      (* The paper's shape add(a, mul(b, c)) only matches commutatively. *)
      let pat_paper = OM.op "arith.addf" [ OM.any; OM.op "arith.mulf" [ OM.any; OM.any ] ] in
      Alcotest.(check bool) "swapped order fails rigidly" false
        (OM.matches pat_paper r);
      let pat_comm =
        OM.op_commutative "arith.addf"
          [ OM.any; OM.op "arith.mulf" [ OM.any; OM.any ] ]
      in
      Alcotest.(check bool) "commutative matches" true (OM.matches pat_comm r);
      (* Specific value operand. *)
      let pat_val =
        OM.op "arith.addf" [ OM.op "arith.mulf" [ OM.value x; OM.any ]; OM.any ]
      in
      Alcotest.(check bool) "value pin matches" true (OM.matches pat_val r))

let test_op_match_capture () =
  with_mac_value (fun ~x:_ ~y:_ ~z ~m ~r ->
      let ca = ref None and cm = ref None in
      let pat =
        OM.op "arith.addf" [ OM.capture cm (OM.op "arith.mulf" [ OM.any; OM.any ]); OM.capt ca ]
      in
      Alcotest.(check bool) "matches" true (OM.matches pat r);
      (match !ca with
      | Some v -> Alcotest.(check bool) "captured z" true (Core.value_equal v z)
      | None -> Alcotest.fail "no capture");
      match !cm with
      | Some v -> Alcotest.(check bool) "captured mul" true (Core.value_equal v m)
      | None -> Alcotest.fail "no capture")

let test_op_match_custom_def () =
  (* Plug a fake defining relation: every value is "defined" by one op. *)
  with_mac_value (fun ~x ~y:_ ~z:_ ~m:_ ~r:_ ->
      let fake = Core.create_op ~operands:[] "fake.op" in
      let def _ = Some fake in
      Alcotest.(check bool) "custom def relation" true
        (OM.matches ~def (OM.op "fake.op" []) x))

(* --- access matchers -------------------------------------------------- *)

let gemm_pattern ctx =
  let i = Ac.placeholder ctx
  and j = Ac.placeholder ctx
  and k = Ac.placeholder ctx in
  let _C = Ac.array_placeholder ctx in
  let _A = Ac.array_placeholder ctx in
  let _B = Ac.array_placeholder ctx in
  let pat =
    Ac.Contraction
      {
        out = Ac.access _C [ Ac.p i; Ac.p j ];
        in1 = Ac.access _A [ Ac.p i; Ac.p k ];
        in2 = Ac.access _B [ Ac.p k; Ac.p j ];
      }
  in
  (pat, (i, j, k), (_C, _A, _B))

let test_access_gemm_matches () =
  let f = func_of_src (W.mm ~ni:4 ~nj:5 ~nk:6 ()) in
  let body = innermost_body f in
  let ctx = Ac.create_ctx () in
  let pat, (i, j, k), (_C, _A, _B) = gemm_pattern ctx in
  Alcotest.(check bool) "matches" true (Ac.match_block ctx pat body);
  (* Check the solution: extents from the loops. *)
  Alcotest.(check (option int)) "i extent" (Some 4) (Ac.solution_extent ctx i);
  Alcotest.(check (option int)) "j extent" (Some 5) (Ac.solution_extent ctx j);
  Alcotest.(check (option int)) "k extent" (Some 6) (Ac.solution_extent ctx k);
  (* Arrays resolve to the function arguments. *)
  let args = Core.func_args f in
  Alcotest.(check bool) "A bound" true
    (Core.value_equal (Ac.array_of ctx _A) (List.nth args 0));
  Alcotest.(check bool) "B bound" true
    (Core.value_equal (Ac.array_of ctx _B) (List.nth args 1));
  Alcotest.(check bool) "C bound" true
    (Core.value_equal (Ac.array_of ctx _C) (List.nth args 2))

let test_access_ctx_single_use () =
  (* A ctx is consumed by match_block: a second match with the same ctx
     must raise (it would silently clobber the solution bindings), and
     reset_ctx re-arms it. *)
  let f = func_of_src (W.mm ~ni:4 ~nj:5 ~nk:6 ()) in
  let body = innermost_body f in
  let ctx = Ac.create_ctx () in
  let pat, _, _ = gemm_pattern ctx in
  Alcotest.(check bool) "first match" true (Ac.match_block ctx pat body);
  (match Support.Diag.wrap (fun () -> Ac.match_block ctx pat body) with
  | Ok _ -> Alcotest.fail "expected an error on ctx reuse"
  | Error msg ->
      Alcotest.(check bool) "mentions consumption" true
        (Astring_contains.contains msg "consumed"));
  Ac.reset_ctx ctx;
  Alcotest.(check bool) "matches again after reset" true
    (Ac.match_block ctx pat body)

let test_access_gemm_misses_darknet () =
  (* Figure 8: the 2-d pattern must not match linearized accesses. *)
  let f = func_of_src ~name:"darknet_gemm" (W.darknet_gemm ~m:4 ~n:4 ~k:4 ()) in
  let body = innermost_body f in
  let ctx = Ac.create_ctx () in
  let pat, _, _ = gemm_pattern ctx in
  Alcotest.(check bool) "no match" false (Ac.match_block ctx pat body)

let test_access_linearized_pattern_matches_darknet () =
  (* A rank-1 pattern with explicit strides does match Darknet. *)
  let n = 4 in
  let f = func_of_src ~name:"darknet_gemm" (W.darknet_gemm ~m:n ~n ~k:n ()) in
  let body = innermost_body f in
  let ctx = Ac.create_ctx () in
  let i = Ac.placeholder ctx
  and j = Ac.placeholder ctx
  and k = Ac.placeholder ctx in
  let _C = Ac.array_placeholder ctx in
  let _A = Ac.array_placeholder ctx in
  let _B = Ac.array_placeholder ctx in
  let lin a b = Ac.padd (Ac.term ~coeff:n a) (Ac.p b) in
  let pat =
    Ac.Contraction
      {
        out = Ac.access _C [ lin i j ];
        in1 = Ac.access _A [ lin i k ];
        in2 = Ac.access _B [ lin k j ];
      }
  in
  Alcotest.(check bool) "matches" true (Ac.match_block ctx pat body)

let test_access_transposed_matvec () =
  (* y(j) += A(i,j) * x(i): subscripts force the transposed binding. *)
  let src =
    "void f(float A[4][6], float x[4], float y[6]) { for (int i = 0; i < 4; \
     ++i) for (int j = 0; j < 6; ++j) y[j] += A[i][j] * x[i]; }"
  in
  let f = func_of_src ~name:"f" src in
  let body = innermost_body f in
  let ctx = Ac.create_ctx () in
  let i = Ac.placeholder ctx and j = Ac.placeholder ctx in
  let _A = Ac.array_placeholder ctx in
  let _x = Ac.array_placeholder ctx in
  let _y = Ac.array_placeholder ctx in
  let pat =
    Ac.Contraction
      {
        out = Ac.access _y [ Ac.p j ];
        in1 = Ac.access _A [ Ac.p i; Ac.p j ];
        in2 = Ac.access _x [ Ac.p i ];
      }
  in
  Alcotest.(check bool) "matches" true (Ac.match_block ctx pat body);
  Alcotest.(check (option int)) "i extent" (Some 4) (Ac.solution_extent ctx i);
  Alcotest.(check (option int)) "j extent" (Some 6) (Ac.solution_extent ctx j)

let test_access_conv_window () =
  (* 1-d convolution: O(x) += I(x + r) * W(r). *)
  let src =
    "void f(float I[12], float K[3], float O[10]) { for (int x = 0; x < 10; \
     ++x) for (int r = 0; r < 3; ++r) O[x] += I[x + r] * K[r]; }"
  in
  let f = func_of_src ~name:"f" src in
  let body = innermost_body f in
  let ctx = Ac.create_ctx () in
  let x = Ac.placeholder ctx and r = Ac.placeholder ctx in
  let _I = Ac.array_placeholder ctx in
  let _K = Ac.array_placeholder ctx in
  let _O = Ac.array_placeholder ctx in
  let pat =
    Ac.Contraction
      {
        out = Ac.access _O [ Ac.p x ];
        in1 = Ac.access _I [ Ac.padd (Ac.p x) (Ac.p r) ];
        in2 = Ac.access _K [ Ac.p r ];
      }
  in
  Alcotest.(check bool) "conv window matches" true (Ac.match_block ctx pat body)

let test_access_scaled_offset () =
  (* Listing 6 style: load A[2*i + 1][j + 5]. *)
  let src =
    "void f(float A[16][16], float B[4][4]) { for (int i = 0; i < 4; ++i) \
     for (int j = 0; j < 4; ++j) B[i][j] = B[i][j] + A[2*i + 1][j + 5] * 3.0; }"
  in
  (* Not a pure contraction (constant multiplier), so use Copy on a
     simpler variant instead: B[i][j] = A[2*i + 1][j + 5]. *)
  ignore src;
  let src =
    "void f(float A[16][16], float B[4][4]) { for (int i = 0; i < 4; ++i) \
     for (int j = 0; j < 4; ++j) B[i][j] = A[2*i + 1][j + 5]; }"
  in
  let f = func_of_src ~name:"f" src in
  let body = innermost_body f in
  let ctx = Ac.create_ctx () in
  let i = Ac.placeholder ctx and j = Ac.placeholder ctx in
  let _A = Ac.array_placeholder ctx in
  let _B = Ac.array_placeholder ctx in
  let pat =
    Ac.Copy
      {
        out = Ac.access _B [ Ac.p i; Ac.p j ];
        src =
          Ac.access _A
            [ Ac.term ~coeff:2 ~shift:1 i; Ac.term ~shift:5 j ];
      }
  in
  Alcotest.(check bool) "k*iota+c matches" true (Ac.match_block ctx pat body);
  (* Wrong coefficient must fail. *)
  let ctx2 = Ac.create_ctx () in
  let i2 = Ac.placeholder ctx2 and j2 = Ac.placeholder ctx2 in
  let _A2 = Ac.array_placeholder ctx2 in
  let _B2 = Ac.array_placeholder ctx2 in
  let bad =
    Ac.Copy
      {
        out = Ac.access _B2 [ Ac.p i2; Ac.p j2 ];
        src =
          Ac.access _A2
            [ Ac.term ~coeff:3 ~shift:1 i2; Ac.term ~shift:5 j2 ];
      }
  in
  Alcotest.(check bool) "wrong coefficient fails" false
    (Ac.match_block ctx2 bad body)

let test_access_placeholder_consistency () =
  (* Pattern C(i,i): both subscripts must resolve to the same iv. *)
  let mk_pat ctx =
    let i = Ac.placeholder ctx in
    let _C = Ac.array_placeholder ctx in
    let _A = Ac.array_placeholder ctx in
    Ac.Copy
      {
        out = Ac.access _C [ Ac.p i; Ac.p i ];
        src = Ac.access _A [ Ac.p i; Ac.p i ];
      }
  in
  let diag =
    func_of_src ~name:"f"
      "void f(float A[4][4], float C[4][4]) { for (int i = 0; i < 4; ++i) \
       C[i][i] = A[i][i]; }"
  in
  let ctx = Ac.create_ctx () in
  Alcotest.(check bool) "diagonal matches" true
    (Ac.match_block ctx (mk_pat ctx) (innermost_body diag));
  let full =
    func_of_src ~name:"f"
      "void f(float A[4][4], float C[4][4]) { for (int i = 0; i < 4; ++i) \
       for (int j = 0; j < 4; ++j) C[i][j] = A[i][j]; }"
  in
  let ctx2 = Ac.create_ctx () in
  Alcotest.(check bool) "C[i][j] does not match C(i,i)" false
    (Ac.match_block ctx2 (mk_pat ctx2) (innermost_body full))

let test_access_placeholder_distinctness () =
  (* Distinct placeholders may not share a candidate. *)
  let diag =
    func_of_src ~name:"f"
      "void f(float A[4][4], float C[4][4]) { for (int i = 0; i < 4; ++i) \
       C[i][i] = A[i][i]; }"
  in
  let ctx = Ac.create_ctx () in
  let i = Ac.placeholder ctx and j = Ac.placeholder ctx in
  let _C = Ac.array_placeholder ctx in
  let _A = Ac.array_placeholder ctx in
  let pat =
    Ac.Copy
      {
        out = Ac.access _C [ Ac.p i; Ac.p j ];
        src = Ac.access _A [ Ac.p i; Ac.p j ];
      }
  in
  Alcotest.(check bool) "C[i][i] does not match C(i,j)" false
    (Ac.match_block ctx pat (innermost_body diag))

let test_access_array_distinctness () =
  (* Distinct array placeholders may not bind the same memref: an in-place
     "C += C * C" must not match the three-array contraction. *)
  let f =
    func_of_src ~name:"f"
      "void f(float C[4][4]) { for (int i = 0; i < 4; ++i) for (int j = 0; \
       j < 4; ++j) for (int k = 0; k < 4; ++k) C[i][j] += C[i][k] * C[k][j]; }"
  in
  let ctx = Ac.create_ctx () in
  let pat, _, _ = gemm_pattern ctx in
  Alcotest.(check bool) "aliasing rejected" false
    (Ac.match_block ctx pat (innermost_body f))

let test_access_init_const () =
  let f =
    func_of_src ~name:"f"
      "void f(float C[4][4]) { for (int i = 0; i < 4; ++i) for (int j = 0; \
       j < 4; ++j) C[i][j] = 0.0; }"
  in
  let ctx = Ac.create_ctx () in
  let i = Ac.placeholder ctx and j = Ac.placeholder ctx in
  let _C = Ac.array_placeholder ctx in
  let pat = Ac.Init_const { out = Ac.access _C [ Ac.p i; Ac.p j ] } in
  Alcotest.(check bool) "matches" true
    (Ac.match_block ctx pat (innermost_body f));
  Alcotest.(check (float 0.)) "constant" 0.0 (Ac.const_of ctx)

let test_access_rejects_extra_ops () =
  (* A block computing two statements must not match the contraction. *)
  let f =
    func_of_src ~name:"f"
      "void f(float A[4][4], float B[4][4], float C[4][4], float D[4][4]) { \
       for (int i = 0; i < 4; ++i) for (int j = 0; j < 4; ++j) for (int k = \
       0; k < 4; ++k) { C[i][j] += A[i][k] * B[k][j]; D[i][j] += A[i][k] * \
       B[k][j]; } }"
  in
  (* Note: distribution would split these, so emit without it. *)
  ignore f;
  let m =
    Met.Emit_affine.program ~distribute:false
      (Met.C_parser.parse_program
         "void f(float A[4][4], float B[4][4], float C[4][4], float D[4][4]) \
          { for (int i = 0; i < 4; ++i) for (int j = 0; j < 4; ++j) for (int \
          k = 0; k < 4; ++k) { C[i][j] += A[i][k] * B[k][j]; D[i][j] += \
          A[i][k] * B[k][j]; } }")
  in
  let f = Option.get (Core.find_func m "f") in
  let ctx = Ac.create_ctx () in
  let pat, _, _ = gemm_pattern ctx in
  Alcotest.(check bool) "extra ops rejected" false
    (Ac.match_block ctx pat (innermost_body f))

let test_access_commuted_source_matches () =
  (* The accumulation written as mul-first and operands swapped. *)
  let f =
    func_of_src ~name:"f"
      "void f(float A[4][4], float B[4][4], float C[4][4]) { for (int i = \
       0; i < 4; ++i) for (int j = 0; j < 4; ++j) for (int k = 0; k < 4; \
       ++k) C[i][j] = B[k][j] * A[i][k] + C[i][j]; }"
  in
  let ctx = Ac.create_ctx () in
  let pat, _, _ = gemm_pattern ctx in
  Alcotest.(check bool) "commuted forms match" true
    (Ac.match_block ctx pat (innermost_body f))

let suite =
  [
    Alcotest.test_case "structural gemm depths" `Quick test_structural_gemm;
    Alcotest.test_case "structural For(For(isMAC))" `Quick
      test_structural_is_mac;
    Alcotest.test_case "op matcher shapes" `Quick test_op_match_shapes;
    Alcotest.test_case "op matcher captures" `Quick test_op_match_capture;
    Alcotest.test_case "op matcher custom def relation" `Quick
      test_op_match_custom_def;
    Alcotest.test_case "access: gemm matches" `Quick test_access_gemm_matches;
    Alcotest.test_case "access: ctx is single-use" `Quick
      test_access_ctx_single_use;
    Alcotest.test_case "access: 2-d pattern misses darknet (fig 8)" `Quick
      test_access_gemm_misses_darknet;
    Alcotest.test_case "access: linearized pattern matches darknet" `Quick
      test_access_linearized_pattern_matches_darknet;
    Alcotest.test_case "access: transposed matvec" `Quick
      test_access_transposed_matvec;
    Alcotest.test_case "access: conv window (x + r)" `Quick
      test_access_conv_window;
    Alcotest.test_case "access: k*iota+c coefficients" `Quick
      test_access_scaled_offset;
    Alcotest.test_case "access: repeated placeholder consistency" `Quick
      test_access_placeholder_consistency;
    Alcotest.test_case "access: placeholder distinctness" `Quick
      test_access_placeholder_distinctness;
    Alcotest.test_case "access: array distinctness" `Quick
      test_access_array_distinctness;
    Alcotest.test_case "access: init-const statement" `Quick
      test_access_init_const;
    Alcotest.test_case "access: extra statements rejected" `Quick
      test_access_rejects_extra_ops;
    Alcotest.test_case "access: commuted source forms" `Quick
      test_access_commuted_source_matches;
  ]
