(* Tests for the TDL parser, the TDL->TDS frontend (incl. TTGT synthesis),
   the TDS round-trip, and the compiled raising patterns. *)

open Tdl
module W = Workloads.Polybench
module B = Interp.Buffer

let test_parse_gemm_tdl () =
  let t = Tdl_parser.parse_one Frontend.gemm_tdl in
  Alcotest.(check string) "name" "GEMM" t.Tdl_ast.t_name;
  Alcotest.(check int) "no explicit builders" 0 (List.length t.t_builder);
  Alcotest.(check string) "pattern rendering"
    "C(i, j) += A(i, k) * B(k, j)"
    (Tdl_ast.stmt_to_string t.t_pattern)

let test_parse_ttgt_tdl () =
  let t = Tdl_parser.parse_one Frontend.ttgt_tdl in
  Alcotest.(check string) "name" "TTGT" t.Tdl_ast.t_name;
  Alcotest.(check int) "four builder stmts" 4 (List.length t.t_builder);
  match (List.hd t.t_builder).Tdl_ast.where with
  | Some ("f", [ "a"; "c" ]) -> ()
  | _ -> Alcotest.fail "where clause not parsed"

let test_parse_errors () =
  let expect_fail src =
    match Support.Diag.wrap (fun () -> Tdl_parser.parse src) with
    | Ok _ -> Alcotest.failf "expected TDL parse error for %S" src
    | Error _ -> ()
  in
  expect_fail "def X { }";
  expect_fail "def X { pattern C(i) = }";
  expect_fail "def { pattern C(i) += A(i) * B(i) }"

let test_frontend_gemm_is_single_matmul () =
  let tds = Frontend.lower (Tdl_parser.parse_one Frontend.gemm_tdl) in
  match tds.Tds.builders with
  | [ Tds.Matmul { in1 = "A"; in2 = "B"; output = "C" } ] -> ()
  | bs ->
      Alcotest.failf "expected a single matmulBuilder, got %d steps"
        (List.length bs)

let test_frontend_ttgt_explicit_matches_listing4 () =
  (* Listing 3 must lower to the 6-step sequence of Listing 4. *)
  let tds = Frontend.lower (Tdl_parser.parse_one Frontend.ttgt_tdl) in
  match tds.Tds.builders with
  | [
   Tds.Transpose { input = "C"; perm = [ 0; 2; 1 ]; _ };
   Tds.Reshape { grouping = [ [ 0; 1 ]; [ 2 ] ]; _ };
   Tds.Reshape { input = "A"; grouping = [ [ 0; 1 ]; [ 2 ] ]; _ };
   Tds.Matmul { in2 = "B"; _ };
   Tds.Reshape { output = _; _ };
   Tds.Transpose { output = "C"; perm = [ 0; 2; 1 ]; _ };
  ] ->
      ()
  | bs ->
      Alcotest.failf "unexpected TTGT lowering:\n%s"
        (Tds.to_string { tds with Tds.builders = bs })

let test_frontend_auto_ttgt_equals_explicit_shape () =
  (* Auto-synthesis for abc-acd-db should produce the same step kinds. *)
  let src = Frontend.contraction_tdl ~name:"AUTO" "abc" "acd" "db" in
  let tds = Frontend.lower (Tdl_parser.parse_one src) in
  let kinds =
    List.map
      (function
        | Tds.Transpose _ -> "t"
        | Tds.Reshape _ -> "r"
        | Tds.Matmul _ -> "m"
        | Tds.Matvec _ -> "v"
        | Tds.Conv2d _ -> "c"
        | Tds.Fill _ -> "f")
      tds.Tds.builders
  in
  (* C(a,b,c): M = [a;c], N = [b]; C needs transpose+reshape, A only
     reshape, B untouched; fold back reshape+transpose. *)
  Alcotest.(check (list string)) "step kinds" [ "t"; "r"; "r"; "m"; "r"; "t" ]
    kinds

let test_frontend_matvec_classification () =
  let t = Tdl_parser.parse_one "def MV { pattern y(i) += A(i,j) * x(j) }" in
  (match (Frontend.lower t).Tds.builders with
  | [ Tds.Matvec { transpose = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected plain matvec");
  let t = Tdl_parser.parse_one "def MVT { pattern y(j) += A(i,j) * x(i) }" in
  match (Frontend.lower t).Tds.builders with
  | [ Tds.Matvec { in1 = "A"; in2 = "x"; transpose = true; _ } ] -> ()
  | _ -> Alcotest.fail "expected transposed matvec"

let test_frontend_conv_classification () =
  let t =
    Tdl_parser.parse_one
      "def CONV { pattern O(n,f,x,y) += I(n,c,x+r,y+s) * W(f,c,r,s) }"
  in
  match (Frontend.lower t).Tds.builders with
  | [ Tds.Conv2d _ ] -> ()
  | _ -> Alcotest.fail "expected conv2d builder"

let test_frontend_rejects_bad_patterns () =
  let expect_fail src =
    match
      Support.Diag.wrap (fun () -> Frontend.lower (Tdl_parser.parse_one src))
    with
    | Ok _ -> Alcotest.failf "expected frontend error for %S" src
    | Error _ -> ()
  in
  (* assignment instead of accumulation *)
  expect_fail "def X { pattern C(i,j) = A(i,k) * B(k,j) }";
  (* no contracted index *)
  expect_fail "def X { pattern C(i,j) += A(i) * B(j) }";
  (* output index in both inputs *)
  expect_fail "def X { pattern C(i) += A(i,k) * B(i,k) }"

let test_tds_roundtrip () =
  let check_rt name tds =
    let printed = Tds.to_string tds in
    let parsed = Tds.parse_one printed in
    if Tds.to_string parsed <> printed then
      Alcotest.failf "%s: TDS roundtrip mismatch:\n%s\nvs\n%s" name printed
        (Tds.to_string parsed)
  in
  check_rt "gemm" (Frontend.lower (Tdl_parser.parse_one Frontend.gemm_tdl));
  check_rt "ttgt" (Frontend.lower (Tdl_parser.parse_one Frontend.ttgt_tdl));
  List.iter
    (fun (name, spec, _) ->
      let s = Workloads.Contraction_spec.to_string spec in
      match String.split_on_char '-' s with
      | [ o; a; b ] ->
          check_rt name
            (Frontend.lower
               (Tdl_parser.parse_one (Frontend.contraction_tdl ~name:"T" o a b)))
      | _ -> assert false)
    (Workloads.Contraction_spec.paper_benchmarks ())

(* ---- compiled raising patterns -------------------------------------- *)

let raise_with_tdl tdl_src c_src =
  let m = Met.Emit_affine.translate c_src in
  let patterns = Backend.compile_tdl tdl_src in
  let n = Ir.Rewriter.apply_greedily m (Ir.Rewriter.freeze patterns) in
  Ir.Verifier.verify m;
  (m, n)

let count_ops m name =
  let c = ref 0 in
  Ir.Core.walk m (fun op -> if String.equal op.Ir.Core.o_name name then incr c);
  !c

let test_backend_raises_gemm () =
  let m, n = raise_with_tdl Frontend.gemm_tdl (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  Alcotest.(check int) "one application" 1 n;
  Alcotest.(check int) "linalg.matmul present" 1 (count_ops m "linalg.matmul");
  Alcotest.(check int) "loops gone" 0 (count_ops m "affine.for")

let test_backend_raising_preserves_semantics () =
  let src = W.mm ~ni:7 ~nj:5 ~nk:9 () in
  let reference = Met.Emit_affine.translate src in
  let raised, n = raise_with_tdl Frontend.gemm_tdl src in
  Alcotest.(check int) "raised" 1 n;
  Alcotest.(check bool) "same semantics" true
    (Interp.Eval.equivalent reference raised "mm" ~seed:42)

let test_backend_partial_iteration_not_raised () =
  (* The k loop covers only half the array: must NOT be raised. *)
  let src =
    "void f(float A[8][8], float B[8][8], float C[8][8]) { for (int i = 0; \
     i < 8; ++i) for (int j = 0; j < 8; ++j) for (int k = 0; k < 4; ++k) \
     C[i][j] += A[i][k] * B[k][j]; }"
  in
  let m, n = raise_with_tdl Frontend.gemm_tdl src in
  Alcotest.(check int) "no application" 0 n;
  Alcotest.(check int) "loops remain" 3 (count_ops m "affine.for")

let test_backend_nonzero_base_not_raised () =
  let src =
    "void f(float A[8][8], float B[8][8], float C[8][8]) { for (int i = 1; \
     i < 8; ++i) for (int j = 0; j < 8; ++j) for (int k = 0; k < 8; ++k) \
     C[i][j] += A[i][k] * B[k][j]; }"
  in
  let _, n = raise_with_tdl Frontend.gemm_tdl src in
  Alcotest.(check int) "no application" 0 n

let test_backend_darknet_not_raised () =
  let m, n =
    raise_with_tdl Frontend.gemm_tdl (W.darknet_gemm ~m:8 ~n:8 ~k:8 ())
  in
  Alcotest.(check int) "no application (fig 8)" 0 n;
  Alcotest.(check int) "loops remain" 3 (count_ops m "affine.for")

let test_backend_raises_all_contractions_with_ttgt () =
  (* Every paper contraction: auto-TTGT tactic raises it, and the raised
     program is interpreter-equivalent to the loops. *)
  List.iter
    (fun (name, spec, _) ->
      let sizes =
        List.map
          (fun c -> (c, 4))
          (Workloads.Contraction_spec.all_indices spec)
      in
      let c_src =
        Workloads.Contraction_spec.c_source spec ~sizes ~init:false
          ~name:"kern" ()
      in
      let s = Workloads.Contraction_spec.to_string spec in
      let tdl =
        match String.split_on_char '-' s with
        | [ o; a; b ] -> Frontend.contraction_tdl ~name:"T" o a b
        | _ -> assert false
      in
      let reference = Met.Emit_affine.translate c_src in
      let raised, n = raise_with_tdl tdl c_src in
      if n <> 1 then Alcotest.failf "%s: expected 1 application, got %d" name n;
      if count_ops raised "affine.for" <> 0 then
        Alcotest.failf "%s: loops remain after raising" name;
      if not (Interp.Eval.equivalent reference raised "kern" ~seed:17) then
        Alcotest.failf "%s: TTGT raising changed semantics" name)
    (Workloads.Contraction_spec.paper_benchmarks ())

let test_backend_explicit_ttgt_preserves_semantics () =
  (* The Listing 3 tactic applied to the Listing 2 contraction. *)
  let sizes = [ ('a', 4); ('b', 5); ('c', 3); ('d', 6) ] in
  let spec = Workloads.Contraction_spec.parse "abc-acd-db" in
  let c_src =
    Workloads.Contraction_spec.c_source spec ~sizes ~init:false ~name:"kern" ()
  in
  let reference = Met.Emit_affine.translate c_src in
  let raised, n = raise_with_tdl Frontend.ttgt_tdl c_src in
  Alcotest.(check int) "raised" 1 n;
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference raised "kern" ~seed:23)

let test_backend_conv_raises () =
  let src = W.conv2d_nchw ~n:1 ~c:2 ~h:8 ~w:8 ~f:2 ~kh:3 ~kw:3 () in
  let tdl = "def CONV { pattern O(n,f,x,y) += I(n,c,x+r,y+s) * W(f,c,r,s) }" in
  let reference = Met.Emit_affine.translate src in
  let raised, n = raise_with_tdl tdl src in
  Alcotest.(check int) "raised" 1 n;
  Alcotest.(check int) "conv op" 1 (count_ops raised "linalg.conv2d_nchw");
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference raised "conv2d_nchw" ~seed:5)

let test_backend_affine_target () =
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  let pats =
    Backend.compile_tdl ~target:Backend.To_affine_matmul Frontend.gemm_tdl
  in
  let n = Ir.Rewriter.apply_greedily m (Ir.Rewriter.freeze pats) in
  Alcotest.(check int) "raised" 1 n;
  Alcotest.(check int) "affine.matmul" 1 (count_ops m "affine.matmul");
  (* affine.matmul is still executable by the interpreter. *)
  let reference = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "mm" ~seed:9)

let test_backend_affine_target_rejects_ttgt () =
  match
    Support.Diag.wrap (fun () ->
        Backend.compile_tdl ~target:Backend.To_affine_matmul Frontend.ttgt_tdl)
  with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "parse gemm tdl (listing 8)" `Quick test_parse_gemm_tdl;
    Alcotest.test_case "parse ttgt tdl (listing 3)" `Quick test_parse_ttgt_tdl;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "frontend: gemm = single matmul" `Quick
      test_frontend_gemm_is_single_matmul;
    Alcotest.test_case "frontend: listing 3 -> listing 4" `Quick
      test_frontend_ttgt_explicit_matches_listing4;
    Alcotest.test_case "frontend: auto TTGT synthesis" `Quick
      test_frontend_auto_ttgt_equals_explicit_shape;
    Alcotest.test_case "frontend: matvec classification" `Quick
      test_frontend_matvec_classification;
    Alcotest.test_case "frontend: conv classification" `Quick
      test_frontend_conv_classification;
    Alcotest.test_case "frontend: rejects bad patterns" `Quick
      test_frontend_rejects_bad_patterns;
    Alcotest.test_case "TDS print/parse roundtrip" `Quick test_tds_roundtrip;
    Alcotest.test_case "backend: raises gemm to linalg" `Quick
      test_backend_raises_gemm;
    Alcotest.test_case "backend: raising preserves semantics" `Quick
      test_backend_raising_preserves_semantics;
    Alcotest.test_case "backend: partial iteration rejected" `Quick
      test_backend_partial_iteration_not_raised;
    Alcotest.test_case "backend: non-zero base rejected" `Quick
      test_backend_nonzero_base_not_raised;
    Alcotest.test_case "backend: darknet not raised (fig 8)" `Quick
      test_backend_darknet_not_raised;
    Alcotest.test_case "backend: all paper contractions via TTGT" `Quick
      test_backend_raises_all_contractions_with_ttgt;
    Alcotest.test_case "backend: explicit TTGT (listing 3) semantics" `Quick
      test_backend_explicit_ttgt_preserves_semantics;
    Alcotest.test_case "backend: conv2d raising" `Quick test_backend_conv_raises;
    Alcotest.test_case "backend: affine.matmul target (sec 5.1)" `Quick
      test_backend_affine_target;
    Alcotest.test_case "backend: affine target rejects TTGT" `Quick
      test_backend_affine_target_rejects_ttgt;
  ]
