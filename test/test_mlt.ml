(* Tests for the core MLT library: tactics registry, matrix-chain
   reordering, the Linalg->BLAS conversion, and the end-to-end pipelines
   (all validated against the interpreter). *)

open Ir
module W = Workloads.Polybench
module MC = Mlt.Matrix_chain

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

(* --- matrix chain DP --------------------------------------------------- *)

let test_chain_cormen_example () =
  (* CLRS classic: dims 30x35x15x5x10x20x25, optimal cost 15125. *)
  let dims = [| 30; 35; 15; 5; 10; 20; 25 |] in
  let _, cost = MC.optimal dims in
  Alcotest.(check (float 0.)) "clrs optimal" 15125. cost

let test_chain_paper_example () =
  (* §5.3: 800x1100, 1100x1200, 1200x100. *)
  let dims = [| 800; 1100; 1200; 100 |] in
  let t_opt, c_opt = MC.optimal dims in
  let _, c_left = MC.left_assoc dims in
  Alcotest.(check (float 0.)) "left-assoc mults" 1.152e9 c_left;
  Alcotest.(check (float 0.)) "optimal mults" 2.2e8 c_opt;
  Alcotest.(check string) "optimal shape" "(A1x(A2xA3))" (MC.to_string t_opt)

let test_chain_table2_orders () =
  (* Table II: the optimal parenthesizations reported by the paper. *)
  let cases =
    [
      ([| 800; 1100; 900; 1200; 100 |], "(A1x(A2x(A3xA4)))");
      ([| 1000; 2000; 900; 1500; 600; 800 |], "((A1x(A2x(A3xA4)))xA5)");
      ( [| 1500; 400; 2000; 2200; 600; 1400; 1000 |],
        "(A1x((((A2xA3)xA4)xA5)xA6))" );
    ]
  in
  List.iter
    (fun (dims, expected) ->
      let t, _ = MC.optimal dims in
      Alcotest.(check string) "parenthesization" expected (MC.to_string t))
    cases

let prop_chain_optimal_matches_brute_force =
  QCheck.Test.make ~name:"DP = brute force on random chains" ~count:100
    QCheck.(list_of_size (Gen.int_range 3 7) (int_range 1 50))
    (fun dims_list ->
      QCheck.assume (List.length dims_list >= 3);
      let dims = Array.of_list dims_list in
      let _, c1 = MC.optimal dims in
      let _, c2 = MC.brute_force dims in
      c1 = c2)

let prop_chain_optimal_never_worse =
  QCheck.Test.make ~name:"optimal <= left-assoc" ~count:200
    QCheck.(list_of_size (Gen.int_range 3 9) (int_range 1 100))
    (fun dims_list ->
      QCheck.assume (List.length dims_list >= 3);
      let dims = Array.of_list dims_list in
      let _, c1 = MC.optimal dims in
      let _, c2 = MC.left_assoc dims in
      c1 <= c2)

(* --- fill tactic -------------------------------------------------------- *)

let test_fill_raising () =
  let src =
    "void f(float C[6][8]) { for (int i = 0; i < 6; ++i) for (int j = 0; j \
     < 8; ++j) C[i][j] = 0.0; }"
  in
  let m = Met.Emit_affine.translate src in
  let n = Rewriter.apply_greedily m (Rewriter.freeze [ Mlt.Tactics.fill_pattern () ]) in
  Alcotest.(check int) "raised" 1 n;
  Alcotest.(check int) "fill op" 1 (count_ops m "linalg.fill");
  (* Partial initialization must not raise. *)
  let src2 =
    "void f(float C[6][8]) { for (int i = 0; i < 3; ++i) for (int j = 0; j \
     < 8; ++j) C[i][j] = 0.0; }"
  in
  let m2 = Met.Emit_affine.translate src2 in
  Alcotest.(check int) "partial not raised" 0
    (Rewriter.apply_greedily m2 (Rewriter.freeze [ Mlt.Tactics.fill_pattern () ]))

(* --- chain detection and reordering ------------------------------------ *)

let chain_module dims =
  let m = Met.Emit_affine.translate (W.matrix_chain dims) in
  let f = Option.get (Core.find_func m "chain") in
  ignore (Mlt.Tactics.raise_to_linalg f);
  (m, f)

let test_chain_detection () =
  let _, f = chain_module [ 8; 9; 10; 11 ] in
  match Mlt.Raise_chain.detect f with
  | [ chain ] ->
      Alcotest.(check int) "two matmuls" 2
        (List.length chain.Mlt.Raise_chain.matmuls);
      Alcotest.(check int) "three inputs" 3
        (List.length chain.Mlt.Raise_chain.inputs)
  | chains -> Alcotest.failf "expected 1 chain, got %d" (List.length chains)

let test_chain_m_op_listing9 () =
  (* Listing 9: m_Op<MatmulOp> chained through the last-writer relation. *)
  let _, f = chain_module [ 8; 9; 10; 11; 12 ] in
  let matmuls = ref [] in
  Core.walk f (fun op ->
      if Linalg.Linalg_ops.is_matmul op then matmuls := op :: !matmuls);
  let last = List.hd !matmuls in
  let def v = Mlt.Raise_chain.last_writer ~anchor:last v in
  (* Match from the last matmul's first operand: produced by a matmul whose
     own first operand is produced by yet another matmul. *)
  let open Matchers.Op_match in
  let pat =
    op "linalg.matmul" [ op "linalg.matmul" [ any; any; any ]; any; any ]
  in
  Alcotest.(check bool) "chain matched through buffers" true
    (matches ~def pat (Core.operand last 0))

let test_chain_reorder_semantics () =
  (* Table II chain 1 scaled down; reordering must preserve semantics. *)
  let dims = [ 16; 22; 18; 24; 2 ] in
  let reference = Met.Emit_affine.translate (W.matrix_chain dims) in
  let m, f = chain_module dims in
  let n = Mlt.Raise_chain.reorder f in
  Alcotest.(check int) "one chain rewritten" 1 n;
  Verifier.verify m;
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "chain" ~seed:77)

let test_chain_reorder_structure () =
  let dims = [ 16; 22; 18; 24; 2 ] in
  let _, f = chain_module dims in
  ignore (Mlt.Raise_chain.reorder f);
  (* Optimal for (16,22,18,24,2) per DP. *)
  let t, _ = MC.optimal (Array.of_list dims |> Array.map Fun.id) in
  (* The rewritten function has 3 matmuls still. *)
  let matmul_count = ref 0 in
  Core.walk f (fun op ->
      if Linalg.Linalg_ops.is_matmul op then incr matmul_count);
  Alcotest.(check int) "three matmuls" 3 !matmul_count;
  ignore t

let test_chain_already_optimal_untouched () =
  (* Square chain: left-assoc is already optimal; nothing to rewrite. *)
  let dims = [ 8; 8; 8; 8 ] in
  let _, f = chain_module dims in
  Alcotest.(check int) "no rewrite" 0 (Mlt.Raise_chain.reorder f)

(* --- linalg -> blas ------------------------------------------------------ *)

let test_to_blas_conversion () =
  let m = Met.Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  let f = Option.get (Core.find_func m "gemm") in
  ignore (Mlt.Tactics.raise_to_linalg f);
  ignore (Mlt.To_blas.run f);
  Alcotest.(check int) "sgemm call" 1 (count_ops m "blas.sgemm");
  Alcotest.(check int) "no linalg.matmul" 0 (count_ops m "linalg.matmul")

let test_to_blas_preserves_semantics () =
  let src = W.gemm ~ni:8 ~nj:8 ~nk:8 () in
  let reference = Met.Emit_affine.translate src in
  let m = Met.Emit_affine.translate src in
  let f = Option.get (Core.find_func m "gemm") in
  ignore (Mlt.Tactics.raise_to_linalg f);
  ignore (Mlt.To_blas.run f);
  Transforms.Lower_linalg.run f;
  Verifier.verify m;
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "gemm" ~seed:3)

(* --- pipelines ------------------------------------------------------------ *)

let test_pipelines_preserve_semantics () =
  (* Every Figure-9 configuration must compute the same function as the
     plain translation, for every kernel of the tiny suite. *)
  List.iter
    (fun (kname, src) ->
      let reference = Met.Emit_affine.translate src in
      let fname =
        (List.hd (Met.C_parser.parse_program src)).Met.C_ast.k_name
      in
      List.iter
        (fun config ->
          match config with
          | Mlt.Pipeline.Pluto_best -> () (* timing-level only *)
          | _ ->
              let m = Mlt.Pipeline.prepare config src in
              if not (Interp.Eval.equivalent reference m fname ~seed:13) then
                Alcotest.failf "%s under %s: semantics changed" kname
                  (Mlt.Pipeline.config_name config))
        Mlt.Pipeline.all_figure9_configs)
    (W.tiny_suite ())

let test_pipeline_sec51_semantics () =
  let src = W.mm ~ni:8 ~nj:8 ~nk:8 () in
  let reference = Met.Emit_affine.translate src in
  let m = Mlt.Pipeline.prepare Mlt.Pipeline.Mlt_affine_blis src in
  Alcotest.(check int) "affine.matmul" 1 (count_ops m "affine.matmul");
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "mm" ~seed:4)

let test_pipeline_mlt_blas_raises_gemm () =
  let m = Mlt.Pipeline.prepare Mlt.Pipeline.Mlt_blas (W.gemm ~ni:16 ~nj:16 ~nk:16 ()) in
  Alcotest.(check int) "sgemm" 1 (count_ops m "blas.sgemm")

let test_fig8_callsite_counts () =
  (* Figure 8: detected callsites vs oracle. *)
  let n = 16 in
  let cases =
    [
      ("mm", W.mm ~ni:n ~nj:n ~nk:n (), 1);
      ("2mm", W.two_mm ~ni:n ~nj:n ~nk:n ~nl:n (), 2);
      ("3mm", W.three_mm ~ni:n ~nj:n ~nk:n ~nl:n ~nm:n (), 3);
      ("darknet", W.darknet_gemm ~m:n ~n ~k:n (), 0 (* oracle: 1; missed *));
    ]
  in
  List.iter
    (fun (name, src, expected) ->
      Alcotest.(check int) name expected
        (Mlt.Pipeline.count_gemm_callsites src))
    cases

let test_compile_time_runs () =
  let sources = List.map snd (W.tiny_suite ()) in
  let t_base = Mlt.Pipeline.compile_time `Baseline sources in
  let t_mlt = Mlt.Pipeline.compile_time `With_mlt sources in
  Alcotest.(check bool) "baseline positive" true (t_base > 0.);
  Alcotest.(check bool) "mlt not absurdly slower" true (t_mlt < t_base *. 50.)

let suite =
  [
    Alcotest.test_case "chain: CLRS example" `Quick test_chain_cormen_example;
    Alcotest.test_case "chain: paper 5.3 example" `Quick
      test_chain_paper_example;
    Alcotest.test_case "chain: Table II parenthesizations" `Quick
      test_chain_table2_orders;
    QCheck_alcotest.to_alcotest prop_chain_optimal_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_chain_optimal_never_worse;
    Alcotest.test_case "fill raising" `Quick test_fill_raising;
    Alcotest.test_case "chain detection" `Quick test_chain_detection;
    Alcotest.test_case "chain via m_Op last-writer (listing 9)" `Quick
      test_chain_m_op_listing9;
    Alcotest.test_case "chain reorder preserves semantics" `Quick
      test_chain_reorder_semantics;
    Alcotest.test_case "chain reorder structure" `Quick
      test_chain_reorder_structure;
    Alcotest.test_case "optimal chain untouched" `Quick
      test_chain_already_optimal_untouched;
    Alcotest.test_case "linalg->blas conversion" `Quick test_to_blas_conversion;
    Alcotest.test_case "linalg->blas semantics" `Quick
      test_to_blas_preserves_semantics;
    Alcotest.test_case "all pipelines preserve semantics" `Quick
      test_pipelines_preserve_semantics;
    Alcotest.test_case "sec 5.1 pipeline" `Quick test_pipeline_sec51_semantics;
    Alcotest.test_case "mlt-blas raises gemm" `Quick
      test_pipeline_mlt_blas_raises_gemm;
    Alcotest.test_case "figure 8 callsite counts" `Quick
      test_fig8_callsite_counts;
    Alcotest.test_case "compile-time measurement runs" `Quick
      test_compile_time_runs;
  ]
