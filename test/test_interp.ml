(* Tests for the buffer substrate, reference kernels, and IR interpreter. *)

module B = Interp.Buffer
module K = Interp.Kernels
module W = Workloads.Polybench

let test_buffer_indexing () =
  let b = B.create [ 2; 3; 4 ] in
  Alcotest.(check int) "elements" 24 (B.num_elements b);
  Alcotest.(check int) "strides" 12 b.B.strides.(0);
  B.set b [| 1; 2; 3 |] 42.;
  Alcotest.(check (float 0.)) "get back" 42. (B.get b [| 1; 2; 3 |]);
  Alcotest.(check int) "linear" 23 (B.linear_index b [| 1; 2; 3 |]);
  Alcotest.check_raises "oob"
    (Invalid_argument "Buffer: index 4 out of bounds [0, 4) at dim 2")
    (fun () -> ignore (B.get b [| 0; 0; 4 |]))

let test_buffer_init_iter () =
  let b = B.init [ 3; 3 ] (fun idx -> float_of_int ((idx.(0) * 3) + idx.(1))) in
  Alcotest.(check (float 0.)) "row major" 5. b.B.data.(5)

let test_matmul_kernel () =
  let a = B.init [ 2; 3 ] (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
  let b = B.init [ 3; 2 ] (fun i -> float_of_int ((i.(0) * 2) + i.(1))) in
  let c = B.create [ 2; 2 ] in
  K.matmul a b c;
  (* [[0 1 2][3 4 5]] x [[0 1][2 3][4 5]] = [[10 13][28 40]] *)
  Alcotest.(check (float 0.)) "c00" 10. (B.get c [| 0; 0 |]);
  Alcotest.(check (float 0.)) "c01" 13. (B.get c [| 0; 1 |]);
  Alcotest.(check (float 0.)) "c10" 28. (B.get c [| 1; 0 |]);
  Alcotest.(check (float 0.)) "c11" 40. (B.get c [| 1; 1 |]);
  (* Accumulating semantics: running again doubles. *)
  K.matmul a b c;
  Alcotest.(check (float 0.)) "accumulates" 20. (B.get c [| 0; 0 |])

let test_matvec_kernel () =
  let a = B.init [ 2; 3 ] (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
  let x = B.init [ 3 ] (fun i -> float_of_int (i.(0) + 1)) in
  let y = B.create [ 2 ] in
  K.matvec a x y;
  Alcotest.(check (float 0.)) "y0" 8. (B.get y [| 0 |]);
  Alcotest.(check (float 0.)) "y1" 26. (B.get y [| 1 |]);
  let xt = B.init [ 2 ] (fun i -> float_of_int (i.(0) + 1)) in
  let yt = B.create [ 3 ] in
  K.matvec ~transpose:true a xt yt;
  (* y = A^T [1;2]: columns dot [1;2] = [6; 9; 12] *)
  Alcotest.(check (float 0.)) "yt0" 6. (B.get yt [| 0 |]);
  Alcotest.(check (float 0.)) "yt2" 12. (B.get yt [| 2 |])

let test_transpose_kernel () =
  let src = B.init [ 2; 3; 4 ] (fun i -> float_of_int ((100 * i.(0)) + (10 * i.(1)) + i.(2))) in
  let dst = B.create [ 2; 4; 3 ] in
  K.transpose ~perm:[| 0; 2; 1 |] src dst;
  Alcotest.(check (float 0.)) "dst[1,3,2] = src[1,2,3]" 123.
    (B.get dst [| 1; 3; 2 |])

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose twice is identity" ~count:50
    (QCheck.triple (QCheck.int_range 1 5) (QCheck.int_range 1 5)
       (QCheck.int_range 1 5))
    (fun (x, y, z) ->
      let src = B.create [ x; y; z ] in
      B.randomize ~seed:7 src;
      let mid = B.create [ y; z; x ] in
      (* perm [1;2;0]: out dim d = src dim perm(d). *)
      K.transpose ~perm:[| 1; 2; 0 |] src mid;
      let back = B.create [ x; y; z ] in
      K.transpose ~perm:[| 2; 0; 1 |] mid back;
      B.approx_equal ~eps:0. src back)

let test_reshape_kernel () =
  let src = B.init [ 2; 6 ] (fun i -> float_of_int ((i.(0) * 6) + i.(1))) in
  let dst = B.create [ 2; 2; 3 ] in
  K.reshape_copy src dst;
  Alcotest.(check (float 0.)) "relayout" 9. (B.get dst [| 1; 1; 0 |])

let test_contract_kernel_is_matmul () =
  (* C(i,j) += A(i,k) * B(k,j) expressed as a generic contraction. *)
  let module M = Ir.Affine_map in
  let maps =
    [
      M.minor_identity ~n_dims:3 ~results:[ 0; 2 ];
      M.minor_identity ~n_dims:3 ~results:[ 2; 1 ];
      M.minor_identity ~n_dims:3 ~results:[ 0; 1 ];
    ]
  in
  let a = B.create [ 4; 5 ] and b = B.create [ 5; 3 ] in
  B.randomize ~seed:1 a;
  B.randomize ~seed:2 b;
  let c1 = B.create [ 4; 3 ] and c2 = B.create [ 4; 3 ] in
  let dims =
    K.infer_contract_dims ~maps
      ~shapes:[ a.B.shape; b.B.shape; c1.B.shape ]
  in
  Alcotest.(check (array int)) "inferred space" [| 4; 3; 5 |] dims;
  K.contract ~maps ~dims a b c1;
  K.matmul a b c2;
  Alcotest.(check bool) "same result" true (B.approx_equal c1 c2)

let test_interp_gemm_matches_reference () =
  let n = 6 in
  let m = Met.Emit_affine.translate (W.gemm ~ni:n ~nj:n ~nk:n ()) in
  let a = B.create [ n; n ] and b = B.create [ n; n ] and c = B.create [ n; n ] in
  B.randomize ~seed:3 a;
  B.randomize ~seed:4 b;
  B.randomize ~seed:5 c;
  (* gemm source zero-initializes C, so reference is plain matmul. *)
  let c_ref = B.create [ n; n ] in
  K.matmul a b c_ref;
  Interp.Eval.run m "gemm" [ a; b; c ];
  Alcotest.(check bool) "interpreted = reference" true
    (B.approx_equal c c_ref)

let test_interp_conv_matches_reference () =
  let m = Met.Emit_affine.translate (W.conv2d_nchw ~n:1 ~c:2 ~h:8 ~w:8 ~f:2 ~kh:3 ~kw:3 ()) in
  let i = B.create [ 1; 2; 8; 8 ] and w = B.create [ 2; 2; 3; 3 ] in
  let o = B.create [ 1; 2; 6; 6 ] and o_ref = B.create [ 1; 2; 6; 6 ] in
  B.randomize ~seed:6 i;
  B.randomize ~seed:7 w;
  K.conv2d_nchw i w o_ref;
  Interp.Eval.run m "conv2d_nchw" [ i; w; o ];
  Alcotest.(check bool) "interpreted conv = kernel" true
    (B.approx_equal o o_ref)

let test_interp_darknet_equals_2d_gemm () =
  (* The linearized Darknet kernel computes the same function as mm. *)
  let n = 5 in
  let lin = Met.Emit_affine.translate (W.darknet_gemm ~m:n ~n ~k:n ()) in
  let td = Met.Emit_affine.translate (W.mm ~ni:n ~nj:n ~nk:n ()) in
  let mk2 seed = let b = B.create [ n; n ] in B.randomize ~seed b; b in
  let mk1 seed = let b = B.create [ n * n ] in B.randomize ~seed b; b in
  let a2 = mk2 1 and b2 = mk2 2 and c2 = B.create [ n; n ] in
  let a1 = mk1 1 and b1 = mk1 2 and c1 = B.create [ n * n ] in
  Interp.Eval.run td "mm" [ a2; b2; c2 ];
  Interp.Eval.run lin "darknet_gemm" [ a1; b1; c1 ];
  Alcotest.(check (float 1e-5)) "same data" 0.
    (B.max_abs_diff c1 { c1 with B.data = c2.B.data })

let test_interp_distribution_preserves_semantics () =
  (* For every figure-9 workload: emission with and without loop
     distribution computes the same buffers. *)
  List.iter
    (fun (name, src) ->
      let ks = Met.C_parser.parse_program src in
      let m1 = Met.Emit_affine.program ~distribute:false ks in
      let m2 = Met.Emit_affine.program ~distribute:true ks in
      let fname = (List.hd ks).Met.C_ast.k_name in
      if not (Interp.Eval.equivalent m1 m2 fname ~seed:11) then
        Alcotest.failf "%s: distribution changed semantics" name)
    (W.tiny_suite ())

let test_interp_affine_for_step_guard () =
  (* A non-positive step must raise instead of looping forever. *)
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let f = Option.get (Ir.Core.find_func m "mm") in
  let loop = List.hd (Affine.Loops.all_loops f) in
  Ir.Core.set_attr loop "step" (Ir.Attr.Int 0);
  try
    ignore (Interp.Eval.run_on_random m "mm" ~seed:13);
    Alcotest.fail "expected a step error"
  with Interp.Eval.Runtime_error msg ->
    Alcotest.(check bool) "mentions the step" true
      (Astring_contains.contains msg "step")

let test_interp_affine_bound_no_results () =
  (* An affine bound map with zero results must fail cleanly (it used to
     crash on results.(0) with Invalid_argument). *)
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let f = Option.get (Ir.Core.find_func m "mm") in
  let loop = List.hd (Affine.Loops.all_loops f) in
  Ir.Core.set_attr loop "lower_bound"
    (Ir.Attr.Map (Ir.Affine_map.make ~n_dims:0 []));
  try
    ignore (Interp.Eval.run_on_random m "mm" ~seed:13);
    Alcotest.fail "expected a bound-map error"
  with Interp.Eval.Runtime_error msg ->
    Alcotest.(check bool) "mentions the bound map" true
      (Astring_contains.contains msg "bound map")

let expect_iter_args_error engine f =
  try
    Interp.Eval.run_func ~engine f [];
    Alcotest.fail "expected an iter_args error"
  with Interp.Eval.Runtime_error msg ->
    Alcotest.(check bool)
      (Interp.Rt.engine_name engine ^ " names iter_args")
      true
      (Astring_contains.contains msg "iter_args")

let test_interp_affine_for_iter_args_diagnosed () =
  (* A loop with results (loop-carried iter_args) is unsupported; both
     engines must say so eagerly at the loop op instead of failing later
     with a misleading "no runtime binding". *)
  let f = Ir.Core.create_func ~name:"f" ~arg_types:[] () in
  let body = Ir.Core.create_block [ Ir.Typ.Index ] in
  Ir.Core.append_op body (Ir.Core.create_op "affine.yield");
  let loop =
    Ir.Core.create_op "affine.for" ~result_types:[ Ir.Typ.F32 ]
      ~attrs:
        [
          ("lower_bound", Ir.Attr.Map (Ir.Affine_map.constant_map [ 0 ]));
          ("upper_bound", Ir.Attr.Map (Ir.Affine_map.constant_map [ 4 ]));
          ("step", Ir.Attr.Int 1);
        ]
      ~regions:[ Ir.Core.create_region [ body ] ]
  in
  Ir.Core.append_op (Ir.Core.func_entry f) loop;
  expect_iter_args_error Interp.Eval.Walk f;
  expect_iter_args_error Interp.Eval.Compiled f

let test_interp_scf_for_iter_args_diagnosed () =
  (* Same diagnosis for scf.for carrying an extra block argument. *)
  let f = Ir.Core.create_func ~name:"f" ~arg_types:[] () in
  let b = Ir.Builder.at_end (Ir.Core.func_entry f) in
  let c0 = Std_dialect.Arith.constant_index b 0 in
  let c4 = Std_dialect.Arith.constant_index b 4 in
  let c1 = Std_dialect.Arith.constant_index b 1 in
  let body = Ir.Core.create_block [ Ir.Typ.Index; Ir.Typ.F32 ] in
  Ir.Core.append_op body (Ir.Core.create_op "scf.yield");
  let loop =
    Ir.Core.create_op "scf.for" ~operands:[ c0; c4; c1 ]
      ~regions:[ Ir.Core.create_region [ body ] ]
  in
  Ir.Core.append_op (Ir.Core.func_entry f) loop;
  expect_iter_args_error Interp.Eval.Walk f;
  expect_iter_args_error Interp.Eval.Compiled f

let test_interp_signed_div_rem () =
  (* Floor-division semantics on the full sign grid, on both engines:
     quotient rounds toward -inf, remainder carries the divisor's sign
     (consistent with affine Mod/Floor_div, so raise_scf/lower_affine
     round-trips preserve semantics for negative operands). *)
  let cases = [ (7, 2, 3., 1.); (-7, 2, -4., 1.); (7, -2, -4., -1.);
                (-7, -2, 3., -1.) ] in
  let f =
    Ir.Core.create_func ~name:"sg"
      ~arg_types:[ Ir.Typ.memref [ 8 ] Ir.Typ.F32 ]
      ()
  in
  let a = List.hd (Ir.Core.func_args f) in
  let b = Ir.Builder.at_end (Ir.Core.func_entry f) in
  List.iteri
    (fun i (x, y, _, _) ->
      let vx = Std_dialect.Arith.constant_int b x in
      let vy = Std_dialect.Arith.constant_int b y in
      let d = Std_dialect.Arith.floordivsi b vx vy in
      let r = Std_dialect.Arith.remsi b vx vy in
      let id = Std_dialect.Arith.constant_index b (2 * i) in
      let ir = Std_dialect.Arith.constant_index b ((2 * i) + 1) in
      ignore (Std_dialect.Memref_ops.store b d a [ id ]);
      ignore (Std_dialect.Memref_ops.store b r a [ ir ]))
    cases;
  List.iter
    (fun engine ->
      let buf = B.create [ 8 ] in
      Interp.Eval.run_func ~engine f [ buf ];
      List.iteri
        (fun i (x, y, ed, er) ->
          let tag op =
            Printf.sprintf "%s: %d %s %d" (Interp.Rt.engine_name engine) x op y
          in
          Alcotest.(check (float 0.)) (tag "floordiv") ed
            (B.get buf [| 2 * i |]);
          Alcotest.(check (float 0.)) (tag "rem") er
            (B.get buf [| (2 * i) + 1 |]))
        cases)
    [ Interp.Eval.Walk; Interp.Eval.Compiled ]

let test_interp_div_rem_by_zero () =
  List.iter
    (fun mk ->
      let f =
        Ir.Core.create_func ~name:"z"
          ~arg_types:[ Ir.Typ.memref [ 1 ] Ir.Typ.F32 ]
          ()
      in
      let a = List.hd (Ir.Core.func_args f) in
      let b = Ir.Builder.at_end (Ir.Core.func_entry f) in
      let vx = Std_dialect.Arith.constant_int b 5 in
      let vz = Std_dialect.Arith.constant_int b 0 in
      let v = mk b vx vz in
      let c0 = Std_dialect.Arith.constant_index b 0 in
      ignore (Std_dialect.Memref_ops.store b v a [ c0 ]);
      List.iter
        (fun engine ->
          try
            Interp.Eval.run_func ~engine f [ B.create [ 1 ] ];
            Alcotest.fail "expected a division-by-zero error"
          with Interp.Eval.Runtime_error msg ->
            Alcotest.(check bool) "mentions zero" true
              (Astring_contains.contains msg "zero"))
        [ Interp.Eval.Walk; Interp.Eval.Compiled ])
    [ Std_dialect.Arith.floordivsi; Std_dialect.Arith.remsi ]

let test_interp_errors () =
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  (* Wrong arity *)
  (try
     Interp.Eval.run m "mm" [];
     Alcotest.fail "expected arity error"
   with Interp.Eval.Runtime_error _ -> ());
  (* Wrong shape *)
  try
    Interp.Eval.run m "mm"
      [ B.create [ 2; 2 ]; B.create [ 4; 4 ]; B.create [ 4; 4 ] ];
    Alcotest.fail "expected shape error"
  with Interp.Eval.Runtime_error _ -> ()

let suite =
  [
    Alcotest.test_case "buffer indexing" `Quick test_buffer_indexing;
    Alcotest.test_case "buffer init order" `Quick test_buffer_init_iter;
    Alcotest.test_case "matmul kernel" `Quick test_matmul_kernel;
    Alcotest.test_case "matvec kernel (both orientations)" `Quick
      test_matvec_kernel;
    Alcotest.test_case "transpose kernel" `Quick test_transpose_kernel;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    Alcotest.test_case "reshape kernel" `Quick test_reshape_kernel;
    Alcotest.test_case "contract generalizes matmul" `Quick
      test_contract_kernel_is_matmul;
    Alcotest.test_case "interp gemm = reference" `Quick
      test_interp_gemm_matches_reference;
    Alcotest.test_case "interp conv = reference" `Quick
      test_interp_conv_matches_reference;
    Alcotest.test_case "interp darknet = 2-d gemm" `Quick
      test_interp_darknet_equals_2d_gemm;
    Alcotest.test_case "distribution preserves semantics (all kernels)"
      `Quick test_interp_distribution_preserves_semantics;
    Alcotest.test_case "interp argument errors" `Quick test_interp_errors;
    Alcotest.test_case "affine.for rejects non-positive step" `Quick
      test_interp_affine_for_step_guard;
    Alcotest.test_case "affine bound map with no results fails cleanly"
      `Quick test_interp_affine_bound_no_results;
    Alcotest.test_case "affine.for iter_args diagnosed eagerly" `Quick
      test_interp_affine_for_iter_args_diagnosed;
    Alcotest.test_case "scf.for iter_args diagnosed eagerly" `Quick
      test_interp_scf_for_iter_args_diagnosed;
    Alcotest.test_case "signed floordiv/rem sign grid (both engines)" `Quick
      test_interp_signed_div_rem;
    Alcotest.test_case "div/rem by zero raise cleanly (both engines)" `Quick
      test_interp_div_rem_by_zero;
  ]
