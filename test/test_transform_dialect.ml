(* The transform dialect: script construction, printer/parser
   round-trips (QCheck over random valid scripts), interpretation
   against payloads, byte-identity of every pipeline configuration's
   script elaboration with the legacy hard-coded pass lists, per-step
   inapplicability remarks, and verifier rejections. *)

open Ir
module T = Transforms
module Script = Transform.Script
module W = Workloads.Polybench
module P = Mlt.Pipeline

let () = P.register_dialects ()

(* ---- random scripts round-trip through the parser ---------------------- *)

let gen_step =
  let open QCheck.Gen in
  oneof
    [
      map (fun sizes -> Script.Tile sizes)
        (list_size (int_range 1 3) (int_range 1 64));
      return Script.Interchange;
      map (fun h -> Script.Fuse h)
        (oneofl
           [ T.Loop_fuse.No_fuse; T.Loop_fuse.Smart_fuse; T.Loop_fuse.Max_fuse ]);
      map (fun f -> Script.Unroll f) (int_range 2 16);
      return Script.Lower_affine;
      map (fun t -> Script.Lower_linalg t)
        (oneof [ return None; map Option.some (int_range 2 64) ]);
      map3
        (fun mc nc kc -> Script.Blis_schedule { T.Blis_schedule.mc; nc; kc })
        (int_range 1 256) (int_range 1 512) (int_range 1 256);
      map (fun s -> Script.Raise s)
        (oneofl [ "linalg"; "affine-matmul"; "affine" ]);
      map (fun b -> Script.Canonicalize b) bool;
      return Script.Dce;
      return Script.Reorder_chains;
      return Script.To_blas;
    ]

let arb_steps =
  QCheck.make
    ~print:(fun steps ->
      String.concat "; " (List.map Script.step_name steps))
    QCheck.Gen.(list_size (int_range 0 8) gen_step)

let prop_roundtrip =
  QCheck.Test.make ~name:"random scripts: print/parse round-trip" ~count:200
    arb_steps (fun steps ->
      let text = Script.print (Script.of_steps steps) in
      let steps' = Script.parse_steps ~file:"roundtrip.mlir" text in
      List.length steps = List.length steps'
      && List.for_all2 Script.equal_step steps steps'
      (* And printing is a fixpoint: parse . print . parse = parse. *)
      && String.equal text (Script.print (Script.of_steps steps')))

(* ---- every config's script reproduces the legacy pass list ------------- *)

(* The hard-coded pass lists Mlt.Pipeline shipped before the transform
   dialect, inlined verbatim: the redesign's contract is that each
   configuration's script elaboration produces byte-identical IR. *)
let legacy_passes = function
  | P.Clang_O3 -> []
  | P.Pluto_default | P.Pluto_best -> [ T.Pluto.pass T.Pluto.default_config ]
  | P.Mlt_linalg ->
      [
        T.Canonicalize.pass;
        Mlt.Tactics.raise_to_linalg_pass ();
        T.Lower_linalg.tiled_pass ~size:32;
      ]
  | P.Mlt_blas ->
      [
        T.Canonicalize.pass;
        Mlt.Tactics.raise_to_linalg_pass ();
        Mlt.Raise_chain.pass;
        Mlt.To_blas.pass;
        T.Lower_linalg.pass;
      ]
  | P.Mlt_affine_blis ->
      [ T.Canonicalize.pass; Mlt.Tactics.raise_to_affine_matmul_pass () ]

let sole_func m =
  List.find Core.is_func (Core.ops_of_block (Core.module_block m))

let test_configs_match_legacy () =
  let kernels =
    [
      ("mm", W.mm ~ni:8 ~nj:8 ~nk:8 ());
      ("2mm", W.two_mm ~ni:8 ~nj:8 ~nk:8 ~nl:8 ());
    ]
  in
  List.iter
    (fun config ->
      List.iter
        (fun (kname, src) ->
          let scripted = P.prepare config src in
          let legacy = Met.Emit_affine.translate src in
          let pm = Pass.create_manager () in
          Pass.add_all pm (legacy_passes config);
          Pass.run pm (sole_func legacy);
          Verifier.verify legacy;
          Alcotest.(check string)
            (Printf.sprintf "%s on %s byte-identical to legacy pass list"
               (P.config_name config) kname)
            (Printer.op_to_string legacy)
            (Printer.op_to_string scripted))
        kernels)
    P.all_configs

(* The vectorizing Pluto elaboration (interchange + fast_math marking)
   must match Pluto.apply too — it is what the tuner's sweep runs. *)
let test_vectorized_pluto_matches_apply () =
  let src = W.mm ~ni:8 ~nj:8 ~nk:8 () in
  List.iter
    (fun (cfg : T.Pluto.config) ->
      let legacy = Met.Emit_affine.translate src in
      T.Pluto.apply cfg (sole_func legacy);
      Verifier.verify legacy;
      let scripted = Met.Emit_affine.translate src in
      let compiled = Transform.Interp.compile_steps (Script.of_pluto cfg) in
      List.iter
        (fun c -> ignore (Transform.Interp.apply_step c (sole_func scripted)))
        compiled;
      Verifier.verify scripted;
      Alcotest.(check string)
        (T.Pluto.config_to_string cfg ^ " matches Pluto.apply")
        (Printer.op_to_string legacy)
        (Printer.op_to_string scripted))
    [
      { T.Pluto.tile = 16; fusion = T.Loop_fuse.Smart_fuse; vectorize = true };
      { T.Pluto.tile = 1; fusion = T.Loop_fuse.Max_fuse; vectorize = true };
      { T.Pluto.tile = 32; fusion = T.Loop_fuse.No_fuse; vectorize = false };
    ]

(* ---- interpretation details -------------------------------------------- *)

let test_run_applies_in_sequence () =
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  let script =
    Script.of_steps
      [ Script.Canonicalize false; Script.Raise "linalg"; Script.Dce ]
  in
  Transform.Interp.run script (sole_func m);
  Verifier.verify m;
  let raised = ref 0 in
  Core.walk m (fun op ->
      if String.starts_with ~prefix:"linalg." op.Core.o_name then incr raised);
  Alcotest.(check bool) "raised to linalg" true (!raised >= 1)

let test_inapplicable_step_remarks () =
  (* A payload with no linalg ops: lower_linalg applies nowhere and must
     say so through the remark layer. *)
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let remarks = ref [] in
  let count =
    Remark.with_sink
      (fun r -> remarks := r :: !remarks)
      (fun () ->
        let compiled =
          Transform.Interp.compile_steps [ Script.Lower_linalg None ]
        in
        Transform.Interp.apply_step (List.hd compiled) (sole_func m))
  in
  Alcotest.(check int) "applied to nothing" 0 count;
  match
    List.filter
      (fun r ->
        r.Remark.r_kind = Remark.Analysis
        && r.Remark.r_context = Some "transform")
      !remarks
  with
  | [ r ] ->
      Alcotest.(check bool) "remark names the step" true
        (Astring_contains.contains r.Remark.r_message "transform.lower_linalg")
  | rs ->
      Alcotest.failf "expected exactly one inapplicability remark, got %d"
        (List.length rs)

let test_applicable_step_counts () =
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  let compiled = Transform.Interp.compile_steps [ Script.Tile [ 4 ] ] in
  let count = Transform.Interp.apply_step (List.hd compiled) (sole_func m) in
  Alcotest.(check int) "one tiled nest" 1 count

(* ---- rejection of malformed scripts ------------------------------------ *)

let rejects name text =
  match Script.parse ~file:(name ^ ".mlir") text with
  | exception Support.Diag.Error _ -> ()
  | _ -> Alcotest.failf "%s: malformed script accepted" name

let test_verifier_rejections () =
  rejects "empty-sizes"
    "builtin.module { \"transform.tile\"() {sizes = []} : () -> () }";
  rejects "zero-tile"
    "builtin.module { \"transform.tile\"() {sizes = [0]} : () -> () }";
  rejects "bad-heuristic"
    "builtin.module { \"transform.fuse\"() {heuristic = \"speedfuse\"} : () \
     -> () }";
  rejects "unroll-by-one"
    "builtin.module { \"transform.unroll\"() {factor = 1} : () -> () }";
  rejects "unknown-raise-set"
    "builtin.module { \"transform.raise\"() {set = \"mlir\"} : () -> () }";
  rejects "missing-blocking"
    "builtin.module { \"transform.blis_schedule\"() {mc = 64} : () -> () }";
  rejects "stray-attr"
    "builtin.module { \"transform.dce\"() {level = 3} : () -> () }";
  rejects "not-a-transform-op"
    "builtin.module { \"arith.constant\"() {value = 1} : () -> () }"

let test_schedule_names () =
  let s = P.schedule_of_steps [ Script.Tile [ 16 ] ] in
  (match s with
  | P.Custom { name; _ } ->
      Alcotest.(check bool) "digest-derived name" true
        (String.starts_with ~prefix:"script:" name)
  | P.Config _ -> Alcotest.fail "expected a custom schedule");
  let s2 = P.schedule_of_steps [ Script.Tile [ 16 ] ] in
  Alcotest.(check string) "equal scripts, equal default names"
    (P.schedule_name s) (P.schedule_name s2);
  Alcotest.(check string) "explicit name wins" "mine"
    (P.schedule_name (P.schedule_of_steps ~name:"mine" [ Script.Dce ]))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "six configs byte-identical to legacy pass lists"
      `Quick test_configs_match_legacy;
    Alcotest.test_case "vectorized pluto elaborations match Pluto.apply"
      `Quick test_vectorized_pluto_matches_apply;
    Alcotest.test_case "Interp.run applies steps in sequence" `Quick
      test_run_applies_in_sequence;
    Alcotest.test_case "inapplicable step emits an analysis remark" `Quick
      test_inapplicable_step_remarks;
    Alcotest.test_case "applicable step reports its application count"
      `Quick test_applicable_step_counts;
    Alcotest.test_case "verifier rejects malformed scripts" `Quick
      test_verifier_rejections;
    Alcotest.test_case "custom schedule naming" `Quick test_schedule_names;
  ]
