(* Tests for the support utilities and small IR helpers. *)

let test_loc () =
  let l = Support.Loc.make ~file:"x.c" ~line:3 ~col:7 in
  Alcotest.(check string) "render" "x.c:3:7" (Support.Loc.to_string l);
  Alcotest.(check string) "unknown" "<unknown>"
    (Support.Loc.to_string Support.Loc.unknown)

let test_diag () =
  (match Support.Diag.wrap (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "ok passes through" 42 v
  | Error _ -> Alcotest.fail "unexpected error");
  (match
     Support.Diag.wrap (fun () -> Support.Diag.errorf "bad %s %d" "thing" 7)
   with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg -> Alcotest.(check string) "formatted" "bad thing 7" msg);
  let loc = Support.Loc.make ~file:"f.tdl" ~line:1 ~col:2 in
  match Support.Diag.wrap (fun () -> Support.Diag.error ~loc "oops") with
  | Error msg -> Alcotest.(check string) "located" "f.tdl:1:2: oops" msg
  | Ok _ -> Alcotest.fail "expected error"

let test_id_gen () =
  let g = Support.Id_gen.create () in
  let a = Support.Id_gen.next g in
  let b = Support.Id_gen.next g in
  let c = Support.Id_gen.next g in
  Alcotest.(check (list int)) "monotonic" [ 0; 1; 2 ] [ a; b; c ]

let test_typ_helpers () =
  let t = Ir.Typ.memref [ 2; 3; 4 ] Ir.Typ.F32 in
  Alcotest.(check int) "rank" 3 (Ir.Typ.memref_rank t);
  Alcotest.(check (option (list int))) "shape" (Some [ 2; 3; 4 ])
    (Ir.Typ.static_shape t);
  Alcotest.(check (option int)) "elements" (Some 24) (Ir.Typ.num_elements t);
  Alcotest.(check string) "render" "memref<2x3x4xf32>" (Ir.Typ.to_string t);
  let dyn = Ir.Typ.Mem_ref ([ Ir.Typ.Dynamic; Ir.Typ.Static 4 ], Ir.Typ.F32) in
  Alcotest.(check (option (list int))) "dynamic shape" None
    (Ir.Typ.static_shape dyn);
  Alcotest.(check string) "dynamic render" "memref<?x4xf32>"
    (Ir.Typ.to_string dyn);
  Alcotest.(check bool) "scalar" true (Ir.Typ.is_scalar Ir.Typ.Index);
  Alcotest.(check bool) "not scalar" false (Ir.Typ.is_scalar t)

let test_attr_accessors () =
  Alcotest.(check int) "int" 5 (Ir.Attr.get_int (Ir.Attr.Int 5));
  Alcotest.(check (list int)) "ints" [ 1; 2 ]
    (Ir.Attr.get_ints (Ir.Attr.Ints [ 1; 2 ]));
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Attr: expected int, got \"x\"") (fun () ->
      ignore (Ir.Attr.get_int (Ir.Attr.Str "x")));
  let g = Ir.Attr.Grouping [ [ 0; 1 ]; [ 2 ] ] in
  Alcotest.(check string) "grouping render" "{{0, 1}, 2}" (Ir.Attr.to_string g);
  Alcotest.(check bool) "equal" true
    (Ir.Attr.equal g (Ir.Attr.Grouping [ [ 0; 1 ]; [ 2 ] ]));
  Alcotest.(check bool) "not equal" false (Ir.Attr.equal g (Ir.Attr.Int 3))

let test_contraction_spec_errors () =
  let expect_fail s =
    match Support.Diag.wrap (fun () -> Workloads.Contraction_spec.parse s) with
    | Ok _ -> Alcotest.failf "expected rejection of %S" s
    | Error _ -> ()
  in
  expect_fail "ab-cd";
  expect_fail "aab-ab-b";
  expect_fail "abz-ab-b";
  expect_fail "ab--b";
  let t = Workloads.Contraction_spec.parse "abc-acd-db" in
  Alcotest.(check (list char)) "contracted" [ 'd' ]
    (Workloads.Contraction_spec.contracted t);
  Alcotest.(check (list char)) "free1" [ 'a'; 'c' ]
    (Workloads.Contraction_spec.free1 t);
  Alcotest.(check (list char)) "free2" [ 'b' ]
    (Workloads.Contraction_spec.free2 t);
  Alcotest.(check string) "roundtrip" "abc-acd-db"
    (Workloads.Contraction_spec.to_string t);
  Alcotest.(check (float 0.)) "flops"
    (2. *. 3. *. 4. *. 5. *. 6.)
    (Workloads.Contraction_spec.flops t
       ~sizes:[ ('a', 3); ('b', 4); ('c', 5); ('d', 6) ])

(* ---- JSON reader: \uXXXX escapes decode to UTF-8 ------------------ *)

module J = Support.Json

let json =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (J.to_string v))
    ( = )

let parse_ok s =
  match J.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let expect_reject s =
  match J.parse s with
  | Ok _ -> Alcotest.failf "expected %S to be rejected" s
  | Error _ -> ()

let test_json_unicode_escapes () =
  (* One escape from each UTF-8 width class, byte-exact. The old reader
     truncated every code point to its low byte. *)
  Alcotest.check json "1-byte (A)" (J.Str "A") (parse_ok {|"\u0041"|});
  Alcotest.check json "2-byte (e-acute)" (J.Str "\xc3\xa9")
    (parse_ok {|"\u00e9"|});
  Alcotest.check json "3-byte (euro sign)" (J.Str "\xe2\x82\xac")
    (parse_ok {|"\u20ac"|});
  Alcotest.check json "uppercase hex accepted" (J.Str "\xe2\x82\xac")
    (parse_ok {|"\u20AC"|});
  Alcotest.check json "4-byte via surrogate pair"
    (J.Str "\xf0\x9f\x98\x80")
    (parse_ok {|"\ud83d\ude00"|});
  Alcotest.check json "escapes concatenate" (J.Str "A\xc3\xa9B")
    (parse_ok {|"\u0041\u00e9\u0042"|});
  expect_reject {|"\ud83d"|};       (* unpaired high surrogate *)
  expect_reject {|"\ude00"|};       (* unpaired low surrogate *)
  expect_reject {|"\ud83dx"|};      (* high surrogate, then raw text *)
  expect_reject {|"\ud83d\u0041"|}; (* high surrogate, then non-low *)
  expect_reject {|"\u12g4"|};       (* bad hex digit *)
  expect_reject {|"\u1_23"|};       (* int_of_string would take "0x1_23" *)
  expect_reject {|"\u004"|}         (* truncated escape *)

let test_json_writer_roundtrip () =
  let v =
    J.Obj
      [
        ("name", J.Str "a\"b\\c\n\t\xe2\x82\xac");
        ("n", J.num_int 42);
        ("xs", J.List [ J.Null; J.Bool true; J.Num 0.5 ]);
        ("empty", J.Obj []);
      ]
  in
  Alcotest.check json "round-trip" v (parse_ok (J.to_string v));
  Alcotest.(check string) "integers render without a decimal point"
    {|{"a":2,"b":-7}|}
    (J.to_string (J.Obj [ ("a", J.Num 2.); ("b", J.num_int (-7)) ]));
  Alcotest.(check string) "fraction" "0.5" (J.to_string (J.Num 0.5));
  (* Sub-microsecond timings exercise the shortest-round-trip path. *)
  let f = 1.8835067749023438e-05 in
  (match parse_ok (J.to_string (J.Num f)) with
  | J.Num g -> Alcotest.(check (float 0.)) "float exact through text" f g
  | _ -> Alcotest.fail "expected a number");
  Alcotest.check_raises "non-finite rejected"
    (Invalid_argument "Json.to_string: non-finite number") (fun () ->
      ignore (J.to_string (J.Num Float.nan)));
  Alcotest.(check string) "control characters escaped" ("\\u0001" ^ "\\n")
    (J.escape_string "\x01\n");
  Alcotest.(check (option int)) "to_int on integral" (Some 42)
    (J.to_int (J.num_int 42));
  Alcotest.(check (option int)) "to_int on fraction" None
    (J.to_int (J.Num 0.5))

(* ---- Atomic_io: no code path leaves a torn file ------------------- *)

let rec rm_rf path =
  if try Sys.is_directory path with Sys_error _ -> false then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    try Sys.rmdir path with Sys_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let with_tmp_dir f =
  let dir = Filename.temp_dir "mlt_support_test" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_atomic_write () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "out.txt" in
  Support.Atomic_io.write_file ~path "first\n";
  Alcotest.(check string) "written" "first\n" (read_file path);
  Support.Atomic_io.write_file ~path "second\n";
  Alcotest.(check string) "overwritten" "second\n" (read_file path);
  (* A writer that raises mid-way must leave the previous content
     intact and no temp debris behind. *)
  (try
     Support.Atomic_io.with_file ~path (fun oc ->
         Out_channel.output_string oc "torn";
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "old content preserved on raise" "second\n"
    (read_file path);
  Alcotest.(check (list string)) "no temp debris" [ "out.txt" ]
    (List.sort compare (Array.to_list (Sys.readdir dir)));
  Support.Atomic_io.append_line ~path "line1";
  Support.Atomic_io.append_line ~path "line2";
  Alcotest.(check string) "append_line appends with newline"
    "second\nline1\nline2\n" (read_file path)

let test_mkdir_p () =
  with_tmp_dir @@ fun dir ->
  let nested = Filename.concat (Filename.concat dir "a") "b" in
  Support.Atomic_io.mkdir_p nested;
  Alcotest.(check bool) "nested created" true (Sys.is_directory nested);
  Support.Atomic_io.mkdir_p nested;
  (* A regular file on the path is a precise error, not a silent
     success (the old batch mkdir_p only checked Sys.file_exists). *)
  let file = Filename.concat dir "plain" in
  Support.Atomic_io.write_file ~path:file "x";
  (match
     Support.Atomic_io.mkdir_p (Filename.concat file "child")
   with
  | () -> Alcotest.fail "expected mkdir_p through a file to fail"
  | exception Support.Diag.Error (_, msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the offender: %s" msg)
        true
        (String.length msg > 0
        && String.ends_with ~suffix:"exists and is not a directory" msg));
  match Support.Atomic_io.mkdir_p file with
  | () -> Alcotest.fail "expected mkdir_p of a file to fail"
  | exception Support.Diag.Error _ -> ()

let suite =
  [
    Alcotest.test_case "locations" `Quick test_loc;
    Alcotest.test_case "diagnostics" `Quick test_diag;
    Alcotest.test_case "id generation" `Quick test_id_gen;
    Alcotest.test_case "type helpers" `Quick test_typ_helpers;
    Alcotest.test_case "attribute accessors" `Quick test_attr_accessors;
    Alcotest.test_case "contraction specs" `Quick test_contraction_spec_errors;
    Alcotest.test_case "json \\u escapes decode to UTF-8" `Quick
      test_json_unicode_escapes;
    Alcotest.test_case "json writer round-trips" `Quick
      test_json_writer_roundtrip;
    Alcotest.test_case "atomic writes never tear" `Quick test_atomic_write;
    Alcotest.test_case "mkdir_p rejects files on the path" `Quick
      test_mkdir_p;
  ]
