(* Randomized end-to-end properties: the heavyweight guarantees of the
   reproduction. Each property drives whole pipelines on generated
   programs and checks interpreter equivalence. *)

open Ir
module W = Workloads

(* ---- random contraction specs ----------------------------------------- *)

(* Generate a well-formed contraction: pick disjoint index groups
   M (free in A), N (free in B), K (contracted), assemble the output from
   a shuffle of M @ N and the inputs from shuffles of their groups. *)
let gen_spec =
  let open QCheck.Gen in
  let* m_count = int_range 1 2 in
  let* n_count = int_range 1 2 in
  let* k_count = int_range 1 2 in
  let letters = [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ] in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let m_idx = take m_count letters in
  let n_idx = take n_count (List.filteri (fun i _ -> i >= m_count) letters) in
  let k_idx =
    take k_count (List.filteri (fun i _ -> i >= m_count + n_count) letters)
  in
  let* out = shuffle_l (m_idx @ n_idx) in
  let* in1 = shuffle_l (m_idx @ k_idx) in
  let* in2 = shuffle_l (n_idx @ k_idx) in
  let str l = String.init (List.length l) (List.nth l) in
  return (Printf.sprintf "%s-%s-%s" (str out) (str in1) (str in2))

let arb_spec = QCheck.make ~print:Fun.id gen_spec

let prop_random_contraction_ttgt =
  QCheck.Test.make ~name:"random contractions: TTGT raising is semantics-preserving"
    ~count:40 arb_spec (fun spec_str ->
      let spec = W.Contraction_spec.parse spec_str in
      let sizes =
        List.mapi
          (fun i c -> (c, 3 + ((i * 2) mod 4)))
          (W.Contraction_spec.all_indices spec)
      in
      let src =
        W.Contraction_spec.c_source spec ~sizes ~init:false ~name:"kern" ()
      in
      let reference = Met.Emit_affine.translate src in
      let m = Met.Emit_affine.translate src in
      let pat = Mlt.Tactics.contraction spec in
      let n = Rewriter.apply_greedily m (Rewriter.freeze [ pat ]) in
      Verifier.verify m;
      n = 1 && Interp.Eval.equivalent reference m "kern" ~seed:61)

let prop_random_contraction_full_pipeline =
  QCheck.Test.make
    ~name:"random contractions: raise + lower + scf roundtrip" ~count:20
    arb_spec (fun spec_str ->
      let spec = W.Contraction_spec.parse spec_str in
      let sizes =
        List.map (fun c -> (c, 4)) (W.Contraction_spec.all_indices spec)
      in
      let src =
        W.Contraction_spec.c_source spec ~sizes ~init:true ~name:"kern" ()
      in
      let reference = Met.Emit_affine.translate src in
      let m = Met.Emit_affine.translate src in
      ignore
        (Rewriter.apply_greedily m
           (Rewriter.freeze
              [ Mlt.Tactics.fill_pattern (); Mlt.Tactics.contraction spec ]));
      Transforms.Lower_linalg.run m;
      Transforms.Lower_affine.run m;
      ignore (Transforms.Raise_scf.run m);
      Verifier.verify m;
      Interp.Eval.equivalent reference m "kern" ~seed:67)

(* ---- random matrix chains --------------------------------------------- *)

let prop_random_chain_reorder =
  QCheck.Test.make ~name:"random chains: reorder is semantics-preserving"
    ~count:25
    QCheck.(list_of_size (Gen.int_range 4 7) (int_range 2 14))
    (fun dims ->
      QCheck.assume (List.length dims >= 4);
      let src = W.Polybench.matrix_chain dims in
      let reference = Met.Emit_affine.translate src in
      let m = Met.Emit_affine.translate src in
      let f = Option.get (Core.find_func m "chain") in
      ignore (Mlt.Tactics.raise_to_linalg f);
      ignore (Mlt.Raise_chain.reorder f);
      Verifier.verify m;
      Interp.Eval.equivalent reference m "chain" ~seed:71)

(* ---- random tilings ---------------------------------------------------- *)

let prop_random_tiling =
  QCheck.Test.make ~name:"random tile sizes preserve gemm semantics"
    ~count:40
    QCheck.(
      triple (int_range 2 13)
        (triple (int_range 3 11) (int_range 3 11) (int_range 3 11))
        bool)
    (fun (tile, (ni, nj, nk), fuse) ->
      let src = W.Polybench.gemm ~ni ~nj ~nk () in
      let reference = Met.Emit_affine.translate src in
      let m = Met.Emit_affine.translate src in
      if fuse then
        ignore (Transforms.Loop_fuse.run Transforms.Loop_fuse.Max_fuse m);
      Transforms.Loop_tile.tile_all m ~size:tile;
      Verifier.verify m;
      Interp.Eval.equivalent reference m "gemm" ~seed:73)

(* ---- affine map algebra ------------------------------------------------- *)

let gen_perm n =
  QCheck.Gen.(map Array.of_list (shuffle_l (List.init n Fun.id)))

let prop_map_compose_eval =
  QCheck.Test.make ~name:"map composition commutes with evaluation" ~count:200
    QCheck.(
      pair (make (gen_perm 4))
        (quad (int_range 0 9) (int_range 0 9) (int_range 0 9) (int_range 0 9)))
    (fun (p, (a, b, c, d)) ->
      let f = Affine_map.permutation p in
      let g =
        Affine_map.make ~n_dims:4
          Affine_expr.
            [
              add (dim 0) (dim 1);
              mul (const 2) (dim 2);
              add (dim 3) (const 5);
              dim 0;
            ]
      in
      let dims = [| a; b; c; d |] in
      let composed = Affine_map.eval (Affine_map.compose f g) ~dims () in
      let two_step =
        Affine_map.eval f ~dims:(Affine_map.eval g ~dims ()) ()
      in
      composed = two_step)

let prop_inverse_permutation =
  QCheck.Test.make ~name:"permutation inverse round-trips index vectors"
    ~count:200
    QCheck.(pair (make (gen_perm 5)) (make Gen.(array_size (return 5) (int_bound 99))))
    (fun (p, v) ->
      let f = Affine_map.permutation p in
      let inv = Affine_map.permutation (Affine_map.inverse_permutation p) in
      Affine_map.eval inv ~dims:(Affine_map.eval f ~dims:v ()) () = v)

(* ---- random mini-C programs through the parser round trip -------------- *)

let gen_mini_c =
  let open QCheck.Gen in
  let* depth = int_range 1 3 in
  let* extents = list_repeat depth (int_range 2 5) in
  let* use_offset = bool in
  let vars = [ "i"; "j"; "k" ] in
  let subscripts =
    String.concat ""
      (List.mapi (fun d _ -> Printf.sprintf "[%s]" (List.nth vars d)) extents)
  in
  let dims =
    String.concat ""
      (List.map (fun e -> Printf.sprintf "[%d]" (e + if use_offset then 1 else 0)) extents)
  in
  let stmt =
    Printf.sprintf "A%s = A%s + 1.0;" subscripts subscripts
  in
  let rec loops d =
    if d = depth then stmt
    else
      Printf.sprintf "for (int %s = 0; %s < %d; ++%s) { %s }"
        (List.nth vars d) (List.nth vars d) (List.nth extents d)
        (List.nth vars d) (loops (d + 1))
  in
  return (Printf.sprintf "void f(float A%s) { %s }" dims (loops 0))

let prop_random_programs_roundtrip =
  QCheck.Test.make ~name:"random programs: print/parse IR roundtrip" ~count:60
    (QCheck.make ~print:Fun.id gen_mini_c)
    (fun src ->
      let m = Met.Emit_affine.translate src in
      let printed = Printer.op_to_string m in
      let m2 = Parser.parse_module printed in
      Printer.op_to_string m2 = printed
      && Interp.Eval.equivalent m m2 "f" ~seed:79)

(* ---- worklist driver vs full-sweep driver ------------------------------ *)

(* Random affine nests whose bodies bait the canonicalization folds. *)
let gen_fold_mini_c =
  let open QCheck.Gen in
  let* depth = int_range 1 3 in
  let* extents = list_repeat depth (int_range 2 5) in
  let* variant = int_range 0 3 in
  let vars = [ "i"; "j"; "k" ] in
  let subscripts =
    String.concat ""
      (List.mapi (fun d _ -> Printf.sprintf "[%s]" (List.nth vars d)) extents)
  in
  let dims =
    String.concat "" (List.map (Printf.sprintf "[%d]") extents)
  in
  let stmt =
    match variant with
    | 0 -> Printf.sprintf "A%s = A%s + 1.0;" subscripts subscripts
    | 1 -> Printf.sprintf "A%s = A%s * 1.0 + 0.0;" subscripts subscripts
    | 2 -> Printf.sprintf "A%s = 2.0 * 3.0 + A%s;" subscripts subscripts
    | _ -> Printf.sprintf "A%s = 0.0 + A%s * 1.0;" subscripts subscripts
  in
  let rec loops d =
    if d = depth then stmt
    else
      Printf.sprintf "for (int %s = 0; %s < %d; ++%s) { %s }"
        (List.nth vars d) (List.nth vars d) (List.nth extents d)
        (List.nth vars d) (loops (d + 1))
  in
  return (Printf.sprintf "void f(float A%s) { %s }" dims (loops 0))

(* Freshly-built pattern sets per driver run, selected by a bitmask, so
   the two drivers never share compiled-matcher state. *)
let build_patterns bits =
  List.concat
    [
      (if bits land 1 <> 0 then Transforms.Canonicalize.patterns () else []);
      (if bits land 2 <> 0 then Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl
       else []);
      (if bits land 4 <> 0 then
         Tdl.Backend.compile_tdl
           "def MV { pattern y(i) += A(i,j) * x(j) }\n\
            def MVT { pattern y(j) += A(i,j) * x(i) }"
       else []);
      (if bits land 8 <> 0 then [ Mlt.Tactics.fill_pattern () ] else []);
    ]

(* Randomize root declarations: bit i of [mask] relaxes pattern i to Any.
   By the roots contract (the apply function keeps its own op guard), any
   Any-vs-rooted split must agree on the final IR and rewrite count —
   declarations only prune dispatch, never change behaviour. *)
let randomize_roots mask pats =
  List.mapi
    (fun i p ->
      if mask land (1 lsl i) <> 0 then { p with Rewriter.p_roots = Rewriter.Any }
      else p)
    pats

let gen_driver_case =
  let open QCheck.Gen in
  let* bits = int_range 1 15 in
  let* mask1 = int_range 0 ((1 lsl 12) - 1) in
  let* mask2 = int_range 0 ((1 lsl 12) - 1) in
  let* kind = int_range 0 3 in
  let* src =
    match kind with
    | 0 | 1 -> gen_fold_mini_c
    | 2 ->
        let* ni = int_range 2 6 and* nj = int_range 2 6
        and* nk = int_range 2 6 in
        return (W.Polybench.mm ~ni ~nj ~nk ())
    | _ ->
        let* ni = int_range 2 6 and* nj = int_range 2 6
        and* nk = int_range 2 6 in
        return (W.Polybench.gemm ~ni ~nj ~nk ())
  in
  return (bits, mask1, mask2, src)

let prop_worklist_matches_fullsweep =
  QCheck.Test.make
    ~name:
      "worklist driver = full-sweep driver (identical IR and rewrite counts, \
       any root split)"
    ~count:60
    (QCheck.make
       ~print:(fun (bits, mask1, mask2, src) ->
         Printf.sprintf "patterns=%#x roots1=%#x roots2=%#x\n%s" bits mask1
           mask2 src)
       gen_driver_case)
    (fun (bits, mask1, mask2, src) ->
      let m1 = Met.Emit_affine.translate src in
      let m2 = Met.Emit_affine.translate src in
      let fz1 = Rewriter.freeze (randomize_roots mask1 (build_patterns bits)) in
      let fz2 = Rewriter.freeze (randomize_roots mask2 (build_patterns bits)) in
      let n1 = Rewriter.apply_greedily m1 fz1 in
      let n2 = Rewriter.apply_greedily_fullsweep m2 fz2 in
      Verifier.verify m1;
      Verifier.verify m2;
      n1 = n2 && Printer.op_to_string m1 = Printer.op_to_string m2)

let prop_indexed_matches_relaxed =
  QCheck.Test.make
    ~name:
      "op-indexed dispatch = relaxed (unindexed) dispatch under the same \
       driver"
    ~count:40
    (QCheck.make
       ~print:(fun (bits, _, _, src) -> Printf.sprintf "patterns=%#x\n%s" bits src)
       gen_driver_case)
    (fun (bits, _, _, src) ->
      let m1 = Met.Emit_affine.translate src in
      let m2 = Met.Emit_affine.translate src in
      let n1 = Rewriter.apply_greedily m1 (Rewriter.freeze (build_patterns bits)) in
      let n2 =
        Rewriter.apply_greedily m2
          (Rewriter.Frozen.relax (Rewriter.freeze (build_patterns bits)))
      in
      Verifier.verify m1;
      Verifier.verify m2;
      n1 = n2 && Printer.op_to_string m1 = Printer.op_to_string m2)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_contraction_ttgt;
      prop_random_contraction_full_pipeline;
      prop_random_chain_reorder;
      prop_random_tiling;
      prop_map_compose_eval;
      prop_inverse_permutation;
      prop_random_programs_roundtrip;
      prop_worklist_matches_fullsweep;
      prop_indexed_matches_relaxed;
    ]
