(* Multi-domain safety and the sharded batch driver.

   The first half regression-tests the domain-safety fixes directly:
   atomic id generation under parallel create_op bursts, and
   exception-safe listener/sink scopes. The second half is the
   multi-domain stress suite: the tiny polybench workloads compiled on a
   4-domain pool must match the sequential oracle byte-for-byte
   (QCheck randomizes the manifest order), and a crashing input must
   fail only its own entry. *)

open Ir

module W = Workloads.Polybench

(* ---- atomic id generation ----------------------------------------- *)

let test_id_gen_parallel_unique () =
  (* Four domains race [Id_gen.next] on a shared generator; with the
     old non-atomic [incr] two domains could read the same counter
     value and hand out colliding ids. *)
  let gen = Support.Id_gen.create () in
  let per_domain = 20_000 in
  let burst () = Array.init per_domain (fun _ -> Support.Id_gen.next gen) in
  let others = List.init 3 (fun _ -> Domain.spawn burst) in
  let mine = burst () in
  let all = mine :: List.map Domain.join others in
  let seen = Hashtbl.create (4 * per_domain) in
  List.iter
    (fun ids ->
      Array.iter
        (fun id ->
          if Hashtbl.mem seen id then
            Alcotest.failf "id %d handed out twice" id;
          Hashtbl.add seen id ())
        ids)
    all;
  Alcotest.(check int) "every id distinct" (4 * per_domain)
    (Hashtbl.length seen)

let test_create_op_parallel_unique () =
  (* Same race through the public IR constructor: parallel create_op
     bursts must never mint colliding op or value ids (both draw from
     [Id_gen.global]). *)
  let per_domain = 2_000 in
  let burst () =
    Array.init per_domain (fun i ->
        let op =
          Core.create_op
            ~result_types:[ Typ.F32 ]
            (Printf.sprintf "test.burst%d" (i land 7))
        in
        (op.Core.o_id, op.Core.o_results.(0).Core.v_id))
  in
  let others = List.init 3 (fun _ -> Domain.spawn burst) in
  let mine = burst () in
  let all = mine :: List.map Domain.join others in
  let seen = Hashtbl.create (8 * per_domain) in
  let claim id =
    if Hashtbl.mem seen id then Alcotest.failf "id %d minted twice" id;
    Hashtbl.add seen id ()
  in
  List.iter (Array.iter (fun (oid, vid) -> claim oid; claim vid)) all;
  Alcotest.(check int) "op and value ids all distinct" (8 * per_domain)
    (Hashtbl.length seen)

(* ---- exception-safe listener / sink scopes ------------------------ *)

exception Boom

let null_listener =
  {
    Core.on_op_inserted = ignore;
    on_op_erased = ignore;
    on_operand_update = ignore;
  }

let test_listener_stack_restored_on_raise () =
  Alcotest.(check int) "depth 0 outside any scope" 0 (Core.listener_depth ());
  (try
     Core.with_listener null_listener (fun () ->
         Alcotest.(check int) "depth 1 inside" 1 (Core.listener_depth ());
         Core.with_listener null_listener (fun () ->
             Alcotest.(check int) "depth 2 nested" 2 (Core.listener_depth ());
             raise Boom))
   with Boom -> ());
  Alcotest.(check int) "depth restored after nested raise" 0
    (Core.listener_depth ())

let test_listener_raising_mid_notify_still_popped () =
  (* The listener itself raising from a notification must not leave the
     stack deeper than it was: [with_listener] pops on the way out no
     matter who raised. *)
  let angry =
    { null_listener with Core.on_op_inserted = (fun _ -> raise Boom) }
  in
  (try
     Core.with_listener angry (fun () ->
         let block = Core.create_block [] in
         Core.append_op block
           (Core.create_op ~result_types:[ Typ.F32 ] "test.poke"))
   with Boom -> ());
  Alcotest.(check int) "depth restored after listener raised" 0
    (Core.listener_depth ())

let test_trace_sink_restored_on_raise () =
  Alcotest.(check int) "no trace sinks initially" 0 (Trace.installed_count ());
  (try Trace.with_sink ignore (fun () -> raise Boom) with Boom -> ());
  Alcotest.(check int) "trace sink popped after raise" 0
    (Trace.installed_count ());
  Alcotest.(check bool) "trace disabled again" false (Trace.enabled ())

let test_remark_sink_restored_on_raise () =
  Alcotest.(check int) "no remark sinks initially" 0
    (Remark.installed_count ());
  (try
     Remark.with_sink ignore (fun () ->
         Remark.with_sink ignore (fun () ->
             Alcotest.(check int) "two remark sinks" 2
               (Remark.installed_count ());
             raise Boom))
   with Boom -> ());
  Alcotest.(check int) "remark sinks popped after raise" 0
    (Remark.installed_count ())

(* ---- multi-domain stress: batch vs sequential oracle -------------- *)

let stress_entries () =
  (* A slice of the tiny polybench kernels across all three pipeline
     configurations — small enough for the test suite, varied enough to
     exercise every raising path. *)
  let configs =
    [| Mlt.Pipeline.Mlt_linalg; Mlt.Pipeline.Mlt_blas;
       Mlt.Pipeline.Mlt_affine_blis |]
  in
  List.mapi
    (fun i (name, src) ->
      {
        Batch.Manifest.e_name = name;
        e_source = Batch.Manifest.Inline src;
        e_schedule = Mlt.Pipeline.Config configs.(i mod Array.length configs);
      })
    (W.tiny_suite ())

let result_by_name rp name =
  List.find
    (fun (r : Batch.Driver.entry_result) -> r.Batch.Driver.r_name = name)
    rp.Batch.Driver.rp_results

let test_four_domains_match_sequential_oracle () =
  let entries = stress_entries () in
  let manifest = Batch.Manifest.of_entries entries in
  let seq = Batch.Driver.run ~domains:1 manifest in
  let par = Batch.Driver.run ~domains:4 manifest in
  List.iter2
    (fun (s : Batch.Driver.entry_result) (p : Batch.Driver.entry_result) ->
      Alcotest.(check string)
        (s.Batch.Driver.r_name ^ " IR byte-identical")
        s.Batch.Driver.r_ir p.Batch.Driver.r_ir;
      Alcotest.(check string)
        (s.Batch.Driver.r_name ^ " stats identical")
        (Batch.Driver.result_signature s)
        (Batch.Driver.result_signature p))
    seq.Batch.Driver.rp_results par.Batch.Driver.rp_results;
  Alcotest.(check string) "aggregated pass stats identical"
    (Batch.Driver.summary_signature seq.Batch.Driver.rp_summary)
    (Batch.Driver.summary_signature par.Batch.Driver.rp_summary);
  Alcotest.(check int) "no failures" 0 (Batch.Driver.failed_count par)

(* Regression pin for the observability PR: wall-clock seconds and GC
   deltas ride in results and reports but must never reach a signature —
   otherwise cache-vs-fresh and parallel-vs-oracle comparisons turn
   flaky. Perturb both wildly and check the signatures cannot tell. *)
let test_signatures_exclude_wallclock_and_gc () =
  let entries = stress_entries () in
  let rp = Batch.Driver.run ~domains:1 (Batch.Manifest.of_entries entries) in
  let absurd_gc =
    {
      Ir.Pass.minor_words = 1e12;
      major_words = 1e12;
      promoted_words = 1e12;
      minor_collections = 12345;
      major_collections = 6789;
    }
  in
  let r = List.hd rp.Batch.Driver.rp_results in
  let r' =
    {
      r with
      Batch.Driver.r_seconds = r.Batch.Driver.r_seconds +. 3600.;
      r_summary =
        List.map
          (fun s -> { s with Ir.Pass.s_seconds = 999.; s_gc = absurd_gc })
          r.Batch.Driver.r_summary;
    }
  in
  Alcotest.(check string) "result_signature blind to seconds and GC"
    (Batch.Driver.result_signature r)
    (Batch.Driver.result_signature r');
  let perturbed =
    List.map
      (fun s -> { s with Ir.Pass.s_seconds = 999.; s_gc = absurd_gc })
      rp.Batch.Driver.rp_summary
  in
  Alcotest.(check string) "summary_signature blind to seconds and GC"
    (Batch.Driver.summary_signature rp.Batch.Driver.rp_summary)
    (Batch.Driver.summary_signature perturbed)

(* report.json carries the per-entry wall-clock aggregate, and when
   metrics are on the batch counters are bumped from the same
   aggregation as the report — the two artifacts must agree. *)
let test_report_metrics_agreement () =
  let entries = stress_entries () in
  Ir.Metrics.set_enabled true;
  let counter_before name =
    List.fold_left
      (fun acc s ->
        if s.Ir.Metrics.s_metric = name then
          match s.Ir.Metrics.s_value with
          | Ir.Metrics.V_counter n -> n
          | _ -> acc
        else acc)
      0
      (Ir.Metrics.snapshot ())
  in
  let done0 = counter_before "mlt_batch_entries_done" in
  let failed0 = counter_before "mlt_batch_entries_failed" in
  let rp, d1, f1 =
    Fun.protect ~finally:(fun () -> Ir.Metrics.set_enabled false) (fun () ->
        let rp =
          Batch.Driver.run ~domains:2 (Batch.Manifest.of_entries entries)
        in
        ( rp,
          counter_before "mlt_batch_entries_done",
          counter_before "mlt_batch_entries_failed" ))
  in
  Alcotest.(check int) "done counter tracks ok_count"
    (Batch.Driver.ok_count rp) (d1 - done0);
  Alcotest.(check int) "failed counter tracks failed_count"
    (Batch.Driver.failed_count rp)
    (f1 - failed0);
  (* total_entry_seconds is the sum of per-entry wall-clock and appears
     in the JSON report, adjacent to wall_seconds. *)
  let expect =
    List.fold_left
      (fun acc (r : Batch.Driver.entry_result) ->
        acc +. r.Batch.Driver.r_seconds)
      0. rp.Batch.Driver.rp_results
  in
  Alcotest.(check (float 1e-9)) "total_entry_seconds sums r_seconds" expect
    (Batch.Driver.total_entry_seconds rp);
  match Support.Json.parse (Batch.Driver.report_json rp) with
  | Error msg -> Alcotest.failf "report_json invalid: %s" msg
  | Ok j -> (
      match Support.Json.member "total_entry_seconds" j with
      | Some (Support.Json.Num n) ->
          Alcotest.(check (float 1e-9)) "report.json member agrees" expect n
      | _ -> Alcotest.fail "report.json lacks total_entry_seconds")

let test_random_order_qcheck =
  (* Manifest order must not matter: under any permutation, each entry
     compiles to exactly what the canonical sequential oracle produced
     for it, and the manifest-order aggregate is permutation-independent
     up to per-pass row order (compared via sorted signature lines). *)
  let entries = stress_entries () in
  let oracle =
    Batch.Driver.run ~domains:1 (Batch.Manifest.of_entries entries)
  in
  let sorted_lines rp =
    List.sort compare
      (String.split_on_char '\n'
         (Batch.Driver.summary_signature rp.Batch.Driver.rp_summary))
  in
  let n = List.length entries in
  let arb = QCheck.(array_of_size (Gen.return n) (int_bound 1_000_000)) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5 ~name:"randomized manifest order" arb
       (fun keys ->
         let order =
           List.map snd
             (List.sort compare
                (List.mapi (fun i e -> (keys.(i), e)) entries))
         in
         let rp =
           Batch.Driver.run ~domains:4 (Batch.Manifest.of_entries order)
         in
         List.iter
           (fun (r : Batch.Driver.entry_result) ->
             let o = result_by_name oracle r.Batch.Driver.r_name in
             if not (String.equal o.Batch.Driver.r_ir r.Batch.Driver.r_ir)
             then
               QCheck.Test.fail_reportf "IR diverged on %s"
                 r.Batch.Driver.r_name;
             if
               not
                 (String.equal
                    (Batch.Driver.result_signature o)
                    (Batch.Driver.result_signature r))
             then
               QCheck.Test.fail_reportf "stats diverged on %s"
                 r.Batch.Driver.r_name)
           rp.Batch.Driver.rp_results;
         sorted_lines rp = sorted_lines oracle))

let test_fault_isolation () =
  (* A parse error in the middle of the manifest fails exactly its own
     entry; every other entry still matches the oracle. *)
  let good = stress_entries () in
  let crash =
    {
      Batch.Manifest.e_name = "crash";
      e_source = Batch.Manifest.Inline "void broken(float A[4]) {";
      e_schedule = Mlt.Pipeline.Config Mlt.Pipeline.Mlt_linalg;
    }
  in
  let entries =
    match good with
    | a :: b :: rest -> a :: b :: crash :: rest
    | short -> crash :: short
  in
  let oracle = Batch.Driver.run ~domains:1 (Batch.Manifest.of_entries good) in
  let rp = Batch.Driver.run ~domains:4 (Batch.Manifest.of_entries entries) in
  Alcotest.(check int) "exactly one failure" 1 (Batch.Driver.failed_count rp);
  List.iter
    (fun (r : Batch.Driver.entry_result) ->
      match (r.Batch.Driver.r_name, r.Batch.Driver.r_status) with
      | "crash", Batch.Driver.Failed msg ->
          Alcotest.(check bool) "failure mentions a diagnostic" true
            (String.length msg > 0)
      | "crash", Batch.Driver.Done ->
          Alcotest.fail "crashing entry reported Done"
      | name, Batch.Driver.Failed msg ->
          Alcotest.failf "healthy entry %s failed: %s" name msg
      | name, Batch.Driver.Done ->
          Alcotest.(check string) (name ^ " unaffected by the crash")
            (result_by_name oracle name).Batch.Driver.r_ir
            r.Batch.Driver.r_ir)
    rp.Batch.Driver.rp_results

(* ---- write-once dialect registration ------------------------------- *)

let test_register_once_parallel () =
  (* Four domains race a first registration through
     [Dialect.register_once]: the body must run exactly once, and no
     domain may return from [register_once] while the dialect is only
     half-registered (the old non-atomic flag allowed both). *)
  let names = List.init 32 (fun i -> Printf.sprintf "test.regonce%d" i) in
  let flag = Atomic.make false in
  let body_runs = Atomic.make 0 in
  let register () =
    Dialect.register_once flag @@ fun () ->
      Atomic.incr body_runs;
      List.iter
        (fun n ->
          (* Spread the writes out so a racing reader would land mid-way. *)
          for _ = 1 to 10_000 do ignore (Sys.opaque_identity n) done;
          Dialect.register (Dialect.def ~summary:"race probe" n))
        names
  in
  let probe () =
    register ();
    (* The property under test: once register_once returns, every def of
       the dialect is visible — not just a prefix. *)
    List.for_all Dialect.is_registered names
  in
  let others = List.init 3 (fun _ -> Domain.spawn probe) in
  let mine = probe () in
  let all = mine :: List.map Domain.join others in
  Alcotest.(check bool) "no domain saw a half-registered dialect" true
    (List.for_all Fun.id all);
  Alcotest.(check int) "registration body ran exactly once" 1
    (Atomic.get body_runs);
  (* Nested registrations (linalg registers memref, affine registers
     arith + memref) must not deadlock on the registration mutex. *)
  Linalg.Linalg_ops.register ();
  Affine.Affine_ops.register ();
  Alcotest.(check bool) "nested registration completed" true
    (Dialect.is_registered "linalg.matmul"
    && Dialect.is_registered "memref.load"
    && Dialect.is_registered "affine.for")

(* ---- sharded output filenames -------------------------------------- *)

let test_write_outputs_distinct_files () =
  (* "gemm#0" and "gemm_0" both sanitize to "gemm_0"; the manifest-index
     prefix must keep their .mlir outputs apart. *)
  let src = "void f(float A[4]) { for (int i = 0; i < 4; ++i) A[i] = 0.0; }" in
  let entries =
    List.map
      (fun name ->
        {
          Batch.Manifest.e_name = name;
          e_source = Batch.Manifest.Inline src;
          e_schedule = Mlt.Pipeline.Config Mlt.Pipeline.Mlt_linalg;
        })
      [ "gemm#0"; "gemm_0" ]
  in
  let rp = Batch.Driver.run ~domains:1 (Batch.Manifest.of_entries entries) in
  Alcotest.(check int) "both entries compiled" 2 (Batch.Driver.ok_count rp);
  let dir = Filename.temp_dir "mlt_batch_out" "" in
  Batch.Driver.write_outputs ~dir rp;
  let shard0 = Filename.concat dir "shard-0" in
  let mlir_files =
    Array.to_list (Sys.readdir shard0)
    |> List.filter (fun f -> Filename.check_suffix f ".mlir")
    |> List.sort compare
  in
  List.iter
    (fun f -> Sys.remove (Filename.concat shard0 f))
    (Array.to_list (Sys.readdir shard0));
  Sys.remove (Filename.concat dir "report.json");
  Sys.rmdir shard0;
  Sys.rmdir dir;
  Alcotest.(check (list string)) "one output file per manifest entry"
    [ "000-gemm_0.mlir"; "001-gemm_0.mlir" ]
    mlir_files

let suite =
  [
    Alcotest.test_case "parallel Id_gen.next bursts never collide" `Quick
      test_id_gen_parallel_unique;
    Alcotest.test_case "parallel first dialect registration is write-once"
      `Quick test_register_once_parallel;
    Alcotest.test_case "sanitized-name collisions keep distinct outputs"
      `Quick test_write_outputs_distinct_files;
    Alcotest.test_case "parallel create_op bursts never collide" `Quick
      test_create_op_parallel_unique;
    Alcotest.test_case "listener stack restored when body raises" `Quick
      test_listener_stack_restored_on_raise;
    Alcotest.test_case "listener raising mid-notify still popped" `Quick
      test_listener_raising_mid_notify_still_popped;
    Alcotest.test_case "trace sink popped when body raises" `Quick
      test_trace_sink_restored_on_raise;
    Alcotest.test_case "remark sinks popped when body raises" `Quick
      test_remark_sink_restored_on_raise;
    Alcotest.test_case "4 domains match the sequential oracle" `Quick
      test_four_domains_match_sequential_oracle;
    test_random_order_qcheck;
    Alcotest.test_case "signatures exclude wall-clock and GC" `Quick
      test_signatures_exclude_wallclock_and_gc;
    Alcotest.test_case "metrics counters agree with the report" `Quick
      test_report_metrics_agreement;
    Alcotest.test_case "crashing input fails only its own entry" `Quick
      test_fault_isolation;
  ]
