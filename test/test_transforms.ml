(* Tests for lowering, tiling, fusion, Pluto, canonicalization and DCE.
   Semantic preservation is checked with the interpreter throughout. *)

open Ir
module W = Workloads.Polybench
module T = Transforms

let translate = Met.Emit_affine.translate

let func_name_of src =
  (List.hd (Met.C_parser.parse_program src)).Met.C_ast.k_name

let equivalent_after name src transform =
  let name = if Core.find_func (translate src) name = None then func_name_of src else name in
  let reference = translate src in
  let transformed = translate src in
  transform transformed;
  Verifier.verify transformed;
  if not (Interp.Eval.equivalent reference transformed name ~seed:31) then
    Alcotest.failf "%s: transformation changed semantics" name

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

(* --- lowering linalg -> affine --------------------------------------- *)

let raise_to_linalg m =
  let pats =
    Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl
    @ Tdl.Backend.compile_tdl
        "def MV { pattern y(i) += A(i,j) * x(j) }\n\
         def MVT { pattern y(j) += A(i,j) * x(i) }"
  in
  ignore (Rewriter.apply_greedily m (Rewriter.freeze pats))

let test_lower_linalg_roundtrip () =
  (* raise mm to linalg.matmul, lower back to loops, compare. *)
  let src = W.mm ~ni:6 ~nj:7 ~nk:8 () in
  equivalent_after "mm" src (fun m ->
      raise_to_linalg m;
      Alcotest.(check int) "raised" 1 (count_ops m "linalg.matmul");
      T.Lower_linalg.run m;
      Alcotest.(check int) "no linalg left" 0 (count_ops m "linalg.matmul");
      Alcotest.(check int) "loops back" 3 (count_ops m "affine.for"))

let test_lower_linalg_ttgt_roundtrip () =
  (* Full TTGT: transpose/reshape/matmul all lowered to loops. *)
  let spec = Workloads.Contraction_spec.parse "abc-acd-db" in
  let sizes = [ ('a', 3); ('b', 4); ('c', 5); ('d', 6) ] in
  let src =
    Workloads.Contraction_spec.c_source spec ~sizes ~init:false ~name:"kern" ()
  in
  equivalent_after "kern" src (fun m ->
      let tdl = Tdl.Frontend.contraction_tdl ~name:"T" "abc" "acd" "db" in
      ignore (Rewriter.apply_greedily m (Rewriter.freeze (Tdl.Backend.compile_tdl tdl)));
      T.Lower_linalg.run m;
      Alcotest.(check int) "no reshape left" 0 (count_ops m "linalg.reshape"))

let test_lower_matvec_both () =
  List.iter
    (fun (name, src) -> equivalent_after name src raise_to_linalg)
    [ ("atax", W.atax ~m:8 ~n:8 ()); ("mvt", W.mvt ~n:8 ()) ];
  (* and with the extra lowering back to loops *)
  equivalent_after "atax" (W.atax ~m:8 ~n:8 ()) (fun m ->
      raise_to_linalg m;
      T.Lower_linalg.run m)

(* --- tiling ------------------------------------------------------------ *)

let test_tile_divisible () =
  equivalent_after "mm" (W.mm ~ni:8 ~nj:8 ~nk:8 ()) (fun m ->
      T.Loop_tile.tile_all m ~size:4;
      (* 3 tile loops + 3 point loops *)
      Alcotest.(check int) "six loops" 6 (count_ops m "affine.for"))

let test_tile_non_divisible () =
  (* 7 is not divisible by 4: min-bounds must keep semantics. *)
  equivalent_after "mm" (W.mm ~ni:7 ~nj:6 ~nk:5 ()) (fun m ->
      T.Loop_tile.tile_all m ~size:4)

let test_tile_larger_than_trip () =
  equivalent_after "mm" (W.mm ~ni:6 ~nj:6 ~nk:6 ()) (fun m ->
      T.Loop_tile.tile_all m ~size:64;
      (* size >= trip count: loops left untiled *)
      Alcotest.(check int) "three loops" 3 (count_ops m "affine.for"))

let test_tile_imperfect_nest_kernels () =
  List.iter
    (fun (name, src) ->
      equivalent_after name src (fun m -> T.Loop_tile.tile_all m ~size:4))
    (W.tiny_suite ())

(* --- fusion ------------------------------------------------------------ *)

let test_fuse_identical_bounds () =
  (* Two independent init loops fuse under maxfuse. *)
  let src =
    "void f(float a[8], float b[8]) { for (int i = 0; i < 8; ++i) a[i] = \
     1.0; for (int i = 0; i < 8; ++i) b[i] = 2.0; }"
  in
  equivalent_after "f" src (fun m ->
      let n = T.Loop_fuse.run T.Loop_fuse.Max_fuse m in
      Alcotest.(check int) "one pair fused" 1 n;
      Alcotest.(check int) "single loop" 1 (count_ops m "affine.for"))

let test_smartfuse_needs_shared_data () =
  let src =
    "void f(float a[8], float b[8]) { for (int i = 0; i < 8; ++i) a[i] = \
     1.0; for (int i = 0; i < 8; ++i) b[i] = 2.0; }"
  in
  let m = translate src in
  Alcotest.(check int) "smartfuse skips disjoint loops" 0
    (T.Loop_fuse.run T.Loop_fuse.Smart_fuse m);
  let src2 =
    "void f(float a[8], float b[8]) { for (int i = 0; i < 8; ++i) a[i] = \
     1.0; for (int i = 0; i < 8; ++i) b[i] = a[i] + 1.0; }"
  in
  let m2 = translate src2 in
  Alcotest.(check int) "smartfuse fuses shared-data loops" 1
    (T.Loop_fuse.run T.Loop_fuse.Smart_fuse m2)

let test_fuse_blocked_by_dependence () =
  (* Different subscripts on a shared written array: no fusion. *)
  let src =
    "void f(float a[9]) { for (int i = 0; i < 8; ++i) a[i] = 1.0; for (int \
     i = 0; i < 8; ++i) a[i + 1] = a[i] + 1.0; }"
  in
  let m = translate src in
  Alcotest.(check int) "kept apart" 0 (T.Loop_fuse.run T.Loop_fuse.Max_fuse m)

let test_fuse_preserves_semantics_all () =
  List.iter
    (fun (name, src) ->
      equivalent_after name src (fun m ->
          ignore (T.Loop_fuse.run T.Loop_fuse.Max_fuse m));
      equivalent_after name src (fun m ->
          ignore (T.Loop_fuse.run T.Loop_fuse.Smart_fuse m)))
    (W.tiny_suite ())

(* --- pluto -------------------------------------------------------------- *)

let test_pluto_configs_preserve_semantics () =
  let configs = T.Pluto.sweep_configs ~max_trip:16 in
  Alcotest.(check bool) "several configs" true (List.length configs >= 6);
  List.iter
    (fun config ->
      equivalent_after "gemm"
        (W.gemm ~ni:10 ~nj:10 ~nk:10 ())
        (fun m -> T.Pluto.apply config m))
    configs

(* --- canonicalize ------------------------------------------------------- *)

let test_canonicalize_alpha_one () =
  (* C += 1.0 * A * B canonicalizes so the GEMM tactic fires. *)
  let src =
    "void f(float A[6][6], float B[6][6], float C[6][6]) { for (int i = 0; \
     i < 6; ++i) for (int j = 0; j < 6; ++j) for (int k = 0; k < 6; ++k) \
     C[i][j] += 1.0 * A[i][k] * B[k][j]; }"
  in
  let m = translate src in
  let pats = Rewriter.freeze (Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl) in
  Alcotest.(check int) "no match before canonicalization" 0
    (Rewriter.apply_greedily m pats);
  ignore (T.Canonicalize.run m);
  Verifier.verify m;
  Alcotest.(check int) "matches after" 1 (Rewriter.apply_greedily m pats)

let test_canonicalize_folds_constants () =
  let f = Core.create_func ~name:"t" ~arg_types:[ Typ.memref [ 1 ] Typ.F32 ] () in
  let b = Builder.at_end (Core.func_entry f) in
  let x = Std_dialect.Arith.constant_float b 2. in
  let y = Std_dialect.Arith.constant_float b 3. in
  let s = Std_dialect.Arith.addf b x y in
  let buf = List.hd (Core.func_args f) in
  ignore (Affine.Affine_ops.store_simple b s buf
            [ Std_dialect.Arith.constant_index b 0 ]);
  ignore (Builder.build b "func.return");
  ignore (T.Canonicalize.run f);
  (* The addf is gone; a single folded 5.0 constant feeds the store. *)
  Alcotest.(check int) "no addf" 0 (count_ops f "arith.addf");
  let stores = ref [] in
  Core.walk f (fun op ->
      if Affine.Affine_ops.is_store op then stores := op :: !stores);
  match !stores with
  | [ st ] -> (
      match Core.defining_op (Affine.Affine_ops.stored_value st) with
      | Some c ->
          Alcotest.(check (option (float 0.))) "folded" (Some 5.)
            (Std_dialect.Arith.constant_float_value c)
      | None -> Alcotest.fail "stored value has no defining op")
  | _ -> Alcotest.fail "expected one store"

let stored_constant f =
  let stores = ref [] in
  Core.walk f (fun op ->
      if Affine.Affine_ops.is_store op then stores := op :: !stores);
  match !stores with
  | [ st ] -> (
      match Core.defining_op (Affine.Affine_ops.stored_value st) with
      | Some c -> Std_dialect.Arith.constant_float_value c
      | None -> Alcotest.fail "stored value has no defining op")
  | _ -> Alcotest.fail "expected exactly one store"

let test_canonicalize_mul_zero_gated () =
  (* x *. 0.0 with a runtime x must NOT fold by default: x could be NaN,
     +/-inf or -0.0, where the result is not +0.0. *)
  let build () =
    let f =
      Core.create_func ~name:"t" ~arg_types:[ Typ.memref [ 1 ] Typ.F32 ] ()
    in
    let b = Builder.at_end (Core.func_entry f) in
    let buf = List.hd (Core.func_args f) in
    let i0 = Std_dialect.Arith.constant_index b 0 in
    let x = Affine.Affine_ops.load_simple b buf [ i0 ] in
    let z = Std_dialect.Arith.constant_float b 0.0 in
    let p = Std_dialect.Arith.mulf b x z in
    ignore (Affine.Affine_ops.store_simple b p buf [ i0 ]);
    ignore (Builder.build b "func.return");
    f
  in
  let f = build () in
  ignore (T.Canonicalize.run f);
  Verifier.verify f;
  Alcotest.(check int) "mulf kept without fast-math" 1
    (count_ops f "arith.mulf");
  let g = build () in
  ignore (T.Canonicalize.run ~fast_math:true g);
  Verifier.verify g;
  Alcotest.(check int) "mulf folded under fast-math" 0
    (count_ops g "arith.mulf")

let test_canonicalize_nan_inf_const_folds () =
  (* Constant*constant folding is exact, so it stays on without fast-math
     and must propagate NaN: nan*0 = nan, inf*0 = nan — never +0.0. *)
  let check name lhs rhs =
    let f =
      Core.create_func ~name:"t" ~arg_types:[ Typ.memref [ 1 ] Typ.F32 ] ()
    in
    let b = Builder.at_end (Core.func_entry f) in
    let buf = List.hd (Core.func_args f) in
    let x = Std_dialect.Arith.constant_float b lhs in
    let y = Std_dialect.Arith.constant_float b rhs in
    let p = Std_dialect.Arith.mulf b x y in
    ignore
      (Affine.Affine_ops.store_simple b p buf
         [ Std_dialect.Arith.constant_index b 0 ]);
    ignore (Builder.build b "func.return");
    ignore (T.Canonicalize.run f);
    Alcotest.(check int) (name ^ ": mulf folded") 0 (count_ops f "arith.mulf");
    match stored_constant f with
    | Some v ->
        Alcotest.(check bool) (name ^ ": folds to NaN") true (Float.is_nan v)
    | None -> Alcotest.fail (name ^ ": expected a folded constant")
  in
  check "nan*0" Float.nan 0.0;
  check "inf*0" Float.infinity 0.0;
  check "0*neg-inf" 0.0 Float.neg_infinity

(* --- dce ----------------------------------------------------------------- *)

let test_dce_removes_dead_buffer () =
  let src =
    "void f(float a[8]) { float t[8]; for (int i = 0; i < 8; ++i) t[i] = \
     1.0; for (int i = 0; i < 8; ++i) a[i] = 2.0; }"
  in
  equivalent_after "f" src (fun m ->
      ignore (T.Dce.run m);
      Alcotest.(check int) "alloc gone" 0 (count_ops m "memref.alloc");
      Alcotest.(check int) "dead loop gone" 1 (count_ops m "affine.for"))

let test_dce_keeps_live_buffer () =
  let src =
    "void f(float a[8]) { float t[8]; for (int i = 0; i < 8; ++i) t[i] = \
     1.0; for (int i = 0; i < 8; ++i) a[i] = t[i]; }"
  in
  let m = translate src in
  ignore (T.Dce.run m);
  Alcotest.(check int) "alloc kept" 1 (count_ops m "memref.alloc")

(* --- affine -> scf -------------------------------------------------------- *)

let test_lower_affine_to_scf () =
  List.iter
    (fun (name, src) ->
      equivalent_after name src (fun m ->
          T.Lower_affine.run m;
          Alcotest.(check int) (name ^ ": no affine.for") 0
            (count_ops m "affine.for");
          Alcotest.(check int) (name ^ ": no affine.load") 0
            (count_ops m "affine.load")))
    (W.tiny_suite ())

let test_lower_affine_with_reshape_delinearization () =
  (* TTGT raising then linalg lowering produces floordiv/mod maps; the SCF
     lowering must expand them to arith ops correctly. *)
  let spec = Workloads.Contraction_spec.parse "abc-acd-db" in
  let sizes = [ ('a', 3); ('b', 4); ('c', 5); ('d', 6) ] in
  let src =
    Workloads.Contraction_spec.c_source spec ~sizes ~init:false ~name:"kern" ()
  in
  equivalent_after "kern" src (fun m ->
      let tdl = Tdl.Frontend.contraction_tdl ~name:"T" "abc" "acd" "db" in
      ignore (Rewriter.apply_greedily m (Rewriter.freeze (Tdl.Backend.compile_tdl tdl)));
      T.Lower_linalg.run m;
      T.Lower_affine.run m;
      Alcotest.(check bool) "has scf loops" true (count_ops m "scf.for" > 0);
      Alcotest.(check bool) "has integer division" true
        (count_ops m "arith.floordivsi" > 0))

let suite =
  [
    Alcotest.test_case "lower linalg.matmul roundtrip" `Quick
      test_lower_linalg_roundtrip;
    Alcotest.test_case "lower TTGT pipeline roundtrip" `Quick
      test_lower_linalg_ttgt_roundtrip;
    Alcotest.test_case "lower matvec kernels" `Quick test_lower_matvec_both;
    Alcotest.test_case "tile divisible" `Quick test_tile_divisible;
    Alcotest.test_case "tile non-divisible (min bounds)" `Quick
      test_tile_non_divisible;
    Alcotest.test_case "tile larger than trip count" `Quick
      test_tile_larger_than_trip;
    Alcotest.test_case "tile all tiny kernels" `Quick
      test_tile_imperfect_nest_kernels;
    Alcotest.test_case "fuse identical bounds" `Quick
      test_fuse_identical_bounds;
    Alcotest.test_case "smartfuse requires shared data" `Quick
      test_smartfuse_needs_shared_data;
    Alcotest.test_case "fusion blocked by dependences" `Quick
      test_fuse_blocked_by_dependence;
    Alcotest.test_case "fusion preserves semantics (all kernels)" `Quick
      test_fuse_preserves_semantics_all;
    Alcotest.test_case "pluto sweep preserves semantics" `Quick
      test_pluto_configs_preserve_semantics;
    Alcotest.test_case "canonicalize enables alpha=1 raising" `Quick
      test_canonicalize_alpha_one;
    Alcotest.test_case "canonicalize folds constants" `Quick
      test_canonicalize_folds_constants;
    Alcotest.test_case "canonicalize: x*0 gated behind fast-math" `Quick
      test_canonicalize_mul_zero_gated;
    Alcotest.test_case "canonicalize: NaN/inf const folds" `Quick
      test_canonicalize_nan_inf_const_folds;
    Alcotest.test_case "dce removes dead buffers" `Quick
      test_dce_removes_dead_buffer;
    Alcotest.test_case "dce keeps live buffers" `Quick
      test_dce_keeps_live_buffer;
    Alcotest.test_case "lower affine to scf (all kernels)" `Quick
      test_lower_affine_to_scf;
    Alcotest.test_case "scf lowering of delinearized reshape" `Quick
      test_lower_affine_with_reshape_delinearization;
  ]
