(* Tests for SCF -> Affine raising (footnote 1: MLT can also lift from
   SCF): lower every kernel all the way to SCF, raise it back, and check
   both structure and semantics; then continue the raising all the way to
   Linalg — the full progressive-raising ladder. *)

open Ir
module T = Transforms
module W = Workloads.Polybench

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

let test_roundtrip_all_kernels () =
  List.iter
    (fun (name, src) ->
      let reference = Met.Emit_affine.translate src in
      let m = Met.Emit_affine.translate src in
      T.Lower_affine.run m;
      Alcotest.(check int) (name ^ ": fully lowered") 0
        (count_ops m "affine.for");
      let raised = T.Raise_scf.run m in
      if raised = 0 then Alcotest.failf "%s: nothing raised" name;
      Alcotest.(check int) (name ^ ": no scf left") 0 (count_ops m "scf.for");
      Alcotest.(check int) (name ^ ": no memref.load left") 0
        (count_ops m "memref.load");
      Verifier.verify m;
      let fname =
        (List.hd (Met.C_parser.parse_program src)).Met.C_ast.k_name
      in
      if not (Interp.Eval.equivalent reference m fname ~seed:37) then
        Alcotest.failf "%s: scf raising changed semantics" name)
    (W.tiny_suite ())

let test_full_ladder_scf_to_blas () =
  (* SCF -> Affine -> Linalg -> BLAS: the complete progressive raising. *)
  let src = W.mm ~ni:8 ~nj:8 ~nk:8 () in
  let reference = Met.Emit_affine.translate src in
  let m = Met.Emit_affine.translate src in
  T.Lower_affine.run m;
  ignore (T.Raise_scf.run m);
  let raised = Mlt.Tactics.raise_to_linalg m in
  Alcotest.(check int) "gemm found after scf raising" 1 raised;
  ignore (Mlt.To_blas.run m);
  Alcotest.(check int) "sgemm call" 1 (count_ops m "blas.sgemm");
  Verifier.verify m;
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "mm" ~seed:41)

let test_access_map_reconstruction () =
  (* A strided, shifted access survives the SCF round trip with the same
     map: A[2*i + 1]. *)
  let src =
    "void f(float A[16], float B[4]) { for (int i = 0; i < 4; ++i) B[i] = \
     A[2*i + 1]; }"
  in
  let m = Met.Emit_affine.translate src in
  T.Lower_affine.run m;
  ignore (T.Raise_scf.run m);
  let maps = ref [] in
  Core.walk m (fun op ->
      if Affine.Affine_ops.is_load op then
        maps := Affine_map.to_string (Affine.Affine_ops.access_map op) :: !maps);
  Alcotest.(check (list string)) "reconstructed map" [ "(d0) -> (2 * d0 + 1)" ]
    !maps

let test_delinearized_reshape_roundtrip () =
  (* floordiv/mod maps (reshape lowering) survive SCF and come back. *)
  let spec = Workloads.Contraction_spec.parse "abc-acd-db" in
  let sizes = [ ('a', 3); ('b', 4); ('c', 5); ('d', 6) ] in
  let src =
    Workloads.Contraction_spec.c_source spec ~sizes ~init:false ~name:"kern" ()
  in
  let reference = Met.Emit_affine.translate src in
  let m = Met.Emit_affine.translate src in
  let tdl = Tdl.Frontend.contraction_tdl ~name:"T" "abc" "acd" "db" in
  ignore (Rewriter.apply_greedily m (Rewriter.freeze (Tdl.Backend.compile_tdl tdl)));
  T.Lower_linalg.run m;
  T.Lower_affine.run m;
  ignore (T.Raise_scf.run m);
  Alcotest.(check int) "no scf left" 0 (count_ops m "scf.for");
  Verifier.verify m;
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "kern" ~seed:43)

let test_non_constant_bounds_stay_scf () =
  (* A loop with a data-dependent bound cannot be raised; it must be left
     intact rather than mangled. *)
  let f =
    Core.create_func ~name:"f"
      ~arg_types:[ Typ.memref [ 8 ] Typ.F32 ]
      ~arg_hints:[ "A" ] ()
  in
  let b = Builder.at_end (Core.func_entry f) in
  let lb = Std_dialect.Arith.constant_index b 0 in
  let step = Std_dialect.Arith.constant_index b 1 in
  (* ub = lb + step: not a constant op, so raising must skip the loop. *)
  let ub = Std_dialect.Arith.addi b lb step in
  ignore
    (Std_dialect.Scf.for_ b ~lb ~ub ~step (fun b iv ->
         let c = Std_dialect.Arith.constant_float b 1.0 in
         ignore
           (Std_dialect.Memref_ops.store b c (List.hd (Core.func_args f))
              [ iv ])));
  ignore (Builder.build b "func.return");
  let n = T.Raise_scf.run f in
  Verifier.verify f;
  (* The access inside may still raise, but the loop must stay scf. *)
  Alcotest.(check int) "loop stays scf" 1 (count_ops f "scf.for");
  ignore n

let suite =
  [
    Alcotest.test_case "scf roundtrip all kernels" `Quick
      test_roundtrip_all_kernels;
    Alcotest.test_case "full ladder scf->affine->linalg->blas" `Quick
      test_full_ladder_scf_to_blas;
    Alcotest.test_case "access map reconstruction" `Quick
      test_access_map_reconstruction;
    Alcotest.test_case "delinearized maps roundtrip" `Quick
      test_delinearized_reshape_roundtrip;
    Alcotest.test_case "non-constant bounds stay scf" `Quick
      test_non_constant_bounds_stay_scf;
  ]
