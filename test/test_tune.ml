(* The schedule autotuner: winner identical (down to IR bytes) to the
   legacy sequential Pluto sweep, deterministic across domain counts and
   seeds, and never worse than the pluto-default baseline on the gemm
   search space. *)

open Ir
module T = Transforms
module M = Machine
module W = Workloads.Polybench
module Script = Transform.Script

let () = Mlt.Pipeline.register_dialects ()

let machine = M.Machine_model.amd_2920x

let src = W.mm ~ni:16 ~nj:16 ~nk:16 ()

let translate () = Met.Emit_affine.translate src

let sole_func m =
  List.find Core.is_func (Core.ops_of_block (Core.module_block m))

let max_trip = 16

(* The sequential sweep Mlt.Pipeline ran before the tuner existed,
   inlined verbatim: first strict minimum over sweep_configs order. *)
let legacy_sweep () =
  let best =
    List.fold_left
      (fun best cfg ->
        let m = translate () in
        let f = sole_func m in
        T.Pluto.apply cfg f;
        Verifier.verify m;
        let report = M.Perf.time_func machine f in
        match best with
        | Some (_, _, (b : M.Perf.report))
          when b.M.Perf.seconds <= report.M.Perf.seconds ->
            best
        | _ -> Some (cfg, m, report))
      None
      (T.Pluto.sweep_configs ~max_trip)
  in
  Option.get best

let test_winner_matches_legacy_sweep () =
  let cfg, legacy_ir, legacy_report = legacy_sweep () in
  let outcome =
    Tune.search ~domains:1 ~machine ~translate (Tune.pluto_space ~max_trip)
  in
  Alcotest.(check string) "same winning configuration"
    ("pluto-" ^ T.Pluto.config_to_string cfg)
    outcome.Tune.o_best.Tune.c_name;
  Alcotest.(check (float 0.)) "same modelled seconds"
    legacy_report.M.Perf.seconds
    outcome.Tune.o_best_report.M.Perf.seconds;
  (* Replaying the winning script must reproduce the sweep's IR bytes. *)
  let replay = translate () in
  List.iter
    (fun c -> ignore (Transform.Interp.apply_step c (sole_func replay)))
    (Transform.Interp.compile_steps outcome.Tune.o_best.Tune.c_steps);
  Alcotest.(check string) "winning IR byte-identical"
    (Printer.op_to_string legacy_ir)
    (Printer.op_to_string replay)

let test_deterministic_across_domains () =
  let outcomes =
    List.map
      (fun domains ->
        Tune.search ~domains ~machine ~translate (Tune.pluto_space ~max_trip))
      [ 1; 2; 4; 7 ]
  in
  match outcomes with
  | first :: rest ->
      List.iter
        (fun (o : Tune.outcome) ->
          Alcotest.(check int) "same winner index" first.Tune.o_best_index
            o.Tune.o_best_index;
          Alcotest.(check string) "same winner name"
            first.Tune.o_best.Tune.c_name o.Tune.o_best.Tune.c_name;
          Alcotest.(check (float 0.)) "same seconds"
            first.Tune.o_stats.Tune.t_best_seconds
            o.Tune.o_stats.Tune.t_best_seconds)
        rest
  | [] -> assert false

let test_subsample_deterministic () =
  let space = Tune.gemm_space ~max_trip () in
  let names o =
    List.map
      (fun (ev : Tune.evaluation) -> ev.Tune.ev_candidate.Tune.c_name)
      o.Tune.o_evaluations
  in
  let a = Tune.search ~domains:1 ~seed:7 ~limit:6 ~machine ~translate space in
  let b = Tune.search ~domains:3 ~seed:7 ~limit:6 ~machine ~translate space in
  Alcotest.(check (list string)) "same subsampled candidates" (names a)
    (names b);
  Alcotest.(check int) "limit respected" 6 a.Tune.o_stats.Tune.t_candidates;
  Alcotest.(check string) "baseline candidate always kept"
    (List.hd (List.map (fun c -> c.Tune.c_name) space))
    (List.hd (names a));
  Alcotest.(check string) "same winner" a.Tune.o_best.Tune.c_name
    b.Tune.o_best.Tune.c_name;
  let c = Tune.search ~domains:1 ~seed:8 ~limit:6 ~machine ~translate space in
  Alcotest.(check bool) "a different seed may pick differently" true
    (List.length (names c) = 6)

let test_gemm_space_beats_default () =
  let outcome =
    Tune.search ~domains:2 ~machine ~translate
      (Tune.gemm_space ~max_trip ())
  in
  let default_seconds =
    (Mlt.Pipeline.time Mlt.Pipeline.Pluto_default machine src)
      .M.Perf.seconds
  in
  Alcotest.(check bool) "tuned never worse than pluto-default" true
    (outcome.Tune.o_stats.Tune.t_best_seconds <= default_seconds +. 1e-12)

let test_failing_candidates_lose_not_abort () =
  (* A candidate that stops at the Linalg level cannot be timed (the
     machine model only times affine loops and library calls): it must
     lose with its error recorded, not crash the search. *)
  let space =
    [
      { Tune.c_name = "baseline"; c_steps = [] };
      {
        Tune.c_name = "broken";
        c_steps = [ Script.Canonicalize false; Script.Raise "linalg" ];
      };
    ]
  in
  let outcome = Tune.search ~domains:1 ~machine ~translate space in
  Alcotest.(check int) "both candidates recorded" 2
    outcome.Tune.o_stats.Tune.t_candidates;
  let broken =
    List.find
      (fun (ev : Tune.evaluation) ->
        ev.Tune.ev_candidate.Tune.c_name = "broken")
      outcome.Tune.o_evaluations
  in
  Alcotest.(check bool) "broken candidate carries its error" true
    (broken.Tune.ev_error <> None)

let test_pluto_best_pipeline_uses_tuner () =
  (* Config Pluto_best must report the same winner the tuner finds, and
     surface the search stats through time_schedule_ext. *)
  let report, stats =
    Mlt.Pipeline.time_schedule_ext
      (Mlt.Pipeline.Config Mlt.Pipeline.Pluto_best)
      machine src
  in
  let _, _, legacy_report = legacy_sweep () in
  Alcotest.(check (float 0.)) "pluto-best = legacy sweep winner"
    legacy_report.M.Perf.seconds report.M.Perf.seconds;
  match stats with
  | Some st ->
      Alcotest.(check int) "stats cover the whole sweep"
        (List.length (T.Pluto.sweep_configs ~max_trip:16))
        st.Tune.t_candidates;
      Alcotest.(check (float 0.)) "stats carry the winning seconds"
        report.M.Perf.seconds st.Tune.t_best_seconds
  | None -> Alcotest.fail "Pluto_best should return tuner stats"

let suite =
  [
    Alcotest.test_case "winner byte-identical to the legacy Pluto sweep"
      `Quick test_winner_matches_legacy_sweep;
    Alcotest.test_case "winner independent of the domain count" `Quick
      test_deterministic_across_domains;
    Alcotest.test_case "seeded subsampling is deterministic" `Quick
      test_subsample_deterministic;
    Alcotest.test_case "gemm space never loses to pluto-default" `Quick
      test_gemm_space_beats_default;
    Alcotest.test_case "failing candidates lose instead of aborting" `Quick
      test_failing_candidates_lose_not_abort;
    Alcotest.test_case "Pluto_best routes through the tuner" `Quick
      test_pluto_best_pipeline_uses_tuner;
  ]
