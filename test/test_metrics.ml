(* Tests for the domain-safe metrics registry (Ir.Metrics): the
   log-bucket boundary arithmetic, write-once descriptor registration,
   cross-domain merge determinism, the JSON round-trip, and the
   Prometheus text exposition. Metric names are unique per test — the
   registry is process-global and descriptors are never unregistered. *)

open Ir
module J = Support.Json

let contains = Astring_contains.contains

(* Run [f] with metrics enabled, restoring the disabled default (other
   suites assert on the disabled fast path). *)
let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let find_sample name =
  List.find_opt (fun s -> s.Metrics.s_metric = name) (Metrics.snapshot ())

let counter_value name =
  match find_sample name with
  | Some { Metrics.s_value = Metrics.V_counter n; _ } -> n
  | _ -> Alcotest.failf "no counter sample %S" name

let hist_value name =
  match find_sample name with
  | Some { Metrics.s_value = Metrics.V_histogram h; _ } -> h
  | _ -> Alcotest.failf "no histogram sample %S" name

(* ---- bucket boundaries -------------------------------------------- *)

let test_bucket_boundaries () =
  let b = Metrics.bucket_of_seconds in
  let ns v = v *. 1e-9 in
  (* Degenerate inputs all land in bucket 0. *)
  Alcotest.(check int) "zero" 0 (b 0.);
  Alcotest.(check int) "negative" 0 (b (-1.0));
  Alcotest.(check int) "nan" 0 (b Float.nan);
  Alcotest.(check int) "sub-ns" 0 (b (ns 0.5));
  (* Exact powers of two land in the bucket they lower-bound: bucket i
     holds [2^(i-1), 2^i) ns. *)
  Alcotest.(check int) "1ns opens bucket 1" 1 (b (ns 1.));
  Alcotest.(check int) "1.99ns stays in bucket 1" 1 (b (ns 1.99));
  Alcotest.(check int) "2ns opens bucket 2" 2 (b (ns 2.));
  Alcotest.(check int) "4ns opens bucket 3" 3 (b (ns 4.));
  Alcotest.(check int) "1us" 10 (b 1e-6);
  (* Overflow: bucket 63 holds everything at or above 2^62 ns. *)
  Alcotest.(check int) "2^62 ns overflows" 63 (b (ns (Float.ldexp 1. 62)));
  Alcotest.(check int) "2^80 ns overflows" 63 (b (ns (Float.ldexp 1. 80)));
  Alcotest.(check int) "infinity overflows" 63 (b Float.infinity);
  (* Upper bounds are consistent with bucket placement: every finite
     observation is strictly below its bucket's upper bound and at or
     above the previous bucket's. *)
  Alcotest.(check (float 0.)) "bucket 0 upper = 1ns" 1e-9
    (Metrics.bucket_upper_seconds 0);
  Alcotest.(check (float 0.)) "overflow upper = inf" Float.infinity
    (Metrics.bucket_upper_seconds (Metrics.bucket_count - 1));
  List.iter
    (fun v ->
      let i = b v in
      Alcotest.(check bool)
        (Printf.sprintf "%g below upper(%d)" v i)
        true
        (v < Metrics.bucket_upper_seconds i);
      if i > 0 && v > 0. then
        Alcotest.(check bool)
          (Printf.sprintf "%g at/above upper(%d)" v (i - 1))
          true
          (v >= Metrics.bucket_upper_seconds (i - 1)))
    [ ns 1.; ns 1.5; ns 2.; ns 1023.; ns 1024.; 1e-6; 0.5; 3.25; 1e6 ]

(* ---- registration semantics ---------------------------------------- *)

let test_registration_write_once () =
  with_metrics @@ fun () ->
  let c1 = Metrics.counter ~help:"first" "tm_reg_counter" in
  let c2 = Metrics.counter "tm_reg_counter" in
  Metrics.incr c1;
  Metrics.add c2 2;
  Alcotest.(check int) "both handles hit the same cell" 3
    (counter_value "tm_reg_counter");
  (* Re-registering under a different kind is a hard error, not a
     silent shadow. *)
  match Metrics.gauge "tm_reg_counter" with
  | _ -> Alcotest.fail "kind mismatch did not raise"
  | exception Support.Diag.Error (_, msg) ->
      Alcotest.(check bool) "error names the existing kind" true
        (contains msg "already registered as a counter")

let test_disabled_updates_are_dropped () =
  let c = Metrics.counter "tm_disabled_counter" in
  Alcotest.(check bool) "disabled by default" false (Metrics.enabled ());
  Metrics.incr c;
  Metrics.add c 41;
  with_metrics @@ fun () ->
  Alcotest.(check int) "updates while disabled dropped" 0
    (counter_value "tm_disabled_counter");
  (* [time] must still run the body (and return its value) either way. *)
  Metrics.set_enabled false;
  let h = Metrics.histogram "tm_disabled_hist" in
  Alcotest.(check int) "time returns body result while disabled" 7
    (Metrics.time h (fun () -> 7));
  Metrics.set_enabled true;
  Alcotest.(check int) "no observation recorded while disabled" 0
    (hist_value "tm_disabled_hist").Metrics.h_count

(* ---- cross-domain merge determinism -------------------------------- *)

let test_four_domain_merge_deterministic () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "tm_md_counter" in
  let g = Metrics.gauge "tm_md_gauge" in
  let h = Metrics.histogram "tm_md_hist" in
  let per_domain = 1000 in
  let work d () =
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.set g (float_of_int d);
      (* Exactly representable sums: 2^-20 s each, all in one bucket. *)
      ignore i;
      Metrics.observe h (Float.ldexp 1. (-20))
    done
  in
  let snap () =
    let doms = List.init 4 (fun d -> Domain.spawn (work (d + 1))) in
    List.iter Domain.join doms;
    ( counter_value "tm_md_counter",
      (match find_sample "tm_md_gauge" with
      | Some { Metrics.s_value = Metrics.V_gauge v; _ } -> v
      | _ -> Alcotest.fail "no gauge"),
      hist_value "tm_md_hist" )
  in
  let c1, g1, h1 = snap () in
  Alcotest.(check int) "counter sums across domains" (4 * per_domain) c1;
  Alcotest.(check (float 0.)) "gauge merge takes the max" 4. g1;
  Alcotest.(check int) "histogram count sums" (4 * per_domain)
    h1.Metrics.h_count;
  Alcotest.(check (float 0.)) "histogram sum is exact"
    (float_of_int (4 * per_domain) *. Float.ldexp 1. (-20))
    h1.Metrics.h_sum;
  let bkt = Metrics.bucket_of_seconds (Float.ldexp 1. (-20)) in
  Alcotest.(check int) "all mass in one bucket" (4 * per_domain)
    h1.Metrics.h_buckets.(bkt);
  (* A second identical round doubles everything: joined shards keep
     contributing to the global snapshot, in a domain-count-independent
     way. *)
  let c2, _, h2 = snap () in
  Alcotest.(check int) "second round accumulates" (8 * per_domain) c2;
  Alcotest.(check int) "histogram accumulates" (8 * per_domain)
    h2.Metrics.h_count;
  (* Snapshots come back sorted by name — the order every exporter
     depends on. *)
  let names = List.map (fun s -> s.Metrics.s_metric) (Metrics.snapshot ()) in
  Alcotest.(check (list string)) "snapshot sorted by name"
    (List.sort compare names) names

(* ---- JSON round-trip and merge -------------------------------------- *)

let test_json_roundtrip () =
  with_metrics @@ fun () ->
  Metrics.reset ();
  let c = Metrics.counter ~help:"a counter" "tm_rt_counter" in
  let g = Metrics.gauge "tm_rt_gauge" in
  let h = Metrics.histogram ~help:"a histogram" "tm_rt_hist" in
  Metrics.add c 42;
  Metrics.set g 2.5;
  List.iter (Metrics.observe h) [ 1e-9; 1e-6; 1e-3; 0.5; Float.infinity ];
  let samples = Metrics.snapshot () in
  let j = Metrics.to_json_value ~run_meta:(Support.Run_meta.json ()) samples in
  (* The document is strict JSON and parses back to the same samples
     (h_sum with infinity is not representable, so observe drops the
     non-finite value from the sum but still counts it). *)
  (match J.parse (J.to_string j) with
  | Error msg -> Alcotest.failf "exported JSON does not re-parse: %s" msg
  | Ok _ -> ());
  (match Support.Run_meta.schema_version_of j with
  | Some v ->
      Alcotest.(check int) "run_meta schema stamped"
        Support.Run_meta.schema_version v
  | None -> Alcotest.fail "run_meta missing from metrics JSON");
  match Metrics.parse_json j with
  | Error msg -> Alcotest.failf "parse_json failed: %s" msg
  | Ok parsed ->
      Alcotest.(check int) "same sample count" (List.length samples)
        (List.length parsed);
      List.iter2
        (fun (a : Metrics.sample) (b : Metrics.sample) ->
          Alcotest.(check string) "name" a.Metrics.s_metric b.Metrics.s_metric;
          match (a.Metrics.s_value, b.Metrics.s_value) with
          | Metrics.V_counter x, Metrics.V_counter y ->
              Alcotest.(check int) "counter value" x y
          | Metrics.V_gauge x, Metrics.V_gauge y ->
              Alcotest.(check (float 0.)) "gauge value" x y
          | Metrics.V_histogram x, Metrics.V_histogram y ->
              Alcotest.(check int) "hist count" x.Metrics.h_count
                y.Metrics.h_count;
              Alcotest.(check (array int)) "hist buckets" x.Metrics.h_buckets
                y.Metrics.h_buckets
          | _ -> Alcotest.failf "kind mismatch for %S" a.Metrics.s_metric)
        samples parsed;
      (* merge_samples doubles counters and histogram buckets —
         the same associative rules as the cross-domain merge. *)
      let merged = Metrics.merge_samples parsed parsed in
      let find n l = List.find (fun s -> s.Metrics.s_metric = n) l in
      (match (find "tm_rt_counter" merged).Metrics.s_value with
      | Metrics.V_counter n -> Alcotest.(check int) "merged counter" 84 n
      | _ -> Alcotest.fail "merged counter lost its kind");
      match (find "tm_rt_hist" merged).Metrics.s_value with
      | Metrics.V_histogram m ->
          Alcotest.(check int) "merged hist count" 10 m.Metrics.h_count
      | _ -> Alcotest.fail "merged histogram lost its kind"

let test_prometheus_exposition () =
  with_metrics @@ fun () ->
  Metrics.reset ();
  let c = Metrics.counter ~help:"helpful" "tm_prom_counter" in
  let h = Metrics.histogram "tm_prom_hist" in
  Metrics.add c 7;
  Metrics.observe h 1e-6;
  let text = Metrics.to_prometheus (Metrics.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains text needle))
    [
      "# TYPE tm_prom_counter counter";
      "# HELP tm_prom_counter helpful";
      "tm_prom_counter 7";
      "# TYPE tm_prom_hist histogram";
      (* The cumulative series always ends with the mandatory +Inf
         bucket and the _sum/_count pair. *)
      "tm_prom_hist_bucket{le=\"+Inf\"} 1";
      "tm_prom_hist_count 1";
    ]

let suite =
  [
    Alcotest.test_case "log-bucket boundary edge cases" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "descriptor registration is write-once" `Quick
      test_registration_write_once;
    Alcotest.test_case "updates while disabled are dropped" `Quick
      test_disabled_updates_are_dropped;
    Alcotest.test_case "4-domain merge is deterministic" `Quick
      test_four_domain_merge_deterministic;
    Alcotest.test_case "JSON round-trip and offline merge" `Quick
      test_json_roundtrip;
    Alcotest.test_case "prometheus text exposition" `Quick
      test_prometheus_exposition;
  ]
