(* Tests for the pass manager (timing instrumentation used by §5.2) and
   the dialect registry. *)

open Ir
module W = Workloads.Polybench

let test_manager_runs_in_order () =
  let log = ref [] in
  let mk name = Pass.make ~name (fun _ -> log := name :: !log) in
  let pm = Pass.create_manager () in
  Pass.add_all pm [ mk "a"; mk "b"; mk "c" ];
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  Pass.run pm m;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_manager_records_timings () =
  let pm = Pass.create_manager () in
  Pass.add_all pm
    [
      Transforms.Canonicalize.pass;
      Transforms.Lower_linalg.pass;
      Transforms.Lower_affine.pass;
      Transforms.Dce.pass;
    ];
  let m = Met.Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  Pass.run pm m;
  let ts = Pass.timings pm in
  Alcotest.(check int) "one timing per pass" 4 (List.length ts);
  Alcotest.(check (list string)) "names"
    [ "canonicalize"; "lower-linalg-to-affine"; "lower-affine-to-scf"; "dce" ]
    (List.map (fun t -> t.Pass.pass_name) ts);
  Alcotest.(check bool) "total accumulates" true (Pass.total_seconds pm >= 0.);
  Pass.clear_timings pm;
  Alcotest.(check int) "cleared" 0 (List.length (Pass.timings pm))

let test_manager_verify_each_catches_breakage () =
  let breaker =
    Pass.make ~name:"breaker" (fun root ->
        (* Introduce a use of an undefined value. *)
        let f = Option.get (Core.find_func root "mm") in
        let loop = List.hd (Affine.Loops.top_level_loops f) in
        let iv = Affine.Affine_ops.for_iv loop in
        let b = Builder.at_end (Core.func_entry f) in
        ignore (Affine.Affine_ops.apply b (Affine_map.identity 1) [ iv ]))
  in
  let pm = Pass.create_manager ~verify_each:true () in
  Pass.add pm breaker;
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  match Support.Diag.wrap (fun () -> Pass.run pm m) with
  | Ok () -> Alcotest.fail "expected verification failure naming the pass"
  | Error msg ->
      Alcotest.(check bool) "names the pass" true
        (Astring_contains.contains msg "breaker")

let test_full_pipeline_as_passes () =
  (* The whole raising+lowering pipeline expressed through the manager. *)
  let reference = Met.Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  let m = Met.Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  let pm = Pass.create_manager ~verify_each:true () in
  Pass.add_all pm
    [
      Transforms.Canonicalize.pass;
      Pass.make ~name:"raise-to-linalg" (fun root ->
          ignore (Mlt.Tactics.raise_to_linalg root));
      Mlt.Raise_chain.pass;
      Mlt.To_blas.pass;
      Transforms.Lower_linalg.pass;
      Transforms.Lower_affine.pass;
      Transforms.Dce.pass;
    ];
  Pass.run pm m;
  Alcotest.(check bool) "equivalent after 7-pass pipeline" true
    (Interp.Eval.equivalent reference m "gemm" ~seed:83)

let test_failing_pass_keeps_timing () =
  (* A pass raising mid-run must still contribute its timing entry. *)
  let pm = Pass.create_manager () in
  Pass.add_all pm
    [
      Pass.make ~name:"ok" (fun _ -> ());
      Pass.make ~name:"boom" (fun _ -> Support.Diag.errorf "kaboom");
      Pass.make ~name:"never" (fun _ -> ());
    ];
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  (match Support.Diag.wrap (fun () -> Pass.run pm m) with
  | Ok () -> Alcotest.fail "expected the failing pass to raise"
  | Error _ -> ());
  Alcotest.(check (list string)) "partial report keeps the failing pass"
    [ "ok"; "boom" ]
    (List.map (fun t -> t.Pass.pass_name) (Pass.timings pm))

let test_nested_pipeline_timing () =
  let pm = Pass.create_manager () in
  Pass.add pm Transforms.Canonicalize.pass;
  Pass.add_pipeline pm "lowering"
    [ Transforms.Lower_linalg.pass; Transforms.Lower_affine.pass ];
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  Pass.run pm m;
  let ts = Pass.timings pm in
  Alcotest.(check (list string)) "qualified names, aggregate after children"
    [
      "canonicalize";
      "lowering/lower-linalg-to-affine";
      "lowering/lower-affine-to-scf";
      "lowering";
    ]
    (List.map (fun t -> t.Pass.pass_name) ts);
  let depth name =
    (List.find (fun t -> t.Pass.pass_name = name) ts).Pass.depth
  in
  Alcotest.(check int) "children at depth 1" 1
    (depth "lowering/lower-affine-to-scf");
  Alcotest.(check int) "aggregate at depth 0" 0 (depth "lowering");
  let seconds name =
    (List.find (fun t -> t.Pass.pass_name = name) ts).Pass.seconds
  in
  Alcotest.(check bool) "aggregate covers its children" true
    (seconds "lowering"
    >= seconds "lowering/lower-linalg-to-affine"
       +. seconds "lowering/lower-affine-to-scf");
  (* total sums only depth-0 entries: no double counting. *)
  Alcotest.(check bool) "total excludes nested entries" true
    (Pass.total_seconds pm
    <= seconds "canonicalize" +. seconds "lowering" +. 1e-9)

let test_mlt_linalg_pipeline_stats () =
  (* The Mlt_linalg evaluation pipeline, instrumented end to end. *)
  let pm = Pass.create_manager () in
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  ignore (Mlt.Pipeline.prepare_module ~pm Mlt.Pipeline.Mlt_linalg m);
  let ts = Pass.timings pm in
  Alcotest.(check (list string)) "pipeline passes"
    [
      "transform.canonicalize";
      "transform.raise[linalg]";
      "transform.lower_linalg[32]";
    ]
    (List.map (fun t -> t.Pass.pass_name) ts);
  let entry name = List.find (fun t -> t.Pass.pass_name = name) ts in
  let raise_t = entry "transform.raise[linalg]" in
  Alcotest.(check bool) "raising rewrote at least one site" true
    (raise_t.Pass.rewrites >= 1);
  Alcotest.(check bool) "attempts >= rewrites" true
    (raise_t.Pass.match_attempts >= raise_t.Pass.rewrites);
  Alcotest.(check bool) "raising shrinks the op count" true
    (raise_t.Pass.ops_after < raise_t.Pass.ops_before);
  let lower_t = entry "transform.lower_linalg[32]" in
  Alcotest.(check bool) "lowering re-expands the op count" true
    (lower_t.Pass.ops_after > lower_t.Pass.ops_before)

let test_ir_snapshots () =
  let snaps = ref [] in
  let pm =
    Pass.create_manager ~snapshot:Pass.After_all
      ~ir_sink:(fun ~pass_name ~ir -> snaps := (pass_name, ir) :: !snaps)
      ()
  in
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  ignore (Mlt.Pipeline.prepare_module ~pm Mlt.Pipeline.Mlt_linalg m);
  let snaps = List.rev !snaps in
  Alcotest.(check int) "one snapshot per pass" 3 (List.length snaps);
  let after_raise = List.assoc "transform.raise[linalg]" snaps in
  Alcotest.(check bool) "snapshot shows the raised op" true
    (Astring_contains.contains after_raise "linalg.matmul");
  let after_lower = List.assoc "transform.lower_linalg[32]" snaps in
  Alcotest.(check bool) "snapshot shows the lowered loops" true
    (Astring_contains.contains after_lower "affine.for")

let test_reports_and_summaries () =
  let pm = Pass.create_manager () in
  Pass.add_all pm
    [ Transforms.Canonicalize.pass; Transforms.Dce.pass ];
  let run_once () =
    Pass.run pm (Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()))
  in
  run_once ();
  run_once ();
  let json = Pass.report_json pm in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true
        (Astring_contains.contains json needle))
    [
      "\"total_seconds\":"; "\"passes\":["; "\"name\":\"canonicalize\"";
      "\"ops_before\":"; "\"ops_after\":"; "\"match_attempts\":";
      "\"rewrites\":"; "\"depth\":0";
    ];
  let table = Pass.report_table pm in
  Alcotest.(check bool) "table lists dce" true
    (Astring_contains.contains table "dce");
  (* Two runs aggregate into one row per pass. *)
  let summaries = Pass.summarize pm in
  Alcotest.(check (list string)) "summary order"
    [ "canonicalize"; "dce" ]
    (List.map (fun s -> s.Pass.s_name) summaries);
  List.iter
    (fun s -> Alcotest.(check int) "two runs each" 2 s.Pass.s_runs)
    summaries;
  Alcotest.(check bool) "summary json has runs" true
    (Astring_contains.contains (Pass.summary_json pm) "\"runs\":2")

let test_summary_merges_pattern_stats () =
  (* Two instrumented runs of the raising pass: [summarize] must fold the
     per-run [patterns] arrays into one per-pattern row with summed
     counters, and [summary_json] must render that array. *)
  let pm = Pass.create_manager () in
  Pass.add pm (Mlt.Tactics.raise_to_linalg_pass ());
  let run_once () =
    Pass.run pm (Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()))
  in
  run_once ();
  run_once ();
  (* Each run recorded its own per-pattern deltas... *)
  let per_run =
    List.map
      (fun t ->
        List.find
          (fun (p : Rewriter.pattern_stat) -> p.ps_name = "GEMM")
          t.Pass.pattern_stats)
      (Pass.timings pm)
  in
  Alcotest.(check int) "two timing entries" 2 (List.length per_run);
  List.iter
    (fun (p : Rewriter.pattern_stat) ->
      Alcotest.(check int) "one hit per run" 1 p.ps_hits)
    per_run;
  (* ...and the summary folds them. *)
  (match Pass.summarize pm with
  | [ s ] ->
      Alcotest.(check string) "one row" "raise-affine-to-linalg" s.Pass.s_name;
      Alcotest.(check int) "two runs" 2 s.Pass.s_runs;
      let gemm =
        List.find
          (fun (p : Rewriter.pattern_stat) -> p.ps_name = "GEMM")
          s.Pass.s_patterns
      in
      Alcotest.(check int) "hits summed across runs" 2 gemm.ps_hits;
      Alcotest.(check bool) "attempts summed too" true (gemm.ps_attempts >= 2);
      Alcotest.(check int) "activations summed" 2 gemm.ps_activations;
      let fill =
        List.find
          (fun (p : Rewriter.pattern_stat) -> p.ps_name = "raise-fill")
          s.Pass.s_patterns
      in
      Alcotest.(check int) "other participants merged as well" 2 fill.ps_hits
  | ss -> Alcotest.failf "expected one summary row, got %d" (List.length ss));
  let json = Pass.summary_json pm in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "summary json contains %s" needle)
        true
        (Astring_contains.contains json needle))
    [ "\"patterns\":["; "\"name\":\"GEMM\""; "\"hits\":2" ]

let test_diag_error_names_pass_and_loc () =
  (* A Diag.Error raised mid-pass is re-reported with the failing pass's
     qualified name; a location attached by the pass body survives. *)
  let loc = Support.Loc.make ~file:"k.c" ~line:7 ~col:2 in
  let pm = Pass.create_manager () in
  Pass.add_pipeline pm "pipe"
    [
      Pass.make ~name:"ok" (fun _ -> ());
      Pass.make ~name:"boom" (fun _ ->
          raise (Support.Diag.Error (loc, "kaboom")));
    ];
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  match Support.Diag.wrap (fun () -> Pass.run pm m) with
  | Ok () -> Alcotest.fail "expected the pass to raise"
  | Error msg ->
      Alcotest.(check bool) "qualified pass name" true
        (Astring_contains.contains msg "pass 'pipe/boom'");
      Alcotest.(check bool) "original message kept" true
        (Astring_contains.contains msg "kaboom");
      Alcotest.(check bool) "location kept" true
        (Astring_contains.contains msg "k.c:7:2")

let test_dialect_registry () =
  Std_dialect.Arith.register ();
  Std_dialect.Scf.register ();
  Affine.Affine_ops.register ();
  Linalg.Linalg_ops.register ();
  Blas.Blas_ops.register ();
  let ops = Dialect.registered_ops () in
  List.iter
    (fun name ->
      if not (List.mem name ops) then Alcotest.failf "%s not registered" name)
    [
      "arith.addf"; "affine.for"; "affine.matmul"; "scf.for";
      "linalg.matmul"; "linalg.contract"; "blas.sgemm"; "memref.load";
    ];
  Alcotest.(check bool) "addf commutative" true
    (Dialect.is_commutative
       (Core.create_op ~operands:[] ~result_types:[] "arith.addf"));
  Alcotest.(check bool) "subf not commutative" false
    (Dialect.is_commutative
       (Core.create_op ~operands:[] ~result_types:[] "arith.subf"));
  Alcotest.(check string) "dialect_of" "affine" (Dialect.dialect_of "affine.for")

let suite =
  [
    Alcotest.test_case "manager runs in order" `Quick
      test_manager_runs_in_order;
    Alcotest.test_case "manager records timings" `Quick
      test_manager_records_timings;
    Alcotest.test_case "verify-each names the breaking pass" `Quick
      test_manager_verify_each_catches_breakage;
    Alcotest.test_case "full pipeline through the manager" `Quick
      test_full_pipeline_as_passes;
    Alcotest.test_case "failing pass keeps its timing entry" `Quick
      test_failing_pass_keeps_timing;
    Alcotest.test_case "nested pipeline timing" `Quick
      test_nested_pipeline_timing;
    Alcotest.test_case "mlt-linalg pipeline statistics" `Quick
      test_mlt_linalg_pipeline_stats;
    Alcotest.test_case "IR snapshots after each pass" `Quick
      test_ir_snapshots;
    Alcotest.test_case "JSON/table reports and aggregation" `Quick
      test_reports_and_summaries;
    Alcotest.test_case "dialect registry" `Quick test_dialect_registry;
  ]
