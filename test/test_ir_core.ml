(* Tests for the IR object graph, builder, verifier and printer. *)

open Ir
module A = Affine.Affine_ops

let mk_gemm ?(m = 4) ?(n = 4) ?(k = 4) () =
  let t = Typ.memref [ m; k ] Typ.F32 in
  let t2 = Typ.memref [ k; n ] Typ.F32 in
  let t3 = Typ.memref [ m; n ] Typ.F32 in
  let f =
    Core.create_func ~name:"gemm" ~arg_types:[ t; t2; t3 ]
      ~arg_hints:[ "A"; "B"; "C" ] ()
  in
  let[@warning "-8"] [ a; bv; c ] = Core.func_args f in
  let b = Builder.at_end (Core.func_entry f) in
  ignore
    (A.for_const b ~hint:"i" ~lb:0 ~ub:m (fun b i ->
         ignore
           (A.for_const b ~hint:"j" ~lb:0 ~ub:n (fun b j ->
                ignore
                  (A.for_const b ~hint:"k" ~lb:0 ~ub:k (fun b kv ->
                       let c0 = A.load_simple b c [ i; j ] in
                       let x = A.load_simple b a [ i; kv ] in
                       let y = A.load_simple b bv [ kv; j ] in
                       let p = Std_dialect.Arith.mulf b x y in
                       let s = Std_dialect.Arith.addf b p c0 in
                       ignore (A.store_simple b s c [ i; j ])))))));
  ignore (Builder.build b "func.return");
  f

let test_build_and_verify () =
  let f = mk_gemm () in
  match Verifier.verify_result f with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verification failed: %s" e

let test_walk_counts () =
  let f = mk_gemm () in
  let fors = ref 0 and loads = ref 0 and stores = ref 0 in
  Core.walk f (fun op ->
      if A.is_for op then incr fors;
      if A.is_load op then incr loads;
      if A.is_store op then incr stores);
  Alcotest.(check int) "fors" 3 !fors;
  Alcotest.(check int) "loads" 3 !loads;
  Alcotest.(check int) "stores" 1 !stores

let test_printer_gemm () =
  let f = mk_gemm () in
  let s = Printer.op_to_string f in
  List.iter
    (fun fragment ->
      if not (Astring_contains.contains s fragment) then
        Alcotest.failf "printed IR missing %S in:\n%s" fragment s)
    [
      "func.func @gemm(";
      "affine.for %i = 0 to 4";
      "affine.load %C[%i, %j] : memref<4x4xf32>";
      "arith.mulf";
      "affine.store";
      "func.return";
    ]

let test_uses_and_replace () =
  let f = mk_gemm () in
  let c = List.nth (Core.func_args f) 2 in
  let uses = Core.uses f c in
  (* C is used by one load and one store. *)
  Alcotest.(check int) "uses of C" 2 (List.length uses);
  (* Replace C by A everywhere; C now unused. *)
  let a = List.hd (Core.func_args f) in
  Core.replace_uses f ~old_v:c ~new_v:a;
  Alcotest.(check int) "uses of C after" 0 (List.length (Core.uses f c))

let test_insert_detach () =
  let f = mk_gemm () in
  let entry = Core.func_entry f in
  let first = List.hd (Core.ops_of_block entry) in
  let b = Builder.before first in
  let v = Std_dialect.Arith.constant_float b 1.0 in
  (match Core.defining_op v with
  | Some op ->
      Alcotest.(check bool) "inserted before" true
        (Core.op_equal (List.hd (Core.ops_of_block entry)) op);
      Core.detach_op op;
      Alcotest.(check bool) "detached" true (op.o_parent = None)
  | None -> Alcotest.fail "constant should have a defining op");
  Alcotest.(check int) "block size restored" 2
    (List.length (Core.ops_of_block entry))

let test_clone_independent () =
  let f = mk_gemm () in
  let g = Core.clone_op f in
  (* Mutating the clone must not affect the original. *)
  let loops = Affine.Loops.all_loops g in
  List.iter Core.erase_op loops;
  Alcotest.(check int) "original still has loops" 3
    (List.length (Affine.Loops.all_loops f));
  Alcotest.(check int) "clone emptied" 0
    (List.length (Affine.Loops.all_loops g))

let test_clone_remaps_operands () =
  let f = mk_gemm () in
  let g = Core.clone_op f in
  (* Every operand referenced inside the clone must be a value created by
     the clone (function args or inner results), never the original's. *)
  let original_values = Hashtbl.create 64 in
  Core.walk f (fun op ->
      Array.iter
        (fun (r : Core.value) -> Hashtbl.replace original_values r.v_id ())
        op.o_results);
  List.iter
    (fun (a : Core.value) -> Hashtbl.replace original_values a.v_id ())
    (Core.func_args f);
  Core.walk g (fun op ->
      Array.iter
        (fun (v : Core.value) ->
          if Hashtbl.mem original_values v.v_id then
            Alcotest.failf "clone leaked original value %s"
              (Printer.debug_value v))
        op.o_operands)

let test_verifier_catches_bad_type () =
  let f = mk_gemm () in
  (* Build an addf with mismatched types by hand. *)
  let entry = Core.func_entry f in
  let b = Builder.at_end entry in
  let c1 = Std_dialect.Arith.constant_float b 1.0 in
  let idx = Std_dialect.Arith.constant_index b 0 in
  let bad =
    Core.create_op ~operands:[ c1; idx ] ~result_types:[ Typ.F32 ]
      "arith.addf"
  in
  Core.append_op entry bad;
  match Verifier.verify_result f with
  | Ok () -> Alcotest.fail "expected verification failure"
  | Error _ -> ()

let test_verifier_catches_scope_violation () =
  let f = mk_gemm () in
  (* Use an induction variable outside its loop. *)
  let loop = List.hd (Affine.Loops.top_level_loops f) in
  let iv = A.for_iv loop in
  let b = Builder.at_end (Core.func_entry f) in
  let map = Affine_map.identity 1 in
  ignore (A.apply b map [ iv ]);
  match Verifier.verify_result f with
  | Ok () -> Alcotest.fail "expected scope violation"
  | Error _ -> ()

let test_use_lists_track_mutation () =
  let f = mk_gemm () in
  let c = List.nth (Core.func_args f) 2 in
  Alcotest.(check bool) "has_uses" true (Core.has_uses f c);
  (* Detached users don't count as uses under [f]. *)
  let load, idx =
    match Core.uses f c with
    | (load, idx) :: _ -> (load, idx)
    | [] -> Alcotest.fail "expected users of C"
  in
  Core.detach_op load;
  Alcotest.(check int) "uses of C after detach" 1
    (List.length (Core.uses f c));
  (* Reattach and redirect one operand; the use moves lists. *)
  Core.append_op (Core.func_entry f) load;
  let a = List.hd (Core.func_args f) in
  Core.set_operand load idx a;
  Alcotest.(check int) "uses of C after set_operand" 1
    (List.length (Core.uses f c));
  Alcotest.(check bool) "A gained the use" true
    (List.exists (fun (o, i) -> Core.op_equal o load && i = idx)
       (Core.uses f a));
  (* Erasing a user scrubs its use-list entries. *)
  Core.erase_op load;
  Alcotest.(check bool) "no dangling entry after erase" false
    (List.exists (fun (o, _) -> Core.op_equal o load) a.Core.v_uses)

let test_erase_scrubs_nested_uses () =
  let f = mk_gemm () in
  let c = List.nth (Core.func_args f) 2 in
  (* The users of C live deep inside the loop nest; erasing the outer
     loop must remove them from C's use-list. *)
  let outer = List.hd (Affine.Loops.top_level_loops f) in
  Core.erase_op outer;
  Alcotest.(check bool) "C unused after nest erase" false
    (Core.has_uses f c);
  Alcotest.(check int) "raw use-list scrubbed" 0 (List.length c.Core.v_uses)

let test_region_registry_no_leak () =
  let baseline = Core.region_registry_size () in
  for _ = 1 to 10 do
    let m = Core.create_module () in
    let f = mk_gemm () in
    Core.append_op (Core.module_block m) f;
    (* Rewrite a bit so intermediate loop structures come and go too. *)
    Transforms.Loop_tile.tile_all f ~size:2;
    Core.erase_op m
  done;
  Alcotest.(check int) "registry returns to baseline" baseline
    (Core.region_registry_size ())

let test_append_many_then_read () =
  (* O(1) appends flush correctly and preserve order across interleaved
     reads and inserts. *)
  let blk = Core.create_block [] in
  let b = Builder.at_end blk in
  let n = 2000 in
  for i = 0 to n - 1 do
    ignore (Std_dialect.Arith.constant_float b (float_of_int i))
  done;
  let ops = Core.ops_of_block blk in
  Alcotest.(check int) "count" n (List.length ops);
  let in_order =
    List.mapi
      (fun i op -> Std_dialect.Arith.constant_float_value op = Some (float_of_int i))
      ops
  in
  Alcotest.(check bool) "order preserved" true (List.for_all Fun.id in_order);
  (* Insert relative to an op that was sitting in the pending tail. *)
  let anchor = List.nth ops 1000 in
  let ib = Builder.before anchor in
  ignore (Std_dialect.Arith.constant_float ib (-1.0));
  Alcotest.(check int) "count after insert" (n + 1)
    (List.length (Core.ops_of_block blk))

let test_module_func_lookup () =
  let m = Core.create_module () in
  let f = mk_gemm () in
  Core.append_op (Core.module_block m) f;
  (match Core.find_func m "gemm" with
  | Some g -> Alcotest.(check string) "name" "gemm" (Core.func_name g)
  | None -> Alcotest.fail "find_func failed");
  Alcotest.(check bool) "missing" true (Core.find_func m "nope" = None)

let test_loops_utilities () =
  let f = mk_gemm () in
  let top = Affine.Loops.top_level_loops f in
  Alcotest.(check int) "one top-level nest" 1 (List.length top);
  let nest = Affine.Loops.perfect_nest (List.hd top) in
  Alcotest.(check int) "depth 3" 3 (List.length nest);
  let _, body = Affine.Loops.nest_with_body (List.hd top) in
  Alcotest.(check int) "body ops" 6 (List.length body);
  match Affine.Loops.nest_trip_counts nest with
  | Some counts -> Alcotest.(check (list int)) "trips" [ 4; 4; 4 ] counts
  | None -> Alcotest.fail "expected constant trip counts"

let suite =
  [
    Alcotest.test_case "build gemm and verify" `Quick test_build_and_verify;
    Alcotest.test_case "walk counts ops" `Quick test_walk_counts;
    Alcotest.test_case "printer output" `Quick test_printer_gemm;
    Alcotest.test_case "uses and replace" `Quick test_uses_and_replace;
    Alcotest.test_case "use-lists track mutation" `Quick
      test_use_lists_track_mutation;
    Alcotest.test_case "erase scrubs nested uses" `Quick
      test_erase_scrubs_nested_uses;
    Alcotest.test_case "region registry does not leak" `Quick
      test_region_registry_no_leak;
    Alcotest.test_case "O(1) append flushes in order" `Quick
      test_append_many_then_read;
    Alcotest.test_case "insert and detach" `Quick test_insert_detach;
    Alcotest.test_case "clone is independent" `Quick test_clone_independent;
    Alcotest.test_case "clone remaps operands" `Quick test_clone_remaps_operands;
    Alcotest.test_case "verifier: bad operand type" `Quick
      test_verifier_catches_bad_type;
    Alcotest.test_case "verifier: scope violation" `Quick
      test_verifier_catches_scope_violation;
    Alcotest.test_case "module and func lookup" `Quick test_module_func_lookup;
    Alcotest.test_case "loop utilities" `Quick test_loops_utilities;
  ]
