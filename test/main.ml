let () =
  Alcotest.run "mlt"
    [
      ("support", Test_support.suite);
      ("intern", Test_intern.suite);
      ("affine-expr", Test_affine_expr.suite);
      ("ir-core", Test_ir_core.suite);
      ("ir-parser", Test_parser.suite);
      ("met", Test_met.suite);
      ("interp", Test_interp.suite);
      ("interp-compile", Test_interp_compile.suite);
      ("matchers", Test_matchers.suite);
      ("tdl", Test_tdl.suite);
      ("tc-frontend", Test_tc_frontend.suite);
      ("transforms", Test_transforms.suite);
      ("interchange", Test_interchange.suite);
      ("machine", Test_machine.suite);
      ("raise-scf", Test_raise_scf.suite);
      ("delinearize", Test_delinearize.suite);
      ("random", Test_random.suite);
      ("pass-manager", Test_pass.suite);
      ("trace", Test_trace.suite);
      ("metrics", Test_metrics.suite);
      ("provenance", Test_provenance.suite);
      ("remarks", Test_remarks.suite);
      ("blis-schedule", Test_blis.suite);
      ("unroll", Test_unroll.suite);
      ("misc", Test_misc.suite);
      ("negative-controls", Test_negative.suite);
      ("mlt", Test_mlt.suite);
      ("transform-dialect", Test_transform_dialect.suite);
      ("tune", Test_tune.suite);
      ("batch", Test_batch.suite);
      ("cache", Test_cache.suite);
    ]
