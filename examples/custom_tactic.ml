(* Defining a new tactic at runtime: the user-facing workflow the paper
   motivates — no compiler internals, just a TDL declaration.

   We teach MLT to recognize a transposed matrix product
   C(i,j) += A(k,i) * B(k,j)   (i.e. C += A^T B)
   and raise it through the automatically synthesized TTGT steps.

     dune exec examples/custom_tactic.exe *)

let my_tactic =
  {|def ATB {
  pattern C(i,j) += A(k,i) * B(k,j)
}
|}

let kernel =
  {|
void atb(float A[48][40], float B[48][56], float C[40][56]) {
  for (int i = 0; i < 40; ++i)
    for (int j = 0; j < 56; ++j)
      for (int k = 0; k < 48; ++k)
        C[i][j] += A[k][i] * B[k][j];
}
|}

let () =
  print_endline "--- 1. A user-defined tactic (TDL) ---";
  print_string my_tactic;

  (* The frontend classifies the pattern and synthesizes builders: A is
     used transposed, so a transpose step precedes the matmul. *)
  let tds = Tdl.Frontend.lower (Tdl.Tdl_parser.parse_one my_tactic) in
  print_endline "\n--- 2. Synthesized TDS ---";
  print_string (Tdl.Tds.to_string tds);

  let m = Met.Emit_affine.translate kernel in
  let reference = Met.Emit_affine.translate kernel in
  let n = Ir.Rewriter.apply_greedily m (Ir.Rewriter.freeze [ Tdl.Backend.compile tds ]) in
  Printf.printf "\n--- 3. After raising (%d site) ---\n" n;
  print_endline (Ir.Printer.op_to_string m);

  Printf.printf "--- 4. Interpreter equivalence: %s ---\n"
    (if Interp.Eval.equivalent reference m "atb" ~seed:3 then "PASS"
     else "FAIL");

  (* Show the robustness the matchers give for free: the same tactic
     fires on a differently written but equivalent source. *)
  let permuted =
    {|
void atb(float A[48][40], float B[48][56], float C[40][56]) {
  for (int k = 0; k < 48; ++k)
    for (int j = 0; j < 56; ++j)
      for (int i = 0; i < 40; ++i)
        C[i][j] = B[k][j] * A[k][i] + C[i][j];
}
|}
  in
  let m2 = Met.Emit_affine.translate permuted in
  let n2 = Ir.Rewriter.apply_greedily m2 (Ir.Rewriter.freeze [ Tdl.Backend.compile tds ]) in
  Printf.printf
    "--- 5. Same tactic on permuted loops and commuted operands: %d site ---\n"
    n2
