// Matrix chain (sec. 5.3):
//   mlt-opt examples/kernels/chain.c --raise-affine-to-linalg \
//           --reorder-chains --convert-linalg-to-blas
void chain(float A1[800][1100], float A2[1100][900], float A3[900][1200], float A4[1200][100], float R[800][100]) {
  float T2[800][900];
  float T3[800][1200];
  for (int i = 0; i < 800; ++i)
    for (int j = 0; j < 900; ++j) {
      T2[i][j] = 0.0;
      for (int k = 0; k < 1100; ++k)
        T2[i][j] += A1[i][k] * A2[k][j];
    }
  for (int i = 0; i < 800; ++i)
    for (int j = 0; j < 1200; ++j) {
      T3[i][j] = 0.0;
      for (int k = 0; k < 900; ++k)
        T3[i][j] += T2[i][k] * A3[k][j];
    }
  for (int i = 0; i < 800; ++i)
    for (int j = 0; j < 100; ++j) {
      R[i][j] = 0.0;
      for (int k = 0; k < 1200; ++k)
        R[i][j] += T3[i][k] * A4[k][j];
    }
}
