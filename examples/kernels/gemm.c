// Plain GEMM in the polyhedral mini-C subset: raise it with
//   mlt-opt examples/kernels/gemm.c --raise-affine-to-linalg
void gemm(float A[256][256], float B[256][256], float C[256][256]) {
  for (int i = 0; i < 256; ++i)
    for (int j = 0; j < 256; ++j) {
      C[i][j] = 0.0;
      for (int k = 0; k < 256; ++k)
        C[i][j] += A[i][k] * B[k][j];
    }
}
