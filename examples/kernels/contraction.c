// Listing 2's tensor contraction abc-acd-db; raise through TTGT with
//   mlt-opt examples/kernels/contraction.c --tactics examples/kernels/ttgt.tdl --raise-affine-to-linalg
void contraction(float A[32][20][28], float B[28][24], float C[32][24][20]) {
  for (int a = 0; a < 32; ++a)
    for (int b = 0; b < 24; ++b)
      for (int c = 0; c < 20; ++c)
        for (int d = 0; d < 28; ++d)
          C[a][b][c] += A[a][c][d] * B[d][b];
}
