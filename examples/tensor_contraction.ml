(* TTGT raising for tensor contractions (§III-A, Listings 2-4).

   The contraction C(a,b,c) += A(a,c,d) * B(d,b) from Listing 2 is raised
   with the explicit TTGT tactic of Listing 3; the TDL frontend emits the
   TableGen-stage TDS of Listing 4, the backend compiles it to matchers
   and builders, and the rewritten program replaces the 4-deep loop nest
   with transpose/reshape/matmul/reshape/transpose at the Linalg level.

     dune exec examples/tensor_contraction.exe *)

let () =
  print_endline "--- 1. The TTGT tactic in TDL (Listing 3) ---";
  print_string Tdl.Frontend.ttgt_tdl;

  let tds = Tdl.Frontend.lower (Tdl.Tdl_parser.parse_one Tdl.Frontend.ttgt_tdl) in
  print_endline "\n--- 2. Generated TDS (Listing 4) ---";
  print_string (Tdl.Tds.to_string tds);

  (* Listing 2's kernel, sizes from the paper's tensor-contraction suite
     (scaled down). *)
  let spec = Workloads.Contraction_spec.parse "abc-acd-db" in
  let sizes = [ ('a', 24); ('b', 32); ('c', 20); ('d', 28) ] in
  let src =
    Workloads.Contraction_spec.c_source spec ~sizes ~init:false ~name:"kern" ()
  in
  print_endline "\n--- 3. The contraction kernel (Listing 2) ---";
  print_string src;

  let m = Met.Emit_affine.translate src in
  let reference = Met.Emit_affine.translate src in
  let patterns = Ir.Rewriter.freeze [ Tdl.Backend.compile tds ] in
  let n = Ir.Rewriter.apply_greedily m patterns in
  Printf.printf "\n--- 4. After applying the tactic (%d match) ---\n" n;
  print_endline (Ir.Printer.op_to_string m);

  let equal = Interp.Eval.equivalent reference m "kern" ~seed:5 in
  Printf.printf "--- 5. Interpreter equivalence: %s ---\n\n"
    (if equal then "PASS" else "FAIL");

  (* Compare the TTGT path against the plain loop nest on the model: the
     data-locality transformation pays off even before BLAS enters. *)
  let machine = Machine.Machine_model.intel_i9 in
  let flops = Workloads.Contraction_spec.flops spec ~sizes in
  List.iter
    (fun config ->
      Printf.printf "  %-12s %8.2f GFLOPS\n"
        (Mlt.Pipeline.config_name config)
        (Mlt.Pipeline.gflops config machine src ~flops))
    [ Mlt.Pipeline.Clang_O3; Mlt.Pipeline.Mlt_linalg; Mlt.Pipeline.Mlt_blas ]
