#!/bin/sh
# Tier-1 gate: everything must build and every test must pass.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
