#!/bin/sh
# Tier-1 gate: everything must build and every test must pass.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
# Smoke-run the micro benchmarks so rewrite-driver regressions (which the
# unit tests may not exercise at scale) still fail the gate.
dune exec bench/main.exe -- micro --quick
# Smoke-run the interpreter-engine comparison: fails if the staged engine
# and the tree-walking oracle ever disagree on a benchmark kernel.
dune exec bench/main.exe -- interp --quick
# Smoke-run the frozen-pattern-set comparison: fails if op-indexed dispatch
# ever changes rewriting results, or if its match-attempt reduction on the
# polybench raising pipeline drops below 5x.
dune exec bench/main.exe -- patterns --quick
