#!/bin/sh
# Tier-1 gate: everything must build and every test must pass.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
# Smoke-run the micro benchmarks so rewrite-driver regressions (which the
# unit tests may not exercise at scale) still fail the gate.
dune exec bench/main.exe -- micro --quick
