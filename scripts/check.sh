#!/bin/sh
# Tier-1 gate: everything must build and every test must pass.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
# Smoke-run the micro benchmarks so rewrite-driver regressions (which the
# unit tests may not exercise at scale) still fail the gate.
dune exec bench/main.exe -- micro --quick
# Smoke-run the interpreter-engine comparison: fails if the staged engine
# and the tree-walking oracle ever disagree on a benchmark kernel.
dune exec bench/main.exe -- interp --quick
# Smoke-run the frozen-pattern-set comparison: fails if op-indexed dispatch
# ever changes rewriting results, or if its match-attempt reduction on the
# polybench raising pipeline drops below 5x. (No --trace here: a sink being
# installed would skip the disabled-trace overhead assertion.)
dune exec bench/main.exe -- patterns --quick
# Smoke-run the large-module scale gate on its 60k-op --quick setting:
# fails if compiled dispatch ever changes rewriting results on the
# synthesized module or if the deterministic match-attempt reduction
# drops below 5x. The 5x steady-state *wall-clock* gate is recorded in
# BENCH_scale.json on every run but asserted only under
# MLT_BENCH_ASSERT_SPEEDUP=1 (shared CI hosts — see docs/PERF.md).
dune exec bench/main.exe -- scale --quick
dune exec tools/json_check/json_check.exe -- BENCH_scale.json
# Smoke-run the schedule autotuner on its trimmed --quick space: fails if
# the searched winner is ever slower on the machine model than the
# pluto-default baseline (the space contains it), and validates the
# per-candidate results recorded in BENCH_tune.json (docs/TRANSFORM.md).
dune exec bench/main.exe -- tune --quick
dune exec tools/json_check/json_check.exe -- BENCH_tune.json results
# Smoke the observability surface: --trace must produce a loadable Chrome
# trace (non-empty traceEvents) and --pass-stats a well-formed JSON report
# (schemas in docs/OBSERVABILITY.md).
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
dune exec bin/mlt_opt.exe -- examples/kernels/gemm.c \
  --raise-affine-to-linalg --trace "$obs_tmp/trace.json" --pass-stats \
  -o "$obs_tmp/out.mlir" > "$obs_tmp/stats.json"
dune exec tools/json_check/json_check.exe -- "$obs_tmp/trace.json" traceEvents
dune exec tools/json_check/json_check.exe -- "$obs_tmp/stats.json"
# trace_stats must digest the smoke trace (hotspots + pattern
# attribution, folding in the pass-stats JSON), and --diff of two runs
# of the same pipeline must accept the matching run_meta schema stamps
# and exit 0 (docs/OBSERVABILITY.md).
dune exec tools/trace_stats/trace_stats.exe -- "$obs_tmp/trace.json" \
  --stats "$obs_tmp/stats.json" --top 5
dune exec bin/mlt_opt.exe -- examples/kernels/gemm.c \
  --raise-affine-to-linalg --pass-stats -o /dev/null \
  > "$obs_tmp/stats2.json"
dune exec tools/trace_stats/trace_stats.exe -- --diff \
  "$obs_tmp/stats.json" "$obs_tmp/stats2.json"
# Smoke the multi-domain batch driver: the example manifest must compile
# cleanly on a 2-domain pool (domains time-share cores on small machines,
# so this checks safety, not speed) and produce a well-formed report with
# per-entry and aggregated pass stats (schema in docs/CONCURRENCY.md).
# --metrics + --progress ride along: the metrics snapshot must be strict
# JSON whose batch counters agree with the report (pinned harder in
# test/test_batch.ml), and the heartbeat must not perturb results.
dune exec bin/mlt_batch.exe -- examples/kernels/batch_manifest.json \
  --domains 2 --quiet --metrics "$obs_tmp/metrics.json" --progress \
  --output "$obs_tmp/batch"
dune exec tools/json_check/json_check.exe -- "$obs_tmp/batch/report.json" \
  entries passes
dune exec tools/json_check/json_check.exe -- "$obs_tmp/metrics.json" metrics
grep -q '"name":"mlt_batch_entries_done"' "$obs_tmp/metrics.json" || {
  echo "check.sh: metrics file lacks the batch counters" >&2
  exit 1
}
# Smoke the compilation cache: a second run over the same manifest and
# cache directory must be served entirely from the cache (cache_misses 0)
# and write byte-identical per-entry IR (docs/CACHE.md).
dune exec bin/mlt_batch.exe -- examples/kernels/batch_manifest.json \
  --domains 2 --quiet --cache-dir "$obs_tmp/cache" \
  --output "$obs_tmp/batch-cold"
dune exec bin/mlt_batch.exe -- examples/kernels/batch_manifest.json \
  --domains 2 --quiet --cache-dir "$obs_tmp/cache" --resume \
  --output "$obs_tmp/batch-warm"
dune exec tools/json_check/json_check.exe -- \
  "$obs_tmp/batch-warm/report.json" entries passes
grep -q '"cache_misses":0' "$obs_tmp/batch-warm/report.json" || {
  echo "check.sh: warm cache run was not served from the cache" >&2
  exit 1
}
grep -q '"cache_hits":0,' "$obs_tmp/batch-warm/report.json" && {
  echo "check.sh: warm cache run reported zero hits" >&2
  exit 1
}
diff -r -x report.json "$obs_tmp/batch-cold" "$obs_tmp/batch-warm" || {
  echo "check.sh: cache-served IR differs from freshly compiled IR" >&2
  exit 1
}
