(* mlt-sim: run a mini-C kernel through one of the evaluation pipelines
   and report simulated performance on a machine model.

     mlt-sim gemm.c --config mlt-blas --machine amd-2920x --flops 4194304 *)

open Cmdliner

let configs =
  [
    ("clang-O3", Mlt.Pipeline.Clang_O3);
    ("pluto-default", Mlt.Pipeline.Pluto_default);
    ("pluto-best", Mlt.Pipeline.Pluto_best);
    ("mlt-linalg", Mlt.Pipeline.Mlt_linalg);
    ("mlt-blas", Mlt.Pipeline.Mlt_blas);
    ("mlt-affine-blis", Mlt.Pipeline.Mlt_affine_blis);
  ]

let machines =
  List.map
    (fun (m : Machine.Machine_model.t) -> (m.name, m))
    Machine.Machine_model.platforms

let sole_func m =
  match
    List.filter Ir.Core.is_func (Ir.Core.ops_of_block (Ir.Core.module_block m))
  with
  | [ f ] -> f
  | fs ->
      Support.Diag.errorf "mlt-sim: expected one kernel, found %d"
        (List.length fs)

let run input config machine flops engine execute verify timing pass_stats
    trace remarks =
  try
    Cli_common.with_observability ~trace ~remarks @@ fun () ->
    Interp.Eval.default_engine := engine;
    let src =
      match input with
      | "-" -> In_channel.input_all In_channel.stdin
      | path -> In_channel.with_open_text path In_channel.input_all
    in
    let pm =
      if timing || pass_stats then Some (Ir.Pass.create_manager ()) else None
    in
    if verify then
      if Mlt.Pipeline.check_semantics ~engine config src then
        Printf.printf "verify:           %s preserves semantics (engine: %s)\n"
          (Mlt.Pipeline.config_name config)
          (Interp.Rt.engine_name engine)
      else
        Support.Diag.errorf "mlt-sim: %s pipeline changed kernel semantics"
          (Mlt.Pipeline.config_name config);
    if execute then begin
      let m = Mlt.Pipeline.prepare config src in
      let name = Ir.Core.func_name (sole_func m) in
      let t0 = Unix.gettimeofday () in
      ignore (Interp.Eval.run_on_random ~engine m name ~seed:0);
      let t1 = Unix.gettimeofday () in
      Printf.printf "executed:         %s in %.6f s (engine: %s)\n" name
        (t1 -. t0)
        (Interp.Rt.engine_name engine)
    end;
    let report = Mlt.Pipeline.time ?pm config machine src in
    Printf.printf "machine:          %s\n" machine.Machine.Machine_model.name;
    Printf.printf "config:           %s\n" (Mlt.Pipeline.config_name config);
    Printf.printf "simulated time:   %.6f s\n" report.Machine.Perf.seconds;
    Printf.printf "  loop code:      %.6f s\n" report.Machine.Perf.loop_seconds;
    Printf.printf "  library calls:  %.6f s\n"
      report.Machine.Perf.library_seconds;
    (match flops with
    | Some f ->
        Printf.printf "GFLOPS:           %.2f\n"
          (Machine.Perf.gflops ~flops:f report)
    | None -> ());
    (match pm with
    | Some pm ->
        if timing then (
          Printf.printf "\ncompilation pipeline (wall-clock):\n";
          print_string (Ir.Pass.report_table pm));
        if pass_stats then print_endline (Ir.Pass.report_json pm)
    | None -> ());
    Ok ()
  with
  | Support.Diag.Error (loc, msg) -> Error (Support.Diag.to_string loc msg)
  | Sys_error e -> Error e

let cmd =
  let term =
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"FILE.c" ~doc:"Mini-C kernel; '-' for stdin.")
      $ Arg.(value
             & opt (enum configs) Mlt.Pipeline.Clang_O3
             & info [ "config" ] ~docv:"CONFIG"
                 ~doc:"One of: clang-O3, pluto-default, pluto-best, \
                       mlt-linalg, mlt-blas, mlt-affine-blis.")
      $ Arg.(value
             & opt (enum machines) Machine.Machine_model.amd_2920x
             & info [ "machine" ] ~docv:"MACHINE"
                 ~doc:"intel-i9-9900k or amd-2920x.")
      $ Arg.(value & opt (some float) None
             & info [ "flops" ] ~docv:"N"
                 ~doc:"Mathematical flop count, to report GFLOPS.")
      $ Cli_common.interp_engine
      $ Arg.(value & flag
             & info [ "execute" ]
                 ~doc:"Actually interpret the prepared kernel on random \
                       inputs (wall-clock), in addition to the simulation.")
      $ Cli_common.verify_exec ~deprecated:[ "verify" ] ()
      $ Cli_common.timing
      $ Cli_common.pass_stats
      $ Cli_common.trace
      $ Cli_common.remarks)
  in
  Cmd.v
    (Cmd.info "mlt-sim" ~version:"1.0"
       ~doc:"Simulate a kernel's performance under an evaluation pipeline")
    Term.(term_result' term)

let () = exit (Cmd.eval cmd)
