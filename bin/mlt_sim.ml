(* mlt-sim: run a mini-C kernel through one of the evaluation pipelines
   (or a user-supplied transform script) and report simulated
   performance on a machine model; --tune searches the schedule space.

     mlt-sim gemm.c --config mlt-blas --machine amd-2920x --flops 4194304
     mlt-sim gemm.c --transform-script schedule.mlir
     mlt-sim gemm.c --tune *)

open Cmdliner

let machines =
  List.map
    (fun (m : Machine.Machine_model.t) -> (m.name, m))
    Machine.Machine_model.platforms

let sole_func m =
  match
    List.filter Ir.Core.is_func (Ir.Core.ops_of_block (Ir.Core.module_block m))
  with
  | [ f ] -> f
  | fs ->
      Support.Diag.errorf "mlt-sim: expected one kernel, found %d"
        (List.length fs)

(* Search the gemm schedule space (Pluto tilings/fusions/interchange +
   BLIS blockings) on the machine model and report the winner — and its
   schedule as a reusable transform script. *)
let run_tune ~machine ~quick ~pass_stats src =
  Mlt.Pipeline.register_dialects ();
  let translate () = Met.Emit_affine.translate src in
  let trips = Tune.max_trip_count (sole_func (translate ())) in
  let outcome =
    Tune.search
      ~domains:(Domain.recommended_domain_count ())
      ~machine ~translate
      (Tune.gemm_space ~quick ~max_trip:trips ())
  in
  let st = outcome.Tune.o_stats in
  Printf.printf "machine:          %s\n" machine.Machine.Machine_model.name;
  Printf.printf "candidates:       %d (%d evaluated)\n" st.Tune.t_candidates
    st.Tune.t_evaluated;
  Printf.printf "best schedule:    %s\n" outcome.Tune.o_best.Tune.c_name;
  Printf.printf "simulated time:   %.6f s\n" st.Tune.t_best_seconds;
  List.iter
    (fun (ev : Tune.evaluation) ->
      match ev.Tune.ev_seconds with
      | Some s ->
          Printf.printf "  %-28s %.6f s\n" ev.Tune.ev_candidate.Tune.c_name s
      | None ->
          Printf.printf "  %-28s inapplicable\n"
            ev.Tune.ev_candidate.Tune.c_name)
    outcome.Tune.o_evaluations;
  print_string "\nwinning transform script:\n";
  print_string
    (Transform.Script.print
       (Transform.Script.of_steps outcome.Tune.o_best.Tune.c_steps));
  if pass_stats then
    print_endline
      (Cli_common.pass_stats_json ~tune:st (Ir.Pass.create_manager ()))

let run input config script tune quick machine flops engine execute verify
    timing pass_stats trace metrics remarks =
  try
    Cli_common.with_observability ?metrics ~trace ~remarks @@ fun () ->
    Interp.Eval.default_engine := engine;
    let src = Cli_common.read_file input in
    if tune then begin
      run_tune ~machine ~quick ~pass_stats src;
      Ok ()
    end
    else begin
      let schedule =
        match Cli_common.resolve_schedule ~config ~script with
        | Some s -> s
        | None -> Mlt.Pipeline.Config Mlt.Pipeline.Clang_O3
      in
      let name = Mlt.Pipeline.schedule_name schedule in
      let pm =
        if timing || pass_stats then Some (Ir.Pass.create_manager ()) else None
      in
      if verify then
        if Mlt.Pipeline.check_schedule_semantics ~engine schedule src then
          Printf.printf
            "verify:           %s preserves semantics (engine: %s)\n" name
            (Interp.Rt.engine_name engine)
        else
          Support.Diag.errorf "mlt-sim: %s pipeline changed kernel semantics"
            name;
      if execute then begin
        let m = Mlt.Pipeline.prepare_schedule schedule src in
        let fname = Ir.Core.func_name (sole_func m) in
        let t0 = Unix.gettimeofday () in
        ignore (Interp.Eval.run_on_random ~engine m fname ~seed:0);
        let t1 = Unix.gettimeofday () in
        Printf.printf "executed:         %s in %.6f s (engine: %s)\n" fname
          (t1 -. t0)
          (Interp.Rt.engine_name engine)
      end;
      let report, tune_stats =
        Mlt.Pipeline.time_schedule_ext ?pm schedule machine src
      in
      Printf.printf "machine:          %s\n"
        machine.Machine.Machine_model.name;
      Printf.printf "config:           %s\n" name;
      Printf.printf "simulated time:   %.6f s\n" report.Machine.Perf.seconds;
      Printf.printf "  loop code:      %.6f s\n"
        report.Machine.Perf.loop_seconds;
      Printf.printf "  library calls:  %.6f s\n"
        report.Machine.Perf.library_seconds;
      (match flops with
      | Some f ->
          Printf.printf "GFLOPS:           %.2f\n"
            (Machine.Perf.gflops ~flops:f report)
      | None -> ());
      (match pm with
      | Some pm ->
          if timing then (
            Printf.printf "\ncompilation pipeline (wall-clock):\n";
            print_string (Ir.Pass.report_table pm));
          if pass_stats then
            print_endline (Cli_common.pass_stats_json ?tune:tune_stats pm)
      | None -> ());
      Ok ()
    end
  with
  | Support.Diag.Error (loc, msg) -> Error (Support.Diag.to_string loc msg)
  | Sys_error e -> Error e

let cmd =
  let term =
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"FILE.c" ~doc:"Mini-C kernel; '-' for stdin.")
      $ Cli_common.config_name_arg
      $ Cli_common.transform_script_arg
      $ Arg.(value & flag
             & info [ "tune" ]
                 ~doc:"Autotune: search the schedule space (Pluto \
                       tilings/fusions/interchange + BLIS blockings) on \
                       the machine model and print the winning transform \
                       script.")
      $ Arg.(value & flag
             & info [ "quick" ]
                 ~doc:"With --tune: search the trimmed smoke-test space.")
      $ Arg.(value
             & opt (enum machines) Machine.Machine_model.amd_2920x
             & info [ "machine" ] ~docv:"MACHINE"
                 ~doc:"intel-i9-9900k or amd-2920x.")
      $ Arg.(value & opt (some float) None
             & info [ "flops" ] ~docv:"N"
                 ~doc:"Mathematical flop count, to report GFLOPS.")
      $ Cli_common.interp_engine
      $ Arg.(value & flag
             & info [ "execute" ]
                 ~doc:"Actually interpret the prepared kernel on random \
                       inputs (wall-clock), in addition to the simulation.")
      $ Cli_common.verify_exec ()
      $ Cli_common.timing
      $ Cli_common.pass_stats
      $ Cli_common.trace
      $ Cli_common.metrics
      $ Cli_common.remarks)
  in
  Cmd.v
    (Cmd.info "mlt-sim" ~version:"1.0"
       ~doc:"Simulate a kernel's performance under an evaluation pipeline")
    Term.(term_result' term)

let () = exit (Cmd.eval cmd)
