(* mlt-opt: the mlir-opt-style driver for Multi-Level Tactics.

   Reads mini-C (with --c or a .c extension) or textual IR, applies the
   requested passes in the canonical pipeline order, and prints the
   resulting IR. Examples:

     mlt-opt gemm.c --raise-affine-to-linalg
     mlt-opt gemm.c --raise-affine-to-affine
     mlt-opt chain.c --raise-affine-to-linalg --reorder-chains \
             --convert-linalg-to-blas
     mlt-opt kernel.mlir --tile 32 --lower-affine
     mlt-opt gemm.c --config mlt-blas
     mlt-opt gemm.c --transform-script schedule.mlir
     mlt-opt gemm.c --tactics my_tactics.tdl --dump-tds *)

open Cmdliner
module T = Transforms

let read_file = Cli_common.read_file

let list_ops () =
  (* Force registration of every dialect, then dump the registry. *)
  Std_dialect.Arith.register ();
  Std_dialect.Memref_ops.register ();
  Std_dialect.Scf.register ();
  Affine.Affine_ops.register ();
  Linalg.Linalg_ops.register ();
  Blas.Blas_ops.register ();
  List.iter
    (fun name ->
      match Ir.Dialect.lookup name with
      | Some d -> Printf.printf "%-24s %s\n" name d.Ir.Dialect.od_summary
      | None -> ())
    (Ir.Dialect.registered_ops ())

let run input list_ops_flag force_c config script tactics_file dump_tds
    delinearize
    raise_scf canonicalize fast_math raise_affine raise_linalg reorder_chains
    to_blas
    lower_linalg lower_linalg_tiled fuse tile lower_affine dce verify_each
    verify_exec engine timing pass_stats trace metrics print_debug_locs remarks
    print_ir_after_all print_ir_after output =
  if list_ops_flag then (
    list_ops ();
    Ok ())
  else
  try
    Cli_common.with_observability ?metrics ~trace ~remarks @@ fun () ->
    Interp.Eval.default_engine := engine;
    let src = read_file input in
    let is_c =
      force_c || Filename.check_suffix input ".c" || input = "-"
    in
    let m =
      if is_c then Met.Emit_affine.translate ~file:input src
      else Ir.Parser.parse_module ~file:input src
    in
    (* Snapshot before any pass runs so --verify-exec can difference the
       final IR against the input's execution semantics. *)
    let pristine = if verify_exec then Some (Ir.Core.clone_op m) else None in
    let tactic_patterns =
      match tactics_file with
      | None -> None
      | Some path ->
          let tdl_src = read_file path in
          if dump_tds then
            List.iter
              (fun tds -> print_string (Tdl.Tds.to_string tds))
              (Tdl.Frontend.lower_source ~file:path tdl_src);
          Some (Mlt.Tactics.fill_pattern () :: Tdl.Backend.compile_tdl tdl_src)
    in
    let snapshot =
      if print_ir_after_all then Ir.Pass.After_all
      else if print_ir_after <> [] then Ir.Pass.After_named print_ir_after
      else Ir.Pass.No_snapshots
    in
    let pm = Ir.Pass.create_manager ~verify_each ~snapshot () in
    (* A named config or transform script runs first, in script order;
       the flag-driven passes below append to it. *)
    (match Cli_common.resolve_schedule ~config ~script with
    | Some schedule ->
        Ir.Pass.add_all pm (Mlt.Pipeline.passes_of_schedule schedule)
    | None -> ());
    let padd cond pass = if cond then Ir.Pass.add pm pass in
    padd raise_scf T.Raise_scf.pass;
    padd delinearize T.Delinearize.pass;
    padd canonicalize
      (if fast_math then T.Canonicalize.fast_math_pass else T.Canonicalize.pass);
    padd raise_affine (Mlt.Tactics.raise_to_affine_matmul_pass ());
    padd raise_linalg
      (Mlt.Tactics.raise_to_linalg_pass ?patterns:tactic_patterns ());
    padd reorder_chains Mlt.Raise_chain.pass;
    padd to_blas Mlt.To_blas.pass;
    (match lower_linalg_tiled with
    | Some size -> Ir.Pass.add pm (T.Lower_linalg.tiled_pass ~size)
    | None -> padd lower_linalg T.Lower_linalg.pass);
    (match fuse with
    | Some h ->
        let heuristic =
          match h with
          | "nofuse" -> T.Loop_fuse.No_fuse
          | "smartfuse" -> T.Loop_fuse.Smart_fuse
          | "maxfuse" -> T.Loop_fuse.Max_fuse
          | other -> Support.Diag.errorf "unknown fusion heuristic %S" other
        in
        Ir.Pass.add pm (T.Loop_fuse.pass heuristic)
    | None -> ());
    (match tile with
    | Some size -> Ir.Pass.add pm (T.Loop_tile.pass ~size)
    | None -> ());
    padd lower_affine T.Lower_affine.pass;
    padd dce T.Dce.pass;
    Ir.Pass.run pm m;
    Ir.Verifier.verify m;
    (match pristine with
    | Some reference ->
        List.iter
          (fun f ->
            if Ir.Core.is_func f then begin
              let name = Ir.Core.func_name f in
              if not (Interp.Eval.equivalent reference m name ~seed:0) then
                Support.Diag.errorf
                  "verify-exec: pipeline changed the semantics of %S" name;
              Printf.eprintf "verify-exec: %s preserved (engine: %s)\n%!" name
                (Interp.Rt.engine_name engine)
            end)
          (Ir.Core.ops_of_block (Ir.Core.module_block reference))
    | None -> ());
    let text =
      Ir.Printer.op_to_string ~debug_locs:print_debug_locs m ^ "\n"
    in
    (match output with
    | None -> print_string text
    | Some path -> Support.Atomic_io.write_file ~path text);
    if timing then print_string (Ir.Pass.report_table pm);
    if pass_stats then print_endline (Cli_common.pass_stats_json pm);
    Ok ()
  with
  | Support.Diag.Error (loc, msg) ->
      Error (Support.Diag.to_string loc msg)
  | Sys_error e -> Error e

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
         ~doc:"Input file: mini-C (.c) or textual IR (.mlir); '-' for stdin.")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let open Term in
  let term =
    const run
    $ input
    $ flag [ "list-ops" ]
        "Print every registered operation with its summary and exit."
    $ flag [ "c" ] "Force parsing the input as mini-C."
    $ Cli_common.config_name_arg
    $ Cli_common.transform_script_arg
    $ Arg.(value & opt (some string) None
           & info [ "tactics" ] ~docv:"FILE.tdl"
               ~doc:"Load user-defined TDL tactics for raising (replaces \
                     the built-in tactic set).")
    $ flag [ "dump-tds" ]
        "Print the TableGen-stage TDS generated from --tactics."
    $ flag [ "delinearize" ]
        "Optimistically delinearize rank-1 buffers (recovers Darknet-style \
         linearized GEMMs)."
    $ flag [ "raise-scf-to-affine" ]
        "Raise SCF loops and memref accesses back to the affine dialect."
    $ flag [ "canonicalize" ] "Run algebraic canonicalization."
    $ flag [ "fast-math" ]
        "Allow value-unsafe float folds in --canonicalize (x*0 -> 0, which \
         is wrong for NaN/inf/-0.0). Off by default."
    $ flag [ "raise-affine-to-affine" ]
        "Raise GEMM loop nests to affine.matmul (sec. 5.1)."
    $ flag [ "raise-affine-to-linalg" ]
        "Raise loop nests to Linalg operations (sec. 5.2)."
    $ flag [ "reorder-chains" ]
        "Re-parenthesize matrix-multiplication chains optimally (sec. 5.3)."
    $ flag [ "convert-linalg-to-blas" ]
        "Replace Linalg ops with vendor-library calls (MLT-Blas)."
    $ flag [ "lower-linalg" ] "Lower Linalg ops to affine loops."
    $ Arg.(value & opt (some int) None
           & info [ "lower-linalg-tiled" ] ~docv:"SIZE"
               ~doc:"Lower Linalg ops to cache-tiled loops (MLT-Linalg path).")
    $ Arg.(value & opt (some string) None
           & info [ "fuse" ] ~docv:"HEURISTIC"
               ~doc:"Fuse loops: nofuse, smartfuse or maxfuse.")
    $ Arg.(value & opt (some int) None
           & info [ "tile" ] ~docv:"SIZE" ~doc:"Tile affine loop nests.")
    $ flag [ "lower-affine" ] "Lower the affine dialect to SCF + memref."
    $ flag [ "dce" ] "Dead-code (and dead-buffer) elimination."
    $ flag [ "verify-each" ] "Verify the IR after every pass."
    $ Cli_common.verify_exec ()
    $ Cli_common.interp_engine
    $ Cli_common.timing
    $ Cli_common.pass_stats
    $ Cli_common.trace
    $ Cli_common.metrics
    $ Cli_common.print_debug_locs
    $ Cli_common.remarks
    $ flag [ "print-ir-after-all" ] "Print the IR after every pass."
    $ Arg.(value & opt_all string []
           & info [ "print-ir-after" ] ~docv:"PASS"
               ~doc:"Print the IR after the named pass (repeatable).")
    $ Arg.(value & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output here.")
  in
  Cmd.v
    (Cmd.info "mlt-opt" ~version:"1.0"
       ~doc:"Multi-Level Tactics optimizer driver")
    Term.(term_result' term)

let () = exit (Cmd.eval cmd)
