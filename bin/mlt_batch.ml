(* mlt-batch: the sharded multi-domain batch compiler.

   Reads a JSON manifest of mini-C / IR inputs, shards it across a pool
   of OCaml domains, compiles every entry through its configured
   pipeline, and writes per-entry IR plus an aggregated JSON report.
   A crashing input fails only its own manifest entry. Examples:

     mlt-batch manifest.json --domains 4 --output out/
     mlt-batch manifest.json --seq --report report.json
     mlt-batch manifest.json --pipeline mlt-blas --remarks
     mlt-batch manifest.json --transform-script schedule.mlir
     mlt-batch manifest.json --cache-dir cache/            # warm the cache
     mlt-batch manifest.json --cache-dir cache/ --resume   # after a kill *)

open Cmdliner

let run manifest_path domains seq pipeline script capture_remarks output
    report cache_dir resume quiet metrics progress =
  try
    Cli_common.with_observability ?metrics ~trace:None ~remarks:None
    @@ fun () ->
    let manifest = Batch.Manifest.load manifest_path in
    let manifest =
      match Cli_common.resolve_schedule ~config:pipeline ~script with
      | None -> manifest
      | Some schedule ->
          Batch.Manifest.of_entries
            (List.map
               (fun e -> { e with Batch.Manifest.e_schedule = schedule })
               (Batch.Manifest.entries manifest))
    in
    let domains =
      if seq then 1
      else
        match domains with
        | Some n when n >= 1 -> n
        | Some n -> Support.Diag.errorf "--domains %d: need at least 1" n
        | None -> Domain.recommended_domain_count ()
    in
    let cache =
      match cache_dir with
      | Some dir -> Some (Batch.Cache.open_ ~dir)
      | None ->
          if resume then
            Support.Diag.errorf
              "--resume needs --cache-dir: completed entries are served \
               from the checkpointed cache"
          else None
    in
    (match cache with
    | Some c when not quiet ->
        let r = Batch.Cache.recovery c in
        let dropped =
          r.Batch.Cache.rec_swept_tmp + r.Batch.Cache.rec_unjournaled
          + r.Batch.Cache.rec_missing_blob
        in
        if dropped > 0 || r.Batch.Cache.rec_torn_journal then
          Printf.eprintf
            "mlt-batch: cache recovery dropped %d partial entr%s\n%!"
            dropped
            (if dropped = 1 then "y" else "ies")
    | _ -> ());
    let rp =
      Batch.Driver.run ~domains ~capture_remarks ~progress ?cache manifest
    in
    (match output with
    | Some dir -> Batch.Driver.write_outputs ~dir rp
    | None -> ());
    (match report with
    | Some path ->
        Support.Atomic_io.write_file ~path
          (Batch.Driver.report_json rp ^ "\n")
    | None -> if not quiet then print_endline (Batch.Driver.report_json rp));
    let failed = Batch.Driver.failed_count rp in
    if not quiet then
      Printf.eprintf
        "mlt-batch: %d/%d entries ok on %d domain%s in %.3fs%s%s\n%!"
        (Batch.Driver.ok_count rp)
        (List.length rp.Batch.Driver.rp_results)
        rp.Batch.Driver.rp_domains
        (if rp.Batch.Driver.rp_domains = 1 then "" else "s")
        rp.Batch.Driver.rp_wall_seconds
        (if not rp.Batch.Driver.rp_cache_enabled then ""
         else
           Printf.sprintf " (%d cached, %d compiled)"
             rp.Batch.Driver.rp_cache_hits rp.Batch.Driver.rp_cache_misses)
        (if failed = 0 then "" else Printf.sprintf " (%d FAILED)" failed);
    List.iter
      (fun (r : Batch.Driver.entry_result) ->
        match r.Batch.Driver.r_status with
        | Batch.Driver.Failed msg ->
            Printf.eprintf "mlt-batch: entry %S failed: %s\n%!"
              r.Batch.Driver.r_name msg
        | Batch.Driver.Done -> ())
      rp.Batch.Driver.rp_results;
    if failed > 0 then Error (`Msg "some manifest entries failed") else Ok ()
  with
  | Support.Diag.Error (loc, msg) ->
      Error (`Msg (Support.Diag.to_string loc msg))
  | Sys_error e -> Error (`Msg e)

let manifest_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"MANIFEST"
        ~doc:"JSON manifest of inputs (see docs/CONCURRENCY.md).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Size of the domain pool (default: the runtime's recommended \
           domain count). Entry $(i,i) is compiled by shard $(i,i) mod N.")

let seq_arg =
  Arg.(
    value & flag
    & info [ "seq" ]
        ~doc:
          "Sequential oracle mode: compile every entry on the calling \
           domain (equivalent to --domains 1; no domain is spawned).")

(* The shared --config/--pipeline spelling plus --transform-script:
   either overrides every entry's schedule. *)

let remarks_arg =
  Arg.(
    value & flag
    & info [ "remarks" ]
        ~doc:
          "Capture structured optimizer remarks per entry into the \
           report (costs compile time: near-miss explanations are \
           computed).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"DIR"
        ~doc:
          "Write each entry's IR to DIR/shard-N/III-NAME.mlir and the \
           report to DIR/report.json.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write the JSON report here instead of printing it to stdout.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Content-addressed compilation cache (created if missing): \
           entries whose source + pipeline already compiled are served \
           from DIR without recompiling; misses compile and commit \
           crash-safely (docs/CACHE.md). Every commit is a checkpoint, \
           so a killed run re-invoked with the same DIR resumes where \
           it stopped.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume a killed run: requires $(b,--cache-dir); completed \
           entries are served from the checkpointed cache, only \
           unfinished work recompiles. (With $(b,--cache-dir) this is \
           the default behavior — the flag documents intent and fails \
           fast when no cache directory is given.)")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet" ] ~doc:"Suppress the stdout report and summary line.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Stderr heartbeat while the batch runs: done/failed/cached \
           counts, rate and ETA, redrawn in place on a tty. Pure \
           observability — results and signatures are unaffected.")

let cmd =
  let term =
    Term.(
      const run $ manifest_arg $ domains_arg $ seq_arg
      $ Cli_common.config_name_arg $ Cli_common.transform_script_arg
      $ remarks_arg $ output_arg $ report_arg $ cache_dir_arg $ resume_arg
      $ quiet_arg $ Cli_common.metrics $ progress_arg)
  in
  Cmd.v
    (Cmd.info "mlt-batch" ~version:"1.0"
       ~doc:"Sharded multi-domain batch compiler for Multi-Level Tactics")
    Term.(term_result term)

let () = exit (Cmd.eval cmd)
