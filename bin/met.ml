(* met: the MLIR Extraction Tool substitute — translate the polyhedral
   mini-C subset into the Affine dialect, canonicalizing with loop
   distribution (Figure 3's entry path). *)

open Cmdliner

let run input no_distribute output =
  try
    let src =
      match input with
      | "-" -> In_channel.input_all In_channel.stdin
      | path -> In_channel.with_open_text path In_channel.input_all
    in
    let ks = Met.C_parser.parse_program ~file:input src in
    let m = Met.Emit_affine.program ~distribute:(not no_distribute) ks in
    Ir.Verifier.verify m;
    let text = Ir.Printer.op_to_string m ^ "\n" in
    (match output with
    | None -> print_string text
    | Some path -> Support.Atomic_io.write_file ~path text);
    Ok ()
  with
  | Support.Diag.Error (loc, msg) -> Error (Support.Diag.to_string loc msg)
  | Sys_error e -> Error e

let cmd =
  let term =
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"FILE.c" ~doc:"Mini-C input; '-' for stdin.")
      $ Arg.(value & flag
             & info [ "no-distribute" ]
                 ~doc:"Skip the loop-distribution canonicalization.")
      $ Arg.(value & opt (some string) None
             & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output here."))
  in
  Cmd.v
    (Cmd.info "met" ~version:"1.0"
       ~doc:"C to Affine-dialect extraction (MET)")
    Term.(term_result' term)

let () = exit (Cmd.eval cmd)
