(* Flag definitions shared by mlt-opt and mlt-sim, so the two drivers
   spell their common surface identically (--interp, --verify-exec,
   --timing, --pass-stats). *)

open Cmdliner

let read_file = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let interp_engine =
  Arg.(
    value
    & opt
        (enum [ ("compiled", Interp.Rt.Compiled); ("walk", Interp.Rt.Walk) ])
        Interp.Rt.Compiled
    & info [ "interp" ] ~docv:"ENGINE"
        ~doc:
          "Interpreter execution engine for the execution checks: \
           'compiled' (staged closures, default) or 'walk' (the \
           tree-walking oracle). See docs/INTERP.md.")

(* The canonical differential-execution flag. [deprecated] lists stale
   spellings kept as aliases; using one still works but warns on stderr. *)
let verify_exec ?(deprecated = []) () =
  let canonical =
    Arg.(
      value & flag
      & info [ "verify-exec" ]
          ~doc:
            "Differential execution check: interpret every function before \
             and after the pipeline on identical random inputs and fail if \
             any output buffer differs.")
  in
  match deprecated with
  | [] -> canonical
  | aliases ->
      let alias_flags =
        List.map
          (fun name ->
            Arg.(
              value & flag
              & info [ name ]
                  ~doc:(Printf.sprintf "Deprecated alias of --verify-exec.")))
          aliases
      in
      List.fold_left2
        (fun acc flag_name alias ->
          let merge acc_v used =
            if used then
              Printf.eprintf "warning: --%s is deprecated; use --verify-exec\n%!"
                flag_name;
            acc_v || used
          in
          Term.(const merge $ acc $ alias))
        canonical aliases alias_flags

let timing =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:
          "Print a per-pass table: seconds, op counts before/after, and \
           pattern match/rewrite counters (with per-pattern sub-rows).")

let pass_stats =
  Arg.(
    value & flag
    & info [ "pass-stats" ]
        ~doc:
          "Print the per-pass statistics as one JSON object, including \
           per-pattern attempt/hit counters (schema in \
           docs/OBSERVABILITY.md).")
