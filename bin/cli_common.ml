(* Flag definitions shared by mlt-opt, mlt-sim and mlt-batch, so the
   drivers spell their common surface identically (--config /
   --transform-script, --interp, --verify-exec, --timing,
   --pass-stats). *)

open Cmdliner

let read_file = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

(* ---- schedule selection --------------------------------------------------

   One resolution path for all three binaries: a named pipeline
   configuration (--config, with --pipeline as mlt-batch's historical
   spelling) or a transform script as IR text (--transform-script),
   never both. *)

let config_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "config"; "pipeline" ] ~docv:"NAME"
        ~doc:
          "Named pipeline configuration: clang-O3, pluto-default, \
           pluto-best, mlt-linalg, mlt-blas or mlt-affine-blis.")

let transform_script_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "transform-script" ] ~docv:"FILE"
        ~doc:
          "Transform script to run instead of a named configuration: a \
           builtin.module of transform-dialect ops, as printed by \
           mlt-opt or written by hand (grammar in docs/TRANSFORM.md); \
           '-' for stdin.")

(* [resolve_schedule ~config ~script] — [None] when neither flag was
   given, so each driver picks its own default. Raises
   [Support.Diag.Error] on conflicts, unknown names and script errors;
   call it inside the driver's top-level handler. *)
let resolve_schedule ~config ~script =
  match (config, script) with
  | None, None -> None
  | Some _, Some _ ->
      Support.Diag.errorf
        "give either --config or --transform-script, not both"
  | Some name, None -> (
      match Mlt.Pipeline.config_of_name name with
      | Some c -> Some (Mlt.Pipeline.Config c)
      | None ->
          Support.Diag.errorf "unknown config %S (one of: %s)" name
            (String.concat ", "
               (List.map Mlt.Pipeline.config_name Mlt.Pipeline.all_configs)))
  | None, Some path ->
      Some
        (Mlt.Pipeline.schedule_of_script_text
           ~name:("script:" ^ Filename.basename path)
           ~file:path (read_file path))

(* The per-pass JSON report, stamped with the shared run_meta block
   (trace_stats --diff refuses to compare across schema versions) and
   with the tuner's search summary appended as a "tune" member when a
   search ran (docs/OBSERVABILITY.md). *)
let pass_stats_json ?tune pm =
  let base = Ir.Pass.report_json pm in
  match Support.Json.parse base with
  | Ok (Support.Json.Obj fields) ->
      let tune_fields =
        match tune with
        | None -> []
        | Some (st : Tune.stats) ->
            [
              ( "tune",
                Support.Json.Obj
                  [
                    ("candidates", Support.Json.num_int st.Tune.t_candidates);
                    ("evaluated", Support.Json.num_int st.Tune.t_evaluated);
                    ("best_seconds", Support.Json.Num st.Tune.t_best_seconds);
                    ( "eval_seconds",
                      Ir.Metrics.histogram_snapshot_json st.Tune.t_eval_latency
                    );
                  ] );
            ]
      in
      Support.Json.to_string
        (Support.Json.Obj
           ((("run_meta", Support.Run_meta.json ()) :: fields) @ tune_fields))
  | _ -> base

let interp_engine =
  Arg.(
    value
    & opt
        (enum [ ("compiled", Interp.Rt.Compiled); ("walk", Interp.Rt.Walk) ])
        Interp.Rt.Compiled
    & info [ "interp" ] ~docv:"ENGINE"
        ~doc:
          "Interpreter execution engine for the execution checks: \
           'compiled' (staged closures, default) or 'walk' (the \
           tree-walking oracle). See docs/INTERP.md.")

(* The canonical differential-execution flag. The long-deprecated
   [--verify] alias is gone: --verify-exec is the one spelling. *)
let verify_exec () =
  Arg.(
    value & flag
    & info [ "verify-exec" ]
        ~doc:
          "Differential execution check: interpret every function before \
           and after the pipeline on identical random inputs and fail if \
           any output buffer differs.")

let timing =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:
          "Print a per-pass table: seconds, op counts before/after, and \
           pattern match/rewrite counters (with per-pattern sub-rows).")

let pass_stats =
  Arg.(
    value & flag
    & info [ "pass-stats" ]
        ~doc:
          "Print the per-pass statistics as one JSON object, including \
           per-pattern attempt/hit counters (schema in \
           docs/OBSERVABILITY.md).")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file covering the whole run: \
           pass spans, rewrite-driver runs, per-pattern attempt/hit \
           events, interpreter compile/exec spans and remarks. Load it in \
           Perfetto or chrome://tracing (schema in docs/OBSERVABILITY.md).")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the Ir.Metrics registry for this run and write the \
           merged snapshot to $(docv) on exit: pass timings and GC \
           deltas, cache hit/miss and latencies, interpreter \
           compile/exec timings, intern-table sizes. JSON by default; \
           Prometheus/OpenMetrics text when $(docv) ends in .prom or \
           .txt (schema in docs/OBSERVABILITY.md).")

let print_debug_locs =
  Arg.(
    value & flag
    & info [ "print-debug-locs" ]
        ~doc:
          "Print a loc(...) trailer after every operation: the source \
           location, or the provenance chain (pattern name + consumed \
           source locations) for ops created by the raising patterns.")

let remarks =
  let kinds_conv =
    let parse s =
      match Ir.Remark.kinds_of_string s with
      | Some kinds -> Ok kinds
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "invalid remark filter %S (expected missed, applied, \
                   analysis or all)"
                  s))
    in
    let print fmt kinds =
      Format.pp_print_string fmt
        (String.concat ","
           (List.map Ir.Remark.kind_name kinds))
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some kinds_conv) None
    & info [ "remarks" ] ~docv:"KINDS"
        ~doc:
          "Print structured optimizer remarks to stderr: 'applied' \
           (successful rewrites), 'missed' (near-misses, with the matcher \
           stage that rejected them), 'analysis', or 'all'.")

(* Installs the sinks the observability flags ask for around [f]:
   [--metrics=FILE] enables the registry and exports the merged snapshot
   on exit, [--trace=FILE] a Chrome trace sink, [--remarks] a filtered
   stderr remark printer. All exports happen even when [f] raises, so a
   failing pipeline still leaves its artifacts. Metrics wrap outermost
   (intern stats are recorded after the trace sink has flushed); the
   trace sink goes in before remarks so remarks are mirrored into the
   trace as instant events. *)
let with_observability ?metrics ~trace ~remarks f =
  let with_remarks f =
    match remarks with
    | None -> f ()
    | Some kinds -> Ir.Remark.with_sink (Ir.Remark.stderr_sink ~kinds ()) f
  in
  let with_trace f =
    match trace with
    | None -> with_remarks f
    | Some path ->
        let sink = Ir.Trace.Chrome.create () in
        Fun.protect
          ~finally:(fun () ->
            Ir.Trace.Chrome.detach sink;
            Ir.Trace.Chrome.write sink path)
          (fun () -> with_remarks f)
  in
  match metrics with
  | None -> with_trace f
  | Some path ->
      Ir.Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Ir.Metrics.record_intern_stats ();
          Ir.Metrics.write ~path (Ir.Metrics.snapshot ()))
        (fun () -> with_trace f)
