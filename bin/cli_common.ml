(* Flag definitions shared by mlt-opt and mlt-sim, so the two drivers
   spell their common surface identically (--interp, --verify-exec,
   --timing, --pass-stats). *)

open Cmdliner

let read_file = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let interp_engine =
  Arg.(
    value
    & opt
        (enum [ ("compiled", Interp.Rt.Compiled); ("walk", Interp.Rt.Walk) ])
        Interp.Rt.Compiled
    & info [ "interp" ] ~docv:"ENGINE"
        ~doc:
          "Interpreter execution engine for the execution checks: \
           'compiled' (staged closures, default) or 'walk' (the \
           tree-walking oracle). See docs/INTERP.md.")

(* The canonical differential-execution flag. [deprecated] lists stale
   spellings kept as aliases; using one still works but warns on stderr. *)
let verify_exec ?(deprecated = []) () =
  let canonical =
    Arg.(
      value & flag
      & info [ "verify-exec" ]
          ~doc:
            "Differential execution check: interpret every function before \
             and after the pipeline on identical random inputs and fail if \
             any output buffer differs.")
  in
  match deprecated with
  | [] -> canonical
  | aliases ->
      let alias_flags =
        List.map
          (fun name ->
            Arg.(
              value & flag
              & info [ name ]
                  ~doc:(Printf.sprintf "Deprecated alias of --verify-exec.")))
          aliases
      in
      List.fold_left2
        (fun acc flag_name alias ->
          let merge acc_v used =
            (* Routed through the remark layer (satellite of the
               observability PR): with no sink installed this still prints
               to stderr, but a [--remarks] run or a test sink sees it as
               a structured [Warning]. *)
            if used then
              Ir.Remark.warningf ~context:"cli"
                "--%s is deprecated; use --verify-exec" flag_name;
            acc_v || used
          in
          Term.(const merge $ acc $ alias))
        canonical aliases alias_flags

let timing =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:
          "Print a per-pass table: seconds, op counts before/after, and \
           pattern match/rewrite counters (with per-pattern sub-rows).")

let pass_stats =
  Arg.(
    value & flag
    & info [ "pass-stats" ]
        ~doc:
          "Print the per-pass statistics as one JSON object, including \
           per-pattern attempt/hit counters (schema in \
           docs/OBSERVABILITY.md).")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file covering the whole run: \
           pass spans, rewrite-driver runs, per-pattern attempt/hit \
           events, interpreter compile/exec spans and remarks. Load it in \
           Perfetto or chrome://tracing (schema in docs/OBSERVABILITY.md).")

let print_debug_locs =
  Arg.(
    value & flag
    & info [ "print-debug-locs" ]
        ~doc:
          "Print a loc(...) trailer after every operation: the source \
           location, or the provenance chain (pattern name + consumed \
           source locations) for ops created by the raising patterns.")

let remarks =
  let kinds_conv =
    let parse s =
      match Ir.Remark.kinds_of_string s with
      | Some kinds -> Ok kinds
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "invalid remark filter %S (expected missed, applied, \
                   analysis or all)"
                  s))
    in
    let print fmt kinds =
      Format.pp_print_string fmt
        (String.concat ","
           (List.map Ir.Remark.kind_name kinds))
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some kinds_conv) None
    & info [ "remarks" ] ~docv:"KINDS"
        ~doc:
          "Print structured optimizer remarks to stderr: 'applied' \
           (successful rewrites), 'missed' (near-misses, with the matcher \
           stage that rejected them), 'analysis', or 'all'.")

(* Installs the sinks the observability flags ask for around [f]:
   [--trace=FILE] a Chrome trace sink (the file is written even when [f]
   raises, so a failing pipeline still leaves its trace), [--remarks] a
   filtered stderr remark printer. The trace sink goes in first so that
   remarks are mirrored into the trace as instant events. *)
let with_observability ~trace ~remarks f =
  let with_remarks f =
    match remarks with
    | None -> f ()
    | Some kinds -> Ir.Remark.with_sink (Ir.Remark.stderr_sink ~kinds ()) f
  in
  match trace with
  | None -> with_remarks f
  | Some path ->
      let sink = Ir.Trace.Chrome.create () in
      Fun.protect
        ~finally:(fun () ->
          Ir.Trace.Chrome.detach sink;
          Ir.Trace.Chrome.write sink path)
        (fun () -> with_remarks f)
