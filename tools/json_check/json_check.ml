(* json_check FILE [KEY...]: exit 0 iff FILE parses as strict JSON and
   every KEY names a non-empty array member of the top-level object.
   Used by scripts/check.sh to validate the --trace / --pass-stats
   outputs without a system JSON tool dependency. *)

module J = Support.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: keys ->
      let src =
        try In_channel.with_open_text file In_channel.input_all
        with Sys_error e -> fail "json_check: %s" e
      in
      (match J.parse src with
      | Error msg -> fail "json_check: %s: %s" file msg
      | Ok json ->
          List.iter
            (fun key ->
              match J.member key json with
              | Some (J.List (_ :: _)) -> ()
              | Some (J.List []) ->
                  fail "json_check: %s: array %S is empty" file key
              | Some _ ->
                  fail "json_check: %s: member %S is not an array" file key
              | None -> fail "json_check: %s: no member %S" file key)
            keys)
  | _ ->
      prerr_endline "usage: json_check FILE [KEY...]";
      exit 2
