(* trace_stats: offline analyzer for the observability artifacts
   (docs/OBSERVABILITY.md) — the consumer that makes recorded traces and
   stats actionable without a browser.

     trace_stats TRACE.json [--stats STATS.json] [--metrics M.json] [--top K]
     trace_stats --diff OLD_STATS.json NEW_STATS.json

   The first form reads a Trace.Chrome file and prints the top-K
   self-time hotspots (span duration minus child spans, aggregated by
   name) and a per-pattern cost attribution: each span's self time is
   distributed over the pattern instant-events that fired inside it,
   proportional to attempt counts. --stats folds in the --pass-stats
   JSON (exact per-pass seconds, GC deltas); --metrics summarizes a
   --metrics snapshot (counters and histogram quantiles).

   The second form compares two --pass-stats files and reports per-pass
   deltas. It refuses to compare artifacts stamped with different
   run_meta schema versions. *)

module J = Support.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let read_json path =
  let src =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "trace_stats: %s" e
  in
  match J.parse src with
  | Ok j -> j
  | Error msg -> fail "trace_stats: %s: %s" path msg

let jstr = function J.Str s -> Some s | _ -> None
let jnum = function J.Num n -> Some n | _ -> None

let mem_str k j = Option.bind (J.member k j) jstr
let mem_num k j = Option.bind (J.member k j) jnum

(* ---- trace analysis ------------------------------------------------------ *)

type span_agg = {
  mutable sp_count : int;
  mutable sp_total_us : float;  (* inclusive *)
  mutable sp_self_us : float;  (* minus child spans *)
}

type pattern_agg = {
  mutable pa_attempts : int;
  mutable pa_hits : int;
  mutable pa_cost_us : float;  (* attributed share of enclosing self time *)
}

type open_span = {
  os_name : string;
  os_ts : float;
  mutable os_child_us : float;
  (* Pattern attempts observed directly inside this span (not in a
     nested child): they split this span's self time between them. *)
  os_patterns : (string, int) Hashtbl.t;
  mutable os_attempts : int;
}

let analyze_trace events =
  let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 64 in
  let patterns : (string, pattern_agg) Hashtbl.t = Hashtbl.create 64 in
  let span_of name =
    match Hashtbl.find_opt spans name with
    | Some s -> s
    | None ->
        let s = { sp_count = 0; sp_total_us = 0.; sp_self_us = 0. } in
        Hashtbl.add spans name s;
        s
  in
  let pattern_of name =
    match Hashtbl.find_opt patterns name with
    | Some p -> p
    | None ->
        let p = { pa_attempts = 0; pa_hits = 0; pa_cost_us = 0. } in
        Hashtbl.add patterns name p;
        p
  in
  let stack = ref [] in
  let close os ts =
    let dur = ts -. os.os_ts in
    let agg = span_of os.os_name in
    agg.sp_count <- agg.sp_count + 1;
    agg.sp_total_us <- agg.sp_total_us +. dur;
    let self = Float.max 0. (dur -. os.os_child_us) in
    agg.sp_self_us <- agg.sp_self_us +. self;
    (* Attribute this span's self time across the patterns that fired
       directly inside it, weighted by attempt count. An estimate — the
       instants carry no duration — but a consistent one. *)
    if os.os_attempts > 0 then
      Hashtbl.iter
        (fun pname n ->
          let p = pattern_of pname in
          p.pa_cost_us <-
            p.pa_cost_us
            +. (self *. float_of_int n /. float_of_int os.os_attempts))
        os.os_patterns;
    (match !stack with
    | parent :: _ -> parent.os_child_us <- parent.os_child_us +. dur
    | [] -> ())
  in
  List.iter
    (fun ev ->
      let name = Option.value ~default:"?" (mem_str "name" ev) in
      let ts = Option.value ~default:0. (mem_num "ts" ev) in
      match mem_str "ph" ev with
      | Some "B" ->
          stack :=
            {
              os_name = name;
              os_ts = ts;
              os_child_us = 0.;
              os_patterns = Hashtbl.create 8;
              os_attempts = 0;
            }
            :: !stack
      | Some "E" -> (
          match !stack with
          | os :: rest ->
              stack := rest;
              close os ts
          | [] -> () (* unmatched E: tolerate truncated traces *))
      | Some "i" ->
          let cat = Option.value ~default:"" (mem_str "cat" ev) in
          if cat = "pattern" then begin
            let hit =
              match Option.bind (J.member "args" ev) (J.member "hit") with
              | Some (J.Bool b) -> b
              | _ -> false
            in
            let p = pattern_of name in
            p.pa_attempts <- p.pa_attempts + 1;
            if hit then p.pa_hits <- p.pa_hits + 1;
            match !stack with
            | os :: _ ->
                os.os_attempts <- os.os_attempts + 1;
                Hashtbl.replace os.os_patterns name
                  (1
                  + Option.value ~default:0
                      (Hashtbl.find_opt os.os_patterns name))
            | [] -> ()
          end
      | _ -> ())
    events;
  (* Spans still open at the end of a truncated trace are dropped: we
     have no end timestamp to attribute. *)
  (spans, patterns)

let print_hotspots ~top spans =
  let rows =
    Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) spans []
    |> List.sort (fun (_, a) (_, b) -> compare b.sp_self_us a.sp_self_us)
  in
  let total_self =
    List.fold_left (fun acc (_, a) -> acc +. a.sp_self_us) 0. rows
  in
  Printf.printf "top %d self-time hotspots (of %d span names):\n" top
    (List.length rows);
  Printf.printf "  %-44s %6s %12s %12s %6s\n" "span" "count" "self-ms"
    "total-ms" "self%";
  List.iteri
    (fun i (name, a) ->
      if i < top then
        Printf.printf "  %-44s %6d %12.3f %12.3f %5.1f%%\n" name a.sp_count
          (a.sp_self_us /. 1e3) (a.sp_total_us /. 1e3)
          (if total_self > 0. then 100. *. a.sp_self_us /. total_self else 0.))
    rows

let print_pattern_costs ~top patterns =
  let rows =
    Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) patterns []
    |> List.sort (fun (_, a) (_, b) -> compare b.pa_cost_us a.pa_cost_us)
  in
  if rows = [] then
    print_string "no pattern events in this trace (traced without patterns?)\n"
  else begin
    Printf.printf "\nper-pattern cost attribution (%d patterns):\n"
      (List.length rows);
    Printf.printf "  %-44s %9s %7s %12s\n" "pattern" "attempts" "hits"
      "est-ms";
    List.iteri
      (fun i (name, a) ->
        if i < top then
          Printf.printf "  %-44s %9d %7d %12.3f\n" name a.pa_attempts
            a.pa_hits (a.pa_cost_us /. 1e3))
      rows
  end

(* ---- pass-stats ---------------------------------------------------------- *)

(* One row per pass name aggregated over its runs: report-style files
   (one entry per run) and summary-style files both reduce to this. *)
type pass_row = {
  mutable pr_seconds : float;
  mutable pr_matches : int;
  mutable pr_rewrites : int;
  mutable pr_minor_words : float;
  mutable pr_major_collections : int;
}

let load_pass_rows j =
  let rows : (string, pass_row) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  (match J.member "passes" j with
  | Some (J.List passes) ->
      List.iter
        (fun p ->
          match mem_str "name" p with
          | None -> ()
          | Some name ->
              let row =
                match Hashtbl.find_opt rows name with
                | Some r -> r
                | None ->
                    let r =
                      {
                        pr_seconds = 0.;
                        pr_matches = 0;
                        pr_rewrites = 0;
                        pr_minor_words = 0.;
                        pr_major_collections = 0;
                      }
                    in
                    Hashtbl.add rows name r;
                    order := name :: !order;
                    r
              in
              let num k = Option.value ~default:0. (mem_num k p) in
              row.pr_seconds <- row.pr_seconds +. num "seconds";
              row.pr_matches <-
                row.pr_matches + int_of_float (num "match_attempts");
              row.pr_rewrites <- row.pr_rewrites + int_of_float (num "rewrites");
              (match J.member "gc" p with
              | Some gc ->
                  row.pr_minor_words <-
                    row.pr_minor_words
                    +. Option.value ~default:0. (mem_num "minor_words" gc);
                  row.pr_major_collections <-
                    row.pr_major_collections
                    + int_of_float
                        (Option.value ~default:0.
                           (mem_num "major_collections" gc))
              | None -> ()))
        passes
  | _ -> fail "trace_stats: pass-stats file has no \"passes\" array");
  (List.rev !order, rows)

let print_pass_stats j =
  let order, rows = load_pass_rows j in
  Printf.printf "\nper-pass stats (--stats):\n";
  Printf.printf "  %-44s %12s %9s %9s %10s %6s\n" "pass" "seconds" "matches"
    "rewrites" "minor-Mw" "majGCs";
  List.iter
    (fun name ->
      let r = Hashtbl.find rows name in
      Printf.printf "  %-44s %12.6f %9d %9d %10.2f %6d\n" name r.pr_seconds
        r.pr_matches r.pr_rewrites
        (r.pr_minor_words /. 1e6)
        r.pr_major_collections)
    order

(* ---- metrics summaries --------------------------------------------------- *)

let quantile h q =
  let target =
    int_of_float (Float.round (q *. float_of_int h.Ir.Metrics.h_count))
  in
  let target = max 1 target in
  let cum = ref 0 and result = ref Float.infinity in
  Array.iteri
    (fun i n ->
      if !cum < target then begin
        cum := !cum + n;
        if !cum >= target then result := Ir.Metrics.bucket_upper_seconds i
      end)
    h.Ir.Metrics.h_buckets;
  !result

let print_metrics j =
  match Ir.Metrics.parse_json j with
  | Error msg -> fail "trace_stats: bad metrics file: %s" msg
  | Ok samples ->
      Printf.printf "\nmetrics snapshot (%d metrics):\n" (List.length samples);
      List.iter
        (fun (s : Ir.Metrics.sample) ->
          match s.Ir.Metrics.s_value with
          | Ir.Metrics.V_counter n ->
              Printf.printf "  %-44s %d\n" s.Ir.Metrics.s_metric n
          | Ir.Metrics.V_gauge v ->
              Printf.printf "  %-44s %g\n" s.Ir.Metrics.s_metric v
          | Ir.Metrics.V_histogram h ->
              if h.Ir.Metrics.h_count = 0 then
                Printf.printf "  %-44s (no observations)\n"
                  s.Ir.Metrics.s_metric
              else
                let le v =
                  if v = Float.infinity then "+Inf"
                  else Printf.sprintf "%.3gms" (v *. 1e3)
                in
                Printf.printf
                  "  %-44s count=%d mean=%.3gms p50<=%s p99<=%s\n"
                  s.Ir.Metrics.s_metric h.Ir.Metrics.h_count
                  (h.Ir.Metrics.h_sum /. float_of_int h.Ir.Metrics.h_count
                  *. 1e3)
                  (le (quantile h 0.5))
                  (le (quantile h 0.99)))
        samples

(* ---- diff ---------------------------------------------------------------- *)

let check_schema_compat ~old_path ~new_path old_j new_j =
  match
    ( Support.Run_meta.schema_version_of old_j,
      Support.Run_meta.schema_version_of new_j )
  with
  | Some a, Some b when a <> b ->
      fail
        "trace_stats: refusing to diff: %s has run_meta schema %d but %s has \
         %d — regenerate both with the same build"
        old_path a new_path b
  | None, _ | _, None ->
      Printf.eprintf
        "trace_stats: warning: missing run_meta in %s — artifact predates \
         schema stamping, deltas may compare different layouts\n"
        (match Support.Run_meta.schema_version_of old_j with
        | None -> old_path
        | Some _ -> new_path)
  | _ -> ()

let diff old_path new_path =
  let old_j = read_json old_path and new_j = read_json new_path in
  check_schema_compat ~old_path ~new_path old_j new_j;
  let old_order, old_rows = load_pass_rows old_j in
  let new_order, new_rows = load_pass_rows new_j in
  let names =
    old_order
    @ List.filter (fun n -> not (Hashtbl.mem old_rows n)) new_order
  in
  Printf.printf "pass-stats diff: %s -> %s\n" old_path new_path;
  Printf.printf "  %-44s %12s %12s %9s %9s\n" "pass" "old-s" "new-s" "delta%"
    "d-match";
  let total_old = ref 0. and total_new = ref 0. in
  List.iter
    (fun name ->
      let o = Hashtbl.find_opt old_rows name in
      let n = Hashtbl.find_opt new_rows name in
      let os = match o with Some r -> r.pr_seconds | None -> 0. in
      let ns = match n with Some r -> r.pr_seconds | None -> 0. in
      let om = match o with Some r -> r.pr_matches | None -> 0 in
      let nm = match n with Some r -> r.pr_matches | None -> 0 in
      total_old := !total_old +. os;
      total_new := !total_new +. ns;
      let pct =
        if os > 0. then Printf.sprintf "%+8.1f%%" (100. *. (ns -. os) /. os)
        else if ns > 0. then "     new"
        else "       ="
      in
      Printf.printf "  %-44s %12.6f %12.6f %9s %+9d%s\n" name os ns pct
        (nm - om)
        (match (o, n) with
        | None, _ -> "   (only in new)"
        | _, None -> "   (only in old)"
        | _ -> ""))
    names;
  Printf.printf "  %-44s %12.6f %12.6f\n" "total" !total_old !total_new

(* ---- driver -------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: trace_stats TRACE.json [--stats STATS.json] [--metrics M.json] \
     [--top K]\n\
    \       trace_stats --diff OLD_STATS.json NEW_STATS.json";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | [ _; "--diff"; old_path; new_path ] -> diff old_path new_path
  | _ :: rest when rest <> [] && not (List.mem "--diff" rest) ->
      let trace = ref None
      and stats = ref None
      and metrics = ref None
      and top = ref 15 in
      let rec parse = function
        | [] -> ()
        | "--stats" :: path :: rest ->
            stats := Some path;
            parse rest
        | "--metrics" :: path :: rest ->
            metrics := Some path;
            parse rest
        | "--top" :: k :: rest ->
            (match int_of_string_opt k with
            | Some k when k > 0 -> top := k
            | _ -> fail "trace_stats: --top needs a positive integer");
            parse rest
        | path :: rest when !trace = None && path.[0] <> '-' ->
            trace := Some path;
            parse rest
        | arg :: _ -> fail "trace_stats: unexpected argument %S" arg
      in
      parse rest;
      let trace_path = match !trace with Some p -> p | None -> usage () in
      let j = read_json trace_path in
      (match J.member "traceEvents" j with
      | Some (J.List events) ->
          let spans, patterns = analyze_trace events in
          Printf.printf "%s: %d events\n" trace_path (List.length events);
          print_hotspots ~top:!top spans;
          print_pattern_costs ~top:!top patterns
      | _ -> fail "trace_stats: %s has no \"traceEvents\" array" trace_path);
      Option.iter (fun p -> print_pass_stats (read_json p)) !stats;
      Option.iter (fun p -> print_metrics (read_json p)) !metrics
  | _ -> usage ()
